# Empty compiler generated dependencies file for kb_generator_test.
# This may be replaced when dependencies are built.
