file(REMOVE_RECURSE
  "CMakeFiles/kb_generator_test.dir/kb/kb_generator_test.cc.o"
  "CMakeFiles/kb_generator_test.dir/kb/kb_generator_test.cc.o.d"
  "kb_generator_test"
  "kb_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
