file(REMOVE_RECURSE
  "CMakeFiles/word_init_test.dir/core/word_init_test.cc.o"
  "CMakeFiles/word_init_test.dir/core/word_init_test.cc.o.d"
  "word_init_test"
  "word_init_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_init_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
