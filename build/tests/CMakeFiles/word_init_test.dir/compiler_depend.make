# Empty compiler generated dependencies file for word_init_test.
# This may be replaced when dependencies are built.
