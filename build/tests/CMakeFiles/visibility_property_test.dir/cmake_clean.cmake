file(REMOVE_RECURSE
  "CMakeFiles/visibility_property_test.dir/core/visibility_property_test.cc.o"
  "CMakeFiles/visibility_property_test.dir/core/visibility_property_test.cc.o.d"
  "visibility_property_test"
  "visibility_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visibility_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
