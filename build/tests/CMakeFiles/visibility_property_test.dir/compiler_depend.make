# Empty compiler generated dependencies file for visibility_property_test.
# This may be replaced when dependencies are built.
