file(REMOVE_RECURSE
  "CMakeFiles/finetune_test.dir/tasks/finetune_test.cc.o"
  "CMakeFiles/finetune_test.dir/tasks/finetune_test.cc.o.d"
  "finetune_test"
  "finetune_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
