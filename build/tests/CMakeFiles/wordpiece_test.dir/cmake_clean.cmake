file(REMOVE_RECURSE
  "CMakeFiles/wordpiece_test.dir/text/wordpiece_test.cc.o"
  "CMakeFiles/wordpiece_test.dir/text/wordpiece_test.cc.o.d"
  "wordpiece_test"
  "wordpiece_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordpiece_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
