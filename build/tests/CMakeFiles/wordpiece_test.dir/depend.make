# Empty dependencies file for wordpiece_test.
# This may be replaced when dependencies are built.
