
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/word2vec_test.cc" "tests/CMakeFiles/word2vec_test.dir/baselines/word2vec_test.cc.o" "gcc" "tests/CMakeFiles/word2vec_test.dir/baselines/word2vec_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/turl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/turl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/turl_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/turl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/turl_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
