file(REMOVE_RECURSE
  "CMakeFiles/turl_text.dir/vocab.cc.o"
  "CMakeFiles/turl_text.dir/vocab.cc.o.d"
  "CMakeFiles/turl_text.dir/wordpiece.cc.o"
  "CMakeFiles/turl_text.dir/wordpiece.cc.o.d"
  "libturl_text.a"
  "libturl_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turl_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
