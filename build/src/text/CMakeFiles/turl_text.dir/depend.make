# Empty dependencies file for turl_text.
# This may be replaced when dependencies are built.
