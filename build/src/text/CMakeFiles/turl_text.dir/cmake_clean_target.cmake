file(REMOVE_RECURSE
  "libturl_text.a"
)
