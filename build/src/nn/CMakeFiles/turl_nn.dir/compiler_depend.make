# Empty compiler generated dependencies file for turl_nn.
# This may be replaced when dependencies are built.
