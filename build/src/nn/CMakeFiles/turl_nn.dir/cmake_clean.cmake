file(REMOVE_RECURSE
  "CMakeFiles/turl_nn.dir/checkpoint.cc.o"
  "CMakeFiles/turl_nn.dir/checkpoint.cc.o.d"
  "CMakeFiles/turl_nn.dir/module.cc.o"
  "CMakeFiles/turl_nn.dir/module.cc.o.d"
  "CMakeFiles/turl_nn.dir/ops.cc.o"
  "CMakeFiles/turl_nn.dir/ops.cc.o.d"
  "CMakeFiles/turl_nn.dir/optim.cc.o"
  "CMakeFiles/turl_nn.dir/optim.cc.o.d"
  "CMakeFiles/turl_nn.dir/tensor.cc.o"
  "CMakeFiles/turl_nn.dir/tensor.cc.o.d"
  "libturl_nn.a"
  "libturl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
