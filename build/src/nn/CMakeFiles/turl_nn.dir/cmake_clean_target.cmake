file(REMOVE_RECURSE
  "libturl_nn.a"
)
