file(REMOVE_RECURSE
  "libturl_util.a"
)
