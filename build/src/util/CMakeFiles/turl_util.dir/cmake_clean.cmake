file(REMOVE_RECURSE
  "CMakeFiles/turl_util.dir/logging.cc.o"
  "CMakeFiles/turl_util.dir/logging.cc.o.d"
  "CMakeFiles/turl_util.dir/math_util.cc.o"
  "CMakeFiles/turl_util.dir/math_util.cc.o.d"
  "CMakeFiles/turl_util.dir/rng.cc.o"
  "CMakeFiles/turl_util.dir/rng.cc.o.d"
  "CMakeFiles/turl_util.dir/serialize.cc.o"
  "CMakeFiles/turl_util.dir/serialize.cc.o.d"
  "CMakeFiles/turl_util.dir/status.cc.o"
  "CMakeFiles/turl_util.dir/status.cc.o.d"
  "CMakeFiles/turl_util.dir/string_util.cc.o"
  "CMakeFiles/turl_util.dir/string_util.cc.o.d"
  "libturl_util.a"
  "libturl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
