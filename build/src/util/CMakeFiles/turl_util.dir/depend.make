# Empty dependencies file for turl_util.
# This may be replaced when dependencies are built.
