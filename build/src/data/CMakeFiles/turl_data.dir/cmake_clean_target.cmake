file(REMOVE_RECURSE
  "libturl_data.a"
)
