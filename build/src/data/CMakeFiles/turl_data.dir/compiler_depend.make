# Empty compiler generated dependencies file for turl_data.
# This may be replaced when dependencies are built.
