
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/corpus_generator.cc" "src/data/CMakeFiles/turl_data.dir/corpus_generator.cc.o" "gcc" "src/data/CMakeFiles/turl_data.dir/corpus_generator.cc.o.d"
  "/root/repo/src/data/entity_vocab.cc" "src/data/CMakeFiles/turl_data.dir/entity_vocab.cc.o" "gcc" "src/data/CMakeFiles/turl_data.dir/entity_vocab.cc.o.d"
  "/root/repo/src/data/export.cc" "src/data/CMakeFiles/turl_data.dir/export.cc.o" "gcc" "src/data/CMakeFiles/turl_data.dir/export.cc.o.d"
  "/root/repo/src/data/stats.cc" "src/data/CMakeFiles/turl_data.dir/stats.cc.o" "gcc" "src/data/CMakeFiles/turl_data.dir/stats.cc.o.d"
  "/root/repo/src/data/table.cc" "src/data/CMakeFiles/turl_data.dir/table.cc.o" "gcc" "src/data/CMakeFiles/turl_data.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/turl_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
