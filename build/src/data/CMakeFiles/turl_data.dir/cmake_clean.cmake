file(REMOVE_RECURSE
  "CMakeFiles/turl_data.dir/corpus_generator.cc.o"
  "CMakeFiles/turl_data.dir/corpus_generator.cc.o.d"
  "CMakeFiles/turl_data.dir/entity_vocab.cc.o"
  "CMakeFiles/turl_data.dir/entity_vocab.cc.o.d"
  "CMakeFiles/turl_data.dir/export.cc.o"
  "CMakeFiles/turl_data.dir/export.cc.o.d"
  "CMakeFiles/turl_data.dir/stats.cc.o"
  "CMakeFiles/turl_data.dir/stats.cc.o.d"
  "CMakeFiles/turl_data.dir/table.cc.o"
  "CMakeFiles/turl_data.dir/table.cc.o.d"
  "libturl_data.a"
  "libturl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
