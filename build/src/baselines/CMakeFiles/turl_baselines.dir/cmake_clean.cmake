file(REMOVE_RECURSE
  "CMakeFiles/turl_baselines.dir/bm25.cc.o"
  "CMakeFiles/turl_baselines.dir/bm25.cc.o.d"
  "CMakeFiles/turl_baselines.dir/cell_filling.cc.o"
  "CMakeFiles/turl_baselines.dir/cell_filling.cc.o.d"
  "CMakeFiles/turl_baselines.dir/entity_linking_baselines.cc.o"
  "CMakeFiles/turl_baselines.dir/entity_linking_baselines.cc.o.d"
  "CMakeFiles/turl_baselines.dir/knn_schema.cc.o"
  "CMakeFiles/turl_baselines.dir/knn_schema.cc.o.d"
  "CMakeFiles/turl_baselines.dir/row_population.cc.o"
  "CMakeFiles/turl_baselines.dir/row_population.cc.o.d"
  "CMakeFiles/turl_baselines.dir/sherlock.cc.o"
  "CMakeFiles/turl_baselines.dir/sherlock.cc.o.d"
  "CMakeFiles/turl_baselines.dir/word2vec.cc.o"
  "CMakeFiles/turl_baselines.dir/word2vec.cc.o.d"
  "libturl_baselines.a"
  "libturl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
