
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bm25.cc" "src/baselines/CMakeFiles/turl_baselines.dir/bm25.cc.o" "gcc" "src/baselines/CMakeFiles/turl_baselines.dir/bm25.cc.o.d"
  "/root/repo/src/baselines/cell_filling.cc" "src/baselines/CMakeFiles/turl_baselines.dir/cell_filling.cc.o" "gcc" "src/baselines/CMakeFiles/turl_baselines.dir/cell_filling.cc.o.d"
  "/root/repo/src/baselines/entity_linking_baselines.cc" "src/baselines/CMakeFiles/turl_baselines.dir/entity_linking_baselines.cc.o" "gcc" "src/baselines/CMakeFiles/turl_baselines.dir/entity_linking_baselines.cc.o.d"
  "/root/repo/src/baselines/knn_schema.cc" "src/baselines/CMakeFiles/turl_baselines.dir/knn_schema.cc.o" "gcc" "src/baselines/CMakeFiles/turl_baselines.dir/knn_schema.cc.o.d"
  "/root/repo/src/baselines/row_population.cc" "src/baselines/CMakeFiles/turl_baselines.dir/row_population.cc.o" "gcc" "src/baselines/CMakeFiles/turl_baselines.dir/row_population.cc.o.d"
  "/root/repo/src/baselines/sherlock.cc" "src/baselines/CMakeFiles/turl_baselines.dir/sherlock.cc.o" "gcc" "src/baselines/CMakeFiles/turl_baselines.dir/sherlock.cc.o.d"
  "/root/repo/src/baselines/word2vec.cc" "src/baselines/CMakeFiles/turl_baselines.dir/word2vec.cc.o" "gcc" "src/baselines/CMakeFiles/turl_baselines.dir/word2vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/turl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/turl_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/turl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/turl_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
