file(REMOVE_RECURSE
  "libturl_baselines.a"
)
