# Empty compiler generated dependencies file for turl_baselines.
# This may be replaced when dependencies are built.
