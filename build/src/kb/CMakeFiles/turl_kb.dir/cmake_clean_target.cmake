file(REMOVE_RECURSE
  "libturl_kb.a"
)
