file(REMOVE_RECURSE
  "CMakeFiles/turl_kb.dir/kb.cc.o"
  "CMakeFiles/turl_kb.dir/kb.cc.o.d"
  "CMakeFiles/turl_kb.dir/kb_generator.cc.o"
  "CMakeFiles/turl_kb.dir/kb_generator.cc.o.d"
  "CMakeFiles/turl_kb.dir/kb_io.cc.o"
  "CMakeFiles/turl_kb.dir/kb_io.cc.o.d"
  "CMakeFiles/turl_kb.dir/lookup.cc.o"
  "CMakeFiles/turl_kb.dir/lookup.cc.o.d"
  "libturl_kb.a"
  "libturl_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turl_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
