# Empty dependencies file for turl_kb.
# This may be replaced when dependencies are built.
