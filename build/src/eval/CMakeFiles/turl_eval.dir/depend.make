# Empty dependencies file for turl_eval.
# This may be replaced when dependencies are built.
