file(REMOVE_RECURSE
  "CMakeFiles/turl_eval.dir/metrics.cc.o"
  "CMakeFiles/turl_eval.dir/metrics.cc.o.d"
  "libturl_eval.a"
  "libturl_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turl_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
