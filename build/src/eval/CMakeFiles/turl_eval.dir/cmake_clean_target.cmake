file(REMOVE_RECURSE
  "libturl_eval.a"
)
