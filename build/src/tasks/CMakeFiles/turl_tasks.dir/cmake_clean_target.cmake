file(REMOVE_RECURSE
  "libturl_tasks.a"
)
