# Empty compiler generated dependencies file for turl_tasks.
# This may be replaced when dependencies are built.
