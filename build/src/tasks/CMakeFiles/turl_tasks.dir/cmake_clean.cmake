file(REMOVE_RECURSE
  "CMakeFiles/turl_tasks.dir/cell_filling.cc.o"
  "CMakeFiles/turl_tasks.dir/cell_filling.cc.o.d"
  "CMakeFiles/turl_tasks.dir/column_type.cc.o"
  "CMakeFiles/turl_tasks.dir/column_type.cc.o.d"
  "CMakeFiles/turl_tasks.dir/common.cc.o"
  "CMakeFiles/turl_tasks.dir/common.cc.o.d"
  "CMakeFiles/turl_tasks.dir/entity_linking.cc.o"
  "CMakeFiles/turl_tasks.dir/entity_linking.cc.o.d"
  "CMakeFiles/turl_tasks.dir/relation_extraction.cc.o"
  "CMakeFiles/turl_tasks.dir/relation_extraction.cc.o.d"
  "CMakeFiles/turl_tasks.dir/row_population.cc.o"
  "CMakeFiles/turl_tasks.dir/row_population.cc.o.d"
  "CMakeFiles/turl_tasks.dir/schema_augmentation.cc.o"
  "CMakeFiles/turl_tasks.dir/schema_augmentation.cc.o.d"
  "libturl_tasks.a"
  "libturl_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turl_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
