# Empty compiler generated dependencies file for turl_core.
# This may be replaced when dependencies are built.
