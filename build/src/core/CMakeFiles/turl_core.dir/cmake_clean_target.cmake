file(REMOVE_RECURSE
  "libturl_core.a"
)
