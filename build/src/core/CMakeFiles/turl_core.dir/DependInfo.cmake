
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidates.cc" "src/core/CMakeFiles/turl_core.dir/candidates.cc.o" "gcc" "src/core/CMakeFiles/turl_core.dir/candidates.cc.o.d"
  "/root/repo/src/core/context.cc" "src/core/CMakeFiles/turl_core.dir/context.cc.o" "gcc" "src/core/CMakeFiles/turl_core.dir/context.cc.o.d"
  "/root/repo/src/core/masking.cc" "src/core/CMakeFiles/turl_core.dir/masking.cc.o" "gcc" "src/core/CMakeFiles/turl_core.dir/masking.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/turl_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/turl_core.dir/model.cc.o.d"
  "/root/repo/src/core/model_cache.cc" "src/core/CMakeFiles/turl_core.dir/model_cache.cc.o" "gcc" "src/core/CMakeFiles/turl_core.dir/model_cache.cc.o.d"
  "/root/repo/src/core/pretrain.cc" "src/core/CMakeFiles/turl_core.dir/pretrain.cc.o" "gcc" "src/core/CMakeFiles/turl_core.dir/pretrain.cc.o.d"
  "/root/repo/src/core/representation.cc" "src/core/CMakeFiles/turl_core.dir/representation.cc.o" "gcc" "src/core/CMakeFiles/turl_core.dir/representation.cc.o.d"
  "/root/repo/src/core/table_encoding.cc" "src/core/CMakeFiles/turl_core.dir/table_encoding.cc.o" "gcc" "src/core/CMakeFiles/turl_core.dir/table_encoding.cc.o.d"
  "/root/repo/src/core/visibility.cc" "src/core/CMakeFiles/turl_core.dir/visibility.cc.o" "gcc" "src/core/CMakeFiles/turl_core.dir/visibility.cc.o.d"
  "/root/repo/src/core/word_init.cc" "src/core/CMakeFiles/turl_core.dir/word_init.cc.o" "gcc" "src/core/CMakeFiles/turl_core.dir/word_init.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/turl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/turl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/turl_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/turl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/turl_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
