file(REMOVE_RECURSE
  "CMakeFiles/turl_core.dir/candidates.cc.o"
  "CMakeFiles/turl_core.dir/candidates.cc.o.d"
  "CMakeFiles/turl_core.dir/context.cc.o"
  "CMakeFiles/turl_core.dir/context.cc.o.d"
  "CMakeFiles/turl_core.dir/masking.cc.o"
  "CMakeFiles/turl_core.dir/masking.cc.o.d"
  "CMakeFiles/turl_core.dir/model.cc.o"
  "CMakeFiles/turl_core.dir/model.cc.o.d"
  "CMakeFiles/turl_core.dir/model_cache.cc.o"
  "CMakeFiles/turl_core.dir/model_cache.cc.o.d"
  "CMakeFiles/turl_core.dir/pretrain.cc.o"
  "CMakeFiles/turl_core.dir/pretrain.cc.o.d"
  "CMakeFiles/turl_core.dir/representation.cc.o"
  "CMakeFiles/turl_core.dir/representation.cc.o.d"
  "CMakeFiles/turl_core.dir/table_encoding.cc.o"
  "CMakeFiles/turl_core.dir/table_encoding.cc.o.d"
  "CMakeFiles/turl_core.dir/visibility.cc.o"
  "CMakeFiles/turl_core.dir/visibility.cc.o.d"
  "CMakeFiles/turl_core.dir/word_init.cc.o"
  "CMakeFiles/turl_core.dir/word_init.cc.o.d"
  "libturl_core.a"
  "libturl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
