file(REMOVE_RECURSE
  "CMakeFiles/table_interpretation.dir/table_interpretation.cpp.o"
  "CMakeFiles/table_interpretation.dir/table_interpretation.cpp.o.d"
  "table_interpretation"
  "table_interpretation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_interpretation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
