# Empty compiler generated dependencies file for table_interpretation.
# This may be replaced when dependencies are built.
