# Empty dependencies file for kb_population.
# This may be replaced when dependencies are built.
