file(REMOVE_RECURSE
  "CMakeFiles/kb_population.dir/kb_population.cpp.o"
  "CMakeFiles/kb_population.dir/kb_population.cpp.o.d"
  "kb_population"
  "kb_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
