# Empty compiler generated dependencies file for table_augmentation.
# This may be replaced when dependencies are built.
