
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/table_augmentation.cpp" "examples/CMakeFiles/table_augmentation.dir/table_augmentation.cpp.o" "gcc" "examples/CMakeFiles/table_augmentation.dir/table_augmentation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tasks/CMakeFiles/turl_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/turl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/turl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/turl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/turl_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/turl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/turl_text.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/turl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/turl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
