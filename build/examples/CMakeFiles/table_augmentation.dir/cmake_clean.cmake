file(REMOVE_RECURSE
  "CMakeFiles/table_augmentation.dir/table_augmentation.cpp.o"
  "CMakeFiles/table_augmentation.dir/table_augmentation.cpp.o.d"
  "table_augmentation"
  "table_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
