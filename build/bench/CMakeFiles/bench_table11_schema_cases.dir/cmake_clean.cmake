file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_schema_cases.dir/bench_table11_schema_cases.cc.o"
  "CMakeFiles/bench_table11_schema_cases.dir/bench_table11_schema_cases.cc.o.d"
  "bench_table11_schema_cases"
  "bench_table11_schema_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_schema_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
