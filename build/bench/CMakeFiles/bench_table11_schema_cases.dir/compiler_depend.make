# Empty compiler generated dependencies file for bench_table11_schema_cases.
# This may be replaced when dependencies are built.
