# Empty compiler generated dependencies file for bench_table5_column_type.
# This may be replaced when dependencies are built.
