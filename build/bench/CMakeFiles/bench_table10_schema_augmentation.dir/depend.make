# Empty dependencies file for bench_table10_schema_augmentation.
# This may be replaced when dependencies are built.
