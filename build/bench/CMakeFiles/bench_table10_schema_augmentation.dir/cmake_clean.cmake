file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_schema_augmentation.dir/bench_table10_schema_augmentation.cc.o"
  "CMakeFiles/bench_table10_schema_augmentation.dir/bench_table10_schema_augmentation.cc.o.d"
  "bench_table10_schema_augmentation"
  "bench_table10_schema_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_schema_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
