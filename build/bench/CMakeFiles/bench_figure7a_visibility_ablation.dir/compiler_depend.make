# Empty compiler generated dependencies file for bench_figure7a_visibility_ablation.
# This may be replaced when dependencies are built.
