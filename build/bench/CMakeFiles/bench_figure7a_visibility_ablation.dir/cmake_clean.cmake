file(REMOVE_RECURSE
  "CMakeFiles/bench_figure7a_visibility_ablation.dir/bench_figure7a_visibility_ablation.cc.o"
  "CMakeFiles/bench_figure7a_visibility_ablation.dir/bench_figure7a_visibility_ablation.cc.o.d"
  "bench_figure7a_visibility_ablation"
  "bench_figure7a_visibility_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure7a_visibility_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
