# Empty dependencies file for bench_table6_column_type_per_type.
# This may be replaced when dependencies are built.
