file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_cell_filling.dir/bench_table9_cell_filling.cc.o"
  "CMakeFiles/bench_table9_cell_filling.dir/bench_table9_cell_filling.cc.o.d"
  "bench_table9_cell_filling"
  "bench_table9_cell_filling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_cell_filling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
