# Empty dependencies file for bench_table9_cell_filling.
# This may be replaced when dependencies are built.
