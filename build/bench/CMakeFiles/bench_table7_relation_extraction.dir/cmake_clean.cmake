file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_relation_extraction.dir/bench_table7_relation_extraction.cc.o"
  "CMakeFiles/bench_table7_relation_extraction.dir/bench_table7_relation_extraction.cc.o.d"
  "bench_table7_relation_extraction"
  "bench_table7_relation_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_relation_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
