# Empty compiler generated dependencies file for bench_table7_relation_extraction.
# This may be replaced when dependencies are built.
