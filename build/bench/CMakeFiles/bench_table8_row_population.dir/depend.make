# Empty dependencies file for bench_table8_row_population.
# This may be replaced when dependencies are built.
