file(REMOVE_RECURSE
  "CMakeFiles/bench_figure7b_mask_ratio.dir/bench_figure7b_mask_ratio.cc.o"
  "CMakeFiles/bench_figure7b_mask_ratio.dir/bench_figure7b_mask_ratio.cc.o.d"
  "bench_figure7b_mask_ratio"
  "bench_figure7b_mask_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure7b_mask_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
