# Empty compiler generated dependencies file for bench_figure7b_mask_ratio.
# This may be replaced when dependencies are built.
