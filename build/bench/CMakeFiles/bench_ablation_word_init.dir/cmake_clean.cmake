file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_word_init.dir/bench_ablation_word_init.cc.o"
  "CMakeFiles/bench_ablation_word_init.dir/bench_ablation_word_init.cc.o.d"
  "bench_ablation_word_init"
  "bench_ablation_word_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_word_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
