# Empty dependencies file for bench_table4_entity_linking.
# This may be replaced when dependencies are built.
