file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_entity_linking.dir/bench_table4_entity_linking.cc.o"
  "CMakeFiles/bench_table4_entity_linking.dir/bench_table4_entity_linking.cc.o.d"
  "bench_table4_entity_linking"
  "bench_table4_entity_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_entity_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
