// Reproduces Table 8: row population MAP / Recall with 0 and 1 seed
// entities for EntiTables, Table2Vec and TURL + fine-tuning. All methods
// share the BM25 candidate-generation module, so Recall is identical.

#include <cstdio>

#include "baselines/row_population.h"
#include "bench_common.h"
#include "tasks/row_population.h"
#include "tasks/task_head.h"
#include "util/timer.h"

namespace {

using namespace turl;

std::vector<std::vector<double>> ScoreAll(
    const std::vector<tasks::RowPopInstance>& instances,
    const std::function<std::vector<double>(const tasks::RowPopInstance&)>&
        score) {
  std::vector<std::vector<double>> out;
  out.reserve(instances.size());
  for (const auto& inst : instances) out.push_back(score(inst));
  return out;
}

}  // namespace

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Table 8: row population");

  baselines::RowPopCandidateGenerator generator(env.ctx.corpus,
                                                env.ctx.corpus.train);
  baselines::EntiTablesRanker entitables(env.ctx.corpus, env.ctx.corpus.train);
  Rng w2v_rng(3);
  baselines::Table2VecRanker table2vec(env.ctx.corpus, env.ctx.corpus.train,
                                       baselines::Word2VecConfig{}, &w2v_rng);

  // Evaluation instances: held-out tables with > 5 linked subject entities.
  std::vector<size_t> eval_tables = env.ctx.corpus.valid;
  eval_tables.insert(eval_tables.end(), env.ctx.corpus.test.begin(),
                     env.ctx.corpus.test.end());
  // Fine-tuning instances from training tables (> 3 subjects), seeds 0 & 1.
  std::vector<tasks::RowPopInstance> train0 = tasks::BuildRowPopInstances(
      env.ctx, generator, env.ctx.corpus.train, /*num_seeds=*/0,
      /*min_subjects=*/4, /*max_instances=*/1000);
  std::vector<tasks::RowPopInstance> train1 = tasks::BuildRowPopInstances(
      env.ctx, generator, env.ctx.corpus.train, 1, 4, 1000);
  std::vector<tasks::RowPopInstance> train = train0;
  train.insert(train.end(), train1.begin(), train1.end());

  auto model = bench::LoadPretrained(env);
  tasks::TurlRowPopulator populator(model.get(), &env.ctx);
  rt::InferenceSession session = bench::MakeSession(*model);
  tasks::FinetuneOptions ft;
  ft.epochs = 5;
  WallTimer timer;
  populator.Finetune(train, ft);
  std::printf("TURL fine-tuning on %zu queries: %.1fs\n", train.size(),
              timer.ElapsedSeconds());

  std::printf("\n%-20s %8s %8s %8s %8s\n", "", "MAP(0)", "Rec(0)", "MAP(1)",
              "Rec(1)");
  tasks::RowPopMetrics ent[2], t2v[2], turl[2];
  for (int seeds = 0; seeds <= 1; ++seeds) {
    std::vector<tasks::RowPopInstance> instances =
        tasks::BuildRowPopInstances(env.ctx, generator, eval_tables, seeds,
                                    /*min_subjects=*/6, /*max_instances=*/250);
    auto ent_scores = ScoreAll(instances, [&](const auto& inst) {
      return entitables.Score(env.ctx.corpus.tables[inst.table_index].caption,
                              inst.seeds, inst.candidates);
    });
    auto t2v_scores = ScoreAll(instances, [&](const auto& inst) {
      return table2vec.Score(inst.seeds, inst.candidates);
    });
    auto turl_scores =
        tasks::AsDouble(tasks::BulkScores(populator, instances, session));
    ent[seeds] = tasks::EvaluateRowPopScores(instances, ent_scores);
    t2v[seeds] = tasks::EvaluateRowPopScores(instances, t2v_scores);
    turl[seeds] = tasks::EvaluateRowPopScores(instances, turl_scores);
    std::printf("(%d seed: %zu queries)\n", seeds, instances.size());
  }

  auto print_method = [](const char* name, const tasks::RowPopMetrics* m,
                         bool zero_seed_applicable) {
    if (zero_seed_applicable) {
      std::printf("%-20s %8.2f %8.2f %8.2f %8.2f\n", name, m[0].map * 100,
                  m[0].recall * 100, m[1].map * 100, m[1].recall * 100);
    } else {
      std::printf("%-20s %8s %8.2f %8.2f %8.2f\n", name, "-",
                  m[0].recall * 100, m[1].map * 100, m[1].recall * 100);
    }
  };
  print_method("EntiTables", ent, true);
  print_method("Table2Vec", t2v, false);  // Needs seeds, as in the paper.
  print_method("TURL + fine-tuning", turl, true);

  std::printf(
      "\npaper shape: TURL wins both settings; the gap is largest with 0 "
      "seeds, where similarity-based baselines have nothing to work with.\n");
  return 0;
}
