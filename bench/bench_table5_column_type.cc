// Reproduces Table 5: column type annotation F1/P/R on the test split for
// the Sherlock baseline and the six TURL input variants.

#include <cstdio>

#include "baselines/sherlock.h"
#include "bench_common.h"
#include "tasks/column_type.h"
#include "util/timer.h"

namespace {

using namespace turl;

void PrintRow(const char* name, const eval::Prf& prf) {
  std::printf("%-42s %6.2f %6.2f %6.2f\n", name, prf.f1 * 100,
              prf.precision * 100, prf.recall * 100);
}

std::vector<std::string> ColumnCells(const data::Corpus& corpus,
                                     const tasks::ColumnTypeInstance& inst) {
  std::vector<std::string> cells;
  const data::Column& col =
      corpus.tables[inst.table_index].columns[size_t(inst.column)];
  for (const data::EntityCell& cell : col.cells) cells.push_back(cell.mention);
  return cells;
}

}  // namespace

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Table 5: column type annotation");

  tasks::ColumnTypeDataset dataset = tasks::BuildColumnTypeDataset(env.ctx);
  std::printf("dataset: %d types, %zu train / %zu valid / %zu test columns\n",
              dataset.num_labels(), dataset.train.size(),
              dataset.valid.size(), dataset.test.size());

  // ---- Sherlock baseline (features + MLP, early stop on validation). ----
  WallTimer timer;
  std::vector<std::vector<float>> train_x;
  std::vector<std::vector<int>> train_y;
  for (const auto& inst : dataset.train) {
    train_x.push_back(
        baselines::SherlockFeatures(ColumnCells(env.ctx.corpus, inst)));
    train_y.push_back(inst.labels);
  }
  baselines::SherlockClassifier sherlock(dataset.num_labels(), 64, /*seed=*/5);
  Rng rng(9);
  eval::Prf best_valid{};
  int best_epoch = 0;
  std::vector<std::vector<float>> snapshot;  // Not needed: eval at the end of
                                             // the best epoch via re-train.
  const int kSherlockEpochs = 30;
  for (int epoch = 0; epoch < kSherlockEpochs; ++epoch) {
    sherlock.TrainEpoch(train_x, train_y, 1e-3f, &rng);
    eval::MicroPrf micro;
    for (const auto& inst : dataset.valid) {
      micro.Add(sherlock.PredictLabels(baselines::SherlockFeatures(
                    ColumnCells(env.ctx.corpus, inst))),
                inst.labels);
    }
    const eval::Prf v = micro.Compute();
    if (v.f1 >= best_valid.f1) {
      best_valid = v;
      best_epoch = epoch;
    }
  }
  eval::MicroPrf sherlock_test;
  for (const auto& inst : dataset.test) {
    sherlock_test.Add(sherlock.PredictLabels(baselines::SherlockFeatures(
                          ColumnCells(env.ctx.corpus, inst))),
                      inst.labels);
  }
  std::printf("sherlock: %d epochs (best valid F1 %.2f at epoch %d), %.1fs\n",
              kSherlockEpochs, best_valid.f1 * 100, best_epoch,
              timer.ElapsedSeconds());

  // ---- TURL variants (each fine-tunes a fresh pre-trained copy). ----
  tasks::FinetuneOptions ft;
  ft.epochs = 2;
  ft.max_tables = 400;
  auto run_variant = [&](tasks::InputVariant variant) {
    auto model = bench::LoadPretrained(env);
    tasks::TurlColumnTyper typer(model.get(), &env.ctx, &dataset, variant,
                                 /*seed=*/31);
    typer.Finetune(ft);
    rt::InferenceSession session = bench::MakeSession(*model);
    return typer.Evaluate(dataset.test, &session);
  };
  timer.Restart();
  const eval::Prf only_mention =
      run_variant(tasks::InputVariant::OnlyEntityMention());
  const eval::Prf full = run_variant(tasks::InputVariant::Full());
  const eval::Prf wo_meta =
      run_variant(tasks::InputVariant::WithoutMetadata());
  const eval::Prf wo_emb =
      run_variant(tasks::InputVariant::WithoutLearnedEmbedding());
  const eval::Prf only_meta = run_variant(tasks::InputVariant::OnlyMetadata());
  const eval::Prf only_emb =
      run_variant(tasks::InputVariant::OnlyLearnedEmbedding());
  std::printf("TURL fine-tuning time (6 variants): %.1fs\n",
              timer.ElapsedSeconds());

  std::printf("\n%-42s %6s %6s %6s\n", "Method", "F1", "P", "R");
  PrintRow("Sherlock", sherlock_test.Compute());
  PrintRow("TURL + fine-tuning (only entity mention)", only_mention);
  PrintRow("TURL + fine-tuning", full);
  PrintRow("  w/o table metadata", wo_meta);
  PrintRow("  w/o learned embedding", wo_emb);
  PrintRow("  only table metadata", only_meta);
  PrintRow("  only learned embedding", only_emb);

  std::printf(
      "\npaper shape: TURL (full) > every ablation > Sherlock; mention-only "
      "TURL already beats Sherlock.\n");
  return 0;
}
