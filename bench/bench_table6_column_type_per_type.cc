// Reproduces Table 6: per-type F1 on the validation set for the five
// highlighted types (person, pro_athlete, actor, location, citytown),
// comparing Sherlock against the TURL input variants.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/sherlock.h"
#include "bench_common.h"
#include "tasks/column_type.h"

namespace {

using namespace turl;

const char* kTypes[] = {"person", "pro_athlete", "actor", "location",
                        "citytown"};

std::vector<std::string> ColumnCells(const data::Corpus& corpus,
                                     const tasks::ColumnTypeInstance& inst) {
  std::vector<std::string> cells;
  for (const data::EntityCell& cell :
       corpus.tables[inst.table_index].columns[size_t(inst.column)].cells) {
    cells.push_back(cell.mention);
  }
  return cells;
}

void PrintRow(const char* name, const std::vector<double>& f1s) {
  std::printf("%-42s", name);
  for (double f : f1s) std::printf(" %7.2f", f * 100);
  std::printf("\n");
}

std::vector<double> SelectTypes(const tasks::ColumnTypeDataset& dataset,
                                const std::vector<eval::Prf>& per_label) {
  std::vector<double> out;
  for (const char* type : kTypes) {
    const int label = dataset.LabelOf(type);
    out.push_back(label >= 0 ? per_label[size_t(label)].f1 : 0.0);
  }
  return out;
}

}  // namespace

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Table 6: per-type column annotation (validation)");

  tasks::ColumnTypeDataset dataset = tasks::BuildColumnTypeDataset(env.ctx);
  std::printf("dataset: %d types, %zu train / %zu valid columns\n",
              dataset.num_labels(), dataset.train.size(),
              dataset.valid.size());

  // Sherlock per-type F1.
  std::vector<std::vector<float>> train_x;
  std::vector<std::vector<int>> train_y;
  for (const auto& inst : dataset.train) {
    train_x.push_back(
        baselines::SherlockFeatures(ColumnCells(env.ctx.corpus, inst)));
    train_y.push_back(inst.labels);
  }
  baselines::SherlockClassifier sherlock(dataset.num_labels(), 64, 5);
  Rng rng(9);
  for (int epoch = 0; epoch < 30; ++epoch) {
    sherlock.TrainEpoch(train_x, train_y, 1e-3f, &rng);
  }
  const int L = dataset.num_labels();
  std::vector<int64_t> tp(size_t(L), 0), fp(size_t(L), 0), fn(size_t(L), 0);
  for (const auto& inst : dataset.valid) {
    auto pred = sherlock.PredictLabels(
        baselines::SherlockFeatures(ColumnCells(env.ctx.corpus, inst)));
    std::vector<bool> is_pred(size_t(L), false), is_gold(size_t(L), false);
    for (int l : pred) is_pred[size_t(l)] = true;
    for (int l : inst.labels) is_gold[size_t(l)] = true;
    for (int l = 0; l < L; ++l) {
      if (is_pred[size_t(l)] && is_gold[size_t(l)]) ++tp[size_t(l)];
      if (is_pred[size_t(l)] && !is_gold[size_t(l)]) ++fp[size_t(l)];
      if (!is_pred[size_t(l)] && is_gold[size_t(l)]) ++fn[size_t(l)];
    }
  }
  std::vector<eval::Prf> sherlock_per_label;
  for (int l = 0; l < L; ++l) {
    sherlock_per_label.push_back(
        eval::ComputePrf(tp[size_t(l)], fp[size_t(l)], fn[size_t(l)]));
  }

  tasks::FinetuneOptions ft;
  ft.epochs = 2;
  ft.max_tables = 400;
  auto run_variant = [&](tasks::InputVariant variant) {
    auto model = bench::LoadPretrained(env);
    tasks::TurlColumnTyper typer(model.get(), &env.ctx, &dataset, variant, 31);
    typer.Finetune(ft);
    rt::InferenceSession session = bench::MakeSession(*model);
    return SelectTypes(dataset,
                       typer.EvaluatePerLabel(dataset.valid, &session));
  };

  std::printf("\n%-42s", "Method");
  for (const char* t : kTypes) std::printf(" %7s", t);
  std::printf("\n");
  PrintRow("Sherlock", SelectTypes(dataset, sherlock_per_label));
  PrintRow("TURL + fine-tuning", run_variant(tasks::InputVariant::Full()));
  PrintRow("  only entity mention",
           run_variant(tasks::InputVariant::OnlyEntityMention()));
  PrintRow("  w/o table metadata",
           run_variant(tasks::InputVariant::WithoutMetadata()));
  PrintRow("  w/o learned embedding",
           run_variant(tasks::InputVariant::WithoutLearnedEmbedding()));
  PrintRow("  only table metadata",
           run_variant(tasks::InputVariant::OnlyMetadata()));
  PrintRow("  only learned embedding",
           run_variant(tasks::InputVariant::OnlyLearnedEmbedding()));

  std::printf(
      "\npaper shape: coarse types (person/location) easy for everyone; "
      "fine-grained (actor/citytown) need table context — metadata variants "
      "beat mention-only there.\n");
  return 0;
}
