// Design-choice ablation (DESIGN.md §1): the paper warm-starts word/position
// embeddings from TinyBERT; our substitution is Word2Vec co-occurrence
// pre-initialization plus the paper's own entity-embedding init ("averaged
// word embeddings in entity names"). This bench measures what that buys
// under a fixed small pre-training budget versus random initialization.

#include <cstdio>

#include "bench_common.h"
#include "core/word_init.h"

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Ablation: word-embedding initialization");

  core::Pretrainer::Options opts;
  opts.epochs = 3;
  opts.max_train_tables = 1200;
  opts.eval_every = 1200;
  opts.seed = 7;

  auto run = [&](bool use_word2vec_init) {
    core::TurlConfig config = env.model_config;
    config.pretrain_epochs = opts.epochs;
    core::TurlModel model(config, env.ctx.vocab.size(),
                          env.ctx.entity_vocab.size(), /*seed=*/11);
    if (use_word2vec_init) {
      Rng rng(3);
      baselines::Word2VecConfig w2v;
      w2v.epochs = 4;
      const int replaced =
          core::InitializeFromWord2Vec(&model, env.ctx, w2v, &rng);
      std::printf("word2vec init: %d word rows replaced\n", replaced);
    }
    core::Pretrainer pretrainer(&model, &env.ctx);
    return pretrainer.Train(opts);
  };

  core::PretrainResult w2v_init = run(true);
  core::PretrainResult random_init = run(false);

  std::printf("\n%10s %18s %18s\n", "step", "ACC (w2v init)",
              "ACC (random init)");
  const size_t n =
      std::min(w2v_init.eval_curve.size(), random_init.eval_curve.size());
  for (size_t i = 0; i < n; ++i) {
    std::printf("%10lld %18.3f %18.3f\n",
                static_cast<long long>(w2v_init.eval_curve[i].first),
                w2v_init.eval_curve[i].second,
                random_init.eval_curve[i].second);
  }
  std::printf("\nfinal: word2vec init %.3f vs random init %.3f\n",
              w2v_init.final_accuracy, random_init.final_accuracy);
  std::printf("expected shape: informed initialization helps early; the gap "
              "narrows as pre-training progresses (same reason the paper "
              "starts from TinyBERT).\n");
  return 0;
}
