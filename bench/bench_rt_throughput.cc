// Bulk-inference throughput of the turl::rt runtime: encodes a fixed set of
// heterogeneous tables sequentially (the historical per-instance loop) and
// through an InferenceSession at 1 and N threads, reporting tables/sec. The
// 1-thread session must match the sequential path bit for bit; the N-thread
// session must match too (results are written by input index).
//
// Run with TURL_TRACE_JSON=trace.json to get a Chrome trace of every
// request: the scheduler phase shows queue-wait / batch-assembly / encode
// under a scheduler-opened root, and the head-scoring phase adds the task
// head's scoring span under per-instance BulkRun roots.

#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/cell_filling.h"
#include "bench_common.h"
#include "core/table_encoding.h"
#include "obs/trace.h"
#include "tasks/cell_filling.h"
#include "tasks/task_head.h"
#include "util/timer.h"

int main() {
  using namespace turl;
  bench::InitObservability();

  core::ContextConfig config;
  config.corpus.num_tables = 600;
  config.seed = 42;
  core::TurlContext ctx = core::BuildContext(config);
  core::TurlConfig model_config;  // Repro-scale defaults.
  core::TurlModel model(model_config, ctx.vocab.size(),
                        ctx.entity_vocab.size(), /*seed=*/11);
  std::printf("== rt throughput ==\n");

  // A mixed-shape workload: every held-out table.
  const text::WordPieceTokenizer tokenizer = ctx.MakeTokenizer();
  std::vector<core::EncodedTable> tables;
  for (size_t idx : ctx.corpus.valid) {
    core::EncodedTable t =
        core::EncodeTable(ctx.corpus.tables[idx], tokenizer, ctx.entity_vocab);
    if (t.total() > 0) tables.push_back(std::move(t));
    if (tables.size() >= 96) break;
  }
  std::printf("workload: %zu tables\n", tables.size());

  // Sequential baseline: the pre-runtime evaluation loop.
  WallTimer timer;
  std::vector<nn::Tensor> sequential;
  sequential.reserve(tables.size());
  for (const core::EncodedTable& t : tables) {
    sequential.push_back(model.Encode(t, /*training=*/false));
  }
  const double seq_s = timer.ElapsedSeconds();
  std::printf("sequential loop:      %6.2f tables/s (%.2fs)\n",
              tables.size() / seq_s, seq_s);

  auto check_match = [&](const std::vector<nn::Tensor>& got,
                         const char* what) {
    for (size_t i = 0; i < got.size(); ++i) {
      const auto a = sequential[i].ToVector();
      const auto b = got[i].ToVector();
      if (a != b) {  // Bit-exact comparison, intentionally.
        std::printf("MISMATCH (%s) at table %zu\n", what, i);
        return false;
      }
    }
    std::printf("(%s output bit-identical to sequential loop)\n", what);
    return true;
  };

  bool ok = true;
  {
    rt::InferenceSession session(model, rt::SessionOptions{.num_threads = 1});
    timer.Restart();
    std::vector<nn::Tensor> batched = session.EncodeBatch(
        std::span<const core::EncodedTable>(tables));
    const double s = timer.ElapsedSeconds();
    std::printf("session (1 thread):   %6.2f tables/s (%.2fs)\n",
                tables.size() / s, s);
    ok = check_match(batched, "1 thread") && ok;
  }
  {
    rt::InferenceSession session = bench::MakeSession(model);
    timer.Restart();
    std::vector<nn::Tensor> batched = session.EncodeBatch(
        std::span<const core::EncodedTable>(tables));
    const double s = timer.ElapsedSeconds();
    std::printf("session (%d threads):  %6.2f tables/s (%.2fs, %.2fx vs "
                "sequential)\n",
                session.num_threads(), tables.size() / s, s, seq_s / s);
    ok = check_match(batched, "N threads") && ok;

    // The scheduler path the task heads use: budget-capped micro-batches.
    timer.Restart();
    rt::BatchScheduler scheduler(&session);
    std::vector<nn::Tensor> scheduled(tables.size());
    for (size_t i = 0; i < tables.size(); ++i) {
      rt::Request request;
      request.table = &tables[i];
      request.request_id = i;
      request.done = [&scheduled, i](rt::Response r) {
        scheduled[i] = std::move(r.hidden);
      };
      scheduler.Submit(std::move(request));
    }
    scheduler.Flush();
    const double sched_s = timer.ElapsedSeconds();
    std::printf("scheduler (%d thr):    %6.2f tables/s (%.2fs)\n",
                session.num_threads(), tables.size() / sched_s, sched_s);
    ok = check_match(scheduled, "scheduler") && ok;

    // The full request pipeline a task head drives: per-instance input
    // encoding -> queue -> micro-batch forward -> head scoring, via
    // BulkScores. Cell filling needs no fine-tuning, so the freshly
    // initialized model scores deterministically out of the box.
    baselines::CellFillingIndex index(ctx.corpus, ctx.corpus.train);
    std::vector<tasks::CellFillInstance> instances =
        tasks::BuildCellFillInstances(ctx, index, ctx.corpus.valid,
                                      /*min_valid_pairs=*/3,
                                      /*max_instances=*/64);
    tasks::TurlCellFiller filler(&model, &ctx);
    timer.Restart();
    std::vector<std::vector<float>> scores =
        tasks::BulkScores(filler, instances, session);
    const double score_s = timer.ElapsedSeconds();
    std::printf("head scoring (%d thr): %6.2f instances/s (%zu instances, "
                "%.2fs)\n",
                session.num_threads(), instances.size() / score_s,
                instances.size(), score_s);
  }

  if (obs::Tracer::Enabled()) {
    std::printf("\n%s", obs::SlowTraceReport(5).c_str());
  }
  return ok ? 0 : 1;
}
