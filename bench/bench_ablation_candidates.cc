// Design-choice ablation (DESIGN.md §3): how the composition of the MER
// candidate set (§4.4: in-table entities + co-occurring entities + random
// negatives) affects pre-training quality, measured by validation
// object-entity-prediction accuracy after a fixed small budget.
//
// Shape expectation: co-occurring negatives are the hard ones — removing
// them (random-only padding) inflates training accuracy but transfers
// worse; tiny candidate sets (in-table only) underconstrain the softmax.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Ablation: MER candidate-set composition");

  core::Pretrainer::Options opts;
  opts.epochs = 3;
  opts.max_train_tables = 1200;
  opts.seed = 7;

  struct Variant {
    const char* name;
    int max_candidates;
    int min_random;
  };
  const Variant variants[] = {
      {"in-table only (cap 32, no random)", 32, 0},
      {"+ co-occurring (cap 160, no random)", 160, 0},
      {"+ random negatives (cap 160, 16 random; paper setting)", 160, 16},
      {"random-heavy (cap 160, 96 random)", 160, 96},
  };

  std::printf("\n%-56s %10s\n", "candidate-set variant", "final ACC");
  for (const Variant& v : variants) {
    core::TurlConfig config = env.model_config;
    config.pretrain_epochs = opts.epochs;
    config.mer_max_candidates = v.max_candidates;
    config.mer_min_random_negatives = v.min_random;
    core::TurlModel model(config, env.ctx.vocab.size(),
                          env.ctx.entity_vocab.size(), /*seed=*/11);
    core::Pretrainer pretrainer(&model, &env.ctx);
    core::PretrainResult result = pretrainer.Train(opts);
    std::printf("%-56s %10.3f\n", v.name, result.final_accuracy);
  }

  std::printf(
      "\nnote: evaluation always uses the full paper-style candidate set, so "
      "rows are comparable; only the *training* sets differ.\n");
  return 0;
}
