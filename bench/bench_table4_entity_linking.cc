// Reproduces Table 4: entity linking F1/P/R on two evaluation sets (a
// WikiGS-like set = held-out validation tables, and "our testing set" =
// held-out test tables) for: T2K-style, Hybrid II-style, the raw lookup
// service, TURL + fine-tuning (with w/o-description and w/o-type ablations)
// and the lookup oracle.

#include <cstdio>

#include "baselines/entity_linking_baselines.h"
#include "bench_common.h"
#include "kb/lookup.h"
#include "tasks/entity_linking.h"
#include "util/timer.h"

namespace {

using namespace turl;

void PrintRow(const char* name, const eval::Prf& prf) {
  std::printf("%-28s %5.0f %5.0f %5.0f\n", name, prf.f1 * 100,
              prf.precision * 100, prf.recall * 100);
}

eval::Prf EvalBaseline(const tasks::ElDataset& dataset,
                       const data::Corpus& corpus,
                       const std::function<baselines::TableLinks(
                           const data::Table&)>& link_table) {
  // Cache per-table link matrices, then read off per-instance predictions.
  std::vector<kb::EntityId> predictions;
  predictions.reserve(dataset.instances.size());
  size_t current_table = SIZE_MAX;
  baselines::TableLinks links;
  for (const tasks::ElInstance& inst : dataset.instances) {
    if (inst.table_index != current_table) {
      current_table = inst.table_index;
      links = link_table(corpus.tables[current_table]);
    }
    predictions.push_back(links[size_t(inst.column)][size_t(inst.row)]);
  }
  return tasks::EvaluateElPredictions(dataset, predictions);
}

}  // namespace

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Table 4: entity linking");

  kb::LookupService lookup(&env.ctx.world.kb);
  std::printf("lookup service: %zu indexed surfaces\n", lookup.num_surfaces());

  // Datasets. Evaluation keeps unreachable mentions (they cost recall).
  tasks::ElDataset wikigs = tasks::BuildElDataset(
      env.ctx, lookup, env.ctx.corpus.valid, /*candidate_k=*/50,
      /*drop_unreachable=*/false, /*max_instances=*/1500);
  tasks::ElDataset ours = tasks::BuildElDataset(
      env.ctx, lookup, env.ctx.corpus.test, 50, false, 1500);
  tasks::ElDataset train = tasks::BuildElDataset(
      env.ctx, lookup, env.ctx.corpus.train, 50, /*drop_unreachable=*/true,
      /*max_instances=*/6000);
  std::printf("instances: wikigs-like %zu, ours %zu, fine-tune %zu\n",
              wikigs.instances.size(), ours.instances.size(),
              train.instances.size());

  // Baselines shared across both evaluation sets.
  Rng w2v_rng(3);
  baselines::Word2Vec entity_emb = baselines::TrainEntityEmbeddings(
      env.ctx.corpus, env.ctx.corpus.train, baselines::Word2VecConfig{}, &w2v_rng);
  baselines::T2KLinker t2k(&env.ctx.world.kb, &lookup);
  baselines::HybridLinker hybrid(&env.ctx.world.kb, &lookup, &entity_emb);

  // TURL variants. Each trains a fresh copy of the pre-trained checkpoint.
  tasks::FinetuneOptions ft;
  ft.epochs = 2;
  ft.max_tables = 250;
  auto run_turl = [&](tasks::ElRepresentation rep) {
    auto model = bench::LoadPretrained(env);
    tasks::TurlEntityLinker linker(model.get(), &env.ctx, rep, /*seed=*/31);
    linker.Finetune(train, ft);
    rt::InferenceSession session = bench::MakeSession(*model);
    return std::make_pair(linker.Evaluate(wikigs, &session),
                          linker.Evaluate(ours, &session));
  };
  WallTimer timer;
  auto [turl_w, turl_o] = run_turl({true, true});
  auto [nodesc_w, nodesc_o] = run_turl({false, true});
  auto [notype_w, notype_o] = run_turl({true, false});
  std::printf("TURL fine-tuning time (3 variants): %.1fs\n",
              timer.ElapsedSeconds());

  const struct {
    const char* name;
    const tasks::ElDataset* dataset;
    const eval::Prf turl, nodesc, notype;
  } sets[] = {{"WikiGS-like (validation)", &wikigs, turl_w, nodesc_w, notype_w},
              {"Our testing set", &ours, turl_o, nodesc_o, notype_o}};

  for (const auto& set : sets) {
    std::printf("\n-- %s --\n%-28s %5s %5s %5s\n", set.name, "Method", "F1",
                "P", "R");
    PrintRow("T2K", EvalBaseline(*set.dataset, env.ctx.corpus,
                                 [&](const data::Table& t) {
                                   return t2k.LinkTable(t);
                                 }));
    PrintRow("Hybrid II", EvalBaseline(*set.dataset, env.ctx.corpus,
                                       [&](const data::Table& t) {
                                         return hybrid.LinkTable(t);
                                       }));
    PrintRow("Lookup (top-1)",
             EvalBaseline(*set.dataset, env.ctx.corpus,
                          [&](const data::Table& t) {
                            return baselines::LookupTop1Links(t, lookup);
                          }));
    PrintRow("TURL + fine-tuning", set.turl);
    PrintRow("  w/o entity description", set.nodesc);
    PrintRow("  w/o entity type", set.notype);
    PrintRow("Lookup (Oracle)", tasks::EvaluateElOracle(*set.dataset));
  }

  std::printf(
      "\npaper shape: TURL best F1 with the largest precision gain; "
      "description ablation hurts most; oracle bounds recall.\n");
  return 0;
}
