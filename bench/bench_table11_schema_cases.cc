// Reproduces Table 11: a schema-augmentation case study — for a few test
// queries, the per-query average precision of kNN vs TURL, the headers each
// predicts, and the caption of kNN's strongest supporting table.

#include <cstdio>

#include "baselines/knn_schema.h"
#include "bench_common.h"
#include "tasks/schema_augmentation.h"

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Table 11: schema augmentation case study");

  tasks::HeaderVocab vocab = tasks::BuildHeaderVocab(env.ctx);
  baselines::KnnSchemaRecommender knn(env.ctx.corpus, env.ctx.corpus.train);

  std::vector<tasks::SchemaAugInstance> train = tasks::BuildSchemaAugInstances(
      env.ctx, vocab, env.ctx.corpus.train, 1, 400);
  auto model = bench::LoadPretrained(env);
  tasks::TurlSchemaAugmenter augmenter(model.get(), &env.ctx, &vocab, 31);
  tasks::FinetuneOptions ft;
  ft.epochs = 4;
  augmenter.Finetune(train, ft);

  std::vector<tasks::SchemaAugInstance> queries =
      tasks::BuildSchemaAugInstances(env.ctx, vocab, env.ctx.corpus.test, 1,
                                     /*max_instances=*/60);
  // Pick three diverse cases (first of each distinct pattern).
  std::vector<size_t> picks;
  std::vector<std::string> seen_patterns;
  for (size_t i = 0; i < queries.size() && picks.size() < 3; ++i) {
    const std::string& pattern =
        env.ctx.corpus.tables[queries[i].table_index].pattern;
    bool fresh = true;
    for (const auto& p : seen_patterns) fresh &= (p != pattern);
    if (fresh) {
      picks.push_back(i);
      seen_patterns.push_back(pattern);
    }
  }

  auto ap_of = [&](const tasks::SchemaAugInstance& inst,
                   const std::vector<int>& ranking) {
    return tasks::EvaluateSchemaAugmentation({inst}, {ranking});
  };

  for (size_t pick : picks) {
    const tasks::SchemaAugInstance& inst = queries[pick];
    const data::Table& table = env.ctx.corpus.tables[inst.table_index];
    std::printf("\n---- query: \"%s\"\n", table.caption.c_str());
    std::printf("seed header: %s | target headers:",
                inst.seed_headers.empty()
                    ? "(none)"
                    : vocab.headers[size_t(inst.seed_headers[0])].c_str());
    for (int h : inst.gold_headers) {
      std::printf(" %s,", vocab.headers[size_t(h)].c_str());
    }
    std::printf("\n");

    // kNN row.
    std::vector<std::string> seed_names;
    for (int h : inst.seed_headers) {
      seed_names.push_back(vocab.headers[size_t(h)]);
    }
    std::vector<int> knn_ranking;
    for (const auto& s : knn.Recommend(table.caption, seed_names)) {
      const int id = vocab.Id(s.header);
      if (id >= 0) knn_ranking.push_back(id);
    }
    std::printf("kNN  AP %.2f | predicted:", ap_of(inst, knn_ranking));
    for (size_t i = 0; i < knn_ranking.size() && i < 5; ++i) {
      std::printf(" %s,", vocab.headers[size_t(knn_ranking[i])].c_str());
    }
    auto neighbors = knn.Neighbors(table.caption, 1);
    if (!neighbors.empty()) {
      std::printf("\n     support caption: \"%s\" (sim %.2f)",
                  env.ctx.corpus.tables[neighbors[0].table_index]
                      .caption.c_str(),
                  neighbors[0].similarity);
    }
    std::printf("\n");

    // TURL row.
    std::vector<int> turl_ranking = augmenter.Predict(inst);
    std::printf("TURL AP %.2f | predicted:", ap_of(inst, turl_ranking));
    for (size_t i = 0; i < turl_ranking.size() && i < 5; ++i) {
      std::printf(" %s,", vocab.headers[size_t(turl_ranking[i])].c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\npaper shape: kNN excels when a near-duplicate table exists (compare "
      "support caption vs query); TURL proposes plausible semantically "
      "related headers.\n");
  return 0;
}
