// Closed-loop load generator for the serving front-end: N client threads
// drive a live ServeServer over loopback sockets at a target aggregate QPS,
// each client sending its next request only after the previous response
// arrived (closed loop), with pacing sleeps to hold the schedule. After
// each kOk reply the client scores the returned hidden states through
// TurlModel::MlmLogits *inside the latency window* — the request is not
// "done" until it produced logits, so the scoring path is part of p50/p99.
//
// The whole load runs twice: trial "fp32" with TURL_QUANT_SCORING off and
// trial "int8" with the quantized scoring path forced on (quant caches
// invalidated in between). Both trial blocks land side by side in
// BENCH_serve.json (override with TURL_BENCH_SERVE) so the latency delta is
// the int8 scorer's, with everything else held fixed. Each trial also
// cross-checks the server's own 1m SLI window against the client-side
// ground truth — as deltas against a pre-trial snapshot, because the
// rolling window spans both trials.
//
// Knobs (environment):
//   TURL_BENCH_SERVE_QPS       target aggregate requests/sec (default 50)
//   TURL_BENCH_SERVE_SECONDS   measured duration per trial (default 5)
//   TURL_BENCH_SERVE_CLIENTS   closed-loop client threads (default 4)
//   TURL_SERVE_REPLICAS        model replicas in the server (default 2)
//
// The gate is deliberately behavioural, not a latency SLO (machine-speed
// dependent): every request must be answered — kOk or an explicit shed
// status, never a hang, transport error, or crash — at least 90% of them
// must be kOk at the default load in BOTH trials, and the int8 trial's
// ok-rate must not drop more than 5 points below fp32's.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/table_encoding.h"
#include "nn/kernels/quant.h"
#include "obs/slo.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/timer.h"

namespace {

using namespace turl;

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

struct TrialResult {
  const char* name = "";
  double elapsed_s = 0, achieved_qps = 0;
  double p50 = 0, p90 = 0, p99 = 0, max_ms = 0;
  int64_t answered = 0, ok = 0, overloaded = 0, deadline = 0,
          transport_errors = 0;
  double ok_fraction = 0;
  int replicas = 0;
  int64_t sli_total = 0, sli_ok = 0, sli_shed = 0, sli_deadline = 0;
  bool sli_checkable = false, sli_agree = true;
  bool pass = false;
};

/// One full closed-loop run against a fresh server. `quant` selects the
/// scoring path for the in-window MlmLogits call (and for any server-side
/// serve-scoring); quant caches are invalidated on entry so trial order
/// can't leak a stale pack across the knob flip.
TrialResult RunTrial(const char* name, bool quant, core::TurlModel& model,
                     const std::vector<core::EncodedTable>& tables,
                     int target_qps, int seconds, int num_clients) {
  TrialResult result;
  result.name = name;
  nn::kernels::SetQuantScoringForTest(quant ? 1 : 0);
  model.InvalidateQuantizedScoring();
  {
    // Warm the scoring path outside the timed window: the int8 trial's
    // first call would otherwise pay the one-time vocab-table pack (which
    // real deployments amortize across the model's lifetime) inside one
    // request's latency.
    const int64_t d = model.config().d_model;
    nn::Tensor warm = nn::Tensor::FromVector(
        {1, d}, std::vector<float>(static_cast<size_t>(d), 0.1f));
    (void)model.MlmLogits(warm, {0}, core::Scoring::kServe);
  }

  serve::ServeOptions options = serve::ServeServer::OptionsFromEnv();
  options.port = 0;  // Ephemeral: the bench talks to whatever was bound.
  options.num_io_workers = std::max(8, num_clients);
  options.session.num_threads = 2;
  serve::ServeServer server(model, options);
  if (const Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    result.transport_errors = 1;
    return result;
  }
  result.replicas = server.num_replicas();
  std::printf("== serve closed-loop load [%s] ==\n", name);
  std::printf(
      "target %d req/s for %ds, %d clients, %d replicas, %zu distinct "
      "tables, port %d\n",
      target_qps, seconds, num_clients, server.num_replicas(), tables.size(),
      server.port());

  // The rolling SLI window spans both trials, so the per-trial ground-truth
  // comparison is against deltas from this pre-trial snapshot.
  const obs::SliSnapshot sli_before =
      obs::SliEngine::Get().Snapshot("encode", 60);

  // Each client owns one connection and a 1/num_clients share of the target
  // rate; the pacing clock is absolute (send #k at start + k*interval), so a
  // slow reply eats into the following gap instead of shifting the whole
  // schedule (no coordinated omission in the achieved-QPS number).
  const double interval_s =
      num_clients / std::max(1.0, static_cast<double>(target_qps));
  std::mutex agg_mu;
  std::vector<double> latencies_ms;
  std::atomic<int64_t> ok{0}, overloaded{0}, deadline{0}, transport_errors{0};

  WallTimer wall;
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      serve::ServeClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      std::vector<double> local;
      const auto start = std::chrono::steady_clock::now();
      const auto stop_at = start + std::chrono::seconds(seconds);
      uint64_t sent = 0;
      while (std::chrono::steady_clock::now() < stop_at) {
        const auto scheduled =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(sent * interval_s));
        std::this_thread::sleep_until(scheduled);
        const core::EncodedTable& table =
            tables[(c + sent) % tables.size()];
        serve::WireResponse response;
        const auto t0 = std::chrono::steady_clock::now();
        const Status s = client.Call(table, rt::TaskKind::kEncode,
                                     uint64_t(c) << 32 | sent, &response);
        if (s.ok() && response.status == rt::ResponseStatus::kOk &&
            response.rows > 0 && response.cols > 0) {
          // The scored request is the unit of work: fold the MLM logits for
          // the first row into the measured latency so the fp32-vs-int8
          // scoring delta shows up in p50/p99.
          nn::Tensor hidden = nn::Tensor::FromVector(
              {response.rows, response.cols}, std::move(response.hidden));
          const nn::Tensor logits =
              model.MlmLogits(hidden, {0}, core::Scoring::kServe);
          volatile float sink = logits.data()[0];  // Keep the score live.
          (void)sink;
        }
        const auto t1 = std::chrono::steady_clock::now();
        ++sent;
        if (!s.ok()) {
          transport_errors.fetch_add(1);
          break;  // Connection is dead; this client is done.
        }
        local.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        switch (response.status) {
          case rt::ResponseStatus::kOk:
            ok.fetch_add(1);
            break;
          case rt::ResponseStatus::kOverloaded:
            overloaded.fetch_add(1);
            break;
          case rt::ResponseStatus::kDeadlineExceeded:
            deadline.fetch_add(1);
            break;
          default:
            transport_errors.fetch_add(1);
            break;
        }
      }
      std::lock_guard<std::mutex> lock(agg_mu);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : clients) t.join();
  result.elapsed_s = wall.ElapsedSeconds();

  // The server's own 1m SLI window should agree with the client-side ground
  // truth computed below — that agreement is what makes /statusz numbers
  // trustworthy. Wide events land just after the reply hits the wire, so
  // give the last in-flight record a moment before snapshotting.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const obs::SliSnapshot sli = obs::SliEngine::Get().Snapshot("encode", 60);
  server.Stop();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.answered = static_cast<int64_t>(latencies_ms.size());
  result.achieved_qps =
      result.elapsed_s > 0 ? result.answered / result.elapsed_s : 0.0;
  result.p50 = Percentile(latencies_ms, 0.50);
  result.p90 = Percentile(latencies_ms, 0.90);
  result.p99 = Percentile(latencies_ms, 0.99);
  result.max_ms = latencies_ms.empty() ? 0.0 : latencies_ms.back();
  result.ok = ok.load();
  result.overloaded = overloaded.load();
  result.deadline = deadline.load();
  result.transport_errors = transport_errors.load();
  result.ok_fraction =
      result.answered > 0
          ? static_cast<double>(result.ok) / result.answered
          : 0.0;

  // SLI cross-check on window deltas: every answered request fits in the 1m
  // window when the run was shorter than the window; a client that died
  // mid-reply may leave the server one record ahead, so allow per-client
  // slack.
  result.sli_total = sli.total - sli_before.total;
  result.sli_ok = sli.ok - sli_before.ok;
  result.sli_shed = sli.shed - sli_before.shed;
  result.sli_deadline = sli.deadline_miss - sli_before.deadline_miss;
  const int64_t slack = num_clients;
  result.sli_checkable = obs::SliEngine::Enabled() &&
                         result.elapsed_s < 25.0 && result.answered > 0;
  result.sli_agree =
      !result.sli_checkable ||
      (std::llabs(result.sli_total - result.answered) <= slack &&
       std::llabs(result.sli_ok - result.ok) <= slack &&
       std::llabs(result.sli_shed - result.overloaded) <= slack &&
       std::llabs(result.sli_deadline - result.deadline) <= slack);

  result.pass = result.transport_errors == 0 && result.answered > 0 &&
                result.ok_fraction >= 0.9 && result.sli_agree;

  std::printf("answered %lld requests in %.2fs: %.1f req/s achieved "
              "(target %d)\n",
              static_cast<long long>(result.answered), result.elapsed_s,
              result.achieved_qps, target_qps);
  std::printf("latency p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, max %.2f ms\n",
              result.p50, result.p90, result.p99, result.max_ms);
  std::printf("status: ok %lld, shed %lld, deadline-miss %lld, transport "
              "errors %lld -> %s\n",
              static_cast<long long>(result.ok),
              static_cast<long long>(result.overloaded),
              static_cast<long long>(result.deadline),
              static_cast<long long>(result.transport_errors),
              result.pass ? "PASS" : "FAIL");
  std::printf("server 1m SLI deltas: n %lld, ok %lld, shed %lld, "
              "deadline-miss %lld -> %s\n",
              static_cast<long long>(result.sli_total),
              static_cast<long long>(result.sli_ok),
              static_cast<long long>(result.sli_shed),
              static_cast<long long>(result.sli_deadline),
              result.sli_checkable
                  ? (result.sli_agree ? "agrees" : "DISAGREES")
                  : "not checked");
  return result;
}

void WriteTrialJson(std::FILE* f, const TrialResult& t) {
  std::fprintf(f,
               "    {\n"
               "      \"name\": \"%s\",\n"
               "      \"achieved_qps\": %.3f,\n"
               "      \"duration_s\": %.3f,\n"
               "      \"requests\": %lld,\n"
               "      \"ok\": %lld,\n"
               "      \"overloaded\": %lld,\n"
               "      \"deadline_exceeded\": %lld,\n"
               "      \"transport_errors\": %lld,\n"
               "      \"ok_fraction\": %.6f,\n"
               "      \"p50_ms\": %.3f,\n"
               "      \"p90_ms\": %.3f,\n"
               "      \"p99_ms\": %.3f,\n"
               "      \"max_ms\": %.3f,\n"
               "      \"sli_requests\": %lld,\n"
               "      \"sli_ok\": %lld,\n"
               "      \"sli_shed\": %lld,\n"
               "      \"sli_deadline_miss\": %lld,\n"
               "      \"sli_agree\": %s,\n"
               "      \"pass\": %s\n"
               "    }",
               t.name, t.achieved_qps, t.elapsed_s,
               static_cast<long long>(t.answered),
               static_cast<long long>(t.ok),
               static_cast<long long>(t.overloaded),
               static_cast<long long>(t.deadline),
               static_cast<long long>(t.transport_errors), t.ok_fraction,
               t.p50, t.p90, t.p99, t.max_ms,
               static_cast<long long>(t.sli_total),
               static_cast<long long>(t.sli_ok),
               static_cast<long long>(t.sli_shed),
               static_cast<long long>(t.sli_deadline),
               t.sli_agree ? "true" : "false", t.pass ? "true" : "false");
}

}  // namespace

int main() {
  using namespace turl;
  bench::InitObservability();

  const int target_qps = EnvInt("TURL_BENCH_SERVE_QPS", 50);
  const int seconds = EnvInt("TURL_BENCH_SERVE_SECONDS", 5);
  const int num_clients = EnvInt("TURL_BENCH_SERVE_CLIENTS", 4);

  core::ContextConfig config;
  config.corpus.num_tables = 600;
  config.seed = 42;
  core::TurlContext ctx = core::BuildContext(config);
  core::TurlModel model(core::TurlConfig{}, ctx.vocab.size(),
                        ctx.entity_vocab.size(), /*seed=*/11);

  const text::WordPieceTokenizer tokenizer = ctx.MakeTokenizer();
  std::vector<core::EncodedTable> tables;
  for (size_t idx : ctx.corpus.valid) {
    core::EncodedTable t =
        core::EncodeTable(ctx.corpus.tables[idx], tokenizer, ctx.entity_vocab);
    if (t.total() > 0) tables.push_back(std::move(t));
    if (tables.size() >= 64) break;
  }
  if (tables.empty()) {
    std::fprintf(stderr, "no non-empty tables in the corpus\n");
    return 1;
  }

  const TrialResult fp32 = RunTrial("fp32", /*quant=*/false, model, tables,
                                    target_qps, seconds, num_clients);
  const TrialResult int8 = RunTrial("int8", /*quant=*/true, model, tables,
                                    target_qps, seconds, num_clients);
  nn::kernels::SetQuantScoringForTest(-1);  // Back to the env default.
  model.InvalidateQuantizedScoring();

  // The int8 path must be a pure latency win: same answer quality knobs,
  // unchanged ok-rate (within 5 points of fp32's — both already >= 90%).
  const double ok_delta = int8.ok_fraction - fp32.ok_fraction;
  const bool ok_rate_unchanged = std::abs(ok_delta) <= 0.05;
  const bool pass = fp32.pass && int8.pass && ok_rate_unchanged;

  std::printf("fp32 p50 %.2f ms / p99 %.2f ms vs int8 p50 %.2f ms / p99 "
              "%.2f ms; ok-rate %.4f -> %.4f (delta %+.4f) -> %s\n",
              fp32.p50, fp32.p99, int8.p50, int8.p99, fp32.ok_fraction,
              int8.ok_fraction, ok_delta, pass ? "PASS" : "FAIL");

  const char* path_env = std::getenv("TURL_BENCH_SERVE");
  const std::string out = (path_env != nullptr && *path_env != '\0')
                              ? std::string(path_env)
                              : std::string("BENCH_serve.json");
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"target_qps\": %d,\n"
                 "  \"clients\": %d,\n"
                 "  \"replicas\": %d,\n"
                 "  \"trials\": [\n",
                 target_qps, num_clients, fp32.replicas);
    WriteTrialJson(f, fp32);
    std::fprintf(f, ",\n");
    WriteTrialJson(f, int8);
    std::fprintf(f,
                 "\n  ],\n"
                 "  \"ok_fraction_delta\": %.6f,\n"
                 "  \"ok_rate_unchanged\": %s,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 ok_delta, ok_rate_unchanged ? "true" : "false",
                 pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  }
  return pass ? 0 : 1;
}
