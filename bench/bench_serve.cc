// Closed-loop load generator for the serving front-end: N client threads
// drive a live ServeServer over loopback sockets at a target aggregate QPS,
// each client sending its next request only after the previous response
// arrived (closed loop), with pacing sleeps to hold the schedule. Reports
// end-to-end p50/p90/p99/max latency, the achieved rate and shed /
// deadline-miss counts into BENCH_serve.json (override with
// TURL_BENCH_SERVE), and cross-checks the server's own 1m SLI window
// against the client-side ground truth — the agreement that makes /statusz
// trustworthy.
//
// Knobs (environment):
//   TURL_BENCH_SERVE_QPS       target aggregate requests/sec (default 50)
//   TURL_BENCH_SERVE_SECONDS   measured duration (default 5)
//   TURL_BENCH_SERVE_CLIENTS   closed-loop client threads (default 4)
//   TURL_SERVE_REPLICAS        model replicas in the server (default 2)
//
// The gate is deliberately behavioural, not a latency SLO (machine-speed
// dependent): every request must be answered — kOk or an explicit shed
// status, never a hang, transport error, or crash — and at least 90% of
// them must be kOk at the default load.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/table_encoding.h"
#include "obs/slo.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/timer.h"

namespace {

using namespace turl;

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main() {
  using namespace turl;
  bench::InitObservability();

  const int target_qps = EnvInt("TURL_BENCH_SERVE_QPS", 50);
  const int seconds = EnvInt("TURL_BENCH_SERVE_SECONDS", 5);
  const int num_clients = EnvInt("TURL_BENCH_SERVE_CLIENTS", 4);

  core::ContextConfig config;
  config.corpus.num_tables = 600;
  config.seed = 42;
  core::TurlContext ctx = core::BuildContext(config);
  core::TurlModel model(core::TurlConfig{}, ctx.vocab.size(),
                        ctx.entity_vocab.size(), /*seed=*/11);

  const text::WordPieceTokenizer tokenizer = ctx.MakeTokenizer();
  std::vector<core::EncodedTable> tables;
  for (size_t idx : ctx.corpus.valid) {
    core::EncodedTable t =
        core::EncodeTable(ctx.corpus.tables[idx], tokenizer, ctx.entity_vocab);
    if (t.total() > 0) tables.push_back(std::move(t));
    if (tables.size() >= 64) break;
  }
  if (tables.empty()) {
    std::fprintf(stderr, "no non-empty tables in the corpus\n");
    return 1;
  }

  serve::ServeOptions options = serve::ServeServer::OptionsFromEnv();
  options.port = 0;  // Ephemeral: the bench talks to whatever was bound.
  options.num_io_workers = std::max(8, num_clients);
  options.session.num_threads = 2;
  serve::ServeServer server(model, options);
  if (const Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("== serve closed-loop load ==\n");
  std::printf(
      "target %d req/s for %ds, %d clients, %d replicas, %zu distinct "
      "tables, port %d\n",
      target_qps, seconds, num_clients, server.num_replicas(), tables.size(),
      server.port());

  // Each client owns one connection and a 1/num_clients share of the target
  // rate; the pacing clock is absolute (send #k at start + k*interval), so a
  // slow reply eats into the following gap instead of shifting the whole
  // schedule (no coordinated omission in the achieved-QPS number).
  const double interval_s =
      num_clients / std::max(1.0, static_cast<double>(target_qps));
  std::mutex agg_mu;
  std::vector<double> latencies_ms;
  std::atomic<int64_t> ok{0}, overloaded{0}, deadline{0}, transport_errors{0};

  WallTimer wall;
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      serve::ServeClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      std::vector<double> local;
      const auto start = std::chrono::steady_clock::now();
      const auto stop_at = start + std::chrono::seconds(seconds);
      uint64_t sent = 0;
      while (std::chrono::steady_clock::now() < stop_at) {
        const auto scheduled =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(sent * interval_s));
        std::this_thread::sleep_until(scheduled);
        const core::EncodedTable& table =
            tables[(c + sent) % tables.size()];
        serve::WireResponse response;
        const auto t0 = std::chrono::steady_clock::now();
        const Status s = client.Call(table, rt::TaskKind::kEncode,
                                     uint64_t(c) << 32 | sent, &response);
        const auto t1 = std::chrono::steady_clock::now();
        ++sent;
        if (!s.ok()) {
          transport_errors.fetch_add(1);
          break;  // Connection is dead; this client is done.
        }
        local.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        switch (response.status) {
          case rt::ResponseStatus::kOk:
            ok.fetch_add(1);
            break;
          case rt::ResponseStatus::kOverloaded:
            overloaded.fetch_add(1);
            break;
          case rt::ResponseStatus::kDeadlineExceeded:
            deadline.fetch_add(1);
            break;
          default:
            transport_errors.fetch_add(1);
            break;
        }
      }
      std::lock_guard<std::mutex> lock(agg_mu);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed_s = wall.ElapsedSeconds();

  // The server's own 1m SLI window should agree with the client-side ground
  // truth computed below — that agreement is what makes /statusz numbers
  // trustworthy. Wide events land just after the reply hits the wire, so
  // give the last in-flight record a moment before snapshotting.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const obs::SliSnapshot sli = obs::SliEngine::Get().Snapshot("encode", 60);
  const int replicas = server.num_replicas();  // Stop() tears them down.
  server.Stop();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const int64_t answered = static_cast<int64_t>(latencies_ms.size());
  const double achieved_qps = elapsed_s > 0 ? answered / elapsed_s : 0.0;
  const double p50 = Percentile(latencies_ms, 0.50);
  const double p90 = Percentile(latencies_ms, 0.90);
  const double p99 = Percentile(latencies_ms, 0.99);
  const double max_ms = latencies_ms.empty() ? 0.0 : latencies_ms.back();
  const double ok_fraction =
      answered > 0 ? static_cast<double>(ok.load()) / answered : 0.0;

  // SLI cross-check: every answered request fits in the 1m window when the
  // run was shorter than the window; a client that died mid-reply may leave
  // the server one record ahead, so allow per-client slack.
  const int64_t slack = num_clients;
  const bool sli_checkable =
      obs::SliEngine::Enabled() && elapsed_s < 55.0 && answered > 0;
  const bool sli_agree =
      !sli_checkable ||
      (std::llabs(sli.total - answered) <= slack &&
       std::llabs(sli.ok - ok.load()) <= slack &&
       std::llabs(sli.shed - overloaded.load()) <= slack &&
       std::llabs(sli.deadline_miss - deadline.load()) <= slack);

  const bool pass = transport_errors.load() == 0 && answered > 0 &&
                    ok_fraction >= 0.9 && sli_agree;

  std::printf("answered %lld requests in %.2fs: %.1f req/s achieved "
              "(target %d)\n",
              static_cast<long long>(answered), elapsed_s, achieved_qps,
              target_qps);
  std::printf("latency p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, max %.2f ms\n",
              p50, p90, p99, max_ms);
  std::printf("status: ok %lld, shed %lld, deadline-miss %lld, transport "
              "errors %lld -> %s\n",
              static_cast<long long>(ok.load()),
              static_cast<long long>(overloaded.load()),
              static_cast<long long>(deadline.load()),
              static_cast<long long>(transport_errors.load()),
              pass ? "PASS" : "FAIL");
  std::printf("server 1m SLI window: n %lld, ok %lld, shed %lld, "
              "deadline-miss %lld, availability %.4f, p99 %.2f ms -> %s\n",
              static_cast<long long>(sli.total),
              static_cast<long long>(sli.ok),
              static_cast<long long>(sli.shed),
              static_cast<long long>(sli.deadline_miss), sli.availability,
              sli.p99_ms,
              sli_checkable ? (sli_agree ? "agrees" : "DISAGREES")
                            : "not checked");

  const char* path_env = std::getenv("TURL_BENCH_SERVE");
  const std::string out = (path_env != nullptr && *path_env != '\0')
                              ? std::string(path_env)
                              : std::string("BENCH_serve.json");
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"target_qps\": %d,\n"
                 "  \"achieved_qps\": %.3f,\n"
                 "  \"duration_s\": %.3f,\n"
                 "  \"clients\": %d,\n"
                 "  \"replicas\": %d,\n"
                 "  \"requests\": %lld,\n"
                 "  \"ok\": %lld,\n"
                 "  \"overloaded\": %lld,\n"
                 "  \"deadline_exceeded\": %lld,\n"
                 "  \"transport_errors\": %lld,\n"
                 "  \"p50_ms\": %.3f,\n"
                 "  \"p90_ms\": %.3f,\n"
                 "  \"p99_ms\": %.3f,\n"
                 "  \"max_ms\": %.3f,\n"
                 "  \"shed\": %lld,\n"
                 "  \"deadline_miss\": %lld,\n"
                 "  \"sli_requests\": %lld,\n"
                 "  \"sli_ok\": %lld,\n"
                 "  \"sli_shed\": %lld,\n"
                 "  \"sli_deadline_miss\": %lld,\n"
                 "  \"sli_availability\": %.6f,\n"
                 "  \"sli_p99_ms\": %.3f,\n"
                 "  \"sli_agree\": %s,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 target_qps, achieved_qps, elapsed_s, num_clients,
                 replicas, static_cast<long long>(answered),
                 static_cast<long long>(ok.load()),
                 static_cast<long long>(overloaded.load()),
                 static_cast<long long>(deadline.load()),
                 static_cast<long long>(transport_errors.load()), p50, p90,
                 p99, max_ms, static_cast<long long>(overloaded.load()),
                 static_cast<long long>(deadline.load()),
                 static_cast<long long>(sli.total),
                 static_cast<long long>(sli.ok),
                 static_cast<long long>(sli.shed),
                 static_cast<long long>(sli.deadline_miss), sli.availability,
                 sli.p99_ms, sli_agree ? "true" : "false",
                 pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  }
  return pass ? 0 : 1;
}
