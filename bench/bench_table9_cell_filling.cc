// Reproduces Table 9: cell filling P@1/3/5/10 for Exact, H2H, H2V and TURL
// (no fine-tuning — MER-style masked prediction), all over the shared
// candidate-value-finding module, plus the §6.6 candidate statistics.

#include <cstdio>

#include "baselines/cell_filling.h"
#include "bench_common.h"
#include "tasks/cell_filling.h"
#include "tasks/task_head.h"
#include "util/timer.h"

namespace {

using namespace turl;

void PrintRow(const char* name, const tasks::CellFillResult& r) {
  std::printf("%-10s %8.2f %8.2f %8.2f %8.2f\n", name, r.p_at_1 * 100,
              r.p_at_3 * 100, r.p_at_5 * 100, r.p_at_10 * 100);
}

}  // namespace

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Table 9: cell filling");

  baselines::CellFillingIndex index(env.ctx.corpus, env.ctx.corpus.train);
  Rng w2v_rng(3);
  baselines::Word2Vec header_w2v = baselines::TrainHeaderEmbeddings(
      env.ctx.corpus, env.ctx.corpus.train, baselines::Word2VecConfig{},
      &w2v_rng);
  baselines::CellFillingRankers rankers(&index, &header_w2v);

  std::vector<size_t> eval_tables = env.ctx.corpus.valid;
  eval_tables.insert(eval_tables.end(), env.ctx.corpus.test.begin(),
                     env.ctx.corpus.test.end());
  std::vector<tasks::CellFillInstance> instances =
      tasks::BuildCellFillInstances(env.ctx, index, eval_tables,
                                    /*min_valid_pairs=*/3,
                                    /*max_instances=*/800);
  tasks::CellFillCandidateStats stats =
      tasks::ComputeCandidateStats(instances);
  std::printf("candidate finding (all row-mates): %lld queries, recall "
              "%.2f%%, avg %.1f candidates\n",
              static_cast<long long>(stats.num_instances),
              stats.recall * 100, stats.avg_candidates);
  {
    // The paper also quotes the P(h\'|h) > 0 filtered variant.
    std::vector<tasks::CellFillInstance> filtered =
        tasks::BuildCellFillInstances(env.ctx, index, eval_tables, 3, 800,
                                      /*filter_by_header=*/true);
    tasks::CellFillCandidateStats fstats =
        tasks::ComputeCandidateStats(filtered);
    std::printf("after P(h\'|h)>0 filter: recall %.2f%%, avg %.1f "
                "candidates\n",
                fstats.recall * 100, fstats.avg_candidates);
  }

  auto score_with = [&](const std::function<double(
                            const baselines::CellCandidate&,
                            const std::string&)>& scorer) {
    std::vector<std::vector<double>> all;
    all.reserve(instances.size());
    for (const auto& inst : instances) {
      const std::string& header =
          env.ctx.corpus.tables[inst.table_index]
              .columns[size_t(inst.object_column)]
              .header;
      std::vector<double> scores;
      scores.reserve(inst.candidates.size());
      for (const auto& cand : inst.candidates) {
        scores.push_back(scorer(cand, header));
      }
      all.push_back(std::move(scores));
    }
    return all;
  };

  auto exact = score_with([&](const auto& cand, const std::string& h) {
    return rankers.ScoreExact(cand, h);
  });
  auto h2h = score_with([&](const auto& cand, const std::string& h) {
    return rankers.ScoreH2H(cand, h);
  });
  auto h2v = score_with([&](const auto& cand, const std::string& h) {
    return rankers.ScoreH2V(cand, h);
  });

  auto model = bench::LoadPretrained(env);
  tasks::TurlCellFiller filler(model.get(), &env.ctx);
  rt::InferenceSession session = bench::MakeSession(*model);
  WallTimer timer;
  std::vector<std::vector<double>> turl =
      tasks::AsDouble(tasks::BulkScores(filler, instances, session));
  std::printf("TURL scoring (%zu queries, no fine-tuning): %.1fs\n",
              instances.size(), timer.ElapsedSeconds());

  std::printf("\n%-10s %8s %8s %8s %8s\n", "Method", "P@1", "P@3", "P@5",
              "P@10");
  PrintRow("Exact", tasks::EvaluateCellFilling(instances, exact));
  PrintRow("H2H", tasks::EvaluateCellFilling(instances, h2h));
  PrintRow("H2V", tasks::EvaluateCellFilling(instances, h2v));
  PrintRow("TURL", tasks::EvaluateCellFilling(instances, turl));

  std::printf(
      "\npaper shape: Exact is a strong floor, H2H/H2V add a little, TURL "
      "leads at every K without using source-table information.\n");
  return 0;
}
