// Self-check of the tracing cost contract (see obs/trace.h): with tracing
// disabled, entering a span is one relaxed atomic load and a branch, so the
// instrumentation must cost < 2% of a request's work — the bench exits
// nonzero otherwise. The gate measures the disabled span cost directly (a
// tight span-only loop) relative to the per-request workload time, because
// an A/B comparison of two ~80 ms loops is at the mercy of multi-percent
// scheduler noise on shared machines; the A/B timing is still printed as a
// cross-check. Enabled-mode per-span cost is measured too and exported
// through BENCH_obs.json ("obs.trace_overhead_*" gauges).

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace {

using namespace turl;

// A few microseconds of serial arithmetic per call, so the nanoseconds-range
// disabled span check sits well below the 2% assertion even on a noisy
// machine.
__attribute__((noinline)) double Workload(int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += double(i % 7) * 1.000000119 + acc * 1e-9;
  }
  return acc;
}

double g_sink = 0.0;
// Volatile so the compiler cannot prove the argument constant and fold the
// 20000 pure Workload calls into one.
volatile int g_work = 1200;

constexpr int kIters = 20000;
constexpr int kReps = 15;

void RunPlain() {
  for (int i = 0; i < kIters; ++i) g_sink += Workload(g_work);
}

// The production instrumentation shape: a root span per request plus one
// nested stage scope — two span entries per iteration.
void RunTraced() {
  for (int i = 0; i < kIters; ++i) {
    obs::TraceSpan root(obs::kNewTrace, "bench.request");
    TURL_TRACE_SCOPE("bench.stage");
    g_sink += Workload(g_work);
  }
}

template <typename F>
double MinSeconds(F&& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

// Per-span cost of the instrumentation shape alone, in nanoseconds. The
// span constructors/destructors live in another TU, so the loop cannot be
// optimized away even though the disabled spans have no visible effect.
double SpanOnlyNs() {
  constexpr int kSpanIters = 2000000;
  const double best = MinSeconds(
      [] {
        for (int i = 0; i < kSpanIters; ++i) {
          obs::TraceSpan root(obs::kNewTrace, "bench.request");
          TURL_TRACE_SCOPE("bench.stage");
        }
      },
      5);
  return best / double(2 * kSpanIters) * 1e9;
}

}  // namespace

int main() {
  bench::InitObservability();
  std::printf("== trace overhead ==\n");

  obs::Tracer::SetEnabled(false);
  RunPlain();  // Warm up caches and frequency scaling.
  // Interleaved reps (plain, traced, plain, traced, ...) so frequency and
  // load drift hit both sides alike; min-of-reps is the stable estimator of
  // each loop's true time on a noisy machine.
  double plain_s = 1e300, disabled_s = 1e300;
  for (int r = 0; r < kReps; ++r) {
    WallTimer timer;
    RunPlain();
    plain_s = std::min(plain_s, timer.ElapsedSeconds());
    timer.Restart();
    RunTraced();
    disabled_s = std::min(disabled_s, timer.ElapsedSeconds());
  }
  const double ab_pct = 100.0 * (disabled_s / plain_s - 1.0);
  std::printf("uninstrumented:     %.3f ms\n", plain_s * 1e3);
  std::printf("tracing disabled:   %.3f ms (A/B %+.2f%%)\n", disabled_s * 1e3,
              ab_pct);

  // The gated overhead figure: measured disabled span cost (2 spans per
  // request) relative to the measured per-request work.
  const double span_ns = SpanOnlyNs();
  const double request_ns = plain_s / double(kIters) * 1e9;
  const double disabled_pct = 100.0 * (2.0 * span_ns) / request_ns;
  std::printf("disabled span cost: %.1f ns/span (%.3f%% of a request)\n",
              span_ns, disabled_pct);

  double enabled_ns = 0.0;
  obs::Tracer::SetEnabled(true);
  if (obs::Tracer::Enabled()) {  // TURL_TRACE=0 pins tracing off.
    obs::Tracer::Get().SetSampler(/*period=*/1, /*seed=*/0);
    const double enabled_s = MinSeconds(RunTraced, kReps);
    enabled_ns = (enabled_s - plain_s) / double(2 * kIters) * 1e9;
    std::printf("tracing enabled:    %.3f ms (%.0f ns/span)\n",
                enabled_s * 1e3, enabled_ns);
    obs::Tracer::SetEnabled(false);
  } else {
    std::printf("tracing enabled:    skipped (TURL_TRACE=0)\n");
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  registry.GetGauge("obs.trace_overhead_disabled_pct")->Set(disabled_pct);
  registry.GetGauge("obs.trace_overhead_enabled_ns")->Set(enabled_ns);

  // The contract this bench exists to enforce.
  const bool ok = disabled_pct < 2.0;
  if (!ok) {
    std::printf("FAIL: disabled-tracing overhead %.2f%% >= 2%%\n",
                disabled_pct);
  }
  return ok ? 0 : 1;
}
