// Reproduces Figure 6: validation MAP vs. fine-tuning steps for relation
// extraction — TURL (pre-trained init) converges much faster than the
// BERT-style baseline (random init, metadata only).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "tasks/relation_extraction.h"

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Figure 6: relation-extraction convergence (validation MAP)");

  tasks::RelationDataset dataset = tasks::BuildRelationDataset(env.ctx);
  std::printf("dataset: %d relations, %zu train pairs, %zu valid pairs\n",
              dataset.num_labels(), dataset.train.size(),
              dataset.valid.size());

  tasks::FinetuneOptions ft;
  ft.epochs = 3;
  ft.max_tables = 300;
  const int64_t kEvalEvery = 100;

  auto run = [&](core::TurlModel* model, tasks::InputVariant variant,
                 const char* name) {
    tasks::TurlRelationExtractor extractor(model, &env.ctx, &dataset, variant,
                                           31);
    std::vector<std::pair<int64_t, double>> curve;
    curve.emplace_back(0, extractor.EvaluateMap(dataset.valid, 150));
    extractor.Finetune(ft, kEvalEvery, [&](int64_t step, double map) {
      curve.emplace_back(step, map);
    });
    std::printf("\n%s:\n%8s %8s\n", name, "step", "MAP");
    for (const auto& [step, map] : curve) {
      std::printf("%8lld %8.4f\n", static_cast<long long>(step), map);
    }
    return curve;
  };

  auto turl_model = bench::LoadPretrained(env);
  auto turl_curve =
      run(turl_model.get(), tasks::InputVariant::Full(), "TURL (pre-trained)");

  auto bert_model = bench::FreshModel(env, /*use_visibility=*/false);
  auto bert_curve = run(bert_model.get(), tasks::InputVariant::OnlyMetadata(),
                        "BERT-based (random init)");

  // Crossover summary: first step at which each model exceeds MAP 0.7.
  auto first_above = [](const std::vector<std::pair<int64_t, double>>& curve,
                        double threshold) -> long long {
    for (const auto& [step, map] : curve) {
      if (map >= threshold) return static_cast<long long>(step);
    }
    return -1;
  };
  for (double th : {0.8, 0.95, 0.99}) {
    std::printf("\nfirst step with MAP >= %.2f: TURL %lld vs BERT-based %lld",
                th, first_above(turl_curve, th), first_above(bert_curve, th));
  }
  std::printf("\n\npaper shape: the pre-trained model reaches high MAP in far "
              "fewer steps.\n");
  return 0;
}
