// Reproduces Table 7: relation extraction F1/P/R on the test split for the
// BERT-style baseline (same architecture, random init, metadata only, no
// visibility matrix) and the TURL fine-tuning variants.

#include <cstdio>

#include "bench_common.h"
#include "tasks/relation_extraction.h"
#include "util/timer.h"

namespace {

using namespace turl;

void PrintRow(const char* name, const eval::Prf& prf) {
  std::printf("%-44s %6.2f %6.2f %6.2f\n", name, prf.f1 * 100,
              prf.precision * 100, prf.recall * 100);
}

}  // namespace

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Table 7: relation extraction");

  tasks::RelationDataset dataset = tasks::BuildRelationDataset(env.ctx);
  std::printf("dataset: %d relations, %zu train / %zu valid / %zu test "
              "column pairs\n",
              dataset.num_labels(), dataset.train.size(),
              dataset.valid.size(), dataset.test.size());

  tasks::FinetuneOptions ft;
  ft.epochs = 2;
  ft.max_tables = 400;

  WallTimer timer;
  // BERT-style baseline: random init, full attention, metadata only.
  eval::Prf bert;
  {
    auto model = bench::FreshModel(env, /*use_visibility=*/false);
    tasks::TurlRelationExtractor extractor(
        model.get(), &env.ctx, &dataset, tasks::InputVariant::OnlyMetadata(),
        /*seed=*/31);
    // Identical budget to the TURL variants: at repro scale giving the
    // baseline extra epochs (the paper's 25-vs-10) lets it close a gap that
    // only exists because our task is small; equal budgets isolate the
    // pre-training effect the row is meant to show.
    extractor.Finetune(ft);
    rt::InferenceSession session = bench::MakeSession(*model);
    bert = extractor.Evaluate(dataset.test, &session);
  }

  auto run_variant = [&](tasks::InputVariant variant) {
    auto model = bench::LoadPretrained(env);
    tasks::TurlRelationExtractor extractor(model.get(), &env.ctx, &dataset,
                                           variant, 31);
    extractor.Finetune(ft);
    rt::InferenceSession session = bench::MakeSession(*model);
    return extractor.Evaluate(dataset.test, &session);
  };
  const eval::Prf only_meta = run_variant(tasks::InputVariant::OnlyMetadata());
  const eval::Prf full = run_variant(tasks::InputVariant::Full());
  const eval::Prf wo_meta = run_variant(tasks::InputVariant::WithoutMetadata());
  const eval::Prf wo_emb =
      run_variant(tasks::InputVariant::WithoutLearnedEmbedding());
  std::printf("training time (5 models): %.1fs\n", timer.ElapsedSeconds());

  std::printf("\n%-44s %6s %6s %6s\n", "Method", "F1", "P", "R");
  PrintRow("BERT-based (random init, metadata only)", bert);
  PrintRow("TURL + fine-tuning (only table metadata)", only_meta);
  PrintRow("TURL + fine-tuning", full);
  PrintRow("  w/o table metadata", wo_meta);
  PrintRow("  w/o learned embedding", wo_emb);

  std::printf(
      "\npaper shape: all strong (>0.9 F1 in the paper); TURL beats the "
      "BERT-style baseline even on identical input (only metadata).\n");
  return 0;
}
