// Cost of being scraped: runs the bulk-inference workload with and without
// an ObsServer being hammered by concurrent scrapers, and gates the
// throughput overhead at < 2%. Writes BENCH_obs_server.json (override with
// TURL_BENCH_OBS_SERVER); the exit code reflects the gate.
//
// Methodology: the same EncodeBatch workload runs in interleaved
// quiet/scraped trial pairs. During scraped trials two client threads GET
// every standard endpoint (/metrics, /healthz, /varz, /tracez, /profilez)
// in round-robin at 4 scrapes/sec each — ~60x harder than a real Prometheus
// cadence (one scrape per 15s) but still a *paced* scraper; an unpaced
// busy-loop would measure CPU-core contention, not scrape cost, and say
// nothing about production overhead. Interleaving matters: measuring all
// quiet trials first and all scraped trials second lets machine-speed drift
// (frequency scaling, noisy neighbours) masquerade as scrape overhead.
// Alternating pairs puts both sides under the same ambient conditions, and
// best-of-N per side discards the slow outliers. Trials repeat the workload
// enough times that every scraped trial overlaps several scrapes, so the
// estimate includes registry lock contention, not just the idle accept
// loop.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/table_encoding.h"
#include "obs/server/handlers.h"
#include "obs/server/http.h"
#include "obs/server/server.h"
#include "util/timer.h"

namespace {

using namespace turl;

double TimedTrial(rt::InferenceSession& session,
                  const std::vector<core::EncodedTable>& tables, int reps) {
  WallTimer timer;
  for (int r = 0; r < reps; ++r) {
    std::vector<nn::Tensor> out = session.EncodeBatch(
        std::span<const core::EncodedTable>(tables));
  }
  const double s = timer.ElapsedSeconds();
  return s > 0 ? double(reps) * tables.size() / s : 0.0;
}

}  // namespace

int main() {
  using namespace turl;
  bench::InitObservability();

  core::ContextConfig config;
  config.corpus.num_tables = 600;
  config.seed = 42;
  core::TurlContext ctx = core::BuildContext(config);
  core::TurlConfig model_config;  // Repro-scale defaults.
  core::TurlModel model(model_config, ctx.vocab.size(),
                        ctx.entity_vocab.size(), /*seed=*/11);
  std::printf("== obs server scrape overhead ==\n");

  const text::WordPieceTokenizer tokenizer = ctx.MakeTokenizer();
  std::vector<core::EncodedTable> tables;
  for (size_t idx : ctx.corpus.valid) {
    core::EncodedTable t =
        core::EncodeTable(ctx.corpus.tables[idx], tokenizer, ctx.entity_vocab);
    if (t.total() > 0) tables.push_back(std::move(t));
    if (tables.size() >= 96) break;
  }
  rt::InferenceSession session = bench::MakeSession(model);

  // Repeat the workload enough times that each timed trial spans several
  // hundred milliseconds and therefore overlaps several paced scrapes.
  constexpr int kReps = 8;
  constexpr int kRounds = 4;  // Interleaved quiet/scraped trial pairs.
  std::printf("workload: %zu tables, %d interleaved trial pairs\n",
              tables.size(), kRounds);

  obs::server::ObsServer server;  // Port 0: ephemeral.
  obs::server::RegisterStandardHandlers(&server);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server failed to start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("server:  %s\n", server.base_url().c_str());

  std::atomic<bool> stop{false};
  std::atomic<bool> paused{true};
  std::atomic<int64_t> scrapes{0};
  std::atomic<int64_t> scrape_errors{0};
  const std::vector<std::string> targets = {
      "/metrics", "/healthz", "/varz", "/tracez", "/profilez"};
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 2; ++i) {
    scrapers.emplace_back([&, port = server.port()] {
      size_t next = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (paused.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        }
        obs::server::HttpClientResponse response;
        const Status s = obs::server::HttpGet(
            "127.0.0.1", port, targets[next % targets.size()], &response);
        if (s.ok() && response.status == 200) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        } else {
          scrape_errors.fetch_add(1, std::memory_order_relaxed);
        }
        ++next;
        // Paced, not busy-looped: 4 scrapes/sec per client. See the
        // methodology note at the top of the file.
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
    });
  }

  // Warm-up (thread pool spin-up, allocator steady state, CPU frequency
  // ramp), then alternating quiet/scraped trial pairs.
  TimedTrial(session, tables, kReps);
  double baseline = 0.0;
  double scraped = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    paused.store(true, std::memory_order_relaxed);
    const double quiet = TimedTrial(session, tables, kReps);
    paused.store(false, std::memory_order_relaxed);
    const double noisy = TimedTrial(session, tables, kReps);
    baseline = std::max(baseline, quiet);
    scraped = std::max(scraped, noisy);
    std::printf("round %d: quiet %8.2f tables/s, scraped %8.2f tables/s\n",
                round, quiet, noisy);
  }
  std::printf("quiet:   %8.2f tables/s\n", baseline);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : scrapers) t.join();
  server.Stop();

  const double overhead_pct =
      baseline > 0 ? (baseline - scraped) / baseline * 100.0 : 0.0;
  const bool pass = overhead_pct < 2.0 && scrape_errors.load() == 0 &&
                    scrapes.load() > 0;
  std::printf("scraped: %8.2f tables/s (%lld scrapes, %lld errors)\n",
              scraped, static_cast<long long>(scrapes.load()),
              static_cast<long long>(scrape_errors.load()));
  std::printf("overhead: %.2f%% (gate < 2%%) -> %s\n", overhead_pct,
              pass ? "PASS" : "FAIL");

  const char* path_env = std::getenv("TURL_BENCH_OBS_SERVER");
  const std::string out = (path_env != nullptr && *path_env != '\0')
                              ? std::string(path_env)
                              : std::string("BENCH_obs_server.json");
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"workload_tables\": %zu,\n"
                 "  \"baseline_tables_per_sec\": %.3f,\n"
                 "  \"scraped_tables_per_sec\": %.3f,\n"
                 "  \"overhead_pct\": %.3f,\n"
                 "  \"scrapes\": %lld,\n"
                 "  \"scrape_errors\": %lld,\n"
                 "  \"gate_pct\": 2.0,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 tables.size(), baseline, scraped, overhead_pct,
                 static_cast<long long>(scrapes.load()),
                 static_cast<long long>(scrape_errors.load()),
                 pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  }
  return pass ? 0 : 1;
}
