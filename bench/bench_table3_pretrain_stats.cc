// Reproduces Table 3: per-table statistics (#rows, #entity columns,
// #entities) of the pre-training dataset across the train/dev/test splits,
// plus the split sizes and vocabulary sizes quoted in §5.

#include <cstdio>

#include "bench_common.h"
#include "data/stats.h"

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Table 3: pre-training dataset statistics");

  struct Row {
    const char* name;
    const std::vector<size_t>* indices;
  };
  const Row rows[] = {{"train", &env.ctx.corpus.train},
                      {"dev", &env.ctx.corpus.valid},
                      {"test", &env.ctx.corpus.test}};

  std::printf("\n%-16s %-6s %8s %8s %8s %8s\n", "quantity", "split", "min",
              "mean", "median", "max");
  const char* quantities[] = {"# row", "# ent. columns", "# ent."};
  for (int q = 0; q < 3; ++q) {
    for (const Row& row : rows) {
      data::SplitStats s = data::ComputeSplitStats(env.ctx.corpus,
                                                   *row.indices);
      const data::QuantityStats& v = q == 0   ? s.rows
                                     : q == 1 ? s.entity_columns
                                              : s.entities;
      std::printf("%-16s %-6s %8.0f %8.1f %8.0f %8.0f\n", quantities[q],
                  row.name, v.min, v.mean, v.median, v.max);
    }
  }

  std::printf("\nsplit sizes: %zu / %zu / %zu tables "
              "(pre-train / validation / test)\n",
              env.ctx.corpus.train.size(), env.ctx.corpus.valid.size(),
              env.ctx.corpus.test.size());
  std::printf("token vocabulary: %d WordPiece tokens\n", env.ctx.vocab.size());
  std::printf("entity vocabulary: %d entities (>=2 occurrences in training "
              "tables)\n",
              env.ctx.entity_vocab.size());

  // Paper reference (for EXPERIMENTS.md shape comparison): train median 8
  // rows / 2 entity columns / 9 entities; 570171/5036/4964 tables.
  return 0;
}
