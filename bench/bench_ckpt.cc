// Checkpoint save/load throughput at a realistic training-state size: a
// repro-scale parameter store (embeddings plus transformer blocks, ~2M
// floats) with its Adam moments, RNG stream and a full data cursor — the
// file a periodic pretraining save actually writes. Measures the direct
// SaveTrainState/LoadTrainState path and the CheckpointManager lifecycle
// (save + LATEST repoint + retention prune, and LoadLatest with its
// verification pass), prints MB/s, and dumps BENCH_ckpt.json. The bench
// exits nonzero if a loaded state is not bit-identical to what was saved —
// it doubles as a throughput-sized round-trip check.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ckpt/checkpoint.h"
#include "nn/module.h"
#include "nn/optim.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace turl;

constexpr int kReps = 5;

/// Parameter layout of the repro-scale model (d_model 312, 4 blocks) so the
/// checkpoint carries embedding-table-dominated sections like a real run.
void BuildRealisticStore(nn::ParamStore* store, Rng* rng) {
  store->CreateNormal("word_emb", {4000, 312}, 0.02f, rng);
  store->CreateNormal("ent_emb", {2000, 312}, 0.02f, rng);
  store->CreateNormal("type_emb", {8, 312}, 0.02f, rng);
  for (int l = 0; l < 4; ++l) {
    const std::string p = "block" + std::to_string(l) + ".";
    store->CreateNormal(p + "attn.wq", {312, 312}, 0.02f, rng);
    store->CreateNormal(p + "attn.wk", {312, 312}, 0.02f, rng);
    store->CreateNormal(p + "attn.wv", {312, 312}, 0.02f, rng);
    store->CreateNormal(p + "attn.wo", {312, 312}, 0.02f, rng);
    store->CreateNormal(p + "ffn.w1", {312, 1248}, 0.02f, rng);
    store->CreateNormal(p + "ffn.w2", {1248, 312}, 0.02f, rng);
    store->CreateFull(p + "ln1.gamma", {312}, 1.f);
    store->CreateFull(p + "ln2.gamma", {312}, 1.f);
  }
}

/// One bound training state over the given loop objects, with a cursor the
/// size a mid-pretraining save carries (a full epoch's shuffle order).
ckpt::TrainState Bind(nn::ParamStore* store, nn::Adam* adam, Rng* rng) {
  ckpt::TrainState st;
  st.stores.emplace_back("model", store);
  st.optims.emplace_back("adam", adam);
  st.rng = rng;
  st.fingerprint = "bench_ckpt|repro-scale";
  st.epoch = 1;
  st.step_in_epoch = 1234;
  st.global_step = 4234;
  st.order.resize(3000);
  for (size_t i = 0; i < st.order.size(); ++i) st.order[i] = i;
  st.counters = {4234, 99};
  st.accumulators = {1234.5, 0.125};
  for (int i = 0; i < 40; ++i) st.eval_curve.emplace_back(i * 100, 0.5 + i);
  return st;
}

template <typename F>
double MinMs(F&& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best * 1e3;
}

}  // namespace

int main() {
  bench::InitObservability();
  std::printf("== checkpoint throughput ==\n");

  const std::string dir = "bench_ckpt_tmp";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Rng rng(7);
  nn::ParamStore store;
  BuildRealisticStore(&store, &rng);
  nn::Adam adam(&store, nn::AdamConfig{.lr = 1e-3f});
  ckpt::TrainState state = Bind(&store, &adam, &rng);

  int64_t numel = 0;
  for (const auto& [name, t] : store.params()) numel += t.numel();
  std::printf("state: %lld params across %zu tensors (+ Adam moments)\n",
              static_cast<long long>(numel), store.params().size());

  // Direct save/load of a single file.
  const std::string path = dir + "/state.turl";
  Status s = ckpt::SaveTrainState(state, path);
  if (!s.ok()) {
    std::printf("FAIL: save: %s\n", s.message().c_str());
    return 1;
  }
  const double bytes = double(std::filesystem::file_size(path));
  const double mb = bytes / (1024.0 * 1024.0);
  const double save_ms =
      MinMs([&] { (void)ckpt::SaveTrainState(state, path); }, kReps);
  const double load_ms = MinMs(
      [&] {
        if (!ckpt::LoadTrainState(&state, path).ok()) std::abort();
      },
      kReps);
  std::printf("file: %.1f MB\n", mb);
  std::printf("save: %7.2f ms  (%7.1f MB/s, durable: fsync + rename)\n",
              save_ms, mb / (save_ms / 1e3));
  std::printf("load: %7.2f ms  (%7.1f MB/s, CRC-verified + staged commit)\n",
              load_ms, mb / (load_ms / 1e3));

  // Round-trip bit-exactness at this size: perturb, reload, compare.
  nn::Tensor word_emb = store.Get("word_emb");  // Shares the store's buffer.
  const std::vector<float> probe = word_emb.ToVector();
  word_emb.data()[0] += 1.f;
  if (!ckpt::LoadTrainState(&state, path).ok() ||
      word_emb.ToVector() != probe) {
    std::printf("FAIL: round trip not bit-identical\n");
    return 1;
  }

  // Manager lifecycle: numbered save + LATEST repoint + prune, then the
  // verified LoadLatest a resuming process runs.
  ckpt::CheckpointManager manager({.dir = dir, .keep_last = 3});
  const double mgr_save_ms = MinMs(
      [&] {
        ++state.global_step;  // New filename per save; prune keeps 3.
        if (!manager.Save(state).ok()) std::abort();
      },
      kReps);
  const double mgr_load_ms = MinMs(
      [&] {
        if (!manager.LoadLatest(&state).ok()) std::abort();
      },
      kReps);
  std::printf("manager save+prune: %7.2f ms  (%7.1f MB/s)\n", mgr_save_ms,
              mb / (mgr_save_ms / 1e3));
  std::printf("manager LoadLatest: %7.2f ms  (%7.1f MB/s)\n", mgr_load_ms,
              mb / (mgr_load_ms / 1e3));

  std::FILE* f = std::fopen("BENCH_ckpt.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"params\": %lld,\n"
                 "  \"file_bytes\": %.0f,\n"
                 "  \"save_ms\": %.3f,\n"
                 "  \"load_ms\": %.3f,\n"
                 "  \"save_mb_per_s\": %.1f,\n"
                 "  \"load_mb_per_s\": %.1f,\n"
                 "  \"manager_save_ms\": %.3f,\n"
                 "  \"manager_load_latest_ms\": %.3f\n"
                 "}\n",
                 static_cast<long long>(numel), bytes, save_ms, load_ms,
                 mb / (save_ms / 1e3), mb / (load_ms / 1e3), mgr_save_ms,
                 mgr_load_ms);
    std::fclose(f);
  }

  std::filesystem::remove_all(dir);
  return 0;
}
