// Reproduces Table 10: schema augmentation MAP with 0 and 1 seed headers
// for the tf-idf kNN baseline and TURL + fine-tuning.

#include <cstdio>

#include "baselines/knn_schema.h"
#include "bench_common.h"
#include "tasks/schema_augmentation.h"
#include "util/timer.h"

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Table 10: schema augmentation");

  tasks::HeaderVocab vocab = tasks::BuildHeaderVocab(env.ctx);
  std::printf("header vocabulary: %d headers\n", vocab.size());

  baselines::KnnSchemaRecommender knn(env.ctx.corpus, env.ctx.corpus.train);

  std::vector<size_t> eval_tables = env.ctx.corpus.valid;
  eval_tables.insert(eval_tables.end(), env.ctx.corpus.test.begin(),
                     env.ctx.corpus.test.end());

  // Fine-tune TURL once on a mix of 0- and 1-seed training queries.
  std::vector<tasks::SchemaAugInstance> train = tasks::BuildSchemaAugInstances(
      env.ctx, vocab, env.ctx.corpus.train, /*num_seeds=*/0,
      /*max_instances=*/400);
  std::vector<tasks::SchemaAugInstance> train1 =
      tasks::BuildSchemaAugInstances(env.ctx, vocab, env.ctx.corpus.train, 1,
                                     400);
  train.insert(train.end(), train1.begin(), train1.end());
  auto model = bench::LoadPretrained(env);
  tasks::TurlSchemaAugmenter augmenter(model.get(), &env.ctx, &vocab, 31);
  tasks::FinetuneOptions ft;
  ft.epochs = 4;  // Paper uses 50 epochs for this task; scaled down.
  WallTimer timer;
  augmenter.Finetune(train, ft);
  std::printf("TURL fine-tuning on %zu queries: %.1fs\n", train.size(),
              timer.ElapsedSeconds());
  rt::InferenceSession session = bench::MakeSession(*model);

  std::printf("\n%-22s %14s %14s\n", "Method", "MAP (0 seeds)",
              "MAP (1 seed)");
  double knn_map[2], turl_map[2];
  for (int seeds = 0; seeds <= 1; ++seeds) {
    std::vector<tasks::SchemaAugInstance> instances =
        tasks::BuildSchemaAugInstances(env.ctx, vocab, eval_tables, seeds,
                                       /*max_instances=*/250);
    std::vector<std::vector<int>> knn_rankings;
    for (const auto& inst : instances) {
      std::vector<std::string> seed_names;
      for (int h : inst.seed_headers) {
        seed_names.push_back(vocab.headers[size_t(h)]);
      }
      std::vector<int> ranking;
      for (const baselines::HeaderSuggestion& suggestion : knn.Recommend(
               env.ctx.corpus.tables[inst.table_index].caption, seed_names)) {
        const int id = vocab.Id(suggestion.header);
        if (id >= 0) ranking.push_back(id);
      }
      knn_rankings.push_back(std::move(ranking));
    }
    knn_map[seeds] = tasks::EvaluateSchemaAugmentation(instances, knn_rankings);
    turl_map[seeds] = augmenter.Evaluate(instances, &session);
    std::printf("(%d seed: %zu queries)\n", seeds, instances.size());
  }
  std::printf("%-22s %14.2f %14.2f\n", "kNN", knn_map[0] * 100,
              knn_map[1] * 100);
  std::printf("%-22s %14.2f %14.2f\n", "TURL + fine-tuning", turl_map[0] * 100,
              turl_map[1] * 100);

  std::printf(
      "\npaper shape: both competitive; TURL stronger with 0 seeds, kNN "
      "catches up (or wins) once a seed header pins down near-duplicate "
      "tables.\n");
  return 0;
}
