// Cost of per-request SLO accounting: every request the scheduler retires
// emits one wide event (seqlock ring write) and one SLI window update
// (bucket adds under a per-stream mutex). This bench runs the real
// scheduler submit loop with that accounting disabled and enabled in
// interleaved quiet/instrumented trial pairs — the bench_obs_server
// methodology: alternating pairs put both sides under the same ambient
// machine conditions (frequency scaling, noisy neighbours), and best-of-N
// per side discards slow outliers — and gates the throughput cost at < 2%.
// The direct per-event cost (Append + Record micro-loop) is printed as a
// cross-check and exported with the throughput numbers as "obs.slo_*"
// gauges, which land in BENCH_obs.json via the bench atexit hook.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/table_encoding.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "rt/batch_scheduler.h"
#include "rt/inference_session.h"
#include "util/timer.h"

namespace {

using namespace turl;

/// One timed trial: every table through the scheduler, `reps` times.
/// Returns tables/sec.
double TimedTrial(rt::InferenceSession& session,
                  const std::vector<core::EncodedTable>& tables, int reps) {
  WallTimer timer;
  for (int r = 0; r < reps; ++r) {
    rt::BatchScheduler scheduler(&session);
    for (size_t i = 0; i < tables.size(); ++i) {
      rt::Request request;
      request.table = &tables[i];
      request.request_id = i;
      request.done = [](rt::Response) {};
      scheduler.Submit(std::move(request));
    }
    scheduler.Flush();
  }
  const double s = timer.ElapsedSeconds();
  return s > 0 ? double(reps) * tables.size() / s : 0.0;
}

/// Direct cost of one wide-event append plus one SLI record, nanoseconds.
double EventPlusRecordNs() {
  constexpr int kIters = 200000;
  obs::WideEvent event;
  event.origin = "bench";
  event.task = "encode";
  event.status = "ok";
  event.total_us = 1000.0;
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    WallTimer timer;
    for (int i = 0; i < kIters; ++i) {
      event.request_id = uint64_t(i);
      obs::EventLog::Get().Append(event);
      obs::SliEngine::Get().Record("encode", obs::SliOutcome::kOk, 1.0);
    }
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best / double(kIters) * 1e9;
}

}  // namespace

int main() {
  using namespace turl;
  bench::InitObservability();
  std::printf("== slo accounting overhead ==\n");

  core::ContextConfig config;
  config.corpus.num_tables = 600;
  config.seed = 42;
  core::TurlContext ctx = core::BuildContext(config);
  core::TurlConfig model_config;  // Repro-scale defaults.
  core::TurlModel model(model_config, ctx.vocab.size(),
                        ctx.entity_vocab.size(), /*seed=*/11);

  const text::WordPieceTokenizer tokenizer = ctx.MakeTokenizer();
  std::vector<core::EncodedTable> tables;
  for (size_t idx : ctx.corpus.valid) {
    core::EncodedTable t =
        core::EncodeTable(ctx.corpus.tables[idx], tokenizer, ctx.entity_vocab);
    if (t.total() > 0) tables.push_back(std::move(t));
    if (tables.size() >= 64) break;
  }
  rt::InferenceSession session = bench::MakeSession(model);

  constexpr int kReps = 4;
  constexpr int kRounds = 4;  // Interleaved quiet/instrumented pairs.
  std::printf("workload: %zu tables through the scheduler, %d interleaved "
              "trial pairs\n",
              tables.size(), kRounds);

  // Warm-up (thread pool, allocator, CPU frequency), then the pairs.
  TimedTrial(session, tables, kReps);
  double quiet_best = 0.0;
  double instrumented_best = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    obs::EventLog::SetEnabled(false);
    obs::SliEngine::SetEnabled(false);
    const double quiet = TimedTrial(session, tables, kReps);
    obs::EventLog::SetEnabled(true);
    obs::SliEngine::SetEnabled(true);
    const double instrumented = TimedTrial(session, tables, kReps);
    quiet_best = std::max(quiet_best, quiet);
    instrumented_best = std::max(instrumented_best, instrumented);
    std::printf("round %d: quiet %8.2f tables/s, instrumented %8.2f "
                "tables/s\n",
                round, quiet, instrumented);
  }

  const double overhead_pct =
      quiet_best > 0
          ? (quiet_best - instrumented_best) / quiet_best * 100.0
          : 0.0;
  const double event_ns =
      (obs::EventLog::Enabled() && obs::SliEngine::Enabled())
          ? EventPlusRecordNs()
          : 0.0;  // TURL_EVENTLOG=0 / TURL_SLO=0 pin the path off.
  const double request_ns =
      instrumented_best > 0 ? 1e9 / instrumented_best : 0.0;

  const bool pass = overhead_pct < 2.0;
  std::printf("quiet:        %8.2f tables/s\n", quiet_best);
  std::printf("instrumented: %8.2f tables/s\n", instrumented_best);
  std::printf("overhead: %.2f%% (gate < 2%%) -> %s\n", overhead_pct,
              pass ? "PASS" : "FAIL");
  if (event_ns > 0.0) {
    std::printf("direct cost: %.0f ns per event+record (%.4f%% of a %.0f us "
                "request)\n",
                event_ns, request_ns > 0 ? 100.0 * event_ns / request_ns : 0.0,
                request_ns / 1000.0);
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  registry.GetGauge("obs.slo_overhead_pct")->Set(overhead_pct);
  registry.GetGauge("obs.slo_overhead_event_ns")->Set(event_ns);
  registry.GetGauge("obs.slo_overhead_quiet_tables_per_sec")->Set(quiet_best);
  registry.GetGauge("obs.slo_overhead_instrumented_tables_per_sec")
      ->Set(instrumented_best);

  if (!pass) {
    std::printf("FAIL: slo accounting overhead %.2f%% >= 2%%\n", overhead_pct);
  }
  return pass ? 0 : 1;
}
