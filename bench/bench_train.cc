// Training throughput of the task-graph parallel executor: pretrains the
// same small model at (threads, grad_accum_tables) = (1,1), (1,8), (4,1)
// and (4,8), checks every parallel run is bit-identical to its sequential
// twin, and writes BENCH_train.json (override with TURL_BENCH_TRAIN) with
// tables/sec and speedups. Knobs:
//
//   TURL_BENCH_TRAIN          output path (default BENCH_train.json)
//   TURL_BENCH_TRAIN_TABLES   training tables per trial (default 48)
//   TURL_BENCH_TRAIN_THREADS  parallel thread count (default 4)
//
// Speedups are only meaningful relative to hardware_concurrency (recorded
// in the JSON): on a single-core host the parallel trials measure executor
// overhead, not speedup.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "nn/train_parallel.h"

namespace {

using namespace turl;

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

struct Trial {
  std::string label;
  int threads = 1;
  int grad_accum = 1;
  int64_t steps = 0;
  double seconds = 0.0;
  double tables_per_sec = 0.0;
  double speedup = 1.0;        // vs the 1-thread trial with the same K.
  bool bit_identical = true;   // vs the 1-thread trial with the same K.
  std::vector<std::vector<float>> params;
};

std::vector<std::vector<float>> ParamsOf(const core::TurlModel& model) {
  std::vector<std::vector<float>> out;
  for (const auto& [name, t] : model.params().params()) {
    out.push_back(t.ToVector());
  }
  return out;
}

bool BitIdentical(const std::vector<std::vector<float>>& a,
                  const std::vector<std::vector<float>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

Trial RunTrial(const std::string& label, int threads, int grad_accum,
               const core::TurlContext& ctx, const core::TurlConfig& config,
               int tables) {
  Trial t;
  t.label = label;
  t.threads = threads;
  t.grad_accum = grad_accum;

  nn::SetTrainThreads(threads);
  core::TurlModel model(config, ctx.vocab.size(), ctx.entity_vocab.size(),
                        /*seed=*/11);
  core::Pretrainer pretrainer(&model, &ctx);
  core::Pretrainer::Options opts;
  opts.epochs = 1;
  opts.max_train_tables = tables;
  opts.eval_every = 0;
  opts.telemetry_every = 0;
  opts.grad_accum_tables = grad_accum;
  opts.seed = 7;

  const auto start = std::chrono::steady_clock::now();
  const core::PretrainResult result = pretrainer.Train(opts);
  const auto stop = std::chrono::steady_clock::now();
  nn::SetTrainThreads(1);

  t.steps = result.steps;
  t.seconds = std::chrono::duration<double>(stop - start).count();
  // Tables/sec, not steps/sec: one step consumes `grad_accum` tables, so
  // tables/sec is the unit comparable across K.
  t.tables_per_sec = t.seconds > 0.0 ? double(tables) / t.seconds : 0.0;
  t.params = ParamsOf(model);
  return t;
}

void WriteTrialJson(FILE* f, const Trial& t) {
  std::fprintf(f,
               "    {\"label\": \"%s\", \"threads\": %d, \"grad_accum\": %d, "
               "\"steps\": %lld, \"seconds\": %.4f, "
               "\"tables_per_sec\": %.3f, \"speedup_vs_1thread\": %.3f, "
               "\"bit_identical_vs_1thread\": %s}",
               t.label.c_str(), t.threads, t.grad_accum,
               static_cast<long long>(t.steps), t.seconds, t.tables_per_sec,
               t.speedup, t.bit_identical ? "true" : "false");
}

}  // namespace

int main() {
  bench::InitObservability();

  const int tables = EnvInt("TURL_BENCH_TRAIN_TABLES", 48);
  const int threads = EnvInt("TURL_BENCH_TRAIN_THREADS", 4);
  const unsigned cores = std::thread::hardware_concurrency();

  core::ContextConfig config;
  config.corpus.num_tables = 300;
  config.seed = 42;
  core::TurlContext ctx = core::BuildContext(config);

  core::TurlConfig model_config;
  model_config.num_layers = 2;
  model_config.d_model = 64;
  model_config.d_intermediate = 128;
  model_config.num_heads = 4;

  // Warm-up outside the timed region: first-touch costs (kernel pool spin-up,
  // embedding cache faults) land here, not in the 1-thread baseline.
  RunTrial("warmup", 1, 1, ctx, model_config, std::min(tables, 8));

  Trial seq_k1 = RunTrial("seq_k1", 1, 1, ctx, model_config, tables);
  Trial par_k1 = RunTrial("par_k1", threads, 1, ctx, model_config, tables);
  Trial seq_k8 = RunTrial("seq_k8", 1, 8, ctx, model_config, tables);
  Trial par_k8 = RunTrial("par_k8", threads, 8, ctx, model_config, tables);

  par_k1.speedup = par_k1.tables_per_sec / seq_k1.tables_per_sec;
  par_k1.bit_identical = BitIdentical(par_k1.params, seq_k1.params);
  seq_k8.speedup = seq_k8.tables_per_sec / seq_k1.tables_per_sec;
  par_k8.speedup = par_k8.tables_per_sec / seq_k8.tables_per_sec;
  par_k8.bit_identical = BitIdentical(par_k8.params, seq_k8.params);

  const bool identical = par_k1.bit_identical && par_k8.bit_identical;
  std::printf(
      "1 thread: %.2f tables/s (K=1), %.2f (K=8) | %d threads: %.2f "
      "tables/s (K=1, %.2fx), %.2f (K=8, %.2fx) | bit-identical: %s | "
      "%u hardware threads\n",
      seq_k1.tables_per_sec, seq_k8.tables_per_sec, threads,
      par_k1.tables_per_sec, par_k1.speedup, par_k8.tables_per_sec,
      par_k8.speedup, identical ? "yes" : "NO", cores);

  const char* path_env = std::getenv("TURL_BENCH_TRAIN");
  const std::string out = (path_env != nullptr && *path_env != '\0')
                              ? std::string(path_env)
                              : std::string("BENCH_train.json");
  if (FILE* f = std::fopen(out.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"tables_per_trial\": %d,\n"
                 "  \"parallel_threads\": %d,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"trials\": [\n",
                 tables, threads, cores);
    WriteTrialJson(f, seq_k1);
    std::fprintf(f, ",\n");
    WriteTrialJson(f, par_k1);
    std::fprintf(f, ",\n");
    WriteTrialJson(f, seq_k8);
    std::fprintf(f, ",\n");
    WriteTrialJson(f, par_k8);
    std::fprintf(f,
                 "\n  ],\n"
                 "  \"speedup_k1\": %.3f,\n"
                 "  \"speedup_k8\": %.3f,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"note\": \"speedups are bounded by hardware_concurrency;"
                 " on a 1-core host they measure executor overhead\"\n"
                 "}\n",
                 par_k1.speedup, par_k8.speedup,
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  }
  // Bit-identity is the hard gate; throughput numbers are reported, not
  // asserted, because they depend on the host's core count.
  return identical ? 0 : 1;
}
