// Reproduces Figure 7a: validation object-entity-prediction accuracy over
// pre-training steps, with and without the visibility matrix. Without it,
// every element attends to every other element (a conventional Transformer)
// and the model struggles to isolate the relevant row/column context.

#include <cstdio>

#include "bench_common.h"
#include "core/model_cache.h"

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Figure 7a: visibility-matrix ablation");

  core::Pretrainer::Options opts;
  opts.epochs = 3;
  opts.max_train_tables = 1200;
  opts.eval_every = 600;
  opts.seed = 7;

  auto run = [&](bool use_visibility) {
    core::TurlConfig config = env.model_config;
    config.use_visibility_matrix = use_visibility;
    config.pretrain_epochs = opts.epochs;
    core::TurlModel model(config, env.ctx.vocab.size(),
                          env.ctx.entity_vocab.size(), /*seed=*/11);
    // Separate cache slots (the tag encodes vis/novis) so re-runs are free —
    // but the eval curve is only produced by a real training run, so train
    // unconditionally here and print the curve.
    core::Pretrainer pretrainer(&model, &env.ctx);
    return pretrainer.Train(opts);
  };

  core::PretrainResult with_vis = run(true);
  core::PretrainResult without_vis = run(false);

  std::printf("\n%10s %18s %18s\n", "step", "ACC (with M)", "ACC (w/o M)");
  const size_t n = std::min(with_vis.eval_curve.size(),
                            without_vis.eval_curve.size());
  for (size_t i = 0; i < n; ++i) {
    std::printf("%10lld %18.3f %18.3f\n",
                static_cast<long long>(with_vis.eval_curve[i].first),
                with_vis.eval_curve[i].second,
                without_vis.eval_curve[i].second);
  }
  std::printf("\nfinal: with visibility matrix %.3f vs without %.3f\n",
              with_vis.final_accuracy, without_vis.final_accuracy);
  std::printf("paper shape: a persistent accuracy gap in favor of the "
              "visibility matrix throughout pre-training.\n");
  return 0;
}
