// Microbenchmarks (google-benchmark) of the kernels the experiments sit on:
// the blocked GEMM family (against the naive triple loops they replaced),
// GEMM via MatMul, masked multi-head attention forward/backward, the
// WordPiece tokenizer, visibility-matrix construction, table encoding,
// corpus generation and lookup-service candidate generation.
//
// On top of the google-benchmark timings, main() measures naive vs blocked
// GEMM directly over the encoder's characteristic shapes (square 256^3, the
// ragged attention-ish 312x768x64 and the single-row logits 1x768x30522)
// and writes the items/sec pairs plus speedups to BENCH_kernels.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/model.h"
#include "core/visibility.h"
#include "kb/lookup.h"
#include "nn/kernels/kernels.h"
#include "nn/ops.h"
#include "obs/profiler.h"

namespace {

using namespace turl;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  nn::Tensor a = nn::Tensor::Random({n, n}, rng);
  nn::Tensor b = nn::Tensor::Random({n, n}, rng);
  for (auto _ : state) {
    nn::Tensor c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

/// Blocked kernel vs the preserved naive loops over {m, k, n}. The ragged
/// arguments mirror the model's real shapes: a row-panel GEMM from the
/// encoder stack and the 1-row MLM logits GEMM against the word embedding.
void BM_GemmKernel(benchmark::State& state) {
  const int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(2);
  nn::Tensor a = nn::Tensor::Random({m, k}, rng);
  nn::Tensor b = nn::Tensor::Random({k, n}, rng);
  std::vector<float> c(size_t(m * n));
  for (auto _ : state) {
    nn::kernels::GemmNN(m, n, k, a.data(), k, b.data(), n, c.data(), n,
                        /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * n * k);
}
BENCHMARK(BM_GemmKernel)
    ->Args({256, 256, 256})
    ->Args({312, 768, 64})
    ->Args({1, 768, 30522});

void BM_GemmNaive(benchmark::State& state) {
  const int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  Rng rng(3);
  nn::Tensor a = nn::Tensor::Random({m, k}, rng);
  nn::Tensor b = nn::Tensor::Random({k, n}, rng);
  std::vector<float> c(size_t(m * n));
  for (auto _ : state) {
    nn::kernels::naive::GemmNN(m, n, k, a.data(), k, b.data(), n, c.data(), n,
                               /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * n * k);
}
BENCHMARK(BM_GemmNaive)
    ->Args({256, 256, 256})
    ->Args({312, 768, 64})
    ->Args({1, 768, 30522});

void BM_MaskedAttentionForward(benchmark::State& state) {
  const int64_t n = state.range(0), d = 64;
  Rng rng(2);
  nn::Tensor q = nn::Tensor::Random({n, d}, rng);
  nn::Tensor k = nn::Tensor::Random({n, d}, rng);
  nn::Tensor v = nn::Tensor::Random({n, d}, rng);
  std::vector<float> mask(size_t(n * n), 0.f);
  for (int64_t i = 0; i < n * n; i += 3) mask[size_t(i)] = -1e9f;
  for (auto _ : state) {
    nn::Tensor out = nn::MultiHeadAttention(q, k, v, mask, 4);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MaskedAttentionForward)->Arg(32)->Arg(64)->Arg(128);

void BM_MaskedAttentionBackward(benchmark::State& state) {
  const int64_t n = state.range(0), d = 64;
  Rng rng(3);
  nn::Tensor q = nn::Tensor::Random({n, d}, rng);
  nn::Tensor k = nn::Tensor::Random({n, d}, rng);
  nn::Tensor v = nn::Tensor::Random({n, d}, rng);
  std::vector<float> mask(size_t(n * n), 0.f);
  for (auto _ : state) {
    nn::Tensor out = nn::MultiHeadAttention(q, k, v, mask, 4);
    nn::SumAll(out).Backward();
    benchmark::DoNotOptimize(q.grad());
  }
}
BENCHMARK(BM_MaskedAttentionBackward)->Arg(32)->Arg(64);

/// Fixture state shared by corpus-level benchmarks (built once).
struct Env {
  core::TurlContext ctx;
  Env() {
    core::ContextConfig config;
    config.corpus.num_tables = 500;
    ctx = core::BuildContext(config);
  }
};
Env* GlobalEnv() {
  static Env* env = new Env();
  return env;
}

void BM_Tokenize(benchmark::State& state) {
  Env* env = GlobalEnv();
  const text::WordPieceTokenizer tokenizer = env->ctx.MakeTokenizer();
  const std::string caption =
      env->ctx.corpus.tables[0].caption + " " +
      env->ctx.corpus.tables[1].caption;
  for (auto _ : state) {
    auto ids = tokenizer.Encode(caption);
    benchmark::DoNotOptimize(ids.data());
  }
}
BENCHMARK(BM_Tokenize);

void BM_EncodeTable(benchmark::State& state) {
  Env* env = GlobalEnv();
  const text::WordPieceTokenizer tokenizer = env->ctx.MakeTokenizer();
  for (auto _ : state) {
    core::EncodedTable encoded = core::EncodeTable(
        env->ctx.corpus.tables[0], tokenizer, env->ctx.entity_vocab);
    benchmark::DoNotOptimize(encoded.entity_ids.data());
  }
}
BENCHMARK(BM_EncodeTable);

void BM_BuildVisibilityMask(benchmark::State& state) {
  Env* env = GlobalEnv();
  const text::WordPieceTokenizer tokenizer = env->ctx.MakeTokenizer();
  core::EncodedTable encoded = core::EncodeTable(
      env->ctx.corpus.tables[0], tokenizer, env->ctx.entity_vocab);
  for (auto _ : state) {
    auto mask = core::BuildVisibilityMask(encoded);
    benchmark::DoNotOptimize(mask.data());
  }
}
BENCHMARK(BM_BuildVisibilityMask);

void BM_ModelEncodeForward(benchmark::State& state) {
  Env* env = GlobalEnv();
  const text::WordPieceTokenizer tokenizer = env->ctx.MakeTokenizer();
  core::EncodedTable encoded = core::EncodeTable(
      env->ctx.corpus.tables[0], tokenizer, env->ctx.entity_vocab);
  core::TurlModel model(core::TurlConfig{}, env->ctx.vocab.size(),
                        env->ctx.entity_vocab.size(), 11);
  Rng rng(4);
  for (auto _ : state) {
    nn::Tensor hidden = model.Encode(encoded, false, &rng);
    benchmark::DoNotOptimize(hidden.data());
  }
}
BENCHMARK(BM_ModelEncodeForward);

void BM_LookupService(benchmark::State& state) {
  Env* env = GlobalEnv();
  static kb::LookupService* lookup =
      new kb::LookupService(&env->ctx.world.kb);
  const std::string mention = env->ctx.world.kb.entity(10).name;
  for (auto _ : state) {
    auto candidates = lookup->Lookup(mention, 50);
    benchmark::DoNotOptimize(candidates.data());
  }
}
BENCHMARK(BM_LookupService);

void BM_CorpusGeneration(benchmark::State& state) {
  Rng rng(5);
  kb::SyntheticKb world = kb::GenerateSyntheticKb(kb::KbGeneratorConfig{},
                                                  &rng);
  data::CorpusGeneratorConfig config;
  config.num_tables = 200;
  for (auto _ : state) {
    data::Corpus corpus = data::GenerateCorpus(world, config, &rng);
    benchmark::DoNotOptimize(corpus.tables.data());
  }
}
BENCHMARK(BM_CorpusGeneration);

// ---------------------------------------------------------------------------
// Direct naive-vs-kernel measurement written to BENCH_kernels.json.

using GemmFn = void (*)(int64_t, int64_t, int64_t, const float*, int64_t,
                        const float*, int64_t, float*, int64_t, bool);

double MeasureItemsPerSec(GemmFn fn, int64_t m, int64_t k, int64_t n) {
  Rng rng(17);
  nn::Tensor a = nn::Tensor::Random({m, k}, rng);
  nn::Tensor b = nn::Tensor::Random({k, n}, rng);
  std::vector<float> c(size_t(m * n));
  fn(m, n, k, a.data(), k, b.data(), n, c.data(), n, false);  // Warm-up.
  const double flops = double(m) * double(n) * double(k);
  // Enough iterations for ~0.2s of work assuming >= 0.5 GFLOP/s.
  int iters = static_cast<int>(1e8 / flops) + 1;
  const auto start = std::chrono::steady_clock::now();
  for (int it = 0; it < iters; ++it) {
    fn(m, n, k, a.data(), k, b.data(), n, c.data(), n, false);
    benchmark::DoNotOptimize(c.data());
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - start;
  return flops * iters / dt.count();
}

/// One timed pass of the int8 scoring path over the m activation rows:
/// per-row activation quantization + integer GEMV (the pack itself is
/// amortized across a model's lifetime and stays outside the timing).
void Int8Pass(const nn::kernels::QuantizedMatrix& q, const float* a,
              int64_t m, int64_t k, int64_t n, int8_t* xq, float* y) {
  for (int64_t i = 0; i < m; ++i) {
    const float xs = nn::kernels::QuantizeActivation(a + i * k, k, q.stride,
                                                     xq);
    nn::kernels::QuantizedGemv(q, xq, xs, y + i * n, false);
  }
}

/// Items/sec of `fn` over C[m,n] = A[m,k] * B[n,k]^T — the orientation of
/// MatMulNT, i.e. the logits matmul: each output's weight row contiguous.
/// Best of kBenchReps timed blocks (applied identically to every variant)
/// so a host-load spike during one block doesn't skew a recorded ratio.
constexpr int kBenchReps = 3;

double MeasureNTItemsPerSec(GemmFn fn, int64_t m, int64_t k, int64_t n) {
  Rng rng(17);
  nn::Tensor a = nn::Tensor::Random({m, k}, rng);
  nn::Tensor b = nn::Tensor::Random({n, k}, rng);
  std::vector<float> c(size_t(m * n));
  fn(m, n, k, a.data(), k, b.data(), k, c.data(), n, false);  // Warm-up.
  const double flops = double(m) * double(n) * double(k);
  int iters = static_cast<int>(1e8 / flops) + 1;
  double best = 0.0;
  for (int rep = 0; rep < kBenchReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; ++it) {
      fn(m, n, k, a.data(), k, b.data(), k, c.data(), n, false);
      benchmark::DoNotOptimize(c.data());
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start;
    best = std::max(best, flops * iters / dt.count());
  }
  return best;
}

void WriteKernelComparison(const char* path) {
  // Single-threaded by construction so the recorded speedup is the blocked
  // kernel's own, not the thread pool's.
  nn::kernels::SetKernelThreads(1);
  struct Case {
    int64_t m, k, n;
  };
  const Case cases[] = {{256, 256, 256}, {312, 768, 64}, {1, 768, 30522}};
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"threads\": 1,\n  \"gemm\": [\n");
  bool first = true;
  for (const Case& c : cases) {
    const double naive =
        MeasureItemsPerSec(nn::kernels::naive::GemmNN, c.m, c.k, c.n);
    const double kernel =
        MeasureItemsPerSec(nn::kernels::GemmNN, c.m, c.k, c.n);
    std::fprintf(f,
                 "%s    {\"m\": %lld, \"k\": %lld, \"n\": %lld, "
                 "\"naive_items_per_sec\": %.3e, "
                 "\"kernel_items_per_sec\": %.3e, \"speedup\": %.2f}",
                 first ? "" : ",\n", static_cast<long long>(c.m),
                 static_cast<long long>(c.k), static_cast<long long>(c.n),
                 naive, kernel, kernel / naive);
    std::fprintf(stderr,
                 "gemm %lldx%lldx%lld: naive %.3e kernel %.3e flop/s "
                 "(speedup %.2fx)\n",
                 static_cast<long long>(c.m), static_cast<long long>(c.k),
                 static_cast<long long>(c.n), naive, kernel, kernel / naive);
    first = false;
  }
  std::fprintf(f, "\n  ],\n  \"gemv\": [\n");

  // Logits-shaped GEMVs in the orientation MlmLogits/MerLogits actually
  // execute (MatMulNT: weight matrix [n, k] row-major, every output's
  // weight row contiguous): the full MLM vocab, the entity vocab, and the
  // small-batch (m=4) variant. Four paths per shape: the naive loops, the
  // 4x16 tiled GEMM forced past the small-m gate, the GEMV dispatch
  // (default), and the int8 quantized scorer — plus the int8 path's max
  // absolute error against the naive fp32 result.
  const Case gemv_cases[] = {{1, 768, 30522}, {1, 768, 4992}, {4, 768, 30522}};
  first = true;
  for (const Case& c : gemv_cases) {
    Rng rng(23);
    nn::Tensor a = nn::Tensor::Random({c.m, c.k}, rng);
    nn::Tensor b = nn::Tensor::Random({c.n, c.k}, rng);

    const double naive =
        MeasureNTItemsPerSec(nn::kernels::naive::GemmNT, c.m, c.k, c.n);
    nn::kernels::SetSmallMGemvDispatch(false);
    const double tiled = MeasureNTItemsPerSec(nn::kernels::GemmNT, c.m, c.k,
                                              c.n);
    nn::kernels::SetSmallMGemvDispatch(true);
    const double gemv = MeasureNTItemsPerSec(nn::kernels::GemmNT, c.m, c.k,
                                             c.n);

    // Row j of B is output unit j's weight vector (the embedding-table
    // layout the model packs).
    const nn::kernels::QuantizedMatrix q = nn::kernels::QuantizeRows(
        b.data(), c.n, c.k, /*row_stride=*/c.k, /*col_stride=*/1);
    std::vector<int8_t> xq(static_cast<size_t>(q.stride));
    std::vector<float> y(static_cast<size_t>(c.m * c.n));
    Int8Pass(q, a.data(), c.m, c.k, c.n, xq.data(), y.data());  // Warm-up.
    const double flops = double(c.m) * double(c.n) * double(c.k);
    const int iters = static_cast<int>(1e8 / flops) + 1;
    double int8 = 0.0;
    for (int rep = 0; rep < kBenchReps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      for (int it = 0; it < iters; ++it) {
        Int8Pass(q, a.data(), c.m, c.k, c.n, xq.data(), y.data());
        benchmark::DoNotOptimize(y.data());
      }
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - start;
      int8 = std::max(int8, flops * iters / dt.count());
    }

    std::vector<float> ref(static_cast<size_t>(c.m * c.n));
    nn::kernels::naive::GemmNT(c.m, c.n, c.k, a.data(), c.k, b.data(), c.k,
                               ref.data(), c.n, false);
    double max_err = 0.0;
    for (size_t i = 0; i < ref.size(); ++i) {
      max_err = std::max(max_err, double(std::abs(y[i] - ref[i])));
    }

    std::fprintf(f,
                 "%s    {\"m\": %lld, \"k\": %lld, \"n\": %lld, "
                 "\"naive_items_per_sec\": %.3e, "
                 "\"tiled_items_per_sec\": %.3e, "
                 "\"gemv_items_per_sec\": %.3e, "
                 "\"int8_items_per_sec\": %.3e, "
                 "\"gemv_speedup\": %.2f, \"int8_speedup\": %.2f, "
                 "\"quant_max_abs_err\": %.4e}",
                 first ? "" : ",\n", static_cast<long long>(c.m),
                 static_cast<long long>(c.k), static_cast<long long>(c.n),
                 naive, tiled, gemv, int8, gemv / naive, int8 / naive,
                 max_err);
    std::fprintf(stderr,
                 "gemv %lldx%lldx%lld: naive %.3e tiled %.3e gemv %.3e "
                 "int8 %.3e flop/s (gemv %.2fx, int8 %.2fx, max err %.4e)\n",
                 static_cast<long long>(c.m), static_cast<long long>(c.k),
                 static_cast<long long>(c.n), naive, tiled, gemv, int8,
                 gemv / naive, int8 / naive, max_err);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  nn::kernels::SetKernelThreads(0);  // Restore env/default resolution.
}

}  // namespace

// Like BENCHMARK_MAIN(), plus an observability dump and the kernel-vs-naive
// comparison. Profiling stays in its default env-controlled state (off
// unless TURL_PROFILE=1) so the kernels are measured with only the
// disabled-check branch in the hot loops.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteKernelComparison("BENCH_kernels.json");
  turl::obs::WriteObsJson("BENCH_obs.json");
  return 0;
}
