// Microbenchmarks (google-benchmark) of the kernels the experiments sit on:
// GEMM via MatMul, masked multi-head attention forward/backward, the
// WordPiece tokenizer, visibility-matrix construction, table encoding,
// corpus generation and lookup-service candidate generation.

#include <benchmark/benchmark.h>

#include "core/context.h"
#include "core/model.h"
#include "core/visibility.h"
#include "kb/lookup.h"
#include "nn/ops.h"
#include "obs/profiler.h"

namespace {

using namespace turl;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  nn::Tensor a = nn::Tensor::Zeros({n, n});
  nn::Tensor b = nn::Tensor::Zeros({n, n});
  for (int64_t i = 0; i < n * n; ++i) {
    a.data()[i] = rng.UniformFloat(-1, 1);
    b.data()[i] = rng.UniformFloat(-1, 1);
  }
  for (auto _ : state) {
    nn::Tensor c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MaskedAttentionForward(benchmark::State& state) {
  const int64_t n = state.range(0), d = 64;
  Rng rng(2);
  nn::Tensor q = nn::Tensor::Zeros({n, d}), k = nn::Tensor::Zeros({n, d}),
             v = nn::Tensor::Zeros({n, d});
  for (int64_t i = 0; i < n * d; ++i) {
    q.data()[i] = rng.UniformFloat(-1, 1);
    k.data()[i] = rng.UniformFloat(-1, 1);
    v.data()[i] = rng.UniformFloat(-1, 1);
  }
  std::vector<float> mask(size_t(n * n), 0.f);
  for (int64_t i = 0; i < n * n; i += 3) mask[size_t(i)] = -1e9f;
  for (auto _ : state) {
    nn::Tensor out = nn::MultiHeadAttention(q, k, v, mask, 4);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MaskedAttentionForward)->Arg(32)->Arg(64)->Arg(128);

void BM_MaskedAttentionBackward(benchmark::State& state) {
  const int64_t n = state.range(0), d = 64;
  Rng rng(3);
  nn::Tensor q = nn::Tensor::Zeros({n, d}), k = nn::Tensor::Zeros({n, d}),
             v = nn::Tensor::Zeros({n, d});
  std::vector<float> mask(size_t(n * n), 0.f);
  for (auto _ : state) {
    nn::Tensor out = nn::MultiHeadAttention(q, k, v, mask, 4);
    nn::SumAll(out).Backward();
    benchmark::DoNotOptimize(q.grad());
  }
}
BENCHMARK(BM_MaskedAttentionBackward)->Arg(32)->Arg(64);

/// Fixture state shared by corpus-level benchmarks (built once).
struct Env {
  core::TurlContext ctx;
  Env() {
    core::ContextConfig config;
    config.corpus.num_tables = 500;
    ctx = core::BuildContext(config);
  }
};
Env* GlobalEnv() {
  static Env* env = new Env();
  return env;
}

void BM_Tokenize(benchmark::State& state) {
  Env* env = GlobalEnv();
  const text::WordPieceTokenizer tokenizer = env->ctx.MakeTokenizer();
  const std::string caption =
      env->ctx.corpus.tables[0].caption + " " +
      env->ctx.corpus.tables[1].caption;
  for (auto _ : state) {
    auto ids = tokenizer.Encode(caption);
    benchmark::DoNotOptimize(ids.data());
  }
}
BENCHMARK(BM_Tokenize);

void BM_EncodeTable(benchmark::State& state) {
  Env* env = GlobalEnv();
  const text::WordPieceTokenizer tokenizer = env->ctx.MakeTokenizer();
  for (auto _ : state) {
    core::EncodedTable encoded = core::EncodeTable(
        env->ctx.corpus.tables[0], tokenizer, env->ctx.entity_vocab);
    benchmark::DoNotOptimize(encoded.entity_ids.data());
  }
}
BENCHMARK(BM_EncodeTable);

void BM_BuildVisibilityMask(benchmark::State& state) {
  Env* env = GlobalEnv();
  const text::WordPieceTokenizer tokenizer = env->ctx.MakeTokenizer();
  core::EncodedTable encoded = core::EncodeTable(
      env->ctx.corpus.tables[0], tokenizer, env->ctx.entity_vocab);
  for (auto _ : state) {
    auto mask = core::BuildVisibilityMask(encoded);
    benchmark::DoNotOptimize(mask.data());
  }
}
BENCHMARK(BM_BuildVisibilityMask);

void BM_ModelEncodeForward(benchmark::State& state) {
  Env* env = GlobalEnv();
  const text::WordPieceTokenizer tokenizer = env->ctx.MakeTokenizer();
  core::EncodedTable encoded = core::EncodeTable(
      env->ctx.corpus.tables[0], tokenizer, env->ctx.entity_vocab);
  core::TurlModel model(core::TurlConfig{}, env->ctx.vocab.size(),
                        env->ctx.entity_vocab.size(), 11);
  Rng rng(4);
  for (auto _ : state) {
    nn::Tensor hidden = model.Encode(encoded, false, &rng);
    benchmark::DoNotOptimize(hidden.data());
  }
}
BENCHMARK(BM_ModelEncodeForward);

void BM_LookupService(benchmark::State& state) {
  Env* env = GlobalEnv();
  static kb::LookupService* lookup =
      new kb::LookupService(&env->ctx.world.kb);
  const std::string mention = env->ctx.world.kb.entity(10).name;
  for (auto _ : state) {
    auto candidates = lookup->Lookup(mention, 50);
    benchmark::DoNotOptimize(candidates.data());
  }
}
BENCHMARK(BM_LookupService);

void BM_CorpusGeneration(benchmark::State& state) {
  Rng rng(5);
  kb::SyntheticKb world = kb::GenerateSyntheticKb(kb::KbGeneratorConfig{},
                                                  &rng);
  data::CorpusGeneratorConfig config;
  config.num_tables = 200;
  for (auto _ : state) {
    data::Corpus corpus = data::GenerateCorpus(world, config, &rng);
    benchmark::DoNotOptimize(corpus.tables.data());
  }
}
BENCHMARK(BM_CorpusGeneration);

}  // namespace

// Like BENCHMARK_MAIN(), plus an observability dump. Profiling stays in its
// default env-controlled state (off unless TURL_PROFILE=1) so the kernels
// are measured with only the disabled-check branch in the hot loops.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  turl::obs::WriteObsJson("BENCH_obs.json");
  return 0;
}
