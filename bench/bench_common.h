#ifndef TURL_BENCH_BENCH_COMMON_H_
#define TURL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/context.h"
#include "core/model.h"
#include "core/model_cache.h"
#include "core/pretrain.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/server/handlers.h"
#include "rt/batch_scheduler.h"
#include "rt/inference_session.h"

namespace turl {
namespace bench {

/// Every experiment binary profiles itself: spans are enabled (unless
/// TURL_PROFILE=0 pins them off) and at exit the aggregated span report plus
/// the metrics registry are written to BENCH_obs.json (override the path
/// with TURL_BENCH_OBS) with a human-readable span table on stderr.
inline void InitObservability() {
  static bool initialized = false;
  if (initialized) return;
  initialized = true;
  obs::Profiler::SetEnabled(true);
  // Long benches are scrapable while running: TURL_OBS_PORT=<port> starts the
  // live observability plane (off when unset).
  obs::server::StartFromEnv();
  std::atexit(+[] {
    const char* path = std::getenv("TURL_BENCH_OBS");
    const std::string out = (path != nullptr && *path != '\0')
                                ? std::string(path)
                                : std::string("BENCH_obs.json");
    if (obs::WriteObsJson(out)) {
      std::fprintf(stderr, "\n-- span profile (full report: %s) --\n%s",
                   out.c_str(), obs::Profiler::Get().ReportTable().c_str());
    }
  });
}

/// The shared experimental environment: every table/figure binary builds the
/// same synthetic world, corpus and vocabularies from the same seed, and
/// shares one pre-trained checkpoint through the on-disk cache
/// ($TURL_CACHE, default <cwd>/turl_cache). The first binary to run pays the
/// pre-training cost; the rest load the checkpoint.
struct BenchEnv {
  core::ContextConfig context_config;
  core::TurlConfig model_config;
  core::TurlContext ctx;
  std::string cache_dir;
};

inline BenchEnv MakeEnv() {
  InitObservability();
  BenchEnv env;
  env.context_config.corpus.num_tables = 3000;
  env.context_config.seed = 42;
  env.model_config = core::TurlConfig{};  // Repro-scale defaults.
  env.cache_dir = core::DefaultCacheDir();
  env.ctx = core::BuildContext(env.context_config);
  return env;
}

/// Prints the standard experiment banner (model + corpus configuration).
inline void PrintBanner(const BenchEnv& env, const char* experiment) {
  std::printf("== %s ==\n", experiment);
  std::printf(
      "config: N=%d d_model=%lld d_ff=%lld heads=%d | corpus %zu tables "
      "(train %zu / valid %zu / test %zu) | word vocab %d | entity vocab %d\n",
      env.model_config.num_layers,
      static_cast<long long>(env.model_config.d_model),
      static_cast<long long>(env.model_config.d_intermediate),
      env.model_config.num_heads, env.ctx.corpus.tables.size(),
      env.ctx.corpus.train.size(), env.ctx.corpus.valid.size(),
      env.ctx.corpus.test.size(), env.ctx.vocab.size(),
      env.ctx.entity_vocab.size());
}

/// Standard pre-training options used for the shared checkpoint.
inline core::Pretrainer::Options StandardPretrainOptions() {
  core::Pretrainer::Options opts;
  opts.seed = 7;
  return opts;
}

/// Builds a fresh model with the env's configuration and loads (or trains)
/// the shared pre-trained checkpoint.
inline std::unique_ptr<core::TurlModel> LoadPretrained(const BenchEnv& env) {
  auto model = std::make_unique<core::TurlModel>(
      env.model_config, env.ctx.vocab.size(), env.ctx.entity_vocab.size(),
      /*seed=*/11);
  core::GetOrTrainModel(model.get(), env.ctx, StandardPretrainOptions(),
                        env.cache_dir);
  return model;
}

/// Inference session for bulk evaluation. Thread count comes from
/// TURL_RT_THREADS (default: hardware concurrency); results are identical
/// for any thread count, and TURL_RT_THREADS=1 runs the forwards inline.
inline rt::InferenceSession MakeSession(const core::TurlModel& model) {
  rt::SessionOptions options;
  rt::InferenceSession session(model, options);
  std::printf("runtime: %d inference thread%s, batch budget %lld "
              "tokens+entities, max %d tables/batch\n",
              session.num_threads(), session.num_threads() == 1 ? "" : "s",
              static_cast<long long>(rt::BatchSchedulerOptions{}.max_batch_budget),
              rt::BatchSchedulerOptions{}.max_batch_tables);
  return session;
}

/// Builds a randomly initialized model (the no-pre-training baselines).
inline std::unique_ptr<core::TurlModel> FreshModel(const BenchEnv& env,
                                                   bool use_visibility,
                                                   uint64_t seed = 23) {
  core::TurlConfig config = env.model_config;
  config.use_visibility_matrix = use_visibility;
  return std::make_unique<core::TurlModel>(config, env.ctx.vocab.size(),
                                           env.ctx.entity_vocab.size(), seed);
}

}  // namespace bench
}  // namespace turl

#endif  // TURL_BENCH_BENCH_COMMON_H_
