// Reproduces Figure 7b: validation object-entity-prediction accuracy over
// pre-training steps for MER mask ratios {0.2, 0.4, 0.6, 0.8}. Very high
// ratios starve the model of entity context; very low ratios train on few
// cells per step and mismatch downstream usage.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  using namespace turl;
  bench::BenchEnv env = bench::MakeEnv();
  bench::PrintBanner(env, "Figure 7b: MER mask-ratio ablation");

  core::Pretrainer::Options opts;
  opts.epochs = 3;
  opts.max_train_tables = 1200;
  opts.eval_every = 600;
  opts.seed = 7;

  const float ratios[] = {0.2f, 0.4f, 0.6f, 0.8f};
  std::vector<core::PretrainResult> results;
  for (float ratio : ratios) {
    core::TurlConfig config = env.model_config;
    config.mer_ratio = ratio;
    config.pretrain_epochs = opts.epochs;
    core::TurlModel model(config, env.ctx.vocab.size(),
                          env.ctx.entity_vocab.size(), /*seed=*/11);
    core::Pretrainer pretrainer(&model, &env.ctx);
    results.push_back(pretrainer.Train(opts));
    std::printf("ratio %.1f trained (%lld steps)\n", ratio,
                static_cast<long long>(results.back().steps));
  }

  std::printf("\n%10s", "step");
  for (float ratio : ratios) std::printf("   ACC(r=%.1f)", ratio);
  std::printf("\n");
  size_t rows = results[0].eval_curve.size();
  for (const auto& r : results) rows = std::min(rows, r.eval_curve.size());
  for (size_t i = 0; i < rows; ++i) {
    std::printf("%10lld",
                static_cast<long long>(results[0].eval_curve[i].first));
    for (const auto& r : results) {
      std::printf("%12.3f", r.eval_curve[i].second);
    }
    std::printf("\n");
  }
  std::printf("\nfinal:");
  for (size_t j = 0; j < results.size(); ++j) {
    std::printf("  r=%.1f -> %.3f", ratios[j], results[j].final_accuracy);
  }
  std::printf("\npaper shape: 0.8 clearly drops; 0.2 lags the mid ratios; "
              "0.4-0.6 are close (0.6 chosen in the paper).\n");
  return 0;
}
