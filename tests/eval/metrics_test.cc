#include "eval/metrics.h"

#include "gtest/gtest.h"

namespace turl {
namespace eval {
namespace {

TEST(ComputePrfTest, Basic) {
  Prf p = ComputePrf(8, 2, 4);
  EXPECT_DOUBLE_EQ(p.precision, 0.8);
  EXPECT_NEAR(p.recall, 8.0 / 12.0, 1e-9);
  EXPECT_NEAR(p.f1, 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0), 1e-9);
}

TEST(ComputePrfTest, ZeroDenominators) {
  Prf p = ComputePrf(0, 0, 0);
  EXPECT_EQ(p.precision, 0.0);
  EXPECT_EQ(p.recall, 0.0);
  EXPECT_EQ(p.f1, 0.0);
}

TEST(ComputePrfTest, PerfectScores) {
  Prf p = ComputePrf(5, 0, 0);
  EXPECT_EQ(p.precision, 1.0);
  EXPECT_EQ(p.recall, 1.0);
  EXPECT_EQ(p.f1, 1.0);
}

TEST(MicroPrfTest, AccumulatesAcrossInstances) {
  MicroPrf micro;
  micro.Add({1, 2}, {1});      // tp=1 fp=1.
  micro.Add({3}, {3, 4});      // tp=1 fn=1.
  micro.Add({}, {5});          // fn=1.
  EXPECT_EQ(micro.tp(), 2);
  EXPECT_EQ(micro.fp(), 1);
  EXPECT_EQ(micro.fn(), 2);
  Prf p = micro.Compute();
  EXPECT_NEAR(p.precision, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(p.recall, 0.5, 1e-9);
}

TEST(MicroPrfTest, DuplicatesCountOnce) {
  MicroPrf micro;
  micro.Add({1, 1, 1}, {1, 1});
  EXPECT_EQ(micro.tp(), 1);
  EXPECT_EQ(micro.fp(), 0);
}

TEST(AveragePrecisionTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(AveragePrecision({true, true, false}, 2), 1.0);
}

TEST(AveragePrecisionTest, WorstRanking) {
  // Two relevant at ranks 2 and 3 (1-indexed) of 3, num_relevant 2:
  // AP = (1/2 + 2/3)/2.
  EXPECT_NEAR(AveragePrecision({false, true, true}, 2),
              (0.5 + 2.0 / 3.0) / 2.0, 1e-9);
}

TEST(AveragePrecisionTest, MissingRelevantLowersScore) {
  // One of two relevant items not retrieved at all.
  EXPECT_NEAR(AveragePrecision({true, false, false}, 2), 0.5, 1e-9);
}

TEST(AveragePrecisionTest, ZeroRelevant) {
  EXPECT_EQ(AveragePrecision({false, false}, 0), 0.0);
}

TEST(AveragePrecisionTest, SingleRelevantAtRankK) {
  // AP for a single relevant item at rank k is 1/k.
  for (int k = 1; k <= 5; ++k) {
    std::vector<bool> rel(5, false);
    rel[size_t(k - 1)] = true;
    EXPECT_NEAR(AveragePrecision(rel, 1), 1.0 / k, 1e-9) << k;
  }
}

TEST(MeanOfTest, Basic) {
  EXPECT_DOUBLE_EQ(MeanOf({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(MeanOf({}), 0.0);
}

TEST(PrecisionAtKTest, Basic) {
  EXPECT_NEAR(PrecisionAtK({true, false, true, false}, 4), 0.5, 1e-9);
  EXPECT_NEAR(PrecisionAtK({true, false, true, false}, 1), 1.0, 1e-9);
  EXPECT_EQ(PrecisionAtK({}, 3), 0.0);
  EXPECT_EQ(PrecisionAtK({true}, 0), 0.0);
}

TEST(HitAtKTest, Basic) {
  EXPECT_EQ(HitAtK({false, true, false}, 1), 0.0);
  EXPECT_EQ(HitAtK({false, true, false}, 2), 1.0);
  EXPECT_EQ(HitAtK({false, false}, 10), 0.0);
  EXPECT_EQ(HitAtK({}, 3), 0.0);
}

TEST(RecallAtKTest, Basic) {
  EXPECT_NEAR(RecallAtK({true, true, false}, 2, 4), 0.5, 1e-9);
  EXPECT_NEAR(RecallAtK({true, true, false}, 3, 2), 1.0, 1e-9);
  EXPECT_EQ(RecallAtK({true}, 1, 0), 0.0);
}

// Property sweep: AP is monotone when a relevant item moves up the ranking.
class ApMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(ApMonotoneTest, MovingRelevantUpNeverHurts) {
  const int pos = GetParam();
  std::vector<bool> low(6, false), high(6, false);
  low[size_t(pos)] = true;
  high[size_t(pos - 1)] = true;
  EXPECT_GE(AveragePrecision(high, 1), AveragePrecision(low, 1));
}

INSTANTIATE_TEST_SUITE_P(Positions, ApMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace eval
}  // namespace turl
