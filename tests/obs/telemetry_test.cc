#include "obs/telemetry.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/context.h"
#include "core/pretrain.h"
#include "obs/metrics.h"

namespace turl {
namespace obs {
namespace {

/// Captures every record it receives, in order.
class CaptureSink : public MetricsSink {
 public:
  void Emit(const TrainRecord& record) override {
    records.push_back(record);
  }
  std::vector<TrainRecord> records;
};

TEST(TrainRecordTest, JsonLineOmitsAbsentFields) {
  TrainRecord r;
  r.phase = "pretrain";
  r.step = 10;
  const std::string line = ToJsonLine(r);
  EXPECT_NE(line.find("\"phase\":\"pretrain\""), std::string::npos);
  EXPECT_NE(line.find("\"step\":10"), std::string::npos);
  EXPECT_NE(line.find("\"elapsed_sec\":"), std::string::npos);
  // epoch=-1 and the NaN-valued metrics are all omitted.
  EXPECT_EQ(line.find("epoch"), std::string::npos);
  EXPECT_EQ(line.find("loss"), std::string::npos);
  EXPECT_EQ(line.find("eval"), std::string::npos);
  EXPECT_EQ(line.find("tables_per_sec"), std::string::npos);
  EXPECT_EQ(line.find("nan"), std::string::npos);
}

TEST(TrainRecordTest, JsonLineIncludesPresentFields) {
  TrainRecord r;
  r.phase = "finetune.entity_linking";
  r.step = 3;
  r.epoch = 1;
  r.loss = 0.25;
  r.mlm_loss = 0.125;
  r.eval_metric = "valid_map";
  r.eval_value = 0.75;
  r.tables_per_sec = 12.5;
  const std::string line = ToJsonLine(r);
  EXPECT_NE(line.find("\"epoch\":1"), std::string::npos);
  EXPECT_NE(line.find("\"loss\":0.25"), std::string::npos);
  EXPECT_NE(line.find("\"mlm_loss\":0.125"), std::string::npos);
  EXPECT_EQ(line.find("mer_loss"), std::string::npos);
  EXPECT_NE(line.find("\"eval_metric\":\"valid_map\""), std::string::npos);
  EXPECT_NE(line.find("\"eval_value\":0.75"), std::string::npos);
  EXPECT_NE(line.find("\"tables_per_sec\":12.5"), std::string::npos);
}

TEST(JsonlSinkTest, AppendsOneLinePerRecord) {
  const std::string path = ::testing::TempDir() + "/telemetry_test.jsonl";
  std::remove(path.c_str());
  {
    JsonlSink sink(path);
    ASSERT_TRUE(sink.ok());
    TrainRecord r;
    r.phase = "test";
    for (int i = 0; i < 3; ++i) {
      r.step = i;
      sink.Emit(r);
    }
    sink.Flush();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"phase\":\"test\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(TelemetryHubTest, FansOutToRegisteredSinksAndMirrorsGauges) {
  CaptureSink a, b;
  TelemetryHub::Get().AddSink(&a);
  TelemetryHub::Get().AddSink(&b);
  TrainRecord r;
  r.phase = "hubtest";
  r.step = 7;
  r.loss = 1.5;
  r.eval_metric = "acc";
  r.eval_value = 0.5;
  EmitRecord(r);
  TelemetryHub::Get().RemoveSink(&a);
  TelemetryHub::Get().RemoveSink(&b);
  ASSERT_EQ(a.records.size(), 1u);
  ASSERT_EQ(b.records.size(), 1u);
  EXPECT_EQ(a.records[0].step, 7);
  // The hub mirrors the record into the global registry.
  MetricsRegistry& reg = MetricsRegistry::Get();
  EXPECT_GE(reg.GetCounter("hubtest.records")->Value(), 1);
  EXPECT_DOUBLE_EQ(reg.GetGauge("hubtest.loss")->Value(), 1.5);
  EXPECT_DOUBLE_EQ(reg.GetGauge("hubtest.acc")->Value(), 0.5);
  // A removed sink no longer receives records.
  EmitRecord(r);
  EXPECT_EQ(a.records.size(), 1u);
}

TEST(FinetuneTelemetryTest, EmitsEpochAndEvalRecords) {
  CaptureSink sink;
  FinetuneTelemetry telemetry("finetune.testtask", &sink);
  telemetry.Step(2.0);
  telemetry.Step(4.0);
  telemetry.EndEpoch(0);
  telemetry.Step(1.0);
  telemetry.EndEpoch(1);
  telemetry.Eval("valid_map", 0.625);
  EXPECT_EQ(telemetry.steps(), 3);
  ASSERT_EQ(sink.records.size(), 3u);
  EXPECT_EQ(sink.records[0].epoch, 0);
  EXPECT_DOUBLE_EQ(sink.records[0].loss, 3.0);  // Mean of 2.0, 4.0.
  EXPECT_EQ(sink.records[1].epoch, 1);
  EXPECT_DOUBLE_EQ(sink.records[1].loss, 1.0);
  EXPECT_EQ(sink.records[1].step, 3);
  EXPECT_EQ(sink.records[2].eval_metric, "valid_map");
  EXPECT_DOUBLE_EQ(sink.records[2].eval_value, 0.625);
  EXPECT_GE(
      MetricsRegistry::Get().GetCounter("finetune.testtask.steps")->Value(),
      3);
}

TEST(TrainHealthTest, WarnsOnNonFiniteAndExplodingGradients) {
  CaptureSink sink;
  MetricsRegistry& reg = MetricsRegistry::Get();
  const int64_t nonfinite_before =
      reg.GetCounter("obs.nonfinite_grads")->Value();
  const int64_t exploding_before =
      reg.GetCounter("obs.exploding_grads")->Value();

  RecordTrainHealth("healthtest", 1, 2.0, 3.0, &sink);
  EXPECT_TRUE(sink.records.empty()) << "healthy steps emit nothing";
  EXPECT_DOUBLE_EQ(reg.GetGauge("train.grad_norm")->Value(), 3.0);

  RecordTrainHealth("healthtest", 2, 2.0,
                    std::numeric_limits<double>::quiet_NaN(), &sink);
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].warning, "non-finite gradient norm");
  EXPECT_EQ(reg.GetCounter("obs.nonfinite_grads")->Value(),
            nonfinite_before + 1);

  RecordTrainHealth("healthtest", 3,
                    std::numeric_limits<double>::infinity(), 1.0, &sink);
  ASSERT_EQ(sink.records.size(), 2u);
  EXPECT_EQ(sink.records[1].warning, "non-finite loss");

  RecordTrainHealth("healthtest", 4, 2.0, /*grad_norm=*/5e3, &sink);
  ASSERT_EQ(sink.records.size(), 3u);
  EXPECT_EQ(sink.records[2].warning, "exploding gradient norm");
  EXPECT_EQ(reg.GetCounter("obs.exploding_grads")->Value(),
            exploding_before + 1);

  // A non-finite norm must survive serialization (JsonDouble would drop it).
  const std::string line = ToJsonLine(sink.records[0]);
  EXPECT_NE(line.find("\"grad_norm\":\"nan\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"warning\":\"non-finite gradient norm\""),
            std::string::npos)
      << line;
}

TEST(FinetuneTelemetryTest, GradNormOverloadRunsHealthCheck) {
  CaptureSink sink;
  FinetuneTelemetry telemetry("finetune.healthtask", &sink);
  telemetry.Step(1.0, 2.0);
  EXPECT_TRUE(sink.records.empty()) << "healthy steps emit nothing";
  telemetry.Step(1.0, std::numeric_limits<double>::quiet_NaN());
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].phase, "finetune.healthtask");
  EXPECT_EQ(sink.records[0].warning, "non-finite gradient norm");
}

TEST(PretrainTelemetryTest, OneRecordPerEvalStepMatchingEvalCurve) {
  core::ContextConfig config;
  config.corpus.num_tables = 120;
  config.seed = 42;
  core::TurlContext ctx = core::BuildContext(config);

  core::TurlConfig model_config;
  model_config.num_layers = 1;
  model_config.d_model = 32;
  model_config.d_intermediate = 64;
  model_config.num_heads = 2;
  core::TurlModel model(model_config, ctx.vocab.size(),
                        ctx.entity_vocab.size(), 1);

  core::Pretrainer pretrainer(&model, &ctx);
  core::Pretrainer::Options opts;
  opts.epochs = 1;
  opts.max_train_tables = 30;
  opts.eval_every = 10;
  opts.max_eval_tables = 5;
  opts.seed = 7;
  CaptureSink sink;
  opts.sink = &sink;
  core::PretrainResult result = pretrainer.Train(opts);

  // Every record carrying an eval value corresponds 1:1 — same step, same
  // accuracy — with the result's eval curve (the Figure 7 series).
  std::vector<const TrainRecord*> eval_records;
  for (const TrainRecord& r : sink.records) {
    EXPECT_EQ(r.phase, "pretrain");
    if (!std::isnan(r.eval_value)) eval_records.push_back(&r);
  }
  ASSERT_GE(result.eval_curve.size(), 2u);
  ASSERT_EQ(eval_records.size(), result.eval_curve.size());
  for (size_t i = 0; i < eval_records.size(); ++i) {
    EXPECT_EQ(eval_records[i]->step, result.eval_curve[i].first);
    EXPECT_DOUBLE_EQ(eval_records[i]->eval_value,
                     result.eval_curve[i].second);
    EXPECT_EQ(eval_records[i]->eval_metric, "object_prediction_acc");
  }
  // Windowed loss means are present and positive while training.
  EXPECT_FALSE(std::isnan(sink.records.front().loss));
  EXPECT_GT(sink.records.front().loss, 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace turl
