// SLI engine + SLO watchdog unit tests, all on an injected fake clock:
// bucket/window math (inclusion, expiry, ring wrap), outcome rates, the
// interpolated quantiles, exemplar propagation, the "all" aggregate, the
// Prometheus appendix, and the watchdog (probe registration, on-demand
// evaluation, burn edge latching with one-shot telemetry, recovery,
// vacuous pass under min_requests).

#include "obs/slo.h"

#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/server/handlers.h"
#include "obs/telemetry.h"

namespace turl {
namespace obs {
namespace {

TEST(SliOutcomeTest, StatusNameMapping) {
  EXPECT_EQ(OutcomeFromStatusName("ok"), SliOutcome::kOk);
  EXPECT_EQ(OutcomeFromStatusName("overloaded"), SliOutcome::kShed);
  EXPECT_EQ(OutcomeFromStatusName("deadline_exceeded"),
            SliOutcome::kDeadlineMiss);
  EXPECT_EQ(OutcomeFromStatusName("bad_request"), SliOutcome::kError);
  EXPECT_EQ(OutcomeFromStatusName("shutting_down"), SliOutcome::kError);
  EXPECT_EQ(OutcomeFromStatusName(nullptr), SliOutcome::kError);
}

TEST(SliEngineTest, EmptyWindowIsHealthy) {
  SliEngine engine;
  const SliSnapshot s = engine.Snapshot("encode", 60);
  EXPECT_EQ(s.total, 0);
  EXPECT_DOUBLE_EQ(s.availability, 1.0);  // No traffic is not an outage.
  EXPECT_DOUBLE_EQ(s.p99_ms, 0.0);
  EXPECT_EQ(s.exemplar_trace_id, 0u);
}

TEST(SliEngineTest, CountsAndRatesOverWindow) {
  SliEngine engine;
  int64_t now = 10'000;
  engine.SetClockForTest([&now] { return now; });
  for (int i = 0; i < 6; ++i) engine.Record("encode", SliOutcome::kOk, 10.0);
  engine.Record("encode", SliOutcome::kShed, 0.1);
  engine.Record("encode", SliOutcome::kDeadlineMiss, 80.0);
  engine.Record("encode", SliOutcome::kError, 1.0);
  engine.Record("encode", SliOutcome::kError, 1.0);

  const SliSnapshot s = engine.Snapshot("encode", 10);
  EXPECT_EQ(s.total, 10);
  EXPECT_EQ(s.ok, 6);
  EXPECT_EQ(s.shed, 1);
  EXPECT_EQ(s.deadline_miss, 1);
  EXPECT_EQ(s.error, 2);
  EXPECT_DOUBLE_EQ(s.availability, 0.6);
  EXPECT_DOUBLE_EQ(s.shed_rate, 0.1);
  EXPECT_DOUBLE_EQ(s.deadline_miss_rate, 0.1);
  EXPECT_DOUBLE_EQ(s.max_ms, 80.0);
}

TEST(SliEngineTest, HorizonsExpireIndependently) {
  SliEngine engine;
  int64_t now = 50'000;
  engine.SetClockForTest([&now] { return now; });
  engine.Record("encode", SliOutcome::kOk, 5.0);

  now += 5;  // Still inside every horizon.
  EXPECT_EQ(engine.Snapshot("encode", 10).total, 1);
  EXPECT_EQ(engine.Snapshot("encode", 60).total, 1);

  now += 20;  // 25s later: out of the 10s window, inside 1m and 5m.
  EXPECT_EQ(engine.Snapshot("encode", 10).total, 0);
  EXPECT_EQ(engine.Snapshot("encode", 60).total, 1);
  EXPECT_EQ(engine.Snapshot("encode", 300).total, 1);

  now += 280;  // 305s later: gone everywhere.
  EXPECT_EQ(engine.Snapshot("encode", 300).total, 0);
  EXPECT_DOUBLE_EQ(engine.Snapshot("encode", 300).availability, 1.0);
}

TEST(SliEngineTest, RingWrapResetsStaleBuckets) {
  SliEngine engine;
  int64_t now = 1'000;
  engine.SetClockForTest([&now] { return now; });
  engine.Record("encode", SliOutcome::kError, 1.0);
  // One full ring later the same bucket slot is reused; the stale error
  // must not leak into the new window.
  now += SliEngine::kWindowS;
  engine.Record("encode", SliOutcome::kOk, 1.0);
  const SliSnapshot s = engine.Snapshot("encode", 300);
  EXPECT_EQ(s.total, 1);
  EXPECT_EQ(s.error, 0);
  EXPECT_DOUBLE_EQ(s.availability, 1.0);
}

TEST(SliEngineTest, QuantilesInterpolateAndClampToMax) {
  SliEngine engine;
  int64_t now = 2'000;
  engine.SetClockForTest([&now] { return now; });
  for (int i = 1; i <= 100; ++i) {
    engine.Record("encode", SliOutcome::kOk, double(i));
  }
  const SliSnapshot s = engine.Snapshot("encode", 10);
  EXPECT_EQ(s.total, 100);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
  EXPECT_NEAR(s.mean_ms, 50.5, 1e-9);
  // Log-spaced buckets: quantiles are estimates, but must rank correctly
  // and never exceed the observed max.
  EXPECT_GT(s.p50_ms, 30.0);
  EXPECT_LT(s.p50_ms, 70.0);
  EXPECT_GT(s.p90_ms, s.p50_ms);
  EXPECT_GE(s.p99_ms, s.p90_ms);
  EXPECT_LE(s.p99_ms, s.max_ms);
}

TEST(SliEngineTest, ExemplarKeepsWorstTracedSample) {
  SliEngine engine;
  int64_t now = 3'000;
  engine.SetClockForTest([&now] { return now; });
  engine.Record("encode", SliOutcome::kOk, 10.0, /*trace_id=*/111);
  engine.Record("encode", SliOutcome::kOk, 90.0, /*trace_id=*/222);
  engine.Record("encode", SliOutcome::kOk, 95.0, /*trace_id=*/0);  // Untraced.
  engine.Record("encode", SliOutcome::kOk, 40.0, /*trace_id=*/333);
  const SliSnapshot s = engine.Snapshot("encode", 10);
  EXPECT_EQ(s.exemplar_trace_id, 222u);  // Worst *traced* sample.
  EXPECT_DOUBLE_EQ(s.exemplar_ms, 90.0);
}

TEST(SliEngineTest, AllStreamAggregates) {
  SliEngine engine;
  int64_t now = 4'000;
  engine.SetClockForTest([&now] { return now; });
  engine.Record("encode", SliOutcome::kOk, 1.0);
  engine.Record("entity_linking", SliOutcome::kShed, 2.0);
  EXPECT_EQ(engine.Snapshot("encode", 10).total, 1);
  EXPECT_EQ(engine.Snapshot("entity_linking", 10).total, 1);
  const SliSnapshot all = engine.Snapshot(SliEngine::kAllStream, 10);
  EXPECT_EQ(all.total, 2);
  EXPECT_EQ(all.shed, 1);
  // Recording directly under "all" must not double count.
  engine.Record(SliEngine::kAllStream, SliOutcome::kOk, 1.0);
  EXPECT_EQ(engine.Snapshot(SliEngine::kAllStream, 10).total, 3);

  const std::vector<const char*> streams = engine.streams();
  ASSERT_FALSE(streams.empty());
  EXPECT_STREQ(streams.front(), "all");  // Aggregate always registered first.
}

TEST(SliEngineTest, ResetForgetsTraffic) {
  SliEngine engine;
  int64_t now = 5'000;
  engine.SetClockForTest([&now] { return now; });
  engine.Record("encode", SliOutcome::kOk, 1.0);
  engine.Reset();
  EXPECT_EQ(engine.Snapshot("encode", 300).total, 0);
  EXPECT_EQ(engine.streams().size(), 2u);  // "all" + "encode" survive.
}

TEST(SliMetricsTextTest, EmitsFamiliesWithExemplars) {
  SliEngine engine;
  int64_t now = 6'000;
  engine.SetClockForTest([&now] { return now; });
  engine.Record("encode", SliOutcome::kOk, 42.0, /*trace_id=*/987654);
  const std::string text = SliMetricsText(engine);
  EXPECT_NE(text.find("# HELP turl_slo_availability"), std::string::npos);
  EXPECT_NE(text.find("# TYPE turl_slo_p99_ms gauge"), std::string::npos);
  EXPECT_NE(text.find("turl_slo_requests{task=\"encode\",window=\"10s\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("window=\"1m\""), std::string::npos);
  EXPECT_NE(text.find("window=\"5m\""), std::string::npos);
  // The p99 series carries the worst traced sample as an exemplar.
  EXPECT_NE(text.find("# {trace_id=\"987654\"}"), std::string::npos);
  // HELP/TYPE appear exactly once per family.
  const std::string help = "# HELP turl_slo_p99_ms";
  EXPECT_EQ(text.find(help), text.rfind(help));
}

/// Captures warning TrainRecords emitted through the hub.
class CaptureSink : public MetricsSink {
 public:
  void Emit(const TrainRecord& record) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (!record.warning.empty()) warnings_.push_back(record.warning);
  }
  std::vector<std::string> warnings() {
    std::lock_guard<std::mutex> lock(mu_);
    return warnings_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> warnings_;
};

TEST(SloWatchdogTest, TargetRegistersProbeAndEvaluatesOnDemand) {
  SliEngine engine;
  int64_t now = 7'000;
  engine.SetClockForTest([&now] { return now; });
  SloWatchdog watchdog(&engine);

  const size_t before = server::HealthRegistry::Get().size();
  SloTarget target;
  target.name = "test.avail";
  target.stream = "encode";
  target.horizon_s = 10;
  target.min_requests = 1;
  target.min_availability = 0.99;
  const int id = watchdog.AddTarget(target);
  EXPECT_EQ(server::HealthRegistry::Get().size(), before + 1);

  auto probe = [&](bool* found, bool* ok, std::string* detail) {
    *found = false;
    for (const auto& r : server::HealthRegistry::Get().RunAll()) {
      if (r.name == "slo.test.avail") {
        *found = true;
        *ok = r.ok;
        *detail = r.detail;
      }
    }
  };

  bool found = false, ok = false;
  std::string detail;
  probe(&found, &ok, &detail);
  ASSERT_TRUE(found);
  EXPECT_TRUE(ok);  // Idle: vacuous pass.
  EXPECT_NE(detail.find("idle"), std::string::npos);

  engine.Record("encode", SliOutcome::kOk, 1.0);
  probe(&found, &ok, &detail);
  EXPECT_TRUE(ok);

  engine.Record("encode", SliOutcome::kError, 1.0);  // availability 0.5.
  probe(&found, &ok, &detail);
  EXPECT_FALSE(ok);  // Probe re-evaluates per scrape — no Tick needed.
  EXPECT_NE(detail.find("availability"), std::string::npos);

  // The failing probe latched the burn.
  const auto burns = watchdog.ActiveBurns();
  ASSERT_EQ(burns.size(), 1u);
  EXPECT_EQ(burns[0].name, "slo.test.avail");

  // Recovery: the bad sample ages out of the 10s window.
  now += 30;
  probe(&found, &ok, &detail);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(watchdog.ActiveBurns().empty());

  watchdog.RemoveTarget(id);
  EXPECT_EQ(server::HealthRegistry::Get().size(), before);
}

TEST(SloWatchdogTest, TickLatchesBurnEdgeOnce) {
  SliEngine engine;
  int64_t now = 8'000;
  engine.SetClockForTest([&now] { return now; });
  SloWatchdog watchdog(&engine);

  CaptureSink sink;
  TelemetryHub::Get().AddSink(&sink);
  Counter* burn_counter = MetricsRegistry::Get().GetCounter("obs.slo_burns");
  const int64_t burns_before = burn_counter->Value();

  SloTarget target;
  target.name = "test.p99";
  target.stream = "encode";
  target.horizon_s = 10;
  target.min_requests = 1;
  target.max_p99_ms = 50.0;
  watchdog.AddTarget(target);

  engine.Record("encode", SliOutcome::kOk, 10.0);
  auto evals = watchdog.Tick();
  ASSERT_EQ(evals.size(), 1u);
  EXPECT_TRUE(evals[0].ok);
  EXPECT_EQ(burn_counter->Value(), burns_before);

  engine.Record("encode", SliOutcome::kOk, 500.0);  // p99 blows the target.
  evals = watchdog.Tick();
  EXPECT_FALSE(evals[0].ok);
  watchdog.Tick();  // Still burning: same edge, no second emission.
  watchdog.Tick();
  EXPECT_EQ(burn_counter->Value(), burns_before + 1);
  const auto warnings = sink.warnings();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("slo burn: slo.test.p99"), std::string::npos);

  // Recovery, then a fresh burn: a second edge, a second emission.
  now += 30;
  evals = watchdog.Tick();
  EXPECT_TRUE(evals[0].ok);
  engine.Record("encode", SliOutcome::kOk, 500.0);
  watchdog.Tick();
  EXPECT_EQ(burn_counter->Value(), burns_before + 2);
  EXPECT_EQ(sink.warnings().size(), 2u);

  TelemetryHub::Get().RemoveSink(&sink);
}

TEST(SloWatchdogTest, MinRequestsGatesEvaluation) {
  SliEngine engine;
  int64_t now = 9'000;
  engine.SetClockForTest([&now] { return now; });
  SloWatchdog watchdog(&engine);

  SloTarget target;
  target.name = "test.gated";
  target.stream = "encode";
  target.horizon_s = 10;
  target.min_requests = 5;
  target.min_availability = 0.99;
  watchdog.AddTarget(target);

  // Four straight errors: availability 0, but under min_requests — vacuous
  // pass (a cold service must not page).
  for (int i = 0; i < 4; ++i) {
    engine.Record("encode", SliOutcome::kError, 1.0);
  }
  auto evals = watchdog.Tick();
  ASSERT_EQ(evals.size(), 1u);
  EXPECT_TRUE(evals[0].ok);
  EXPECT_NE(evals[0].detail.find("idle"), std::string::npos);

  engine.Record("encode", SliOutcome::kError, 1.0);  // Fifth: now it counts.
  evals = watchdog.Tick();
  EXPECT_FALSE(evals[0].ok);
}

TEST(SloWatchdogTest, MultipleThresholdsReportEveryViolation) {
  SliEngine engine;
  int64_t now = 11'000;
  engine.SetClockForTest([&now] { return now; });
  SloWatchdog watchdog(&engine);

  SloTarget target;
  target.name = "test.multi";
  target.horizon_s = 10;  // Stream defaults to "all".
  target.min_requests = 1;
  target.min_availability = 0.99;
  target.max_shed_rate = 0.01;
  watchdog.AddTarget(target);
  EXPECT_EQ(watchdog.size(), 1u);

  engine.Record("encode", SliOutcome::kShed, 1.0);
  const auto evals = watchdog.Tick();
  ASSERT_EQ(evals.size(), 1u);
  EXPECT_FALSE(evals[0].ok);
  EXPECT_NE(evals[0].detail.find("availability"), std::string::npos);
  EXPECT_NE(evals[0].detail.find("shed_rate"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace turl
