// HTTP surface of the SLO plane: /statusz (text + JSON), /requestz
// (filters, limits, and the query-param edge cases — duplicate keys, empty
// values, out-of-range clamps), the /metrics SLI appendix whose p99
// exemplar must resolve to a real span on /tracez, and /healthz flipping
// 503 under an injected SLO burn. Runs against a real ObsServer on an
// ephemeral loopback port (labels: slo, obs_http).

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/eventlog.h"
#include "obs/server/handlers.h"
#include "obs/server/http.h"
#include "obs/server/server.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace turl {
namespace obs {
namespace server {
namespace {

/// Starts an ObsServer with the standard handlers for one test.
class SloServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SliEngine::Get().Reset();
    SliEngine::SetEnabled(true);
    EventLog::Get().Reset();
    EventLog::SetEnabled(true);
    RegisterStandardHandlers(&server_);
    ASSERT_TRUE(server_.Start().ok());
  }
  void TearDown() override {
    server_.Stop();
    SliEngine::Get().Reset();
    EventLog::Get().Reset();
  }

  std::string Get(const std::string& path, int expect_status = 200) {
    HttpClientResponse resp;
    const Status s = HttpGet("127.0.0.1", server_.port(), path, &resp);
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(resp.status, expect_status) << path;
    return resp.body;
  }

  ObsServer server_;
};

WideEvent ServeEvent(uint64_t id, const char* task, const char* status) {
  WideEvent event;
  event.origin = "serve";
  event.task = task;
  event.status = status;
  event.request_id = id;
  event.end_ms = double(id);
  event.total_us = 1000.0;
  return event;
}

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST_F(SloServerTest, StatuszReportsStreamsTextAndJson) {
  SliEngine::Get().Record("encode", SliOutcome::kOk, 12.0);
  SliEngine::Get().Record("encode", SliOutcome::kShed, 0.5);

  const std::string text = Get("/statusz");
  EXPECT_EQ(text.rfind("slo status: SLIs enabled", 0), 0u);
  EXPECT_NE(text.find("active burns: none"), std::string::npos);
  EXPECT_NE(text.find("encode"), std::string::npos);
  EXPECT_NE(text.find("all"), std::string::npos);
  // All three windows render for a stream with traffic.
  EXPECT_NE(text.find("10s"), std::string::npos);
  EXPECT_NE(text.find("1m"), std::string::npos);
  EXPECT_NE(text.find("5m"), std::string::npos);

  const std::string json = Get("/statusz?format=json");
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"burns\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"stream\":\"encode\""), std::string::npos);
  EXPECT_NE(json.find("\"stream\":\"all\""), std::string::npos);
  EXPECT_NE(json.find("\"window_s\":60"), std::string::npos);
  EXPECT_NE(json.find("\"availability\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"shed\":1"), std::string::npos);
}

TEST_F(SloServerTest, MetricsP99ExemplarResolvesOnTracez) {
  // Record a real span, then feed its trace id into the SLI engine as the
  // worst sample — the acceptance path: /metrics p99 exemplar -> /tracez.
  Tracer::SetEnabled(true);
  Tracer::Get().SetSampler(1, 0);
  ActiveSpan span = Tracer::Get().BeginTrace("slo_server_test.op");
  ASSERT_TRUE(span.traced());
  const uint64_t trace_id = span.trace_id;
  Tracer::Get().End(&span);

  SliEngine::Get().Record("encode", SliOutcome::kOk, 42.0, trace_id);

  const std::string metrics = Get("/metrics");
  EXPECT_NE(metrics.find("turl_slo_requests{task=\"encode\""),
            std::string::npos);
  EXPECT_NE(metrics.find("turl_slo_p99_ms"), std::string::npos);
  const std::string exemplar =
      "# {trace_id=\"" + std::to_string(trace_id) + "\"}";
  EXPECT_NE(metrics.find(exemplar), std::string::npos) << metrics;

  const std::string tracez = Get("/tracez?format=json&limit=500");
  const std::string span_ref = "\"trace\":\"" + std::to_string(trace_id) + "\"";
  EXPECT_NE(tracez.find(span_ref), std::string::npos)
      << "exemplar trace id " << trace_id << " not found on /tracez";
}

TEST_F(SloServerTest, RequestzListsNewestFirstAndFilters) {
  for (uint64_t i = 0; i < 5; ++i) {
    EventLog::Get().Append(ServeEvent(i, "encode", i == 2 ? "overloaded"
                                                          : "ok"));
  }
  EventLog::Get().Append(ServeEvent(100, "entity_linking", "ok"));

  const std::string text = Get("/requestz");
  EXPECT_EQ(text.rfind("wide events: log enabled", 0), 0u);
  EXPECT_NE(text.find("encode"), std::string::npos);
  // Newest first: id 100 (end_ms 100) renders before id 0.
  EXPECT_LT(text.find("entity_linking"), text.find(" ok"));

  const std::string shed_only = Get("/requestz?status=overloaded&format=json");
  EXPECT_EQ(CountOccurrences(shed_only, "\"id\":"), 1u);
  EXPECT_NE(shed_only.find("\"id\":2"), std::string::npos);

  const std::string task_only = Get("/requestz?task=entity_linking&format=json");
  EXPECT_EQ(CountOccurrences(task_only, "\"id\":"), 1u);
  EXPECT_NE(task_only.find("\"id\":100"), std::string::npos);

  const std::string origin_none = Get("/requestz?origin=train&format=json");
  EXPECT_EQ(CountOccurrences(origin_none, "\"id\":"), 0u);
  EXPECT_NE(origin_none.find("\"events\":[]"), std::string::npos);

  const std::string limited = Get("/requestz?limit=2&format=json");
  EXPECT_EQ(CountOccurrences(limited, "\"id\":"), 2u);
  // The newest two survive the limit.
  EXPECT_NE(limited.find("\"id\":100"), std::string::npos);
  EXPECT_NE(limited.find("\"id\":4"), std::string::npos);
}

TEST_F(SloServerTest, RequestzQueryParamEdgeCases) {
  for (uint64_t i = 0; i < 6; ++i) {
    EventLog::Get().Append(ServeEvent(i, "encode", "ok"));
  }

  // Duplicate keys: last value wins (the ParseQuery contract) — limit=2.
  const std::string dup = Get("/requestz?limit=5&limit=2&format=json");
  EXPECT_EQ(CountOccurrences(dup, "\"id\":"), 2u);

  // Explicit empty filter value is "no filter", not "match empty string".
  const std::string empty_filter = Get("/requestz?status=&format=json");
  EXPECT_EQ(CountOccurrences(empty_filter, "\"id\":"), 6u);

  // Out-of-range numerics fall back to the default (100 — all 6 shown).
  EXPECT_EQ(CountOccurrences(Get("/requestz?limit=0&format=json"), "\"id\":"),
            6u);
  EXPECT_EQ(CountOccurrences(Get("/requestz?limit=-3&format=json"), "\"id\":"),
            6u);
  EXPECT_EQ(
      CountOccurrences(Get("/requestz?limit=junk&format=json"), "\"id\":"),
      6u);
  // Above the cap: clamped to 5000, which still shows everything retained.
  EXPECT_EQ(
      CountOccurrences(Get("/requestz?limit=999999999&format=json"), "\"id\":"),
      6u);
}

TEST(QueryParamTest, SizeTClampsAndFallsBack) {
  HttpRequest request;
  EXPECT_EQ(QueryParamSizeT(request, "limit", 100, 5000), 100u);  // Absent.
  request.query["limit"] = "42";
  EXPECT_EQ(QueryParamSizeT(request, "limit", 100, 5000), 42u);
  request.query["limit"] = "999999999";
  EXPECT_EQ(QueryParamSizeT(request, "limit", 100, 5000), 5000u);  // Clamp.
  request.query["limit"] = "0";
  EXPECT_EQ(QueryParamSizeT(request, "limit", 100, 5000), 100u);
  request.query["limit"] = "-7";
  EXPECT_EQ(QueryParamSizeT(request, "limit", 100, 5000), 100u);
  request.query["limit"] = "abc";
  EXPECT_EQ(QueryParamSizeT(request, "limit", 100, 5000), 100u);
  request.query["limit"] = "";
  EXPECT_EQ(QueryParamSizeT(request, "limit", 100, 5000), 100u);
}

TEST(QueryParamTest, StringDistinguishesAbsentFromEmpty) {
  HttpRequest request;
  EXPECT_EQ(QueryParamString(request, "status", "fallback"), "fallback");
  request.query["status"] = "";
  EXPECT_EQ(QueryParamString(request, "status", "fallback"), "");
  request.query["status"] = "ok";
  EXPECT_EQ(QueryParamString(request, "status", "fallback"), "ok");
}

TEST(QueryParamTest, DuplicateKeysKeepLastThroughTheParser) {
  HttpRequest request;
  ASSERT_TRUE(ParseRequestHead(
      "GET /requestz?limit=5&limit=2&status=&status=ok HTTP/1.0\r\n", &request));
  EXPECT_EQ(request.query.at("limit"), "2");
  EXPECT_EQ(request.query.at("status"), "ok");
  EXPECT_EQ(QueryParamSizeT(request, "limit", 100, 5000), 2u);
}

TEST_F(SloServerTest, HealthzFlips503UnderInjectedBurn) {
  // A watchdog target over the global engine: one error against a
  // zero-tolerance availability target burns immediately, and the probe it
  // registered turns /healthz into a 503 — the "deadline pressure flips
  // readiness" acceptance path, driven through the real HTTP plane.
  SloWatchdog watchdog(&SliEngine::Get());
  SloTarget target;
  target.name = "http_burn";
  target.stream = "slo_http";
  target.horizon_s = 10;
  target.min_requests = 1;
  target.min_availability = 0.99;
  const int id = watchdog.AddTarget(target);

  std::string body = Get("/healthz");
  EXPECT_NE(body.find("probe slo.http_burn: ok"), std::string::npos);

  SliEngine::Get().Record("slo_http", SliOutcome::kError, 1.0);
  body = Get("/healthz", 503);
  EXPECT_EQ(body.rfind("status: unhealthy\n", 0), 0u);
  EXPECT_NE(body.find("probe slo.http_burn: FAIL"), std::string::npos);
  EXPECT_NE(body.find("availability"), std::string::npos);

  // The scrape latched the burn (in this local watchdog; /statusz lists the
  // global one's burns).
  const auto burns = watchdog.ActiveBurns();
  ASSERT_EQ(burns.size(), 1u);
  EXPECT_EQ(burns[0].name, "slo.http_burn");

  // Removing the target removes the probe; /healthz recovers.
  watchdog.RemoveTarget(id);
  body = Get("/healthz");
  EXPECT_EQ(body.find("slo.http_burn"), std::string::npos);
}

}  // namespace
}  // namespace server
}  // namespace obs
}  // namespace turl
