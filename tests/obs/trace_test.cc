// Tracer tests: ring overflow semantics (oldest dropped first), seeded
// sampling determinism, span parent/child integrity when requests fan out
// across pool workers, result invariance with tracing on, and the Chrome
// trace JSON export validated by a minimal JSON parser.

#include "obs/trace.h"

#include <chrono>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/model.h"
#include "core/table_encoding.h"
#include "gtest/gtest.h"
#include "rt/bulk.h"
#include "rt/inference_session.h"

namespace turl {
namespace obs {
namespace {

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 150;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

core::TurlConfig SmallConfig() {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

const core::TurlModel& Model() {
  static core::TurlModel* model = new core::TurlModel(
      SmallConfig(), Ctx().vocab.size(), Ctx().entity_vocab.size(),
      /*seed=*/11);
  return *model;
}

const std::vector<core::EncodedTable>& Tables() {
  static std::vector<core::EncodedTable>* tables = [] {
    auto* out = new std::vector<core::EncodedTable>;
    const text::WordPieceTokenizer tokenizer = Ctx().MakeTokenizer();
    for (size_t idx : Ctx().corpus.valid) {
      core::EncodedTable t = core::EncodeTable(
          Ctx().corpus.tables[idx], tokenizer, Ctx().entity_vocab);
      if (t.total() > 0) out->push_back(std::move(t));
      if (out->size() >= 8) break;
    }
    return out;
  }();
  return *tables;
}

/// Enables tracing with keep-everything sampling and a clean collector for
/// the test body; restores disabled tracing on scope exit.
class TracingOn {
 public:
  TracingOn() {
    Tracer::SetEnabled(true);
    Tracer::Get().SetSampler(/*period=*/1, /*seed=*/0);
    Tracer::Get().collector().Reset();
  }
  ~TracingOn() { Tracer::SetEnabled(false); }
};

TEST(TraceRingTest, OverflowDropsOldestFirst) {
  TraceRing ring(/*capacity=*/8, /*tid=*/0);
  for (uint64_t i = 0; i < 20; ++i) {
    TraceEvent e;
    e.name = "e";
    e.trace_id = 1;
    e.span_id = i + 1;
    ring.Push(e);
  }
  std::vector<TraceEvent> out;
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].span_id, 20 - 8 + i + 1) << "retain the newest, in order";
  }
  EXPECT_EQ(ring.dropped(), 12u);
}

TEST(TracerTest, SeededSamplingIsDeterministic) {
  TracingOn tracing;
  Tracer& tracer = Tracer::Get();

  const auto draw = [&](uint64_t period, uint64_t seed) {
    tracer.SetSampler(period, seed);
    std::vector<bool> kept;
    for (int i = 0; i < 256; ++i) kept.push_back(tracer.StartTrace().traced());
    return kept;
  };
  const std::vector<bool> first = draw(4, 1234);
  const std::vector<bool> second = draw(4, 1234);
  EXPECT_EQ(first, second) << "same (seed, seq) must replay the same set";

  int kept = 0;
  for (bool b : first) kept += b;
  EXPECT_GT(kept, 0) << "a 1/4 sampler keeps some of 256 traces";
  EXPECT_LT(kept, 256) << "a 1/4 sampler drops some of 256 traces";

  EXPECT_NE(first, draw(4, 99)) << "the sampled set must depend on the seed";
  tracer.SetSampler(1, 0);
}

TEST(TracerTest, DisabledSpansAreUntracedAndRecordNothing) {
  Tracer::SetEnabled(false);
  const size_t before = Tracer::Get().collector().Snapshot().size();
  {
    TraceSpan root(kNewTrace, "off.request");
    EXPECT_FALSE(root.traced());
    TURL_TRACE_SCOPE("off.child");
    EXPECT_FALSE(CurrentTraceContext().traced());
  }
  EXPECT_EQ(Tracer::Get().collector().Snapshot().size(), before);
}

TEST(TracerTest, ParseSamplePeriodForms) {
  EXPECT_EQ(ParseSamplePeriod(nullptr), 1u);
  EXPECT_EQ(ParseSamplePeriod(""), 1u);
  EXPECT_EQ(ParseSamplePeriod("1/16"), 16u);
  EXPECT_EQ(ParseSamplePeriod("8"), 8u);
  EXPECT_EQ(ParseSamplePeriod("0"), 1u);
  EXPECT_EQ(ParseSamplePeriod("junk"), 1u);
}

TEST(TracerTest, ParentChildIntegrityAcrossWorkers) {
  TracingOn tracing;
  rt::InferenceSession session(Model(), rt::SessionOptions{.num_threads = 4});
  const auto& tables = Tables();
  const size_t n = 12;
  rt::BulkRun<int>(
      session, n,
      [&](size_t i) { return tables[i % tables.size()]; },
      [&](size_t, const core::EncodedTable&, const nn::Tensor& h) {
        return static_cast<int>(h.numel());
      });

  const std::vector<TraceEvent> events =
      Tracer::Get().collector().Snapshot();
  std::map<uint64_t, std::vector<TraceEvent>> by_trace;
  for (const TraceEvent& e : events) by_trace[e.trace_id].push_back(e);
  EXPECT_EQ(by_trace.size(), n) << "one trace per BulkRun instance";

  for (const auto& [trace_id, trace_events] : by_trace) {
    std::set<uint64_t> ids;
    for (const TraceEvent& e : trace_events) ids.insert(e.span_id);
    std::set<std::string> names;
    int roots = 0;
    for (const TraceEvent& e : trace_events) {
      names.insert(e.name);
      if (e.parent_id == 0) {
        ++roots;
        EXPECT_STREQ(e.name, "rt.request");
      } else {
        EXPECT_TRUE(ids.count(e.parent_id))
            << e.name << " parents a span missing from trace " << trace_id;
      }
    }
    EXPECT_EQ(roots, 1) << "exactly one root per trace";
    for (const char* want :
         {"task.encode_input", "rt.queue_wait", "rt.batch_assembly",
          "rt.encode"}) {
      EXPECT_TRUE(names.count(want))
          << "trace " << trace_id << " is missing stage " << want;
    }
  }
}

TEST(TracerTest, TracingDoesNotPerturbResults) {
  const core::EncodedTable& table = Tables()[0];
  rt::InferenceSession session(Model(), rt::SessionOptions{.num_threads = 1});
  const std::vector<float> off = session.Encode(table).ToVector();
  std::vector<float> on;
  {
    TracingOn tracing;
    TraceSpan root(kNewTrace, "rt.request");
    on = session.Encode(table).ToVector();
  }
  EXPECT_EQ(off, on) << "tracing must be bit-invisible to the forward";
}

/// Minimal recursive-descent JSON syntax checker — enough to prove the
/// Chrome export is well-formed without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text)
      : p_(text.c_str()), end_(text.c_str() + text.size()) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return p_ == end_;
  }

 private:
  void SkipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      ++p_;
    }
  }
  bool Literal(const char* s) {
    const size_t len = std::strlen(s);
    if (size_t(end_ - p_) < len || std::strncmp(p_, s, len) != 0) return false;
    p_ += len;
    return true;
  }
  bool String() {
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return false;
      }
      ++p_;
    }
    if (p_ >= end_) return false;
    ++p_;  // Closing quote.
    return true;
  }
  bool Number() {
    const char* start = p_;
    if (p_ < end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ < end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                         *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                         *p_ == '+')) {
      ++p_;
    }
    return p_ > start;
  }
  bool Value() {
    SkipWs();
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{': {
        ++p_;
        SkipWs();
        if (p_ < end_ && *p_ == '}') return ++p_, true;
        while (true) {
          SkipWs();
          if (!String()) return false;
          SkipWs();
          if (p_ >= end_ || *p_ != ':') return false;
          ++p_;
          if (!Value()) return false;
          SkipWs();
          if (p_ < end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          break;
        }
        if (p_ >= end_ || *p_ != '}') return false;
        ++p_;
        return true;
      }
      case '[': {
        ++p_;
        SkipWs();
        if (p_ < end_ && *p_ == ']') return ++p_, true;
        while (true) {
          if (!Value()) return false;
          SkipWs();
          if (p_ < end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          break;
        }
        if (p_ >= end_ || *p_ != ']') return false;
        ++p_;
        return true;
      }
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const char* p_;
  const char* end_;
};

TEST(TraceExportTest, ChromeJsonIsWellFormed) {
  TracingOn tracing;
  {
    TraceSpan root(kNewTrace, "export.request");
    root.Annotate("head", "cell_filling");
    root.Annotate("batch", int64_t(17));
    TURL_TRACE_SCOPE("export.stage");
  }
  const std::string json = ChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("export.request"), std::string::npos);
  EXPECT_NE(json.find("export.stage"), std::string::npos);
  EXPECT_NE(json.find("cell_filling"), std::string::npos);

  const std::string report = SlowTraceReport(3);
  EXPECT_NE(report.find("export.request"), std::string::npos) << report;
  EXPECT_NE(report.find("export.stage"), std::string::npos) << report;
}

// Records a complete trace after the fact: a root span (parent 0) of
// `total_us` microseconds under trace id `id`, with one child stage
// covering the first half.
void RecordTrace(uint64_t id, const char* root_name, int64_t total_us) {
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + std::chrono::microseconds(total_us);
  Tracer& tracer = Tracer::Get();
  tracer.RecordManual(root_name, TraceContext{id, 0}, start, end);
  // Children parent under the root's span id; any nonzero span id works for
  // the report, which only distinguishes parent==0 from parent!=0.
  tracer.RecordManual("stage.encode", TraceContext{id, 1}, start,
                      start + std::chrono::microseconds(total_us / 2));
}

TEST(SlowTraceReportTest, EmptyRingReportsZeroTraces) {
  TracingOn tracing;
  const std::string report = SlowTraceReport(10);
  EXPECT_NE(report.find("slowest 0 of 0 traced requests"), std::string::npos)
      << report;
  // Header only: the column line follows, then nothing.
  EXPECT_EQ(report.find("stage.encode"), std::string::npos);
}

TEST(SlowTraceReportTest, SingleSpanReport) {
  TracingOn tracing;
  RecordTrace(/*id=*/7, "single.request", /*total_us=*/5000);
  const std::string report = SlowTraceReport(10);
  EXPECT_NE(report.find("slowest 1 of 1 traced requests"), std::string::npos)
      << report;
  EXPECT_NE(report.find("single.request"), std::string::npos);
  // 5000us root, 2500us child: both rendered in ms.
  EXPECT_NE(report.find("5.000"), std::string::npos) << report;
  EXPECT_NE(report.find("stage.encode 2.500"), std::string::npos) << report;
}

TEST(SlowTraceReportTest, TruncatesToSlowestN) {
  TracingOn tracing;
  // 15 traces with distinct durations 1ms..15ms; a 10-row report must keep
  // the slowest ten (6ms..15ms) and drop the fastest five.
  for (uint64_t i = 1; i <= 15; ++i) {
    RecordTrace(i, "ranked.request", int64_t(i) * 1000);
  }
  const std::string report = SlowTraceReport(10);
  EXPECT_NE(report.find("slowest 10 of 15 traced requests"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("15.000"), std::string::npos) << report;  // Slowest.
  // Rows are keyed by trace id in the first column: ids 6..15 survive, ids
  // 1..5 (the fastest) are truncated away.
  for (uint64_t id = 6; id <= 15; ++id) {
    EXPECT_NE(report.find("\n" + std::to_string(id) + " "), std::string::npos)
        << "missing trace " << id << "\n" << report;
  }
  for (uint64_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(report.find("\n" + std::to_string(id) + " "), std::string::npos)
        << "trace " << id << " should be truncated\n" << report;
  }
}

TEST(SlowTraceReportTest, ChildStagesSumByName) {
  TracingOn tracing;
  const auto start = std::chrono::steady_clock::now();
  Tracer& tracer = Tracer::Get();
  tracer.RecordManual("summed.request", TraceContext{21, 0}, start,
                      start + std::chrono::microseconds(9000));
  // Two spans of the same stage name under one trace fold into one summed
  // column; a differently named stage stays separate.
  tracer.RecordManual("stage.a", TraceContext{21, 1}, start,
                      start + std::chrono::microseconds(1000));
  tracer.RecordManual("stage.a", TraceContext{21, 1}, start,
                      start + std::chrono::microseconds(2000));
  tracer.RecordManual("stage.b", TraceContext{21, 1}, start,
                      start + std::chrono::microseconds(4000));
  const std::string report = SlowTraceReport(10);
  EXPECT_NE(report.find("stage.a 3.000"), std::string::npos) << report;
  EXPECT_NE(report.find("stage.b 4.000"), std::string::npos) << report;
}

}  // namespace
}  // namespace obs
}  // namespace turl
