// Wide-event log unit tests: JSON shape, per-thread seqlock rings
// (ordering, overwrite, dropped accounting), the process-wide EventLog
// aggregation (multi-thread producers vs a concurrent snapshotter — the
// TSan target), the enable toggle, and the JSONL export.

#include "obs/eventlog.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace turl {
namespace obs {
namespace {

WideEvent MakeEvent(uint64_t id, double end_ms) {
  WideEvent event;
  event.origin = "serve";
  event.task = "encode";
  event.status = "ok";
  event.request_id = id;
  event.trace_id = 0x1000 + id;
  event.replica = 1;
  event.bytes_in = 100;
  event.bytes_out = 200;
  event.end_ms = end_ms;
  event.queue_wait_us = 5.0;
  event.assembly_us = 1.0;
  event.encode_us = 900.0;
  event.reply_us = 3.0;
  event.total_us = 1000.0;
  event.batch_size = 4;
  event.deadline_budget_ms = 50.0;
  return event;
}

TEST(WideEventTest, JsonLineCarriesEveryField) {
  const std::string line = ToJsonLine(MakeEvent(7, 123.5));
  EXPECT_NE(line.find("\"origin\":\"serve\""), std::string::npos);
  EXPECT_NE(line.find("\"task\":\"encode\""), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(line.find("\"id\":7"), std::string::npos);
  EXPECT_NE(line.find("\"trace\":\"4103\""), std::string::npos);  // 0x1007.
  EXPECT_NE(line.find("\"replica\":1"), std::string::npos);
  EXPECT_NE(line.find("\"batch_size\":4"), std::string::npos);
  EXPECT_NE(line.find("\"bytes_in\":100"), std::string::npos);
  EXPECT_NE(line.find("\"bytes_out\":200"), std::string::npos);
  EXPECT_NE(line.find("\"deadline_budget_ms\":50"), std::string::npos);
  EXPECT_NE(line.find("\"queue_wait_us\":5"), std::string::npos);
  EXPECT_NE(line.find("\"encode_us\":900"), std::string::npos);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);  // Single line.
}

TEST(WideEventTest, NullStringsSerializeAsEmpty) {
  WideEvent event;  // origin/task/status all null.
  const std::string line = ToJsonLine(event);
  EXPECT_NE(line.find("\"origin\":\"\""), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"\""), std::string::npos);
}

TEST(EventRingTest, RetainsInOrderAndOverwritesOldest) {
  EventRing ring(4, /*tid=*/0);
  for (uint64_t i = 0; i < 3; ++i) ring.Push(MakeEvent(i, double(i)));
  std::vector<WideEvent> out;
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) EXPECT_EQ(out[i].request_id, i);
  EXPECT_EQ(ring.dropped(), 0u);

  // Push past capacity: the oldest are overwritten, dropped() counts them.
  for (uint64_t i = 3; i < 10; ++i) ring.Push(MakeEvent(i, double(i)));
  out.clear();
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front().request_id, 6u);
  EXPECT_EQ(out.back().request_id, 9u);
  EXPECT_EQ(ring.dropped(), 6u);

  ring.Reset();
  out.clear();
  ring.Snapshot(&out);
  EXPECT_TRUE(out.empty());
}

TEST(EventRingTest, MinimumCapacityIsTwo) {
  EventRing ring(0, /*tid=*/0);
  EXPECT_GE(ring.capacity(), 2u);
}

TEST(EventRingTest, ConcurrentSnapshotsNeverTearOrCrash) {
  // One producer hammers the ring while readers snapshot: every event a
  // reader sees must be internally consistent (id and trace stamped from
  // the same logical event). Run under TSan via `ctest -L slo`.
  EventRing ring(64, /*tid=*/0);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ring.Push(MakeEvent(i, double(i)));
      ++i;
    }
  });
  for (int reader = 0; reader < 4; ++reader) {
    for (int iter = 0; iter < 200; ++iter) {
      std::vector<WideEvent> out;
      ring.Snapshot(&out);
      for (const WideEvent& e : out) {
        EXPECT_EQ(e.trace_id, 0x1000 + e.request_id);
      }
    }
  }
  stop.store(true, std::memory_order_release);
  producer.join();
}

TEST(EventLogTest, AppendAggregatesAcrossThreadsSortedByEndMs) {
  EventLog& log = EventLog::Get();
  log.Reset();
  EventLog::SetEnabled(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log, t] {
      for (uint64_t i = 0; i < 50; ++i) {
        log.Append(MakeEvent(uint64_t(t) * 1000 + i, double(i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<WideEvent> all = log.Snapshot();
  EXPECT_EQ(all.size(), 200u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].end_ms, all[i].end_ms);
  }
  // last_n keeps the newest.
  const std::vector<WideEvent> tail = log.Snapshot(10);
  ASSERT_EQ(tail.size(), 10u);
  EXPECT_GE(tail.front().end_ms, 45.0);
  log.Reset();
}

TEST(EventLogTest, DisabledAppendIsDropped) {
  EventLog& log = EventLog::Get();
  log.Reset();
  EventLog::SetEnabled(false);
  log.Append(MakeEvent(1, 1.0));
  EXPECT_TRUE(log.Snapshot().empty());
  EventLog::SetEnabled(true);
  log.Append(MakeEvent(2, 2.0));
  EXPECT_EQ(log.Snapshot().size(), 1u);
  log.Reset();
}

TEST(EventLogTest, JsonlExportRoundTrips) {
  EventLog& log = EventLog::Get();
  log.Reset();
  EventLog::SetEnabled(true);
  for (uint64_t i = 0; i < 5; ++i) log.Append(MakeEvent(i, double(i)));

  const std::string jsonl = log.ToJsonl();
  size_t lines = 0;
  std::istringstream stream(jsonl);
  for (std::string line; std::getline(stream, line);) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 5u);

  const std::string path = ::testing::TempDir() + "eventlog_test.jsonl";
  ASSERT_TRUE(log.WriteJsonl(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream back;
  back << in.rdbuf();
  EXPECT_EQ(back.str(), jsonl);
  std::remove(path.c_str());
  log.Reset();
}

TEST(EventLogTest, WriteJsonlFailsCleanlyOnBadPath) {
  EXPECT_FALSE(EventLog::Get().WriteJsonl("/nonexistent-dir/x/y.jsonl"));
}

}  // namespace
}  // namespace obs
}  // namespace turl
