#include "obs/metrics.h"

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace turl {
namespace obs {
namespace {

TEST(CounterTest, IncValueReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Inc();
  c.Inc(5);
  EXPECT_EQ(c.Value(), 6);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.Value(), -1.25);
  g.Reset();
  EXPECT_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, CountSumMinMaxMean) {
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 55.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 55.5 / 3.0);
}

TEST(HistogramTest, BucketCountsIncludeOverflow) {
  Histogram h({1.0, 10.0});
  h.Observe(0.5);   // bucket 0
  h.Observe(2.0);   // bucket 1
  h.Observe(999.0); // overflow
  std::vector<int64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
}

TEST(HistogramTest, PercentilesAreOrderedAndClamped) {
  Histogram h(Histogram::DefaultLatencyBucketsMs());
  for (int i = 1; i <= 100; ++i) h.Observe(double(i));
  const double p50 = h.Percentile(0.50);
  const double p95 = h.Percentile(0.95);
  EXPECT_LE(p50, p95);
  // Interpolated estimates stay within the observed range...
  EXPECT_GE(p50, h.min());
  EXPECT_LE(h.Percentile(1.0), h.max());
  // ...and land in the right neighborhood for a uniform 1..100 sample
  // (bucket bounds are powers of two, so estimates are coarse).
  EXPECT_GT(p50, 20.0);
  EXPECT_LT(p50, 80.0);
  EXPECT_GT(p95, p50);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h({1.0});
  h.Observe(0.5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.Percentile(0.9), 0.0);
}

TEST(RegistryTest, PointersAreStablePerName) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("y"), a);
  Gauge* g = reg.GetGauge("x.gauge");
  EXPECT_EQ(reg.GetGauge("x.gauge"), g);
  Histogram* h = reg.GetHistogram("x.hist");
  EXPECT_EQ(reg.GetHistogram("x.hist"), h);
}

TEST(RegistryTest, ResetZeroesButKeepsPointers) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  Gauge* g = reg.GetGauge("g");
  Histogram* h = reg.GetHistogram("h");
  c->Inc(7);
  g->Set(2.0);
  h->Observe(1.0);
  reg.Reset();
  EXPECT_EQ(reg.GetCounter("c"), c);
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->count(), 0);
}

TEST(RegistryTest, ConcurrentIncrementsFromFourThreads) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter* c = reg.GetCounter("shared.counter");
      Histogram* h = reg.GetHistogram("shared.hist");
      for (int i = 0; i < kIters; ++i) {
        c->Inc();
        h->Observe(double(i % 10));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("shared.counter")->Value(), kThreads * kIters);
  EXPECT_EQ(reg.GetHistogram("shared.hist")->count(), kThreads * kIters);
}

TEST(RegistryTest, JsonRoundTripContainsAllMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("steps")->Inc(3);
  reg.GetGauge("loss")->Set(1.5);
  reg.GetHistogram("lat")->Observe(2.0);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"steps\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"loss\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  // Deterministic: same state serializes identically.
  EXPECT_EQ(json, reg.ToJson());
  // The human-readable table mentions every metric name.
  const std::string table = reg.ToTable();
  EXPECT_NE(table.find("steps"), std::string::npos);
  EXPECT_NE(table.find("loss"), std::string::npos);
  EXPECT_NE(table.find("lat"), std::string::npos);
}

TEST(JsonHelpersTest, EscapeAndDouble) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonDouble(std::nan("")), "null");
  EXPECT_EQ(JsonDouble(INFINITY), "null");
  EXPECT_EQ(JsonDouble(2.0), "2");
  EXPECT_EQ(JsonDouble(0.5), "0.5");
}

TEST(RegistryTest, JsonAndTableIncludeP99) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lat", {1.0, 10.0, 100.0});
  for (int i = 1; i <= 100; ++i) h->Observe(double(i));
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(reg.ToTable().find("p99"), std::string::npos);
}

TEST(RegistryTest, PrometheusTextExposition) {
  MetricsRegistry reg;
  reg.GetCounter("rt.encodes")->Inc(3);
  reg.GetGauge("train.grad_norm")->Set(1.5);
  Histogram* h = reg.GetHistogram("lat.ms", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);
  const std::string text = reg.ToPrometheusText();
  // Names are prefixed and sanitized for the exposition format.
  EXPECT_NE(text.find("# TYPE turl_rt_encodes counter"), std::string::npos);
  EXPECT_NE(text.find("turl_rt_encodes 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE turl_train_grad_norm gauge"),
            std::string::npos);
  EXPECT_NE(text.find("turl_train_grad_norm 1.5"), std::string::npos);
  // Histogram buckets are cumulative and end at +Inf.
  EXPECT_NE(text.find("# TYPE turl_lat_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("turl_lat_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("turl_lat_ms_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("turl_lat_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("turl_lat_ms_sum 55.5"), std::string::npos);
  EXPECT_NE(text.find("turl_lat_ms_count 3"), std::string::npos);
}

TEST(HistogramTest, DefaultLatencyBucketsAreAscending) {
  std::vector<double> bounds = Histogram::DefaultLatencyBucketsMs();
  ASSERT_GT(bounds.size(), 10u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_LE(bounds.front(), 1e-3);
  EXPECT_GE(bounds.back(), 1e5);
}

}  // namespace
}  // namespace obs
}  // namespace turl
