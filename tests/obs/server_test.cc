// Socket-level pinning of the observability server: lifecycle, the standard
// endpoint set, wire-format edge cases (partial reads, HEAD, garbage),
// backpressure shedding, and both halves of the shutdown contract (graceful
// drain, hard deadline). Everything runs against a real ObsServer on an
// ephemeral loopback port — no mocked sockets — so this suite is the one to
// run under -DTURL_SANITIZE=thread (label obs_http).

#include "obs/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/server/handlers.h"
#include "obs/server/http.h"
#include "obs/server/process_stats.h"

namespace turl {
namespace obs {
namespace server {
namespace {

using namespace std::chrono_literals;

/// Connects and writes `request` (optionally one byte at a time), then reads
/// the raw response to EOF. Empty string on connect failure.
std::string RawRequest(int port, const std::string& request,
                       bool byte_by_byte = false) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  if (byte_by_byte) {
    for (char c : request) {
      if (::send(fd, &c, 1, MSG_NOSIGNAL) != 1) break;
      std::this_thread::sleep_for(1ms);
    }
  } else {
    WriteAll(fd, request.data(), request.size());
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(HttpParseTest, StartLineQueryAndHeaders) {
  HttpRequest r;
  ASSERT_TRUE(ParseRequestHead(
      "GET /tracez?slow=5&format=json&flag HTTP/1.0\r\n"
      "Host: localhost\r\n"
      "X-Custom:  spaced value \r\n",
      &r));
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.path, "/tracez");
  EXPECT_EQ(r.version, "HTTP/1.0");
  EXPECT_EQ(r.query.at("slow"), "5");
  EXPECT_EQ(r.query.at("format"), "json");
  EXPECT_EQ(r.query.at("flag"), "");
  ASSERT_EQ(r.headers.size(), 2u);
  EXPECT_EQ(r.headers[0].first, "host");
  EXPECT_EQ(r.headers[1].first, "x-custom");
  EXPECT_EQ(r.headers[1].second, "spaced value");
}

TEST(HttpParseTest, RejectsMalformedHeads) {
  HttpRequest r;
  EXPECT_FALSE(ParseRequestHead("", &r));
  EXPECT_FALSE(ParseRequestHead("GARBAGE\r\n", &r));
  EXPECT_FALSE(ParseRequestHead("GET /\r\n", &r));  // Two tokens.
  EXPECT_FALSE(ParseRequestHead("GET / HTTP/1.0 extra\r\n", &r));
  EXPECT_FALSE(ParseRequestHead("GET nopath HTTP/1.0\r\n", &r));
  EXPECT_FALSE(ParseRequestHead("GET / FTP/1.0\r\n", &r));
  EXPECT_FALSE(
      ParseRequestHead("GET / HTTP/1.0\r\nno-colon-header\r\n", &r));
}

TEST(HttpParseTest, SerializeFramesTheBody) {
  HttpResponse resp;
  resp.status = 404;
  resp.body = "gone\n";
  const std::string wire = SerializeResponse(resp);
  EXPECT_NE(wire.find("HTTP/1.0 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 5), "gone\n");
}

TEST(ObsServerTest, StartStopLifecycle) {
  ObsServer server;  // Port 0: ephemeral.
  server.Handle("/ping", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "pong\n";
    return r;
  });
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  EXPECT_FALSE(server.Start().ok());  // Already running.

  HttpClientResponse resp;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/ping", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "pong\n");

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // Idempotent.

  // Start() works again after Stop(); the new ephemeral port may differ.
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/ping", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  server.Stop();
}

TEST(ObsServerTest, StandardEndpointsAnswerWhileWorkIsInFlight) {
  // Touch one of every metric kind so every exposition branch is exercised.
  MetricsRegistry::Get().GetCounter("server_test.counter")->Inc(3);
  MetricsRegistry::Get().GetGauge("server_test.gauge")->Set(1.5);
  MetricsRegistry::Get().GetHistogram("server_test.hist")->Observe(2.0);

  ObsServer server;
  RegisterStandardHandlers(&server);
  ASSERT_TRUE(server.Start().ok());

  // Background "work": keep the registry hot while every endpoint is hit.
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    Counter* c = MetricsRegistry::Get().GetCounter("server_test.counter");
    Histogram* h = MetricsRegistry::Get().GetHistogram("server_test.hist");
    while (!stop.load()) {
      c->Inc();
      h->Observe(1.0);
    }
  });

  HttpClientResponse resp;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/metrics", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.body.find("# TYPE turl_server_test_counter counter"),
            std::string::npos);
  EXPECT_NE(resp.body.find("turl_server_test_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(resp.body.find("turl_obs_process_rss_bytes"), std::string::npos);

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/healthz", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.rfind("status: ok\n", 0), 0u);
  EXPECT_NE(resp.body.find("probe live: ok"), std::string::npos);

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/varz", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, "application/json");
  EXPECT_EQ(resp.body.front(), '{');
  EXPECT_NE(resp.body.find("\"server_test.gauge\""), std::string::npos);

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/tracez", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.rfind("tracing: ", 0), 0u);

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(),
                      "/tracez?format=json&limit=4", &resp)
                  .ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, "application/json");
  EXPECT_NE(resp.body.find("\"traceEvents\""), std::string::npos);

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/profilez", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.rfind("profiling: ", 0), 0u);

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/profilez?format=json",
                      &resp)
                  .ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.rfind("{\"spans\":", 0), 0u);

  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("/metrics"), std::string::npos);
  EXPECT_NE(resp.body.find("/tracez"), std::string::npos);

  stop.store(true);
  mutator.join();
  server.Stop();
}

TEST(ObsServerTest, ErrorResponses) {
  ObsServer server;
  RegisterStandardHandlers(&server);
  ASSERT_TRUE(server.Start().ok());

  // Unknown path: 404 listing the real endpoints.
  HttpClientResponse resp;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/nope", &resp).ok());
  EXPECT_EQ(resp.status, 404);
  EXPECT_NE(resp.body.find("/metrics"), std::string::npos);

  // Non-GET: 405.
  const std::string post =
      RawRequest(server.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(post.rfind("HTTP/1.0 405 ", 0), 0u);

  // Garbage start line: 400.
  const std::string bad = RawRequest(server.port(), "GARBAGE\r\n\r\n");
  EXPECT_EQ(bad.rfind("HTTP/1.0 400 ", 0), 0u);

  server.Stop();
}

TEST(ObsServerTest, PartialReadsStillParse) {
  ObsServer server;
  RegisterStandardHandlers(&server);
  ASSERT_TRUE(server.Start().ok());
  // A request trickling in one byte at a time exercises the short-read loop.
  const std::string raw = RawRequest(
      server.port(), "GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n",
      /*byte_by_byte=*/true);
  EXPECT_EQ(raw.rfind("HTTP/1.0 200 ", 0), 0u);
  EXPECT_NE(raw.find("status: ok"), std::string::npos);
  server.Stop();
}

TEST(ObsServerTest, HeadReturnsHeadersOnly) {
  ObsServer server;
  RegisterStandardHandlers(&server);
  ASSERT_TRUE(server.Start().ok());
  const std::string raw =
      RawRequest(server.port(), "HEAD /healthz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(raw.rfind("HTTP/1.0 200 ", 0), 0u);
  // Content-Length advertises the GET body, but no body bytes follow.
  const size_t head_end = raw.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  EXPECT_EQ(raw.size(), head_end + 4);
  EXPECT_NE(raw.find("Content-Length: "), std::string::npos);
  EXPECT_EQ(raw.find("Content-Length: 0\r\n"), std::string::npos);
  server.Stop();
}

TEST(ObsServerTest, FailingReadinessProbeFlips503) {
  ObsServer server;
  RegisterStandardHandlers(&server);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> ready{true};
  ScopedReadinessProbe probe("flaky", [&ready](std::string* detail) {
    *detail = "toggled by test";
    return ready.load();
  });

  HttpClientResponse resp;
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/healthz", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("probe flaky: ok (toggled by test)"),
            std::string::npos);

  ready.store(false);
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/healthz", &resp).ok());
  EXPECT_EQ(resp.status, 503);
  EXPECT_EQ(resp.body.rfind("status: unhealthy\n", 0), 0u);
  EXPECT_NE(resp.body.find("probe flaky: FAIL"), std::string::npos);

  ready.store(true);
  ASSERT_TRUE(HttpGet("127.0.0.1", server.port(), "/healthz", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  server.Stop();
}

TEST(ObsServerTest, ShedsWith503WhenQueueIsFull) {
  // One worker, one queue slot: request 1 pins the worker, request 2 fills
  // the queue, request 3 must be shed with an immediate 503.
  ObsServer::Options options;
  options.num_workers = 1;
  options.max_queued = 1;
  ObsServer server(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  server.Handle("/slow", [&](const HttpRequest&) {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    HttpResponse r;
    r.body = "done\n";
    return r;
  });
  ASSERT_TRUE(server.Start().ok());

  const int64_t shed_before =
      MetricsRegistry::Get().GetCounter("obs.server.shed")->Value();

  auto get_slow = [&server] {
    HttpClientResponse resp;
    const Status s = HttpGet("127.0.0.1", server.port(), "/slow", &resp,
                             /*timeout_ms=*/10000);
    return s.ok() ? resp.status : -1;
  };
  auto first = std::async(std::launch::async, get_slow);
  while (entered.load() == 0) std::this_thread::sleep_for(1ms);
  auto second = std::async(std::launch::async, get_slow);
  // Wait until the second connection is parked in the queue; with the single
  // worker pinned it can only sit there.
  std::this_thread::sleep_for(200ms);

  HttpClientResponse shed;
  const Status shed_status = HttpGet("127.0.0.1", server.port(), "/slow",
                                     &shed);
  // Open the gate before any assertion: a failing assertion must not leave
  // the async clients joined against a forever-blocked handler.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  EXPECT_TRUE(shed_status.ok()) << shed_status.ToString();
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.body.find("overloaded"), std::string::npos);
  EXPECT_GT(MetricsRegistry::Get().GetCounter("obs.server.shed")->Value(),
            shed_before);
  EXPECT_EQ(first.get(), 200);
  EXPECT_EQ(second.get(), 200);
  server.Stop();
}

TEST(ObsServerTest, StopDrainsInFlightResponses) {
  ObsServer server;
  std::atomic<int> entered{0};
  server.Handle("/slow", [&](const HttpRequest&) {
    entered.fetch_add(1);
    std::this_thread::sleep_for(300ms);
    HttpResponse r;
    r.body = "drained\n";
    return r;
  });
  ASSERT_TRUE(server.Start().ok());

  auto pending = std::async(std::launch::async, [&server] {
    HttpClientResponse resp;
    const Status s = HttpGet("127.0.0.1", server.port(), "/slow", &resp);
    return s.ok() ? resp.body : std::string();
  });
  while (entered.load() == 0) std::this_thread::sleep_for(1ms);
  // Stop while the response is in flight: graceful drain must let it finish.
  server.Stop();
  EXPECT_EQ(pending.get(), "drained\n");
}

TEST(ObsServerTest, HardDeadlineBoundsStopAgainstSilentClients) {
  // A client that connects and never sends pins a worker in recv() until the
  // read timeout; Stop() must not wait that long once the drain deadline
  // lapses — the hard stop shuts the socket down under the worker.
  ObsServer::Options options;
  options.num_workers = 1;
  options.read_timeout_ms = 30000;
  options.drain_deadline_ms = 200;
  ObsServer server(options);
  RegisterStandardHandlers(&server);
  ASSERT_TRUE(server.Start().ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Let the worker pick the connection up and block reading.
  std::this_thread::sleep_for(100ms);

  const auto start = std::chrono::steady_clock::now();
  server.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Drain deadline 200ms plus scheduling slack — far below the 30s read
  // timeout a graceful-only stop would eat.
  EXPECT_LT(elapsed, 5s);
  ::close(fd);
}

TEST(ObsServerTest, ConcurrentScrapesUnderRegistryChurn) {
  ObsServer server;
  RegisterStandardHandlers(&server);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    Counter* c = MetricsRegistry::Get().GetCounter("server_test.churn");
    Histogram* h = MetricsRegistry::Get().GetHistogram("server_test.churn_ms");
    int i = 0;
    while (!stop.load()) {
      c->Inc();
      h->Observe(double(i++ % 100));
      MetricsRegistry::Get().GetGauge("server_test.g" + std::to_string(i % 8));
    }
  });

  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  const std::vector<std::string> targets = {"/metrics", "/varz", "/healthz"};
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        HttpClientResponse resp;
        const Status s = HttpGet("127.0.0.1", server.port(),
                                 targets[size_t(t) % targets.size()], &resp);
        if (!s.ok() || resp.status != 200 || resp.body.empty()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& s : scrapers) s.join();
  stop.store(true);
  mutator.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

TEST(ProcessStatsTest, SamplesResidentMemory) {
  ProcessStats stats;
  ASSERT_TRUE(SampleProcessStats(&stats));
  EXPECT_GT(stats.rss_bytes, 0);
  EXPECT_GE(stats.peak_rss_bytes, stats.rss_bytes);

  UpdateProcessGauges();
  EXPECT_GT(
      MetricsRegistry::Get().GetGauge("obs.process.rss_bytes")->Value(), 0.0);
  EXPECT_GE(
      MetricsRegistry::Get().GetGauge("obs.process.peak_rss_bytes")->Value(),
      MetricsRegistry::Get().GetGauge("obs.process.rss_bytes")->Value());
}

TEST(StartFromEnvTest, EphemeralPortServesStandardEndpoints) {
  // TURL_OBS_PORT=0: on. StartFromEnv is once-per-process, so this is the
  // only test allowed to exercise it.
  ::setenv("TURL_OBS_PORT", "0", 1);
  ObsServer* server = StartFromEnv();
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(server->running());
  EXPECT_GT(server->port(), 0);
  EXPECT_EQ(StartFromEnv(), server);  // Idempotent.

  HttpClientResponse resp;
  ASSERT_TRUE(HttpGet("127.0.0.1", server->port(), "/healthz", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  // Left running: the atexit hook installed by StartFromEnv stops it.
}

}  // namespace
}  // namespace server
}  // namespace obs
}  // namespace turl
