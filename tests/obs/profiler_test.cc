#include "obs/profiler.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace turl {
namespace obs {
namespace {

void Sleep(double ms) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000)));
}

const SpanStats* Find(const std::vector<SpanStats>& report,
                      const std::string& name) {
  for (const SpanStats& s : report) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

/// Each test starts from a clean, enabled profiler and leaves it disabled.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Get().Reset();
    Profiler::SetEnabled(true);
  }
  void TearDown() override {
    Profiler::SetEnabled(false);
    Profiler::Get().Reset();
  }
};

TEST_F(ProfilerTest, AggregatesByName) {
  for (int i = 0; i < 3; ++i) {
    TURL_PROFILE_SCOPE("test.leaf");
    Sleep(1.0);
  }
  auto report = Profiler::Get().Report();
  const SpanStats* leaf = Find(report, "test.leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, 3);
  EXPECT_GE(leaf->total_ms, 3.0);
  EXPECT_GT(leaf->max_ms, 0.0);
  EXPECT_LE(leaf->p50_ms, leaf->p95_ms);
  // A leaf has no children: all its time is self time.
  EXPECT_NEAR(leaf->self_ms, leaf->total_ms, 1e-9);
}

TEST_F(ProfilerTest, NestedSpansSplitSelfFromChildTime) {
  {
    TURL_PROFILE_SCOPE("test.parent");
    Sleep(2.0);
    {
      TURL_PROFILE_SCOPE("test.child");
      Sleep(4.0);
    }
  }
  auto report = Profiler::Get().Report();
  const SpanStats* parent = Find(report, "test.parent");
  const SpanStats* child = Find(report, "test.child");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  // Parent total covers the child; parent self excludes it.
  EXPECT_GE(parent->total_ms, child->total_ms);
  EXPECT_GE(child->total_ms, 4.0);
  EXPECT_LE(parent->self_ms, parent->total_ms - child->total_ms + 1.0);
  EXPECT_GE(parent->self_ms, 2.0);
}

TEST_F(ProfilerTest, RecursiveSameNameSpansCount) {
  for (int depth = 0; depth < 2; ++depth) {
    TURL_PROFILE_SCOPE("test.outer");
    TURL_PROFILE_SCOPE("test.inner");
    Sleep(0.5);
  }
  auto report = Profiler::Get().Report();
  const SpanStats* outer = Find(report, "test.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2);
}

TEST_F(ProfilerTest, DisabledSpansRecordNothing) {
  Profiler::SetEnabled(false);
  {
    TURL_PROFILE_SCOPE("test.invisible");
    Sleep(1.0);
  }
  EXPECT_EQ(Find(Profiler::Get().Report(), "test.invisible"), nullptr);
}

TEST_F(ProfilerTest, SpanOpenAcrossDisableStillCloses) {
  // A span constructed while enabled must End() safely even if profiling is
  // turned off before the scope exits.
  {
    TURL_PROFILE_SCOPE("test.straddle");
    Profiler::SetEnabled(false);
    Sleep(0.5);
  }
  // Keep the report alive past the Find(): a pointer into the returned
  // temporary would dangle before the assertions read it.
  const std::vector<SpanStats> report = Profiler::Get().Report();
  const SpanStats* s = Find(report, "test.straddle");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 1);
  Profiler::SetEnabled(true);  // Restore for TearDown symmetry.
}

TEST_F(ProfilerTest, ReportSortedByTotalDescending) {
  {
    TURL_PROFILE_SCOPE("test.slow");
    Sleep(5.0);
  }
  {
    TURL_PROFILE_SCOPE("test.fast");
    Sleep(0.5);
  }
  auto report = Profiler::Get().Report();
  ASSERT_GE(report.size(), 2u);
  for (size_t i = 1; i < report.size(); ++i) {
    EXPECT_GE(report[i - 1].total_ms, report[i].total_ms);
  }
}

TEST_F(ProfilerTest, ReportsRenderEverySpanName) {
  {
    TURL_PROFILE_SCOPE("test.render");
  }
  EXPECT_NE(Profiler::Get().ReportTable().find("test.render"),
            std::string::npos);
  const std::string json = Profiler::Get().ReportJson();
  EXPECT_NE(json.find("\"name\":\"test.render\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95_ms\":"), std::string::npos);
}

TEST_F(ProfilerTest, ThreadsAggregateIndependentlyThenMerge) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        TURL_PROFILE_SCOPE("test.mt");
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<SpanStats> report = Profiler::Get().Report();
  const SpanStats* s = Find(report, "test.mt");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 200);
}

}  // namespace
}  // namespace obs
}  // namespace turl
