// Prometheus text-exposition conformance. A small validator checks the
// grammar the format spec pins down — HELP/TYPE comment lines, metric-name
// charset, TYPE-before-samples ordering, label-value escaping, cumulative
// histogram buckets ending at le="+Inf" equal to _count — and the registry's
// ToPrometheusText() must pass it even for hostile metric names and help
// text. Hand-written malformed documents must be rejected, so the validator
// itself is pinned too.

#include "obs/metrics.h"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace turl {
namespace obs {
namespace {

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& name) {
  // Label names allow [a-zA-Z_][a-zA-Z0-9_]* — no colons.
  return ValidName(name) && name.find(':') == std::string::npos;
}

/// Parses `name{labels} value` into its pieces; false on any grammar error.
bool ParseSample(const std::string& line, std::string* name,
                 std::vector<std::pair<std::string, std::string>>* labels,
                 double* value) {
  size_t pos = 0;
  while (pos < line.size() &&
         (std::isalnum(static_cast<unsigned char>(line[pos])) ||
          line[pos] == '_' || line[pos] == ':')) {
    ++pos;
  }
  *name = line.substr(0, pos);
  if (!ValidName(*name)) return false;
  if (pos < line.size() && line[pos] == '{') {
    const size_t close = line.rfind('}');
    if (close == std::string::npos || close < pos) return false;
    std::string body = line.substr(pos + 1, close - pos - 1);
    size_t i = 0;
    while (i < body.size()) {
      const size_t eq = body.find('=', i);
      if (eq == std::string::npos) return false;
      const std::string lname = body.substr(i, eq - i);
      if (!ValidLabelName(lname)) return false;
      if (eq + 1 >= body.size() || body[eq + 1] != '"') return false;
      // Scan the quoted value honoring \\, \" and \n escapes.
      std::string lvalue;
      size_t j = eq + 2;
      bool closed = false;
      while (j < body.size()) {
        if (body[j] == '\\') {
          if (j + 1 >= body.size()) return false;
          const char e = body[j + 1];
          if (e != '\\' && e != '"' && e != 'n') return false;
          lvalue += e;
          j += 2;
        } else if (body[j] == '"') {
          closed = true;
          ++j;
          break;
        } else if (body[j] == '\n') {
          return false;
        } else {
          lvalue += body[j++];
        }
      }
      if (!closed) return false;
      labels->emplace_back(lname, lvalue);
      if (j < body.size()) {
        if (body[j] != ',') return false;
        ++j;
      }
      i = j;
    }
    pos = close + 1;
  }
  if (pos >= line.size() || line[pos] != ' ') return false;
  const std::string value_str = line.substr(pos + 1);
  if (value_str.empty() || value_str.find(' ') != std::string::npos) {
    return false;  // No timestamps in our exposition.
  }
  if (value_str == "+Inf" || value_str == "-Inf" || value_str == "NaN") {
    *value = value_str == "NaN" ? 0.0
             : value_str[0] == '+'
                 ? std::numeric_limits<double>::infinity()
                 : -std::numeric_limits<double>::infinity();
    return true;
  }
  char* end = nullptr;
  *value = std::strtod(value_str.c_str(), &end);
  return end != nullptr && *end == '\0' && end != value_str.c_str();
}

/// The sample's family: histogram series suffixes fold into the base name.
std::string FamilyOf(const std::string& sample_name,
                     const std::map<std::string, std::string>& types) {
  if (types.count(sample_name)) return sample_name;
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s = suffix;
    if (sample_name.size() > s.size() &&
        sample_name.compare(sample_name.size() - s.size(), s.size(), s) ==
            0) {
      const std::string base = sample_name.substr(0, sample_name.size() -
                                                         s.size());
      const auto it = types.find(base);
      if (it != types.end() && it->second == "histogram") return base;
    }
  }
  return sample_name;
}

/// Validates a full exposition document. On failure *error names the first
/// offending line.
bool ValidatePrometheusText(const std::string& text, std::string* error) {
  const auto fail = [error](const std::string& why, const std::string& line) {
    *error = why + ": '" + line + "'";
    return false;
  };
  if (text.empty() || text.back() != '\n') {
    *error = "document must end with a newline";
    return false;
  }
  std::map<std::string, std::string> types;   // family -> type
  std::map<std::string, bool> family_sampled; // family -> any sample seen
  // Histogram bookkeeping: last cumulative bucket value, +Inf seen, counts.
  struct HistState {
    double last_bucket = -1.0;
    bool inf_seen = false;
    double inf_value = 0.0;
    bool count_seen = false;
    double count_value = 0.0;
    bool sum_seen = false;
  };
  std::map<std::string, HistState> hists;

  size_t pos = 0;
  while (pos < text.size()) {
    const size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream in(line);
      std::string hash, kind, name;
      in >> hash >> kind >> name;
      if (kind == "HELP") {
        if (!ValidName(name)) return fail("bad HELP name", line);
        // HELP text: escaped backslashes and newlines only.
        const std::string rest = line.substr(line.find(name) + name.size());
        for (size_t i = 0; i < rest.size(); ++i) {
          if (rest[i] == '\\' &&
              (i + 1 >= rest.size() ||
               (rest[i + 1] != '\\' && rest[i + 1] != 'n'))) {
            return fail("bad HELP escape", line);
          }
          if (rest[i] == '\\') ++i;
        }
      } else if (kind == "TYPE") {
        std::string type;
        in >> type;
        if (!ValidName(name)) return fail("bad TYPE name", line);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail("unknown TYPE", line);
        }
        if (types.count(name)) return fail("duplicate TYPE", line);
        if (family_sampled[name]) return fail("TYPE after samples", line);
        types[name] = type;
      }
      continue;  // Other comments are legal and ignored.
    }
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    double value = 0.0;
    if (!ParseSample(line, &name, &labels, &value)) {
      return fail("malformed sample", line);
    }
    const std::string family = FamilyOf(name, types);
    if (!types.count(family)) return fail("sample before TYPE", line);
    family_sampled[family] = true;
    if (types[family] == "histogram") {
      HistState& h = hists[family];
      if (name == family + "_bucket") {
        std::string le;
        for (const auto& [k, v] : labels) {
          if (k == "le") le = v;
        }
        if (le.empty()) return fail("bucket without le", line);
        if (h.inf_seen) return fail("bucket after +Inf", line);
        if (value < h.last_bucket) {
          return fail("non-cumulative buckets", line);
        }
        h.last_bucket = value;
        if (le == "+Inf") {
          h.inf_seen = true;
          h.inf_value = value;
        }
      } else if (name == family + "_count") {
        h.count_seen = true;
        h.count_value = value;
      } else if (name == family + "_sum") {
        h.sum_seen = true;
      } else {
        return fail("stray histogram series", line);
      }
    }
  }
  for (const auto& [family, h] : hists) {
    if (!h.inf_seen) {
      *error = "histogram " + family + " missing le=\"+Inf\" bucket";
      return false;
    }
    if (!h.count_seen || !h.sum_seen) {
      *error = "histogram " + family + " missing _count/_sum";
      return false;
    }
    if (h.inf_value != h.count_value) {
      *error = "histogram " + family + " le=\"+Inf\" != _count";
      return false;
    }
  }
  *error = "";
  return true;
}

TEST(PrometheusNameTest, SanitizesToLegalCharset) {
  EXPECT_EQ(PrometheusName("rt.scheduler.queue_wait_ms"),
            "turl_rt_scheduler_queue_wait_ms");
  EXPECT_EQ(PrometheusName("weird name/with%junk"),
            "turl_weird_name_with_junk");
  EXPECT_EQ(PrometheusName("keeps:colons"), "turl_keeps:colons");
  EXPECT_TRUE(ValidName(PrometheusName("9starts.with.digit")));
  EXPECT_TRUE(ValidName(PrometheusName("")));  // Bare "turl_".
}

TEST(PrometheusEscapeTest, LabelAndHelpEscaping) {
  EXPECT_EQ(PrometheusLabelEscape("plain"), "plain");
  EXPECT_EQ(PrometheusLabelEscape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(PrometheusHelpEscape("line1\nline2\\x"), "line1\\nline2\\\\x");
}

TEST(PrometheusConformanceTest, RegistryOutputValidates) {
  MetricsRegistry registry;
  registry.GetCounter("pretrain.steps")->Inc(12);
  registry.GetGauge("rt.pool.utilization")->Set(0.75);
  Histogram* h = registry.GetHistogram("rt.scheduler.queue_wait_ms");
  for (int i = 0; i < 50; ++i) h->Observe(double(i));
  registry.SetHelp("pretrain.steps", "Optimizer steps taken");

  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(registry.ToPrometheusText(), &error))
      << error;
}

TEST(PrometheusConformanceTest, HostileNamesAndHelpStillValidate) {
  MetricsRegistry registry;
  // Names that sanitize badly, collide after sanitization, or start with a
  // digit; help text that needs escaping.
  registry.GetCounter("9digit first")->Inc();
  registry.GetCounter("a.b")->Inc();
  registry.GetCounter("a_b")->Inc(2);  // Collides with "a.b" -> _dup1.
  registry.GetGauge("spaced gauge name")->Set(-1.0);
  registry.GetGauge("inf.gauge")->Set(
      std::numeric_limits<double>::infinity());
  registry.GetHistogram("läte^ncy")->Observe(3.0);
  registry.SetHelp("a.b", "multi\nline \\ help");

  const std::string text = registry.ToPrometheusText();
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(text, &error)) << error << "\n" << text;
  // The collision produced two distinct families.
  EXPECT_NE(text.find("# TYPE turl_a_b counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE turl_a_b_dup1 counter"), std::string::npos);
  // Escaped help survived.
  EXPECT_NE(text.find("multi\\nline \\\\ help"), std::string::npos);
}

TEST(PrometheusConformanceTest, EmptyRegistryIsAnEmptyDocument) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.ToPrometheusText(), "");
}

TEST(PrometheusConformanceTest, RejectsMalformedDocuments) {
  std::string error;
  // Metric name starting with a digit.
  EXPECT_FALSE(ValidatePrometheusText(
      "# TYPE 9bad counter\n9bad 1\n", &error));
  // Sample with no TYPE anywhere.
  EXPECT_FALSE(ValidatePrometheusText("orphan 1\n", &error));
  // Sample before its TYPE line.
  EXPECT_FALSE(ValidatePrometheusText(
      "late 1\n# TYPE late counter\n", &error));
  // Duplicate TYPE for one family.
  EXPECT_FALSE(ValidatePrometheusText(
      "# TYPE x counter\nx 1\n# TYPE x counter\n", &error));
  // Unknown type token.
  EXPECT_FALSE(ValidatePrometheusText("# TYPE x flimsy\nx 1\n", &error));
  // Unescaped quote inside a label value.
  EXPECT_FALSE(ValidatePrometheusText(
      "# TYPE x counter\nx{l=\"a\"b\"} 1\n", &error));
  // Bad escape sequence inside a label value.
  EXPECT_FALSE(ValidatePrometheusText(
      "# TYPE x counter\nx{l=\"a\\q\"} 1\n", &error));
  // Non-numeric sample value.
  EXPECT_FALSE(ValidatePrometheusText(
      "# TYPE x counter\nx banana\n", &error));
  // Histogram with non-cumulative buckets.
  EXPECT_FALSE(ValidatePrometheusText(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n"
      "h_sum 1\nh_count 3\n",
      &error));
  // Histogram whose +Inf bucket disagrees with _count.
  EXPECT_FALSE(ValidatePrometheusText(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n"
      "h_sum 1\nh_count 7\n",
      &error));
  // Histogram missing the +Inf bucket entirely.
  EXPECT_FALSE(ValidatePrometheusText(
      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
      &error));
  // Missing trailing newline.
  EXPECT_FALSE(ValidatePrometheusText("# TYPE x counter\nx 1", &error));

  // And the well-formed equivalent passes.
  EXPECT_TRUE(ValidatePrometheusText(
      "# HELP h a histogram\n# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n"
      "h_sum 1.5\nh_count 2\n",
      &error))
      << error;
}

}  // namespace
}  // namespace obs
}  // namespace turl
