// Integration tests of the paper-baseline implementations against a real
// synthetic context: row-population candidate generation + rankers, the
// cell-filling index and rankers, the kNN schema recommender, Sherlock
// features/classifier, and the entity-linking baselines.

#include <algorithm>

#include "baselines/cell_filling.h"
#include "baselines/entity_linking_baselines.h"
#include "baselines/knn_schema.h"
#include "baselines/row_population.h"
#include "baselines/sherlock.h"
#include "core/context.h"
#include "gtest/gtest.h"
#include "text/wordpiece.h"
#include "util/string_util.h"

namespace turl {
namespace baselines {
namespace {

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 400;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

// ---------------- Row population ------------------------------------------

TEST(RowPopTest, CandidatesExcludeSeedsAndAreDistinct) {
  RowPopCandidateGenerator gen(Ctx().corpus, Ctx().corpus.train);
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  std::vector<kb::EntityId> seeds;
  for (const auto& cell : t.columns[0].cells) {
    if (cell.linked()) {
      seeds.push_back(cell.entity);
      break;
    }
  }
  ASSERT_FALSE(seeds.empty());
  auto candidates = gen.Generate(t.caption, seeds, Ctx().world.kb);
  std::unordered_set<kb::EntityId> set(candidates.begin(), candidates.end());
  EXPECT_EQ(set.size(), candidates.size());
  for (kb::EntityId seed : seeds) EXPECT_FALSE(set.count(seed));
}

TEST(RowPopTest, CaptionQueryFindsRelatedSubjects) {
  RowPopCandidateGenerator gen(Ctx().corpus, Ctx().corpus.train);
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  auto candidates = gen.Generate(t.caption, {}, Ctx().world.kb);
  EXPECT_FALSE(candidates.empty());
}

TEST(RowPopTest, EntiTablesScoresAlignWithCandidates) {
  RowPopCandidateGenerator gen(Ctx().corpus, Ctx().corpus.train);
  EntiTablesRanker ranker(Ctx().corpus, Ctx().corpus.train);
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  auto candidates = gen.Generate(t.caption, {}, Ctx().world.kb);
  ASSERT_FALSE(candidates.empty());
  auto scores = ranker.Score(t.caption, {}, candidates);
  EXPECT_EQ(scores.size(), candidates.size());
}

TEST(RowPopTest, Table2VecNotApplicableWithoutSeeds) {
  Rng rng(1);
  Table2VecRanker ranker(Ctx().corpus, Ctx().corpus.train, Word2VecConfig{},
                         &rng);
  auto scores = ranker.Score({}, {1, 2, 3});
  for (double s : scores) EXPECT_EQ(s, 0.0);
}

TEST(RowPopTest, Table2VecPrefersCooccurringSubjectsOnAverage) {
  Rng rng(2);
  Table2VecRanker ranker(Ctx().corpus, Ctx().corpus.train,
                         Word2VecConfig{.epochs = 8}, &rng);
  // Mean similarity of (seed, same-table subject) pairs must exceed the
  // mean over (seed, different-pattern subject) pairs. Aggregated over many
  // tables — individual pairs are noisy at this embedding scale.
  double same_sum = 0, cross_sum = 0;
  int same_n = 0, cross_n = 0;
  for (size_t k = 0; k + 1 < Ctx().corpus.train.size() && same_n < 150; ++k) {
    const data::Table& a = Ctx().corpus.tables[Ctx().corpus.train[k]];
    std::vector<kb::EntityId> subjects;
    for (const auto& cell : a.columns[0].cells) {
      if (cell.linked()) subjects.push_back(cell.entity);
    }
    if (subjects.size() < 2) continue;
    auto same = ranker.Score({subjects[0]}, {subjects[1]});
    same_sum += same[0];
    ++same_n;
    const data::Table& b =
        Ctx().corpus.tables[Ctx().corpus.train[(k + 37) %
                                               Ctx().corpus.train.size()]];
    if (b.pattern == a.pattern) continue;
    for (const auto& cell : b.columns[0].cells) {
      if (!cell.linked() || cell.entity == subjects[0]) continue;
      auto cross = ranker.Score({subjects[0]}, {cell.entity});
      cross_sum += cross[0];
      ++cross_n;
      break;
    }
  }
  ASSERT_GT(same_n, 30);
  ASSERT_GT(cross_n, 10);
  EXPECT_GT(same_sum / same_n, cross_sum / cross_n);
}

// ---------------- Cell filling --------------------------------------------

TEST(CellFillingIndexTest, RowMatesComeFromTrainingRows) {
  CellFillingIndex index(Ctx().corpus, Ctx().corpus.train);
  // Find a training row with two linked cells and verify the pair appears.
  for (size_t idx : Ctx().corpus.train) {
    const data::Table& t = Ctx().corpus.tables[idx];
    for (int c = 1; c < t.num_columns(); ++c) {
      if (!t.columns[size_t(c)].is_entity_column) continue;
      for (int r = 0; r < t.num_rows(); ++r) {
        const auto& s = t.columns[0].cells[size_t(r)];
        const auto& o = t.columns[size_t(c)].cells[size_t(r)];
        if (!s.linked() || !o.linked()) continue;
        auto candidates = index.CandidatesFor(s.entity);
        bool found = false;
        for (const auto& cand : candidates) found |= cand.entity == o.entity;
        EXPECT_TRUE(found);
        return;  // One verified pair suffices.
      }
    }
  }
  FAIL() << "no linked pair found";
}

TEST(CellFillingIndexTest, HeaderTranslationProbabilities) {
  CellFillingIndex index(Ctx().corpus, Ctx().corpus.train);
  // P(h'|h) is within [0, 1]; identical headers are handled by rankers.
  for (const std::string& h : index.ObservedHeaders()) {
    for (const std::string& h2 : index.ObservedHeaders()) {
      const double p = index.HeaderTranslation(h, h2);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0 + 1e-9);
    }
  }
  EXPECT_EQ(index.HeaderTranslation("nonexistent", "alsonot"), 0.0);
}

TEST(CellFillingRankersTest, ExactMatchesNormalizedHeader) {
  CellFillingIndex index(Ctx().corpus, Ctx().corpus.train);
  Rng rng(3);
  Word2Vec w2v = TrainHeaderEmbeddings(Ctx().corpus, Ctx().corpus.train,
                                       Word2VecConfig{.epochs = 2}, &rng);
  CellFillingRankers rankers(&index, &w2v);
  CellCandidate cand;
  cand.entity = 1;
  cand.source_headers = {NormalizeSurface("Club")};
  EXPECT_EQ(rankers.ScoreExact(cand, "club"), 1.0);
  EXPECT_EQ(rankers.ScoreExact(cand, "CLUB "), 1.0);
  EXPECT_EQ(rankers.ScoreExact(cand, "nationality"), 0.0);
  EXPECT_EQ(rankers.ScoreH2H(cand, "club"), 1.0);
  EXPECT_EQ(rankers.ScoreH2V(cand, "club"), 1.0);
}

TEST(CellFillingRankersTest, H2HRecoversHeaderSynonyms) {
  CellFillingIndex index(Ctx().corpus, Ctx().corpus.train);
  Rng rng(4);
  Word2Vec w2v = TrainHeaderEmbeddings(Ctx().corpus, Ctx().corpus.train,
                                       Word2VecConfig{.epochs = 2}, &rng);
  CellFillingRankers rankers(&index, &w2v);
  // "club" and "team" are surfaces of the same relation, so facts recur
  // under both -> P(team|club) > 0.
  CellCandidate cand;
  cand.entity = 1;
  cand.source_headers = {"team"};
  EXPECT_GT(rankers.ScoreH2H(cand, "club"), 0.0);
  EXPECT_EQ(rankers.ScoreExact(cand, "club"), 0.0);
}

// ---------------- kNN schema ------------------------------------------------

TEST(KnnSchemaTest, NeighborsAreSimilarCaptions) {
  KnnSchemaRecommender knn(Ctx().corpus, Ctx().corpus.train);
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  auto neighbors = knn.Neighbors(t.caption, 5);
  ASSERT_FALSE(neighbors.empty());
  for (size_t i = 1; i < neighbors.size(); ++i) {
    EXPECT_GE(neighbors[i - 1].similarity, neighbors[i].similarity);
  }
  // The nearest neighbour must at least share caption vocabulary with the
  // query (tf-idf can legitimately cross patterns that share words).
  const auto q_tokens = text::BasicTokenize(t.caption);
  const auto n_tokens = text::BasicTokenize(
      Ctx().corpus.tables[neighbors[0].table_index].caption);
  int shared = 0;
  for (const auto& qt : q_tokens) {
    for (const auto& nt : n_tokens) shared += qt == nt;
  }
  EXPECT_GT(shared, 0);
}

TEST(KnnSchemaTest, RecommendationsExcludeSeeds) {
  KnnSchemaRecommender knn(Ctx().corpus, Ctx().corpus.train);
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  const std::string seed = t.columns[0].header;
  auto suggestions = knn.Recommend(t.caption, {seed});
  for (const auto& s : suggestions) {
    EXPECT_NE(s.header, NormalizeSurface(seed));
  }
}

TEST(KnnSchemaTest, FindsGoldHeaders) {
  KnnSchemaRecommender knn(Ctx().corpus, Ctx().corpus.train);
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  auto suggestions = knn.Recommend(t.caption, {});
  ASSERT_FALSE(suggestions.empty());
  int hits = 0;
  for (const auto& s : suggestions) {
    for (const auto& col : t.columns) {
      hits += s.header == NormalizeSurface(col.header);
    }
  }
  EXPECT_GT(hits, 0);
}

// ---------------- Sherlock ---------------------------------------------------

TEST(SherlockFeaturesTest, DimensionAndRanges) {
  auto f = SherlockFeatures({"Alice Doe", "Bob Roe", "Cara Lee"});
  ASSERT_EQ(f.size(), size_t(kSherlockFeatureDim));
  EXPECT_FLOAT_EQ(f[0], 3.f);                    // Cell count.
  EXPECT_FLOAT_EQ(f[1], 1.f);                    // All distinct.
  for (int i = 6; i <= 10; ++i) {
    EXPECT_GE(f[size_t(i)], 0.f);
    EXPECT_LE(f[size_t(i)], 1.f);  // Character fractions.
  }
}

TEST(SherlockFeaturesTest, NumericVsNameColumnsDiffer) {
  auto names = SherlockFeatures({"Alice Doe", "Bob Roe"});
  auto years = SherlockFeatures({"1990", "2005"});
  EXPECT_GT(years[6], names[6]);   // Digit fraction.
  EXPECT_GT(years[13], names[13]); // Numeric-cell fraction.
  EXPECT_LT(years[9], names[9] + 1e-6f);  // Spaces.
}

TEST(SherlockFeaturesTest, EmptyColumn) {
  auto f = SherlockFeatures({});
  ASSERT_EQ(f.size(), size_t(kSherlockFeatureDim));
  for (float v : f) EXPECT_EQ(v, 0.f);
}

TEST(SherlockClassifierTest, LearnsSeparableLabels) {
  // Numeric columns -> label 0; name columns -> label 1.
  Rng rng(5);
  std::vector<std::vector<float>> x;
  std::vector<std::vector<int>> y;
  for (int i = 0; i < 60; ++i) {
    x.push_back(SherlockFeatures(
        {std::to_string(1900 + i), std::to_string(2000 - i)}));
    y.push_back({0});
    x.push_back(SherlockFeatures({"Person " + std::string(1, char('a' + i % 26)),
                                  "Other Name"}));
    y.push_back({1});
  }
  SherlockClassifier clf(2, 16, 1);
  for (int epoch = 0; epoch < 40; ++epoch) clf.TrainEpoch(x, y, 1e-3f, &rng);
  auto numeric = clf.PredictLabels(SherlockFeatures({"1955", "1234"}));
  auto names = clf.PredictLabels(SherlockFeatures({"Jane Roe", "Al Bo"}));
  ASSERT_FALSE(numeric.empty());
  EXPECT_EQ(numeric[0], 0);
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names[0], 1);
}

// ---------------- Entity-linking baselines -----------------------------------

TEST(ElBaselinesTest, LookupTop1CoversEntityColumns) {
  kb::LookupService lookup(&Ctx().world.kb);
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  TableLinks links = LookupTop1Links(t, lookup);
  ASSERT_EQ(links.size(), size_t(t.num_columns()));
  int made = 0, correct = 0, gold = 0;
  for (int c = 0; c < t.num_columns(); ++c) {
    for (int r = 0; r < t.num_rows(); ++r) {
      if (!t.columns[size_t(c)].is_entity_column) {
        EXPECT_EQ(links[size_t(c)][size_t(r)], kb::kInvalidEntity);
        continue;
      }
      made += links[size_t(c)][size_t(r)] != kb::kInvalidEntity;
      const auto& cell = t.columns[size_t(c)].cells[size_t(r)];
      if (cell.linked()) {
        ++gold;
        correct += links[size_t(c)][size_t(r)] == cell.entity;
      }
    }
  }
  EXPECT_GT(made, 0);
  EXPECT_GT(correct, gold / 3);  // Lookup is decent but imperfect.
}

TEST(ElBaselinesTest, T2KAtLeastRunsAndLinksCells) {
  kb::LookupService lookup(&Ctx().world.kb);
  T2KLinker t2k(&Ctx().world.kb, &lookup);
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  TableLinks links = t2k.LinkTable(t);
  int made = 0;
  for (const auto& col : links) {
    for (kb::EntityId e : col) made += e != kb::kInvalidEntity;
  }
  EXPECT_GT(made, 0);
}

TEST(ElBaselinesTest, HybridUsesEmbeddingCoherence) {
  kb::LookupService lookup(&Ctx().world.kb);
  Rng rng(6);
  Word2Vec emb = TrainEntityEmbeddings(Ctx().corpus, Ctx().corpus.train,
                                       Word2VecConfig{.epochs = 3}, &rng);
  EXPECT_GT(emb.vocab_size(), 0);
  HybridLinker hybrid(&Ctx().world.kb, &lookup, &emb);
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  TableLinks links = hybrid.LinkTable(t);
  int made = 0;
  for (const auto& col : links) {
    for (kb::EntityId e : col) made += e != kb::kInvalidEntity;
  }
  EXPECT_GT(made, 0);
}

}  // namespace
}  // namespace baselines
}  // namespace turl
