#include "baselines/bm25.h"

#include "gtest/gtest.h"

namespace turl {
namespace baselines {
namespace {

Bm25Index MakeIndex() {
  Bm25Index index;
  index.AddDocument({"santos", "fc", "season", "squad"});            // 0
  index.AddDocument({"list", "of", "films", "directed", "by", "x"}); // 1
  index.AddDocument({"santos", "fc", "players", "list"});            // 2
  index.AddDocument({"radio", "stations", "in", "metro", "manila"}); // 3
  index.Finalize();
  return index;
}

TEST(Bm25Test, ExactTermsRankRelevantDocsFirst) {
  Bm25Index index = MakeIndex();
  auto hits = index.Search({"santos", "fc"}, 10);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_TRUE(hits[0].doc == 0 || hits[0].doc == 2);
  EXPECT_TRUE(hits[1].doc == 0 || hits[1].doc == 2);
  EXPECT_GT(hits[0].score, 0.0);
}

TEST(Bm25Test, NoMatchesReturnsEmpty) {
  Bm25Index index = MakeIndex();
  EXPECT_TRUE(index.Search({"zzz"}, 5).empty());
  EXPECT_TRUE(index.Search({}, 5).empty());
}

TEST(Bm25Test, TopKLimit) {
  Bm25Index index = MakeIndex();
  auto hits = index.Search({"list"}, 1);
  EXPECT_EQ(hits.size(), 1u);
}

TEST(Bm25Test, RareTermsWeighMore) {
  Bm25Index index = MakeIndex();
  // "manila" appears in 1 doc, "list" in 2: querying both should rank the
  // manila doc first.
  auto hits = index.Search({"manila", "list"}, 10);
  ASSERT_GE(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 3u);
}

TEST(Bm25Test, ScoresDescendingAndTiesByDocId) {
  Bm25Index index = MakeIndex();
  auto hits = index.Search({"santos", "fc", "list"}, 10);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
}

TEST(Bm25Test, NumDocuments) {
  Bm25Index index = MakeIndex();
  EXPECT_EQ(index.num_documents(), 4u);
}

TEST(Bm25Test, TermFrequencySaturates) {
  Bm25Index index;
  index.AddDocument({"goal"});                                       // 0
  index.AddDocument({"goal", "goal", "goal", "goal", "goal"});       // 1
  index.Finalize();
  auto hits = index.Search({"goal"}, 2);
  ASSERT_EQ(hits.size(), 2u);
  // Higher tf wins but sublinearly (k1 saturation): ratio far below 5x.
  EXPECT_EQ(hits[0].doc, 1u);
  EXPECT_LT(hits[0].score, hits[1].score * 3.0);
}

}  // namespace
}  // namespace baselines
}  // namespace turl
