#include "baselines/word2vec.h"

#include "gtest/gtest.h"

namespace turl {
namespace baselines {
namespace {

/// Two disjoint "topics": items within a topic co-occur, across topics never.
std::vector<std::vector<std::string>> TopicSequences() {
  std::vector<std::vector<std::string>> out;
  for (int i = 0; i < 120; ++i) {
    if (i % 2 == 0) {
      out.push_back({"apple", "banana", "cherry", "date"});
    } else {
      out.push_back({"wrench", "hammer", "pliers", "saw"});
    }
  }
  return out;
}

TEST(Word2VecTest, VocabularyBuilt) {
  Word2Vec w2v;
  Rng rng(1);
  w2v.Train(TopicSequences(), Word2VecConfig{.dim = 16, .epochs = 2}, &rng);
  EXPECT_EQ(w2v.vocab_size(), 8);
  EXPECT_TRUE(w2v.Contains("apple"));
  EXPECT_FALSE(w2v.Contains("unknown"));
  EXPECT_EQ(w2v.dim(), 16);
}

TEST(Word2VecTest, VectorShapeAndUnknown) {
  Word2Vec w2v;
  Rng rng(2);
  w2v.Train(TopicSequences(), Word2VecConfig{.dim = 8, .epochs = 1}, &rng);
  EXPECT_EQ(w2v.Vector("apple").size(), 8u);
  EXPECT_TRUE(w2v.Vector("unknown").empty());
  EXPECT_EQ(w2v.Similarity("apple", "unknown"), 0.0);
}

TEST(Word2VecTest, CooccurringItemsMoreSimilar) {
  Word2Vec w2v;
  Rng rng(3);
  w2v.Train(TopicSequences(), Word2VecConfig{.dim = 16, .epochs = 8}, &rng);
  const double within_fruit = w2v.Similarity("apple", "banana");
  const double within_tools = w2v.Similarity("wrench", "hammer");
  const double across = w2v.Similarity("apple", "wrench");
  EXPECT_GT(within_fruit, across);
  EXPECT_GT(within_tools, across);
}

TEST(Word2VecTest, SimilarityToSet) {
  Word2Vec w2v;
  Rng rng(4);
  w2v.Train(TopicSequences(), Word2VecConfig{.dim = 16, .epochs = 8}, &rng);
  const double fruit_set =
      w2v.SimilarityToSet("cherry", {"apple", "banana"});
  const double cross_set =
      w2v.SimilarityToSet("cherry", {"wrench", "hammer"});
  EXPECT_GT(fruit_set, cross_set);
  EXPECT_EQ(w2v.SimilarityToSet("cherry", {}), 0.0);
  EXPECT_EQ(w2v.SimilarityToSet("unknown", {"apple"}), 0.0);
}

TEST(Word2VecTest, MinCountFilters) {
  std::vector<std::vector<std::string>> seqs = {{"a", "b"}, {"a", "c"}};
  Word2Vec w2v;
  Rng rng(5);
  w2v.Train(seqs, Word2VecConfig{.dim = 4, .min_count = 2}, &rng);
  EXPECT_TRUE(w2v.Contains("a"));
  EXPECT_FALSE(w2v.Contains("b"));
}

TEST(Word2VecTest, EmptyInputIsSafe) {
  Word2Vec w2v;
  Rng rng(6);
  w2v.Train({}, Word2VecConfig{}, &rng);
  EXPECT_EQ(w2v.vocab_size(), 0);
  EXPECT_EQ(w2v.Similarity("a", "b"), 0.0);
}

TEST(Word2VecTest, DeterministicForSeed) {
  Word2Vec a, b;
  Rng ra(7), rb(7);
  a.Train(TopicSequences(), Word2VecConfig{.dim = 8, .epochs = 2}, &ra);
  b.Train(TopicSequences(), Word2VecConfig{.dim = 8, .epochs = 2}, &rb);
  EXPECT_EQ(a.Vector("apple"), b.Vector("apple"));
}

}  // namespace
}  // namespace baselines
}  // namespace turl
