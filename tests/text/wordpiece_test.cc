#include "text/wordpiece.h"

#include "gtest/gtest.h"
#include "util/serialize.h"

namespace turl {
namespace text {
namespace {

TEST(VocabTest, SpecialTokensFixed) {
  Vocab v;
  EXPECT_EQ(v.Id(kPadToken), kPadId);
  EXPECT_EQ(v.Id(kUnkToken), kUnkId);
  EXPECT_EQ(v.Id(kClsToken), kClsId);
  EXPECT_EQ(v.Id(kSepToken), kSepId);
  EXPECT_EQ(v.Id(kMaskToken), kMaskId);
  EXPECT_EQ(v.size(), 5);
}

TEST(VocabTest, AddTokenIdempotent) {
  Vocab v;
  const int id1 = v.AddToken("film");
  const int id2 = v.AddToken("film");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(v.size(), 6);
  EXPECT_EQ(v.Token(id1), "film");
}

TEST(VocabTest, UnknownMapsToUnk) {
  Vocab v;
  EXPECT_EQ(v.Id("never seen"), kUnkId);
  EXPECT_FALSE(v.Contains("never seen"));
}

TEST(VocabTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/vocab.bin";
  Vocab v;
  v.AddToken("alpha");
  v.AddToken("##beta");
  {
    BinaryWriter w(path);
    v.Save(&w);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  auto loaded = Vocab::Load(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), v.size());
  EXPECT_EQ(loaded->Id("alpha"), v.Id("alpha"));
  EXPECT_EQ(loaded->Id("##beta"), v.Id("##beta"));
  std::remove(path.c_str());
}

TEST(BasicTokenizeTest, LowercasesAndSplits) {
  auto words = BasicTokenize("The Silent River (1968)");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "the");
  EXPECT_EQ(words[1], "silent");
  EXPECT_EQ(words[2], "river");
  EXPECT_EQ(words[3], "1968");
}

TEST(BasicTokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(BasicTokenize("").empty());
  EXPECT_TRUE(BasicTokenize("--- ...").empty());
}

std::unordered_map<std::string, int64_t> Counts() {
  return {{"films", 10}, {"filmography", 8}, {"directed", 6},
          {"satyajit", 5},  {"rayson", 5},    {"awards", 4},
          {"rare", 1}};
}

TEST(BuildVocabTest, FrequentWordsIncluded) {
  Vocab v = BuildWordPieceVocab(Counts());
  EXPECT_TRUE(v.Contains("films"));
  EXPECT_TRUE(v.Contains("satyajit"));
  EXPECT_FALSE(v.Contains("rare"));  // Below min_word_count.
}

TEST(BuildVocabTest, SingleCharactersAlwaysPresent) {
  Vocab v = BuildWordPieceVocab({});
  for (char c = 'a'; c <= 'z'; ++c) {
    EXPECT_TRUE(v.Contains(std::string(1, c)));
    EXPECT_TRUE(v.Contains("##" + std::string(1, c)));
  }
  EXPECT_TRUE(v.Contains("7"));
  EXPECT_TRUE(v.Contains("##7"));
}

TEST(BuildVocabTest, SuffixPiecesMined) {
  // "films"/"awards" end in "s"; "filmography"... suffixes of length >= 2
  // with enough counts become ##pieces.
  WordPieceOptions options;
  options.min_suffix_count = 10;
  Vocab v = BuildWordPieceVocab(Counts(), options);
  // "ms" suffix: films(10) -> count 10 >= 10.
  EXPECT_TRUE(v.Contains("##ms"));
}

TEST(BuildVocabTest, RespectsMaxVocabSize) {
  WordPieceOptions options;
  options.max_vocab_size = 80;  // Specials + chars only, roughly.
  Vocab v = BuildWordPieceVocab(Counts(), options);
  EXPECT_LE(v.size(), 80);
}

TEST(TokenizerTest, KnownWordSingleToken) {
  Vocab v = BuildWordPieceVocab(Counts());
  WordPieceTokenizer tok(&v);
  auto pieces = tok.TokenizeWord("films");
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "films");
}

TEST(TokenizerTest, UnknownWordFallsBackToPieces) {
  Vocab v = BuildWordPieceVocab(Counts());
  WordPieceTokenizer tok(&v);
  auto pieces = tok.TokenizeWord("zzq");
  ASSERT_GE(pieces.size(), 2u);  // Char pieces at worst.
  EXPECT_EQ(pieces[0], "z");
  EXPECT_EQ(pieces[1], "##z");
  EXPECT_EQ(pieces[2], "##q");
}

TEST(TokenizerTest, GreedyLongestMatchFirst) {
  Vocab v;
  v.AddToken("play");
  v.AddToken("player");
  v.AddToken("##er");
  v.AddToken("##r");
  v.AddToken("##e");
  WordPieceTokenizer tok(&v);
  auto pieces = tok.TokenizeWord("player");
  ASSERT_EQ(pieces.size(), 1u);  // Whole word beats play + ##er.
  EXPECT_EQ(pieces[0], "player");
  auto pieces2 = tok.TokenizeWord("playere");
  ASSERT_EQ(pieces2.size(), 2u);
  EXPECT_EQ(pieces2[0], "player");
  EXPECT_EQ(pieces2[1], "##e");
}

TEST(TokenizerTest, RoundTripThroughIds) {
  Vocab v = BuildWordPieceVocab(Counts());
  WordPieceTokenizer tok(&v);
  auto ids = tok.Encode("Satyajit films");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(v.Token(ids[0]), "satyajit");
  EXPECT_EQ(v.Token(ids[1]), "films");
}

TEST(TokenizerTest, EmptyInput) {
  Vocab v;
  WordPieceTokenizer tok(&v);
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Encode("   ").empty());
  EXPECT_TRUE(tok.TokenizeWord("").empty());
}

TEST(TokenizerTest, NeverReturnsEmptyForAlnumWord) {
  // With chars + continuations in the vocab, any alnum word segments.
  Vocab v = BuildWordPieceVocab({});
  WordPieceTokenizer tok(&v);
  for (const char* word : {"a", "zzzzzz", "x1y2", "1234567890"}) {
    auto pieces = tok.TokenizeWord(word);
    EXPECT_FALSE(pieces.empty()) << word;
    EXPECT_NE(pieces[0], kUnkToken) << word;
  }
}

// Parameterized: tokenization length never exceeds word length and
// reassembling pieces reproduces the word.
class TokenizerPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TokenizerPropertyTest, PiecesReassembleToWord) {
  Vocab v = BuildWordPieceVocab(Counts());
  WordPieceTokenizer tok(&v);
  const std::string word = GetParam();
  auto pieces = tok.TokenizeWord(word);
  ASSERT_FALSE(pieces.empty());
  std::string rebuilt;
  for (const auto& p : pieces) {
    rebuilt += (p.rfind("##", 0) == 0) ? p.substr(2) : p;
  }
  EXPECT_EQ(rebuilt, word);
  EXPECT_LE(pieces.size(), word.size());
}

INSTANTIATE_TEST_SUITE_P(Words, TokenizerPropertyTest,
                         ::testing::Values("films", "filmography", "rayson",
                                           "bergstein", "x9k", "moviegoer",
                                           "a", "ab", "satyajitrayson"));

}  // namespace
}  // namespace text
}  // namespace turl
