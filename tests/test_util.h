#ifndef TURL_TESTS_TEST_UTIL_H_
#define TURL_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace turl {
namespace testing_util {

/// Verifies reverse-mode gradients against central finite differences.
///
/// `forward` must rebuild the computation graph from the *current contents*
/// of `inputs` and return a scalar loss tensor. The helper runs backward once
/// to collect analytic gradients for each input, then perturbs every input
/// element to compute a numeric gradient and compares the two with a mixed
/// absolute/relative tolerance.
inline void ExpectGradientsMatch(const std::function<nn::Tensor()>& forward,
                                 std::vector<nn::Tensor> inputs,
                                 float eps = 1e-2f, float tol = 2e-2f) {
  for (auto& t : inputs) t.ZeroGrad();
  nn::Tensor loss = forward();
  ASSERT_EQ(loss.numel(), 1);
  loss.Backward();

  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (auto& t : inputs) analytic.push_back(t.grad_vector());

  for (size_t ti = 0; ti < inputs.size(); ++ti) {
    nn::Tensor t = inputs[ti];
    float* d = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
      const float saved = d[i];
      d[i] = saved + eps;
      const float lp = forward().item();
      d[i] = saved - eps;
      const float lm = forward().item();
      d[i] = saved;
      const float numeric = (lp - lm) / (2.f * eps);
      const float got = analytic[ti].empty() ? 0.f : analytic[ti][size_t(i)];
      EXPECT_NEAR(got, numeric, tol * (1.f + std::abs(numeric)))
          << "input " << ti << " element " << i;
    }
  }
}

}  // namespace testing_util
}  // namespace turl

#endif  // TURL_TESTS_TEST_UTIL_H_
