// End-to-end fine-tuning smoke tests: every TUBE task head must train on a
// small slice and beat a degenerate baseline. These are the integration
// tests of model + task wiring (full-scale numbers live in bench/).

#include <algorithm>

#include "baselines/cell_filling.h"
#include "baselines/row_population.h"
#include "gtest/gtest.h"
#include "kb/lookup.h"
#include "tasks/cell_filling.h"
#include "tasks/column_type.h"
#include "tasks/entity_linking.h"
#include "tasks/relation_extraction.h"
#include "tasks/row_population.h"
#include "tasks/schema_augmentation.h"

namespace turl {
namespace tasks {
namespace {

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 500;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

core::TurlConfig SmallConfig() {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

std::unique_ptr<core::TurlModel> FreshModel(uint64_t seed = 11) {
  return std::make_unique<core::TurlModel>(
      SmallConfig(), Ctx().vocab.size(), Ctx().entity_vocab.size(), seed);
}

FinetuneOptions QuickOptions() {
  FinetuneOptions ft;
  ft.epochs = 2;
  ft.max_tables = 80;
  return ft;
}

TEST(ColumnTypeFinetuneTest, BeatsEmptyPrediction) {
  ColumnTypeDataset dataset = BuildColumnTypeDataset(Ctx());
  auto model = FreshModel();
  TurlColumnTyper typer(model.get(), &Ctx(), &dataset,
                        InputVariant::Full(), 31);
  typer.Finetune(QuickOptions());
  std::vector<ColumnTypeInstance> sample(
      dataset.valid.begin(),
      dataset.valid.begin() + std::min<size_t>(dataset.valid.size(), 40));
  eval::Prf prf = typer.Evaluate(sample);
  EXPECT_GT(prf.f1, 0.3) << "column typing must learn something";
}

TEST(ColumnTypeFinetuneTest, VariantsChangeInput) {
  ColumnTypeDataset dataset = BuildColumnTypeDataset(Ctx());
  auto model = FreshModel();
  // "only metadata" must not crash on entity-free encodings and still
  // produce predictions.
  TurlColumnTyper typer(model.get(), &Ctx(), &dataset,
                        InputVariant::OnlyMetadata(), 31);
  FinetuneOptions ft = QuickOptions();
  ft.epochs = 1;
  ft.max_tables = 30;
  typer.Finetune(ft);
  (void)typer.Predict(dataset.valid[0]);
}

TEST(RelationFinetuneTest, LearnsRelations) {
  RelationDataset dataset = BuildRelationDataset(Ctx());
  auto model = FreshModel();
  TurlRelationExtractor extractor(model.get(), &Ctx(), &dataset,
                                  InputVariant::Full(), 31);
  const double map_before = extractor.EvaluateMap(dataset.valid, 40);
  extractor.Finetune(QuickOptions());
  const double map_after = extractor.EvaluateMap(dataset.valid, 40);
  EXPECT_GT(map_after, map_before + 0.1);
  EXPECT_GT(map_after, 0.4);
}

TEST(RelationFinetuneTest, CallbackFires) {
  RelationDataset dataset = BuildRelationDataset(Ctx());
  auto model = FreshModel();
  TurlRelationExtractor extractor(model.get(), &Ctx(), &dataset,
                                  InputVariant::Full(), 31);
  FinetuneOptions ft;
  ft.epochs = 1;
  ft.max_tables = 30;
  int calls = 0;
  extractor.Finetune(ft, /*eval_every=*/10,
                     [&](int64_t step, double map) {
                       ++calls;
                       EXPECT_GT(step, 0);
                       EXPECT_GE(map, 0.0);
                       EXPECT_LE(map, 1.0);
                     });
  EXPECT_GE(calls, 2);
}

TEST(ElFinetuneTest, BeatsFirstCandidateBaseline) {
  kb::LookupService lookup(&Ctx().world.kb);
  ElDataset train = BuildElDataset(Ctx(), lookup, Ctx().corpus.train, 20,
                                   /*drop_unreachable=*/true, 600);
  ElDataset test = BuildElDataset(Ctx(), lookup, Ctx().corpus.valid, 20,
                                  false, 200);
  auto model = FreshModel();
  TurlEntityLinker linker(model.get(), &Ctx(), {true, true}, 31);
  FinetuneOptions ft = QuickOptions();
  linker.Finetune(train, ft);
  eval::Prf turl = linker.Evaluate(test);

  std::vector<kb::EntityId> first;
  for (const ElInstance& inst : test.instances) {
    first.push_back(inst.candidates.empty() ? kb::kInvalidEntity
                                            : inst.candidates[0]);
  }
  eval::Prf top1 = EvaluateElPredictions(test, first);
  // A tiny random-init model after 2 epochs only needs to be in the same
  // league as the raw candidate prior here; the pre-trained comparison is
  // bench_table4's job.
  EXPECT_GT(turl.f1, top1.f1 - 0.2);
  EXPECT_GT(turl.f1, 0.3);
}

TEST(RowPopFinetuneTest, ScoresAlignAndTrainImproves) {
  baselines::RowPopCandidateGenerator gen(Ctx().corpus, Ctx().corpus.train);
  auto train = BuildRowPopInstances(Ctx(), gen, Ctx().corpus.train, 1, 4, 150);
  auto test = BuildRowPopInstances(Ctx(), gen, Ctx().corpus.valid, 1, 6, 40);
  ASSERT_FALSE(train.empty());
  ASSERT_FALSE(test.empty());
  auto model = FreshModel();
  TurlRowPopulator populator(model.get(), &Ctx());

  auto score_all = [&] {
    std::vector<std::vector<double>> s;
    for (const auto& inst : test) {
      std::vector<float> scores = populator.Scores(inst);
      s.emplace_back(scores.begin(), scores.end());
    }
    return s;
  };
  RowPopMetrics before = EvaluateRowPopScores(test, score_all());
  FinetuneOptions ft;
  ft.epochs = 2;
  populator.Finetune(train, ft);
  RowPopMetrics after = EvaluateRowPopScores(test, score_all());
  EXPECT_GT(after.map, before.map);
  EXPECT_NEAR(after.recall, before.recall, 1e-9);  // Shared candidates.
}

TEST(CellFillerTest, ScoresParallelCandidates) {
  baselines::CellFillingIndex index(Ctx().corpus, Ctx().corpus.train);
  auto instances =
      BuildCellFillInstances(Ctx(), index, Ctx().corpus.valid, 3, 30);
  ASSERT_FALSE(instances.empty());
  auto model = FreshModel();
  TurlCellFiller filler(model.get(), &Ctx());
  for (size_t i = 0; i < std::min<size_t>(instances.size(), 10); ++i) {
    auto scores = filler.Scores(instances[i]);
    EXPECT_EQ(scores.size(), instances[i].candidates.size());
  }
}

TEST(SchemaAugFinetuneTest, TrainingImprovesMap) {
  HeaderVocab vocab = BuildHeaderVocab(Ctx());
  auto train = BuildSchemaAugInstances(Ctx(), vocab, Ctx().corpus.train, 0,
                                       200);
  auto test = BuildSchemaAugInstances(Ctx(), vocab, Ctx().corpus.valid, 0, 40);
  ASSERT_FALSE(train.empty());
  ASSERT_FALSE(test.empty());
  auto model = FreshModel();
  TurlSchemaAugmenter augmenter(model.get(), &Ctx(), &vocab, 31);

  auto rank_all = [&] {
    std::vector<std::vector<int>> r;
    for (const auto& inst : test) r.push_back(augmenter.Predict(inst));
    return r;
  };
  const double before = EvaluateSchemaAugmentation(test, rank_all());
  FinetuneOptions ft;
  ft.epochs = 3;
  augmenter.Finetune(train, ft);
  const double after = EvaluateSchemaAugmentation(test, rank_all());
  EXPECT_GT(after, before + 0.1);
  EXPECT_GT(after, 0.3);
}

TEST(SchemaAugTest, RankExcludesSeeds) {
  HeaderVocab vocab = BuildHeaderVocab(Ctx());
  auto instances =
      BuildSchemaAugInstances(Ctx(), vocab, Ctx().corpus.valid, 1, 10);
  ASSERT_FALSE(instances.empty());
  auto model = FreshModel();
  TurlSchemaAugmenter augmenter(model.get(), &Ctx(), &vocab, 31);
  for (const auto& inst : instances) {
    std::vector<int> ranking = augmenter.Predict(inst);
    for (int h : ranking) {
      EXPECT_TRUE(std::find(inst.seed_headers.begin(),
                            inst.seed_headers.end(),
                            h) == inst.seed_headers.end());
    }
  }
}

}  // namespace
}  // namespace tasks
}  // namespace turl
