#include "tasks/common.h"

#include "core/context.h"
#include "gtest/gtest.h"

namespace turl {
namespace tasks {
namespace {

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 200;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

core::EncodedTable Encode(const InputVariant& variant) {
  const text::WordPieceTokenizer tok = Ctx().MakeTokenizer();
  core::EncodedTable e =
      core::EncodeTable(Ctx().corpus.tables[Ctx().corpus.train[0]], tok,
                        Ctx().entity_vocab, EncodeOptionsFor(variant));
  ApplyVariant(variant, &e);
  return e;
}

TEST(InputVariantTest, FactoryFlags) {
  EXPECT_TRUE(InputVariant::Full().use_metadata);
  EXPECT_TRUE(InputVariant::Full().use_entity_ids);
  EXPECT_FALSE(InputVariant::OnlyEntityMention().use_metadata);
  EXPECT_FALSE(InputVariant::OnlyEntityMention().use_entity_ids);
  EXPECT_TRUE(InputVariant::OnlyEntityMention().use_mentions);
  EXPECT_FALSE(InputVariant::WithoutMetadata().use_metadata);
  EXPECT_FALSE(InputVariant::WithoutLearnedEmbedding().use_entity_ids);
  EXPECT_FALSE(InputVariant::OnlyMetadata().use_entities);
  EXPECT_FALSE(InputVariant::OnlyLearnedEmbedding().use_mentions);
  EXPECT_FALSE(InputVariant::OnlyLearnedEmbedding().use_metadata);
}

TEST(ApplyVariantTest, FullKeepsEverything) {
  core::EncodedTable e = Encode(InputVariant::Full());
  EXPECT_GT(e.num_tokens(), 0);
  EXPECT_GT(e.num_entities(), 0);
  bool any_real_id = false, any_mention = false;
  for (int id : e.entity_ids) {
    any_real_id |= id >= data::EntityVocab::kNumSpecial;
  }
  for (const auto& m : e.entity_mentions) any_mention |= !m.empty();
  EXPECT_TRUE(any_real_id);
  EXPECT_TRUE(any_mention);
}

TEST(ApplyVariantTest, WithoutLearnedEmbeddingStripsIds) {
  core::EncodedTable e = Encode(InputVariant::WithoutLearnedEmbedding());
  for (int id : e.entity_ids) {
    EXPECT_EQ(id, data::EntityVocab::kUnkEntity);
  }
  bool any_mention = false;
  for (const auto& m : e.entity_mentions) any_mention |= !m.empty();
  EXPECT_TRUE(any_mention);  // Mentions survive.
}

TEST(ApplyVariantTest, OnlyLearnedEmbeddingStripsMentionsAndMetadata) {
  core::EncodedTable e = Encode(InputVariant::OnlyLearnedEmbedding());
  EXPECT_EQ(e.num_tokens(), 0);
  for (const auto& m : e.entity_mentions) EXPECT_TRUE(m.empty());
  bool any_real_id = false;
  for (int id : e.entity_ids) {
    any_real_id |= id >= data::EntityVocab::kNumSpecial;
  }
  EXPECT_TRUE(any_real_id);
}

TEST(ApplyVariantTest, OnlyMetadataHasNoEntities) {
  core::EncodedTable e = Encode(InputVariant::OnlyMetadata());
  EXPECT_EQ(e.num_entities(), 0);
  EXPECT_GT(e.num_tokens(), 0);
}

TEST(ColumnHiddenTest, ShapeAndZeroFallbacks) {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  core::TurlModel model(config, Ctx().vocab.size(),
                        Ctx().entity_vocab.size(), 1);

  core::EncodedTable full = Encode(InputVariant::Full());
  Rng rng(0);
  nn::Tensor hidden = model.Encode(full, false, &rng);
  nn::Tensor hc = ColumnHidden(hidden, full, 0, 32);
  EXPECT_EQ(hc.dim(0), 1);
  EXPECT_EQ(hc.dim(1), 64);

  // Metadata-free table: header half must be exactly zero.
  core::EncodedTable no_meta = Encode(InputVariant::WithoutMetadata());
  nn::Tensor hidden2 = model.Encode(no_meta, false, &rng);
  nn::Tensor hc2 = ColumnHidden(hidden2, no_meta, 0, 32);
  for (int64_t j = 0; j < 32; ++j) EXPECT_EQ(hc2.at(j), 0.f);
  bool entity_half_nonzero = false;
  for (int64_t j = 32; j < 64; ++j) entity_half_nonzero |= hc2.at(j) != 0.f;
  EXPECT_TRUE(entity_half_nonzero);

  // Column with no elements at all: both halves zero.
  nn::Tensor hc3 = ColumnHidden(hidden2, no_meta, 9999, 32);
  for (int64_t j = 0; j < 64; ++j) EXPECT_EQ(hc3.at(j), 0.f);
}

TEST(ColumnHiddenTest, GradientFlowsThroughAggregates) {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  core::TurlModel model(config, Ctx().vocab.size(),
                        Ctx().entity_vocab.size(), 1);
  core::EncodedTable full = Encode(InputVariant::Full());
  Rng rng(0);
  model.params()->ZeroGrad();
  nn::Tensor hidden = model.Encode(full, true, &rng);
  nn::SumAll(ColumnHidden(hidden, full, 0, 32)).Backward();
  nn::Tensor w = model.params()->Get("encoder.layer0.attn.wq.weight");
  double g = 0;
  for (float v : w.grad_vector()) g += std::abs(v);
  EXPECT_GT(g, 0.0);
}

}  // namespace
}  // namespace tasks
}  // namespace turl
