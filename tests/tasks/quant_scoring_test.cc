// Int8 quantized scoring parity (`ctest -L kernels`): with
// TURL_QUANT_SCORING on, every task head's Scores() must track the fp32
// path within a small epsilon on the same instance — the quant path is an
// approximation of the same dot products, not a different scorer. Also pins
// the cache-invalidation contract: scores must follow the weights after
// they change under a live cache.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "baselines/cell_filling.h"
#include "baselines/row_population.h"
#include "gtest/gtest.h"
#include "kb/lookup.h"
#include "tasks/cell_filling.h"
#include "tasks/column_type.h"
#include "tasks/entity_linking.h"
#include "tasks/relation_extraction.h"
#include "tasks/row_population.h"
#include "tasks/schema_augmentation.h"

namespace turl {
namespace tasks {
namespace {

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 500;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

core::TurlConfig SmallConfig() {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

std::unique_ptr<core::TurlModel> FreshModel(uint64_t seed = 11) {
  return std::make_unique<core::TurlModel>(
      SmallConfig(), Ctx().vocab.size(), Ctx().entity_vocab.size(), seed);
}

/// Forces the quant-scoring gate for the enclosing scope; restores the
/// environment-driven default (off in tests) on destruction.
struct QuantScoringOverride {
  explicit QuantScoringOverride(bool on) {
    nn::kernels::SetQuantScoringForTest(on ? 1 : 0);
  }
  ~QuantScoringOverride() { nn::kernels::SetQuantScoringForTest(-1); }
};

/// Scores `instance` through `head` on both paths and checks the quant
/// scores track fp32 within epsilon. Row scale varies per head (sigmoid
/// probabilities vs raw logits), so the bound is relative to the fp32
/// score range.
template <typename Head, typename Instance>
void ExpectQuantTracksFp32(const Head& head, const Instance& instance,
                           const char* what) {
  std::vector<float> fp32, quant;
  {
    QuantScoringOverride off(false);
    fp32 = head.Scores(instance);
  }
  {
    QuantScoringOverride on(true);
    quant = head.Scores(instance);
  }
  ASSERT_EQ(fp32.size(), quant.size()) << what;
  ASSERT_FALSE(fp32.empty()) << what;
  float max_abs = 0.f;
  for (float v : fp32) max_abs = std::max(max_abs, std::abs(v));
  const float tol = 0.05f * (1.f + max_abs);
  for (size_t i = 0; i < fp32.size(); ++i) {
    EXPECT_NEAR(quant[i], fp32[i], tol) << what << " score " << i;
  }
}

TEST(QuantScoringParity, ColumnType) {
  ColumnTypeDataset dataset = BuildColumnTypeDataset(Ctx());
  ASSERT_FALSE(dataset.valid.empty());
  auto model = FreshModel();
  TurlColumnTyper typer(model.get(), &Ctx(), &dataset, InputVariant::Full(),
                        31);
  ExpectQuantTracksFp32(typer, dataset.valid[0], "column_type");
}

TEST(QuantScoringParity, RelationExtraction) {
  RelationDataset dataset = BuildRelationDataset(Ctx());
  ASSERT_FALSE(dataset.valid.empty());
  auto model = FreshModel();
  TurlRelationExtractor extractor(model.get(), &Ctx(), &dataset,
                                  InputVariant::Full(), 31);
  ExpectQuantTracksFp32(extractor, dataset.valid[0], "relation_extraction");
}

TEST(QuantScoringParity, EntityLinking) {
  kb::LookupService lookup(&Ctx().world.kb);
  ElDataset test = BuildElDataset(Ctx(), lookup, Ctx().corpus.valid, 20,
                                  /*drop_unreachable=*/false, 50);
  auto model = FreshModel();
  TurlEntityLinker linker(model.get(), &Ctx(), {true, true}, 31);
  for (const ElInstance& inst : test.instances) {
    if (inst.candidates.size() < 2) continue;
    ExpectQuantTracksFp32(linker, inst, "entity_linking");
    return;
  }
  FAIL() << "no entity-linking instance with candidates";
}

TEST(QuantScoringParity, RowPopulation) {
  baselines::RowPopCandidateGenerator gen(Ctx().corpus, Ctx().corpus.train);
  auto test = BuildRowPopInstances(Ctx(), gen, Ctx().corpus.valid, 1, 6, 20);
  ASSERT_FALSE(test.empty());
  auto model = FreshModel();
  TurlRowPopulator populator(model.get(), &Ctx());
  ExpectQuantTracksFp32(populator, test[0], "row_population");
}

TEST(QuantScoringParity, CellFilling) {
  baselines::CellFillingIndex index(Ctx().corpus, Ctx().corpus.train);
  auto instances =
      BuildCellFillInstances(Ctx(), index, Ctx().corpus.valid, 3, 20);
  auto model = FreshModel();
  TurlCellFiller filler(model.get(), &Ctx());
  for (const CellFillInstance& inst : instances) {
    if (inst.candidates.empty()) continue;
    ExpectQuantTracksFp32(filler, inst, "cell_filling");
    return;
  }
  FAIL() << "no cell-filling instance with candidates";
}

TEST(QuantScoringParity, SchemaAugmentation) {
  HeaderVocab vocab = BuildHeaderVocab(Ctx());
  auto test = BuildSchemaAugInstances(Ctx(), vocab, Ctx().corpus.valid, 0, 20);
  ASSERT_FALSE(test.empty());
  auto model = FreshModel();
  TurlSchemaAugmenter augmenter(model.get(), &Ctx(), &vocab, 31);
  ExpectQuantTracksFp32(augmenter, test[0], "schema_augmentation");
}

TEST(QuantScoringParity, MlmLogitsMatchesFp32WithinEpsilon) {
  auto model = FreshModel();
  // Any encodable table does; use the first validation table's encoding.
  const core::TurlContext& ctx = Ctx();
  const text::WordPieceTokenizer tokenizer = ctx.MakeTokenizer();
  core::EncodedTable encoded =
      core::EncodeTable(ctx.corpus.tables[ctx.corpus.valid[0]], tokenizer,
                        ctx.entity_vocab);
  ASSERT_GT(encoded.num_tokens(), 0);
  nn::Tensor hidden = model->Encode(encoded, /*training=*/false);

  std::vector<float> fp32, quant;
  {
    QuantScoringOverride off(false);
    fp32 = model->MlmLogits(hidden, {0}, core::Scoring::kServe).ToVector();
  }
  {
    QuantScoringOverride on(true);
    quant = model->MlmLogits(hidden, {0}, core::Scoring::kServe).ToVector();
  }
  ASSERT_EQ(fp32.size(), quant.size());
  ASSERT_EQ(fp32.size(), static_cast<size_t>(model->word_vocab_size()));
  float max_abs = 0.f;
  for (float v : fp32) max_abs = std::max(max_abs, std::abs(v));
  const float tol = 0.05f * (1.f + max_abs);
  for (size_t i = 0; i < fp32.size(); ++i) {
    EXPECT_NEAR(quant[i], fp32[i], tol) << "mlm logit " << i;
  }
}

// Scoring::kTrain must never take the quant path even with the knob on:
// gradients flow through the fp32 logits tape.
TEST(QuantScoringParity, TrainScoringIgnoresKnob) {
  auto model = FreshModel();
  const core::TurlContext& ctx = Ctx();
  const text::WordPieceTokenizer tokenizer = ctx.MakeTokenizer();
  core::EncodedTable encoded =
      core::EncodeTable(ctx.corpus.tables[ctx.corpus.valid[0]], tokenizer,
                        ctx.entity_vocab);
  nn::Tensor hidden = model->Encode(encoded, /*training=*/false);

  std::vector<float> off_scores, on_scores;
  {
    QuantScoringOverride off(false);
    off_scores = model->MlmLogits(hidden, {0}).ToVector();
  }
  {
    QuantScoringOverride on(true);
    on_scores = model->MlmLogits(hidden, {0}).ToVector();
  }
  ASSERT_EQ(off_scores.size(), on_scores.size());
  for (size_t i = 0; i < off_scores.size(); ++i) {
    ASSERT_EQ(off_scores[i], on_scores[i]) << "logit " << i;
  }
}

// The stale-pack hazard: after weights change, an un-invalidated cache
// would keep scoring the old weights. Model invalidation hooks must make
// fresh quant scores follow the new weights.
TEST(QuantScoringParity, InvalidationFollowsWeightChange) {
  QuantScoringOverride on(true);
  auto model = FreshModel();
  const core::TurlContext& ctx = Ctx();
  const text::WordPieceTokenizer tokenizer = ctx.MakeTokenizer();
  core::EncodedTable encoded =
      core::EncodeTable(ctx.corpus.tables[ctx.corpus.valid[0]], tokenizer,
                        ctx.entity_vocab);
  nn::Tensor hidden = model->Encode(encoded, /*training=*/false);

  const std::vector<float> before =
      model->MlmLogits(hidden, {0}, core::Scoring::kServe).ToVector();

  // Perturb the word embedding in place (as an optimizer step would);
  // Tensor copies share storage, so this writes through to the parameter.
  nn::Tensor w = model->params()->Get("emb.word.weight");
  for (int64_t i = 0; i < w.numel(); ++i) w.data()[i] += 0.25f;
  model->InvalidateQuantizedScoring();

  const std::vector<float> after =
      model->MlmLogits(hidden, {0}, core::Scoring::kServe).ToVector();
  ASSERT_EQ(before.size(), after.size());
  int changed = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) ++changed;
  }
  EXPECT_GT(changed, 0) << "scores must track the new weights";
}

}  // namespace
}  // namespace tasks
}  // namespace turl
