// Tests for the TUBE task dataset builders: column typing, relation
// extraction, entity linking, row population, cell filling and schema
// augmentation, all over one shared synthetic context.

#include <algorithm>
#include <unordered_set>

#include "baselines/cell_filling.h"
#include "baselines/row_population.h"
#include "gtest/gtest.h"
#include "kb/lookup.h"
#include "tasks/cell_filling.h"
#include "tasks/column_type.h"
#include "tasks/entity_linking.h"
#include "tasks/relation_extraction.h"
#include "tasks/row_population.h"
#include "tasks/schema_augmentation.h"

namespace turl {
namespace tasks {
namespace {

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 500;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

// ---------------- Column typing ---------------------------------------------

TEST(ColumnTypeDatasetTest, LabelsComeFromKbTypes) {
  ColumnTypeDataset d = BuildColumnTypeDataset(Ctx());
  EXPECT_GT(d.num_labels(), 3);
  EXPECT_FALSE(d.train.empty());
  EXPECT_FALSE(d.valid.empty());
  EXPECT_FALSE(d.test.empty());
  for (const std::string& name : d.label_names) {
    EXPECT_NE(Ctx().world.kb.TypeByName(name), kb::kInvalidType) << name;
  }
}

TEST(ColumnTypeDatasetTest, InstancesHaveValidLabelsAndColumns) {
  ColumnTypeDataset d = BuildColumnTypeDataset(Ctx());
  for (const auto* split : {&d.train, &d.valid, &d.test}) {
    for (const ColumnTypeInstance& inst : *split) {
      ASSERT_LT(inst.table_index, Ctx().corpus.tables.size());
      const data::Table& t = Ctx().corpus.tables[inst.table_index];
      ASSERT_LT(inst.column, t.num_columns());
      EXPECT_TRUE(t.columns[size_t(inst.column)].is_entity_column);
      EXPECT_FALSE(inst.labels.empty());
      for (int l : inst.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, d.num_labels());
      }
    }
  }
}

TEST(ColumnTypeDatasetTest, GoldTypesHoldForMajorityOfLinkedEntities) {
  // Gold labels use majority voting over the (deliberately incomplete) KB
  // type assignments, so each label must hold for > half the linked cells.
  ColumnTypeDataset d = BuildColumnTypeDataset(Ctx());
  for (size_t i = 0; i < std::min<size_t>(d.train.size(), 30); ++i) {
    const ColumnTypeInstance& inst = d.train[i];
    const data::Column& col =
        Ctx().corpus.tables[inst.table_index].columns[size_t(inst.column)];
    for (int l : inst.labels) {
      const kb::TypeId type = d.label_types[size_t(l)];
      int linked = 0, holds = 0;
      for (const data::EntityCell& cell : col.cells) {
        if (!cell.linked()) continue;
        ++linked;
        holds += Ctx().world.kb.EntityHasType(cell.entity, type);
      }
      EXPECT_GT(2 * holds, linked);
    }
  }
}

TEST(ColumnTypeDatasetTest, HierarchyMakesMultiLabelInstances) {
  ColumnTypeDataset d = BuildColumnTypeDataset(Ctx());
  bool any_multi = false;
  for (const ColumnTypeInstance& inst : d.train) {
    any_multi |= inst.labels.size() > 1;  // e.g. pro_athlete + person.
  }
  EXPECT_TRUE(any_multi);
}

TEST(ColumnTypeDatasetTest, LabelOfResolvesNames) {
  ColumnTypeDataset d = BuildColumnTypeDataset(Ctx());
  EXPECT_GE(d.LabelOf("person"), 0);
  EXPECT_EQ(d.LabelOf("not a type"), -1);
}

// ---------------- Relation extraction ---------------------------------------

TEST(RelationDatasetTest, LabelsAreKbRelations) {
  RelationDataset d = BuildRelationDataset(Ctx());
  EXPECT_GT(d.num_labels(), 3);
  for (const std::string& name : d.label_names) {
    EXPECT_NE(Ctx().world.kb.RelationByName(name), kb::kInvalidRelation);
  }
}

TEST(RelationDatasetTest, InstancesMatchGroundTruthColumns) {
  RelationDataset d = BuildRelationDataset(Ctx());
  for (const auto* split : {&d.train, &d.valid, &d.test}) {
    ASSERT_FALSE(split->empty());
    for (const RelationInstance& inst : *split) {
      const data::Table& t = Ctx().corpus.tables[inst.table_index];
      ASSERT_GT(inst.object_column, 0);
      const data::Column& col = t.columns[size_t(inst.object_column)];
      EXPECT_TRUE(col.is_entity_column);
      EXPECT_EQ(d.label_names[size_t(inst.label)],
                Ctx().world.kb.relation(col.relation).name);
    }
  }
}

// ---------------- Entity linking --------------------------------------------

TEST(ElDatasetTest, CandidatesFromLookupAndGoldTracking) {
  kb::LookupService lookup(&Ctx().world.kb);
  ElDataset d = BuildElDataset(Ctx(), lookup, Ctx().corpus.valid, 50, false);
  ASSERT_FALSE(d.instances.empty());
  int reachable = 0;
  for (const ElInstance& inst : d.instances) {
    EXPECT_NE(inst.gold, kb::kInvalidEntity);
    reachable += std::find(inst.candidates.begin(), inst.candidates.end(),
                           inst.gold) != inst.candidates.end();
  }
  // Candidate generation is good but not perfect (typos, alias dropout).
  EXPECT_GT(reachable, int(d.instances.size()) / 2);
  EXPECT_LT(reachable, int(d.instances.size()));
  EXPECT_GT(d.gold_missing, 0);
}

TEST(ElDatasetTest, DropUnreachableFiltersTraining) {
  kb::LookupService lookup(&Ctx().world.kb);
  ElDataset kept = BuildElDataset(Ctx(), lookup, Ctx().corpus.valid, 50, false);
  ElDataset dropped =
      BuildElDataset(Ctx(), lookup, Ctx().corpus.valid, 50, true);
  EXPECT_LT(dropped.instances.size(), kept.instances.size());
  for (const ElInstance& inst : dropped.instances) {
    EXPECT_TRUE(std::find(inst.candidates.begin(), inst.candidates.end(),
                          inst.gold) != inst.candidates.end());
  }
}

TEST(ElDatasetTest, MaxInstancesCap) {
  kb::LookupService lookup(&Ctx().world.kb);
  ElDataset d = BuildElDataset(Ctx(), lookup, Ctx().corpus.valid, 50, false,
                               /*max_instances=*/25);
  EXPECT_EQ(d.instances.size(), 25u);
}

TEST(ElEvalTest, OracleBeatsTop1AndPrfArithmetic) {
  kb::LookupService lookup(&Ctx().world.kb);
  ElDataset d = BuildElDataset(Ctx(), lookup, Ctx().corpus.valid, 50, false,
                               300);
  // Top-1 baseline predictions.
  std::vector<kb::EntityId> top1;
  for (const ElInstance& inst : d.instances) {
    top1.push_back(inst.candidates.empty() ? kb::kInvalidEntity
                                           : inst.candidates[0]);
  }
  eval::Prf lookup_prf = EvaluateElPredictions(d, top1);
  eval::Prf oracle = EvaluateElOracle(d);
  EXPECT_GE(oracle.f1, lookup_prf.f1);
  EXPECT_GT(oracle.recall, 0.5);
  EXPECT_LE(oracle.recall, 1.0);
}

// ---------------- Row population --------------------------------------------

TEST(RowPopInstancesTest, SeedsAndGoldPartitionSubjects) {
  baselines::RowPopCandidateGenerator gen(Ctx().corpus, Ctx().corpus.train);
  auto instances =
      BuildRowPopInstances(Ctx(), gen, Ctx().corpus.valid, 1, 6, 40);
  ASSERT_FALSE(instances.empty());
  for (const RowPopInstance& inst : instances) {
    EXPECT_EQ(inst.seeds.size(), 1u);
    EXPECT_GE(inst.gold.size(), 5u);
    EXPECT_FALSE(inst.candidates.empty());
    for (kb::EntityId seed : inst.seeds) {
      EXPECT_TRUE(std::find(inst.candidates.begin(), inst.candidates.end(),
                            seed) == inst.candidates.end());
    }
  }
}

TEST(RowPopInstancesTest, ZeroSeedVariant) {
  baselines::RowPopCandidateGenerator gen(Ctx().corpus, Ctx().corpus.train);
  auto instances =
      BuildRowPopInstances(Ctx(), gen, Ctx().corpus.valid, 0, 6, 40);
  ASSERT_FALSE(instances.empty());
  for (const RowPopInstance& inst : instances) {
    EXPECT_TRUE(inst.seeds.empty());
  }
}

TEST(RowPopEvalTest, PerfectScoresGiveMapEqualRecall) {
  baselines::RowPopCandidateGenerator gen(Ctx().corpus, Ctx().corpus.train);
  auto instances =
      BuildRowPopInstances(Ctx(), gen, Ctx().corpus.valid, 1, 6, 20);
  ASSERT_FALSE(instances.empty());
  // Oracle scores: gold candidates get 1, others 0.
  std::vector<std::vector<double>> oracle, inverted;
  for (const RowPopInstance& inst : instances) {
    std::unordered_set<kb::EntityId> gold(inst.gold.begin(), inst.gold.end());
    std::vector<double> s;
    for (kb::EntityId e : inst.candidates) s.push_back(gold.count(e) ? 1 : 0);
    oracle.push_back(s);
    for (double& v : s) v = -v;
    inverted.push_back(s);
  }
  RowPopMetrics best = EvaluateRowPopScores(instances, oracle);
  RowPopMetrics worst = EvaluateRowPopScores(instances, inverted);
  EXPECT_NEAR(best.map, best.recall, 1e-9);  // All found gold ranked first.
  EXPECT_GT(best.map, worst.map);
  EXPECT_NEAR(best.recall, worst.recall, 1e-9);  // Recall ranking-invariant.
}

// ---------------- Cell filling ----------------------------------------------

TEST(CellFillInstancesTest, StructureAndStats) {
  baselines::CellFillingIndex index(Ctx().corpus, Ctx().corpus.train);
  auto instances =
      BuildCellFillInstances(Ctx(), index, Ctx().corpus.valid, 3, 200);
  ASSERT_FALSE(instances.empty());
  for (const CellFillInstance& inst : instances) {
    EXPECT_NE(inst.subject, kb::kInvalidEntity);
    EXPECT_NE(inst.gold, kb::kInvalidEntity);
    EXPECT_GT(inst.object_column, 0);
  }
  CellFillCandidateStats stats = ComputeCandidateStats(instances);
  EXPECT_GT(stats.recall, 0.5);
  EXPECT_GT(stats.avg_candidates, 1.0);
}

TEST(CellFillEvalTest, OracleScoresAceAllKs) {
  baselines::CellFillingIndex index(Ctx().corpus, Ctx().corpus.train);
  auto instances =
      BuildCellFillInstances(Ctx(), index, Ctx().corpus.valid, 3, 100);
  std::vector<std::vector<double>> oracle;
  for (const CellFillInstance& inst : instances) {
    std::vector<double> s;
    for (const auto& cand : inst.candidates) {
      s.push_back(cand.entity == inst.gold ? 1.0 : 0.0);
    }
    oracle.push_back(std::move(s));
  }
  CellFillResult r = EvaluateCellFilling(instances, oracle);
  EXPECT_GT(r.evaluated, 0);
  EXPECT_NEAR(r.p_at_1, 1.0, 1e-9);
  EXPECT_NEAR(r.p_at_10, 1.0, 1e-9);
}

TEST(CellFillEvalTest, PAtKMonotoneInK) {
  baselines::CellFillingIndex index(Ctx().corpus, Ctx().corpus.train);
  auto instances =
      BuildCellFillInstances(Ctx(), index, Ctx().corpus.valid, 3, 100);
  // Arbitrary deterministic scores.
  std::vector<std::vector<double>> scores;
  for (const CellFillInstance& inst : instances) {
    std::vector<double> s;
    for (size_t j = 0; j < inst.candidates.size(); ++j) {
      s.push_back(double((j * 7) % 5));
    }
    scores.push_back(std::move(s));
  }
  CellFillResult r = EvaluateCellFilling(instances, scores);
  EXPECT_LE(r.p_at_1, r.p_at_3);
  EXPECT_LE(r.p_at_3, r.p_at_5);
  EXPECT_LE(r.p_at_5, r.p_at_10);
}

// ---------------- Schema augmentation ----------------------------------------

TEST(HeaderVocabTest, NormalizedAndFrequent) {
  HeaderVocab vocab = BuildHeaderVocab(Ctx());
  EXPECT_GT(vocab.size(), 5);
  EXPECT_GE(vocab.Id("player"), 0);
  EXPECT_EQ(vocab.Id("zzz nope"), -1);
  // Ids resolve the normalized form.
  EXPECT_EQ(vocab.Id("Player"), vocab.Id("player"));
}

TEST(SchemaAugInstancesTest, SeedsAndGoldDisjoint) {
  HeaderVocab vocab = BuildHeaderVocab(Ctx());
  auto instances =
      BuildSchemaAugInstances(Ctx(), vocab, Ctx().corpus.valid, 1, 50);
  ASSERT_FALSE(instances.empty());
  for (const SchemaAugInstance& inst : instances) {
    ASSERT_EQ(inst.seed_headers.size(), 1u);
    EXPECT_FALSE(inst.gold_headers.empty());
    for (int g : inst.gold_headers) {
      EXPECT_NE(g, inst.seed_headers[0]);
      EXPECT_GE(g, 0);
      EXPECT_LT(g, vocab.size());
    }
  }
}

TEST(SchemaAugEvalTest, PerfectRankingGetsMapOne) {
  HeaderVocab vocab = BuildHeaderVocab(Ctx());
  auto instances =
      BuildSchemaAugInstances(Ctx(), vocab, Ctx().corpus.valid, 0, 20);
  ASSERT_FALSE(instances.empty());
  std::vector<std::vector<int>> rankings;
  for (const SchemaAugInstance& inst : instances) {
    rankings.push_back(inst.gold_headers);  // Gold first, nothing else.
  }
  EXPECT_NEAR(EvaluateSchemaAugmentation(instances, rankings), 1.0, 1e-9);
}

TEST(SchemaAugEvalTest, EmptyRankingGetsZero) {
  HeaderVocab vocab = BuildHeaderVocab(Ctx());
  auto instances =
      BuildSchemaAugInstances(Ctx(), vocab, Ctx().corpus.valid, 0, 20);
  std::vector<std::vector<int>> rankings(instances.size());
  EXPECT_EQ(EvaluateSchemaAugmentation(instances, rankings), 0.0);
}

}  // namespace
}  // namespace tasks
}  // namespace turl
