#include "util/status.h"

#include <sstream>

#include "gtest/gtest.h"

namespace turl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpers) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::NotFound("missing entity 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "missing entity 42");
  EXPECT_EQ(s.ToString(), "NotFound: missing entity 42");
}

TEST(StatusTest, OkCodeDropsMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::IoError("disk");
  EXPECT_EQ(os.str(), "IoError: disk");
}

TEST(StatusTest, CodeToString) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailsThroughMacro(bool fail) {
  TURL_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::NotFound("reached end");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThroughMacro(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsThroughMacro(false).code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("no");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

}  // namespace
}  // namespace turl
