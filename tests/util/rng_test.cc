#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "gtest/gtest.h"

namespace turl {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(13);
    EXPECT_LT(v, 13u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithMeanStddev) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(23);
  int first = 0, later = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Zipf(50, 1.1);
    EXPECT_LT(v, 50u);
    if (v == 0) ++first;
    if (v >= 25) ++later;
  }
  EXPECT_GT(first, later);
}

TEST(RngTest, DiscretePrefersHeavyWeights) {
  Rng rng(29);
  std::vector<double> w = {0.1, 0.0, 10.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) ++counts[rng.Discrete(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 10);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(33);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 42);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  auto s = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (size_t v : s) EXPECT_LT(v, 20u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(39);
  auto s = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementZero) {
  Rng rng(41);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(DiscreteDistributionTest, MatchesWeights) {
  Rng rng(43);
  DiscreteDistribution dist({1.0, 3.0, 0.0, 6.0});
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[dist.Sample(&rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / double(n), 0.6, 0.02);
}

TEST(DiscreteDistributionTest, SingleElement) {
  Rng rng(47);
  DiscreteDistribution dist({2.5});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dist.Sample(&rng), 0u);
}

TEST(ZipfWeightsTest, MonotoneDecreasing) {
  auto w = ZipfWeights(10, 1.0);
  ASSERT_EQ(w.size(), 10u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  for (size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
}

}  // namespace
}  // namespace turl
