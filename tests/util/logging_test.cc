#include "util/logging.h"

#include <gtest/gtest.h>

namespace turl {
namespace {

using internal_logging::LevelFromName;
using internal_logging::LogLevel;
using internal_logging::MinLogLevel;
using internal_logging::SetMinLogLevel;

/// Restores the verbosity threshold after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = MinLogLevel(); }
  void TearDown() override { SetMinLogLevel(saved_); }
  LogLevel saved_;
};

int Touch(int* evaluations) {
  ++*evaluations;
  return 42;
}

TEST_F(LoggingTest, BelowThresholdOperandsAreNotEvaluated) {
  SetMinLogLevel(LogLevel::kError);
  int evaluations = 0;
  TURL_LOG(Info) << "value " << Touch(&evaluations);
  TURL_LOG(Warning) << "value " << Touch(&evaluations);
  EXPECT_EQ(evaluations, 0);
  TURL_LOG(Error) << "value " << Touch(&evaluations);
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, IsOnTracksThreshold) {
  SetMinLogLevel(LogLevel::kInfo);
  EXPECT_TRUE(TURL_LOG_IS_ON(Info));
  EXPECT_TRUE(TURL_LOG_IS_ON(Error));
  SetMinLogLevel(LogLevel::kWarning);
  EXPECT_FALSE(TURL_LOG_IS_ON(Info));
  EXPECT_TRUE(TURL_LOG_IS_ON(Warning));
  // Fatal is the maximum level: no threshold can silence it.
  SetMinLogLevel(LogLevel::kFatal);
  EXPECT_TRUE(TURL_LOG_IS_ON(Fatal));
}

TEST_F(LoggingTest, ChecksFireRegardlessOfThreshold) {
  SetMinLogLevel(LogLevel::kFatal);
  EXPECT_DEATH(TURL_CHECK(false) << "boom", "Check failed");
  EXPECT_DEATH(TURL_CHECK_EQ(1, 2), "1 vs 2");
}

TEST_F(LoggingTest, PassingChecksDoNotLog) {
  SetMinLogLevel(LogLevel::kInfo);
  TURL_CHECK(true) << "never printed";
  TURL_CHECK_EQ(3, 3);
  TURL_CHECK_LE(1, 2);
}

TEST(LevelFromNameTest, ParsesNamesDigitsAndCase) {
  const LogLevel fb = LogLevel::kInfo;
  EXPECT_EQ(LevelFromName("INFO", fb), LogLevel::kInfo);
  EXPECT_EQ(LevelFromName("warning", fb), LogLevel::kWarning);
  EXPECT_EQ(LevelFromName("Warn", fb), LogLevel::kWarning);
  EXPECT_EQ(LevelFromName("ERROR", fb), LogLevel::kError);
  EXPECT_EQ(LevelFromName("fatal", fb), LogLevel::kFatal);
  EXPECT_EQ(LevelFromName("2", fb), LogLevel::kError);
  EXPECT_EQ(LevelFromName("bogus", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(LevelFromName("", LogLevel::kError), LogLevel::kError);
}

}  // namespace
}  // namespace turl
