#include "util/timer.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace turl {
namespace {

void SpinFor(double ms) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000)));
}

TEST(WallTimerTest, ElapsedIsMonotonic) {
  WallTimer timer;
  const double a = timer.ElapsedSeconds();
  SpinFor(1.0);
  const double b = timer.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GT(b, a);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3, 1.0);
}

TEST(WallTimerTest, LapMeasuresSinceLastLap) {
  WallTimer timer;
  SpinFor(5.0);
  const double lap1 = timer.LapMillis();
  EXPECT_GE(lap1, 4.0);  // sleep_for may overshoot, never undershoots.
  // The lap reference moved: an immediate second lap is (almost) empty.
  const double lap2 = timer.LapMillis();
  EXPECT_LT(lap2, lap1);
  EXPECT_GE(lap2, 0.0);
}

TEST(WallTimerTest, LapsPartitionElapsedTime) {
  WallTimer timer;
  double lap_sum = 0.0;
  for (int i = 0; i < 3; ++i) {
    SpinFor(2.0);
    lap_sum += timer.LapMillis();
  }
  const double open_lap = timer.LapMillis();
  EXPECT_LE(lap_sum, timer.ElapsedMillis());
  EXPECT_NEAR(lap_sum + open_lap, timer.ElapsedMillis(), 2.0);
}

TEST(WallTimerTest, RestartResetsBothReferencePoints) {
  WallTimer timer;
  SpinFor(5.0);
  timer.Restart();
  EXPECT_LT(timer.ElapsedMillis(), 5.0);
  EXPECT_LT(timer.LapMillis(), 5.0);
}

}  // namespace
}  // namespace turl
