#include "util/serialize.h"

#include <cstdio>

#include "gtest/gtest.h"

namespace turl {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTripScalars) {
  const std::string path = TempPath("scalars.bin");
  {
    BinaryWriter w(path);
    w.WriteU32(42);
    w.WriteU64(1ull << 40);
    w.WriteI64(-77);
    w.WriteFloat(1.5f);
    w.WriteDouble(-2.25);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.ReadU32(), 42u);
  EXPECT_EQ(r.ReadU64(), 1ull << 40);
  EXPECT_EQ(r.ReadI64(), -77);
  EXPECT_EQ(r.ReadFloat(), 1.5f);
  EXPECT_EQ(r.ReadDouble(), -2.25);
  EXPECT_TRUE(r.status().ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, RoundTripStringsAndVectors) {
  const std::string path = TempPath("vectors.bin");
  std::vector<float> fv = {1.f, -2.f, 3.5f};
  std::vector<uint32_t> uv = {9, 8, 7};
  std::vector<std::string> sv = {"caption", "", "header col"};
  {
    BinaryWriter w(path);
    w.WriteString("hello");
    w.WriteFloatVector(fv);
    w.WriteU32Vector(uv);
    w.WriteStringVector(sv);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadFloatVector(), fv);
  EXPECT_EQ(r.ReadU32Vector(), uv);
  EXPECT_EQ(r.ReadStringVector(), sv);
  EXPECT_TRUE(r.status().ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, EmptyVectors) {
  const std::string path = TempPath("empty.bin");
  {
    BinaryWriter w(path);
    w.WriteFloatVector({});
    w.WriteStringVector({});
    w.WriteString("");
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  EXPECT_TRUE(r.ReadFloatVector().empty());
  EXPECT_TRUE(r.ReadStringVector().empty());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_TRUE(r.status().ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, ShortReadSetsError) {
  const std::string path = TempPath("short.bin");
  {
    BinaryWriter w(path);
    w.WriteU32(1);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.ReadU32(), 1u);
  (void)r.ReadU64();  // Past EOF.
  EXPECT_FALSE(r.status().ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsError) {
  BinaryReader r("/nonexistent/dir/file.bin");
  EXPECT_FALSE(r.status().ok());
}

TEST(SerializeTest, UnwritablePathIsError) {
  BinaryWriter w("/nonexistent/dir/file.bin");
  EXPECT_FALSE(w.status().ok());
}

TEST(SerializeTest, CorruptLengthRejected) {
  const std::string path = TempPath("corrupt.bin");
  {
    BinaryWriter w(path);
    w.WriteU64(~0ull);  // Absurd string length.
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  (void)r.ReadString();
  EXPECT_FALSE(r.status().ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, RemainingTracksReadCursor) {
  const std::string path = TempPath("remaining.bin");
  {
    BinaryWriter w(path);
    w.WriteU32(1);
    w.WriteU64(2);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.remaining(), 12u);
  (void)r.ReadU32();
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.ReadU64();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.status().ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, HugeClaimedLengthsFailFastWithoutAllocating) {
  // A corrupt length prefix claiming ~2^64 elements must be rejected against
  // the stat'd file size before any allocation happens — for every
  // length-prefixed type.
  const std::string path = TempPath("huge_len.bin");
  {
    BinaryWriter w(path);
    w.WriteU64(~0ull);
    ASSERT_TRUE(w.Close().ok());
  }
  {
    BinaryReader r(path);
    EXPECT_TRUE(r.ReadFloatVector().empty());
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  }
  {
    BinaryReader r(path);
    EXPECT_TRUE(r.ReadU32Vector().empty());
    EXPECT_FALSE(r.status().ok());
  }
  {
    BinaryReader r(path);
    EXPECT_TRUE(r.ReadStringVector().empty());
    EXPECT_FALSE(r.status().ok());
  }
  {
    BinaryReader r(path);
    EXPECT_EQ(r.ReadString(), "");
    EXPECT_FALSE(r.status().ok());
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, PlausibleButOversizedLengthStillRejected) {
  // Not absurd (no overflow games), just bigger than the file: 1000 floats
  // claimed, 4 bytes present.
  const std::string path = TempPath("oversized.bin");
  {
    BinaryWriter w(path);
    w.WriteU64(1000);
    w.WriteFloat(1.f);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  EXPECT_TRUE(r.ReadFloatVector().empty());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

int g_hook_calls = 0;
std::string g_hook_path;
void RecordUncheckedError(const std::string& path) {
  ++g_hook_calls;
  g_hook_path = path;
}

TEST(SerializeTest, UncheckedWriteErrorFiresHookOnDestruction) {
  UncheckedWriteErrorHook old = SetUncheckedWriteErrorHook(RecordUncheckedError);
  g_hook_calls = 0;
  g_hook_path.clear();
  {
    BinaryWriter w("/nonexistent/dir/file.bin");
    w.WriteU32(1);  // Error accumulates; nobody calls Close().
  }
  EXPECT_EQ(g_hook_calls, 1);
  EXPECT_EQ(g_hook_path, "/nonexistent/dir/file.bin");
  SetUncheckedWriteErrorHook(old);
}

TEST(SerializeTest, CheckedErrorAndCleanCloseDoNotFireHook) {
  UncheckedWriteErrorHook old = SetUncheckedWriteErrorHook(RecordUncheckedError);
  g_hook_calls = 0;
  {
    // The error was surfaced through Close(): the caller had its chance.
    BinaryWriter w("/nonexistent/dir/file.bin");
    w.WriteU32(1);
    EXPECT_FALSE(w.Close().ok());
  }
  {
    const std::string path = TempPath("clean_close.bin");
    BinaryWriter w(path);
    w.WriteU32(1);
    EXPECT_TRUE(w.Close().ok());
    std::remove(path.c_str());
  }
  EXPECT_EQ(g_hook_calls, 0);
  SetUncheckedWriteErrorHook(old);
}

TEST(FileExistsTest, Basic) {
  const std::string path = TempPath("exists.bin");
  EXPECT_FALSE(FileExists(path));
  {
    BinaryWriter w(path);
    w.WriteU32(0);
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_TRUE(FileExists(path));
  std::remove(path.c_str());
  EXPECT_FALSE(FileExists(path));
}

TEST(MakeDirsTest, CreatesNestedAndIsIdempotent) {
  const std::string dir = TempPath("a/b/c");
  EXPECT_TRUE(MakeDirs(dir).ok());
  EXPECT_TRUE(MakeDirs(dir).ok());
  const std::string file = dir + "/f.bin";
  BinaryWriter w(file);
  w.WriteU32(5);
  EXPECT_TRUE(w.Close().ok());
  std::remove(file.c_str());
}

TEST(MakeDirsTest, EmptyPathRejected) {
  EXPECT_FALSE(MakeDirs("").ok());
}

}  // namespace
}  // namespace turl
