#include "util/string_util.h"

#include "gtest/gtest.h"

namespace turl {
namespace {

TEST(SplitStringTest, Basic) {
  auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, DropsEmptyPieces) {
  auto parts = SplitString(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(SplitStringTest, EmptyInput) {
  EXPECT_TRUE(SplitString("", ',').empty());
}

TEST(SplitWhitespaceTest, MixedWhitespace) {
  auto parts = SplitWhitespace("  hello\tworld \n foo ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[1], "world");
  EXPECT_EQ(parts[2], "foo");
}

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(SplitJoinTest, RoundTrip) {
  std::string s = "year club goals";
  EXPECT_EQ(JoinStrings(SplitWhitespace(s), " "), s);
}

TEST(ToLowerAsciiTest, Basic) {
  EXPECT_EQ(ToLowerAscii("Hello World 42!"), "hello world 42!");
}

TEST(StripAsciiTest, Basic) {
  EXPECT_EQ(StripAscii("  x y  "), "x y");
  EXPECT_EQ(StripAscii("\t\n"), "");
  EXPECT_EQ(StripAscii("abc"), "abc");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(EditDistanceTest, Identical) { EXPECT_EQ(EditDistance("abc", "abc"), 0u); }

TEST(EditDistanceTest, Classic) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
}

TEST(EditDistanceTest, EmptyStrings) {
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", ""), 0u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("satyajit", "satyajlt"),
            EditDistance("satyajlt", "satyajit"));
}

TEST(NormalizeSurfaceTest, LowercasesAndCollapses) {
  EXPECT_EQ(NormalizeSurface("  Satyajit   Ray "), "satyajit ray");
  EXPECT_EQ(NormalizeSurface("St. Louis, MO"), "st louis mo");
  EXPECT_EQ(NormalizeSurface("ABC-DEF"), "abc def");
}

TEST(NormalizeSurfaceTest, Empty) {
  EXPECT_EQ(NormalizeSurface(""), "");
  EXPECT_EQ(NormalizeSurface("   "), "");
  EXPECT_EQ(NormalizeSurface("..."), "");
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace turl
