#include "util/math_util.h"

#include <cmath>

#include "gtest/gtest.h"

namespace turl {
namespace {

TEST(SoftmaxTest, SumsToOne) {
  std::vector<float> v = {1.f, 2.f, 3.f};
  SoftmaxInPlace(&v);
  float sum = v[0] + v[1] + v[2];
  EXPECT_NEAR(sum, 1.f, 1e-5f);
  EXPECT_GT(v[2], v[1]);
  EXPECT_GT(v[1], v[0]);
}

TEST(SoftmaxTest, StableForLargeInputs) {
  std::vector<float> v = {1000.f, 1000.f};
  SoftmaxInPlace(&v);
  EXPECT_NEAR(v[0], 0.5f, 1e-5f);
  EXPECT_NEAR(v[1], 0.5f, 1e-5f);
}

TEST(SoftmaxTest, EmptyIsNoop) {
  std::vector<float> v;
  SoftmaxInPlace(&v);
  EXPECT_TRUE(v.empty());
}

TEST(LogSumExpTest, MatchesDirectComputation) {
  std::vector<float> v = {0.5f, -1.f, 2.f};
  float direct = std::log(std::exp(0.5f) + std::exp(-1.f) + std::exp(2.f));
  EXPECT_NEAR(LogSumExp(v), direct, 1e-5f);
}

TEST(LogSumExpTest, StableForLargeInputs) {
  std::vector<float> v = {500.f, 500.f};
  EXPECT_NEAR(LogSumExp(v), 500.f + std::log(2.f), 1e-3f);
}

TEST(DotTest, Basic) {
  EXPECT_FLOAT_EQ(Dot({1.f, 2.f, 3.f}, {4.f, 5.f, 6.f}), 32.f);
  EXPECT_FLOAT_EQ(Dot(std::vector<float>{}, std::vector<float>{}), 0.f);
}

TEST(L2NormTest, Basic) {
  float v[] = {3.f, 4.f};
  EXPECT_FLOAT_EQ(L2Norm(v, 2), 5.f);
}

TEST(CosineSimilarityTest, ParallelAndOrthogonal) {
  EXPECT_NEAR(CosineSimilarity({1.f, 0.f}, {2.f, 0.f}), 1.f, 1e-6f);
  EXPECT_NEAR(CosineSimilarity({1.f, 0.f}, {0.f, 1.f}), 0.f, 1e-6f);
  EXPECT_NEAR(CosineSimilarity({1.f, 0.f}, {-1.f, 0.f}), -1.f, 1e-6f);
}

TEST(CosineSimilarityTest, ZeroVectorYieldsZero) {
  EXPECT_FLOAT_EQ(CosineSimilarity({0.f, 0.f}, {1.f, 2.f}), 0.f);
}

TEST(ArgMaxTest, FirstOnTies) {
  EXPECT_EQ(ArgMax({1.f, 5.f, 5.f, 2.f}), 1u);
  EXPECT_EQ(ArgMax({7.f}), 0u);
}

TEST(TopKTest, OrderedByValue) {
  auto idx = TopK({0.1f, 0.9f, 0.5f, 0.7f}, 3);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 3u);
  EXPECT_EQ(idx[2], 2u);
}

TEST(TopKTest, ClampsK) {
  auto idx = TopK({1.f, 2.f}, 10);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(TopKTest, TiesBrokenByLowerIndex) {
  auto idx = TopK({3.f, 3.f, 3.f}, 2);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 1u);
}

TEST(MeanMedianTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.0);  // Lower median.
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

}  // namespace
}  // namespace turl
