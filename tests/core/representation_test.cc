#include "core/representation.h"

#include "gtest/gtest.h"

namespace turl {
namespace core {
namespace {

const TurlContext& Ctx() {
  static TurlContext* ctx = [] {
    ContextConfig config;
    config.corpus.num_tables = 300;
    config.seed = 42;
    return new TurlContext(BuildContext(config));
  }();
  return *ctx;
}

const TurlModel& Model() {
  static TurlModel* model = [] {
    TurlConfig config;
    config.num_layers = 1;
    config.d_model = 32;
    config.d_intermediate = 64;
    config.num_heads = 2;
    return new TurlModel(config, Ctx().vocab.size(),
                         Ctx().entity_vocab.size(), 1);
  }();
  return *model;
}

TEST(RepresentationTest, ShapesMatchTable) {
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  TableRepresentation rep = ExtractRepresentation(Model(), Ctx(), t);
  EXPECT_EQ(rep.d_model, 32);
  EXPECT_FALSE(rep.token_vectors.empty());
  EXPECT_EQ(rep.token_vectors.size(), rep.tokens.size());
  for (const auto& v : rep.token_vectors) EXPECT_EQ(v.size(), 32u);
  EXPECT_EQ(rep.entity_vectors.size(), rep.entity_rows.size());
  EXPECT_EQ(rep.entity_vectors.size(), rep.entity_kb_ids.size());
  EXPECT_EQ(rep.column_vectors.size(), size_t(t.num_columns()));
  for (const auto& v : rep.column_vectors) EXPECT_EQ(v.size(), 64u);
}

TEST(RepresentationTest, Deterministic) {
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  TableRepresentation a = ExtractRepresentation(Model(), Ctx(), t);
  TableRepresentation b = ExtractRepresentation(Model(), Ctx(), t);
  ASSERT_EQ(a.entity_vectors.size(), b.entity_vectors.size());
  for (size_t i = 0; i < a.entity_vectors.size(); ++i) {
    EXPECT_EQ(a.entity_vectors[i], b.entity_vectors[i]);
  }
}

TEST(RepresentationTest, EntityVectorAtFindsCells) {
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  TableRepresentation rep = ExtractRepresentation(Model(), Ctx(), t);
  ASSERT_FALSE(rep.entity_vectors.empty());
  // The first non-topic entity is cell (0, 0).
  std::vector<float> v = EntityVectorAt(rep, 0, 0);
  EXPECT_EQ(v.size(), 32u);
  EXPECT_TRUE(EntityVectorAt(rep, 9999, 0).empty());
}

TEST(RepresentationTest, ContextualizationDiffersAcrossCells) {
  // Two different cells must not collapse to one vector.
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  TableRepresentation rep = ExtractRepresentation(Model(), Ctx(), t);
  ASSERT_GE(rep.entity_vectors.size(), 2u);
  float max_diff = 0;
  for (size_t j = 0; j < rep.entity_vectors[0].size(); ++j) {
    max_diff = std::max(max_diff, std::abs(rep.entity_vectors[0][j] -
                                           rep.entity_vectors[1][j]));
  }
  EXPECT_GT(max_diff, 1e-5f);
}

TEST(RepresentationTest, SimilarityHelpers) {
  std::vector<float> a = {1.f, 0.f}, b = {2.f, 0.f}, c = {0.f, 1.f};
  EXPECT_NEAR(RepresentationSimilarity(a, b), 1.f, 1e-6f);
  EXPECT_NEAR(RepresentationSimilarity(a, c), 0.f, 1e-6f);
  EXPECT_EQ(RepresentationSimilarity(a, {}), 0.f);
  EXPECT_EQ(RepresentationSimilarity({}, {}), 0.f);
  EXPECT_EQ(RepresentationSimilarity(a, {1.f, 2.f, 3.f}), 0.f);
}

TEST(RepresentationTest, MetadataOnlyOption) {
  const data::Table& t = Ctx().corpus.tables[Ctx().corpus.valid[0]];
  EncodeOptions opts;
  opts.include_entities = false;
  opts.include_topic_entity = false;
  TableRepresentation rep = ExtractRepresentation(Model(), Ctx(), t, opts);
  EXPECT_TRUE(rep.entity_vectors.empty());
  EXPECT_FALSE(rep.token_vectors.empty());
  // Column vectors still exist, entity halves are zero.
  ASSERT_FALSE(rep.column_vectors.empty());
  for (const auto& col : rep.column_vectors) {
    for (size_t j = 32; j < 64; ++j) EXPECT_EQ(col[j], 0.f);
  }
}

TEST(RepresentationTest, EmptyTableSafe) {
  data::Table empty;
  TableRepresentation rep = ExtractRepresentation(Model(), Ctx(), empty);
  EXPECT_TRUE(rep.token_vectors.empty() && rep.entity_vectors.empty());
}

}  // namespace
}  // namespace core
}  // namespace turl
