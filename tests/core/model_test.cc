// Tests for the TURL model: shapes, ablation behaviours, gradient flow,
// the MLM/MER heads, checkpointing, and a small end-to-end pre-training run
// that must improve validation accuracy (the system's core claim).

#include "core/model.h"

#include "core/model_cache.h"
#include "core/pretrain.h"
#include "gtest/gtest.h"
#include <cstdio>

#include "nn/checkpoint.h"

namespace turl {
namespace core {
namespace {

const TurlContext& Ctx() {
  static TurlContext* ctx = [] {
    ContextConfig config;
    config.corpus.num_tables = 300;
    config.seed = 42;
    return new TurlContext(BuildContext(config));
  }();
  return *ctx;
}

TurlConfig SmallConfig() {
  TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

EncodedTable EncodeTrainTable(size_t i = 0) {
  const text::WordPieceTokenizer tok = Ctx().MakeTokenizer();
  return EncodeTable(Ctx().corpus.tables[Ctx().corpus.train[i]], tok,
                     Ctx().entity_vocab);
}

TEST(TurlModelTest, EncodeShape) {
  TurlModel model(SmallConfig(), Ctx().vocab.size(),
                  Ctx().entity_vocab.size(), 1);
  EncodedTable e = EncodeTrainTable();
  Rng rng(0);
  nn::Tensor hidden = model.Encode(e, false, &rng);
  EXPECT_EQ(hidden.dim(0), e.total());
  EXPECT_EQ(hidden.dim(1), SmallConfig().d_model);
}

TEST(TurlModelTest, EncodeTokensOnlyAndEntitiesOnly) {
  TurlModel model(SmallConfig(), Ctx().vocab.size(),
                  Ctx().entity_vocab.size(), 1);
  const text::WordPieceTokenizer tok = Ctx().MakeTokenizer();
  Rng rng(0);

  EncodeOptions meta_only;
  meta_only.include_entities = false;
  meta_only.include_topic_entity = false;
  EncodedTable m = EncodeTable(Ctx().corpus.tables[Ctx().corpus.train[0]],
                               tok, Ctx().entity_vocab, meta_only);
  EXPECT_EQ(model.Encode(m, false, &rng).dim(0), m.num_tokens());

  EncodeOptions ents_only;
  ents_only.include_metadata = false;
  EncodedTable e = EncodeTable(Ctx().corpus.tables[Ctx().corpus.train[0]],
                               tok, Ctx().entity_vocab, ents_only);
  EXPECT_EQ(model.Encode(e, false, &rng).dim(0), e.num_entities());
}

TEST(TurlModelTest, EvalDeterministic) {
  TurlModel model(SmallConfig(), Ctx().vocab.size(),
                  Ctx().entity_vocab.size(), 1);
  EncodedTable e = EncodeTrainTable();
  Rng rng(0);
  nn::Tensor a = model.Encode(e, false, &rng);
  nn::Tensor b = model.Encode(e, false, &rng);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a.at(i), b.at(i));
}

TEST(TurlModelTest, SameSeedSameInit) {
  TurlModel a(SmallConfig(), Ctx().vocab.size(), Ctx().entity_vocab.size(), 9);
  TurlModel b(SmallConfig(), Ctx().vocab.size(), Ctx().entity_vocab.size(), 9);
  EXPECT_EQ(a.params()->TotalParameters(), b.params()->TotalParameters());
  const nn::Tensor wa = a.word_embedding().weight();
  const nn::Tensor wb = b.word_embedding().weight();
  for (int64_t i = 0; i < std::min<int64_t>(wa.numel(), 200); ++i) {
    EXPECT_FLOAT_EQ(wa.at(i), wb.at(i));
  }
}

TEST(TurlModelTest, VisibilityMatrixChangesOutput) {
  TurlConfig vis_config = SmallConfig();
  TurlConfig novis_config = SmallConfig();
  novis_config.use_visibility_matrix = false;
  TurlModel vis(vis_config, Ctx().vocab.size(), Ctx().entity_vocab.size(), 1);
  TurlModel novis(novis_config, Ctx().vocab.size(),
                  Ctx().entity_vocab.size(), 1);
  EncodedTable e = EncodeTrainTable();
  Rng rng(0);
  nn::Tensor a = vis.Encode(e, false, &rng);
  nn::Tensor b = novis.Encode(e, false, &rng);
  // Same init (same seed), different masks -> different outputs.
  int diffs = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    diffs += std::abs(a.at(i) - b.at(i)) > 1e-6f;
  }
  EXPECT_GT(diffs, 0);
}

TEST(TurlModelTest, MlmLogitsShape) {
  TurlModel model(SmallConfig(), Ctx().vocab.size(),
                  Ctx().entity_vocab.size(), 1);
  EncodedTable e = EncodeTrainTable();
  ASSERT_GT(e.num_tokens(), 2);
  Rng rng(0);
  nn::Tensor hidden = model.Encode(e, false, &rng);
  nn::Tensor logits = model.MlmLogits(hidden, {0, 1});
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), Ctx().vocab.size());
}

TEST(TurlModelTest, MerLogitsShape) {
  TurlModel model(SmallConfig(), Ctx().vocab.size(),
                  Ctx().entity_vocab.size(), 1);
  EncodedTable e = EncodeTrainTable();
  ASSERT_GT(e.num_entities(), 0);
  Rng rng(0);
  nn::Tensor hidden = model.Encode(e, false, &rng);
  std::vector<int> candidates = {2, 3, 4, 5};
  nn::Tensor logits = model.MerLogits(
      hidden, {TurlModel::EntityHiddenRow(e, 0)}, candidates);
  EXPECT_EQ(logits.dim(0), 1);
  EXPECT_EQ(logits.dim(1), 4);
}

TEST(TurlModelTest, GradientsFlowToAllParameterGroups) {
  TurlModel model(SmallConfig(), Ctx().vocab.size(),
                  Ctx().entity_vocab.size(), 1);
  EncodedTable e = EncodeTrainTable();
  Rng rng(0);
  model.params()->ZeroGrad();
  nn::Tensor hidden = model.Encode(e, true, &rng);
  nn::Tensor loss = nn::SumAll(hidden);
  loss.Backward();
  for (const char* name :
       {"emb.word.weight", "emb.entity.weight", "emb.role.weight",
        "emb.fuse.weight", "encoder.layer0.attn.wq.weight",
        "encoder.layer0.ff.fc1.weight", "emb.norm.gamma"}) {
    nn::Tensor p = model.params()->Get(name);
    double sum = 0;
    for (float g : p.grad_vector()) sum += std::abs(g);
    EXPECT_GT(sum, 0.0) << name;
  }
}

TEST(TurlModelTest, CheckpointRoundTripThroughCache) {
  const std::string dir = ::testing::TempDir() + "/turl_cache_test";
  TurlConfig config = SmallConfig();
  config.pretrain_epochs = 1;
  // TempDir persists between runs; clear any stale checkpoint first.
  std::remove((dir + "/" + config.CacheTag() + ".ckpt").c_str());
  TurlModel model(config, Ctx().vocab.size(), Ctx().entity_vocab.size(), 1);
  Pretrainer::Options opts;
  opts.epochs = 1;
  opts.max_train_tables = 20;
  opts.max_eval_tables = 5;
  PretrainResult first = GetOrTrainModel(&model, Ctx(), opts, dir);
  EXPECT_GT(first.steps, 0);

  TurlModel reloaded(config, Ctx().vocab.size(), Ctx().entity_vocab.size(),
                     99);  // Different init seed.
  PretrainResult second = GetOrTrainModel(&reloaded, Ctx(), opts, dir);
  EXPECT_EQ(second.steps, 0);  // Loaded from cache, no training.
  const nn::Tensor wa = model.word_embedding().weight();
  const nn::Tensor wb = reloaded.word_embedding().weight();
  for (int64_t i = 0; i < std::min<int64_t>(wa.numel(), 200); ++i) {
    EXPECT_FLOAT_EQ(wa.at(i), wb.at(i));
  }
}

TEST(PretrainerTest, LossDecreasesAndAccuracyImproves) {
  TurlConfig config = SmallConfig();
  config.learning_rate = 1e-3f;
  TurlModel model(config, Ctx().vocab.size(), Ctx().entity_vocab.size(), 1);
  Pretrainer pretrainer(&model, &Ctx());

  Rng eval_rng(100);
  const double acc_before =
      pretrainer.EvaluateObjectPrediction(30, 2, &eval_rng);

  Pretrainer::Options opts;
  opts.epochs = 6;
  opts.max_train_tables = 200;
  opts.max_eval_tables = 30;
  opts.max_eval_cells_per_table = 2;
  PretrainResult result = pretrainer.Train(opts);
  // A handful of tables may yield no masked targets and are skipped.
  EXPECT_GE(result.steps, 6 * 200 - 20);
  EXPECT_LE(result.steps, 6 * 200);
  EXPECT_GT(result.final_accuracy, acc_before + 0.03)
      << "pre-training must beat the untrained model";
  EXPECT_LT(result.final_loss, 12.0);
}

TEST(PretrainerTest, EvalCurveRecorded) {
  TurlConfig config = SmallConfig();
  TurlModel model(config, Ctx().vocab.size(), Ctx().entity_vocab.size(), 1);
  Pretrainer pretrainer(&model, &Ctx());
  Pretrainer::Options opts;
  opts.epochs = 1;
  opts.max_train_tables = 60;
  opts.eval_every = 20;
  opts.max_eval_tables = 10;
  PretrainResult result = pretrainer.Train(opts);
  // 3 periodic evals + the final one.
  EXPECT_EQ(result.eval_curve.size(), 4u);
  EXPECT_EQ(result.eval_curve[0].first, 20);
  EXPECT_EQ(result.eval_curve.back().first, 60);
}

}  // namespace
}  // namespace core
}  // namespace turl
