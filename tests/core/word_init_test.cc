#include "core/word_init.h"

#include "gtest/gtest.h"
#include "util/math_util.h"

namespace turl {
namespace core {
namespace {

const TurlContext& Ctx() {
  static TurlContext* ctx = [] {
    ContextConfig config;
    config.corpus.num_tables = 250;
    config.seed = 42;
    return new TurlContext(BuildContext(config));
  }();
  return *ctx;
}

TurlConfig SmallConfig() {
  TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

TEST(WordInitTest, ReplacesWholeWordRows) {
  TurlModel model(SmallConfig(), Ctx().vocab.size(),
                  Ctx().entity_vocab.size(), 1);
  const std::vector<float> before =
      model.params()->Get("emb.word.weight").ToVector();
  Rng rng(3);
  baselines::Word2VecConfig config;
  config.epochs = 2;
  const int replaced = InitializeFromWord2Vec(&model, Ctx(), config, &rng);
  EXPECT_GT(replaced, 50);
  const std::vector<float> after =
      model.params()->Get("emb.word.weight").ToVector();
  int changed = 0;
  for (size_t i = 0; i < before.size(); ++i) changed += before[i] != after[i];
  EXPECT_GT(changed, replaced);  // At least d entries per replaced row.
}

TEST(WordInitTest, SpecialAndSubwordRowsUntouched) {
  TurlModel model(SmallConfig(), Ctx().vocab.size(),
                  Ctx().entity_vocab.size(), 1);
  const int64_t d = 32;
  nn::Tensor weight = model.params()->Get("emb.word.weight");
  std::vector<float> mask_row_before(
      weight.data() + int64_t(text::kMaskId) * d,
      weight.data() + int64_t(text::kMaskId + 1) * d);
  // Find a subword row.
  int subword_id = -1;
  for (int id = 0; id < Ctx().vocab.size(); ++id) {
    const std::string& tok = Ctx().vocab.Token(id);
    if (tok.rfind("##", 0) == 0) {
      subword_id = id;
      break;
    }
  }
  ASSERT_GE(subword_id, 0);
  std::vector<float> sub_before(weight.data() + int64_t(subword_id) * d,
                                weight.data() + int64_t(subword_id + 1) * d);
  Rng rng(4);
  baselines::Word2VecConfig config;
  config.epochs = 1;
  InitializeFromWord2Vec(&model, Ctx(), config, &rng);
  for (int64_t j = 0; j < d; ++j) {
    EXPECT_EQ(weight.data()[int64_t(text::kMaskId) * d + j],
              mask_row_before[size_t(j)]);
    EXPECT_EQ(weight.data()[int64_t(subword_id) * d + j],
              sub_before[size_t(j)]);
  }
}

TEST(WordInitTest, EntityRowsBecomeNameAverages) {
  TurlModel model(SmallConfig(), Ctx().vocab.size(),
                  Ctx().entity_vocab.size(), 1);
  Rng rng(5);
  baselines::Word2VecConfig config;
  config.epochs = 1;
  InitializeFromWord2Vec(&model, Ctx(), config, &rng);
  const int64_t d = 32;
  nn::Tensor words = model.params()->Get("emb.word.weight");
  nn::Tensor ents = model.params()->Get("emb.entity.weight");
  const text::WordPieceTokenizer tok = Ctx().MakeTokenizer();
  // Check a handful of entity rows equal the mean of their name tokens.
  int checked = 0;
  for (int eid = data::EntityVocab::kNumSpecial;
       eid < Ctx().entity_vocab.size() && checked < 5; ++eid) {
    const kb::EntityId kb_id = Ctx().entity_vocab.KbId(eid);
    std::vector<int> ids = tok.Encode(Ctx().world.kb.entity(kb_id).name);
    if (ids.empty()) continue;
    for (int64_t j = 0; j < d; ++j) {
      float mean = 0;
      for (int t : ids) mean += words.data()[int64_t(t) * d + j];
      mean /= float(ids.size());
      ASSERT_NEAR(ents.data()[int64_t(eid) * d + j], mean, 1e-5f);
    }
    ++checked;
  }
  EXPECT_EQ(checked, 5);
}

TEST(WordInitTest, CooccurringWordsEndUpCloser) {
  TurlModel model(SmallConfig(), Ctx().vocab.size(),
                  Ctx().entity_vocab.size(), 1);
  Rng rng(6);
  baselines::Word2VecConfig config;
  config.epochs = 8;
  baselines::Word2Vec w2v = TrainCorpusWord2Vec(Ctx(), config, &rng);
  // "season" and "squad" co-occur in roster captions; "season" and
  // "discography" never do.
  if (w2v.Contains("season") && w2v.Contains("squad") &&
      w2v.Contains("discography")) {
    EXPECT_GT(w2v.Similarity("season", "squad"),
              w2v.Similarity("season", "discography"));
  }
}

}  // namespace
}  // namespace core
}  // namespace turl
