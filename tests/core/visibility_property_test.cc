// Property sweep: the §4.3 visibility rules hold on arbitrary generated
// tables, across corpus seeds — symmetry, reflexivity, caption/topic
// totality, and the "no cross row+column entity visibility" exclusion.

#include "core/context.h"
#include "core/visibility.h"
#include "gtest/gtest.h"

namespace turl {
namespace core {
namespace {

class VisibilityPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VisibilityPropertySweep, InvariantsHoldOnGeneratedTables) {
  ContextConfig config;
  config.corpus.num_tables = 40;
  config.seed = GetParam();
  TurlContext ctx = BuildContext(config);
  const text::WordPieceTokenizer tok = ctx.MakeTokenizer();

  for (size_t t = 0; t < 8 && t < ctx.corpus.tables.size(); ++t) {
    EncodedTable e =
        EncodeTable(ctx.corpus.tables[t], tok, ctx.entity_vocab);
    const int n = e.total();
    ASSERT_GT(n, 0);
    std::vector<float> mask = BuildVisibilityMask(e, true);
    for (int i = 0; i < n; ++i) {
      // Reflexive.
      EXPECT_EQ(mask[size_t(i * n + i)], 0.f);
      for (int j = 0; j < n; ++j) {
        // Symmetric.
        EXPECT_EQ(mask[size_t(i * n + j)], mask[size_t(j * n + i)]);
        // Matches the predicate.
        EXPECT_EQ(mask[size_t(i * n + j)] == 0.f, IsVisible(e, i, j));
      }
    }

    // Caption tokens and topic entities see everything.
    for (int i = 0; i < e.num_tokens(); ++i) {
      if (e.token_segment[size_t(i)] != kSegmentCaption) continue;
      for (int j = 0; j < n; ++j) EXPECT_TRUE(IsVisible(e, i, j));
    }
    for (int i = 0; i < e.num_entities(); ++i) {
      if (e.entity_role[size_t(i)] != kRoleTopic) continue;
      const int row = e.num_tokens() + i;
      for (int j = 0; j < n; ++j) EXPECT_TRUE(IsVisible(e, row, j));
    }

    // Entity cells in different rows AND different columns never see each
    // other; same row or same column always do.
    for (int i = 0; i < e.num_entities(); ++i) {
      if (e.entity_role[size_t(i)] == kRoleTopic) continue;
      for (int j = 0; j < e.num_entities(); ++j) {
        if (e.entity_role[size_t(j)] == kRoleTopic) continue;
        const bool same_row = e.entity_row[size_t(i)] == e.entity_row[size_t(j)];
        const bool same_col =
            e.entity_column[size_t(i)] == e.entity_column[size_t(j)];
        EXPECT_EQ(IsVisible(e, e.num_tokens() + i, e.num_tokens() + j),
                  same_row || same_col);
      }
    }

    // Every element sees at least one other element or itself — no
    // fully-isolated rows (softmax stays well-defined).
    for (int i = 0; i < n; ++i) {
      bool any = false;
      for (int j = 0; j < n; ++j) any |= IsVisible(e, i, j);
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VisibilityPropertySweep,
                         ::testing::Values(1, 17, 99, 1234, 87654));

class CorpusPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorpusPropertySweep, GeneratedCorpusInvariants) {
  ContextConfig config;
  config.corpus.num_tables = 120;
  config.seed = GetParam();
  TurlContext ctx = BuildContext(config);

  // Vocabulary contains the corpus' surface text.
  EXPECT_GT(ctx.vocab.size(), 100);
  EXPECT_GT(ctx.entity_vocab.size(), data::EntityVocab::kNumSpecial);

  // Splits partition all tables and held-out tables meet §5.1.
  size_t covered = ctx.corpus.train.size() + ctx.corpus.valid.size() +
                   ctx.corpus.test.size();
  EXPECT_EQ(covered, ctx.corpus.tables.size());
  for (const auto* split : {&ctx.corpus.valid, &ctx.corpus.test}) {
    for (size_t idx : *split) {
      const data::Table& t = ctx.corpus.tables[idx];
      EXPECT_GT(t.NumLinkedSubjectEntities(), 4);
      EXPECT_GE(t.NumEntityColumns(), 3);
      EXPECT_GT(t.LinkedCellFraction(), 0.5);
    }
  }

  // Tokenizing every caption and mention never produces empty output for
  // non-empty text (the char fallback guarantees coverage).
  const text::WordPieceTokenizer tok = ctx.MakeTokenizer();
  for (size_t i = 0; i < 20 && i < ctx.corpus.tables.size(); ++i) {
    const data::Table& t = ctx.corpus.tables[i];
    EXPECT_FALSE(tok.Encode(t.caption).empty());
    for (const data::Column& col : t.columns) {
      for (const data::EntityCell& cell : col.cells) {
        if (!cell.mention.empty() &&
            !text::BasicTokenize(cell.mention).empty()) {
          EXPECT_FALSE(tok.Encode(cell.mention).empty());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusPropertySweep,
                         ::testing::Values(3, 31, 314, 3141));

}  // namespace
}  // namespace core
}  // namespace turl
