// Tests for table linearization (§4.2) and the visibility matrix (§4.3).

#include "core/table_encoding.h"
#include "core/visibility.h"

#include "gtest/gtest.h"
#include "text/wordpiece.h"

namespace turl {
namespace core {
namespace {

/// Hand-built world: a 2x3 table (subject films, object directors, text
/// years) with topic entity and caption.
struct Fixture {
  Fixture() {
    film_ = kb_.AddType("film");
    director_ = kb_.AddType("director");
    directed_by_ = kb_.AddRelation(
        {"directed_by", film_, director_, {"director"}, true});
    f1_ = kb_.AddEntity({"Chiriyakhana", {}, "film one", {film_}, 1.0});
    f2_ = kb_.AddEntity({"Pratidwandi", {}, "film two", {film_}, 1.0});
    d1_ = kb_.AddEntity({"Satyajit", {}, "director one", {director_}, 1.0});
    d2_ = kb_.AddEntity({"Mrinal", {}, "director two", {director_}, 1.0});
    topic_ = kb_.AddEntity({"National Film Award", {}, "award", {film_}, 1.0});

    table_.caption = "national film award best direction recipients";
    table_.topic_entity = topic_;
    table_.topic_mention = "National Film Award";
    data::Column subject;
    subject.header = "film";
    subject.is_entity_column = true;
    subject.cells = {{f1_, "Chiriyakhana"}, {f2_, "Pratidwandi"}};
    data::Column object;
    object.header = "director";
    object.is_entity_column = true;
    object.relation = directed_by_;
    object.cells = {{d1_, "Satyajit"}, {d2_, "Mrinal"}};
    data::Column year;
    year.header = "year";
    year.is_entity_column = false;
    year.cells = {{kb::kInvalidEntity, "1968"}, {kb::kInvalidEntity, "1970"}};
    table_.columns = {subject, object, year};

    for (const char* w :
         {"national", "film", "award", "best", "direction", "recipients",
          "director", "year", "chiriyakhana", "pratidwandi", "satyajit",
          "mrinal"}) {
      vocab_.AddToken(w);
    }

    data::Corpus corpus;
    corpus.tables.push_back(table_);
    corpus.train = {0};
    entity_vocab_ = data::EntityVocab::Build(corpus, corpus.train, 1);
  }

  kb::KnowledgeBase kb_;
  kb::TypeId film_, director_;
  kb::RelationId directed_by_;
  kb::EntityId f1_, f2_, d1_, d2_, topic_;
  data::Table table_;
  text::Vocab vocab_;
  data::EntityVocab entity_vocab_;
};

TEST(EncodingTest, LayoutTokensThenEntities) {
  Fixture f;
  text::WordPieceTokenizer tok(&f.vocab_);
  EncodedTable e = EncodeTable(f.table_, tok, f.entity_vocab_);

  // Tokens: 6 caption + 1 "film" + 1 "director" + 1 "year" = 9.
  EXPECT_EQ(e.num_tokens(), 9);
  // Entities: topic + 2 rows x 2 entity columns = 5.
  EXPECT_EQ(e.num_entities(), 5);
  EXPECT_EQ(e.total(), 14);

  // Caption tokens first with segment kSegmentCaption, increasing position.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(e.token_segment[size_t(i)], kSegmentCaption);
    EXPECT_EQ(e.token_position[size_t(i)], i);
    EXPECT_EQ(e.token_column[size_t(i)], -1);
  }
  // Headers follow, one per column here.
  EXPECT_EQ(e.token_segment[6], kSegmentHeader);
  EXPECT_EQ(e.token_column[6], 0);
  EXPECT_EQ(e.token_column[7], 1);
  EXPECT_EQ(e.token_column[8], 2);

  // Topic entity first, role topic, coordinates -1.
  EXPECT_EQ(e.entity_role[0], kRoleTopic);
  EXPECT_EQ(e.entity_row[0], -1);
  EXPECT_EQ(e.entity_column[0], -1);
  // Cells row-major over entity columns: (0,0), (0,1), (1,0), (1,1).
  EXPECT_EQ(e.entity_row[1], 0);
  EXPECT_EQ(e.entity_column[1], 0);
  EXPECT_EQ(e.entity_role[1], kRoleSubject);
  EXPECT_EQ(e.entity_row[2], 0);
  EXPECT_EQ(e.entity_column[2], 1);
  EXPECT_EQ(e.entity_role[2], kRoleObject);
  EXPECT_EQ(e.entity_row[3], 1);
  EXPECT_EQ(e.entity_column[3], 0);
  EXPECT_EQ(e.entity_row[4], 1);
  EXPECT_EQ(e.entity_column[4], 1);

  // Ground-truth kb ids stored, mentions tokenized.
  EXPECT_EQ(e.entity_kb_ids[1], f.f1_);
  EXPECT_EQ(e.entity_kb_ids[4], f.d2_);
  EXPECT_FALSE(e.entity_mentions[1].empty());
}

TEST(EncodingTest, NonEntityColumnsContributeNoEntities) {
  Fixture f;
  text::WordPieceTokenizer tok(&f.vocab_);
  EncodedTable e = EncodeTable(f.table_, tok, f.entity_vocab_);
  for (int i = 0; i < e.num_entities(); ++i) {
    EXPECT_NE(e.entity_column[size_t(i)], 2);  // "year" column.
  }
}

TEST(EncodingTest, MetadataOffDropsTokens) {
  Fixture f;
  text::WordPieceTokenizer tok(&f.vocab_);
  EncodeOptions opts;
  opts.include_metadata = false;
  EncodedTable e = EncodeTable(f.table_, tok, f.entity_vocab_, opts);
  EXPECT_EQ(e.num_tokens(), 0);
  EXPECT_EQ(e.num_entities(), 5);
}

TEST(EncodingTest, EntitiesOffDropsEntityPart) {
  Fixture f;
  text::WordPieceTokenizer tok(&f.vocab_);
  EncodeOptions opts;
  opts.include_entities = false;
  EncodedTable e = EncodeTable(f.table_, tok, f.entity_vocab_, opts);
  EXPECT_EQ(e.num_entities(), 0);
  EXPECT_GT(e.num_tokens(), 0);
}

TEST(EncodingTest, MaxRowsCap) {
  Fixture f;
  text::WordPieceTokenizer tok(&f.vocab_);
  EncodeOptions opts;
  opts.max_rows = 1;
  EncodedTable e = EncodeTable(f.table_, tok, f.entity_vocab_, opts);
  EXPECT_EQ(e.num_entities(), 3);  // Topic + one row of two columns.
}

TEST(EncodingTest, UnlinkedCellGetsUnkIdButKeepsMention) {
  Fixture f;
  f.table_.columns[0].cells[0].entity = kb::kInvalidEntity;
  text::WordPieceTokenizer tok(&f.vocab_);
  EncodedTable e = EncodeTable(f.table_, tok, f.entity_vocab_);
  EXPECT_EQ(e.entity_ids[1], data::EntityVocab::kUnkEntity);
  EXPECT_FALSE(e.entity_mentions[1].empty());
  EXPECT_EQ(e.entity_kb_ids[1], kb::kInvalidEntity);
}

TEST(EncodingTest, AppendEntityExtends) {
  Fixture f;
  text::WordPieceTokenizer tok(&f.vocab_);
  EncodedTable e = EncodeTable(f.table_, tok, f.entity_vocab_);
  const int before = e.num_entities();
  const int idx = e.AppendEntity(data::EntityVocab::kMaskEntity, kRoleSubject,
                                 2, 0, {text::kMaskId});
  EXPECT_EQ(idx, before);
  EXPECT_EQ(e.num_entities(), before + 1);
  EXPECT_EQ(e.entity_ids[size_t(idx)], data::EntityVocab::kMaskEntity);
}

// --------------------------- Visibility -----------------------------------

class VisibilityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    text::WordPieceTokenizer tok(&f_.vocab_);
    e_ = EncodeTable(f_.table_, tok, f_.entity_vocab_);
    // Sequence indices (from EncodingTest.LayoutTokensThenEntities):
    // 0-5 caption, 6 header "film" (col 0), 7 header "director" (col 1),
    // 8 header "year" (col 2); entities: 9 topic, 10 cell(0,0),
    // 11 cell(0,1), 12 cell(1,0), 13 cell(1,1).
  }

  Fixture f_;
  EncodedTable e_;
};

TEST_F(VisibilityFixture, CaptionAndTopicSeeEverything) {
  for (int j = 0; j < e_.total(); ++j) {
    EXPECT_TRUE(IsVisible(e_, 0, j)) << j;   // Caption token.
    EXPECT_TRUE(IsVisible(e_, j, 0)) << j;   // Symmetric.
    EXPECT_TRUE(IsVisible(e_, 9, j)) << j;   // Topic entity.
    EXPECT_TRUE(IsVisible(e_, j, 9)) << j;
  }
}

TEST_F(VisibilityFixture, HeadersSeeEachOther) {
  EXPECT_TRUE(IsVisible(e_, 6, 7));
  EXPECT_TRUE(IsVisible(e_, 7, 8));
  EXPECT_TRUE(IsVisible(e_, 6, 8));
}

TEST_F(VisibilityFixture, HeaderSeesOnlyItsColumnCells) {
  // Header "film" (col 0) sees cells (0,0) and (1,0): indices 10 and 12.
  EXPECT_TRUE(IsVisible(e_, 6, 10));
  EXPECT_TRUE(IsVisible(e_, 6, 12));
  EXPECT_FALSE(IsVisible(e_, 6, 11));
  EXPECT_FALSE(IsVisible(e_, 6, 13));
  // Header "director" (col 1) mirrors.
  EXPECT_TRUE(IsVisible(e_, 7, 11));
  EXPECT_FALSE(IsVisible(e_, 7, 10));
}

TEST_F(VisibilityFixture, CellsSeeSameRowAndColumnOnly) {
  // (0,0)=10: same row (0,1)=11; same column (1,0)=12; NOT (1,1)=13.
  EXPECT_TRUE(IsVisible(e_, 10, 11));
  EXPECT_TRUE(IsVisible(e_, 10, 12));
  EXPECT_FALSE(IsVisible(e_, 10, 13));
  // The paper's example: [Satyajit] should not relate to [Pratidwandi].
  // Satyajit = director of row 0 = index 11; Pratidwandi = film row 1 = 12.
  EXPECT_FALSE(IsVisible(e_, 11, 12));
}

TEST_F(VisibilityFixture, Reflexive) {
  for (int i = 0; i < e_.total(); ++i) EXPECT_TRUE(IsVisible(e_, i, i));
}

TEST_F(VisibilityFixture, MatrixMatchesPredicateAndIsSymmetric) {
  std::vector<float> mask = BuildVisibilityMask(e_, true);
  const int n = e_.total();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const float expected = IsVisible(e_, i, j) ? 0.f : kMaskedScore;
      EXPECT_EQ(mask[size_t(i * n + j)], expected) << i << "," << j;
      EXPECT_EQ(mask[size_t(i * n + j)], mask[size_t(j * n + i)]);
    }
  }
}

TEST_F(VisibilityFixture, DisabledMatrixIsAllZero) {
  std::vector<float> mask = BuildVisibilityMask(e_, false);
  for (float v : mask) EXPECT_EQ(v, 0.f);
}

}  // namespace
}  // namespace core
}  // namespace turl
