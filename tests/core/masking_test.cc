// Tests for the §4.4 masking mechanism and MER candidate construction.

#include <unordered_set>

#include "core/candidates.h"
#include "core/context.h"
#include "core/masking.h"
#include "gtest/gtest.h"

namespace turl {
namespace core {
namespace {

/// Small real pipeline context shared by the masking tests.
const TurlContext& Ctx() {
  static TurlContext* ctx = [] {
    ContextConfig config;
    config.corpus.num_tables = 300;
    config.seed = 42;
    return new TurlContext(BuildContext(config));
  }();
  return *ctx;
}

EncodedTable EncodeFirstTrainTable() {
  const text::WordPieceTokenizer tok = Ctx().MakeTokenizer();
  return EncodeTable(Ctx().corpus.tables[Ctx().corpus.train[0]], tok,
                     Ctx().entity_vocab);
}

TEST(MaskableTest, ExcludesTopicAndSpecialIds) {
  EncodedTable e = EncodeFirstTrainTable();
  for (int i : MaskableEntityPositions(e)) {
    EXPECT_NE(e.entity_role[size_t(i)], kRoleTopic);
    EXPECT_GE(e.entity_ids[size_t(i)], data::EntityVocab::kNumSpecial);
  }
}

TEST(MaskEntityCellTest, MasksIdAndOptionallyMention) {
  EncodedTable e = EncodeFirstTrainTable();
  auto maskable = MaskableEntityPositions(e);
  ASSERT_FALSE(maskable.empty());
  const int cell = maskable[0];

  EncodedTable id_only = e;
  MaskEntityCell(&id_only, cell, /*mask_mention=*/false);
  EXPECT_EQ(id_only.entity_ids[size_t(cell)], data::EntityVocab::kMaskEntity);
  EXPECT_EQ(id_only.entity_mentions[size_t(cell)],
            e.entity_mentions[size_t(cell)]);

  EncodedTable both = e;
  MaskEntityCell(&both, cell, /*mask_mention=*/true);
  EXPECT_EQ(both.entity_mentions[size_t(cell)],
            std::vector<int>{text::kMaskId});
}

TEST(PretrainInstanceTest, TargetsMatchOriginals) {
  EncodedTable clean = EncodeFirstTrainTable();
  TurlConfig config;
  Rng rng(1);
  PretrainInstance inst = MakePretrainInstance(
      clean, config, Ctx().vocab.size(), Ctx().entity_vocab.size(), &rng);
  ASSERT_EQ(inst.mlm_targets.size(), size_t(clean.num_tokens()));
  ASSERT_EQ(inst.mer_targets.size(), size_t(clean.num_entities()));
  for (int i = 0; i < clean.num_tokens(); ++i) {
    if (inst.mlm_targets[size_t(i)] >= 0) {
      EXPECT_EQ(inst.mlm_targets[size_t(i)], clean.token_ids[size_t(i)]);
    } else {
      // Unselected positions stay untouched.
      EXPECT_EQ(inst.input.token_ids[size_t(i)], clean.token_ids[size_t(i)]);
    }
  }
  for (int i = 0; i < clean.num_entities(); ++i) {
    if (inst.mer_targets[size_t(i)] >= 0) {
      EXPECT_EQ(inst.mer_targets[size_t(i)], clean.entity_ids[size_t(i)]);
    } else {
      EXPECT_EQ(inst.input.entity_ids[size_t(i)],
                clean.entity_ids[size_t(i)]);
    }
  }
}

TEST(PretrainInstanceTest, SelectionRatesApproximatelyConfigured) {
  TurlConfig config;  // mlm 0.2, mer 0.6.
  Rng rng(2);
  int64_t tokens = 0, selected_tokens = 0, cells = 0, selected_cells = 0;
  const text::WordPieceTokenizer tok = Ctx().MakeTokenizer();
  for (size_t t = 0; t < 150; ++t) {
    EncodedTable clean = EncodeTable(
        Ctx().corpus.tables[Ctx().corpus.train[t]], tok, Ctx().entity_vocab);
    PretrainInstance inst = MakePretrainInstance(
        clean, config, Ctx().vocab.size(), Ctx().entity_vocab.size(), &rng);
    tokens += clean.num_tokens();
    for (int v : inst.mlm_targets) selected_tokens += v >= 0;
    cells += static_cast<int64_t>(MaskableEntityPositions(clean).size());
    for (int v : inst.mer_targets) selected_cells += v >= 0;
  }
  EXPECT_NEAR(double(selected_tokens) / double(tokens), 0.2, 0.03);
  EXPECT_NEAR(double(selected_cells) / double(cells), 0.6, 0.05);
}

TEST(PretrainInstanceTest, MerBranchDistribution) {
  TurlConfig config;
  Rng rng(3);
  const text::WordPieceTokenizer tok = Ctx().MakeTokenizer();
  int64_t kept = 0, masked_both = 0, mention_kept = 0, total = 0;
  for (size_t t = 0; t < 200; ++t) {
    EncodedTable clean = EncodeTable(
        Ctx().corpus.tables[Ctx().corpus.train[t % Ctx().corpus.train.size()]],
        tok, Ctx().entity_vocab);
    PretrainInstance inst = MakePretrainInstance(
        clean, config, Ctx().vocab.size(), Ctx().entity_vocab.size(), &rng);
    for (int i = 0; i < clean.num_entities(); ++i) {
      if (inst.mer_targets[size_t(i)] < 0) continue;
      ++total;
      const bool id_unchanged =
          inst.input.entity_ids[size_t(i)] == clean.entity_ids[size_t(i)];
      const bool mention_unchanged =
          inst.input.entity_mentions[size_t(i)] ==
          clean.entity_mentions[size_t(i)];
      if (id_unchanged && mention_unchanged) {
        ++kept;
      } else if (!mention_unchanged) {
        ++masked_both;
      } else {
        ++mention_kept;
      }
    }
  }
  ASSERT_GT(total, 300);
  // Paper §4.4: 10% keep both, 63% mask both, 27% keep mention only.
  EXPECT_NEAR(double(kept) / double(total), 0.10, 0.04);
  EXPECT_NEAR(double(masked_both) / double(total), 0.63, 0.06);
  EXPECT_NEAR(double(mention_kept) / double(total), 0.27, 0.06);
}

TEST(PretrainInstanceTest, MlmBranchDistribution) {
  TurlConfig config;
  Rng rng(4);
  const text::WordPieceTokenizer tok = Ctx().MakeTokenizer();
  int64_t masked = 0, random_or_same = 0, unchanged = 0, total = 0;
  for (size_t t = 0; t < 200; ++t) {
    EncodedTable clean = EncodeTable(
        Ctx().corpus.tables[Ctx().corpus.train[t % Ctx().corpus.train.size()]],
        tok, Ctx().entity_vocab);
    PretrainInstance inst = MakePretrainInstance(
        clean, config, Ctx().vocab.size(), Ctx().entity_vocab.size(), &rng);
    for (int i = 0; i < clean.num_tokens(); ++i) {
      if (inst.mlm_targets[size_t(i)] < 0) continue;
      ++total;
      const int now = inst.input.token_ids[size_t(i)];
      if (now == text::kMaskId) {
        ++masked;
      } else if (now == clean.token_ids[size_t(i)]) {
        ++unchanged;
      } else {
        ++random_or_same;
      }
    }
  }
  ASSERT_GT(total, 300);
  EXPECT_NEAR(double(masked) / double(total), 0.8, 0.05);
  // Random replacement may coincide with the original; allow slack.
  EXPECT_NEAR(double(unchanged + random_or_same) / double(total), 0.2, 0.05);
  EXPECT_GT(random_or_same, 0);
}

TEST(CandidatesTest, CooccurrenceSymmetricCounts) {
  CooccurrenceIndex cooc = CooccurrenceIndex::Build(
      Ctx().corpus, Ctx().corpus.train, Ctx().entity_vocab);
  // Pick some entity that co-occurs with another.
  bool found = false;
  for (int id = data::EntityVocab::kNumSpecial;
       id < Ctx().entity_vocab.size() && !found; ++id) {
    for (int partner : cooc.Cooccurring(id)) {
      EXPECT_EQ(cooc.Count(id, partner), cooc.Count(partner, id));
      EXPECT_GT(cooc.Count(id, partner), 0);
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CandidatesTest, InTableIdsAlwaysIncluded) {
  CooccurrenceIndex cooc = CooccurrenceIndex::Build(
      Ctx().corpus, Ctx().corpus.train, Ctx().entity_vocab);
  EncodedTable clean = EncodeFirstTrainTable();
  Rng rng(5);
  std::vector<int> candidates = BuildMerCandidates(
      clean, cooc, Ctx().entity_vocab.size(), /*max_candidates=*/64,
      /*min_random=*/8, &rng);
  std::unordered_set<int> set(candidates.begin(), candidates.end());
  for (int id : clean.entity_ids) {
    if (id >= data::EntityVocab::kNumSpecial) {
      EXPECT_TRUE(set.count(id)) << id;
    }
  }
  EXPECT_LE(static_cast<int>(candidates.size()), 64);
}

TEST(CandidatesTest, NoDuplicatesNoSpecials) {
  CooccurrenceIndex cooc = CooccurrenceIndex::Build(
      Ctx().corpus, Ctx().corpus.train, Ctx().entity_vocab);
  EncodedTable clean = EncodeFirstTrainTable();
  Rng rng(6);
  std::vector<int> candidates = BuildMerCandidates(
      clean, cooc, Ctx().entity_vocab.size(), 128, 16, &rng);
  std::unordered_set<int> set(candidates.begin(), candidates.end());
  EXPECT_EQ(set.size(), candidates.size());
  for (int id : candidates) {
    EXPECT_GE(id, data::EntityVocab::kNumSpecial);
    EXPECT_LT(id, Ctx().entity_vocab.size());
  }
}

TEST(CandidatesTest, IncludesRandomNegatives) {
  // With an empty co-occurrence index, candidates are exactly the in-table
  // ids plus the requested random negatives.
  CooccurrenceIndex empty_cooc;
  EncodedTable clean = EncodeFirstTrainTable();
  Rng rng(7);
  std::vector<int> without_random = BuildMerCandidates(
      clean, empty_cooc, Ctx().entity_vocab.size(), 256, 0, &rng);
  std::vector<int> with_random = BuildMerCandidates(
      clean, empty_cooc, Ctx().entity_vocab.size(), 256, 32, &rng);
  EXPECT_GT(with_random.size(), without_random.size());
  EXPECT_LE(with_random.size(), without_random.size() + 32);
}

}  // namespace
}  // namespace core
}  // namespace turl
