// TrainState save/load: bit-exact round trips of parameters, Adam moments,
// RNG stream and data cursor; the untouched-on-failure guarantee for every
// failure path (fingerprint, shape, missing/extra sections, corruption,
// truncation); model-only checkpoints including v1 compatibility; and the
// CheckpointManager's retention, LATEST pointer, and corruption fallback.

#include "ckpt/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/format.h"
#include "gtest/gtest.h"
#include "nn/checkpoint.h"
#include "nn/ops.h"
#include "obs/metrics.h"
#include "util/serialize.h"

namespace turl {
namespace ckpt {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// A miniature training loop: a two-parameter store, its Adam optimizer, and
/// an RNG mid-stream (with a Box–Muller spare cached), so checkpoints carry
/// non-trivial values in every section.
struct Loop {
  nn::ParamStore store;
  std::unique_ptr<nn::Adam> adam;
  Rng rng;

  explicit Loop(uint64_t seed) : rng(seed) {
    store.CreateNormal("enc.w", {3, 4}, 0.5f, &rng);
    store.CreateNormal("enc.b", {4}, 0.5f, &rng);
    adam = std::make_unique<nn::Adam>(&store, nn::AdamConfig{.lr = 0.05f});
  }

  /// Runs `n` optimizer steps on sum-of-squares loss and advances the RNG an
  /// odd number of Normal() draws so the spare is populated.
  void Advance(int n) {
    for (int i = 0; i < n; ++i) {
      store.ZeroGrad();
      nn::Tensor loss;
      bool first = true;
      for (const auto& [name, t] : store.params()) {
        nn::Tensor term = nn::SumAll(nn::Mul(t, t));
        loss = first ? term : nn::Add(loss, term);
        first = false;
      }
      loss.Backward();
      adam->Step();
      rng.Normal();
    }
  }
};

ckpt::TrainState Bind(Loop* loop, const std::string& fingerprint) {
  TrainState st;
  st.stores.emplace_back("model", &loop->store);
  st.optims.emplace_back("adam", loop->adam.get());
  st.rng = &loop->rng;
  st.fingerprint = fingerprint;
  return st;
}

void FillCursor(TrainState* st) {
  st->epoch = 2;
  st->step_in_epoch = 5;
  st->global_step = 37;
  st->order = {4, 2, 0, 3, 1};
  st->counters = {11, 22, 33};
  st->accumulators = {0.25, -1.5};
  st->eval_curve = {{10, 0.5}, {20, 0.75}};
}

/// Everything observable about a loop, captured for bit-exact comparison.
struct Snapshot {
  std::vector<std::vector<float>> params;
  std::vector<std::vector<float>> m;
  std::vector<std::vector<float>> v;
  int64_t step = 0;
  Rng::State rng;
};

Snapshot Capture(const Loop& loop) {
  Snapshot s;
  for (const auto& [name, t] : loop.store.params()) {
    s.params.push_back(t.ToVector());
  }
  s.m = loop.adam->first_moments();
  s.v = loop.adam->second_moments();
  s.step = loop.adam->step_count();
  s.rng = loop.rng.GetState();
  return s;
}

void ExpectIdentical(const Snapshot& a, const Snapshot& b) {
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    EXPECT_EQ(a.params[i], b.params[i]) << "param " << i;
  }
  EXPECT_EQ(a.m, b.m);
  EXPECT_EQ(a.v, b.v);
  EXPECT_EQ(a.step, b.step);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.rng.s[i], b.rng.s[i]);
  EXPECT_EQ(a.rng.has_spare_normal, b.rng.has_spare_normal);
  EXPECT_EQ(a.rng.spare_normal, b.rng.spare_normal);
}

void CorruptByteAt(const std::string& path, size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(std::streamoff(offset));
  char c = 0;
  f.read(&c, 1);
  c = char(c ^ 0x20);
  f.seekp(std::streamoff(offset));
  f.write(&c, 1);
}

TEST(TrainStateTest, RoundTripIsBitExact) {
  const std::string path = TempPath("state_roundtrip.turl");
  Loop a(1);
  a.Advance(3);
  TrainState sa = Bind(&a, "cfg-A");
  FillCursor(&sa);
  ASSERT_TRUE(SaveTrainState(sa, path).ok());
  const Snapshot want = Capture(a);

  Loop b(99);  // Same layout, different values everywhere.
  b.Advance(1);
  TrainState sb = Bind(&b, "cfg-A");
  ASSERT_TRUE(LoadTrainState(&sb, path).ok());
  ExpectIdentical(want, Capture(b));

  EXPECT_EQ(sb.epoch, sa.epoch);
  EXPECT_EQ(sb.step_in_epoch, sa.step_in_epoch);
  EXPECT_EQ(sb.global_step, sa.global_step);
  EXPECT_EQ(sb.order, sa.order);
  EXPECT_EQ(sb.counters, sa.counters);
  EXPECT_EQ(sb.accumulators, sa.accumulators);
  EXPECT_EQ(sb.eval_curve, sa.eval_curve);

  // The restored RNG replays the exact same stream.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.rng.Next(), b.rng.Next());
  EXPECT_EQ(a.rng.Normal(), b.rng.Normal());
  std::remove(path.c_str());
}

TEST(TrainStateTest, FingerprintMismatchLeavesEverythingUntouched) {
  const std::string path = TempPath("state_fp.turl");
  Loop a(1);
  a.Advance(2);
  TrainState sa = Bind(&a, "config-one");
  ASSERT_TRUE(SaveTrainState(sa, path).ok());

  Loop b(2);
  b.Advance(1);
  const Snapshot before = Capture(b);
  TrainState sb = Bind(&b, "config-two");
  FillCursor(&sb);
  const Status s = LoadTrainState(&sb, path);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  ExpectIdentical(before, Capture(b));
  EXPECT_EQ(sb.global_step, 37);  // Cursor untouched too.
  std::remove(path.c_str());
}

TEST(TrainStateTest, ShapeMismatchLeavesStoreUntouched) {
  const std::string path = TempPath("state_shape.turl");
  Loop a(1);
  ASSERT_TRUE(SaveTrainState(Bind(&a, ""), path).ok());

  // Same names, transposed first parameter.
  nn::ParamStore store;
  Rng rng(3);
  store.CreateNormal("enc.w", {4, 3}, 0.5f, &rng);
  store.CreateNormal("enc.b", {4}, 0.5f, &rng);
  nn::Adam adam(&store, nn::AdamConfig{});
  std::vector<std::vector<float>> before;
  for (const auto& [name, t] : store.params()) before.push_back(t.ToVector());

  TrainState st;
  st.stores.emplace_back("model", &store);
  st.optims.emplace_back("adam", &adam);
  st.rng = &rng;
  EXPECT_EQ(LoadTrainState(&st, path).code(),
            StatusCode::kFailedPrecondition);
  size_t i = 0;
  for (const auto& [name, t] : store.params()) {
    EXPECT_EQ(t.ToVector(), before[i++]);
  }
  std::remove(path.c_str());
}

TEST(TrainStateTest, MissingSectionFails) {
  const std::string path = TempPath("state_missing.turl");
  Loop a(1);
  TrainState sa = Bind(&a, "");
  sa.rng = nullptr;  // Save without an RNG stream.
  ASSERT_TRUE(SaveTrainState(sa, path).ok());

  Loop b(2);
  const Snapshot before = Capture(b);
  TrainState sb = Bind(&b, "");  // Load *with* an RNG bound.
  EXPECT_EQ(LoadTrainState(&sb, path).code(),
            StatusCode::kFailedPrecondition);
  ExpectIdentical(before, Capture(b));
  std::remove(path.c_str());
}

TEST(TrainStateTest, UnexpectedExtraSectionFails) {
  const std::string path = TempPath("state_extra.turl");
  Loop a(1);
  ASSERT_TRUE(SaveTrainState(Bind(&a, ""), path).ok());

  Loop b(2);
  TrainState sb = Bind(&b, "");
  sb.rng = nullptr;  // The file's rng section now has no consumer.
  const Snapshot before = Capture(b);
  EXPECT_EQ(LoadTrainState(&sb, path).code(),
            StatusCode::kFailedPrecondition);
  ExpectIdentical(before, Capture(b));
  std::remove(path.c_str());
}

TEST(TrainStateTest, CorruptAndTruncatedFilesLeaveStateUntouched) {
  const std::string path = TempPath("state_corrupt.turl");
  Loop a(1);
  a.Advance(2);
  ASSERT_TRUE(SaveTrainState(Bind(&a, ""), path).ok());

  // Bit flip in the middle of the file.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const size_t size = size_t(in.tellg());
  in.close();
  CorruptByteAt(path, size / 2);

  Loop b(2);
  Snapshot before = Capture(b);
  TrainState sb = Bind(&b, "");
  EXPECT_FALSE(LoadTrainState(&sb, path).ok());
  ExpectIdentical(before, Capture(b));

  // Rewrite valid, then truncate to half.
  ASSERT_TRUE(SaveTrainState(Bind(&a, ""), path).ok());
  {
    std::ifstream full(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(full)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size() / 2));
  }
  before = Capture(b);
  EXPECT_FALSE(LoadTrainState(&sb, path).ok());
  ExpectIdentical(before, Capture(b));
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, RoundTripAndFingerprintGuard) {
  const std::string path = TempPath("model_v2.turl");
  Loop a(1);
  a.Advance(1);
  ASSERT_TRUE(SaveModel(a.store, path, "tag-1").ok());

  Loop b(9);
  ASSERT_TRUE(LoadModel(&b.store, path, "tag-1").ok());
  for (size_t i = 0; i < a.store.params().size(); ++i) {
    EXPECT_EQ(a.store.params()[i].second.ToVector(),
              b.store.params()[i].second.ToVector());
  }

  Loop c(10);
  std::vector<std::vector<float>> before;
  for (const auto& [name, t] : c.store.params()) before.push_back(t.ToVector());
  EXPECT_EQ(LoadModel(&c.store, path, "other-tag").code(),
            StatusCode::kFailedPrecondition);
  size_t i = 0;
  for (const auto& [name, t] : c.store.params()) {
    EXPECT_EQ(t.ToVector(), before[i++]);  // Untouched on mismatch.
  }
  // An empty expected fingerprint accepts any file.
  EXPECT_TRUE(LoadModel(&c.store, path, "").ok());
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, LoadsParamsFromFullTrainingCheckpoint) {
  // Warm-start path: a full training checkpoint (optim + rng + cursor
  // sections) still yields its parameters to a model-only load.
  const std::string path = TempPath("model_from_train.turl");
  Loop a(1);
  a.Advance(2);
  TrainState sa = Bind(&a, "pretrain|x");
  FillCursor(&sa);
  ASSERT_TRUE(SaveTrainState(sa, path).ok());

  Loop b(7);
  ASSERT_TRUE(LoadModel(&b.store, path, "pretrain|x").ok());
  for (size_t i = 0; i < a.store.params().size(); ++i) {
    EXPECT_EQ(a.store.params()[i].second.ToVector(),
              b.store.params()[i].second.ToVector());
  }
  std::remove(path.c_str());
}

TEST(ModelCheckpointTest, ReadsLegacyV1Files) {
  const std::string path = TempPath("model_v1.bin");
  Loop a(1);
  ASSERT_TRUE(nn::SaveCheckpoint(a.store, path).ok());
  Loop b(5);
  ASSERT_TRUE(LoadModel(&b.store, path).ok());
  for (size_t i = 0; i < a.store.params().size(); ++i) {
    EXPECT_EQ(a.store.params()[i].second.ToVector(),
              b.store.params()[i].second.ToVector());
  }
  std::remove(path.c_str());
}

TEST(CheckpointManagerTest, RetentionPrunesOldestAndLatestPoints) {
  const std::string dir = TempPath("mgr_retention");
  CheckpointManager manager({dir, /*keep_last=*/2});
  Loop a(1);
  for (int64_t step : {5, 10, 15}) {
    TrainState st = Bind(&a, "fp");
    st.global_step = step;
    a.Advance(1);
    ASSERT_TRUE(manager.Save(st).ok());
  }
  const std::vector<std::string> kept = manager.ListCheckpoints();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_NE(kept[0].find("ckpt-000000000010.turl"), std::string::npos);
  EXPECT_NE(kept[1].find("ckpt-000000000015.turl"), std::string::npos);
  EXPECT_EQ(manager.LatestPath(), kept[1]);

  Loop b(4);
  TrainState sb = Bind(&b, "fp");
  ASSERT_TRUE(manager.LoadLatest(&sb).ok());
  EXPECT_EQ(sb.global_step, 15);
}

TEST(CheckpointManagerTest, FallsBackPastCorruptNewestAndCountsIt) {
  const std::string dir = TempPath("mgr_fallback");
  CheckpointManager manager({dir, /*keep_last=*/3});
  Loop a(1);
  TrainState st = Bind(&a, "fp");
  st.global_step = 1;
  ASSERT_TRUE(manager.Save(st).ok());
  const Snapshot at_step1 = Capture(a);
  a.Advance(2);
  st.global_step = 2;
  ASSERT_TRUE(manager.Save(st).ok());

  // Corrupt the newest checkpoint (the one LATEST references).
  CorruptByteAt(manager.LatestPath(), 40);

  obs::Counter* fallbacks =
      obs::MetricsRegistry::Get().GetCounter("ckpt.corrupt_fallbacks");
  const int64_t before = fallbacks->Value();
  Loop b(9);
  TrainState sb = Bind(&b, "fp");
  ASSERT_TRUE(manager.LoadLatest(&sb).ok());
  EXPECT_EQ(sb.global_step, 1);  // Landed on the older, valid file.
  ExpectIdentical(at_step1, Capture(b));
  EXPECT_GE(fallbacks->Value(), before + 1);
}

TEST(CheckpointManagerTest, AllCorruptReturnsError) {
  const std::string dir = TempPath("mgr_all_corrupt");
  CheckpointManager manager({dir, /*keep_last=*/3});
  Loop a(1);
  TrainState st = Bind(&a, "fp");
  st.global_step = 1;
  ASSERT_TRUE(manager.Save(st).ok());
  CorruptByteAt(manager.LatestPath(), 30);

  Loop b(2);
  const Snapshot before = Capture(b);
  TrainState sb = Bind(&b, "fp");
  EXPECT_FALSE(manager.LoadLatest(&sb).ok());
  ExpectIdentical(before, Capture(b));
}

TEST(CheckpointManagerTest, TamperedPointerIsIgnored) {
  const std::string dir = TempPath("mgr_tamper");
  CheckpointManager manager({dir, /*keep_last=*/3});
  Loop a(1);
  TrainState st = Bind(&a, "fp");
  st.global_step = 7;
  ASSERT_TRUE(manager.Save(st).ok());

  // A pointer escaping the directory must be treated as absent.
  ASSERT_TRUE(WritePointerFile(dir + "/LATEST", "../../etc/passwd").ok());
  EXPECT_EQ(manager.LatestPath(), "");

  Loop b(3);
  TrainState sb = Bind(&b, "fp");
  ASSERT_TRUE(manager.LoadLatest(&sb).ok());  // Fallback scan still works.
  EXPECT_EQ(sb.global_step, 7);
}

TEST(CheckpointManagerTest, EmptyDirectoryIsNotFound) {
  CheckpointManager manager({TempPath("mgr_empty_never_created"), 3});
  Loop a(1);
  TrainState st = Bind(&a, "");
  EXPECT_EQ(manager.LoadLatest(&st).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ckpt
}  // namespace turl
