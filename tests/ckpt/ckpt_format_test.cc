// Container-level fault injection for the v2 checkpoint format: CRC32
// vectors, payload round trips with corrupt-length clamps, truncation at
// every byte, bit flips at every byte, pointer files, and the simulated
// mid-write crash (SetWriteFailureAfterBytes) that must leave the
// destination file untouched.

#include "ckpt/format.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/crc32.h"
#include "gtest/gtest.h"
#include "util/serialize.h"

namespace turl {
namespace ckpt {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), std::streamsize(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::vector<Section> SampleSections() {
  PayloadWriter meta;
  meta.WriteU32(1);
  meta.WriteString("pretrain|tiny|seed7");
  PayloadWriter store;
  store.WriteU64(2);
  store.WriteString("enc.w");
  store.WriteFloatVector({1.5f, -2.25f, 0.f, 3.f});
  store.WriteString("enc.b");
  store.WriteFloatVector({-0.5f});
  std::vector<Section> sections;
  sections.push_back({"meta", meta.Take()});
  sections.push_back({"store:model", store.Take()});
  sections.push_back({"empty", ""});
  // Binary payload with embedded NULs must survive verbatim.
  sections.push_back({"rng", std::string("\x00\x01\xff\x00zz", 6)});
  return sections;
}

TEST(Crc32Test, MatchesCheckVector) {
  // The standard CRC-32/IEEE check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data.data(), data.size());
  uint32_t crc = 0;
  for (size_t i = 0; i < data.size(); i += 7) {
    const size_t n = std::min<size_t>(7, data.size() - i);
    crc = Crc32(data.data() + i, n, crc);
  }
  EXPECT_EQ(crc, whole);
}

TEST(PayloadTest, RoundTripAllTypes) {
  PayloadWriter w;
  w.WriteU32(0xDEADBEEFu);
  w.WriteU64(1ull << 53);
  w.WriteI64(-42);
  w.WriteFloat(1.25f);
  w.WriteDouble(-2.5);
  w.WriteString("header col");
  w.WriteFloatVector({1.f, 2.f, 3.f});
  w.WriteU64Vector({7, 8});
  w.WriteI64Vector({-1, 0, 1});
  w.WriteDoubleVector({0.5});
  const float span[2] = {9.f, -9.f};
  w.WriteFloatSpan(span, 2);

  const std::string payload = w.Take();
  PayloadReader r(payload);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), 1ull << 53);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_EQ(r.ReadFloat(), 1.25f);
  EXPECT_EQ(r.ReadDouble(), -2.5);
  EXPECT_EQ(r.ReadString(), "header col");
  EXPECT_EQ(r.ReadFloatVector(), (std::vector<float>{1.f, 2.f, 3.f}));
  EXPECT_EQ(r.ReadU64Vector(), (std::vector<uint64_t>{7, 8}));
  EXPECT_EQ(r.ReadI64Vector(), (std::vector<int64_t>{-1, 0, 1}));
  EXPECT_EQ(r.ReadDoubleVector(), (std::vector<double>{0.5}));
  float out[2] = {0.f, 0.f};
  EXPECT_TRUE(r.ReadFloatSpan(out, 2));
  EXPECT_EQ(out[0], 9.f);
  EXPECT_EQ(out[1], -9.f);
  EXPECT_TRUE(r.Exhausted());
}

TEST(PayloadTest, CorruptLengthPrefixFailsBeforeAllocating) {
  // An absurd length prefix (claiming ~2^64 elements) must flip status()
  // without attempting the allocation.
  PayloadWriter w;
  w.WriteU64(~0ull);
  const std::string payload = w.Take();
  {
    PayloadReader r(payload);
    EXPECT_EQ(r.ReadString(), "");
    EXPECT_FALSE(r.status().ok());
  }
  {
    PayloadReader r(payload);
    EXPECT_TRUE(r.ReadFloatVector().empty());
    EXPECT_FALSE(r.status().ok());
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  }
  {
    PayloadReader r(payload);
    EXPECT_TRUE(r.ReadU64Vector().empty());
    EXPECT_FALSE(r.status().ok());
  }
  {
    PayloadReader r(payload);
    EXPECT_TRUE(r.ReadDoubleVector().empty());
    EXPECT_FALSE(r.status().ok());
  }
}

TEST(PayloadTest, ShortReadFailsAndSticks) {
  PayloadWriter w;
  w.WriteU32(5);
  const std::string payload = w.Take();
  PayloadReader r(payload);
  EXPECT_EQ(r.ReadU64(), 0u);  // Only 4 bytes available.
  EXPECT_FALSE(r.status().ok());
  EXPECT_FALSE(r.Exhausted());
  // First error wins; later reads stay failed and return zeros.
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_FALSE(r.status().ok());
}

TEST(FormatTest, FileRoundTrip) {
  const std::string path = TempPath("roundtrip.turl");
  const std::vector<Section> in = SampleSections();
  ASSERT_TRUE(WriteCheckpointFile(path, in).ok());
  EXPECT_EQ(PeekCheckpointVersion(path), 2u);

  std::vector<Section> out;
  ASSERT_TRUE(ReadCheckpointFile(path, &out).ok());
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].name, in[i].name);
    EXPECT_EQ(out[i].payload, in[i].payload);
  }
  // No stray .tmp after a successful atomic write.
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(FormatTest, PeekVersionDistinguishesFormats) {
  const std::string v1 = TempPath("peek_v1.bin");
  {
    BinaryWriter w(v1);
    w.WriteU32(0x5455524Cu);  // Same "TURL" magic as the v1 stream.
    w.WriteU32(1);
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_EQ(PeekCheckpointVersion(v1), 1u);

  const std::string garbage = TempPath("peek_garbage.bin");
  WriteAllBytes(garbage, "definitely not a checkpoint");
  EXPECT_EQ(PeekCheckpointVersion(garbage), 0u);
  EXPECT_EQ(PeekCheckpointVersion(TempPath("peek_missing.bin")), 0u);
  std::remove(v1.c_str());
  std::remove(garbage.c_str());
}

TEST(FormatTest, TruncationAtEveryByteFails) {
  const std::string path = TempPath("trunc_src.turl");
  ASSERT_TRUE(WriteCheckpointFile(path, SampleSections()).ok());
  const std::string bytes = ReadAllBytes(path);
  ASSERT_GT(bytes.size(), 0u);

  const std::string cut_path = TempPath("trunc_cut.turl");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteAllBytes(cut_path, bytes.substr(0, cut));
    std::vector<Section> out = {{"sentinel", "x"}};
    const Status s = ReadCheckpointFile(cut_path, &out);
    EXPECT_FALSE(s.ok()) << "truncation at byte " << cut << " was accepted";
    EXPECT_TRUE(out.empty()) << "sections leaked at cut " << cut;
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(FormatTest, BitFlipAtEveryByteFails) {
  const std::string path = TempPath("flip_src.turl");
  ASSERT_TRUE(WriteCheckpointFile(path, SampleSections()).ok());
  const std::string bytes = ReadAllBytes(path);

  const std::string flip_path = TempPath("flip_cur.turl");
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = char(corrupt[i] ^ 0x40);
    WriteAllBytes(flip_path, corrupt);
    std::vector<Section> out;
    EXPECT_FALSE(ReadCheckpointFile(flip_path, &out).ok())
        << "bit flip at byte " << i << " was accepted";
    EXPECT_TRUE(out.empty());
  }
  std::remove(path.c_str());
  std::remove(flip_path.c_str());
}

TEST(FormatTest, PointerFileRoundTripAndOverwrite) {
  const std::string path = TempPath("LATEST_test");
  ASSERT_TRUE(WritePointerFile(path, "ckpt-000000000005.turl").ok());
  std::string contents;
  ASSERT_TRUE(ReadPointerFile(path, &contents).ok());
  EXPECT_EQ(contents, "ckpt-000000000005.turl");

  ASSERT_TRUE(WritePointerFile(path, "ckpt-000000000010.turl\n").ok());
  ASSERT_TRUE(ReadPointerFile(path, &contents).ok());
  EXPECT_EQ(contents, "ckpt-000000000010.turl");  // Trailing newline trimmed.

  EXPECT_EQ(ReadPointerFile(TempPath("LATEST_missing"), &contents).code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(FormatTest, InjectedCrashLeavesDestinationUntouched) {
  const std::string path = TempPath("crash.turl");
  ASSERT_TRUE(WriteCheckpointFile(path, SampleSections()).ok());
  const std::string before = ReadAllBytes(path);

  // Simulate the process dying after 10 bytes of the rewrite reached the OS.
  testing::SetWriteFailureAfterBytes(10);
  std::vector<Section> other = {{"meta", "different contents entirely"}};
  EXPECT_FALSE(WriteCheckpointFile(path, other).ok());

  // The destination still holds the previous complete checkpoint and the
  // partial .tmp is what a crashed process would leave behind.
  EXPECT_EQ(ReadAllBytes(path), before);
  EXPECT_TRUE(FileExists(path + ".tmp"));
  std::vector<Section> out;
  ASSERT_TRUE(ReadCheckpointFile(path, &out).ok());
  EXPECT_EQ(out.size(), SampleSections().size());

  // The hook is one-shot: the retry succeeds and replaces the file.
  ASSERT_TRUE(WriteCheckpointFile(path, other).ok());
  ASSERT_TRUE(ReadCheckpointFile(path, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, "different contents entirely");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(FormatTest, InjectedCrashBeforeFirstByteNeverCreatesDestination) {
  const std::string path = TempPath("crash_zero.turl");
  testing::SetWriteFailureAfterBytes(0);
  EXPECT_FALSE(WriteCheckpointFile(path, SampleSections()).ok());
  EXPECT_FALSE(FileExists(path));
  testing::SetWriteFailureAfterBytes(-1);  // Disarm for later tests.
}

}  // namespace
}  // namespace ckpt
}  // namespace turl
