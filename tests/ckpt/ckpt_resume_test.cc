// Kill-and-resume determinism: a pre-training run killed mid-flight
// (Options::max_steps) and resumed from its last periodic checkpoint must be
// bit-identical to the uninterrupted run — parameters, eval curve, final
// loss and accuracy. Same for a fine-tuning run resumed at an epoch
// boundary. These are the end-to-end guarantees the ckpt subsystem exists
// to provide.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/model.h"
#include "core/pretrain.h"
#include "gtest/gtest.h"
#include "tasks/schema_augmentation.h"

namespace turl {
namespace {

/// Checkpoint directory for one test case, guaranteed empty: TempDir()
/// persists across test-suite invocations, and a stale LATEST from a prior
/// run would otherwise be resumed from.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 150;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

core::TurlConfig TinyConfig() {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

core::Pretrainer::Options BaseOptions() {
  core::Pretrainer::Options opts;
  opts.epochs = 2;
  opts.max_train_tables = 12;
  opts.eval_every = 6;  // Exercises eval-curve persistence across resume.
  opts.max_eval_tables = 4;
  opts.max_eval_cells_per_table = 2;
  opts.seed = 7;
  return opts;
}

std::vector<std::vector<float>> ParamsOf(const core::TurlModel& model) {
  std::vector<std::vector<float>> out;
  for (const auto& [name, t] : model.params().params()) {
    out.push_back(t.ToVector());
  }
  return out;
}

void ExpectBitIdentical(const std::vector<std::vector<float>>& a,
                        const std::vector<std::vector<float>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "param " << i;
    for (size_t j = 0; j < a[i].size(); ++j) {
      ASSERT_EQ(a[i][j], b[i][j])
          << "weight divergence at param " << i << " element " << j;
    }
  }
}

/// Runs pretraining killed at `kill_step`, then resumes in a fresh model and
/// pretrainer (as a restarted process would) and returns the final result,
/// comparing the resumed weights against the uninterrupted reference.
void RunKillResumeCase(const std::vector<std::vector<float>>& reference,
                       const core::PretrainResult& reference_result,
                       int64_t kill_step, const std::string& dir) {
  core::Pretrainer::Options opts = BaseOptions();
  opts.ckpt_dir = dir;
  opts.save_every = 5;

  {
    core::TurlModel model(TinyConfig(), Ctx().vocab.size(),
                          Ctx().entity_vocab.size(), 1);
    core::Pretrainer pretrainer(&model, &Ctx());
    core::Pretrainer::Options killed = opts;
    killed.max_steps = kill_step;
    const core::PretrainResult partial = pretrainer.Train(killed);
    ASSERT_EQ(partial.steps, kill_step) << "kill point was never reached";
  }

  // Fresh process: new model (same seed/layout), new pretrainer, resume.
  core::TurlModel model(TinyConfig(), Ctx().vocab.size(),
                        Ctx().entity_vocab.size(), 1);
  core::Pretrainer pretrainer(&model, &Ctx());
  const core::PretrainResult resumed = pretrainer.Train(opts);

  EXPECT_EQ(resumed.steps, reference_result.steps);
  EXPECT_DOUBLE_EQ(resumed.final_loss, reference_result.final_loss);
  EXPECT_DOUBLE_EQ(resumed.final_accuracy, reference_result.final_accuracy);
  ASSERT_EQ(resumed.eval_curve.size(), reference_result.eval_curve.size());
  for (size_t i = 0; i < resumed.eval_curve.size(); ++i) {
    EXPECT_EQ(resumed.eval_curve[i].first,
              reference_result.eval_curve[i].first);
    EXPECT_DOUBLE_EQ(resumed.eval_curve[i].second,
                     reference_result.eval_curve[i].second);
  }
  ExpectBitIdentical(reference, ParamsOf(model));
}

TEST(PretrainResumeTest, KilledRunResumesBitIdentically) {
  // Uninterrupted reference run.
  core::TurlModel reference_model(TinyConfig(), Ctx().vocab.size(),
                                  Ctx().entity_vocab.size(), 1);
  core::Pretrainer reference_pretrainer(&reference_model, &Ctx());
  const core::PretrainResult reference_result =
      reference_pretrainer.Train(BaseOptions());
  ASSERT_GE(reference_result.steps, 16)
      << "corpus too small to place both kill points";
  const std::vector<std::vector<float>> reference =
      ParamsOf(reference_model);

  // Kill mid-save-interval in epoch 0: resume replays steps 6..7 from the
  // step-5 checkpoint.
  RunKillResumeCase(reference, reference_result, /*kill_step=*/7,
                    FreshDir("resume_kill7"));
  // Kill in epoch 1: resume crosses the epoch boundary from the step-10
  // checkpoint (saved near the end of epoch 0).
  RunKillResumeCase(reference, reference_result, /*kill_step=*/14,
                    FreshDir("resume_kill14"));
}

TEST(PretrainResumeTest, MismatchedOptionsStartFresh) {
  // A checkpoint written under different options (fingerprint) must not be
  // resumed from; the run starts fresh and still matches a no-checkpoint
  // run with the new options.
  const std::string dir = FreshDir("resume_mismatch");
  {
    core::TurlModel model(TinyConfig(), Ctx().vocab.size(),
                          Ctx().entity_vocab.size(), 1);
    core::Pretrainer pretrainer(&model, &Ctx());
    core::Pretrainer::Options opts = BaseOptions();
    opts.ckpt_dir = dir;
    opts.save_every = 5;
    opts.max_steps = 7;
    pretrainer.Train(opts);
  }
  core::Pretrainer::Options changed = BaseOptions();
  changed.seed = 8;  // Different stream -> different fingerprint.
  changed.eval_every = 0;

  core::TurlModel model_a(TinyConfig(), Ctx().vocab.size(),
                          Ctx().entity_vocab.size(), 1);
  core::Pretrainer pretrainer_a(&model_a, &Ctx());
  core::Pretrainer::Options with_dir = changed;
  with_dir.ckpt_dir = dir;
  with_dir.save_every = 0;
  const core::PretrainResult ra = pretrainer_a.Train(with_dir);

  core::TurlModel model_b(TinyConfig(), Ctx().vocab.size(),
                          Ctx().entity_vocab.size(), 1);
  core::Pretrainer pretrainer_b(&model_b, &Ctx());
  const core::PretrainResult rb = pretrainer_b.Train(changed);

  EXPECT_EQ(ra.steps, rb.steps);
  EXPECT_DOUBLE_EQ(ra.final_loss, rb.final_loss);
  ExpectBitIdentical(ParamsOf(model_a), ParamsOf(model_b));
}

TEST(FinetuneResumeTest, EpochResumeMatchesUninterruptedRun) {
  tasks::HeaderVocab vocab = tasks::BuildHeaderVocab(Ctx());
  const auto train = tasks::BuildSchemaAugInstances(
      Ctx(), vocab, Ctx().corpus.train, 0, 40);
  const auto probe = tasks::BuildSchemaAugInstances(
      Ctx(), vocab, Ctx().corpus.valid, 0, 5);
  ASSERT_FALSE(train.empty());
  ASSERT_FALSE(probe.empty());

  tasks::FinetuneOptions two_epochs;
  two_epochs.epochs = 2;
  two_epochs.max_tables = 20;

  // Uninterrupted two-epoch run.
  core::TurlModel model_u(TinyConfig(), Ctx().vocab.size(),
                          Ctx().entity_vocab.size(), 11);
  tasks::TurlSchemaAugmenter augmenter_u(&model_u, &Ctx(), &vocab, 31);
  augmenter_u.Finetune(train, two_epochs);

  // Interrupted run: one epoch with checkpointing, then a fresh model and
  // head (same seeds) resume for the full two epochs. The fingerprint
  // deliberately excludes epochs so extending the run is a resume, not a
  // restart.
  const std::string dir = FreshDir("finetune_resume");
  {
    core::TurlModel model(TinyConfig(), Ctx().vocab.size(),
                          Ctx().entity_vocab.size(), 11);
    tasks::TurlSchemaAugmenter augmenter(&model, &Ctx(), &vocab, 31);
    tasks::FinetuneOptions one_epoch = two_epochs;
    one_epoch.epochs = 1;
    one_epoch.ckpt_dir = dir;
    augmenter.Finetune(train, one_epoch);
  }
  core::TurlModel model_r(TinyConfig(), Ctx().vocab.size(),
                          Ctx().entity_vocab.size(), 11);
  tasks::TurlSchemaAugmenter augmenter_r(&model_r, &Ctx(), &vocab, 31);
  tasks::FinetuneOptions resumed = two_epochs;
  resumed.ckpt_dir = dir;
  augmenter_r.Finetune(train, resumed);

  ExpectBitIdentical(ParamsOf(model_u), ParamsOf(model_r));
  // Head weights are private to the task; identical scores on held-out
  // instances pin them down bit-for-bit too.
  for (const auto& inst : probe) {
    const std::vector<float> su = augmenter_u.Scores(inst);
    const std::vector<float> sr = augmenter_r.Scores(inst);
    ASSERT_EQ(su.size(), sr.size());
    for (size_t i = 0; i < su.size(); ++i) ASSERT_EQ(su[i], sr[i]);
  }
}

}  // namespace
}  // namespace turl
