// End-to-end SLO plane through the serving front-end: real wire traffic
// must produce serve-origin wide events whose stage timings and byte counts
// are sane, SLI windows that agree with the observed outcomes, default
// `slo.serve.*` readiness probes for the server's lifetime, and — under
// injected deadline pressure against a zero-tolerance custom target — a
// burn that flips readiness within one evaluation (labels: serve, slo).

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/context.h"
#include "core/model.h"
#include "core/table_encoding.h"
#include "gtest/gtest.h"
#include "obs/eventlog.h"
#include "obs/server/handlers.h"
#include "obs/slo.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace turl {
namespace serve {
namespace {

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 150;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

core::TurlConfig SmallConfig() {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

const core::TurlModel& Model() {
  static core::TurlModel* model =
      new core::TurlModel(SmallConfig(), Ctx().vocab.size(),
                          Ctx().entity_vocab.size(), /*seed=*/11);
  return *model;
}

std::vector<core::EncodedTable> SomeTables(size_t n) {
  std::vector<core::EncodedTable> out;
  const text::WordPieceTokenizer tokenizer = Ctx().MakeTokenizer();
  for (size_t idx : Ctx().corpus.valid) {
    core::EncodedTable t = core::EncodeTable(Ctx().corpus.tables[idx],
                                             tokenizer, Ctx().entity_vocab);
    if (t.total() > 0) out.push_back(std::move(t));
    if (out.size() >= n) break;
  }
  return out;
}

ServeOptions FastOptions() {
  ServeOptions options;
  options.port = 0;
  options.num_replicas = 1;
  options.session.num_threads = 1;
  options.batch.max_age_ms = 1.0;
  options.pump_interval_ms = 1;
  return options;
}

/// Wide events land just after the reply hits the wire, so a client that
/// returned may be a hair ahead of the log — poll briefly.
std::vector<obs::WideEvent> WaitForEvents(size_t n) {
  for (int i = 0; i < 200; ++i) {
    std::vector<obs::WideEvent> events = obs::EventLog::Get().Snapshot();
    if (events.size() >= n) return events;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return obs::EventLog::Get().Snapshot();
}

bool ProbeState(const char* name, bool* ok, std::string* detail) {
  for (const auto& r : obs::server::HealthRegistry::Get().RunAll()) {
    if (r.name == name) {
      *ok = r.ok;
      if (detail != nullptr) *detail = r.detail;
      return true;
    }
  }
  return false;
}

TEST(ServeSloTest, OkTrafficEmitsWideEventsAndAgreesWithSliWindow) {
  obs::SliEngine::Get().Reset();
  obs::SliEngine::SetEnabled(true);
  obs::EventLog::Get().Reset();
  obs::EventLog::SetEnabled(true);

  const std::vector<core::EncodedTable> tables = SomeTables(5);
  ASSERT_FALSE(tables.empty());
  ServeServer server(Model(), FastOptions());
  ASSERT_TRUE(server.Start().ok());

  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (size_t i = 0; i < tables.size(); ++i) {
    WireResponse response;
    ASSERT_TRUE(client
                    .Call(tables[i], rt::TaskKind::kEncode,
                          /*request_id=*/500 + i, &response)
                    .ok());
    ASSERT_EQ(response.status, rt::ResponseStatus::kOk);
  }
  client.Close();

  const std::vector<obs::WideEvent> events = WaitForEvents(tables.size());
  ASSERT_EQ(events.size(), tables.size());
  for (const obs::WideEvent& e : events) {
    // Serve owns the event (caller_owns_event): exactly one record per
    // request, origin "serve", never a duplicate from the scheduler.
    EXPECT_STREQ(e.origin, "serve");
    EXPECT_STREQ(e.task, "encode");
    EXPECT_STREQ(e.status, "ok");
    EXPECT_GE(e.request_id, 500u);
    EXPECT_GE(e.replica, 0);
    EXPECT_GT(e.bytes_in, int64_t{0});
    EXPECT_GT(e.bytes_out, int64_t{0});
    EXPECT_GT(e.total_us, 0.0);
    EXPECT_GT(e.batch_size, 0);
    // Stage timings are parts of the whole.
    EXPECT_LE(e.queue_wait_us, e.total_us);
    EXPECT_LE(e.encode_us, e.total_us);
  }

  // The SLI window agrees with what the client observed: five ok outcomes.
  const obs::SliSnapshot s = obs::SliEngine::Get().Snapshot("encode", 10);
  EXPECT_EQ(s.total, int64_t(tables.size()));
  EXPECT_EQ(s.ok, int64_t(tables.size()));
  EXPECT_DOUBLE_EQ(s.availability, 1.0);
  EXPECT_EQ(s.deadline_miss, 0);
  EXPECT_GT(s.p99_ms, 0.0);
  EXPECT_LE(s.p99_ms, s.max_ms);
  // The aggregate stream saw the same traffic.
  EXPECT_GE(obs::SliEngine::Get().Snapshot(obs::SliEngine::kAllStream, 10).total,
            int64_t(tables.size()));

  server.Stop();
  obs::SliEngine::Get().Reset();
  obs::EventLog::Get().Reset();
}

TEST(ServeSloTest, DefaultSloProbesTrackServerLifetime) {
  bool ok = false;
  EXPECT_FALSE(ProbeState("slo.serve.availability", &ok, nullptr));
  EXPECT_FALSE(ProbeState("slo.serve.deadline", &ok, nullptr));

  ServeServer server(Model(), FastOptions());
  ASSERT_TRUE(server.Start().ok());
  std::string detail;
  ASSERT_TRUE(ProbeState("slo.serve.availability", &ok, &detail));
  EXPECT_TRUE(ok);  // No traffic: vacuous pass under min_requests.
  EXPECT_NE(detail.find("idle"), std::string::npos);
  ASSERT_TRUE(ProbeState("slo.serve.deadline", &ok, nullptr));
  EXPECT_TRUE(ok);

  server.Stop();
  EXPECT_FALSE(ProbeState("slo.serve.availability", &ok, nullptr));
  EXPECT_FALSE(ProbeState("slo.serve.deadline", &ok, nullptr));
}

TEST(ServeSloTest, DeadlinePressureBurnsCustomTargetWithinOneEvaluation) {
  obs::SliEngine::Get().Reset();
  obs::SliEngine::SetEnabled(true);

  const std::vector<core::EncodedTable> tables = SomeTables(1);
  ASSERT_FALSE(tables.empty());
  ServeOptions options = FastOptions();
  obs::SloTarget target;  // Zero tolerance: one miss burns.
  target.name = "serve_test.deadline";
  target.stream = "encode";
  target.horizon_s = 10;
  target.min_requests = 1;
  target.max_deadline_miss_rate = 0.0;
  options.slo_targets.push_back(target);
  ServeServer server(Model(), options);
  ASSERT_TRUE(server.Start().ok());

  bool ok = false;
  ASSERT_TRUE(ProbeState("slo.serve_test.deadline", &ok, nullptr));
  EXPECT_TRUE(ok);

  // Deadline 0 expires on arrival: the server answers kDeadlineExceeded and
  // records a deadline miss on the "encode" stream.
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  WireResponse response;
  ASSERT_TRUE(client
                  .Call(tables[0], rt::TaskKind::kEncode, 9, &response,
                        /*deadline_ms=*/0)
                  .ok());
  EXPECT_EQ(response.status, rt::ResponseStatus::kDeadlineExceeded);
  client.Close();

  // One probe evaluation — no pump-loop wait — sees the burn.
  std::string detail;
  ASSERT_TRUE(ProbeState("slo.serve_test.deadline", &ok, &detail));
  EXPECT_FALSE(ok) << detail;
  EXPECT_NE(detail.find("deadline_miss_rate"), std::string::npos);

  // The scrape latched the burn in the global watchdog.
  bool burning = false;
  for (const auto& burn : obs::SloWatchdog::Get().ActiveBurns()) {
    burning = burning || burn.name == "slo.serve_test.deadline";
  }
  EXPECT_TRUE(burning);

  server.Stop();
  // Stop removed the custom target with the defaults.
  EXPECT_FALSE(ProbeState("slo.serve_test.deadline", &ok, nullptr));
  EXPECT_TRUE(obs::SloWatchdog::Get().ActiveBurns().empty());
  obs::SliEngine::Get().Reset();
}

}  // namespace
}  // namespace serve
}  // namespace turl
