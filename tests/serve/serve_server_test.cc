// Lifecycle tests for the serving front-end, on real loopback sockets:
// round-trip correctness against the session oracle, multi-replica fan-out
// under concurrent clients, request- and connection-level shedding with
// OVERLOADED, wire-deadline enforcement, malformed frames failing the
// connection without hurting the server, readiness probe coverage, and the
// graceful drain completing in-flight requests.

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/context.h"
#include "core/model.h"
#include "core/table_encoding.h"
#include "gtest/gtest.h"
#include "obs/server/handlers.h"
#include "rt/inference_session.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace turl {
namespace serve {
namespace {

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 150;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

core::TurlConfig SmallConfig() {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

const core::TurlModel& Model() {
  static core::TurlModel* model =
      new core::TurlModel(SmallConfig(), Ctx().vocab.size(),
                          Ctx().entity_vocab.size(), /*seed=*/11);
  return *model;
}

/// The determinism oracle: EncodeBatch(tables)[i] is bit-identical to
/// Encode(tables[i]) regardless of batch composition, so a single-threaded
/// reference session predicts every server reply exactly.
const rt::InferenceSession& Oracle() {
  static rt::InferenceSession* session = new rt::InferenceSession(
      Model(), rt::SessionOptions{.num_threads = 1});
  return *session;
}

std::vector<core::EncodedTable> SomeTables(size_t n) {
  std::vector<core::EncodedTable> out;
  const text::WordPieceTokenizer tokenizer = Ctx().MakeTokenizer();
  for (size_t idx : Ctx().corpus.valid) {
    core::EncodedTable t = core::EncodeTable(Ctx().corpus.tables[idx],
                                             tokenizer, Ctx().entity_vocab);
    if (t.total() > 0) out.push_back(std::move(t));
    if (out.size() >= n) break;
  }
  return out;
}

ServeOptions FastOptions() {
  ServeOptions options;
  options.port = 0;
  options.num_replicas = 1;
  options.session.num_threads = 1;
  options.batch.max_age_ms = 1.0;
  options.pump_interval_ms = 1;
  return options;
}

TEST(ServeServerTest, StartStopLifecycle) {
  ServeServer server(Model(), FastOptions());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  EXPECT_EQ(server.num_replicas(), 1);
  EXPECT_FALSE(server.Start().ok());  // Already running.
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // Idempotent.

  // Restartable, on a fresh ephemeral port.
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  server.Stop();
}

TEST(ServeServerTest, RoundtripMatchesSessionEncode) {
  const std::vector<core::EncodedTable> tables = SomeTables(5);
  ASSERT_FALSE(tables.empty());
  ServeServer server(Model(), FastOptions());
  ASSERT_TRUE(server.Start().ok());

  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (size_t i = 0; i < tables.size(); ++i) {
    WireResponse response;
    ASSERT_TRUE(client
                    .Call(tables[i], rt::TaskKind::kEncode,
                          /*request_id=*/1000 + i, &response)
                    .ok());
    ASSERT_EQ(response.status, rt::ResponseStatus::kOk);
    EXPECT_EQ(response.request_id, 1000 + i);
    const nn::Tensor expected = Oracle().Encode(tables[i]);
    EXPECT_EQ(response.rows, expected.dim(0));
    EXPECT_EQ(response.cols, expected.dim(1));
    EXPECT_EQ(response.hidden, expected.ToVector()) << "table " << i;
  }
  client.Close();
  server.Stop();
}

TEST(ServeServerTest, MultiReplicaConcurrentClients) {
  const std::vector<core::EncodedTable> tables = SomeTables(6);
  ASSERT_GE(tables.size(), 2u);
  ServeOptions options = FastOptions();
  options.num_replicas = 2;
  ServeServer server(Model(), options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.num_replicas(), 2);

  constexpr int kClients = 4;
  constexpr int kCallsPerClient = 3;
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ServeClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        failures[c] = kCallsPerClient;
        return;
      }
      for (int call = 0; call < kCallsPerClient; ++call) {
        const size_t t = (c + call) % tables.size();
        WireResponse response;
        const uint64_t id = uint64_t(c) * 100 + call;
        if (!client.Call(tables[t], rt::TaskKind::kEncode, id, &response)
                 .ok() ||
            response.status != rt::ResponseStatus::kOk ||
            response.request_id != id ||
            response.hidden != Oracle().Encode(tables[t]).ToVector()) {
          ++failures[c];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], 0) << "client " << c;
  EXPECT_EQ(server.inflight(), 0);
  server.Stop();
}

TEST(ServeServerTest, RequestShedWithOverloadedAtInflightCap) {
  const std::vector<core::EncodedTable> tables = SomeTables(1);
  ASSERT_FALSE(tables.empty());
  ServeOptions options = FastOptions();
  options.max_inflight_requests = 0;  // Admission always sheds.
  ServeServer server(Model(), options);
  ASSERT_TRUE(server.Start().ok());

  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  WireResponse response;
  ASSERT_TRUE(
      client.Call(tables[0], rt::TaskKind::kEncode, 1, &response).ok());
  EXPECT_EQ(response.status, rt::ResponseStatus::kOverloaded);
  EXPECT_EQ(response.request_id, 1u);
  EXPECT_TRUE(response.hidden.empty());

  // Shedding a request keeps the connection alive: the client can back off
  // and retry on the same socket (and is shed again, deterministically).
  ASSERT_TRUE(
      client.Call(tables[0], rt::TaskKind::kEncode, 2, &response).ok());
  EXPECT_EQ(response.status, rt::ResponseStatus::kOverloaded);
  EXPECT_EQ(response.request_id, 2u);
  server.Stop();
}

TEST(ServeServerTest, ConnectionShedWithOverloadedAtQueueCap) {
  ServeOptions options = FastOptions();
  options.num_io_workers = 1;
  options.max_queued_connections = 1;
  ServeServer server(Model(), options);
  ASSERT_TRUE(server.Start().ok());

  // First connection occupies the lone worker; second fills the queue.
  ServeClient held, queued;
  ASSERT_TRUE(held.Connect("127.0.0.1", server.port()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_TRUE(queued.Connect("127.0.0.1", server.port()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Third connection: the accept loop sheds it with an OVERLOADED frame and
  // closes — the wire analogue of the obs server's 503.
  ServeClient shed;
  ASSERT_TRUE(shed.Connect("127.0.0.1", server.port()).ok());
  WireResponse response;
  ASSERT_TRUE(shed.ReadResponse(&response).ok());
  EXPECT_EQ(response.status, rt::ResponseStatus::kOverloaded);
  EXPECT_NE(response.message.find("connection queue"), std::string::npos);
  server.Stop();
}

TEST(ServeServerTest, ZeroWireDeadlineIsExpiredOnArrival) {
  const std::vector<core::EncodedTable> tables = SomeTables(1);
  ASSERT_FALSE(tables.empty());
  ServeServer server(Model(), FastOptions());
  ASSERT_TRUE(server.Start().ok());

  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  WireResponse response;
  ASSERT_TRUE(client
                  .Call(tables[0], rt::TaskKind::kEncode, 5, &response,
                        /*deadline_ms=*/0)
                  .ok());
  EXPECT_EQ(response.status, rt::ResponseStatus::kDeadlineExceeded);
  EXPECT_EQ(response.request_id, 5u);
  EXPECT_TRUE(response.hidden.empty());

  // A generous deadline on the same connection still succeeds.
  ASSERT_TRUE(client
                  .Call(tables[0], rt::TaskKind::kEncode, 6, &response,
                        /*deadline_ms=*/60000)
                  .ok());
  EXPECT_EQ(response.status, rt::ResponseStatus::kOk);
  server.Stop();
}

TEST(ServeServerTest, MalformedFramesFailTheConnectionNotTheServer) {
  const std::vector<core::EncodedTable> tables = SomeTables(1);
  ASSERT_FALSE(tables.empty());
  ServeServer server(Model(), FastOptions());
  ASSERT_TRUE(server.Start().ok());

  {
    // Bad magic: the server answers kBadRequest, then closes.
    ServeClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    std::string garbage(kRequestHeaderBytes, 'Z');
    ASSERT_TRUE(client.SendRaw(garbage).ok());
    WireResponse response;
    ASSERT_TRUE(client.ReadResponse(&response).ok());
    EXPECT_EQ(response.status, rt::ResponseStatus::kBadRequest);
    EXPECT_FALSE(client.ReadResponse(&response).ok());  // Closed.
  }
  {
    // Oversized length prefix: rejected before the claimed payload is ever
    // allocated, as kBadRequest.
    ServeClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    std::string frame =
        EncodeRequestFrame(tables[0], rt::TaskKind::kEncode, 7);
    const uint32_t huge = 0x7FFFFFFFu;
    std::memcpy(frame.data() + 20, &huge, sizeof(huge));
    ASSERT_TRUE(client.SendRaw(frame.substr(0, kRequestHeaderBytes)).ok());
    WireResponse response;
    ASSERT_TRUE(client.ReadResponse(&response).ok());
    EXPECT_EQ(response.status, rt::ResponseStatus::kBadRequest);
    EXPECT_NE(response.message.find("exceeds cap"), std::string::npos);
  }
  {
    // Unknown task id.
    ServeClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    std::string frame =
        EncodeRequestFrame(tables[0], rt::TaskKind::kEncode, 8);
    frame[6] = 42;
    ASSERT_TRUE(client.SendRaw(frame).ok());
    WireResponse response;
    ASSERT_TRUE(client.ReadResponse(&response).ok());
    EXPECT_EQ(response.status, rt::ResponseStatus::kBadRequest);
    EXPECT_NE(response.message.find("task"), std::string::npos);
  }
  {
    // Truncated frame: half a header, then hang up. Nothing to answer; the
    // server must just drop the connection.
    ServeClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(client.SendRaw(std::string(kRequestHeaderBytes / 2, 'A')).ok());
    client.Close();
  }
  {
    // Corrupt payload (bad inner counts): kBadRequest, connection closed.
    ServeClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    std::string frame =
        EncodeRequestFrame(tables[0], rt::TaskKind::kEncode, 9);
    // Overwrite the num_tokens count inside the payload with a huge claim.
    const uint32_t hostile = 1u << 30;
    std::memcpy(frame.data() + kRequestHeaderBytes, &hostile, sizeof(hostile));
    ASSERT_TRUE(client.SendRaw(frame).ok());
    WireResponse response;
    ASSERT_TRUE(client.ReadResponse(&response).ok());
    EXPECT_EQ(response.status, rt::ResponseStatus::kBadRequest);
  }

  // After all that abuse, a clean client still gets a correct answer.
  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  WireResponse response;
  ASSERT_TRUE(
      client.Call(tables[0], rt::TaskKind::kEncode, 10, &response).ok());
  ASSERT_EQ(response.status, rt::ResponseStatus::kOk);
  EXPECT_EQ(response.hidden, Oracle().Encode(tables[0]).ToVector());
  server.Stop();
}

TEST(ServeServerTest, ReadinessProbeTracksLifecycle) {
  auto probe_state = [](const char* name, bool* found, bool* ok) {
    *found = false;
    *ok = false;
    for (const auto& r : obs::server::HealthRegistry::Get().RunAll()) {
      if (r.name == name) {
        *found = true;
        *ok = r.ok;
      }
    }
  };
  bool found = false, ok = false;
  probe_state("serve.listener", &found, &ok);
  EXPECT_FALSE(found);

  ServeServer server(Model(), FastOptions());
  ASSERT_TRUE(server.Start().ok());
  probe_state("serve.listener", &found, &ok);
  EXPECT_TRUE(found);
  EXPECT_TRUE(ok);

  server.Stop();
  probe_state("serve.listener", &found, &ok);
  EXPECT_FALSE(found);
}

TEST(ServeServerTest, GracefulDrainCompletesInflightRequests) {
  const std::vector<core::EncodedTable> tables = SomeTables(1);
  ASSERT_FALSE(tables.empty());
  ServeOptions options = FastOptions();
  // A long batch age parks the request in the replica queue so Stop() races
  // a genuinely in-flight request; the pump (still alive during the drain)
  // flushes it at ~300ms, well inside the drain deadline.
  options.batch.max_age_ms = 300.0;
  options.pump_interval_ms = 5;
  ServeServer server(Model(), options);
  ASSERT_TRUE(server.Start().ok());

  WireResponse response;
  Status call_status = Status::Internal("not run");
  std::thread client_thread([&] {
    ServeClient client;
    const Status c = client.Connect("127.0.0.1", server.port());
    if (!c.ok()) {
      call_status = c;
      return;
    }
    call_status = client.Call(tables[0], rt::TaskKind::kEncode, 77, &response);
  });
  // Let the request reach the replica queue, then stop the server under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.Stop();
  client_thread.join();

  // The drain completed the admitted request instead of dropping it.
  ASSERT_TRUE(call_status.ok()) << call_status.ToString();
  ASSERT_EQ(response.status, rt::ResponseStatus::kOk);
  EXPECT_EQ(response.request_id, 77u);
  EXPECT_EQ(response.hidden, Oracle().Encode(tables[0]).ToVector());
}

}  // namespace
}  // namespace serve
}  // namespace turl
