// Wire-format tests for the serve protocol, including the fuzz-ish
// malformed-frame set the decoder must survive: truncated frames, oversized
// length prefixes, bad magic, unknown task ids, hostile element counts. The
// invariant throughout is the BinaryReader discipline: every claimed length
// is validated against the bytes actually present BEFORE anything is
// allocated, so a 1GB length prefix costs a Status, not a 1GB resize.

#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "kb/kb.h"
#include "rt/request.h"
#include "serve/protocol.h"

namespace turl {
namespace serve {
namespace {

core::EncodedTable SampleTable() {
  core::EncodedTable table;
  table.token_ids = {5, 9, 14, 2};
  table.token_segment = {0, 0, 1, 1};
  table.token_position = {0, 1, 0, 1};
  table.token_column = {-1, -1, 0, 1};
  table.entity_ids = {3, 7};
  table.entity_role = {core::kRoleTopic, core::kRoleSubject};
  table.entity_row = {-1, 0};
  table.entity_column = {-1, 0};
  table.entity_mentions = {{21, 22}, {}};
  table.entity_kb_ids = {40, 41};  // Ground truth; must NOT survive the wire.
  return table;
}

void AppendU32(std::string* s, uint32_t v) {
  s->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendI32(std::string* s, int32_t v) {
  s->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

TEST(ServeProtocolTest, RequestFrameRoundtrip) {
  const core::EncodedTable table = SampleTable();
  const std::string frame = EncodeRequestFrame(
      table, rt::TaskKind::kColumnType, /*request_id=*/77, /*deadline_ms=*/250);
  ASSERT_GE(frame.size(), kRequestHeaderBytes);

  RequestHeader header;
  ASSERT_TRUE(ParseRequestHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  kDefaultMaxPayloadBytes, &header)
                  .ok());
  EXPECT_EQ(header.task, rt::TaskKind::kColumnType);
  EXPECT_EQ(header.request_id, 77u);
  EXPECT_EQ(header.deadline_ms, 250u);
  EXPECT_EQ(header.payload_len, frame.size() - kRequestHeaderBytes);

  core::EncodedTable decoded;
  ASSERT_TRUE(DecodeRequestPayload(
                  reinterpret_cast<const uint8_t*>(frame.data()) +
                      kRequestHeaderBytes,
                  header.payload_len, &decoded)
                  .ok());
  EXPECT_EQ(decoded.token_ids, table.token_ids);
  EXPECT_EQ(decoded.token_segment, table.token_segment);
  EXPECT_EQ(decoded.token_position, table.token_position);
  EXPECT_EQ(decoded.token_column, table.token_column);
  EXPECT_EQ(decoded.entity_ids, table.entity_ids);
  EXPECT_EQ(decoded.entity_role, table.entity_role);
  EXPECT_EQ(decoded.entity_row, table.entity_row);
  EXPECT_EQ(decoded.entity_column, table.entity_column);
  EXPECT_EQ(decoded.entity_mentions, table.entity_mentions);
  // Ground-truth kb ids never cross the wire.
  EXPECT_EQ(decoded.entity_kb_ids,
            std::vector<kb::EntityId>(2, kb::kInvalidEntity));
}

TEST(ServeProtocolTest, EmptyEntityPartRoundtrips) {
  core::EncodedTable table;
  table.token_ids = {1};
  table.token_segment = {0};
  table.token_position = {0};
  table.token_column = {-1};
  const std::string frame =
      EncodeRequestFrame(table, rt::TaskKind::kEncode, 1);
  RequestHeader header;
  ASSERT_TRUE(ParseRequestHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  kDefaultMaxPayloadBytes, &header)
                  .ok());
  core::EncodedTable decoded;
  ASSERT_TRUE(DecodeRequestPayload(
                  reinterpret_cast<const uint8_t*>(frame.data()) +
                      kRequestHeaderBytes,
                  header.payload_len, &decoded)
                  .ok());
  EXPECT_EQ(decoded.token_ids, table.token_ids);
  EXPECT_TRUE(decoded.entity_ids.empty());
  EXPECT_TRUE(decoded.entity_mentions.empty());
}

TEST(ServeProtocolTest, DefaultDeadlineIsNone) {
  const std::string frame =
      EncodeRequestFrame(SampleTable(), rt::TaskKind::kEncode, 1);
  RequestHeader header;
  ASSERT_TRUE(ParseRequestHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  kDefaultMaxPayloadBytes, &header)
                  .ok());
  EXPECT_EQ(header.deadline_ms, kNoDeadline);
}

TEST(ServeProtocolTest, BadMagicRejected) {
  std::string frame = EncodeRequestFrame(SampleTable(), rt::TaskKind::kEncode, 1);
  frame[0] = 'X';
  RequestHeader header;
  const Status s = ParseRequestHeader(
      reinterpret_cast<const uint8_t*>(frame.data()), kDefaultMaxPayloadBytes,
      &header);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("magic"), std::string::npos);
}

TEST(ServeProtocolTest, UnsupportedVersionRejected) {
  std::string frame = EncodeRequestFrame(SampleTable(), rt::TaskKind::kEncode, 1);
  frame[4] = 99;  // Version field.
  RequestHeader header;
  const Status s = ParseRequestHeader(
      reinterpret_cast<const uint8_t*>(frame.data()), kDefaultMaxPayloadBytes,
      &header);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("version"), std::string::npos);
}

TEST(ServeProtocolTest, UnknownTaskIdRejected) {
  std::string frame = EncodeRequestFrame(SampleTable(), rt::TaskKind::kEncode, 1);
  frame[6] = 120;  // Task field: far beyond kNumTaskKinds.
  RequestHeader header;
  const Status s = ParseRequestHeader(
      reinterpret_cast<const uint8_t*>(frame.data()), kDefaultMaxPayloadBytes,
      &header);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("task"), std::string::npos);
}

TEST(ServeProtocolTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  // A hostile header claiming a ~4GB payload must die at header validation;
  // the callers only allocate payload buffers after ParseRequestHeader
  // passes, so this check IS the allocation guard.
  std::string frame = EncodeRequestFrame(SampleTable(), rt::TaskKind::kEncode, 1);
  const uint32_t huge = 0xFFFFFFF0u;
  std::memcpy(frame.data() + 20, &huge, sizeof(huge));
  RequestHeader header;
  const Status s = ParseRequestHeader(
      reinterpret_cast<const uint8_t*>(frame.data()), kDefaultMaxPayloadBytes,
      &header);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("exceeds cap"), std::string::npos);
}

TEST(ServeProtocolTest, TruncatedPayloadFails) {
  const core::EncodedTable table = SampleTable();
  const std::string frame =
      EncodeRequestFrame(table, rt::TaskKind::kEncode, 1);
  const uint8_t* payload =
      reinterpret_cast<const uint8_t*>(frame.data()) + kRequestHeaderBytes;
  const size_t payload_len = frame.size() - kRequestHeaderBytes;
  // Every proper prefix of a valid payload must fail cleanly (truncated or
  // trailing-bytes depending on where the cut lands), never crash.
  for (size_t cut = 0; cut < payload_len; ++cut) {
    core::EncodedTable decoded;
    EXPECT_FALSE(DecodeRequestPayload(payload, cut, &decoded).ok())
        << "prefix of " << cut << " bytes decoded successfully";
  }
}

TEST(ServeProtocolTest, HostileTokenCountFailsBeforeAllocation) {
  // Payload claims 2^30 tokens but carries 8 bytes. CheckClaimed compares
  // the claim against remaining bytes before any vector is sized.
  std::string payload;
  AppendU32(&payload, 1u << 30);
  AppendI32(&payload, 1);
  AppendI32(&payload, 2);
  core::EncodedTable decoded;
  const Status s = DecodeRequestPayload(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
      &decoded);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("token_ids"), std::string::npos);
  EXPECT_TRUE(decoded.token_ids.empty());
}

TEST(ServeProtocolTest, HostileEntityCountFailsBeforeMentionLoop) {
  // Valid empty token part, then an entity count far beyond the remaining
  // bytes: the decoder must fail before looping 2^29 times over mentions.
  std::string payload;
  AppendU32(&payload, 0);         // num_tokens
  AppendU32(&payload, 1u << 29);  // num_entities (hostile)
  core::EncodedTable decoded;
  const Status s = DecodeRequestPayload(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
      &decoded);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(decoded.entity_ids.empty());
}

TEST(ServeProtocolTest, TrailingBytesRejected) {
  const std::string frame =
      EncodeRequestFrame(SampleTable(), rt::TaskKind::kEncode, 1);
  std::string payload = frame.substr(kRequestHeaderBytes);
  payload.push_back('\0');
  core::EncodedTable decoded;
  const Status s = DecodeRequestPayload(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
      &decoded);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("trailing"), std::string::npos);
}

TEST(ServeProtocolTest, OkResponseRoundtrip) {
  WireResponse response;
  response.status = rt::ResponseStatus::kOk;
  response.request_id = 123456789012345ull;
  response.rows = 2;
  response.cols = 3;
  response.hidden = {1.5f, -2.25f, 0.0f, 3.75f, -0.5f, 10.0f};
  const std::string frame = EncodeResponseFrame(response);
  ASSERT_GE(frame.size(), kResponseHeaderBytes);

  ResponseHeader header;
  ASSERT_TRUE(ParseResponseHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  kDefaultMaxPayloadBytes, &header)
                  .ok());
  EXPECT_EQ(header.status, rt::ResponseStatus::kOk);
  EXPECT_EQ(header.request_id, response.request_id);

  WireResponse decoded;
  decoded.status = header.status;
  decoded.request_id = header.request_id;
  ASSERT_TRUE(DecodeResponsePayload(
                  reinterpret_cast<const uint8_t*>(frame.data()) +
                      kResponseHeaderBytes,
                  header.payload_len, &decoded)
                  .ok());
  EXPECT_EQ(decoded.rows, 2);
  EXPECT_EQ(decoded.cols, 3);
  EXPECT_EQ(decoded.hidden, response.hidden);
}

TEST(ServeProtocolTest, ErrorResponseRoundtrip) {
  WireResponse response;
  response.status = rt::ResponseStatus::kOverloaded;
  response.request_id = 9;
  response.message = "overloaded: inflight request cap";
  const std::string frame = EncodeResponseFrame(response);

  ResponseHeader header;
  ASSERT_TRUE(ParseResponseHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  kDefaultMaxPayloadBytes, &header)
                  .ok());
  EXPECT_EQ(header.status, rt::ResponseStatus::kOverloaded);

  WireResponse decoded;
  decoded.status = header.status;
  decoded.request_id = header.request_id;
  ASSERT_TRUE(DecodeResponsePayload(
                  reinterpret_cast<const uint8_t*>(frame.data()) +
                      kResponseHeaderBytes,
                  header.payload_len, &decoded)
                  .ok());
  EXPECT_EQ(decoded.message, response.message);
  EXPECT_TRUE(decoded.hidden.empty());
}

TEST(ServeProtocolTest, HostileResponseDimsFailBeforeAllocation) {
  // rows * cols claiming ~4 * 10^18 floats with an 8-byte payload.
  std::string payload;
  AppendU32(&payload, 0xFFFFFFFFu);  // rows
  AppendU32(&payload, 0xFFFFFFFFu);  // cols
  WireResponse decoded;
  decoded.status = rt::ResponseStatus::kOk;
  const Status s = DecodeResponsePayload(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
      &decoded);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(decoded.hidden.empty());
}

}  // namespace
}  // namespace serve
}  // namespace turl
