#include "data/export.h"

#include <fstream>
#include <sstream>

#include "data/corpus_generator.h"
#include "gtest/gtest.h"
#include "kb/kb_generator.h"

namespace turl {
namespace data {
namespace {

Table SmallTable() {
  Table t;
  t.caption = "demo table";
  t.topic_mention = "Demo";
  t.pattern = "unit_test";
  Column subject;
  subject.header = "name";
  subject.is_entity_column = true;
  subject.cells = {{0, "Alice, \"The\" Doe"}, {kb::kInvalidEntity, "Bob"}};
  Column year;
  year.header = "year";
  year.cells = {{kb::kInvalidEntity, "1999"}, {kb::kInvalidEntity, "2001"}};
  t.columns = {subject, year};
  return t;
}

TEST(CsvEscapeTest, QuotingRules) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(TableToCsvTest, HeaderAndRows) {
  std::string csv = TableToCsv(SmallTable());
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "name,year");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "\"Alice, \"\"The\"\" Doe\",1999");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "Bob,2001");
  EXPECT_FALSE(std::getline(in, line));
}

TEST(JsonEscapeTest, ControlAndSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("x\ny"), "x\\ny");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(TableToJsonTest, StructurePresent) {
  std::string json = TableToJson(SmallTable());
  EXPECT_NE(json.find("\"caption\":\"demo table\""), std::string::npos);
  EXPECT_NE(json.find("\"header\":\"name\""), std::string::npos);
  EXPECT_NE(json.find("\"entity_column\":true"), std::string::npos);
  EXPECT_NE(json.find("\"entity_column\":false"), std::string::npos);
  EXPECT_NE(json.find("\"entity\":0"), std::string::npos);
  // Unlinked cells carry no "entity" key right after their mention.
  EXPECT_NE(json.find("{\"mention\":\"Bob\"}"), std::string::npos);
}

TEST(TableToJsonTest, ResolvesNamesThroughKb) {
  Rng rng(1);
  kb::SyntheticKb world = kb::GenerateSyntheticKb(kb::KbGeneratorConfig{},
                                                  &rng);
  CorpusGeneratorConfig config;
  config.num_tables = 5;
  Corpus corpus = GenerateCorpus(world, config, &rng);
  std::string json = TableToJson(corpus.tables[0], &world.kb);
  EXPECT_NE(json.find("\"topic_name\""), std::string::npos);
  EXPECT_NE(json.find("\"relation\""), std::string::npos);
}

TEST(ExportCorpusJsonlTest, OneLinePerTablePlusMeta) {
  Rng rng(2);
  kb::SyntheticKb world = kb::GenerateSyntheticKb(kb::KbGeneratorConfig{},
                                                  &rng);
  CorpusGeneratorConfig config;
  config.num_tables = 8;
  Corpus corpus = GenerateCorpus(world, config, &rng);
  const std::string path = ::testing::TempDir() + "/corpus.jsonl";
  ASSERT_TRUE(ExportCorpusJsonl(corpus, path, &world.kb).ok());
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, corpus.tables.size() + 1);  // Metadata + tables.
  std::remove(path.c_str());
}

TEST(ExportCorpusJsonlTest, BadPathFails) {
  Corpus corpus;
  EXPECT_FALSE(ExportCorpusJsonl(corpus, "/no/such/dir/x.jsonl").ok());
}

}  // namespace
}  // namespace data
}  // namespace turl
