#include <unordered_set>

#include "data/corpus_generator.h"
#include "data/entity_vocab.h"
#include "data/stats.h"
#include "data/table.h"
#include "gtest/gtest.h"
#include "kb/kb_generator.h"

namespace turl {
namespace data {
namespace {

struct World {
  kb::SyntheticKb kb_world;
  Corpus corpus;
};

World MakeWorld(int num_tables = 400, uint64_t seed = 42) {
  Rng rng(seed);
  World w;
  w.kb_world = kb::GenerateSyntheticKb(kb::KbGeneratorConfig{}, &rng);
  CorpusGeneratorConfig config;
  config.num_tables = num_tables;
  w.corpus = GenerateCorpus(w.kb_world, config, &rng);
  return w;
}

TEST(TableTest, DerivedCounts) {
  Table t;
  EXPECT_EQ(t.num_rows(), 0);
  EXPECT_EQ(t.NumEntityColumns(), 0);
  EXPECT_EQ(t.NumLinkedEntities(), 0);
  EXPECT_DOUBLE_EQ(t.LinkedCellFraction(), 0.0);

  Column subject;
  subject.is_entity_column = true;
  subject.cells = {{1, "a"}, {kb::kInvalidEntity, "b"}, {2, "c"}};
  Column text_col;
  text_col.is_entity_column = false;
  text_col.cells = {{kb::kInvalidEntity, "1"},
                    {kb::kInvalidEntity, "2"},
                    {kb::kInvalidEntity, "3"}};
  t.columns = {subject, text_col};
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.NumEntityColumns(), 1);
  EXPECT_EQ(t.NumLinkedEntities(), 2);
  EXPECT_EQ(t.NumLinkedSubjectEntities(), 2);
  EXPECT_NEAR(t.LinkedCellFraction(), 2.0 / 3.0, 1e-9);
}

TEST(CorpusGeneratorTest, ProducesRequestedCount) {
  World w = MakeWorld(300);
  EXPECT_EQ(w.corpus.tables.size(), 300u);
}

TEST(CorpusGeneratorTest, DeterministicForSeed) {
  World a = MakeWorld(100, 9), b = MakeWorld(100, 9);
  ASSERT_EQ(a.corpus.tables.size(), b.corpus.tables.size());
  for (size_t i = 0; i < a.corpus.tables.size(); ++i) {
    EXPECT_EQ(a.corpus.tables[i].caption, b.corpus.tables[i].caption);
    EXPECT_EQ(a.corpus.tables[i].num_rows(), b.corpus.tables[i].num_rows());
  }
}

TEST(CorpusGeneratorTest, EveryTableMeetsMinimumQuality) {
  World w = MakeWorld();
  for (const Table& t : w.corpus.tables) {
    EXPECT_GE(t.NumLinkedEntities(), 3);  // §5.1 filter.
    EXPECT_GE(t.num_rows(), 3);
    EXPECT_FALSE(t.caption.empty());
    EXPECT_TRUE(t.columns[0].is_entity_column);
    EXPECT_NE(t.topic_entity, kb::kInvalidEntity);
    for (const Column& col : t.columns) {
      EXPECT_EQ(static_cast<int>(col.cells.size()), t.num_rows());
      EXPECT_FALSE(col.header.empty());
    }
  }
}

TEST(CorpusGeneratorTest, SubjectsActuallyRelateToTopic) {
  World w = MakeWorld();
  const kb::KnowledgeBase& kb = w.kb_world.kb;
  for (size_t i = 0; i < std::min<size_t>(w.corpus.tables.size(), 50); ++i) {
    const Table& t = w.corpus.tables[i];
    for (const EntityCell& cell : t.columns[0].cells) {
      if (!cell.linked()) continue;
      const auto& objects = kb.Objects(cell.entity, t.group_relation);
      EXPECT_TRUE(std::find(objects.begin(), objects.end(), t.topic_entity) !=
                  objects.end())
          << "subject not related to topic in " << t.caption;
    }
  }
}

TEST(CorpusGeneratorTest, ObjectCellsMatchGroundTruthRelation) {
  World w = MakeWorld();
  const kb::KnowledgeBase& kb = w.kb_world.kb;
  for (size_t i = 0; i < std::min<size_t>(w.corpus.tables.size(), 50); ++i) {
    const Table& t = w.corpus.tables[i];
    for (int c = 1; c < t.num_columns(); ++c) {
      const Column& col = t.columns[size_t(c)];
      if (!col.is_entity_column || col.relation == kb::kInvalidRelation) {
        continue;
      }
      for (int r = 0; r < t.num_rows(); ++r) {
        const EntityCell& subject = t.columns[0].cells[size_t(r)];
        const EntityCell& object = col.cells[size_t(r)];
        if (!subject.linked() || !object.linked()) continue;
        const auto& objects = kb.Objects(subject.entity, col.relation);
        EXPECT_TRUE(std::find(objects.begin(), objects.end(),
                              object.entity) != objects.end());
      }
    }
  }
}

TEST(CorpusGeneratorTest, PartitionIsDisjointAndComplete) {
  World w = MakeWorld();
  std::unordered_set<size_t> seen;
  for (const auto* split :
       {&w.corpus.train, &w.corpus.valid, &w.corpus.test}) {
    for (size_t idx : *split) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
      EXPECT_LT(idx, w.corpus.tables.size());
    }
  }
  EXPECT_EQ(seen.size(), w.corpus.tables.size());
}

TEST(CorpusGeneratorTest, HeldOutMeetsEligibility) {
  World w = MakeWorld();
  for (const auto* split : {&w.corpus.valid, &w.corpus.test}) {
    for (size_t idx : *split) {
      const Table& t = w.corpus.tables[idx];
      EXPECT_GT(t.NumLinkedSubjectEntities(), 4);
      EXPECT_GE(t.NumEntityColumns(), 3);
      EXPECT_GT(t.LinkedCellFraction(), 0.5);
    }
  }
}

TEST(CorpusGeneratorTest, SomeCellsUnlinkedSomeAliased) {
  World w = MakeWorld();
  const kb::KnowledgeBase& kb = w.kb_world.kb;
  int unlinked = 0, non_canonical = 0, linked = 0;
  for (const Table& t : w.corpus.tables) {
    for (const Column& col : t.columns) {
      if (!col.is_entity_column) continue;
      for (const EntityCell& cell : col.cells) {
        if (!cell.linked()) {
          ++unlinked;
        } else {
          ++linked;
          non_canonical += cell.mention != kb.entity(cell.entity).name;
        }
      }
    }
  }
  EXPECT_GT(unlinked, 0);
  EXPECT_GT(non_canonical, 0);
  EXPECT_GT(linked, unlinked);  // Most cells stay linked.
}

TEST(RenderMentionTest, CanonicalWhenNoiseDisabled) {
  Rng rng(3);
  World w = MakeWorld(10);
  const std::string mention =
      RenderMention(w.kb_world.kb, 0, /*alias=*/0.0, /*typo=*/0.0, &rng);
  EXPECT_EQ(mention, w.kb_world.kb.entity(0).name);
}

TEST(RenderMentionTest, TypoChangesMention) {
  Rng rng(3);
  World w = MakeWorld(10);
  const std::string canonical = w.kb_world.kb.entity(0).name;
  bool changed = false;
  for (int i = 0; i < 50; ++i) {
    changed |= RenderMention(w.kb_world.kb, 0, 0.0, 1.0, &rng) != canonical;
  }
  EXPECT_TRUE(changed);
}

TEST(SerializationTest, CorpusRoundTrip) {
  World w = MakeWorld(50);
  const std::string path = ::testing::TempDir() + "/corpus.bin";
  ASSERT_TRUE(SaveCorpus(w.corpus, path).ok());
  auto loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->tables.size(), w.corpus.tables.size());
  EXPECT_EQ(loaded->train, w.corpus.train);
  EXPECT_EQ(loaded->valid, w.corpus.valid);
  EXPECT_EQ(loaded->test, w.corpus.test);
  for (size_t i = 0; i < w.corpus.tables.size(); ++i) {
    const Table& a = w.corpus.tables[i];
    const Table& b = loaded->tables[i];
    ASSERT_EQ(a.caption, b.caption);
    ASSERT_EQ(a.topic_entity, b.topic_entity);
    ASSERT_EQ(a.num_columns(), b.num_columns());
    for (int c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.columns[size_t(c)].header, b.columns[size_t(c)].header);
      ASSERT_EQ(a.columns[size_t(c)].relation, b.columns[size_t(c)].relation);
      for (int r = 0; r < a.num_rows(); ++r) {
        ASSERT_EQ(a.columns[size_t(c)].cells[size_t(r)].entity,
                  b.columns[size_t(c)].cells[size_t(r)].entity);
        ASSERT_EQ(a.columns[size_t(c)].cells[size_t(r)].mention,
                  b.columns[size_t(c)].cells[size_t(r)].mention);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, CorruptFileRejected) {
  const std::string path = ::testing::TempDir() + "/bad_corpus.bin";
  {
    BinaryWriter w(path);
    w.WriteU32(0xDEADBEEF);
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_FALSE(LoadCorpus(path).ok());
  std::remove(path.c_str());
}

TEST(EntityVocabTest, FrequencyFilterAndSpecials) {
  World w = MakeWorld();
  EntityVocab vocab = EntityVocab::Build(w.corpus, w.corpus.train, 2);
  EXPECT_GT(vocab.size(), EntityVocab::kNumSpecial);
  EXPECT_EQ(vocab.KbId(EntityVocab::kUnkEntity), kb::kInvalidEntity);
  EXPECT_EQ(vocab.KbId(EntityVocab::kMaskEntity), kb::kInvalidEntity);
  // First real entity has the highest count; counts are non-increasing.
  for (int id = EntityVocab::kNumSpecial + 1; id < vocab.size(); ++id) {
    EXPECT_LE(vocab.Count(id), vocab.Count(id - 1));
  }
  for (int id = EntityVocab::kNumSpecial; id < vocab.size(); ++id) {
    EXPECT_GE(vocab.Count(id), 2);
    const kb::EntityId kb_id = vocab.KbId(id);
    EXPECT_EQ(vocab.Id(kb_id), id);  // Bijection on kept entities.
  }
}

TEST(EntityVocabTest, UnknownEntityMapsToUnk) {
  World w = MakeWorld(50);
  EntityVocab vocab = EntityVocab::Build(w.corpus, w.corpus.train, 1000000);
  // Absurd min count: nothing survives.
  EXPECT_EQ(vocab.size(), EntityVocab::kNumSpecial);
  EXPECT_EQ(vocab.Id(0), EntityVocab::kUnkEntity);
}

TEST(StatsTest, MatchesHandComputation) {
  World w = MakeWorld();
  SplitStats stats = ComputeSplitStats(w.corpus, w.corpus.train);
  EXPECT_EQ(stats.num_tables, w.corpus.train.size());
  EXPECT_GE(stats.rows.min, 3);
  EXPECT_LE(stats.rows.max, 18);
  EXPECT_GE(stats.rows.mean, stats.rows.min);
  EXPECT_LE(stats.rows.mean, stats.rows.max);
  EXPECT_GE(stats.entities.min, 3);
}

TEST(StatsTest, EmptySplit) {
  World w = MakeWorld(20);
  SplitStats stats = ComputeSplitStats(w.corpus, {});
  EXPECT_EQ(stats.num_tables, 0u);
  EXPECT_EQ(stats.rows.mean, 0.0);
}

}  // namespace
}  // namespace data
}  // namespace turl
