// GEMV layer tests (`ctest -L kernels`): equivalence against the naive
// scalar mirrors across strided sub-panels, the accumulate flag, bitwise
// 1-vs-4-thread determinism, the small-m GEMM dispatch (GemmNN/NT/TN at
// m <= 4 must route through — and bitwise match — the GEMV layer), and the
// m in {1,2,3,5} edge-shape sweep that pins both the GEMV gate and the
// tiled path it bypasses.

#include <cmath>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "nn/kernels/kernels.h"
#include "util/rng.h"

namespace turl {
namespace nn {
namespace kernels {
namespace {

struct GemvShape {
  int64_t m, k;  // m output rows (GemvN) / columns (GemvT), k reduction.
};

// Off every block multiple: the 4-row dot group, the 8-lane accumulators,
// the 256-row / 512-column parallel panels.
const GemvShape kGemvShapes[] = {
    {1, 1},   {1, 8},    {3, 17},   {4, 64},   {5, 7},
    {37, 129}, {256, 300}, {513, 768}, {1027, 65},
};

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->UniformFloat(-1.f, 1.f);
  return v;
}

void ExpectClose(const std::vector<float>& got,
                 const std::vector<float>& want, const char* what,
                 const GemvShape& s) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const float tol = 1e-5f * (1.f + std::abs(want[i]));
    EXPECT_NEAR(got[i], want[i], tol)
        << what << " " << s.m << "x" << s.k << " at " << i;
  }
}

class GemvThreadSweep : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    SetKernelThreads(GetParam());
    if (GetParam() > 1) SetParallelMinFlopsForTest(1);
  }
  void TearDown() override {
    SetParallelMinFlopsForTest(0);
    SetKernelThreads(0);
    SetSmallMGemvDispatch(true);
  }
};

TEST_P(GemvThreadSweep, GemvNMatchesNaive) {
  for (const GemvShape& s : kGemvShapes) {
    Rng rng(uint64_t(s.m * 131 + s.k));
    const auto a = RandomVec(static_cast<size_t>(s.m * s.k), &rng);
    const auto x = RandomVec(static_cast<size_t>(s.k), &rng);
    std::vector<float> got(static_cast<size_t>(s.m)), want(static_cast<size_t>(s.m));
    GemvN(s.m, s.k, a.data(), s.k, x.data(), got.data(), false);
    naive::GemvN(s.m, s.k, a.data(), s.k, x.data(), want.data(), false);
    ExpectClose(got, want, "GemvN", s);
  }
}

TEST_P(GemvThreadSweep, GemvTMatchesNaive) {
  for (const GemvShape& s : kGemvShapes) {
    Rng rng(uint64_t(s.m * 137 + s.k));
    const int64_t n = s.m;  // Reuse the sweep as (k, n) shapes.
    const auto b = RandomVec(static_cast<size_t>(s.k * n), &rng);
    const auto x = RandomVec(static_cast<size_t>(s.k), &rng);
    std::vector<float> got(static_cast<size_t>(n)), want(static_cast<size_t>(n));
    GemvT(s.k, n, b.data(), n, x.data(), 1, got.data(), false);
    naive::GemvT(s.k, n, b.data(), n, x.data(), 1, want.data(), false);
    ExpectClose(got, want, "GemvT", s);
  }
}

// Sub-panel addressing: matrix rows longer than the panel (lda > cols), the
// panel offset into the middle of the buffer, and a strided x for GemvT
// (the GemmTN column case).
TEST_P(GemvThreadSweep, StridedSubPanels) {
  Rng rng(77);
  const int64_t m = 9, k = 21, lda = 29, incx = 3;
  const auto abuf = RandomVec(static_cast<size_t>((m + 2) * lda), &rng);
  const auto xbuf = RandomVec(static_cast<size_t>(k * incx + 5), &rng);
  const float* a = abuf.data() + 2 * lda + 4;
  std::vector<float> got(static_cast<size_t>(m)), want(static_cast<size_t>(m));
  GemvN(m, k, a, lda, xbuf.data(), got.data(), false);
  naive::GemvN(m, k, a, lda, xbuf.data(), want.data(), false);
  ExpectClose(got, want, "GemvN strided", GemvShape{m, k});

  const int64_t n = 13, ldb = 17;
  const auto bbuf = RandomVec(static_cast<size_t>((k + 1) * ldb), &rng);
  const float* b = bbuf.data() + ldb + 2;
  std::vector<float> tgot(static_cast<size_t>(n)), twant(static_cast<size_t>(n));
  GemvT(k, n, b, ldb, xbuf.data(), incx, tgot.data(), false);
  naive::GemvT(k, n, b, ldb, xbuf.data(), incx, twant.data(), false);
  ExpectClose(tgot, twant, "GemvT strided", GemvShape{n, k});
}

TEST_P(GemvThreadSweep, AccumulateAddsOntoExistingOutput) {
  Rng rng(91);
  const int64_t m = 37, k = 65;
  const auto a = RandomVec(static_cast<size_t>(m * k), &rng);
  const auto x = RandomVec(static_cast<size_t>(k), &rng);
  const auto seed = RandomVec(static_cast<size_t>(m), &rng);

  std::vector<float> fresh(static_cast<size_t>(m));
  GemvN(m, k, a.data(), k, x.data(), fresh.data(), false);
  std::vector<float> acc = seed;
  GemvN(m, k, a.data(), k, x.data(), acc.data(), true);
  for (int64_t i = 0; i < m; ++i) {
    EXPECT_FLOAT_EQ(acc[static_cast<size_t>(i)], seed[static_cast<size_t>(i)] + fresh[static_cast<size_t>(i)]);
  }

  // GemvT folds the seed in before the axpy chain, so rounding differs from
  // computing the product separately and adding it afterwards.
  std::vector<float> tfresh(static_cast<size_t>(m));
  GemvT(k, m, a.data(), m, x.data(), 1, tfresh.data(), false);
  std::vector<float> tacc = seed;
  GemvT(k, m, a.data(), m, x.data(), 1, tacc.data(), true);
  for (int64_t i = 0; i < m; ++i) {
    const float want = seed[static_cast<size_t>(i)] + tfresh[static_cast<size_t>(i)];
    EXPECT_NEAR(tacc[static_cast<size_t>(i)], want, 1e-5f * (1.f + std::abs(want)));
  }
}

TEST_P(GemvThreadSweep, ZeroKZeroFillsOrPreserves) {
  std::vector<float> y = {3.f, 4.f, 5.f};
  GemvN(3, 0, nullptr, 0, nullptr, y.data(), false);
  EXPECT_EQ(y, (std::vector<float>{0.f, 0.f, 0.f}));
  y = {3.f, 4.f, 5.f};
  GemvN(3, 0, nullptr, 0, nullptr, y.data(), true);
  EXPECT_EQ(y, (std::vector<float>{3.f, 4.f, 5.f}));
  y = {3.f, 4.f, 5.f};
  GemvT(0, 3, nullptr, 3, nullptr, 1, y.data(), false);
  EXPECT_EQ(y, (std::vector<float>{0.f, 0.f, 0.f}));
}

// The small-m gate: GemmNN/GemmTN at m <= 4 must produce bitwise the same
// panel sweep as a direct GemvTMulti call, and GemmNT at m <= 4 the same
// row dots as GemvN — the dispatch is a pure reroute, not a numeric change.
TEST_P(GemvThreadSweep, SmallMGemmDispatchIsBitwiseGemv) {
  Rng rng(101);
  const int64_t k = 130, n = 771;
  for (int64_t m = 1; m <= 4; ++m) {
    const auto a = RandomVec(static_cast<size_t>(m * k), &rng);
    const auto b = RandomVec(static_cast<size_t>(k * n), &rng);
    std::vector<float> via_gemm(static_cast<size_t>(m * n)), direct(static_cast<size_t>(m * n));

    GemmNN(m, n, k, a.data(), k, b.data(), n, via_gemm.data(), n, false);
    GemvTMulti(m, n, k, b.data(), n, a.data(), 1, k, direct.data(), n, false);
    EXPECT_EQ(0, std::memcmp(via_gemm.data(), direct.data(),
                             via_gemm.size() * sizeof(float)))
        << "GemmNN m=" << m;

    GemmNT(m, n, k, a.data(), k, b.data(), k, via_gemm.data(), n, false);
    for (int64_t i = 0; i < m; ++i) {
      GemvN(n, k, b.data(), k, a.data() + i * k, direct.data() + i * n,
            false);
    }
    EXPECT_EQ(0, std::memcmp(via_gemm.data(), direct.data(),
                             via_gemm.size() * sizeof(float)))
        << "GemmNT m=" << m;
  }
}

// Satellite pin: shapes with m in {1, 2, 3, 5} — at and just past the gate
// — stay correct on BOTH paths. m=5 exercises the tile machinery's own
// edge handling (4-row tile + 1-row tail); the dispatch-off runs keep the
// tiled small-m path from rotting now that it is bypassed by default.
TEST_P(GemvThreadSweep, SmallMEdgeSweepBothPaths) {
  const int64_t k = 97, n = 519;
  for (const bool dispatch : {true, false}) {
    SetSmallMGemvDispatch(dispatch);
    for (const int64_t m : {int64_t(1), int64_t(2), int64_t(3), int64_t(5)}) {
      const GemvShape s{m, k};
      Rng rng(uint64_t(200 + m));
      const auto a = RandomVec(static_cast<size_t>(m * k), &rng);
      const auto b = RandomVec(static_cast<size_t>(k * n), &rng);
      std::vector<float> got(static_cast<size_t>(m * n)), want(static_cast<size_t>(m * n));

      GemmNN(m, n, k, a.data(), k, b.data(), n, got.data(), n, false);
      naive::GemmNN(m, n, k, a.data(), k, b.data(), n, want.data(), n, false);
      ExpectClose(got, want, dispatch ? "GemmNN gemv-path" : "GemmNN tiled", s);

      GemmNT(m, n, k, a.data(), k, b.data(), k, got.data(), n, false);
      naive::GemmNT(m, n, k, a.data(), k, b.data(), k, want.data(), n, false);
      ExpectClose(got, want, dispatch ? "GemmNT gemv-path" : "GemmNT tiled", s);

      const auto at = RandomVec(static_cast<size_t>(k * m), &rng);  // A' stored [k, m].
      GemmTN(m, n, k, at.data(), m, b.data(), n, got.data(), n, false);
      naive::GemmTN(m, n, k, at.data(), m, b.data(), n, want.data(), n,
                    false);
      ExpectClose(got, want, dispatch ? "GemmTN gemv-path" : "GemmTN tiled", s);
    }
  }
  SetSmallMGemvDispatch(true);
}

INSTANTIATE_TEST_SUITE_P(Threads, GemvThreadSweep, ::testing::Values(1, 4));

// Bitwise thread-count independence: the determinism contract of the layer.
TEST(GemvDeterminism, ThreadCountDoesNotChangeBits) {
  Rng rng(303);
  const int64_t m = 2050, k = 768;
  const auto a = RandomVec(static_cast<size_t>(m * k), &rng);
  const auto x = RandomVec(static_cast<size_t>(k), &rng);

  SetParallelMinFlopsForTest(1);
  std::vector<float> y1(static_cast<size_t>(m)), y4(static_cast<size_t>(m));
  SetKernelThreads(1);
  GemvN(m, k, a.data(), k, x.data(), y1.data(), false);
  SetKernelThreads(4);
  GemvN(m, k, a.data(), k, x.data(), y4.data(), false);
  EXPECT_EQ(0, std::memcmp(y1.data(), y4.data(), y1.size() * sizeof(float)));

  // Column-axpy form over the same buffers read transposed-shape-wise.
  std::vector<float> t1(static_cast<size_t>(m)), t4(static_cast<size_t>(m));
  SetKernelThreads(1);
  GemvT(k, m, a.data(), m, x.data(), 1, t1.data(), false);
  SetKernelThreads(4);
  GemvT(k, m, a.data(), m, x.data(), 1, t4.data(), false);
  EXPECT_EQ(0, std::memcmp(t1.data(), t4.data(), t1.size() * sizeof(float)));

  SetKernelThreads(0);
  SetParallelMinFlopsForTest(0);
}

// Run-to-run: repeated calls with identical inputs are bitwise stable.
TEST(GemvDeterminism, RepeatedRunsAreBitwiseStable) {
  Rng rng(404);
  const int64_t m = 100, k = 200;
  const auto a = RandomVec(static_cast<size_t>(m * k), &rng);
  const auto x = RandomVec(static_cast<size_t>(k), &rng);
  std::vector<float> r1(static_cast<size_t>(m)), r2(static_cast<size_t>(m));
  GemvN(m, k, a.data(), k, x.data(), r1.data(), false);
  GemvN(m, k, a.data(), k, x.data(), r2.data(), false);
  EXPECT_EQ(0, std::memcmp(r1.data(), r2.data(), r1.size() * sizeof(float)));
}

}  // namespace
}  // namespace kernels
}  // namespace nn
}  // namespace turl
