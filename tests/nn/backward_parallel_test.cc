#include <cstring>
#include <functional>
#include <unordered_set>
#include <vector>

#include "gtest/gtest.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "nn/train_parallel.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace turl {
namespace nn {
namespace {

/// Restores sequential training on scope exit so no test leaks a thread
/// count into its neighbors.
struct ThreadGuard {
  ~ThreadGuard() { SetTrainThreads(1); }
};

/// Bitwise equality over all gradients of a store, in registration order.
std::vector<std::vector<float>> GradsOf(const ParamStore& store) {
  std::vector<std::vector<float>> out;
  for (const auto& [name, t] : store.params()) out.push_back(t.grad_vector());
  return out;
}

void ExpectGradsBitIdentical(const std::vector<std::vector<float>>& a,
                             const std::vector<std::vector<float>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p].size(), b[p].size()) << "param " << p;
    if (a[p].empty()) continue;
    ASSERT_EQ(std::memcmp(a[p].data(), b[p].data(),
                          a[p].size() * sizeof(float)),
              0)
        << "param " << p << " gradients differ bitwise";
  }
}

/// Builds a model + loss with `builder`, runs backward at the given thread
/// count, returns (loss bits, all param grads).
std::pair<float, std::vector<std::vector<float>>> RunBackward(
    int threads,
    const std::function<Tensor(ParamStore*, Rng*)>& builder) {
  SetTrainThreads(threads);
  ParamStore store;
  Rng rng(1234);
  Tensor loss = builder(&store, &rng);
  store.ZeroGrad();
  loss.Backward();
  SetTrainThreads(1);
  return {loss.item(), GradsOf(store)};
}

void ExpectParallelMatchesSequential(
    const std::function<Tensor(ParamStore*, Rng*)>& builder, int repeats = 5) {
  ThreadGuard guard;
  const auto [seq_loss, seq_grads] = RunBackward(1, builder);
  for (int rep = 0; rep < repeats; ++rep) {
    const auto [par_loss, par_grads] = RunBackward(4, builder);
    ASSERT_EQ(std::memcmp(&seq_loss, &par_loss, sizeof(float)), 0);
    ExpectGradsBitIdentical(seq_grads, par_grads);
  }
}

TEST(BackwardParallelTest, TwoIndependentHeadsMatchSequential) {
  // Shared trunk, then an MLM-style cross-entropy head and a BCE head whose
  // branches are independent — exactly the fan-out the executor overlaps.
  ExpectParallelMatchesSequential([](ParamStore* store, Rng* rng) {
    Embedding emb(store, "emb", /*vocab=*/37, /*dim=*/24, rng);
    Linear trunk(store, "trunk", 24, 24, rng);
    Linear head_a(store, "head_a", 24, 13, rng);
    Linear head_b(store, "head_b", 24, 7, rng);
    Tensor h = Gelu(trunk.Forward(emb.Forward({1, 5, 9, 12, 30})));
    Tensor ce =
        SoftmaxCrossEntropy(head_a.Forward(h), {3, 0, 7, 12, 1});
    std::vector<float> bce_targets(5 * 7, 0.f);
    for (size_t i = 0; i < bce_targets.size(); i += 3) bce_targets[i] = 1.f;
    Tensor bce = BceWithLogits(head_b.Forward(h), bce_targets);
    return Add(ce, bce);
  });
}

TEST(BackwardParallelTest, DiamondSharedSubgraphMatchesSequential) {
  // y feeds two branches that re-join: the classic shared-parent shape where
  // unordered accumulation into y's grad would break bit-identity.
  ExpectParallelMatchesSequential([](ParamStore* store, Rng* rng) {
    Linear lin(store, "lin", 16, 16, rng);
    Tensor x = Tensor::Random({8, 16}, *rng, -1.f, 1.f);
    Tensor y = lin.Forward(x);
    Tensor left = Gelu(y);
    Tensor right = Relu(Scale(y, 1.5f));
    return SumAll(Mul(Add(left, right), Add(left, right)));
  });
}

TEST(BackwardParallelTest, RepeatedParentMatchesSequential) {
  // Mul(a, a): one node appearing twice in a parent list must not generate a
  // self-edge, and both contributions must land in pinned order.
  ExpectParallelMatchesSequential([](ParamStore* store, Rng* rng) {
    Tensor a = store->CreateNormal("a", {32}, 0.5f, rng);
    Tensor b = store->CreateNormal("b", {32}, 0.5f, rng);
    return SumAll(Add(Mul(a, a), Mul(a, b)));
  });
}

TEST(BackwardParallelTest, TransformerEncoderStepMatchesSequential) {
  // A realistic tape: embeddings -> 2-layer encoder (attention + FFN +
  // LayerNorms) -> cross-entropy, thousands of nodes with heavy sharing.
  ExpectParallelMatchesSequential(
      [](ParamStore* store, Rng* rng) {
        Embedding emb(store, "emb", /*vocab=*/50, /*dim=*/32, rng);
        TransformerEncoder enc(store, "enc", /*num_layers=*/2, /*d_model=*/32,
                               /*d_intermediate=*/64, /*num_heads=*/4, rng);
        Linear head(store, "head", 32, 50, rng);
        std::vector<int> ids{4, 9, 17, 23, 31, 42, 2, 11};
        const std::vector<float> mask(ids.size() * ids.size(), 0.f);
        Tensor h = enc.Forward(emb.Forward(ids), mask, /*dropout_p=*/0.f,
                               /*training=*/true, rng);
        return SoftmaxCrossEntropy(head.Forward(h),
                                   {9, 17, 23, 31, 42, 2, 11, 4});
      },
      /*repeats=*/3);
}

TEST(BackwardParallelTest, ParallelPathActuallyRuns) {
  ThreadGuard guard;
  obs::Counter* parallel_calls = obs::MetricsRegistry::Get().GetCounter(
      "autograd.backward_parallel_calls");
  const int64_t before = parallel_calls->Value();
  SetTrainThreads(4);
  Rng rng(7);
  ParamStore store;
  Linear lin(&store, "lin", 8, 8, &rng);
  Tensor loss = SumAll(lin.Forward(Tensor::Random({4, 8}, rng)));
  store.ZeroGrad();
  loss.Backward();
  EXPECT_EQ(parallel_calls->Value(), before + 1)
      << "TURL_TRAIN_THREADS=4 backward did not take the task-graph path";
}

TEST(BackwardParallelTest, SequentialDefaultTakesClassicPath) {
  ThreadGuard guard;
  obs::Counter* parallel_calls = obs::MetricsRegistry::Get().GetCounter(
      "autograd.backward_parallel_calls");
  SetTrainThreads(1);
  const int64_t before = parallel_calls->Value();
  Rng rng(7);
  ParamStore store;
  Linear lin(&store, "lin", 8, 8, &rng);
  Tensor loss = SumAll(lin.Forward(Tensor::Random({4, 8}, rng)));
  store.ZeroGrad();
  loss.Backward();
  EXPECT_EQ(parallel_calls->Value(), before);
}

// ---------------------------------------------------------------------------
// Empty-grad audit: Tensor::Backward skips nodes whose grad never
// materialized. That is only sound if "empty grad at execution time" always
// means "received no upstream contribution" — i.e. no op creates a node whose
// backward runs before its grad is allocated. Every op closure accumulates
// into all of its parents through GradOf (allocate-on-first-touch), so every
// non-root node that receives any gradient has it allocated before its own
// closure runs. These tests pin that invariant on graphs designed to stress
// it, including a head whose loss term is fully masked out.
// ---------------------------------------------------------------------------

void AuditReachableNodes(const Tensor& root) {
  std::unordered_set<const TensorImpl*> visited;
  std::vector<const TensorImpl*> stack{root.impl().get()};
  size_t with_fn = 0;
  while (!stack.empty()) {
    const TensorImpl* node = stack.back();
    stack.pop_back();
    if (!visited.insert(node).second) continue;
    if (node->backward_fn) {
      ++with_fn;
      // A node that still owns a backward_fn after Backward(release=false)
      // and received any gradient must have a full-size grad buffer; a node
      // with an EMPTY grad is legitimate only when no consumer contributed
      // (masked-out head). Either way, a *partially* sized buffer is a bug.
      if (!node->grad.empty()) {
        EXPECT_EQ(node->grad.size(), node->data.size());
      }
    }
    for (const auto& parent : node->parents) stack.push_back(parent.get());
  }
  EXPECT_GT(with_fn, 0u);
}

TEST(BackwardParallelTest, EveryContributingNodeHasGradAfterBackward) {
  Rng rng(11);
  ParamStore store;
  Linear trunk(&store, "trunk", 12, 12, &rng);
  Linear head(&store, "head", 12, 5, &rng);
  Tensor h = Gelu(trunk.Forward(Tensor::Random({6, 12}, rng)));
  Tensor loss = SoftmaxCrossEntropy(head.Forward(h), {0, 1, 2, 3, 4, 0});
  store.ZeroGrad();
  loss.Backward(/*release_graph=*/false);
  // Walk the retained graph: every node on a contributing path has a grad.
  std::unordered_set<const TensorImpl*> visited;
  std::vector<const TensorImpl*> stack{loss.impl().get()};
  while (!stack.empty()) {
    const TensorImpl* node = stack.back();
    stack.pop_back();
    if (!visited.insert(node).second) continue;
    if (node->backward_fn) {
      EXPECT_FALSE(node->grad.empty())
          << "interior node skipped despite contributing to the loss";
      EXPECT_EQ(node->grad.size(), node->data.size());
    }
    for (const auto& parent : node->parents) stack.push_back(parent.get());
  }
  AuditReachableNodes(loss);
}

TEST(BackwardParallelTest, FullyMaskedHeadSkipsCleanlyBothModes) {
  // SoftmaxCrossEntropy with every target ignored produces a constant-zero
  // loss term: its branch receives gradient, but contributes zeros. The
  // point: Backward must complete, parameters of the dead head must get a
  // well-formed (possibly zero) gradient or none, and thread counts agree.
  ThreadGuard guard;
  auto builder = [](ParamStore* store, Rng* rng) {
    Linear live(store, "live", 10, 4, rng);
    Linear dead(store, "dead", 10, 4, rng);
    Tensor x = Tensor::Random({3, 10}, *rng, -1.f, 1.f);
    Tensor live_loss = SoftmaxCrossEntropy(live.Forward(x), {0, 1, 2});
    Tensor dead_loss = SoftmaxCrossEntropy(dead.Forward(x), {-1, -1, -1});
    return Add(live_loss, dead_loss);
  };
  const auto [seq_loss, seq_grads] = RunBackward(1, builder);
  const auto [par_loss, par_grads] = RunBackward(4, builder);
  ASSERT_EQ(std::memcmp(&seq_loss, &par_loss, sizeof(float)), 0);
  ExpectGradsBitIdentical(seq_grads, par_grads);
}

// ---------------------------------------------------------------------------
// GradShard: redirect + fixed-order reduction.
// ---------------------------------------------------------------------------

TEST(GradShardTest, RedirectCapturesLeafGradsAndReduceRestoresThem) {
  Rng rng(21);
  ParamStore store;
  Linear lin(&store, "lin", 6, 3, &rng);

  auto loss_of = [&](uint64_t seed) {
    Rng r(seed);
    return SumAll(Gelu(lin.Forward(Tensor::Random({4, 6}, r))));
  };

  // Reference: plain sequential accumulation of two backward passes.
  store.ZeroGrad();
  loss_of(1).Backward();
  loss_of(2).Backward();
  const auto reference = GradsOf(store);

  // Sharded: each pass lands in its own shard; params stay untouched until
  // the fixed-order reduce.
  GradShard shard_a({&store});
  GradShard shard_b({&store});
  store.ZeroGrad();
  {
    ScopedGradShard guard(&shard_a);
    loss_of(1).Backward();
  }
  {
    ScopedGradShard guard(&shard_b);
    loss_of(2).Backward();
  }
  for (const auto& [name, t] : store.params()) {
    for (float g : t.grad_vector()) {
      ASSERT_EQ(g, 0.f) << "shard leaked into the real grad of " << name;
    }
  }
  GradShard::Reduce({&shard_a, &shard_b});
  ExpectGradsBitIdentical(reference, GradsOf(store));
}

TEST(GradShardTest, ResetClearsOnlyDirtyBuffers) {
  Rng rng(33);
  ParamStore store;
  Linear lin(&store, "lin", 5, 2, &rng);
  GradShard shard({&store});
  {
    ScopedGradShard guard(&shard);
    SumAll(lin.Forward(Tensor::Random({2, 5}, rng))).Backward();
  }
  shard.Reset();
  store.ZeroGrad();
  GradShard::Reduce({&shard});
  for (const auto& [name, t] : store.params()) {
    for (float g : t.grad_vector()) ASSERT_EQ(g, 0.f);
  }
}

TEST(GradShardTest, ShardStreamSeedIndependentPositions) {
  // Distinct (seed, step, shard) triples map to distinct streams, and the
  // mapping is pure — the foundation of thread-count-independent shard RNG.
  EXPECT_EQ(ShardStreamSeed(7, 3, 1), ShardStreamSeed(7, 3, 1));
  std::unordered_set<uint64_t> seen;
  for (int64_t step = 0; step < 50; ++step) {
    for (int64_t shard = 0; shard < 8; ++shard) {
      seen.insert(ShardStreamSeed(42, step, shard));
    }
  }
  EXPECT_EQ(seen.size(), 50u * 8u);
}

}  // namespace
}  // namespace nn
}  // namespace turl
