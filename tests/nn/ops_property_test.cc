// Property-style parameterized sweeps over the nn ops: algebraic identities
// and gradient checks across a grid of shapes and seeds.

#include <tuple>

#include "gtest/gtest.h"
#include "nn/ops.h"
#include "test_util.h"
#include "util/rng.h"

namespace turl {
namespace nn {
namespace {

using testing_util::ExpectGradientsMatch;

Tensor RandomTensor(Shape shape, Rng* rng, float lo = -1.f, float hi = 1.f) {
  return Tensor::Random(std::move(shape), *rng, lo, hi);
}

// ---------------------------------------------------------------------------
// Shape sweep: gradients of the binary/unary elementwise chain hold for any
// (rows, cols) pair.
class ElementwiseShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ElementwiseShapeSweep, ChainGradients) {
  auto [rows, cols, seed] = GetParam();
  Rng rng{uint64_t(seed)};
  Tensor a = RandomTensor({rows, cols}, &rng);
  Tensor b = RandomTensor({rows, cols}, &rng);
  ExpectGradientsMatch(
      [&] { return SumAll(Mul(TanhOp(Add(a, b)), Sub(a, b))); }, {a, b},
      1e-2f, 4e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ElementwiseShapeSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 2),
                      std::make_tuple(5, 1, 3), std::make_tuple(3, 4, 4),
                      std::make_tuple(8, 2, 5), std::make_tuple(2, 16, 6)));

// ---------------------------------------------------------------------------
// MatMul sweep over (m, k, n).
class MatMulShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeSweep, Gradients) {
  auto [m, k, n] = GetParam();
  Rng rng{uint64_t(m * 100 + k * 10 + n)};
  Tensor a = RandomTensor({m, k}, &rng);
  Tensor b = RandomTensor({k, n}, &rng);
  Tensor w = RandomTensor({m, n}, &rng);
  ExpectGradientsMatch([&] { return SumAll(Mul(MatMul(a, b), w)); }, {a, b});
}

TEST_P(MatMulShapeSweep, IdentityRightIsNoop) {
  auto [m, k, n] = GetParam();
  (void)n;
  Rng rng{uint64_t(m + k)};
  Tensor a = RandomTensor({m, k}, &rng);
  Tensor eye = Tensor::Zeros({k, k});
  for (int i = 0; i < k; ++i) eye.data()[i * k + i] = 1.f;
  Tensor out = MatMul(a, eye);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(out.at(i), a.at(i), 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(4, 4, 4), std::make_tuple(1, 8, 2),
                      std::make_tuple(6, 2, 5)));

// ---------------------------------------------------------------------------
// Softmax rows sum to one for any width; attention with a zero mask equals
// attention with a uniform additive constant (shift invariance).
class SoftmaxWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxWidthSweep, RowsSumToOne) {
  const int width = GetParam();
  Rng rng{uint64_t(width)};
  Tensor x = RandomTensor({3, width}, &rng, -4.f, 4.f);
  Tensor y = SoftmaxRows(x);
  for (int r = 0; r < 3; ++r) {
    float sum = 0;
    for (int c = 0; c < width; ++c) sum += y.at2(r, c);
    EXPECT_NEAR(sum, 1.f, 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SoftmaxWidthSweep,
                         ::testing::Values(1, 2, 3, 8, 17, 64));

TEST(AttentionPropertyTest, MaskShiftInvariance) {
  Rng rng(11);
  const int64_t n = 5, d = 8;
  Tensor q = RandomTensor({n, d}, &rng), k = RandomTensor({n, d}, &rng),
         v = RandomTensor({n, d}, &rng);
  std::vector<float> zero_mask(size_t(n * n), 0.f);
  std::vector<float> shifted(size_t(n * n), 2.5f);  // Constant per row.
  Tensor a = MultiHeadAttention(q, k, v, zero_mask, 2);
  Tensor b = MultiHeadAttention(q, k, v, shifted, 2);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.at(i), b.at(i), 1e-4f);
  }
}

TEST(AttentionPropertyTest, FullyMaskedRowIsUniformAverage) {
  // When a row sees nothing (all -1e9), softmax degenerates to uniform over
  // all positions — exercise that this produces finite output, no NaNs.
  Rng rng(12);
  const int64_t n = 4, d = 4;
  Tensor q = RandomTensor({n, d}, &rng), k = RandomTensor({n, d}, &rng),
         v = RandomTensor({n, d}, &rng);
  std::vector<float> mask(size_t(n * n), 0.f);
  for (int64_t j = 0; j < n; ++j) mask[size_t(j)] = -1e9f;  // Row 0 blind.
  Tensor out = MultiHeadAttention(q, k, v, mask, 2);
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out.at(i)));
  }
}

// ---------------------------------------------------------------------------
// LayerNorm properties: invariance to a per-row additive shift, and
// equivariance to positive scaling when gamma=1, beta=0.
class LayerNormWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(LayerNormWidthSweep, ShiftInvariance) {
  const int width = GetParam();
  Rng rng(uint64_t(width) + 99);
  Tensor x = RandomTensor({2, width}, &rng);
  Tensor shifted = Tensor::Zeros({2, width});
  for (int64_t i = 0; i < x.numel(); ++i) {
    shifted.data()[i] = x.at(i) + 7.25f;
  }
  Tensor gamma = Tensor::Full({width}, 1.f);
  Tensor beta = Tensor::Zeros({width});
  Tensor a = LayerNormOp(x, gamma, beta);
  Tensor b = LayerNormOp(shifted, gamma, beta);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.at(i), b.at(i), 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LayerNormWidthSweep,
                         ::testing::Values(2, 4, 9, 32));

// ---------------------------------------------------------------------------
// Cross-entropy sanity across class counts: loss of a uniform distribution
// equals log(C) and perfect logits drive it toward zero.
class CrossEntropyClassSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrossEntropyClassSweep, UniformAndConfident) {
  const int classes = GetParam();
  Tensor uniform = Tensor::Zeros({2, classes});
  std::vector<int> targets = {0, classes - 1};
  EXPECT_NEAR(SoftmaxCrossEntropy(uniform, targets).item(),
              std::log(float(classes)), 1e-4f);

  Tensor confident = Tensor::Zeros({2, classes});
  confident.data()[0] = 30.f;
  confident.data()[int64_t(classes) + classes - 1] = 30.f;
  EXPECT_LT(SoftmaxCrossEntropy(confident, targets).item(), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Classes, CrossEntropyClassSweep,
                         ::testing::Values(2, 3, 5, 10, 100));

// ---------------------------------------------------------------------------
// Seed sweep: gradient checks of the full fused attention under different
// random draws (catches data-dependent backward bugs).
class AttentionSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(AttentionSeedSweep, Gradients) {
  Rng rng{uint64_t(GetParam())};
  const int64_t n = 4, d = 6;
  Tensor q = RandomTensor({n, d}, &rng), k = RandomTensor({n, d}, &rng),
         v = RandomTensor({n, d}, &rng);
  Tensor w = RandomTensor({n, d}, &rng);
  std::vector<float> mask(size_t(n * n), 0.f);
  // Random sparsity pattern, diagonal always visible.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i != j && rng.Bernoulli(0.4)) mask[size_t(i * n + j)] = -1e9f;
    }
  }
  ExpectGradientsMatch(
      [&] { return SumAll(Mul(MultiHeadAttention(q, k, v, mask, 3), w)); },
      {q, k, v}, 1e-2f, 4e-2f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttentionSeedSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace nn
}  // namespace turl
