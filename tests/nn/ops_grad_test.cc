// Numeric gradient checks for every differentiable op in nn/ops.h.
// Each test builds a small random graph ending in a scalar and compares
// reverse-mode gradients against central finite differences.

#include <vector>

#include "gtest/gtest.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "test_util.h"
#include "util/rng.h"

namespace turl {
namespace nn {
namespace {

using testing_util::ExpectGradientsMatch;

Tensor RandomTensor(Shape shape, Rng* rng, float lo = -1.f, float hi = 1.f) {
  return Tensor::Random(std::move(shape), *rng, lo, hi);
}

// Weighted sum makes the loss sensitive to each output element distinctly.
Tensor WeightedSum(const Tensor& x, const Tensor& w) {
  return SumAll(Mul(x, w));
}

TEST(OpsGradTest, Add) {
  Rng rng(1);
  Tensor a = RandomTensor({3, 4}, &rng), b = RandomTensor({3, 4}, &rng);
  Tensor w = RandomTensor({3, 4}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(Add(a, b), w); }, {a, b});
}

TEST(OpsGradTest, Sub) {
  Rng rng(2);
  Tensor a = RandomTensor({2, 5}, &rng), b = RandomTensor({2, 5}, &rng);
  Tensor w = RandomTensor({2, 5}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(Sub(a, b), w); }, {a, b});
}

TEST(OpsGradTest, Mul) {
  Rng rng(3);
  Tensor a = RandomTensor({3, 3}, &rng), b = RandomTensor({3, 3}, &rng);
  Tensor w = RandomTensor({3, 3}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(Mul(a, b), w); }, {a, b});
}

TEST(OpsGradTest, Scale) {
  Rng rng(4);
  Tensor a = RandomTensor({2, 3}, &rng);
  Tensor w = RandomTensor({2, 3}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(Scale(a, -2.5f), w); }, {a});
}

TEST(OpsGradTest, AddBias) {
  Rng rng(5);
  Tensor x = RandomTensor({4, 3}, &rng), b = RandomTensor({3}, &rng);
  Tensor w = RandomTensor({4, 3}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(AddBias(x, b), w); }, {x, b});
}

TEST(OpsGradTest, MatMul) {
  Rng rng(6);
  Tensor a = RandomTensor({3, 4}, &rng), b = RandomTensor({4, 2}, &rng);
  Tensor w = RandomTensor({3, 2}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(MatMul(a, b), w); }, {a, b});
}

TEST(OpsGradTest, MatMulNT) {
  Rng rng(7);
  Tensor a = RandomTensor({3, 4}, &rng), b = RandomTensor({5, 4}, &rng);
  Tensor w = RandomTensor({3, 5}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(MatMulNT(a, b), w); }, {a, b});
}

TEST(OpsGradTest, MatMulNTMatchesMatMulForward) {
  // A * B^T computed via MatMulNT must equal MatMul(A, transpose(B)).
  Rng rng(8);
  Tensor a = RandomTensor({2, 3}, &rng);
  Tensor b = RandomTensor({4, 3}, &rng);
  Tensor bt = Tensor::Zeros({3, 4});
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < 3; ++j) bt.data()[j * 4 + i] = b.at2(i, j);
  Tensor y1 = MatMulNT(a, b);
  Tensor y2 = MatMul(a, bt);
  for (int64_t i = 0; i < y1.numel(); ++i)
    EXPECT_NEAR(y1.at(i), y2.at(i), 1e-5f);
}

TEST(OpsGradTest, Gelu) {
  Rng rng(9);
  Tensor x = RandomTensor({3, 4}, &rng, -2.f, 2.f);
  Tensor w = RandomTensor({3, 4}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(Gelu(x), w); }, {x});
}

TEST(OpsGradTest, Relu) {
  Rng rng(10);
  // Keep values away from the kink at 0 for finite differences.
  Tensor x = Tensor::FromVector({2, 3}, {-1.f, 2.f, -0.5f, 0.7f, 1.5f, -2.f});
  Tensor w = RandomTensor({2, 3}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(Relu(x), w); }, {x});
}

TEST(OpsGradTest, Tanh) {
  Rng rng(11);
  Tensor x = RandomTensor({2, 4}, &rng, -2.f, 2.f);
  Tensor w = RandomTensor({2, 4}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(TanhOp(x), w); }, {x});
}

TEST(OpsGradTest, Sigmoid) {
  Rng rng(12);
  Tensor x = RandomTensor({2, 4}, &rng, -3.f, 3.f);
  Tensor w = RandomTensor({2, 4}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(SigmoidOp(x), w); }, {x});
}

TEST(OpsGradTest, LayerNorm) {
  Rng rng(13);
  Tensor x = RandomTensor({3, 6}, &rng);
  Tensor gamma = RandomTensor({6}, &rng, 0.5f, 1.5f);
  Tensor beta = RandomTensor({6}, &rng);
  Tensor w = RandomTensor({3, 6}, &rng);
  ExpectGradientsMatch(
      [&] { return WeightedSum(LayerNormOp(x, gamma, beta), w); },
      {x, gamma, beta}, 1e-2f, 3e-2f);
}

TEST(OpsGradTest, LayerNormForwardNormalizes) {
  Tensor x = Tensor::FromVector({1, 4}, {1.f, 2.f, 3.f, 4.f});
  Tensor gamma = Tensor::Full({4}, 1.f);
  Tensor beta = Tensor::Zeros({4});
  Tensor y = LayerNormOp(x, gamma, beta);
  float mean = 0.f, var = 0.f;
  for (int64_t i = 0; i < 4; ++i) mean += y.at(i);
  mean /= 4.f;
  for (int64_t i = 0; i < 4; ++i) var += (y.at(i) - mean) * (y.at(i) - mean);
  var /= 4.f;
  EXPECT_NEAR(mean, 0.f, 1e-5f);
  EXPECT_NEAR(var, 1.f, 1e-3f);
}

TEST(OpsGradTest, EmbeddingLookup) {
  Rng rng(14);
  Tensor weight = RandomTensor({5, 3}, &rng);
  std::vector<int> ids = {0, 2, 2, 4};  // Repeats exercise scatter-add.
  Tensor w = RandomTensor({4, 3}, &rng);
  ExpectGradientsMatch(
      [&] { return WeightedSum(EmbeddingLookup(weight, ids), w); }, {weight});
}

TEST(OpsGradTest, EmbeddingLookupForwardGathers) {
  Tensor weight = Tensor::FromVector({3, 2}, {1.f, 2.f, 3.f, 4.f, 5.f, 6.f});
  Tensor out = EmbeddingLookup(weight, {2, 0});
  EXPECT_FLOAT_EQ(out.at2(0, 0), 5.f);
  EXPECT_FLOAT_EQ(out.at2(0, 1), 6.f);
  EXPECT_FLOAT_EQ(out.at2(1, 0), 1.f);
}

TEST(OpsGradTest, ConcatCols) {
  Rng rng(15);
  Tensor a = RandomTensor({3, 2}, &rng), b = RandomTensor({3, 4}, &rng);
  Tensor w = RandomTensor({3, 6}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(ConcatCols(a, b), w); },
                       {a, b});
}

TEST(OpsGradTest, ConcatRows) {
  Rng rng(16);
  Tensor a = RandomTensor({2, 3}, &rng), b = RandomTensor({1, 3}, &rng),
         c = RandomTensor({3, 3}, &rng);
  Tensor w = RandomTensor({6, 3}, &rng);
  ExpectGradientsMatch(
      [&] { return WeightedSum(ConcatRows({a, b, c}), w); }, {a, b, c});
}

TEST(OpsGradTest, SelectRows) {
  Rng rng(17);
  Tensor x = RandomTensor({5, 3}, &rng);
  std::vector<int> rows = {4, 1, 1};
  Tensor w = RandomTensor({3, 3}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(SelectRows(x, rows), w); },
                       {x});
}

TEST(OpsGradTest, RowsMean) {
  Rng rng(18);
  Tensor x = RandomTensor({4, 3}, &rng);
  std::vector<int> rows = {0, 2, 3};
  Tensor w = RandomTensor({1, 3}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(RowsMean(x, rows), w); }, {x});
}

TEST(OpsGradTest, BagMean) {
  Rng rng(181);
  Tensor weight = RandomTensor({6, 3}, &rng);
  std::vector<std::vector<int>> bags = {{0, 1, 1}, {}, {5}, {2, 3, 4, 5}};
  Tensor w = RandomTensor({4, 3}, &rng);
  ExpectGradientsMatch(
      [&] { return WeightedSum(BagMean(weight, bags), w); }, {weight});
}

TEST(OpsGradTest, BagMeanForwardValues) {
  Tensor weight = Tensor::FromVector({3, 2}, {1.f, 2.f, 3.f, 4.f, 5.f, 6.f});
  Tensor out = BagMean(weight, {{0, 2}, {}});
  EXPECT_FLOAT_EQ(out.at2(0, 0), 3.f);
  EXPECT_FLOAT_EQ(out.at2(0, 1), 4.f);
  EXPECT_FLOAT_EQ(out.at2(1, 0), 0.f);  // Empty bag is all-zero.
  EXPECT_FLOAT_EQ(out.at2(1, 1), 0.f);
}

TEST(OpsGradTest, SoftmaxRows) {
  Rng rng(19);
  Tensor x = RandomTensor({3, 4}, &rng);
  Tensor w = RandomTensor({3, 4}, &rng);
  ExpectGradientsMatch([&] { return WeightedSum(SoftmaxRows(x), w); }, {x},
                       1e-2f, 3e-2f);
}

TEST(OpsGradTest, SoftmaxRowsSumToOne) {
  Rng rng(20);
  Tensor x = RandomTensor({4, 6}, &rng, -5.f, 5.f);
  Tensor y = SoftmaxRows(x);
  for (int64_t i = 0; i < 4; ++i) {
    float sum = 0.f;
    for (int64_t j = 0; j < 6; ++j) sum += y.at2(i, j);
    EXPECT_NEAR(sum, 1.f, 1e-5f);
  }
}

std::vector<float> NoMask(int64_t n) {
  return std::vector<float>(size_t(n * n), 0.f);
}

TEST(OpsGradTest, MultiHeadAttentionUnmasked) {
  Rng rng(21);
  const int64_t n = 4, d = 6;
  Tensor q = RandomTensor({n, d}, &rng), k = RandomTensor({n, d}, &rng),
         v = RandomTensor({n, d}, &rng);
  Tensor w = RandomTensor({n, d}, &rng);
  auto mask = NoMask(n);
  ExpectGradientsMatch(
      [&] { return WeightedSum(MultiHeadAttention(q, k, v, mask, 2), w); },
      {q, k, v}, 1e-2f, 3e-2f);
}

TEST(OpsGradTest, MultiHeadAttentionMasked) {
  Rng rng(22);
  const int64_t n = 5, d = 4;
  Tensor q = RandomTensor({n, d}, &rng), k = RandomTensor({n, d}, &rng),
         v = RandomTensor({n, d}, &rng);
  Tensor w = RandomTensor({n, d}, &rng);
  // Block-diagonal visibility: {0,1,2} and {3,4} cannot see each other.
  std::vector<float> mask(size_t(n * n), 0.f);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      bool same_block = (i < 3) == (j < 3);
      if (!same_block) mask[size_t(i * n + j)] = -1e9f;
    }
  }
  ExpectGradientsMatch(
      [&] { return WeightedSum(MultiHeadAttention(q, k, v, mask, 2), w); },
      {q, k, v}, 1e-2f, 3e-2f);
}

TEST(OpsGradTest, MaskedAttentionIgnoresInvisibleElements) {
  // With a block mask, perturbing v in the other block must not change out.
  Rng rng(23);
  const int64_t n = 4, d = 4;
  Tensor q = RandomTensor({n, d}, &rng), k = RandomTensor({n, d}, &rng),
         v = RandomTensor({n, d}, &rng);
  std::vector<float> mask(size_t(n * n), 0.f);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      if ((i < 2) != (j < 2)) mask[size_t(i * n + j)] = -1e9f;
  Tensor out1 = MultiHeadAttention(q, k, v, mask, 2);
  v.data()[3 * d + 1] += 10.f;  // Row 3 is invisible to rows 0 and 1.
  Tensor out2 = MultiHeadAttention(q, k, v, mask, 2);
  for (int64_t i = 0; i < 2; ++i)
    for (int64_t j = 0; j < d; ++j)
      EXPECT_FLOAT_EQ(out1.at2(i, j), out2.at2(i, j));
}

TEST(OpsGradTest, SoftmaxCrossEntropy) {
  Rng rng(24);
  Tensor logits = RandomTensor({4, 5}, &rng);
  std::vector<int> targets = {1, 0, 4, 2};
  ExpectGradientsMatch([&] { return SoftmaxCrossEntropy(logits, targets); },
                       {logits}, 1e-2f, 3e-2f);
}

TEST(OpsGradTest, SoftmaxCrossEntropyIgnoreIndex) {
  Rng rng(25);
  Tensor logits = RandomTensor({4, 3}, &rng);
  std::vector<int> targets = {1, -1, 2, -1};
  ExpectGradientsMatch(
      [&] { return SoftmaxCrossEntropy(logits, targets, -1); }, {logits},
      1e-2f, 3e-2f);
}

TEST(OpsGradTest, SoftmaxCrossEntropyAllIgnoredIsZero) {
  Rng rng(26);
  Tensor logits = RandomTensor({2, 3}, &rng);
  Tensor loss = SoftmaxCrossEntropy(logits, {-1, -1}, -1);
  EXPECT_FLOAT_EQ(loss.item(), 0.f);
  loss.Backward();  // Must not crash.
}

TEST(OpsGradTest, SoftmaxCrossEntropyValueMatchesManual) {
  // Uniform logits over C classes -> loss = log(C).
  Tensor logits = Tensor::Zeros({2, 4});
  Tensor loss = SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(loss.item(), std::log(4.f), 1e-5f);
}

TEST(OpsGradTest, BceWithLogits) {
  Rng rng(27);
  Tensor logits = RandomTensor({3, 2}, &rng, -2.f, 2.f);
  std::vector<float> targets = {1.f, 0.f, 0.f, 1.f, 1.f, 0.f};
  ExpectGradientsMatch([&] { return BceWithLogits(logits, targets); },
                       {logits}, 1e-2f, 3e-2f);
}

TEST(OpsGradTest, BceWithLogitsValueAtZero) {
  // logit 0 => p=0.5 => loss = log 2 regardless of target.
  Tensor logits = Tensor::Zeros({4});
  Tensor loss = BceWithLogits(logits, {0.f, 1.f, 0.f, 1.f});
  EXPECT_NEAR(loss.item(), std::log(2.f), 1e-5f);
}

TEST(OpsGradTest, SumAllAndMeanAll) {
  Rng rng(28);
  Tensor x = RandomTensor({2, 3}, &rng);
  ExpectGradientsMatch([&] { return SumAll(x); }, {x});
  ExpectGradientsMatch([&] { return MeanAll(x); }, {x});
  EXPECT_NEAR(MeanAll(x).item(), SumAll(x).item() / 6.f, 1e-5f);
}

TEST(OpsGradTest, DropoutEvalIsIdentity) {
  Rng rng(29);
  Tensor x = RandomTensor({2, 3}, &rng);
  Tensor y = Dropout(x, 0.5f, /*training=*/false, &rng);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y.at(i), x.at(i));
}

TEST(OpsGradTest, DropoutTrainScalesSurvivors) {
  Rng rng(30);
  Tensor x = Tensor::Full({1, 1000}, 1.f);
  Tensor y = Dropout(x, 0.25f, /*training=*/true, &rng);
  int zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y.at(i) == 0.f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.at(i), 1.f / 0.75f, 1e-5f);
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.25, 0.05);
}

TEST(OpsGradTest, DropoutBackwardUsesSameMask) {
  Rng rng(31);
  Tensor x = Tensor::Full({1, 100}, 2.f);
  x.ZeroGrad();
  Tensor y = Dropout(x, 0.5f, true, &rng);
  SumAll(y).Backward();
  for (int64_t i = 0; i < 100; ++i) {
    if (y.at(i) == 0.f) {
      EXPECT_FLOAT_EQ(x.grad_vector()[size_t(i)], 0.f);
    } else {
      EXPECT_FLOAT_EQ(x.grad_vector()[size_t(i)], 2.f);
    }
  }
}

// Composite graph: a two-layer MLP with every activation in the chain,
// checked end to end.
TEST(OpsGradTest, CompositeMlpGraph) {
  Rng rng(32);
  Tensor x = RandomTensor({2, 4}, &rng);
  Tensor w1 = RandomTensor({4, 5}, &rng), b1 = RandomTensor({5}, &rng);
  Tensor w2 = RandomTensor({5, 3}, &rng), b2 = RandomTensor({3}, &rng);
  std::vector<int> targets = {2, 0};
  ExpectGradientsMatch(
      [&] {
        Tensor h = Gelu(AddBias(MatMul(x, w1), b1));
        Tensor logits = AddBias(MatMul(h, w2), b2);
        return SoftmaxCrossEntropy(logits, targets);
      },
      {x, w1, b1, w2, b2}, 1e-2f, 3e-2f);
}

}  // namespace
}  // namespace nn
}  // namespace turl
