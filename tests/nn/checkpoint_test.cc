#include "nn/checkpoint.h"

#include <cstdio>

#include "gtest/gtest.h"

namespace turl {
namespace nn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void BuildStore(ParamStore* store, uint64_t seed) {
  Rng rng(seed);
  store->CreateNormal("enc.w", {3, 4}, 0.5f, &rng);
  store->CreateNormal("enc.b", {4}, 0.5f, &rng);
  store->CreateFull("ln.gamma", {4}, 1.f);
}

TEST(CheckpointTest, RoundTripRestoresValues) {
  const std::string path = TempPath("ckpt.bin");
  ParamStore a;
  BuildStore(&a, 1);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());

  ParamStore b;
  BuildStore(&b, 99);  // Different init values.
  ASSERT_TRUE(LoadCheckpoint(&b, path).ok());
  for (size_t i = 0; i < a.params().size(); ++i) {
    const Tensor& ta = a.params()[i].second;
    const Tensor& tb = b.params()[i].second;
    ASSERT_EQ(ta.numel(), tb.numel());
    for (int64_t j = 0; j < ta.numel(); ++j)
      EXPECT_FLOAT_EQ(ta.at(j), tb.at(j));
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileFails) {
  ParamStore s;
  BuildStore(&s, 1);
  EXPECT_FALSE(LoadCheckpoint(&s, TempPath("does_not_exist.bin")).ok());
}

TEST(CheckpointTest, ParamCountMismatchFails) {
  const std::string path = TempPath("ckpt_count.bin");
  ParamStore a;
  BuildStore(&a, 1);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ParamStore b;
  Rng rng(2);
  b.CreateNormal("only_one", {2}, 0.1f, &rng);
  EXPECT_EQ(LoadCheckpoint(&b, path).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShapeMismatchFails) {
  const std::string path = TempPath("ckpt_shape.bin");
  ParamStore a;
  BuildStore(&a, 1);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ParamStore b;
  Rng rng(3);
  b.CreateNormal("enc.w", {4, 3}, 0.1f, &rng);  // Transposed shape.
  b.CreateNormal("enc.b", {4}, 0.1f, &rng);
  b.CreateFull("ln.gamma", {4}, 1.f);
  EXPECT_EQ(LoadCheckpoint(&b, path).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, NameMismatchFails) {
  const std::string path = TempPath("ckpt_name.bin");
  ParamStore a;
  BuildStore(&a, 1);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ParamStore b;
  Rng rng(4);
  b.CreateNormal("renamed.w", {3, 4}, 0.1f, &rng);
  b.CreateNormal("enc.b", {4}, 0.1f, &rng);
  b.CreateFull("ln.gamma", {4}, 1.f);
  EXPECT_FALSE(LoadCheckpoint(&b, path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, GarbageFileFails) {
  const std::string path = TempPath("garbage.bin");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("not a checkpoint", f);
    fclose(f);
  }
  ParamStore s;
  BuildStore(&s, 1);
  EXPECT_FALSE(LoadCheckpoint(&s, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace turl
