#include "nn/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "gtest/gtest.h"

namespace turl {
namespace nn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void BuildStore(ParamStore* store, uint64_t seed) {
  Rng rng(seed);
  store->CreateNormal("enc.w", {3, 4}, 0.5f, &rng);
  store->CreateNormal("enc.b", {4}, 0.5f, &rng);
  store->CreateFull("ln.gamma", {4}, 1.f);
}

std::vector<std::vector<float>> SnapshotStore(const ParamStore& store) {
  std::vector<std::vector<float>> out;
  for (const auto& [name, t] : store.params()) out.push_back(t.ToVector());
  return out;
}

void ExpectUntouched(const ParamStore& store,
                     const std::vector<std::vector<float>>& before) {
  ASSERT_EQ(store.params().size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(store.params()[i].second.ToVector(), before[i])
        << "param '" << store.params()[i].first
        << "' was modified by a failed load";
  }
}

TEST(CheckpointTest, RoundTripRestoresValues) {
  const std::string path = TempPath("ckpt.bin");
  ParamStore a;
  BuildStore(&a, 1);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());

  ParamStore b;
  BuildStore(&b, 99);  // Different init values.
  ASSERT_TRUE(LoadCheckpoint(&b, path).ok());
  for (size_t i = 0; i < a.params().size(); ++i) {
    const Tensor& ta = a.params()[i].second;
    const Tensor& tb = b.params()[i].second;
    ASSERT_EQ(ta.numel(), tb.numel());
    for (int64_t j = 0; j < ta.numel(); ++j)
      EXPECT_FLOAT_EQ(ta.at(j), tb.at(j));
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileFails) {
  ParamStore s;
  BuildStore(&s, 1);
  EXPECT_FALSE(LoadCheckpoint(&s, TempPath("does_not_exist.bin")).ok());
}

TEST(CheckpointTest, ParamCountMismatchFails) {
  const std::string path = TempPath("ckpt_count.bin");
  ParamStore a;
  BuildStore(&a, 1);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ParamStore b;
  Rng rng(2);
  b.CreateNormal("only_one", {2}, 0.1f, &rng);
  EXPECT_EQ(LoadCheckpoint(&b, path).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShapeMismatchFails) {
  const std::string path = TempPath("ckpt_shape.bin");
  ParamStore a;
  BuildStore(&a, 1);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ParamStore b;
  Rng rng(3);
  b.CreateNormal("enc.w", {4, 3}, 0.1f, &rng);  // Transposed shape.
  b.CreateNormal("enc.b", {4}, 0.1f, &rng);
  b.CreateFull("ln.gamma", {4}, 1.f);
  EXPECT_EQ(LoadCheckpoint(&b, path).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, NameMismatchFails) {
  const std::string path = TempPath("ckpt_name.bin");
  ParamStore a;
  BuildStore(&a, 1);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  ParamStore b;
  Rng rng(4);
  b.CreateNormal("renamed.w", {3, 4}, 0.1f, &rng);
  b.CreateNormal("enc.b", {4}, 0.1f, &rng);
  b.CreateFull("ln.gamma", {4}, 1.f);
  EXPECT_FALSE(LoadCheckpoint(&b, path).ok());
  std::remove(path.c_str());
}

// Regression tests for the in-place loading bug: LoadCheckpoint used to
// write parameters as it read them, so a file that failed at param k left
// params 0..k-1 overwritten. Every failure path must now leave the store
// bit-identical to its pre-load state.

TEST(CheckpointTest, TruncatedFileLeavesStoreUntouched) {
  const std::string path = TempPath("ckpt_trunc.bin");
  ParamStore a;
  BuildStore(&a, 1);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  // Cut the file mid-way through the last parameter: the first params parse
  // cleanly, which is exactly the case the old loader corrupted.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size() - 6));
  }

  ParamStore b;
  BuildStore(&b, 99);
  const std::vector<std::vector<float>> before = SnapshotStore(b);
  EXPECT_FALSE(LoadCheckpoint(&b, path).ok());
  ExpectUntouched(b, before);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShapeMismatchLeavesStoreUntouched) {
  const std::string path = TempPath("ckpt_shape_untouched.bin");
  ParamStore a;
  BuildStore(&a, 1);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());

  // First two params match; the third has a different shape, so the file
  // parses well past the point where the old loader started writing.
  ParamStore b;
  Rng rng(5);
  b.CreateNormal("enc.w", {3, 4}, 0.1f, &rng);
  b.CreateNormal("enc.b", {4}, 0.1f, &rng);
  b.CreateFull("ln.gamma", {8}, 1.f);
  const std::vector<std::vector<float>> before = SnapshotStore(b);
  EXPECT_EQ(LoadCheckpoint(&b, path).code(), StatusCode::kFailedPrecondition);
  ExpectUntouched(b, before);
  std::remove(path.c_str());
}

TEST(CheckpointTest, NameMismatchLeavesStoreUntouched) {
  const std::string path = TempPath("ckpt_name_untouched.bin");
  ParamStore a;
  BuildStore(&a, 1);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());

  ParamStore b;
  Rng rng(6);
  b.CreateNormal("enc.w", {3, 4}, 0.1f, &rng);
  b.CreateNormal("enc.b", {4}, 0.1f, &rng);
  b.CreateFull("other.name", {4}, 1.f);
  const std::vector<std::vector<float>> before = SnapshotStore(b);
  EXPECT_FALSE(LoadCheckpoint(&b, path).ok());
  ExpectUntouched(b, before);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TrailingBytesLeaveStoreUntouched) {
  const std::string path = TempPath("ckpt_trailing.bin");
  ParamStore a;
  BuildStore(&a, 1);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("junk", 4);
  }
  ParamStore b;
  BuildStore(&b, 99);
  const std::vector<std::vector<float>> before = SnapshotStore(b);
  EXPECT_FALSE(LoadCheckpoint(&b, path).ok());
  ExpectUntouched(b, before);
  std::remove(path.c_str());
}

TEST(CheckpointTest, GarbageFileFails) {
  const std::string path = TempPath("garbage.bin");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("not a checkpoint", f);
    fclose(f);
  }
  ParamStore s;
  BuildStore(&s, 1);
  EXPECT_FALSE(LoadCheckpoint(&s, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace turl
