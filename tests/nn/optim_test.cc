#include "nn/optim.h"

#include <cmath>

#include "gtest/gtest.h"
#include "nn/ops.h"

namespace turl {
namespace nn {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize (w - 3)^2 elementwise.
  ParamStore store;
  Tensor w = store.CreateFull("w", {4}, 0.f);
  Adam adam(&store, AdamConfig{.lr = 0.1f});
  for (int step = 0; step < 300; ++step) {
    store.ZeroGrad();
    Tensor target = Tensor::Full({4}, 3.f);
    Tensor diff = Sub(w, target);
    Tensor loss = SumAll(Mul(diff, diff));
    loss.Backward();
    adam.Step();
  }
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(w.at(i), 3.f, 1e-2f);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  ParamStore store;
  Rng rng(1);
  Tensor used = store.CreateFull("used", {1}, 0.f);
  Tensor unused = store.CreateFull("unused", {1}, 7.f);
  Adam adam(&store, AdamConfig{.lr = 0.5f});
  store.ZeroGrad();
  // Only give `used` a gradient by clearing grads then re-accumulating.
  SumAll(Mul(used, used)).Backward();
  unused.impl()->grad.clear();  // Simulate a parameter untouched this step.
  adam.Step();
  EXPECT_FLOAT_EQ(unused.at(0), 7.f);
}

TEST(AdamTest, StepCountIncrements) {
  ParamStore store;
  Tensor w = store.CreateFull("w", {1}, 1.f);
  Adam adam(&store, AdamConfig{});
  EXPECT_EQ(adam.step_count(), 0);
  store.ZeroGrad();
  SumAll(w).Backward();
  adam.Step();
  EXPECT_EQ(adam.step_count(), 1);
}

TEST(AdamTest, LrScaleZeroFreezesWeights) {
  ParamStore store;
  Tensor w = store.CreateFull("w", {2}, 1.f);
  Adam adam(&store, AdamConfig{.lr = 0.1f});
  store.ZeroGrad();
  SumAll(Mul(w, w)).Backward();
  adam.Step(/*lr_scale=*/0.f);
  EXPECT_FLOAT_EQ(w.at(0), 1.f);
}

TEST(AdamTest, WeightDecayPullsTowardZero) {
  ParamStore store;
  Tensor w = store.CreateFull("w", {1}, 5.f);
  Adam adam(&store, AdamConfig{.lr = 0.05f, .weight_decay = 1.f});
  for (int step = 0; step < 200; ++step) {
    store.ZeroGrad();
    // Loss gradient is 0; only decay acts.
    w.ZeroGrad();
    adam.Step();
  }
  EXPECT_LT(std::abs(w.at(0)), 1.f);
}

TEST(LinearDecayScheduleTest, Endpoints) {
  LinearDecaySchedule sched(100, 0.f);
  EXPECT_FLOAT_EQ(sched.Scale(0), 1.f);
  EXPECT_NEAR(sched.Scale(50), 0.5f, 1e-5f);
  EXPECT_FLOAT_EQ(sched.Scale(100), 0.f);
  EXPECT_FLOAT_EQ(sched.Scale(1000), 0.f);
}

TEST(LinearDecayScheduleTest, FinalFraction) {
  LinearDecaySchedule sched(10, 0.2f);
  EXPECT_FLOAT_EQ(sched.Scale(0), 1.f);
  EXPECT_NEAR(sched.Scale(5), 0.6f, 1e-5f);
  EXPECT_FLOAT_EQ(sched.Scale(10), 0.2f);
}

TEST(AdamTest, TrainsTinyClassifier) {
  // Linearly separable 2-class problem must reach zero training error.
  ParamStore store;
  Rng rng(2);
  Tensor w = store.CreateNormal("w", {2, 2}, 0.1f, &rng);
  Tensor b = store.CreateZeros("b", {2});
  Adam adam(&store, AdamConfig{.lr = 0.05f});
  std::vector<float> xs = {1.f, 0.f, 0.9f, 0.1f, 0.f, 1.f, 0.1f, 0.9f};
  std::vector<int> ys = {0, 0, 1, 1};
  Tensor x = Tensor::FromVector({4, 2}, xs);
  for (int step = 0; step < 200; ++step) {
    store.ZeroGrad();
    Tensor logits = AddBias(MatMul(x, w), b);
    SoftmaxCrossEntropy(logits, ys).Backward();
    adam.Step();
  }
  Tensor logits = AddBias(MatMul(x, w), b);
  for (int i = 0; i < 4; ++i) {
    int pred = logits.at2(i, 0) > logits.at2(i, 1) ? 0 : 1;
    EXPECT_EQ(pred, ys[size_t(i)]) << "example " << i;
  }
}

}  // namespace
}  // namespace nn
}  // namespace turl
