#include "nn/optim.h"

#include <cmath>

#include "gtest/gtest.h"
#include "nn/ops.h"

namespace turl {
namespace nn {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize (w - 3)^2 elementwise.
  ParamStore store;
  Tensor w = store.CreateFull("w", {4}, 0.f);
  Adam adam(&store, AdamConfig{.lr = 0.1f});
  for (int step = 0; step < 300; ++step) {
    store.ZeroGrad();
    Tensor target = Tensor::Full({4}, 3.f);
    Tensor diff = Sub(w, target);
    Tensor loss = SumAll(Mul(diff, diff));
    loss.Backward();
    adam.Step();
  }
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(w.at(i), 3.f, 1e-2f);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  ParamStore store;
  Rng rng(1);
  Tensor used = store.CreateFull("used", {1}, 0.f);
  Tensor unused = store.CreateFull("unused", {1}, 7.f);
  Adam adam(&store, AdamConfig{.lr = 0.5f});
  store.ZeroGrad();
  // Only give `used` a gradient by clearing grads then re-accumulating.
  SumAll(Mul(used, used)).Backward();
  unused.impl()->grad.clear();  // Simulate a parameter untouched this step.
  adam.Step();
  EXPECT_FLOAT_EQ(unused.at(0), 7.f);
}

TEST(AdamTest, StepCountIncrements) {
  ParamStore store;
  Tensor w = store.CreateFull("w", {1}, 1.f);
  Adam adam(&store, AdamConfig{});
  EXPECT_EQ(adam.step_count(), 0);
  store.ZeroGrad();
  SumAll(w).Backward();
  adam.Step();
  EXPECT_EQ(adam.step_count(), 1);
}

TEST(AdamTest, LrScaleZeroFreezesWeights) {
  ParamStore store;
  Tensor w = store.CreateFull("w", {2}, 1.f);
  Adam adam(&store, AdamConfig{.lr = 0.1f});
  store.ZeroGrad();
  SumAll(Mul(w, w)).Backward();
  adam.Step(/*lr_scale=*/0.f);
  EXPECT_FLOAT_EQ(w.at(0), 1.f);
}

TEST(AdamTest, WeightDecayPullsTowardZero) {
  ParamStore store;
  Tensor w = store.CreateFull("w", {1}, 5.f);
  Adam adam(&store, AdamConfig{.lr = 0.05f, .weight_decay = 1.f});
  for (int step = 0; step < 200; ++step) {
    store.ZeroGrad();
    // Loss gradient is 0; only decay acts.
    w.ZeroGrad();
    adam.Step();
  }
  EXPECT_LT(std::abs(w.at(0)), 1.f);
}

TEST(LinearDecayScheduleTest, Endpoints) {
  LinearDecaySchedule sched(100, 0.f);
  EXPECT_FLOAT_EQ(sched.Scale(0), 1.f);
  EXPECT_NEAR(sched.Scale(50), 0.5f, 1e-5f);
  EXPECT_FLOAT_EQ(sched.Scale(100), 0.f);
  EXPECT_FLOAT_EQ(sched.Scale(1000), 0.f);
}

TEST(LinearDecayScheduleTest, FinalFraction) {
  LinearDecaySchedule sched(10, 0.2f);
  EXPECT_FLOAT_EQ(sched.Scale(0), 1.f);
  EXPECT_NEAR(sched.Scale(5), 0.6f, 1e-5f);
  EXPECT_FLOAT_EQ(sched.Scale(10), 0.2f);
}

TEST(AdamTest, TrainsTinyClassifier) {
  // Linearly separable 2-class problem must reach zero training error.
  ParamStore store;
  Rng rng(2);
  Tensor w = store.CreateNormal("w", {2, 2}, 0.1f, &rng);
  Tensor b = store.CreateZeros("b", {2});
  Adam adam(&store, AdamConfig{.lr = 0.05f});
  std::vector<float> xs = {1.f, 0.f, 0.9f, 0.1f, 0.f, 1.f, 0.1f, 0.9f};
  std::vector<int> ys = {0, 0, 1, 1};
  Tensor x = Tensor::FromVector({4, 2}, xs);
  for (int step = 0; step < 200; ++step) {
    store.ZeroGrad();
    Tensor logits = AddBias(MatMul(x, w), b);
    SoftmaxCrossEntropy(logits, ys).Backward();
    adam.Step();
  }
  Tensor logits = AddBias(MatMul(x, w), b);
  for (int i = 0; i < 4; ++i) {
    int pred = logits.at2(i, 0) > logits.at2(i, 1) ? 0 : 1;
    EXPECT_EQ(pred, ys[size_t(i)]) << "example " << i;
  }
}

TEST(AdamTest, BiasCorrectionStaysExactAtLargeStepCounts) {
  // Regression: bias correction used to compute pow(beta, float(step)).
  // Past 2^24, float(step) collapses adjacent step counts onto the same
  // value, freezing the correction term. The fix computes in double; this
  // pins the exact float update at a step count where float(step) != step.
  constexpr int64_t kStep = (int64_t(1) << 24) + 2;  // Step() lands on 2^24+3.
  ASSERT_NE(double(float(kStep + 1)), double(kStep + 1));

  AdamConfig cfg;
  cfg.lr = 1e-3f;
  cfg.beta1 = 0.9f;
  cfg.beta2 = 0.99999994f;  // Close to 1: correction still far from 1 here.
  ParamStore store;
  Tensor w = store.CreateFull("w", {3}, 2.f);
  Adam adam(&store, cfg);

  const std::vector<float> m = {0.5f, -0.25f, 0.125f};
  const std::vector<float> v = {0.04f, 0.09f, 0.0001f};
  ASSERT_TRUE(adam.SetState({m}, {v}, kStep).ok());

  store.ZeroGrad();
  const std::vector<float> g = {1.f, -2.f, 0.5f};
  w.AccumulateGrad(g.data(), 3);
  adam.Step();

  // Expected update, bias correction in double exactly as the fix does it.
  const float bc1 =
      float(1.0 - std::pow(double(cfg.beta1), double(kStep + 1)));
  const float bc2 =
      float(1.0 - std::pow(double(cfg.beta2), double(kStep + 1)));
  // The exact expression the fix replaced — single-precision pow on a
  // collapsed float exponent — lands on a different float here, so this test
  // fails against the old implementation.
  const float bc2_old = 1.f - std::pow(cfg.beta2, float(kStep + 1));
  ASSERT_NE(bc2, bc2_old);

  for (size_t i = 0; i < 3; ++i) {
    const float mi = cfg.beta1 * m[i] + (1.f - cfg.beta1) * g[i];
    const float vi = cfg.beta2 * v[i] + (1.f - cfg.beta2) * g[i] * g[i];
    const float m_hat = mi / bc1;
    const float v_hat = vi / bc2;
    // Same association as Adam::Step: (lr * mhat) / (sqrt(vhat) + eps).
    const float expected = 2.f - cfg.lr * m_hat / (std::sqrt(v_hat) + cfg.eps);
    EXPECT_EQ(w.at(int64_t(i)), expected) << "element " << i;
  }
}

}  // namespace
}  // namespace nn
}  // namespace turl
