// Buffer-recycling tests for the kernels arena (`ctest -L kernels`): a
// steady-state forward+backward step inside an ArenaScope must lease every
// intermediate from the per-thread pool (nn.arena_reuse grows) and perform
// no fresh heap allocations for tensor storage (nn.heap_alloc flat).

#include <vector>

#include "gtest/gtest.h"
#include "nn/kernels/arena.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace turl {
namespace nn {
namespace {

int64_t ReuseCount() {
  return obs::MetricsRegistry::Get().GetCounter("nn.arena_reuse")->Value();
}

int64_t HeapAllocCount() {
  return obs::MetricsRegistry::Get().GetCounter("nn.heap_alloc")->Value();
}

// One training-step-shaped unit of work: forward graph, scalar loss,
// backward with tape release (which is what frees the intermediates back to
// the pool).
void RunStep(const Tensor& x, const Tensor& w1, const Tensor& w2) {
  Tensor h = Gelu(MatMul(x, w1));
  Tensor y = MatMul(h, w2);
  SumAll(y).Backward(/*release_graph=*/true);
}

TEST(ArenaTest, SteadyStateStepReusesEveryBuffer) {
  kernels::ClearThreadBufferPool();
  Rng rng(7);
  Tensor x = Tensor::Random({24, 16}, rng);
  Tensor w1 = Tensor::Random({16, 32}, rng);
  Tensor w2 = Tensor::Random({32, 8}, rng);
  w1.set_requires_grad(true);
  w2.set_requires_grad(true);

  kernels::ArenaScope arena;
  // Step 1 populates the pool (its intermediates die when Backward severs
  // the tape and RunStep's tensors go out of scope).
  RunStep(x, w1, w2);

  const int64_t reuse_before = ReuseCount();
  const int64_t heap_before = HeapAllocCount();
  // Step 2 is shape-identical, so every lease must be a pool hit.
  RunStep(x, w1, w2);
  EXPECT_GT(ReuseCount() - reuse_before, 0);
  EXPECT_EQ(HeapAllocCount() - heap_before, 0);
}

TEST(ArenaTest, PooledBuffersSurviveScopeExit) {
  // A tensor built inside a scope stays valid after the scope dies; its
  // buffers only return to the pool at destruction.
  Tensor y;
  {
    kernels::ArenaScope arena;
    Rng rng(9);
    Tensor a = Tensor::Random({4, 4}, rng);
    Tensor b = Tensor::Random({4, 4}, rng);
    y = MatMul(a, b);
  }
  std::vector<float> copy = y.ToVector();
  EXPECT_EQ(copy.size(), 16u);
  for (float v : copy) EXPECT_TRUE(v == v);  // No NaN garbage.
}

TEST(ArenaTest, NoPoolingOutsideScope) {
  kernels::ClearThreadBufferPool();
  Rng rng(11);
  Tensor a = Tensor::Random({8, 8}, rng);
  Tensor b = Tensor::Random({8, 8}, rng);
  {
    kernels::ArenaScope arena;
    Tensor warm = MatMul(a, b);  // Dies here; pool now holds an 8x8 buffer.
  }
  const int64_t reuse_before = ReuseCount();
  Tensor out = MatMul(a, b);  // Outside any scope: plain heap allocation.
  EXPECT_EQ(ReuseCount(), reuse_before);
  EXPECT_FALSE(out.impl()->pooled);
}

TEST(ArenaTest, GradBuffersRecycleWithTheNode) {
  kernels::ClearThreadBufferPool();
  Rng rng(13);
  Tensor x = Tensor::Random({6, 6}, rng);
  Tensor w = Tensor::Random({6, 6}, rng);
  w.set_requires_grad(true);
  kernels::ArenaScope arena;
  RunStep(x, w, w);
  const int64_t heap_before = HeapAllocCount();
  // Gradient buffers of the dead intermediates came from the pool too, so a
  // second backward pass allocates nothing fresh either.
  RunStep(x, w, w);
  EXPECT_EQ(HeapAllocCount() - heap_before, 0);
}

}  // namespace
}  // namespace nn
}  // namespace turl
