// Equivalence and determinism tests for the turl::nn::kernels compute layer
// (`ctest -L kernels`): the blocked GEMM family against the preserved naive
// loops over a sweep of edge shapes, at one thread and several, plus the
// fused row kernels and the bitwise thread-count-independence contract of a
// whole autograd step.

#include <cmath>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "nn/kernels/kernels.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace turl {
namespace nn {
namespace kernels {
namespace {

struct GemmShape {
  int64_t m, k, n;
};

// Edge shapes: singletons, k=1 / n=1 degenerate reductions, sizes off every
// block multiple (tile 4x16, panels 64x256), and one shape above the
// parallel threshold.
const GemmShape kShapes[] = {
    {1, 1, 1},   {1, 8, 2},    {4, 1, 16},     {16, 5, 1},
    {17, 33, 5}, {64, 64, 64}, {65, 257, 31},  {3, 7, 300},
    {1, 768, 512}, {160, 160, 160},
};

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->UniformFloat(-1.f, 1.f);
  return v;
}

void ExpectClose(const std::vector<float>& got, const std::vector<float>& want,
                 const char* what, const GemmShape& s) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const float tol = 1e-5f * (1.f + std::abs(want[i]));
    EXPECT_NEAR(got[i], want[i], tol)
        << what << " " << s.m << "x" << s.k << "x" << s.n << " at " << i;
  }
}

class KernelThreadSweep : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    SetKernelThreads(GetParam());
    // Force the parallel gate open so multi-thread runs actually fan out.
    if (GetParam() > 1) SetParallelMinFlopsForTest(1);
  }
  void TearDown() override {
    SetParallelMinFlopsForTest(0);
    SetKernelThreads(0);
  }
};

TEST_P(KernelThreadSweep, GemmNNMatchesNaive) {
  for (const GemmShape& s : kShapes) {
    Rng rng(uint64_t(s.m * 1000 + s.k * 10 + s.n));
    const auto a = RandomVec(size_t(s.m * s.k), &rng);
    const auto b = RandomVec(size_t(s.k * s.n), &rng);
    std::vector<float> got(size_t(s.m * s.n)), want(size_t(s.m * s.n));
    GemmNN(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, got.data(), s.n,
           false);
    naive::GemmNN(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, want.data(),
                  s.n, false);
    ExpectClose(got, want, "GemmNN", s);
  }
}

TEST_P(KernelThreadSweep, GemmNTMatchesNaive) {
  for (const GemmShape& s : kShapes) {
    Rng rng(uint64_t(s.m * 999 + s.k * 7 + s.n));
    const auto a = RandomVec(size_t(s.m * s.k), &rng);
    const auto b = RandomVec(size_t(s.n * s.k), &rng);  // B is [n, k].
    std::vector<float> got(size_t(s.m * s.n)), want(size_t(s.m * s.n));
    GemmNT(s.m, s.n, s.k, a.data(), s.k, b.data(), s.k, got.data(), s.n,
           false);
    naive::GemmNT(s.m, s.n, s.k, a.data(), s.k, b.data(), s.k, want.data(),
                  s.n, false);
    ExpectClose(got, want, "GemmNT", s);
  }
}

TEST_P(KernelThreadSweep, GemmTNMatchesNaive) {
  for (const GemmShape& s : kShapes) {
    Rng rng(uint64_t(s.m * 77 + s.k * 13 + s.n));
    // A' is [k, m] (C = A'^T B), B is [k, n].
    const auto a = RandomVec(size_t(s.k * s.m), &rng);
    const auto b = RandomVec(size_t(s.k * s.n), &rng);
    std::vector<float> got(size_t(s.m * s.n)), want(size_t(s.m * s.n));
    GemmTN(s.m, s.n, s.k, a.data(), s.m, b.data(), s.n, got.data(), s.n,
           false);
    naive::GemmTN(s.m, s.n, s.k, a.data(), s.m, b.data(), s.n, want.data(),
                  s.n, false);
    ExpectClose(got, want, "GemmTN", s);
  }
}

TEST_P(KernelThreadSweep, AccumulateAddsIntoC) {
  const GemmShape s{17, 33, 29};
  Rng rng(3);
  const auto a = RandomVec(size_t(s.m * s.k), &rng);
  const auto b = RandomVec(size_t(s.k * s.n), &rng);
  auto got = RandomVec(size_t(s.m * s.n), &rng);
  auto want = got;
  GemmNN(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, got.data(), s.n, true);
  naive::GemmNN(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, want.data(), s.n,
                true);
  ExpectClose(got, want, "GemmNN+=", s);
}

TEST_P(KernelThreadSweep, StridedSubPanels) {
  // Multiply inside a larger buffer: the head-slice addressing pattern of
  // attention (lda/ldb/ldc bigger than the logical panel width).
  const int64_t m = 9, k = 6, n = 11;
  const int64_t lda = 20, ldb = 23, ldc = 31;
  Rng rng(5);
  const auto a = RandomVec(size_t(m * lda), &rng);
  const auto b = RandomVec(size_t(k * ldb), &rng);
  auto got = RandomVec(size_t(m * ldc), &rng);
  auto want = got;
  GemmNN(m, n, k, a.data() + 2, lda, b.data() + 3, ldb, got.data() + 4, ldc,
         false);
  naive::GemmNN(m, n, k, a.data() + 2, lda, b.data() + 3, ldb, want.data() + 4,
                ldc, false);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-5f * (1.f + std::abs(want[i]))) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, KernelThreadSweep, ::testing::Values(1, 4));

TEST(KernelDeterminismTest, GemmBitwiseIdenticalAcrossThreadCounts) {
  const GemmShape s{160, 160, 160};
  Rng rng(11);
  const auto a = RandomVec(size_t(s.m * s.k), &rng);
  const auto b = RandomVec(size_t(s.k * s.n), &rng);
  std::vector<float> one(size_t(s.m * s.n)), many(size_t(s.m * s.n));
  SetKernelThreads(1);
  GemmNN(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, one.data(), s.n, false);
  SetKernelThreads(4);
  SetParallelMinFlopsForTest(1);
  GemmNN(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, many.data(), s.n,
         false);
  SetParallelMinFlopsForTest(0);
  SetKernelThreads(0);
  EXPECT_EQ(0, std::memcmp(one.data(), many.data(),
                           one.size() * sizeof(float)));
}

TEST(KernelDeterminismTest, AutogradStepBitwiseIdenticalAcrossThreadCounts) {
  // A small MLP forward+backward, once inline and once with the pool forced
  // on: outputs and every gradient must be bitwise identical.
  auto run = [](std::vector<float>* out, std::vector<float>* gw1,
                std::vector<float>* gw2) {
    Rng rng(21);
    Tensor x = Tensor::Random({96, 64}, rng);
    Tensor w1 = Tensor::Random({64, 128}, rng);
    Tensor w2 = Tensor::Random({128, 32}, rng);
    w1.set_requires_grad(true);
    w2.set_requires_grad(true);
    Tensor h = Gelu(MatMul(x, w1));
    Tensor y = SoftmaxRows(MatMul(h, w2));
    *out = y.ToVector();
    SumAll(y).Backward();
    *gw1 = w1.grad_vector();
    *gw2 = w2.grad_vector();
  };
  std::vector<float> out1, gw1a, gw2a;
  SetKernelThreads(1);
  run(&out1, &gw1a, &gw2a);
  std::vector<float> outN, gw1b, gw2b;
  SetKernelThreads(4);
  SetParallelMinFlopsForTest(1);
  run(&outN, &gw1b, &gw2b);
  SetParallelMinFlopsForTest(0);
  SetKernelThreads(0);
  EXPECT_EQ(0,
            std::memcmp(out1.data(), outN.data(), out1.size() * sizeof(float)));
  EXPECT_EQ(0,
            std::memcmp(gw1a.data(), gw1b.data(), gw1a.size() * sizeof(float)));
  EXPECT_EQ(0,
            std::memcmp(gw2a.data(), gw2b.data(), gw2a.size() * sizeof(float)));
}

TEST(RowwiseKernelTest, SoftmaxHandlesExtremeLogits) {
  // Regression guard for the max-subtraction: logits spanning [-1e4, 1e4]
  // must produce finite probabilities that sum to one.
  Rng rng(31);
  Tensor x = Tensor::Random({8, 16}, rng, -1e4f, 1e4f);
  x.data()[3] = 1e4f;    // Exact extremes, too.
  x.data()[17] = -1e4f;
  Tensor y = SoftmaxRows(x);
  for (int64_t i = 0; i < 8; ++i) {
    float sum = 0.f;
    for (int64_t j = 0; j < 16; ++j) {
      const float p = y.at2(i, j);
      ASSERT_TRUE(std::isfinite(p)) << i << "," << j;
      ASSERT_GE(p, 0.f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.f, 1e-5f);
  }
}

TEST(RowwiseKernelTest, MaskedScaledSoftmaxMatchesUnfusedPipeline) {
  const int64_t m = 7, n = 13;
  Rng rng(41);
  auto scores = RandomVec(size_t(m * n), &rng);
  auto mask = RandomVec(size_t(m * n), &rng);
  for (float& v : mask) v = v > 0.5f ? -1e9f : 0.f;
  const float scale = 0.25f;
  // Reference: scale + mask, then the plain softmax kernel.
  std::vector<float> want(size_t(m * n));
  for (size_t i = 0; i < want.size(); ++i)
    want[i] = scores[i] * scale + mask[i];
  SoftmaxRowsForward(want.data(), want.data(), m, n);
  MaskedScaledSoftmaxRows(scores.data(), mask.data(), scale, m, n);
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(scores[i], want[i], 1e-6f) << i;
  }
}

TEST(RowwiseKernelTest, LayerNormForwardRowStats) {
  const int64_t m = 5, n = 32;
  Rng rng(51);
  auto x = RandomVec(size_t(m * n), &rng);
  std::vector<float> gamma(size_t(n), 1.f), beta(size_t(n), 0.f);
  std::vector<float> y(size_t(m * n)), xhat(size_t(m * n));
  std::vector<float> inv_std(static_cast<size_t>(m));
  LayerNormForward(x.data(), gamma.data(), beta.data(), 1e-5f, y.data(),
                   xhat.data(), inv_std.data(), m, n);
  for (int64_t i = 0; i < m; ++i) {
    float mean = 0.f, var = 0.f;
    for (int64_t j = 0; j < n; ++j) mean += y[size_t(i * n + j)];
    mean /= float(n);
    for (int64_t j = 0; j < n; ++j) {
      const float d = y[size_t(i * n + j)] - mean;
      var += d * d;
    }
    var /= float(n);
    EXPECT_NEAR(mean, 0.f, 1e-5f) << "row " << i;
    EXPECT_NEAR(var, 1.f, 1e-3f) << "row " << i;
  }
}

}  // namespace
}  // namespace kernels
}  // namespace nn
}  // namespace turl
