#include "nn/module.h"

#include <cmath>

#include "gtest/gtest.h"
#include "nn/ops.h"
#include "test_util.h"

namespace turl {
namespace nn {
namespace {

TEST(ParamStoreTest, RegisterAndGet) {
  ParamStore store;
  Rng rng(1);
  Tensor w = store.CreateNormal("w", {2, 3}, 0.1f, &rng);
  EXPECT_TRUE(store.Contains("w"));
  EXPECT_FALSE(store.Contains("missing"));
  Tensor got = store.Get("w");
  EXPECT_EQ(got.impl().get(), w.impl().get());
  EXPECT_TRUE(got.requires_grad());
}

TEST(ParamStoreTest, TotalParameters) {
  ParamStore store;
  Rng rng(2);
  store.CreateNormal("a", {2, 3}, 0.1f, &rng);
  store.CreateZeros("b", {5});
  EXPECT_EQ(store.TotalParameters(), 11);
}

TEST(ParamStoreTest, CreateFullValue) {
  ParamStore store;
  Tensor g = store.CreateFull("gamma", {4}, 1.f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g.at(i), 1.f);
}

TEST(ParamStoreTest, ZeroGradClearsAll) {
  ParamStore store;
  Rng rng(3);
  Tensor w = store.CreateNormal("w", {3}, 0.1f, &rng);
  float d[] = {1.f, 1.f, 1.f};
  w.AccumulateGrad(d, 3);
  store.ZeroGrad();
  for (float g : w.grad_vector()) EXPECT_FLOAT_EQ(g, 0.f);
}

TEST(LinearTest, ForwardShapeAndValue) {
  ParamStore store;
  Rng rng(4);
  Linear lin(&store, "lin", 3, 2, &rng);
  EXPECT_TRUE(store.Contains("lin.weight"));
  EXPECT_TRUE(store.Contains("lin.bias"));
  Tensor x = Tensor::FromVector({1, 3}, {1.f, 0.f, 0.f});
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.dim(0), 1);
  EXPECT_EQ(y.dim(1), 2);
  // With x = e0, output equals first weight row plus bias (bias starts 0).
  EXPECT_FLOAT_EQ(y.at(0), lin.weight().at2(0, 0));
  EXPECT_FLOAT_EQ(y.at(1), lin.weight().at2(0, 1));
}

TEST(LinearTest, GradientFlowsToParams) {
  ParamStore store;
  Rng rng(5);
  Linear lin(&store, "lin", 3, 2, &rng);
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  store.ZeroGrad();
  SumAll(lin.Forward(x)).Backward();
  bool any_nonzero = false;
  for (float g : store.Get("lin.weight").grad_vector())
    any_nonzero |= (g != 0.f);
  EXPECT_TRUE(any_nonzero);
  // Bias grad: each output column receives the row count (2).
  for (float g : store.Get("lin.bias").grad_vector()) EXPECT_FLOAT_EQ(g, 2.f);
}

TEST(EmbeddingTest, LookupShape) {
  ParamStore store;
  Rng rng(6);
  Embedding emb(&store, "emb", 10, 4, &rng);
  EXPECT_EQ(emb.vocab_size(), 10);
  EXPECT_EQ(emb.dim(), 4);
  Tensor out = emb.Forward({1, 5, 5});
  EXPECT_EQ(out.dim(0), 3);
  EXPECT_EQ(out.dim(1), 4);
  for (int64_t j = 0; j < 4; ++j)
    EXPECT_FLOAT_EQ(out.at2(1, j), out.at2(2, j));
}

TEST(LayerNormModuleTest, OutputRowStats) {
  ParamStore store;
  LayerNorm ln(&store, "ln", 8);
  Rng rng(7);
  Tensor x = Tensor::Random({3, 8}, rng, -3.f, 3.f);
  Tensor y = ln.Forward(x);
  for (int64_t i = 0; i < 3; ++i) {
    float mean = 0.f;
    for (int64_t j = 0; j < 8; ++j) mean += y.at2(i, j);
    EXPECT_NEAR(mean / 8.f, 0.f, 1e-5f);
  }
}

TEST(TransformerLayerTest, ForwardPreservesShape) {
  ParamStore store;
  Rng rng(8);
  TransformerLayer layer(&store, "l0", 8, 16, 2, &rng);
  Tensor x = Tensor::Random({5, 8}, rng);
  std::vector<float> mask(25, 0.f);
  Tensor y = layer.Forward(x, mask, 0.f, false, &rng);
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 8);
}

TEST(TransformerLayerTest, GradChecksEndToEnd) {
  ParamStore store;
  Rng rng(9);
  TransformerLayer layer(&store, "l0", 4, 8, 2, &rng);
  Tensor x = Tensor::Random({3, 4}, rng);
  std::vector<float> mask(9, 0.f);
  mask[1] = -1e9f;  // Element 1 invisible to element 0.
  mask[3] = -1e9f;
  Tensor w = Tensor::Random({3, 4}, rng);
  testing_util::ExpectGradientsMatch(
      [&] {
        return SumAll(Mul(layer.Forward(x, mask, 0.f, false, &rng), w));
      },
      {x}, 1e-2f, 4e-2f);
}

TEST(TransformerEncoderTest, StacksLayers) {
  ParamStore store;
  Rng rng(10);
  TransformerEncoder enc(&store, "enc", 3, 8, 16, 2, &rng);
  EXPECT_EQ(enc.num_layers(), 3);
  EXPECT_TRUE(store.Contains("enc.layer0.attn.wq.weight"));
  EXPECT_TRUE(store.Contains("enc.layer2.ff.fc2.bias"));
  Tensor x = Tensor::Random({4, 8}, rng);
  std::vector<float> mask(16, 0.f);
  Tensor y = enc.Forward(x, mask, 0.f, false, &rng);
  EXPECT_EQ(y.dim(0), 4);
  EXPECT_EQ(y.dim(1), 8);
}

TEST(TransformerEncoderTest, DropoutChangesTrainOutput) {
  ParamStore store;
  Rng rng(11);
  TransformerEncoder enc(&store, "enc", 1, 8, 16, 2, &rng);
  Tensor x = Tensor::Random({4, 8}, rng);
  std::vector<float> mask(16, 0.f);
  Tensor eval1 = enc.Forward(x, mask, 0.5f, false, &rng);
  Tensor eval2 = enc.Forward(x, mask, 0.5f, false, &rng);
  for (int64_t i = 0; i < eval1.numel(); ++i)
    EXPECT_FLOAT_EQ(eval1.at(i), eval2.at(i));  // Eval is deterministic.
  Tensor train = enc.Forward(x, mask, 0.5f, true, &rng);
  int diffs = 0;
  for (int64_t i = 0; i < eval1.numel(); ++i)
    diffs += std::abs(train.at(i) - eval1.at(i)) > 1e-7f;
  EXPECT_GT(diffs, 0);
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  ParamStore store;
  Rng rng(12);
  Tensor w = store.CreateNormal("w", {4}, 0.1f, &rng);
  float d[] = {3.f, 0.f, 4.f, 0.f};  // Norm 5.
  w.AccumulateGrad(d, 4);
  float norm = ClipGradNorm(&store, 1.f);
  EXPECT_NEAR(norm, 5.f, 1e-5f);
  EXPECT_NEAR(w.grad_vector()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(w.grad_vector()[2], 0.8f, 1e-5f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  ParamStore store;
  Rng rng(13);
  Tensor w = store.CreateNormal("w", {2}, 0.1f, &rng);
  float d[] = {0.3f, 0.4f};
  w.AccumulateGrad(d, 2);
  ClipGradNorm(&store, 10.f);
  EXPECT_FLOAT_EQ(w.grad_vector()[0], 0.3f);
  EXPECT_FLOAT_EQ(w.grad_vector()[1], 0.4f);
}

}  // namespace
}  // namespace nn
}  // namespace turl
