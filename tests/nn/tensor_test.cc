#include "nn/tensor.h"

#include "gtest/gtest.h"
#include "nn/ops.h"

namespace turl {
namespace nn {
namespace {

TEST(TensorTest, ZerosShapeAndContents) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.at(i), 0.f);
}

TEST(TensorTest, FullAndScalar) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), 2.5f);
  EXPECT_FLOAT_EQ(Tensor::Scalar(-1.f).item(), -1.f);
}

TEST(TensorTest, FromVectorAndAt2) {
  Tensor t = Tensor::FromVector({2, 2}, {1.f, 2.f, 3.f, 4.f});
  EXPECT_FLOAT_EQ(t.at2(0, 0), 1.f);
  EXPECT_FLOAT_EQ(t.at2(0, 1), 2.f);
  EXPECT_FLOAT_EQ(t.at2(1, 0), 3.f);
  EXPECT_FLOAT_EQ(t.at2(1, 1), 4.f);
}

TEST(TensorTest, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, CopySharesStorage) {
  Tensor a = Tensor::Zeros({3});
  Tensor b = a;
  b.data()[0] = 9.f;
  EXPECT_FLOAT_EQ(a.at(0), 9.f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Full({2}, 1.f);
  Tensor b = a.Clone();
  b.data()[0] = 5.f;
  EXPECT_FLOAT_EQ(a.at(0), 1.f);
}

TEST(TensorTest, ToVectorCopies) {
  Tensor a = Tensor::FromVector({3}, {1.f, 2.f, 3.f});
  auto v = a.ToVector();
  v[0] = 100.f;
  EXPECT_FLOAT_EQ(a.at(0), 1.f);
}

TEST(TensorTest, GradLazyAllocation) {
  Tensor a = Tensor::Zeros({4});
  EXPECT_FALSE(a.has_grad());
  a.grad();
  EXPECT_TRUE(a.has_grad());
  EXPECT_EQ(a.grad_vector().size(), 4u);
}

TEST(TensorTest, AccumulateGradAdds) {
  Tensor a = Tensor::Zeros({2});
  float d1[] = {1.f, 2.f};
  float d2[] = {0.5f, -1.f};
  a.AccumulateGrad(d1, 2);
  a.AccumulateGrad(d2, 2);
  EXPECT_FLOAT_EQ(a.grad_vector()[0], 1.5f);
  EXPECT_FLOAT_EQ(a.grad_vector()[1], 1.f);
}

TEST(TensorTest, ZeroGradResets) {
  Tensor a = Tensor::Zeros({2});
  float d[] = {1.f, 1.f};
  a.AccumulateGrad(d, 2);
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad_vector()[0], 0.f);
}

TEST(TensorTest, BackwardThroughSimpleGraph) {
  // loss = sum(a + a) => dloss/da = 2 everywhere.
  Tensor a = Tensor::FromVector({3}, {1.f, 2.f, 3.f});
  a.set_requires_grad(true);
  Tensor loss = SumAll(Add(a, a));
  EXPECT_FLOAT_EQ(loss.item(), 12.f);
  loss.Backward();
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(a.grad_vector()[size_t(i)], 2.f);
}

TEST(TensorTest, BackwardAccumulatesAcrossCalls) {
  Tensor a = Tensor::FromVector({2}, {1.f, 1.f});
  a.set_requires_grad(true);
  SumAll(a).Backward();
  SumAll(a).Backward();
  EXPECT_FLOAT_EQ(a.grad_vector()[0], 2.f);
}

TEST(TensorTest, BackwardReleaseGraphClearsEdges) {
  Tensor a = Tensor::FromVector({2}, {1.f, 2.f});
  Tensor mid = Add(a, a);
  Tensor loss = SumAll(mid);
  loss.Backward(/*release_graph=*/true);
  EXPECT_TRUE(mid.impl()->parents.empty());
  EXPECT_EQ(mid.impl()->backward_fn, nullptr);
}

TEST(TensorTest, DiamondGraphGradientsSum) {
  // loss = sum(a*a + a*a): two paths through the same parent.
  Tensor a = Tensor::FromVector({1}, {3.f});
  Tensor b = Mul(a, a);
  Tensor c = Mul(a, a);
  Tensor loss = SumAll(Add(b, c));
  loss.Backward();
  // d/da (2 a^2) = 4a = 12.
  EXPECT_FLOAT_EQ(a.grad_vector()[0], 12.f);
}

TEST(TensorTest, DetachBlocksGradient) {
  Tensor a = Tensor::FromVector({2}, {1.f, 2.f});
  Tensor d = Add(a, a).Detach();
  Tensor loss = SumAll(d);
  loss.Backward();
  EXPECT_FALSE(a.has_grad());
}

TEST(ShapeTest, NumelAndToString) {
  EXPECT_EQ(ShapeNumel({2, 3, 4}), 24);
  EXPECT_EQ(ShapeNumel({}), 1);
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(ShapeToString({}), "[]");
}

}  // namespace
}  // namespace nn
}  // namespace turl
