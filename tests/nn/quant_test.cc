// Int8 quantized-scoring tests (`ctest -L kernels`): per-row scale
// correctness, round-trip error bounds, adversarial rows (all-zero, single
// outlier, +-max), bitwise SIMD-vs-scalar-mirror equality (integer
// accumulation is exact), the row-subset form, thread-count determinism,
// and the end-to-end int8-vs-fp32 score error on a logits-shaped problem.

#include <cmath>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "nn/kernels/kernels.h"
#include "util/rng.h"

namespace turl {
namespace nn {
namespace kernels {
namespace {

std::vector<float> RandomVec(size_t n, Rng* rng, float lo = -1.f,
                             float hi = 1.f) {
  std::vector<float> v(n);
  for (float& x : v) x = rng->UniformFloat(lo, hi);
  return v;
}

TEST(QuantizeRows, PerRowScaleIsMaxAbsOver127) {
  Rng rng(11);
  const int64_t rows = 7, cols = 50;
  const auto w = RandomVec(static_cast<size_t>(rows * cols), &rng, -3.f, 3.f);
  QuantizedMatrix q = QuantizeRows(w.data(), rows, cols, cols, 1);
  ASSERT_EQ(q.rows, rows);
  ASSERT_EQ(q.cols, cols);
  EXPECT_EQ(q.stride % 32, 0);
  ASSERT_GE(q.stride, cols);
  for (int64_t i = 0; i < rows; ++i) {
    float max_abs = 0.f;
    for (int64_t j = 0; j < cols; ++j) {
      max_abs = std::max(max_abs, std::fabs(w[static_cast<size_t>(i * cols + j)]));
    }
    EXPECT_FLOAT_EQ(q.scales[static_cast<size_t>(i)], max_abs / 127.f) << "row " << i;
  }
}

TEST(QuantizeRows, RoundTripErrorWithinHalfStep) {
  Rng rng(13);
  const int64_t rows = 5, cols = 64;
  const auto w = RandomVec(static_cast<size_t>(rows * cols), &rng, -2.f, 2.f);
  QuantizedMatrix q = QuantizeRows(w.data(), rows, cols, cols, 1);
  for (int64_t i = 0; i < rows; ++i) {
    const float scale = q.scales[static_cast<size_t>(i)];
    for (int64_t j = 0; j < cols; ++j) {
      const float dq = scale * q.data[static_cast<size_t>(i * q.stride + j)];
      // Round-to-nearest leaves at most half a quantization step.
      EXPECT_NEAR(dq, w[static_cast<size_t>(i * cols + j)], scale * 0.5f + 1e-7f)
          << i << "," << j;
    }
  }
  // Padding bytes beyond cols stay zero (they enter the integer dot).
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = cols; j < q.stride; ++j) {
      EXPECT_EQ(q.data[static_cast<size_t>(i * q.stride + j)], 0);
    }
  }
}

TEST(QuantizeRows, ColumnStrideAddressesTransposedWeights) {
  // A Linear weight [in, out] scored per output unit: row i of the pack is
  // W[:, i], read with row_stride=1, col_stride=out.
  const int64_t in = 3, out = 2;
  const std::vector<float> w = {1.f, -2.f, 0.5f, 4.f, -0.25f, 1.f};  // [3,2]
  QuantizedMatrix q = QuantizeRows(w.data(), out, in, 1, out);
  EXPECT_FLOAT_EQ(q.scales[0], 1.f / 127.f);   // col 0: 1, .5, -.25
  EXPECT_FLOAT_EQ(q.scales[1], 4.f / 127.f);   // col 1: -2, 4, 1
  EXPECT_EQ(q.data[0], 127);
  EXPECT_EQ(q.data[static_cast<size_t>(q.stride)], -64);    // -2 / (4/127) = -63.5 -> -64
}

TEST(QuantizeRows, AdversarialRows) {
  const int64_t cols = 40;
  std::vector<float> w(static_cast<size_t>(3 * cols), 0.f);
  // Row 0: all zero. Row 1: single outlier. Row 2: alternating +-max.
  w[static_cast<size_t>(cols + 17)] = 10.f;
  for (int64_t j = 0; j < cols; ++j) {
    w[static_cast<size_t>(2 * cols + j)] = (j % 2 == 0) ? 2.5f : -2.5f;
  }
  QuantizedMatrix q = QuantizeRows(w.data(), 3, cols, cols, 1);

  EXPECT_FLOAT_EQ(q.scales[0], 0.f);
  for (int64_t j = 0; j < q.stride; ++j) EXPECT_EQ(q.data[static_cast<size_t>(j)], 0);

  EXPECT_FLOAT_EQ(q.scales[1], 10.f / 127.f);
  for (int64_t j = 0; j < cols; ++j) {
    EXPECT_EQ(q.data[static_cast<size_t>(q.stride + j)], j == 17 ? 127 : 0);
  }

  EXPECT_FLOAT_EQ(q.scales[2], 2.5f / 127.f);
  for (int64_t j = 0; j < cols; ++j) {
    EXPECT_EQ(q.data[static_cast<size_t>(2 * q.stride + j)], j % 2 == 0 ? 127 : -127);
  }

  // Scoring the adversarial pack: the all-zero row must score exactly 0,
  // the outlier row exactly x[17] (quantization of a 1-hot row is lossless
  // up to the activation's own rounding).
  Rng rng(17);
  const auto x = RandomVec(static_cast<size_t>(cols), &rng);
  std::vector<float> y(3);
  QuantizedScore(q, x.data(), y.data());
  EXPECT_EQ(y[0], 0.f);
  EXPECT_NEAR(y[1], 10.f * x[17], 0.05f);
}

TEST(QuantizedGemvTest, SimdMatchesScalarMirrorBitwise) {
  Rng rng(19);
  const int64_t rows = 517, cols = 111;
  const auto w = RandomVec(static_cast<size_t>(rows * cols), &rng, -2.f, 2.f);
  const auto x = RandomVec(static_cast<size_t>(cols), &rng);
  QuantizedMatrix q = QuantizeRows(w.data(), rows, cols, cols, 1);
  std::vector<int8_t> xq(static_cast<size_t>(q.stride));
  const float xs = QuantizeActivation(x.data(), cols, q.stride, xq.data());

  std::vector<float> simd(static_cast<size_t>(rows)), scalar(static_cast<size_t>(rows));
  QuantizedGemv(q, xq.data(), xs, simd.data(), false);
  naive::QuantizedGemv(q, xq.data(), xs, scalar.data(), false);
  EXPECT_EQ(0,
            std::memcmp(simd.data(), scalar.data(), simd.size() * sizeof(float)));
}

TEST(QuantizedGemvTest, RowSubsetMatchesFullRows) {
  Rng rng(23);
  const int64_t rows = 300, cols = 64;
  const auto w = RandomVec(static_cast<size_t>(rows * cols), &rng);
  const auto x = RandomVec(static_cast<size_t>(cols), &rng);
  QuantizedMatrix q = QuantizeRows(w.data(), rows, cols, cols, 1);

  std::vector<float> full(static_cast<size_t>(rows));
  QuantizedScore(q, x.data(), full.data());

  const std::vector<int> subset = {7, 299, 0, 7, 123};  // Repeats allowed.
  std::vector<float> sub(subset.size());
  QuantizedScoreRows(q, subset.data(), int64_t(subset.size()), x.data(),
                     sub.data());
  for (size_t r = 0; r < subset.size(); ++r) {
    EXPECT_EQ(sub[r], full[static_cast<size_t>(subset[r])]) << "subset pos " << r;
  }

  // Scalar mirror of the subset form agrees bitwise too.
  std::vector<int8_t> xq(static_cast<size_t>(q.stride));
  const float xs = QuantizeActivation(x.data(), cols, q.stride, xq.data());
  std::vector<float> sub_naive(subset.size());
  naive::QuantizedGemvRows(q, subset.data(), int64_t(subset.size()),
                           xq.data(), xs, sub_naive.data(), false);
  EXPECT_EQ(0, std::memcmp(sub.data(), sub_naive.data(),
                           sub.size() * sizeof(float)));
}

TEST(QuantizedGemvTest, AccumulateAddsOntoExistingOutput) {
  Rng rng(29);
  const int64_t rows = 12, cols = 33;
  const auto w = RandomVec(static_cast<size_t>(rows * cols), &rng);
  const auto x = RandomVec(static_cast<size_t>(cols), &rng);
  QuantizedMatrix q = QuantizeRows(w.data(), rows, cols, cols, 1);
  std::vector<int8_t> xq(static_cast<size_t>(q.stride));
  const float xs = QuantizeActivation(x.data(), cols, q.stride, xq.data());

  std::vector<float> fresh(static_cast<size_t>(rows));
  QuantizedGemv(q, xq.data(), xs, fresh.data(), false);
  const auto seed = RandomVec(static_cast<size_t>(rows), &rng);
  std::vector<float> acc = seed;
  QuantizedGemv(q, xq.data(), xs, acc.data(), true);
  for (int64_t i = 0; i < rows; ++i) {
    EXPECT_FLOAT_EQ(acc[static_cast<size_t>(i)], seed[static_cast<size_t>(i)] + fresh[static_cast<size_t>(i)]);
  }
}

TEST(QuantizedGemvTest, ThreadCountDoesNotChangeBits) {
  Rng rng(31);
  const int64_t rows = 2000, cols = 768;
  const auto w = RandomVec(static_cast<size_t>(rows * cols), &rng);
  const auto x = RandomVec(static_cast<size_t>(cols), &rng);
  QuantizedMatrix q = QuantizeRows(w.data(), rows, cols, cols, 1);
  std::vector<int8_t> xq(static_cast<size_t>(q.stride));
  const float xs = QuantizeActivation(x.data(), cols, q.stride, xq.data());

  SetParallelMinFlopsForTest(1);
  std::vector<float> y1(static_cast<size_t>(rows)), y4(static_cast<size_t>(rows));
  SetKernelThreads(1);
  QuantizedGemv(q, xq.data(), xs, y1.data(), false);
  SetKernelThreads(4);
  QuantizedGemv(q, xq.data(), xs, y4.data(), false);
  SetKernelThreads(0);
  SetParallelMinFlopsForTest(0);
  EXPECT_EQ(0, std::memcmp(y1.data(), y4.data(), y1.size() * sizeof(float)));
}

// End-to-end accuracy on the logits shape: int8 scores of a random
// d_model=768 projection against a random vocab-row matrix stay close to
// the fp32 dots. The inputs are fixed-seed, so the empirical threshold is
// deterministic, and it is ~5x the observed error to absorb platform
// lrintf differences.
TEST(QuantizedGemvTest, ScoresTrackFp32WithinEpsilon) {
  Rng rng(37);
  const int64_t rows = 1000, cols = 768;
  const auto w = RandomVec(static_cast<size_t>(rows * cols), &rng);
  const auto x = RandomVec(static_cast<size_t>(cols), &rng);
  QuantizedMatrix q = QuantizeRows(w.data(), rows, cols, cols, 1);

  std::vector<float> got(static_cast<size_t>(rows)), want(static_cast<size_t>(rows));
  QuantizedScore(q, x.data(), got.data());
  naive::GemvN(rows, cols, w.data(), cols, x.data(), want.data(), false);

  float max_err = 0.f, max_abs = 0.f;
  for (int64_t i = 0; i < rows; ++i) {
    max_err = std::max(max_err, std::fabs(got[static_cast<size_t>(i)] - want[static_cast<size_t>(i)]));
    max_abs = std::max(max_abs, std::fabs(want[static_cast<size_t>(i)]));
  }
  // Observed ~0.2 absolute on |score| up to ~30; fail well before the
  // error could flip a non-trivial ranking.
  EXPECT_LT(max_err, 1.f);
  EXPECT_LT(max_err, 0.1f * max_abs);
}

TEST(QuantizeActivationTest, AllZeroVectorHasZeroScale) {
  std::vector<float> x(64, 0.f);
  std::vector<int8_t> xq(64);
  EXPECT_EQ(QuantizeActivation(x.data(), 64, 64, xq.data()), 0.f);
  for (int8_t v : xq) EXPECT_EQ(v, 0);
}

TEST(QuantCacheTest, BuildsOnceAndInvalidates) {
  Rng rng(41);
  const int64_t rows = 4, cols = 8;
  auto w = RandomVec(static_cast<size_t>(rows * cols), &rng);
  QuantCache cache;
  const QuantizedMatrix& m1 = cache.Get(w.data(), rows, cols, cols, 1);
  const float s0 = m1.scales[0];
  // Mutating the source without invalidating returns the stale pack
  // (that is the contract: invalidate at load/finetune boundaries).
  w[0] += 100.f;
  EXPECT_EQ(&cache.Get(w.data(), rows, cols, cols, 1), &m1);
  EXPECT_FLOAT_EQ(cache.Get(w.data(), rows, cols, cols, 1).scales[0], s0);
  cache.Invalidate();
  EXPECT_GT(cache.Get(w.data(), rows, cols, cols, 1).scales[0], s0);
}

TEST(QuantScoringGate, TestOverrideWinsOverEnvironment) {
  SetQuantScoringForTest(1);
  EXPECT_TRUE(QuantScoringEnabled());
  SetQuantScoringForTest(0);
  EXPECT_FALSE(QuantScoringEnabled());
  SetQuantScoringForTest(-1);  // Back to env resolution (unset here -> off).
}

}  // namespace
}  // namespace kernels
}  // namespace nn
}  // namespace turl
