#include "kb/kb_generator.h"

#include <unordered_set>

#include "gtest/gtest.h"

namespace turl {
namespace kb {
namespace {

SyntheticKb SmallWorld(uint64_t seed = 42) {
  KbGeneratorConfig config;
  config.num_countries = 5;
  config.num_cities = 20;
  config.num_teams = 8;
  config.num_directors = 10;
  config.num_actors = 30;
  config.num_athletes = 60;
  config.num_musicians = 8;
  Rng rng(seed);
  return GenerateSyntheticKb(config, &rng);
}

TEST(KbGeneratorTest, AllTypesAndRelationsPresent) {
  SyntheticKb world = SmallWorld();
  for (const char* name :
       {"person", "pro_athlete", "actor", "director", "musician", "location",
        "country", "citytown", "organization", "sports_team", "record_label",
        "creative_work", "film", "album", "award", "language"}) {
    EXPECT_NE(world.kb.TypeByName(name), kInvalidType) << name;
  }
  for (const char* name :
       {"directed_by", "starring", "film_language", "film_country",
        "won_award", "plays_for", "nationality", "birthplace", "located_in",
        "team_city", "artist", "label"}) {
    EXPECT_NE(world.kb.RelationByName(name), kInvalidRelation) << name;
  }
}

TEST(KbGeneratorTest, DeterministicForSeed) {
  SyntheticKb a = SmallWorld(7), b = SmallWorld(7);
  ASSERT_EQ(a.kb.num_entities(), b.kb.num_entities());
  ASSERT_EQ(a.kb.num_facts(), b.kb.num_facts());
  for (EntityId e = 0; e < a.kb.num_entities(); ++e) {
    EXPECT_EQ(a.kb.entity(e).name, b.kb.entity(e).name);
  }
}

TEST(KbGeneratorTest, DifferentSeedsDiffer) {
  SyntheticKb a = SmallWorld(1), b = SmallWorld(2);
  int same = 0, checked = 0;
  for (EntityId e = 0; e < std::min(a.kb.num_entities(), b.kb.num_entities());
       ++e) {
    ++checked;
    same += a.kb.entity(e).name == b.kb.entity(e).name;
  }
  EXPECT_LT(same, checked / 2);
}

TEST(KbGeneratorTest, EveryCityHasACountry) {
  SyntheticKb world = SmallWorld();
  for (EntityId city : world.kb.EntitiesOfType(world.t_citytown)) {
    ASSERT_EQ(world.kb.Objects(city, world.r_located_in).size(), 1u);
  }
}

TEST(KbGeneratorTest, EveryAthleteHasTeamAndNationality) {
  SyntheticKb world = SmallWorld();
  int with_team = 0;
  for (EntityId e = 0; e < world.kb.num_entities(); ++e) {
    if (!world.kb.Objects(e, world.r_plays_for).empty()) {
      ++with_team;
      EXPECT_FALSE(world.kb.Objects(e, world.r_nationality).empty());
      EXPECT_FALSE(world.kb.Objects(e, world.r_birthplace).empty());
    }
  }
  EXPECT_EQ(with_team, 60);
}

TEST(KbGeneratorTest, FilmsHaveDirectorAndMultiValuedCast) {
  SyntheticKb world = SmallWorld();
  int films = 0;
  bool any_multi_cast = false;
  for (EntityId film : world.kb.EntitiesOfType(world.t_film)) {
    ++films;
    EXPECT_EQ(world.kb.Objects(film, world.r_directed_by).size(), 1u);
    const size_t cast = world.kb.Objects(film, world.r_starring).size();
    EXPECT_GE(cast, 1u);
    any_multi_cast |= cast > 1;
  }
  EXPECT_GE(films, 10 * 4);  // >= min_films_per_director each.
  EXPECT_TRUE(any_multi_cast);
}

TEST(KbGeneratorTest, TypeDropoutProducesCoarseOnlyEntities) {
  SyntheticKb world = SmallWorld();
  // Some persons lost their fine-grained type (KB incompleteness).
  EXPECT_FALSE(world.kb.EntitiesOfType(world.t_person).empty());
}

TEST(KbGeneratorTest, NamesAreUniqueAndAliasesExist) {
  SyntheticKb world = SmallWorld();
  std::unordered_set<std::string> names;
  bool any_alias = false;
  for (EntityId e = 0; e < world.kb.num_entities(); ++e) {
    EXPECT_TRUE(names.insert(world.kb.entity(e).name).second)
        << world.kb.entity(e).name;
    any_alias |= !world.kb.entity(e).aliases.empty();
  }
  EXPECT_TRUE(any_alias);
}

TEST(KbGeneratorTest, DescriptionsNonEmpty) {
  SyntheticKb world = SmallWorld();
  for (EntityId e = 0; e < world.kb.num_entities(); ++e) {
    EXPECT_FALSE(world.kb.entity(e).description.empty());
  }
}

TEST(KbGeneratorTest, PopularityDecreasesWithinCategory) {
  SyntheticKb world = SmallWorld();
  const auto& countries = world.kb.EntitiesOfType(world.t_country);
  ASSERT_GE(countries.size(), 2u);
  EXPECT_GT(world.kb.entity(countries.front()).popularity,
            world.kb.entity(countries.back()).popularity);
}

}  // namespace
}  // namespace kb
}  // namespace turl
