#include "kb/kb.h"

#include "gtest/gtest.h"

namespace turl {
namespace kb {
namespace {

class KbFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    person_ = kb_.AddType("person");
    actor_ = kb_.AddType("actor", person_);
    film_ = kb_.AddType("film");
    starring_ = kb_.AddRelation(
        {"starring", film_, actor_, {"actor", "starring"}, false});
    alice_ = kb_.AddEntity(
        {"Alice Doe", {"A. Doe"}, "Alice Doe is an actor", {actor_}, 1.0});
    bob_ = kb_.AddEntity({"Bob Roe", {}, "Bob Roe is a person", {person_}, 0.5});
    movie_ = kb_.AddEntity({"The Movie", {}, "a film", {film_}, 0.8});
    kb_.AddFact(movie_, starring_, alice_);
  }

  KnowledgeBase kb_;
  TypeId person_, actor_, film_;
  RelationId starring_;
  EntityId alice_, bob_, movie_;
};

TEST_F(KbFixture, Counts) {
  EXPECT_EQ(kb_.num_types(), 3);
  EXPECT_EQ(kb_.num_relations(), 1);
  EXPECT_EQ(kb_.num_entities(), 3);
  EXPECT_EQ(kb_.num_facts(), 1);
}

TEST_F(KbFixture, LookupByName) {
  EXPECT_EQ(kb_.TypeByName("actor"), actor_);
  EXPECT_EQ(kb_.TypeByName("nope"), kInvalidType);
  EXPECT_EQ(kb_.RelationByName("starring"), starring_);
  EXPECT_EQ(kb_.RelationByName("nope"), kInvalidRelation);
}

TEST_F(KbFixture, EntityAccess) {
  EXPECT_EQ(kb_.entity(alice_).name, "Alice Doe");
  EXPECT_EQ(kb_.entity(alice_).aliases.size(), 1u);
  EXPECT_EQ(kb_.relation(starring_).subject_type, film_);
}

TEST_F(KbFixture, TypeHierarchy) {
  EXPECT_TRUE(kb_.EntityHasType(alice_, actor_));
  EXPECT_TRUE(kb_.EntityHasType(alice_, person_));  // Via parent.
  EXPECT_FALSE(kb_.EntityHasType(alice_, film_));
  EXPECT_TRUE(kb_.EntityHasType(bob_, person_));
  EXPECT_FALSE(kb_.EntityHasType(bob_, actor_));  // No downward inheritance.
}

TEST_F(KbFixture, ExpandedTypes) {
  auto types = kb_.ExpandedTypes(alice_);
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], actor_);
  EXPECT_EQ(types[1], person_);
}

TEST_F(KbFixture, FactQueries) {
  ASSERT_EQ(kb_.Objects(movie_, starring_).size(), 1u);
  EXPECT_EQ(kb_.Objects(movie_, starring_)[0], alice_);
  ASSERT_EQ(kb_.Subjects(starring_, alice_).size(), 1u);
  EXPECT_EQ(kb_.Subjects(starring_, alice_)[0], movie_);
  EXPECT_TRUE(kb_.Objects(alice_, starring_).empty());
  EXPECT_TRUE(kb_.Subjects(starring_, bob_).empty());
}

TEST_F(KbFixture, DuplicateFactsCollapse) {
  kb_.AddFact(movie_, starring_, alice_);
  EXPECT_EQ(kb_.num_facts(), 1);
  EXPECT_EQ(kb_.Objects(movie_, starring_).size(), 1u);
}

TEST_F(KbFixture, MultiValuedFacts) {
  kb_.AddFact(movie_, starring_, bob_);
  EXPECT_EQ(kb_.Objects(movie_, starring_).size(), 2u);
}

TEST_F(KbFixture, EntitiesOfType) {
  ASSERT_EQ(kb_.EntitiesOfType(actor_).size(), 1u);
  EXPECT_EQ(kb_.EntitiesOfType(actor_)[0], alice_);
  // Direct type only: Alice is not listed under person.
  ASSERT_EQ(kb_.EntitiesOfType(person_).size(), 1u);
  EXPECT_EQ(kb_.EntitiesOfType(person_)[0], bob_);
}

TEST_F(KbFixture, RelationsWithSubjectType) {
  auto rels = kb_.RelationsWithSubjectType(film_);
  ASSERT_EQ(rels.size(), 1u);
  EXPECT_EQ(rels[0], starring_);
  EXPECT_TRUE(kb_.RelationsWithSubjectType(person_).empty());
}

}  // namespace
}  // namespace kb
}  // namespace turl
