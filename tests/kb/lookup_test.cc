#include "kb/lookup.h"

#include "gtest/gtest.h"
#include "kb/kb_generator.h"

namespace turl {
namespace kb {
namespace {

class LookupFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    person_ = kb_.AddType("person");
    popular_ = kb_.AddEntity(
        {"Satyajit Rayson", {"S. Rayson"}, "a director", {person_}, 2.0});
    obscure_ = kb_.AddEntity(
        {"Satyajit Raysen", {}, "another person", {person_}, 0.1});
    shared_ = kb_.AddEntity(
        {"Rayson", {}, "mononym artist", {person_}, 0.5});
    lookup_ = std::make_unique<LookupService>(&kb_);
  }

  KnowledgeBase kb_;
  TypeId person_;
  EntityId popular_, obscure_, shared_;
  std::unique_ptr<LookupService> lookup_;
};

TEST_F(LookupFixture, ExactMatchWins) {
  EXPECT_EQ(lookup_->Top1("Satyajit Rayson"), popular_);
  EXPECT_EQ(lookup_->Top1("satyajit rayson"), popular_);  // Normalized.
  EXPECT_EQ(lookup_->Top1("Rayson"), shared_);
}

TEST_F(LookupFixture, AliasIndexed) {
  EXPECT_EQ(lookup_->Top1("S. Rayson"), popular_);
}

TEST_F(LookupFixture, FuzzyMatchWithinEditDistance) {
  // One deleted character still finds the entity.
  auto candidates = lookup_->Lookup("Satyajit Raysn", 10);
  ASSERT_FALSE(candidates.empty());
  bool found = false;
  for (const auto& c : candidates) found |= (c.entity == popular_);
  EXPECT_TRUE(found);
}

TEST_F(LookupFixture, AmbiguousSurfaceReturnsBoth) {
  // "Satyajit Raysen" is 1 edit from "Satyajit Rayson": both the exact hit
  // and the popular near-miss are proposed; the blended score can let a
  // very popular near-miss outrank an obscure exact match (like the real
  // Wikidata Lookup, the service is deliberately imperfect).
  auto candidates = lookup_->Lookup("Satyajit Raysen", 10);
  ASSERT_GE(candidates.size(), 2u);
  bool has_exact = false, has_fuzzy = false;
  for (const auto& c : candidates) {
    has_exact |= c.entity == obscure_;
    has_fuzzy |= c.entity == popular_;
  }
  EXPECT_TRUE(has_exact);
  EXPECT_TRUE(has_fuzzy);
}

TEST_F(LookupFixture, ExactBeatsFuzzyAtComparablePopularity) {
  // At generator-scale popularity (<= 1) an exact surface match always
  // outranks a fuzzy one: 1.0 + p_exact > 0.5 + 0.5 * p_fuzzy.
  EntityId modest = kb_.AddEntity(
      {"Satyajit Raysan", {}, "third person", {person_}, 0.9});
  LookupService fresh(&kb_);
  auto candidates = fresh.Lookup("Satyajit Raysan", 10);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].entity, modest);
}

TEST_F(LookupFixture, GarbageReturnsEmpty) {
  EXPECT_TRUE(lookup_->Lookup("qqqqqqqqqqqqqqqqqqqqqq", 10).empty());
  EXPECT_EQ(lookup_->Top1("qqqqqqqqqqqqqqqqqqqqqq"), kInvalidEntity);
  EXPECT_TRUE(lookup_->Lookup("", 10).empty());
}

TEST_F(LookupFixture, RespectsK) {
  auto candidates = lookup_->Lookup("Rayson", 1);
  EXPECT_EQ(candidates.size(), 1u);
}

TEST_F(LookupFixture, ScoresDescending) {
  auto candidates = lookup_->Lookup("Satyajit Rayson", 10);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].score, candidates[i].score);
  }
}

TEST(LookupSyntheticTest, HighRecallOnCanonicalNames) {
  Rng rng(5);
  kb::SyntheticKb world = GenerateSyntheticKb(KbGeneratorConfig{}, &rng);
  LookupService lookup(&world.kb);
  int hits = 0;
  const int n = std::min(world.kb.num_entities(), 300);
  for (EntityId e = 0; e < n; ++e) {
    auto candidates = lookup.Lookup(world.kb.entity(e).name, 50);
    for (const auto& c : candidates) {
      if (c.entity == e) {
        ++hits;
        break;
      }
    }
  }
  // Canonical names are indexed, so recall@50 should be near-perfect.
  EXPECT_GE(hits, n * 95 / 100);
}

TEST(LookupSyntheticTest, Top1ImperfectUnderAmbiguity) {
  Rng rng(6);
  kb::SyntheticKb world = GenerateSyntheticKb(KbGeneratorConfig{}, &rng);
  LookupService lookup(&world.kb);
  // Surname-only aliases are shared; top-1 on them cannot always be right.
  int correct = 0, total = 0;
  for (EntityId e = 0; e < world.kb.num_entities() && total < 200; ++e) {
    for (const std::string& alias : world.kb.entity(e).aliases) {
      ++total;
      correct += lookup.Top1(alias) == e;
    }
  }
  ASSERT_GT(total, 50);
  EXPECT_LT(correct, total);  // Some ambiguity resolved incorrectly.
  EXPECT_GT(correct, total / 4);  // But the popularity prior helps.
}

}  // namespace
}  // namespace kb
}  // namespace turl
