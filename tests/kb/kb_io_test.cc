#include "kb/kb_io.h"

#include <cstdio>

#include "gtest/gtest.h"
#include "kb/kb_generator.h"

namespace turl {
namespace kb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(KbIoTest, RoundTripPreservesEverything) {
  Rng rng(5);
  KbGeneratorConfig config;
  config.num_directors = 8;
  config.num_actors = 20;
  config.num_athletes = 30;
  config.num_musicians = 5;
  config.num_cities = 15;
  SyntheticKb world = GenerateSyntheticKb(config, &rng);
  const std::string path = TempPath("kb.bin");
  ASSERT_TRUE(SaveKnowledgeBase(world.kb, path).ok());

  auto loaded = LoadKnowledgeBase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const KnowledgeBase& kb = *loaded;

  ASSERT_EQ(kb.num_types(), world.kb.num_types());
  ASSERT_EQ(kb.num_relations(), world.kb.num_relations());
  ASSERT_EQ(kb.num_entities(), world.kb.num_entities());
  ASSERT_EQ(kb.num_facts(), world.kb.num_facts());

  for (TypeId t = 0; t < kb.num_types(); ++t) {
    EXPECT_EQ(kb.type(t).name, world.kb.type(t).name);
    EXPECT_EQ(kb.type(t).parent, world.kb.type(t).parent);
  }
  for (RelationId r = 0; r < kb.num_relations(); ++r) {
    EXPECT_EQ(kb.relation(r).name, world.kb.relation(r).name);
    EXPECT_EQ(kb.relation(r).subject_type, world.kb.relation(r).subject_type);
    EXPECT_EQ(kb.relation(r).header_surfaces,
              world.kb.relation(r).header_surfaces);
    EXPECT_EQ(kb.relation(r).functional, world.kb.relation(r).functional);
  }
  for (EntityId e = 0; e < kb.num_entities(); ++e) {
    EXPECT_EQ(kb.entity(e).name, world.kb.entity(e).name);
    EXPECT_EQ(kb.entity(e).aliases, world.kb.entity(e).aliases);
    EXPECT_EQ(kb.entity(e).description, world.kb.entity(e).description);
    EXPECT_EQ(kb.entity(e).types, world.kb.entity(e).types);
    EXPECT_DOUBLE_EQ(kb.entity(e).popularity, world.kb.entity(e).popularity);
  }
  EXPECT_EQ(kb.AllFacts(), world.kb.AllFacts());
  std::remove(path.c_str());
}

TEST(KbIoTest, QueriesWorkAfterLoad) {
  Rng rng(6);
  SyntheticKb world = GenerateSyntheticKb(KbGeneratorConfig{}, &rng);
  const std::string path = TempPath("kb2.bin");
  ASSERT_TRUE(SaveKnowledgeBase(world.kb, path).ok());
  auto loaded = LoadKnowledgeBase(path);
  ASSERT_TRUE(loaded.ok());
  // Reverse index rebuilt: subjects of a relation match.
  const RelationId plays_for = loaded->RelationByName("plays_for");
  ASSERT_NE(plays_for, kInvalidRelation);
  bool any = false;
  for (EntityId e = 0; e < loaded->num_entities() && !any; ++e) {
    for (EntityId team : loaded->Objects(e, plays_for)) {
      const auto& subjects = loaded->Subjects(plays_for, team);
      EXPECT_TRUE(std::find(subjects.begin(), subjects.end(), e) !=
                  subjects.end());
      any = true;
    }
  }
  EXPECT_TRUE(any);
  std::remove(path.c_str());
}

TEST(KbIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadKnowledgeBase(TempPath("nope.bin")).ok());
}

TEST(KbIoTest, GarbageFails) {
  const std::string path = TempPath("garbage_kb.bin");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("junk", f);
    fclose(f);
  }
  EXPECT_FALSE(LoadKnowledgeBase(path).ok());
  std::remove(path.c_str());
}

TEST(KbIoTest, AllFactsSortedAndComplete) {
  Rng rng(7);
  SyntheticKb world = GenerateSyntheticKb(KbGeneratorConfig{}, &rng);
  auto facts = world.kb.AllFacts();
  EXPECT_EQ(facts.size(), size_t(world.kb.num_facts()));
  // Sorted by (relation, subject, object).
  for (size_t i = 1; i < facts.size(); ++i) {
    const auto key = [](const auto& f) {
      return std::make_tuple(std::get<1>(f), std::get<0>(f), std::get<2>(f));
    };
    EXPECT_LE(key(facts[i - 1]), key(facts[i]));
  }
}

}  // namespace
}  // namespace kb
}  // namespace turl
