// End-to-end integration: the whole pipeline — synthetic KB -> corpus ->
// vocabularies -> encoding -> pre-training -> representations -> a task
// head — runs, learns, and is bit-for-bit deterministic given the seeds.

#include <cmath>

#include "core/model_cache.h"
#include "core/pretrain.h"
#include "core/representation.h"
#include "gtest/gtest.h"
#include "kb/lookup.h"
#include "tasks/relation_extraction.h"

namespace turl {
namespace {

core::ContextConfig SmallContextConfig(uint64_t seed = 42) {
  core::ContextConfig config;
  config.corpus.num_tables = 250;
  config.seed = seed;
  return config;
}

core::TurlConfig TinyModelConfig() {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

core::PretrainResult RunPipeline(core::TurlModel* model,
                                 const core::TurlContext& ctx) {
  core::Pretrainer pretrainer(model, &ctx);
  core::Pretrainer::Options opts;
  opts.epochs = 1;
  opts.max_train_tables = 80;
  opts.max_eval_tables = 15;
  opts.seed = 7;
  return pretrainer.Train(opts);
}

TEST(PipelineIntegrationTest, FullyDeterministicAcrossRuns) {
  core::TurlContext ctx_a = core::BuildContext(SmallContextConfig());
  core::TurlContext ctx_b = core::BuildContext(SmallContextConfig());
  ASSERT_EQ(ctx_a.vocab.size(), ctx_b.vocab.size());
  ASSERT_EQ(ctx_a.corpus.tables.size(), ctx_b.corpus.tables.size());

  core::TurlModel model_a(TinyModelConfig(), ctx_a.vocab.size(),
                          ctx_a.entity_vocab.size(), 1);
  core::TurlModel model_b(TinyModelConfig(), ctx_b.vocab.size(),
                          ctx_b.entity_vocab.size(), 1);
  core::PretrainResult ra = RunPipeline(&model_a, ctx_a);
  core::PretrainResult rb = RunPipeline(&model_b, ctx_b);

  EXPECT_EQ(ra.steps, rb.steps);
  EXPECT_DOUBLE_EQ(ra.final_loss, rb.final_loss);
  EXPECT_DOUBLE_EQ(ra.final_accuracy, rb.final_accuracy);

  // Weights identical to the bit.
  const nn::Tensor wa = model_a.word_embedding().weight();
  const nn::Tensor wb = model_b.word_embedding().weight();
  for (int64_t i = 0; i < wa.numel(); ++i) {
    ASSERT_EQ(wa.at(i), wb.at(i)) << "weight divergence at " << i;
  }
}

TEST(PipelineIntegrationTest, DifferentSeedsDiverge) {
  core::TurlContext ctx = core::BuildContext(SmallContextConfig());
  core::TurlModel model_a(TinyModelConfig(), ctx.vocab.size(),
                          ctx.entity_vocab.size(), 1);
  core::TurlModel model_b(TinyModelConfig(), ctx.vocab.size(),
                          ctx.entity_vocab.size(), 2);
  core::PretrainResult ra = RunPipeline(&model_a, ctx);
  core::PretrainResult rb = RunPipeline(&model_b, ctx);
  EXPECT_NE(ra.final_loss, rb.final_loss);
}

TEST(PipelineIntegrationTest, PretrainedRepresentationsFeedTasks) {
  core::TurlContext ctx = core::BuildContext(SmallContextConfig());
  core::TurlModel model(TinyModelConfig(), ctx.vocab.size(),
                        ctx.entity_vocab.size(), 1);
  RunPipeline(&model, ctx);

  // Representations extract cleanly from a held-out table.
  const data::Table& table = ctx.corpus.tables[ctx.corpus.valid[0]];
  core::TableRepresentation rep =
      core::ExtractRepresentation(model, ctx, table);
  ASSERT_FALSE(rep.entity_vectors.empty());
  for (const auto& v : rep.entity_vectors) {
    for (float x : v) ASSERT_TRUE(std::isfinite(x));
  }

  // The pre-trained weights plug straight into a task head and train.
  tasks::RelationDataset dataset = tasks::BuildRelationDataset(ctx);
  if (dataset.train.empty() || dataset.valid.empty()) {
    GTEST_SKIP() << "tiny corpus produced no relation instances";
  }
  tasks::TurlRelationExtractor extractor(&model, &ctx, &dataset,
                                         tasks::InputVariant::Full(), 31);
  tasks::FinetuneOptions ft;
  ft.epochs = 1;
  ft.max_tables = 40;
  extractor.Finetune(ft);
  const double map = extractor.EvaluateMap(dataset.valid, 30);
  EXPECT_GE(map, 0.0);
  EXPECT_LE(map, 1.0);
}

TEST(PipelineIntegrationTest, CheckpointSurvivesProcessBoundarySimulation) {
  // Save -> rebuild everything from scratch (as a fresh process would) ->
  // load -> identical representations.
  const std::string dir = ::testing::TempDir() + "/pipeline_cache";
  core::TurlConfig config = TinyModelConfig();
  std::remove((dir + "/" + config.CacheTag() + ".ckpt").c_str());

  std::vector<float> vector_before;
  {
    core::TurlContext ctx = core::BuildContext(SmallContextConfig());
    core::TurlModel model(config, ctx.vocab.size(), ctx.entity_vocab.size(),
                          1);
    core::Pretrainer::Options opts;
    opts.epochs = 1;
    opts.max_train_tables = 40;
    opts.max_eval_tables = 5;
    core::GetOrTrainModel(&model, ctx, opts, dir);
    core::TableRepresentation rep = core::ExtractRepresentation(
        model, ctx, ctx.corpus.tables[ctx.corpus.valid[0]]);
    vector_before = rep.entity_vectors[0];
  }
  {
    core::TurlContext ctx = core::BuildContext(SmallContextConfig());
    core::TurlModel model(config, ctx.vocab.size(), ctx.entity_vocab.size(),
                          99);  // Different init; must be overwritten by load.
    core::Pretrainer::Options opts;
    core::GetOrTrainModel(&model, ctx, opts, dir);
    core::TableRepresentation rep = core::ExtractRepresentation(
        model, ctx, ctx.corpus.tables[ctx.corpus.valid[0]]);
    ASSERT_EQ(rep.entity_vectors[0].size(), vector_before.size());
    for (size_t i = 0; i < vector_before.size(); ++i) {
      EXPECT_EQ(rep.entity_vectors[0][i], vector_before[i]);
    }
  }
}

}  // namespace
}  // namespace turl
