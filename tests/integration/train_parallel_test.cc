// End-to-end determinism of task-graph parallel training: pretraining and
// every fine-tuning head must be bit-identical at TURL_TRAIN_THREADS=4 and
// =1, with and without sharded gradient accumulation, and a sharded run
// killed mid-flight must resume bit-identically on a different thread count.
// This is the acceptance suite for the parallel training executor
// (`ctest -L train`).

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/row_population.h"
#include "core/context.h"
#include "core/model.h"
#include "core/pretrain.h"
#include "gtest/gtest.h"
#include "kb/lookup.h"
#include "nn/train_parallel.h"
#include "tasks/column_type.h"
#include "tasks/entity_linking.h"
#include "tasks/relation_extraction.h"
#include "tasks/row_population.h"
#include "tasks/schema_augmentation.h"

namespace turl {
namespace {

/// Restores the sequential default on scope exit so no test (or failure)
/// leaks a thread count into its neighbors.
struct ThreadGuard {
  ~ThreadGuard() { nn::SetTrainThreads(1); }
};

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 150;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

core::TurlConfig TinyConfig() {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

core::Pretrainer::Options BaseOptions() {
  core::Pretrainer::Options opts;
  opts.epochs = 2;
  opts.max_train_tables = 12;
  opts.eval_every = 6;
  opts.max_eval_tables = 4;
  opts.max_eval_cells_per_table = 2;
  opts.seed = 7;
  return opts;
}

std::vector<std::vector<float>> ParamsOf(const core::TurlModel& model) {
  std::vector<std::vector<float>> out;
  for (const auto& [name, t] : model.params().params()) {
    out.push_back(t.ToVector());
  }
  return out;
}

void ExpectBitIdentical(const std::vector<std::vector<float>>& a,
                        const std::vector<std::vector<float>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "param " << i;
    for (size_t j = 0; j < a[i].size(); ++j) {
      ASSERT_EQ(a[i][j], b[i][j])
          << "weight divergence at param " << i << " element " << j;
    }
  }
}

struct PretrainRun {
  core::PretrainResult result;
  std::vector<std::vector<float>> params;
};

PretrainRun RunPretrain(const core::Pretrainer::Options& opts, int threads) {
  nn::SetTrainThreads(threads);
  core::TurlModel model(TinyConfig(), Ctx().vocab.size(),
                        Ctx().entity_vocab.size(), 1);
  core::Pretrainer pretrainer(&model, &Ctx());
  PretrainRun run{pretrainer.Train(opts), ParamsOf(model)};
  nn::SetTrainThreads(1);
  return run;
}

void ExpectSameResult(const core::PretrainResult& a,
                      const core::PretrainResult& b) {
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  ASSERT_EQ(a.eval_curve.size(), b.eval_curve.size());
  for (size_t i = 0; i < a.eval_curve.size(); ++i) {
    EXPECT_EQ(a.eval_curve[i].first, b.eval_curve[i].first);
    EXPECT_DOUBLE_EQ(a.eval_curve[i].second, b.eval_curve[i].second);
  }
}

TEST(PretrainParallelTest, ClassicPathBitIdenticalAcrossThreadCounts) {
  // grad_accum_tables = 1: the per-table tape itself runs on the task-graph
  // executor at 4 threads; weights, loss and the eval curve must not move
  // by a single bit.
  ThreadGuard guard;
  const PretrainRun seq = RunPretrain(BaseOptions(), /*threads=*/1);
  const PretrainRun par = RunPretrain(BaseOptions(), /*threads=*/4);
  ExpectSameResult(seq.result, par.result);
  ExpectBitIdentical(seq.params, par.params);
}

TEST(PretrainParallelTest, ShardedPathBitIdenticalAcrossThreadCounts) {
  // grad_accum_tables = 3: concurrent per-shard tapes + fixed-order
  // reduction. The 1-thread run executes shards inline in ascending order;
  // the 4-thread run overlaps them — identical bits either way.
  ThreadGuard guard;
  core::Pretrainer::Options opts = BaseOptions();
  opts.grad_accum_tables = 3;
  const PretrainRun seq = RunPretrain(opts, /*threads=*/1);
  const PretrainRun par = RunPretrain(opts, /*threads=*/4);
  EXPECT_GT(seq.result.steps, 0);
  ExpectSameResult(seq.result, par.result);
  ExpectBitIdentical(seq.params, par.params);
}

TEST(PretrainParallelTest, ShardedKillResumeMatchesUninterruptedAnyThreads) {
  // A sharded 4-thread run killed mid-epoch must resume from its periodic
  // checkpoint and land exactly on the uninterrupted 1-thread run: the
  // checkpoint fingerprint and the shard RNG streams are thread-agnostic.
  ThreadGuard guard;
  core::Pretrainer::Options opts = BaseOptions();
  opts.grad_accum_tables = 3;  // 12 tables / 3 -> 4 steps per epoch.
  const PretrainRun reference = RunPretrain(opts, /*threads=*/1);
  ASSERT_GE(reference.result.steps, 6) << "kill point unreachable";

  opts.ckpt_dir = FreshDir("train_parallel_resume");
  opts.save_every = 2;
  {
    nn::SetTrainThreads(4);
    core::TurlModel model(TinyConfig(), Ctx().vocab.size(),
                          Ctx().entity_vocab.size(), 1);
    core::Pretrainer pretrainer(&model, &Ctx());
    core::Pretrainer::Options killed = opts;
    killed.max_steps = 5;  // Mid-save-interval, inside epoch 1.
    const core::PretrainResult partial = pretrainer.Train(killed);
    nn::SetTrainThreads(1);
    ASSERT_EQ(partial.steps, 5) << "kill point was never reached";
  }
  const PretrainRun resumed = RunPretrain(opts, /*threads=*/4);
  ExpectSameResult(reference.result, resumed.result);
  ExpectBitIdentical(reference.params, resumed.params);
}

// ---------------------------------------------------------------------------
// Fine-tuning heads: each must produce bit-identical model weights AND head
// scores at 1 and 4 threads (head parameters are private to the task, so
// probe scores pin them down). Cell filling has no fine-tuning loop — its
// scoring path is covered by the pretraining identity above.
// ---------------------------------------------------------------------------

tasks::FinetuneOptions QuickFinetune() {
  tasks::FinetuneOptions ft;
  ft.epochs = 1;
  ft.max_tables = 12;
  return ft;
}

std::unique_ptr<core::TurlModel> FreshModel() {
  return std::make_unique<core::TurlModel>(
      TinyConfig(), Ctx().vocab.size(), Ctx().entity_vocab.size(), 11);
}

void ExpectScoresBitIdentical(const std::vector<std::vector<float>>& a,
                              const std::vector<std::vector<float>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "probe " << i;
    for (size_t j = 0; j < a[i].size(); ++j) {
      ASSERT_EQ(a[i][j], b[i][j]) << "probe " << i << " score " << j;
    }
  }
}

/// Fine-tunes one head at `threads` and returns (model params, probe
/// scores). `run` owns building the task object and returning probe scores.
template <typename RunFn>
std::pair<std::vector<std::vector<float>>, std::vector<std::vector<float>>>
FinetuneAt(int threads, const RunFn& run) {
  nn::SetTrainThreads(threads);
  auto model = FreshModel();
  std::vector<std::vector<float>> scores = run(model.get());
  nn::SetTrainThreads(1);
  return {ParamsOf(*model), std::move(scores)};
}

template <typename RunFn>
void ExpectFinetuneBitIdentical(const RunFn& run) {
  ThreadGuard guard;
  const auto seq = FinetuneAt(1, run);
  const auto par = FinetuneAt(4, run);
  ExpectBitIdentical(seq.first, par.first);
  ExpectScoresBitIdentical(seq.second, par.second);
}

TEST(FinetuneParallelTest, SchemaAugmentationBitIdentical) {
  tasks::HeaderVocab vocab = tasks::BuildHeaderVocab(Ctx());
  const auto train = tasks::BuildSchemaAugInstances(
      Ctx(), vocab, Ctx().corpus.train, 0, 30);
  const auto probe = tasks::BuildSchemaAugInstances(
      Ctx(), vocab, Ctx().corpus.valid, 0, 4);
  ASSERT_FALSE(train.empty());
  ASSERT_FALSE(probe.empty());
  ExpectFinetuneBitIdentical([&](core::TurlModel* model) {
    tasks::TurlSchemaAugmenter augmenter(model, &Ctx(), &vocab, 31);
    augmenter.Finetune(train, QuickFinetune());
    std::vector<std::vector<float>> scores;
    for (const auto& inst : probe) scores.push_back(augmenter.Scores(inst));
    return scores;
  });
}

TEST(FinetuneParallelTest, ColumnTypeBitIdentical) {
  static const tasks::ColumnTypeDataset& dataset =
      *new tasks::ColumnTypeDataset(tasks::BuildColumnTypeDataset(Ctx()));
  ASSERT_FALSE(dataset.train.empty());
  ASSERT_FALSE(dataset.valid.empty());
  const size_t probes = std::min<size_t>(dataset.valid.size(), 4);
  ExpectFinetuneBitIdentical([&](core::TurlModel* model) {
    tasks::TurlColumnTyper typer(model, &Ctx(), &dataset,
                                 tasks::InputVariant::Full(), 31);
    typer.Finetune(QuickFinetune());
    std::vector<std::vector<float>> scores;
    for (size_t i = 0; i < probes; ++i) {
      scores.push_back(typer.Scores(dataset.valid[i]));
    }
    return scores;
  });
}

TEST(FinetuneParallelTest, RelationExtractionBitIdentical) {
  static const tasks::RelationDataset& dataset =
      *new tasks::RelationDataset(tasks::BuildRelationDataset(Ctx()));
  ASSERT_FALSE(dataset.train.empty());
  ASSERT_FALSE(dataset.valid.empty());
  const size_t probes = std::min<size_t>(dataset.valid.size(), 4);
  ExpectFinetuneBitIdentical([&](core::TurlModel* model) {
    tasks::TurlRelationExtractor extractor(model, &Ctx(), &dataset,
                                           tasks::InputVariant::Full(), 31);
    extractor.Finetune(QuickFinetune());
    std::vector<std::vector<float>> scores;
    for (size_t i = 0; i < probes; ++i) {
      scores.push_back(extractor.Scores(dataset.valid[i]));
    }
    return scores;
  });
}

TEST(FinetuneParallelTest, EntityLinkingBitIdentical) {
  static kb::LookupService& lookup =
      *new kb::LookupService(&Ctx().world.kb);
  static const tasks::ElDataset& train = *new tasks::ElDataset(
      tasks::BuildElDataset(Ctx(), lookup, Ctx().corpus.train, 20,
                            /*drop_unreachable=*/true, 60));
  static const tasks::ElDataset& probe = *new tasks::ElDataset(
      tasks::BuildElDataset(Ctx(), lookup, Ctx().corpus.valid, 20, false, 6));
  ASSERT_FALSE(train.instances.empty());
  ASSERT_FALSE(probe.instances.empty());
  ExpectFinetuneBitIdentical([&](core::TurlModel* model) {
    tasks::TurlEntityLinker linker(model, &Ctx(), {true, true}, 31);
    linker.Finetune(train, QuickFinetune());
    std::vector<std::vector<float>> scores;
    for (const auto& inst : probe.instances) {
      scores.push_back(linker.Scores(inst));
    }
    return scores;
  });
}

TEST(FinetuneParallelTest, RowPopulationBitIdentical) {
  static const baselines::RowPopCandidateGenerator& gen =
      *new baselines::RowPopCandidateGenerator(Ctx().corpus,
                                               Ctx().corpus.train);
  static const std::vector<tasks::RowPopInstance>& train =
      *new std::vector<tasks::RowPopInstance>(
          tasks::BuildRowPopInstances(Ctx(), gen, Ctx().corpus.train, 1, 4,
                                      30));
  static const std::vector<tasks::RowPopInstance>& probe =
      *new std::vector<tasks::RowPopInstance>(
          tasks::BuildRowPopInstances(Ctx(), gen, Ctx().corpus.valid, 1, 6,
                                      4));
  ASSERT_FALSE(train.empty());
  ASSERT_FALSE(probe.empty());
  ExpectFinetuneBitIdentical([&](core::TurlModel* model) {
    tasks::TurlRowPopulator populator(model, &Ctx());
    populator.Finetune(train, QuickFinetune());
    std::vector<std::vector<float>> scores;
    for (const auto& inst : probe) scores.push_back(populator.Scores(inst));
    return scores;
  });
}

}  // namespace
}  // namespace turl
