// EncodeBatch must be indistinguishable from the historical sequential
// evaluation loop: exact float equality per table at 1 thread and at N
// threads, for a mixed-shape workload.

#include "rt/inference_session.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/context.h"
#include "core/model.h"
#include "core/table_encoding.h"
#include "gtest/gtest.h"

namespace turl {
namespace rt {
namespace {

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 150;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

core::TurlConfig SmallConfig() {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

const core::TurlModel& Model() {
  static core::TurlModel* model = new core::TurlModel(
      SmallConfig(), Ctx().vocab.size(), Ctx().entity_vocab.size(),
      /*seed=*/11);
  return *model;
}

// 16 held-out tables, deliberately encoded at varying row caps so the batch
// really is mixed-shape (corpus tables can otherwise all hit the same cap).
const std::vector<core::EncodedTable>& Workload() {
  static std::vector<core::EncodedTable>* tables = [] {
    auto* out = new std::vector<core::EncodedTable>;
    const text::WordPieceTokenizer tokenizer = Ctx().MakeTokenizer();
    const std::vector<size_t>& valid = Ctx().corpus.valid;
    // Cycle through the held-out tables until we have 16 encodings; repeated
    // tables still differ in shape because of the varying row cap.
    for (size_t pass = 0; out->size() < 16 && pass < 16; ++pass) {
      for (size_t idx : valid) {
        core::EncodeOptions options;
        options.max_rows = 2 + int(out->size());  // 2..17 rows in the batch.
        core::EncodedTable t = core::EncodeTable(
            Ctx().corpus.tables[idx], tokenizer, Ctx().entity_vocab, options);
        if (t.total() > 0) out->push_back(std::move(t));
        if (out->size() >= 16) break;
      }
    }
    return out;
  }();
  return *tables;
}

std::vector<std::vector<float>> SequentialReference() {
  std::vector<std::vector<float>> ref;
  for (const core::EncodedTable& t : Workload()) {
    ref.push_back(Model().Encode(t, /*training=*/false).ToVector());
  }
  return ref;
}

TEST(InferenceSessionTest, WorkloadIsMixedShape) {
  const auto& tables = Workload();
  ASSERT_EQ(tables.size(), 16u);
  int64_t min_total = tables[0].total(), max_total = tables[0].total();
  for (const auto& t : tables) {
    min_total = std::min<int64_t>(min_total, t.total());
    max_total = std::max<int64_t>(max_total, t.total());
  }
  EXPECT_LT(min_total, max_total) << "workload should not be uniform";
}

TEST(InferenceSessionTest, SingleThreadMatchesSequentialExactly) {
  InferenceSession session(Model(), SessionOptions{.num_threads = 1});
  EXPECT_EQ(session.num_threads(), 1);
  const auto ref = SequentialReference();
  std::vector<nn::Tensor> batched =
      session.EncodeBatch(std::span<const core::EncodedTable>(Workload()));
  ASSERT_EQ(batched.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(batched[i].ToVector(), ref[i]) << "table " << i;
  }
}

TEST(InferenceSessionTest, MultiThreadMatchesSequentialExactly) {
  InferenceSession session(Model(), SessionOptions{.num_threads = 4});
  EXPECT_EQ(session.num_threads(), 4);
  const auto ref = SequentialReference();
  std::vector<nn::Tensor> batched =
      session.EncodeBatch(std::span<const core::EncodedTable>(Workload()));
  ASSERT_EQ(batched.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(batched[i].ToVector(), ref[i]) << "table " << i;
  }
}

TEST(InferenceSessionTest, PointerBatchMatchesContiguousBatch) {
  InferenceSession session(Model(), SessionOptions{.num_threads = 4});
  std::vector<const core::EncodedTable*> ptrs;
  for (const auto& t : Workload()) ptrs.push_back(&t);
  std::vector<nn::Tensor> by_ptr = session.EncodeBatch(
      std::span<const core::EncodedTable* const>(ptrs));
  const auto ref = SequentialReference();
  ASSERT_EQ(by_ptr.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(by_ptr[i].ToVector(), ref[i]) << "table " << i;
  }
}

TEST(InferenceSessionTest, EncodeMatchesModelEncode) {
  InferenceSession session(Model(), SessionOptions{.num_threads = 2});
  const core::EncodedTable& t = Workload()[0];
  EXPECT_EQ(session.Encode(t).ToVector(),
            Model().Encode(t, /*training=*/false).ToVector());
}

TEST(InferenceSessionTest, MapIsDeterministicByIndex) {
  InferenceSession session(Model(), SessionOptions{.num_threads = 4});
  std::vector<int> out = session.Map<int>(
      100, [](size_t i) { return int(i) * 3; }, /*grain=*/4);
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], int(i) * 3);
}

TEST(InferenceSessionTest, WorkerRngIsAvailableOffPool) {
  InferenceSession session(Model(), SessionOptions{.num_threads = 2,
                                                   .scratch_seed = 7});
  ASSERT_NE(session.worker_rng(), nullptr);
  (void)session.worker_rng()->Next();
}

TEST(InferenceSessionTest, EmptyBatchIsFine) {
  InferenceSession session(Model(), SessionOptions{.num_threads = 2});
  EXPECT_TRUE(
      session.EncodeBatch(std::span<const core::EncodedTable>()).empty());
}

}  // namespace
}  // namespace rt
}  // namespace turl
