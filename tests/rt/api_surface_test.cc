// Pins the post-redesign API surface. The one-release [[deprecated]]
// forwarders from the TaskHead unification (Score / Rank / EncodeFor /
// EncodeQuery across the six heads) are gone: the compile-time assertions
// below fail if any of them grows back, and also document what the heads DO
// expose (the unified Encode/Scores/Predict surface of tasks/task_head.h).
//
// BatchScheduler's deprecated 2-arg Submit adapter — the last shim, kept
// for exactly one release — is gone too; its absence is pinned at compile
// time below. rt::Request is the single submission type.

#include <functional>
#include <memory>
#include <vector>

#include "core/context.h"
#include "core/model.h"
#include "core/table_encoding.h"
#include "gtest/gtest.h"
#include "rt/batch_scheduler.h"
#include "rt/request.h"
#include "tasks/cell_filling.h"
#include "tasks/column_type.h"
#include "tasks/entity_linking.h"
#include "tasks/relation_extraction.h"
#include "tasks/row_population.h"
#include "tasks/schema_augmentation.h"

namespace turl {
namespace tasks {
namespace {

// --- Compile-time surface assertions ------------------------------------

/// True when `head.Method(instance)` is a valid public call.
#define TURL_DEFINE_HAS(NAME, EXPR)                            \
  template <typename Head, typename Instance>                  \
  concept NAME = requires(const Head& h, const Instance& i) {  \
    EXPR;                                                      \
  }

TURL_DEFINE_HAS(HasEncode, h.Encode(i));
TURL_DEFINE_HAS(HasScores, h.Scores(i));
TURL_DEFINE_HAS(HasPredict, h.Predict(i));
TURL_DEFINE_HAS(HasDeprecatedScore, h.Score(i));
TURL_DEFINE_HAS(HasDeprecatedRank, h.Rank(i));
#undef TURL_DEFINE_HAS

template <typename Head>
concept HasDeprecatedEncodeFor =
    requires(const Head& h, size_t idx) { h.EncodeFor(idx); };

// Every head speaks the unified surface...
static_assert(HasEncode<TurlEntityLinker, ElInstance>);
static_assert(HasScores<TurlEntityLinker, ElInstance>);
static_assert(HasPredict<TurlEntityLinker, ElInstance>);
static_assert(HasEncode<TurlColumnTyper, ColumnTypeInstance>);
static_assert(HasScores<TurlColumnTyper, ColumnTypeInstance>);
static_assert(HasPredict<TurlColumnTyper, ColumnTypeInstance>);
static_assert(HasEncode<TurlRelationExtractor, RelationInstance>);
static_assert(HasScores<TurlRelationExtractor, RelationInstance>);
static_assert(HasPredict<TurlRelationExtractor, RelationInstance>);
static_assert(HasEncode<TurlRowPopulator, RowPopInstance>);
static_assert(HasScores<TurlRowPopulator, RowPopInstance>);
static_assert(HasPredict<TurlRowPopulator, RowPopInstance>);
static_assert(HasEncode<TurlCellFiller, CellFillInstance>);
static_assert(HasScores<TurlCellFiller, CellFillInstance>);
static_assert(HasPredict<TurlCellFiller, CellFillInstance>);
static_assert(HasEncode<TurlSchemaAugmenter, SchemaAugInstance>);
static_assert(HasScores<TurlSchemaAugmenter, SchemaAugInstance>);
static_assert(HasPredict<TurlSchemaAugmenter, SchemaAugInstance>);

// ...and none still carries a pre-TaskHead spelling.
static_assert(!HasDeprecatedScore<TurlRowPopulator, RowPopInstance>);
static_assert(!HasDeprecatedScore<TurlCellFiller, CellFillInstance>);
static_assert(!HasDeprecatedRank<TurlSchemaAugmenter, SchemaAugInstance>);
static_assert(!HasDeprecatedEncodeFor<TurlEntityLinker>);
static_assert(!HasDeprecatedEncodeFor<TurlColumnTyper>);
static_assert(!HasDeprecatedEncodeFor<TurlRelationExtractor>);

// The scheduler accepts exactly one submission shape: Submit(rt::Request).
// The 2-arg (table, tensor-callback) adapter was deleted after its one
// promised release; this fails to hold if it grows back.
template <typename S>
concept HasDeprecatedTwoArgSubmit =
    requires(S& s, const core::EncodedTable* t,
             std::function<void(nn::Tensor)> cb) { s.Submit(t, cb); };
static_assert(!HasDeprecatedTwoArgSubmit<rt::BatchScheduler>);
static_assert(requires(rt::BatchScheduler& s, rt::Request r) {
  s.Submit(std::move(r));
});

// --- Canonical Submit(rt::Request) surface -------------------------------

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 150;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

core::TurlConfig SmallConfig() {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

const rt::InferenceSession& Session() {
  static rt::InferenceSession* session = [] {
    auto* model = new core::TurlModel(SmallConfig(), Ctx().vocab.size(),
                                      Ctx().entity_vocab.size(), /*seed=*/11);
    return new rt::InferenceSession(*model,
                                    rt::SessionOptions{.num_threads = 1});
  }();
  return *session;
}

std::vector<core::EncodedTable> SomeTables(size_t n) {
  std::vector<core::EncodedTable> out;
  const text::WordPieceTokenizer tokenizer = Ctx().MakeTokenizer();
  for (size_t idx : Ctx().corpus.valid) {
    core::EncodedTable t = core::EncodeTable(Ctx().corpus.tables[idx],
                                             tokenizer, Ctx().entity_vocab);
    if (t.total() > 0) out.push_back(std::move(t));
    if (out.size() >= n) break;
  }
  return out;
}

TEST(ApiSurfaceTest, RequestSubmitMatchesDirectEncode) {
  // The canonical (and now only) submission path produces exactly the
  // per-table session result, in order — the behavioural guarantee the
  // deleted adapter used to forward to.
  const std::vector<core::EncodedTable> tables = SomeTables(4);
  ASSERT_FALSE(tables.empty());

  std::vector<nn::Tensor> via_request(tables.size());
  {
    rt::BatchScheduler scheduler(&Session());
    for (size_t i = 0; i < tables.size(); ++i) {
      rt::Request request;
      request.table = &tables[i];
      request.request_id = i;
      request.done = [&via_request, i](rt::Response r) {
        ASSERT_EQ(r.status, rt::ResponseStatus::kOk);
        ASSERT_EQ(r.request_id, i);
        via_request[i] = std::move(r.hidden);
      };
      scheduler.Submit(std::move(request));
    }
    scheduler.Flush();
  }
  for (size_t i = 0; i < tables.size(); ++i) {
    EXPECT_EQ(via_request[i].ToVector(), Session().Encode(tables[i]).ToVector())
        << "table " << i;
  }
}

}  // namespace
}  // namespace tasks
}  // namespace turl
