#include "rt/task_graph.h"

#include <atomic>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "rt/thread_pool.h"

namespace turl {
namespace rt {
namespace {

TEST(TaskGraphTest, EmptyGraphRuns) {
  TaskGraph graph;
  graph.Run(nullptr);  // No tasks, no pool: trivially fine.
}

TEST(TaskGraphTest, SingleTaskRuns) {
  ThreadPool pool(4);
  TaskGraph graph;
  int runs = 0;
  graph.AddTask([&] { ++runs; });
  graph.Run(&pool);
  EXPECT_EQ(runs, 1);
}

TEST(TaskGraphTest, SequentialModeRunsAscendingIdOrder) {
  // No edges at all: the min-id ready heap alone must yield 0, 1, ..., n-1.
  TaskGraph graph;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    graph.AddTask([&order, i] { order.push_back(i); });
  }
  graph.Run(nullptr);
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[size_t(i)], i);
}

TEST(TaskGraphTest, SequentialModeWithEdgesIsStillIdentityOrder) {
  // Ids assigned in topological order + min-id tie-break == identity, even
  // with a diamond in the middle.
  TaskGraph graph;
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    graph.AddTask([&order, i] { order.push_back(i); });
  }
  graph.AddEdge(0, 1);
  graph.AddEdge(0, 2);
  graph.AddEdge(1, 3);
  graph.AddEdge(2, 3);
  graph.AddEdge(3, 5);
  graph.Run(nullptr);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(TaskGraphTest, ParallelRunExecutesEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  TaskGraph graph;
  constexpr int kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  for (int i = 0; i < kN; ++i) {
    graph.AddTask([&hits, i] { hits[size_t(i)].fetch_add(1); });
  }
  // Random-ish forward edges.
  for (int i = 0; i < kN - 1; i += 3) graph.AddEdge(i, i + 1);
  for (int i = 0; i < kN - 7; i += 5) graph.AddEdge(i, i + 7);
  graph.Run(&pool);
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[size_t(i)].load(), 1);
}

TEST(TaskGraphTest, EdgesOrderConflictingTasks) {
  // A linear chain must execute in exact chain order on any thread count.
  ThreadPool pool(4);
  TaskGraph graph;
  std::vector<int> order;  // Unlocked on purpose: the chain IS the exclusion.
  constexpr int kN = 100;
  for (int i = 0; i < kN; ++i) {
    graph.AddTask([&order, i] { order.push_back(i); });
  }
  for (int i = 0; i + 1 < kN; ++i) graph.AddEdge(i, i + 1);
  graph.Run(&pool);
  ASSERT_EQ(order.size(), size_t(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(order[size_t(i)], i);
}

TEST(TaskGraphTest, DiamondRespectsDependencies) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    TaskGraph graph;
    std::mutex mu;
    std::vector<int> order;
    auto record = [&](int id) {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(id);
    };
    graph.AddTask([&] { record(0); });  // Root.
    graph.AddTask([&] { record(1); });  // Left branch.
    graph.AddTask([&] { record(2); });  // Right branch.
    graph.AddTask([&] { record(3); });  // Join.
    graph.AddEdge(0, 1);
    graph.AddEdge(0, 2);
    graph.AddEdge(1, 3);
    graph.AddEdge(2, 3);
    graph.Run(&pool);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), 0);
    EXPECT_EQ(order.back(), 3);
  }
}

TEST(TaskGraphTest, ChainedFloatAccumulationBitIdenticalAnyThreadCount) {
  // The executor's whole reason to exist: tasks accumulating into one shared
  // float buffer, ordered only by chain edges, must produce bit-identical
  // sums on 1 thread and 4. The addends are chosen to be order-sensitive in
  // float arithmetic, so any reorder would flip low bits.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    TaskGraph graph;
    auto acc = std::make_shared<float>(0.f);
    constexpr int kN = 300;
    int prev = -1;
    for (int i = 0; i < kN; ++i) {
      const float addend = (i % 2 == 0) ? 1e-7f * float(i + 1) : 3.1f;
      const int id = graph.AddTask([acc, addend] { *acc += addend; });
      if (prev >= 0) graph.AddEdge(prev, id);
      prev = id;
    }
    graph.Run(threads > 1 ? &pool : nullptr);
    return *acc;
  };
  const float seq = run(1);
  for (int rep = 0; rep < 20; ++rep) {
    const float par = run(4);
    ASSERT_EQ(std::memcmp(&seq, &par, sizeof(float)), 0);
  }
}

TEST(TaskGraphTest, DuplicateEdgesAreCountedWithMultiplicity) {
  ThreadPool pool(4);
  TaskGraph graph;
  std::vector<int> order;
  std::mutex mu;
  graph.AddTask([&] { std::lock_guard<std::mutex> l(mu); order.push_back(0); });
  graph.AddTask([&] { std::lock_guard<std::mutex> l(mu); order.push_back(1); });
  graph.AddEdge(0, 1);
  graph.AddEdge(0, 1);  // Duplicate must not leave task 1 waiting forever.
  graph.Run(&pool);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(TaskGraphTest, SequentialExceptionPropagatesImmediately) {
  TaskGraph graph;
  int ran_after = 0;
  graph.AddTask([] { throw std::runtime_error("seq boom"); });
  graph.AddTask([&] { ++ran_after; });
  graph.AddEdge(0, 1);
  EXPECT_THROW(graph.Run(nullptr), std::runtime_error);
  EXPECT_EQ(ran_after, 0);  // Successors of a failed task are abandoned.
}

TEST(TaskGraphTest, ParallelExceptionRethrownAndPoolSurvives) {
  ThreadPool pool(4);
  {
    TaskGraph graph;
    std::atomic<int> dependents_run{0};
    const int bad = graph.AddTask([] { throw std::runtime_error("par boom"); });
    const int succ = graph.AddTask([&] { dependents_run.fetch_add(1); });
    graph.AddEdge(bad, succ);
    EXPECT_THROW(graph.Run(&pool), std::runtime_error);
    EXPECT_EQ(dependents_run.load(), 0);
  }
  // The pool is fully usable afterwards: helper units exited cleanly.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 64, 1, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
  TaskGraph again;
  int runs = 0;
  again.AddTask([&] { ++runs; });
  again.Run(&pool);
  EXPECT_EQ(runs, 1);
}

TEST(TaskGraphTest, NestedRunFromWorkerExecutesInline) {
  ThreadPool pool(4);
  TaskGraph outer;
  std::atomic<int> inner_total{0};
  for (int t = 0; t < 8; ++t) {
    outer.AddTask([&pool, &inner_total] {
      // Building + running a graph from inside a pool task must not deadlock:
      // on a spawned worker it runs inline, on the caller thread it may fan
      // out again — either way the chain below orders every push_back.
      TaskGraph inner;
      std::vector<int> order;
      for (int i = 0; i < 10; ++i) {
        inner.AddTask([&order, i] { order.push_back(i); });
        if (i > 0) inner.AddEdge(i - 1, i);
      }
      inner.Run(&pool);
      if (order.size() == 10u) inner_total.fetch_add(1);
    });
  }
  outer.Run(&pool);
  EXPECT_EQ(inner_total.load(), 8);
}

}  // namespace
}  // namespace rt
}  // namespace turl
