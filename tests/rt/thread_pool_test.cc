#include "rt/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace turl {
namespace rt {
namespace {

TEST(ResolveThreadsTest, ExplicitRequestWins) {
  EXPECT_EQ(ResolveThreads(3), 3);
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_GE(ResolveThreads(0), 1);  // Environment / hardware fallback.
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(4);
  auto f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, /*grain=*/7,
                   [&](int64_t i) { hits[size_t(i)].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[size_t(i)].load(), 1);
}

TEST(ThreadPoolTest, ParallelForSingleThreadRunsInOrder) {
  ThreadPool pool(1);
  std::vector<int64_t> order;
  pool.ParallelFor(5, 25, 4, [&](int64_t i) { order.push_back(i); });
  std::vector<int64_t> expected(20);
  std::iota(expected.begin(), expected.end(), 5);
  EXPECT_EQ(order, expected);  // Inline path preserves sequential order.
}

TEST(ThreadPoolTest, ParallelForDeterministicResultAnyThreadCount) {
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<double> out(size_t(513));
    pool.ParallelFor(0, 513, 8,
                     [&](int64_t i) { out[size_t(i)] = double(i) * 1.5; });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ThreadPoolTest, ExceptionPropagatesAfterAllIndicesRun) {
  ThreadPool pool(4);
  constexpr int64_t kN = 256;
  std::atomic<int64_t> executed{0};
  EXPECT_THROW(pool.ParallelFor(0, kN, 1,
                                [&](int64_t i) {
                                  executed.fetch_add(1);
                                  if (i == 17) {
                                    throw std::runtime_error("index 17");
                                  }
                                }),
               std::runtime_error);
  // The contract drains every chunk before rethrowing.
  EXPECT_EQ(executed.load(), kN);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  constexpr int64_t kOuter = 32, kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(0, kOuter, 1, [&](int64_t o) {
    pool.ParallelFor(0, kInner, 1, [&](int64_t i) {
      hits[size_t(o * kInner + i)].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, StressManySmallLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 97, 3, [&](int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 97 * 96 / 2);
  }
}

TEST(ThreadPoolTest, ActiveCountsRunningTasks) {
  ThreadPool pool(2);  // One spawned worker (the caller is worker 0).
  EXPECT_EQ(pool.active(), 0);

  std::mutex mu;
  std::condition_variable cv;
  bool entered = false, release = false;
  auto pending = pool.Submit([&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      entered = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  // The task is pinned inside the worker: exactly one task active, and the
  // utilization gauge shows 1/2 of pool capacity busy.
  EXPECT_EQ(pool.active(), 1);
  EXPECT_DOUBLE_EQ(
      obs::MetricsRegistry::Get().GetGauge("rt.pool.utilization")->Value(),
      0.5);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pending.get();
  // active() drops as the worker leaves the task; the future resolves inside
  // the task, so give the bookkeeping a moment.
  for (int i = 0; i < 1000 && pool.active() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.active(), 0);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](int64_t) { ++calls; });
  pool.ParallelFor(9, 3, 1, [&](int64_t) { ++calls; });  // begin > end.
  pool.ParallelFor(-2, -2, 4, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, InlinePathPropagatesException) {
  // Single-thread pool takes the inline path; the exception must surface
  // exactly like the parallel path's deferred rethrow.
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 8, 1,
                                [&](int64_t i) {
                                  if (i == 3) throw std::runtime_error("i3");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForPropagatesExceptionFromWorker) {
  ThreadPool pool(4);
  std::atomic<int> outer_failures{0};
  // The nested call runs inline on a worker; its exception crosses the inner
  // (inline) boundary, is captured by the outer chunk runner, and rethrows
  // from the outer ParallelFor on the caller.
  EXPECT_THROW(pool.ParallelFor(0, 16, 1,
                                [&](int64_t o) {
                                  pool.ParallelFor(0, 4, 1, [&](int64_t i) {
                                    if (o == 7 && i == 2) {
                                      outer_failures.fetch_add(1);
                                      throw std::runtime_error("nested");
                                    }
                                  });
                                }),
               std::runtime_error);
  EXPECT_EQ(outer_failures.load(), 1);
}

TEST(ThreadPoolTest, EnqueuedTaskExceptionDoesNotKillPool) {
  obs::Counter* exceptions =
      obs::MetricsRegistry::Get().GetCounter("rt.pool.task_exceptions");
  const int64_t before = exceptions->Value();
  ThreadPool pool(2);
  // Fire-and-forget task that throws: without the WorkerLoop containment
  // this std::terminates the process and leaks the active count.
  pool.Enqueue([] { throw std::runtime_error("fire and forget"); });
  // The pool must still process work afterwards...
  auto f = pool.Submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 100, 1, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
  // ...the exception must be counted...
  for (int i = 0; i < 1000 && exceptions->Value() == before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(exceptions->Value(), before + 1);
  // ...and the active count / utilization gauge must unwind to zero (the
  // gauge write trails the count decrement by an instant, so poll both).
  obs::Gauge* gauge =
      obs::MetricsRegistry::Get().GetGauge("rt.pool.utilization");
  for (int i = 0;
       i < 1000 && (pool.active() != 0 || gauge->Value() != 0.0); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.active(), 0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
}

TEST(ThreadPoolTest, WorkerIndexInRangeAndStable) {
  ThreadPool pool(4);
  EXPECT_FALSE(pool.InWorker());
  EXPECT_EQ(pool.WorkerIndex(), 0);  // Caller acts as worker 0.
  std::atomic<bool> bad{false};
  pool.ParallelFor(0, 1000, 1, [&](int64_t) {
    const int w = pool.WorkerIndex();
    if (w < 0 || w >= pool.num_threads()) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
}

}  // namespace
}  // namespace rt
}  // namespace turl
