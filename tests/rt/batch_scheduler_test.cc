// BatchScheduler policy tests: size-cap flush, budget-cap flush, age-based
// Pump() with an injected fake clock, submission-order callbacks, and
// result equivalence with per-request session.Encode.

#include "rt/batch_scheduler.h"

#include <vector>

#include "core/context.h"
#include "core/model.h"
#include "core/table_encoding.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/server/handlers.h"
#include "rt/inference_session.h"

namespace turl {
namespace rt {
namespace {

// The deprecated 2-arg Submit(table, tensor-callback) adapter is gone (it
// was promised for exactly one release); Submit(rt::Request) is the only
// submission entry point.
template <typename S>
concept HasDeprecatedTwoArgSubmit =
    requires(S& s, const core::EncodedTable* t,
             std::function<void(nn::Tensor)> cb) { s.Submit(t, cb); };
static_assert(!HasDeprecatedTwoArgSubmit<BatchScheduler>);

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 150;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

core::TurlConfig SmallConfig() {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

const core::TurlModel& Model() {
  static core::TurlModel* model = new core::TurlModel(
      SmallConfig(), Ctx().vocab.size(), Ctx().entity_vocab.size(),
      /*seed=*/11);
  return *model;
}

const InferenceSession& Session() {
  static InferenceSession* session =
      new InferenceSession(Model(), SessionOptions{.num_threads = 1});
  return *session;
}

/// Builds the minimal Request the migrated tests submit: a table plus a
/// callback that only cares about the hidden tensor.
Request Req(const core::EncodedTable* table,
            std::function<void(nn::Tensor)> done) {
  Request request;
  request.table = table;
  request.done = [cb = std::move(done)](Response response) {
    cb(std::move(response.hidden));
  };
  return request;
}

const std::vector<core::EncodedTable>& Tables() {
  static std::vector<core::EncodedTable>* tables = [] {
    auto* out = new std::vector<core::EncodedTable>;
    const text::WordPieceTokenizer tokenizer = Ctx().MakeTokenizer();
    for (size_t idx : Ctx().corpus.valid) {
      core::EncodedTable t = core::EncodeTable(
          Ctx().corpus.tables[idx], tokenizer, Ctx().entity_vocab);
      if (t.total() > 0) out->push_back(std::move(t));
      if (out->size() >= 8) break;
    }
    return out;
  }();
  return *tables;
}

TEST(BatchSchedulerTest, SizeCapFlushes) {
  BatchSchedulerOptions opts;
  opts.max_batch_tables = 2;
  opts.max_batch_budget = 1 << 30;  // Effectively unlimited.
  BatchScheduler scheduler(&Session(), opts);
  int done = 0;
  scheduler.Submit(Req(&Tables()[0], [&](nn::Tensor) { ++done; }));
  EXPECT_EQ(scheduler.pending(), 1u);
  EXPECT_EQ(done, 0);
  scheduler.Submit(Req(&Tables()[1], [&](nn::Tensor) { ++done; }));
  EXPECT_EQ(scheduler.pending(), 0u) << "size cap must flush eagerly";
  EXPECT_EQ(done, 2);
}

TEST(BatchSchedulerTest, BudgetCapFlushesBeforeAdmitting) {
  BatchSchedulerOptions opts;
  opts.max_batch_tables = 100;
  // Any single table fills the budget, so each new submit must flush the
  // previously queued request first.
  opts.max_batch_budget = 1;
  BatchScheduler scheduler(&Session(), opts);
  std::vector<int> order;
  scheduler.Submit(Req(&Tables()[0], [&](nn::Tensor) { order.push_back(0); }));
  EXPECT_EQ(scheduler.pending(), 1u)
      << "an oversized request still runs, alone in its own batch";
  scheduler.Submit(Req(&Tables()[1], [&](nn::Tensor) { order.push_back(1); }));
  EXPECT_EQ(order, std::vector<int>({0}));
  EXPECT_EQ(scheduler.pending(), 1u);
  scheduler.Flush();
  EXPECT_EQ(order, std::vector<int>({0, 1}));
}

TEST(BatchSchedulerTest, PumpFlushesOnAgeWithFakeClock) {
  double now_ms = 1000.0;
  BatchSchedulerOptions opts;
  opts.max_batch_tables = 100;
  opts.max_batch_budget = 1 << 30;
  opts.max_age_ms = 20.0;
  BatchScheduler scheduler(&Session(), opts, [&now_ms] { return now_ms; });
  int done = 0;
  scheduler.Submit(Req(&Tables()[0], [&](nn::Tensor) { ++done; }));

  now_ms += 19.0;  // Not old enough yet.
  EXPECT_FALSE(scheduler.Pump());
  EXPECT_EQ(done, 0);
  EXPECT_EQ(scheduler.pending(), 1u);

  now_ms += 2.0;  // Oldest request is now 21ms old.
  EXPECT_TRUE(scheduler.Pump());
  EXPECT_EQ(done, 1);
  EXPECT_EQ(scheduler.pending(), 0u);

  EXPECT_FALSE(scheduler.Pump()) << "empty queue never flushes";
}

TEST(BatchSchedulerTest, PumpAgeMeasuredFromOldestRequest) {
  double now_ms = 0.0;
  BatchSchedulerOptions opts;
  opts.max_batch_tables = 100;
  opts.max_batch_budget = 1 << 30;
  opts.max_age_ms = 10.0;
  BatchScheduler scheduler(&Session(), opts, [&now_ms] { return now_ms; });
  int done = 0;
  scheduler.Submit(Req(&Tables()[0], [&](nn::Tensor) { ++done; }));
  now_ms = 8.0;
  scheduler.Submit(Req(&Tables()[1], [&](nn::Tensor) { ++done; }));
  now_ms = 11.0;  // First request is 11ms old, second only 3ms.
  EXPECT_TRUE(scheduler.Pump());
  EXPECT_EQ(done, 2) << "a flush runs the whole queue, not just old entries";
}

TEST(BatchSchedulerTest, CallbacksRunInSubmissionOrderWithExactResults) {
  BatchScheduler scheduler(&Session());
  const auto& tables = Tables();
  std::vector<size_t> order;
  std::vector<nn::Tensor> results(tables.size());
  for (size_t i = 0; i < tables.size(); ++i) {
    scheduler.Submit(Req(&tables[i], [&, i](nn::Tensor h) {
      order.push_back(i);
      results[i] = h;
    }));
  }
  scheduler.Flush();
  std::vector<size_t> expected(tables.size());
  for (size_t i = 0; i < expected.size(); ++i) expected[i] = i;
  EXPECT_EQ(order, expected);
  for (size_t i = 0; i < tables.size(); ++i) {
    EXPECT_EQ(results[i].ToVector(), Session().Encode(tables[i]).ToVector())
        << "table " << i;
  }
}

TEST(BatchSchedulerTest, FlushFeedsQueueWaitHistogram) {
  obs::Histogram* wait =
      obs::MetricsRegistry::Get().GetHistogram("rt.scheduler.queue_wait_ms");
  const int64_t before = wait->count();
  BatchScheduler scheduler(&Session());
  int done = 0;
  scheduler.Submit(Req(&Tables()[0], [&](nn::Tensor) { ++done; }));
  scheduler.Submit(Req(&Tables()[1], [&](nn::Tensor) { ++done; }));
  EXPECT_EQ(wait->count(), before);  // Nothing observed while queued.
  scheduler.Flush();
  EXPECT_EQ(done, 2);
  // One observation per drained request, each a non-negative wait.
  EXPECT_EQ(wait->count(), before + 2);
  EXPECT_GE(wait->max(), 0.0);
}

TEST(BatchSchedulerTest, RegistersSchedulerReadinessProbe) {
  const size_t before = obs::server::HealthRegistry::Get().size();
  {
    BatchScheduler scheduler(&Session());
    EXPECT_EQ(obs::server::HealthRegistry::Get().size(), before + 1);
    bool found = false;
    for (const auto& r : obs::server::HealthRegistry::Get().RunAll()) {
      if (r.name == "rt.scheduler") {
        found = true;
        EXPECT_TRUE(r.ok);
        EXPECT_NE(r.detail.find("accepting"), std::string::npos);
      }
    }
    EXPECT_TRUE(found);
  }
  // Probe unregisters with the scheduler.
  EXPECT_EQ(obs::server::HealthRegistry::Get().size(), before);
}

TEST(BatchSchedulerTest, ExpiredDeadlineCompletesWithoutEncoding) {
  double now_ms = 1000.0;
  BatchSchedulerOptions opts;
  opts.max_batch_tables = 100;
  opts.max_batch_budget = 1 << 30;
  BatchScheduler scheduler(&Session(), opts, [&now_ms] { return now_ms; });
  obs::Counter* missed =
      obs::MetricsRegistry::Get().GetCounter("rt.scheduler.deadline_missed");
  const int64_t before = missed->Value();

  std::vector<Response> responses;
  auto submit = [&](size_t table, uint64_t id, double deadline) {
    Request request;
    request.table = &Tables()[table];
    request.request_id = id;
    request.task = TaskKind::kCellFilling;
    request.deadline_ms = deadline;
    request.done = [&](Response r) { responses.push_back(std::move(r)); };
    scheduler.Submit(std::move(request));
  };
  submit(0, 7, /*deadline=*/now_ms + 5.0);   // Will expire before the flush.
  submit(1, 8, /*deadline=*/now_ms + 500.0); // Still live at the flush.
  now_ms += 100.0;
  scheduler.Flush();

  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].request_id, 7u);
  EXPECT_EQ(responses[0].status, ResponseStatus::kDeadlineExceeded);
  EXPECT_FALSE(responses[0].hidden.defined())
      << "expired requests must not be encoded";
  EXPECT_EQ(responses[1].request_id, 8u);
  EXPECT_EQ(responses[1].status, ResponseStatus::kOk);
  EXPECT_EQ(responses[1].task, TaskKind::kCellFilling);
  EXPECT_EQ(responses[1].hidden.ToVector(),
            Session().Encode(Tables()[1]).ToVector());
  EXPECT_GE(responses[1].queue_wait_ms, 0.0);
  EXPECT_EQ(missed->Value(), before + 1);
}

TEST(BatchSchedulerTest, NoDeadlineNeverExpires) {
  double now_ms = 0.0;
  BatchScheduler scheduler(&Session(), BatchSchedulerOptions(),
                           [&now_ms] { return now_ms; });
  ResponseStatus status = ResponseStatus::kOverloaded;
  Request request;
  request.table = &Tables()[0];
  request.done = [&](Response r) { status = r.status; };
  scheduler.Submit(std::move(request));
  now_ms += 1e9;  // deadline_ms == 0 means no deadline, however late.
  scheduler.Flush();
  EXPECT_EQ(status, ResponseStatus::kOk);
}

TEST(BatchSchedulerTest, DestructorFlushesPendingRequests) {
  int done = 0;
  {
    BatchScheduler scheduler(&Session());
    scheduler.Submit(Req(&Tables()[0], [&](nn::Tensor) { ++done; }));
    EXPECT_EQ(done, 0);
  }
  EXPECT_EQ(done, 1);
}

}  // namespace
}  // namespace rt
}  // namespace turl
