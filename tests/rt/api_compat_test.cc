// Compile-and-call coverage for the deprecated pre-TaskHead spellings
// (RowPopulator/CellFiller::Score, SchemaAugmenter::Rank). These forwarders
// exist for exactly one release; this test pins their semantics — identical
// to the unified API — until they are deleted.

#include <memory>
#include <vector>

#include "baselines/cell_filling.h"
#include "baselines/row_population.h"
#include "gtest/gtest.h"
#include "tasks/cell_filling.h"
#include "tasks/row_population.h"
#include "tasks/schema_augmentation.h"

// The whole point of this file is to call deprecated symbols.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace turl {
namespace tasks {
namespace {

const core::TurlContext& Ctx() {
  static core::TurlContext* ctx = [] {
    core::ContextConfig config;
    config.corpus.num_tables = 150;
    config.seed = 42;
    return new core::TurlContext(core::BuildContext(config));
  }();
  return *ctx;
}

core::TurlConfig SmallConfig() {
  core::TurlConfig config;
  config.num_layers = 1;
  config.d_model = 32;
  config.d_intermediate = 64;
  config.num_heads = 2;
  return config;
}

std::unique_ptr<core::TurlModel> FreshModel() {
  return std::make_unique<core::TurlModel>(
      SmallConfig(), Ctx().vocab.size(), Ctx().entity_vocab.size(),
      /*seed=*/11);
}

TEST(ApiCompatTest, RowPopulatorScoreForwardsToScores) {
  baselines::RowPopCandidateGenerator gen(Ctx().corpus, Ctx().corpus.train);
  auto instances =
      BuildRowPopInstances(Ctx(), gen, Ctx().corpus.valid, 1, 4, 5);
  ASSERT_FALSE(instances.empty());
  auto model = FreshModel();
  TurlRowPopulator populator(model.get(), &Ctx());
  for (const auto& inst : instances) {
    std::vector<double> deprecated_scores = populator.Score(inst);
    std::vector<float> scores = populator.Scores(inst);
    ASSERT_EQ(deprecated_scores.size(), scores.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(deprecated_scores[i], double(scores[i]));
    }
  }
}

TEST(ApiCompatTest, CellFillerScoreForwardsToScores) {
  baselines::CellFillingIndex index(Ctx().corpus, Ctx().corpus.train);
  auto instances =
      BuildCellFillInstances(Ctx(), index, Ctx().corpus.valid, 3, 5);
  ASSERT_FALSE(instances.empty());
  auto model = FreshModel();
  TurlCellFiller filler(model.get(), &Ctx());
  for (const auto& inst : instances) {
    std::vector<double> deprecated_scores = filler.Score(inst);
    std::vector<float> scores = filler.Scores(inst);
    ASSERT_EQ(deprecated_scores.size(), scores.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(deprecated_scores[i], double(scores[i]));
    }
  }
}

TEST(ApiCompatTest, SchemaAugmenterRankForwardsToPredict) {
  HeaderVocab vocab = BuildHeaderVocab(Ctx());
  auto instances =
      BuildSchemaAugInstances(Ctx(), vocab, Ctx().corpus.valid, 1, 5);
  ASSERT_FALSE(instances.empty());
  auto model = FreshModel();
  TurlSchemaAugmenter augmenter(model.get(), &Ctx(), &vocab, 31);
  for (const auto& inst : instances) {
    EXPECT_EQ(augmenter.Rank(inst), augmenter.Predict(inst));
  }
}

}  // namespace
}  // namespace tasks
}  // namespace turl
