#ifndef TURL_CORE_MODEL_H_
#define TURL_CORE_MODEL_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/table_encoding.h"
#include "nn/kernels/quant.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "util/rng.h"

namespace turl {
namespace core {

/// Which implementation a scoring call (MlmLogits / MerLogits) takes.
///
/// kTrain builds the fp32 MatMul on the autograd tape — always safe, the
/// default, and required whenever gradients flow through the logits.
/// kServe declares the call inference-only: when TURL_QUANT_SCORING=1 the
/// vocabulary/candidate dot products run against a cached per-row int8
/// quantization of the embedding table and the result is a leaf tensor with
/// no tape behind it. With the knob off (default), kServe is identical to
/// kTrain, so callers can pass it unconditionally on inference paths.
enum class Scoring {
  kTrain,
  kServe,
};

/// The TURL model (Figure 2): an embedding layer fusing table components
/// (Eqns. 1-3), a structure-aware Transformer encoder with the visibility
/// matrix as attention mask (Eqn. 4), and projection heads for the MLM
/// (Eqn. 5) and MER (Eqn. 6) objectives. The same instance is fine-tuned by
/// every downstream task; tasks add their own heads on top of Encode().
class TurlModel {
 public:
  /// Builds a randomly initialized model. `word_vocab_size` counts WordPiece
  /// tokens, `entity_vocab_size` counts model entity ids (specials
  /// included). `seed` controls initialization.
  TurlModel(const TurlConfig& config, int word_vocab_size,
            int entity_vocab_size, uint64_t seed);

  TurlModel(const TurlModel&) = delete;
  TurlModel& operator=(const TurlModel&) = delete;

  /// Runs the embedding layer + encoder; returns contextualized
  /// representations [input.total(), d_model]. Token rows come first, then
  /// entity rows (row of entity i = input.num_tokens() + i).
  ///
  /// Thread-safety / Rng contract: Encode never mutates the model — all
  /// randomness (dropout) is drawn from the caller-provided `rng`, so
  /// concurrent Encode calls on one shared const model are safe as long as
  /// each call gets its own Rng. `rng` may be null when `training` is false
  /// (inference consumes no randomness); training with a null rng is a
  /// checked fatal error.
  nn::Tensor Encode(const EncodedTable& input, bool training,
                    Rng* rng = nullptr) const;

  /// Hidden-state row of entity element `entity_index`.
  static int EntityHiddenRow(const EncodedTable& input, int entity_index) {
    return input.num_tokens() + entity_index;
  }

  /// MLM head: logits over the full word vocabulary for the given hidden
  /// rows -> [rows.size(), word_vocab].  P(w) ∝ exp(LINEAR(h_t) · w).
  nn::Tensor MlmLogits(const nn::Tensor& hidden, const std::vector<int>& rows,
                       Scoring scoring = Scoring::kTrain) const;

  /// MER head: logits over `candidates` (model entity ids) for the given
  /// hidden rows -> [rows.size(), candidates.size()].
  /// P(e) ∝ exp(LINEAR(h_e) · e^e), restricted to the candidate set.
  nn::Tensor MerLogits(const nn::Tensor& hidden, const std::vector<int>& rows,
                       const std::vector<int>& candidates,
                       Scoring scoring = Scoring::kTrain) const;

  /// Drops the cached int8 packs of the word/entity embedding tables. Must
  /// be called whenever the underlying weights change outside the model's
  /// own control — after loading a checkpoint, after a training phase — or
  /// kServe scoring would keep scoring against stale weights.
  void InvalidateQuantizedScoring() const;

  /// The MER projection LINEAR(h_e) alone -> [rows.size(), d_model]; tasks
  /// that score against non-entity representations (entity linking against
  /// KB descriptions) reuse it.
  nn::Tensor MerProject(const nn::Tensor& hidden,
                        const std::vector<int>& rows) const;

  const TurlConfig& config() const { return config_; }
  nn::ParamStore* params() { return &params_; }
  const nn::ParamStore& params() const { return params_; }

  const nn::Embedding& word_embedding() const { return *word_emb_; }
  const nn::Embedding& entity_embedding() const { return *entity_emb_; }
  int word_vocab_size() const { return word_vocab_size_; }
  int entity_vocab_size() const { return entity_vocab_size_; }

 private:
  TurlConfig config_;
  int word_vocab_size_;
  int entity_vocab_size_;
  nn::ParamStore params_;
  std::unique_ptr<nn::Embedding> word_emb_;
  std::unique_ptr<nn::Embedding> position_emb_;
  std::unique_ptr<nn::Embedding> segment_emb_;   ///< Token type embedding t.
  std::unique_ptr<nn::Embedding> role_emb_;      ///< Entity type embedding t_e.
  std::unique_ptr<nn::Embedding> entity_emb_;    ///< Entity embeddings e^e.
  std::unique_ptr<nn::Linear> entity_fuse_;      ///< LINEAR([e^e; e^m]).
  std::unique_ptr<nn::LayerNorm> emb_norm_;
  std::unique_ptr<nn::TransformerEncoder> encoder_;
  std::unique_ptr<nn::Linear> mlm_head_;
  std::unique_ptr<nn::Linear> mer_head_;
  /// Lazily built int8 packs of the word/entity embedding tables for
  /// Scoring::kServe; mutable because packing is a pure cache of const
  /// weights (invalidated explicitly when those weights change).
  mutable nn::kernels::QuantCache word_quant_;
  mutable nn::kernels::QuantCache entity_quant_;
};

}  // namespace core
}  // namespace turl

#endif  // TURL_CORE_MODEL_H_
