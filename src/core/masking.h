#ifndef TURL_CORE_MASKING_H_
#define TURL_CORE_MASKING_H_

#include <vector>

#include "core/config.h"
#include "core/table_encoding.h"
#include "util/rng.h"

namespace turl {
namespace core {

/// One masked pre-training example: the corrupted input plus per-position
/// recovery targets.
struct PretrainInstance {
  EncodedTable input;
  /// Original WordPiece id for each token position selected by MLM; -1 for
  /// positions not selected.
  std::vector<int> mlm_targets;
  /// Original model entity id for each entity position selected by MER; -1
  /// for positions not selected.
  std::vector<int> mer_targets;
};

/// Applies the §4.4 masking mechanism to a clean encoded table:
///
/// MLM — `config.mlm_ratio` of token positions are selected; of those 80%
/// become [MASK], 10% a random token, 10% stay unchanged.
///
/// MER — `config.mer_ratio` of maskable entity cells (linked, in-vocabulary,
/// non-topic) are selected; of those 10% keep both e^m and e^e, 63% mask
/// both (mention replaced by a single [MASK] token, entity id by
/// [MASK_ENT]), and 27% keep the mention and mask only the entity id (10% of
/// which get a random entity id instead, injecting noise).
PretrainInstance MakePretrainInstance(const EncodedTable& clean,
                                      const TurlConfig& config,
                                      int word_vocab_size,
                                      int entity_vocab_size, Rng* rng);

/// Masks a single entity cell in place, as done at inference time for cell
/// filling / object-entity prediction: the entity id becomes [MASK_ENT] and,
/// when `mask_mention` is set, the mention becomes a single [MASK] token.
void MaskEntityCell(EncodedTable* table, int entity_index, bool mask_mention);

/// Entity positions eligible for MER in `table` (linked, in-vocabulary,
/// non-topic cells).
std::vector<int> MaskableEntityPositions(const EncodedTable& table);

}  // namespace core
}  // namespace turl

#endif  // TURL_CORE_MASKING_H_
