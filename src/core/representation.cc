#include "core/representation.h"

#include "util/math_util.h"

namespace turl {
namespace core {

namespace {

std::vector<float> RowOf(const nn::Tensor& hidden, int row) {
  const int64_t d = hidden.dim(1);
  const float* base = hidden.data() + int64_t(row) * d;
  return std::vector<float>(base, base + d);
}

std::vector<float> MeanOfRows(const nn::Tensor& hidden,
                              const std::vector<int>& rows, int64_t d) {
  std::vector<float> out(static_cast<size_t>(d), 0.f);
  if (rows.empty()) return out;
  for (int r : rows) {
    const float* base = hidden.data() + int64_t(r) * d;
    for (int64_t j = 0; j < d; ++j) out[size_t(j)] += base[j];
  }
  for (float& v : out) v /= float(rows.size());
  return out;
}

}  // namespace

TableRepresentation ExtractRepresentation(const TurlModel& model,
                                          const TurlContext& ctx,
                                          const data::Table& table,
                                          const EncodeOptions& options) {
  const text::WordPieceTokenizer tokenizer = ctx.MakeTokenizer();
  EncodedTable encoded =
      EncodeTable(table, tokenizer, ctx.entity_vocab, options);

  TableRepresentation rep;
  rep.d_model = model.config().d_model;
  if (encoded.total() == 0) return rep;

  Rng rng(0);
  nn::Tensor hidden = model.Encode(encoded, /*training=*/false, &rng);

  for (int i = 0; i < encoded.num_tokens(); ++i) {
    rep.token_vectors.push_back(RowOf(hidden, i));
    rep.tokens.push_back(ctx.vocab.Token(encoded.token_ids[size_t(i)]));
  }
  for (int i = 0; i < encoded.num_entities(); ++i) {
    rep.entity_vectors.push_back(
        RowOf(hidden, TurlModel::EntityHiddenRow(encoded, i)));
    rep.entity_rows.push_back(encoded.entity_row[size_t(i)]);
    rep.entity_columns.push_back(encoded.entity_column[size_t(i)]);
    rep.entity_kb_ids.push_back(encoded.entity_kb_ids[size_t(i)]);
  }

  // Eqn. 9 aggregates per table column.
  for (int c = 0; c < table.num_columns(); ++c) {
    std::vector<int> header_rows, entity_rows;
    for (int i = 0; i < encoded.num_tokens(); ++i) {
      if (encoded.token_segment[size_t(i)] == kSegmentHeader &&
          encoded.token_column[size_t(i)] == c) {
        header_rows.push_back(i);
      }
    }
    for (int i = 0; i < encoded.num_entities(); ++i) {
      if (encoded.entity_column[size_t(i)] == c) {
        entity_rows.push_back(TurlModel::EntityHiddenRow(encoded, i));
      }
    }
    std::vector<float> header_mean =
        MeanOfRows(hidden, header_rows, rep.d_model);
    std::vector<float> entity_mean =
        MeanOfRows(hidden, entity_rows, rep.d_model);
    header_mean.insert(header_mean.end(), entity_mean.begin(),
                       entity_mean.end());
    rep.column_vectors.push_back(std::move(header_mean));
  }
  return rep;
}

float RepresentationSimilarity(const std::vector<float>& a,
                               const std::vector<float>& b) {
  if (a.empty() || b.empty() || a.size() != b.size()) return 0.f;
  return CosineSimilarity(a, b);
}

std::vector<float> EntityVectorAt(const TableRepresentation& rep, int row,
                                  int column) {
  for (size_t i = 0; i < rep.entity_vectors.size(); ++i) {
    if (rep.entity_rows[i] == row && rep.entity_columns[i] == column) {
      return rep.entity_vectors[i];
    }
  }
  return {};
}

}  // namespace core
}  // namespace turl
