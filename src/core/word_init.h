#ifndef TURL_CORE_WORD_INIT_H_
#define TURL_CORE_WORD_INIT_H_

#include "baselines/word2vec.h"
#include "core/context.h"
#include "core/model.h"

namespace turl {
namespace core {

/// Pre-initializes a TurlModel's word embeddings from Word2Vec trained on
/// the corpus text — this repository's stand-in for the paper's TinyBERT
/// initialization (§4.4 "initialize ... word embeddings and position
/// embeddings with TinyBERT"; see DESIGN.md substitutions). Entity
/// embeddings are then re-initialized as the paper prescribes: "entity
/// embeddings are initialized using averaged word embeddings in entity
/// names".
///
/// Only whole-word vocabulary tokens found in the Word2Vec vocabulary are
/// replaced (subword pieces keep their random init). Returns the number of
/// word rows replaced.
int InitializeFromWord2Vec(TurlModel* model, const TurlContext& ctx,
                           const baselines::Word2VecConfig& config,
                           Rng* rng);

/// Trains the underlying Word2Vec over the corpus "sentences" (caption +
/// headers + cell mentions per table), exposed for tests and analysis.
baselines::Word2Vec TrainCorpusWord2Vec(const TurlContext& ctx,
                                        const baselines::Word2VecConfig& config,
                                        Rng* rng);

}  // namespace core
}  // namespace turl

#endif  // TURL_CORE_WORD_INIT_H_
