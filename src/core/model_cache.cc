#include "core/model_cache.h"

#include <cstdlib>

#include "ckpt/checkpoint.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace turl {
namespace core {

std::string DefaultCacheDir() {
  const char* env = std::getenv("TURL_CACHE");
  if (env != nullptr && env[0] != '\0') return env;
  return "turl_cache";
}

PretrainResult GetOrTrainModel(TurlModel* model, const TurlContext& ctx,
                               const Pretrainer::Options& options,
                               const std::string& cache_dir,
                               const std::string& suffix) {
  TURL_CHECK_OK(MakeDirs(cache_dir));
  const std::string tag = model->config().CacheTag() + suffix;
  const std::string path = cache_dir + "/" + tag + ".ckpt";
  if (FileExists(path)) {
    // ckpt::LoadModel stages and validates the whole file (v2 or legacy v1)
    // before committing, so a corrupt cache entry leaves the freshly
    // initialized parameters intact and we just re-train.
    const Status s = ckpt::LoadModel(model->params(), path, tag);
    if (s.ok()) {
      model->InvalidateQuantizedScoring();
      TURL_LOG(Info) << "loaded pre-trained checkpoint " << path;
      return PretrainResult{};
    }
    TURL_LOG(Warning) << "stale checkpoint " << path << " (" << s.ToString()
                      << "); re-training";
  }
  Pretrainer pretrainer(model, &ctx);
  PretrainResult result = pretrainer.Train(options);
  model->InvalidateQuantizedScoring();
  TURL_LOG(Info) << "pre-trained " << result.steps << " steps, object-ACC "
                 << result.final_accuracy;
  TURL_CHECK_OK(ckpt::SaveModel(*model->params(), path, tag));
  return result;
}

}  // namespace core
}  // namespace turl
