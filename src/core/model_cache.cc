#include "core/model_cache.h"

#include <cstdlib>

#include "nn/checkpoint.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace turl {
namespace core {

std::string DefaultCacheDir() {
  const char* env = std::getenv("TURL_CACHE");
  if (env != nullptr && env[0] != '\0') return env;
  return "turl_cache";
}

PretrainResult GetOrTrainModel(TurlModel* model, const TurlContext& ctx,
                               const Pretrainer::Options& options,
                               const std::string& cache_dir,
                               const std::string& suffix) {
  TURL_CHECK_OK(MakeDirs(cache_dir));
  const std::string path =
      cache_dir + "/" + model->config().CacheTag() + suffix + ".ckpt";
  if (FileExists(path)) {
    const Status s = nn::LoadCheckpoint(model->params(), path);
    if (s.ok()) {
      TURL_LOG(Info) << "loaded pre-trained checkpoint " << path;
      return PretrainResult{};
    }
    TURL_LOG(Warning) << "stale checkpoint " << path << " (" << s.ToString()
                      << "); re-training";
  }
  Pretrainer pretrainer(model, &ctx);
  PretrainResult result = pretrainer.Train(options);
  TURL_LOG(Info) << "pre-trained " << result.steps << " steps, object-ACC "
                 << result.final_accuracy;
  TURL_CHECK_OK(nn::SaveCheckpoint(*model->params(), path));
  return result;
}

}  // namespace core
}  // namespace turl
