#ifndef TURL_CORE_CONFIG_H_
#define TURL_CORE_CONFIG_H_

#include <cstdint>
#include <string>

namespace turl {
namespace core {

/// Hyperparameters of the TURL model and its pre-training, mirroring §4.4.
/// Paper values: N=4, d_model=312, d_intermediate=1200, k=12, LR 1e-4,
/// MLM ratio 0.2, MER ratio 0.6, 80 epochs. The defaults here are the
/// single-CPU-core repro scale; benches print the configuration they used.
struct TurlConfig {
  int num_layers = 2;           ///< N stacked Transformer blocks.
  int64_t d_model = 64;         ///< Hidden width of embeddings and blocks.
  int64_t d_intermediate = 128; ///< Feed-forward inner width.
  int num_heads = 4;            ///< Self-attention heads k.

  float dropout = 0.1f;
  int max_position = 64;  ///< Positional-embedding table size per segment.

  /// Masking ratios (§4.4): fraction of token positions selected for MLM and
  /// fraction of entity cells selected for MER.
  float mlm_ratio = 0.2f;
  float mer_ratio = 0.6f;

  /// The structure-aware visibility matrix (§4.3); false = the conventional
  /// fully-visible Transformer (Figure 7a ablation).
  bool use_visibility_matrix = true;

  /// Optimization (Adam with linearly decaying LR).
  float learning_rate = 1e-3f;
  float grad_clip = 1.0f;
  int pretrain_epochs = 24;

  /// MER candidate-set construction (§4.4): in-table entities plus
  /// co-occurring entities plus random negatives, capped.
  int mer_max_candidates = 160;
  int mer_min_random_negatives = 16;

  /// Short tag identifying this configuration in checkpoint cache paths.
  std::string CacheTag() const {
    return "L" + std::to_string(num_layers) + "_d" + std::to_string(d_model) +
           "_h" + std::to_string(num_heads) + "_mer" +
           std::to_string(int(mer_ratio * 100)) +
           (use_visibility_matrix ? "_vis" : "_novis") + "_e" +
           std::to_string(pretrain_epochs);
  }
};

}  // namespace core
}  // namespace turl

#endif  // TURL_CORE_CONFIG_H_
