#include "core/word_init.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"

namespace turl {
namespace core {

baselines::Word2Vec TrainCorpusWord2Vec(const TurlContext& ctx,
                                        const baselines::Word2VecConfig& config,
                                        Rng* rng) {
  std::vector<std::vector<std::string>> sentences;
  sentences.reserve(ctx.corpus.train.size());
  for (size_t idx : ctx.corpus.train) {
    const data::Table& t = ctx.corpus.tables[idx];
    std::vector<std::string> sentence = text::BasicTokenize(t.caption);
    for (const data::Column& col : t.columns) {
      for (const std::string& w : text::BasicTokenize(col.header)) {
        sentence.push_back(w);
      }
      for (const data::EntityCell& cell : col.cells) {
        for (const std::string& w : text::BasicTokenize(cell.mention)) {
          sentence.push_back(w);
        }
      }
    }
    if (sentence.size() >= 2) sentences.push_back(std::move(sentence));
  }
  baselines::Word2Vec w2v;
  w2v.Train(sentences, config, rng);
  return w2v;
}

int InitializeFromWord2Vec(TurlModel* model, const TurlContext& ctx,
                           const baselines::Word2VecConfig& config,
                           Rng* rng) {
  TURL_CHECK(model != nullptr);
  baselines::Word2VecConfig w2v_config = config;
  // The projection must match the model width so rows copy over directly.
  w2v_config.dim = static_cast<int>(model->config().d_model);
  baselines::Word2Vec w2v = TrainCorpusWord2Vec(ctx, w2v_config, rng);

  nn::Tensor word_weight = model->params()->Get("emb.word.weight");
  const int64_t d = model->config().d_model;
  int replaced = 0;
  for (int id = 0; id < ctx.vocab.size(); ++id) {
    const std::string& token = ctx.vocab.Token(id);
    if (token.size() >= 2 && token[0] == '#' && token[1] == '#') continue;
    if (token.size() >= 1 && token[0] == '[') continue;  // Specials.
    std::vector<float> v = w2v.Vector(token);
    if (v.empty()) continue;
    // Rescale to the embedding init scale (N(0, 0.02)) so pre-initialized
    // rows do not dominate the LayerNorm statistics.
    float norm = 0.f;
    for (float x : v) norm += x * x;
    norm = std::sqrt(norm / float(d));
    const float target = 0.02f;
    if (norm > 1e-8f) {
      for (float& x : v) x *= target / norm;
    }
    std::memcpy(word_weight.data() + int64_t(id) * d, v.data(),
                sizeof(float) * size_t(d));
    ++replaced;
  }

  // Paper §4.4: entity embeddings initialized with the averaged word
  // embeddings of the entity's name.
  const text::WordPieceTokenizer tokenizer = ctx.MakeTokenizer();
  nn::Tensor entity_weight = model->params()->Get("emb.entity.weight");
  for (int eid = data::EntityVocab::kNumSpecial;
       eid < ctx.entity_vocab.size(); ++eid) {
    const kb::EntityId kb_id = ctx.entity_vocab.KbId(eid);
    if (kb_id == kb::kInvalidEntity) continue;
    std::vector<int> tokens =
        tokenizer.Encode(ctx.world.kb.entity(kb_id).name);
    if (tokens.empty()) continue;
    std::vector<float> mean(static_cast<size_t>(d), 0.f);
    for (int t : tokens) {
      const float* row = word_weight.data() + int64_t(t) * d;
      for (int64_t j = 0; j < d; ++j) mean[size_t(j)] += row[j];
    }
    for (float& x : mean) x /= float(tokens.size());
    std::memcpy(entity_weight.data() + int64_t(eid) * d, mean.data(),
                sizeof(float) * size_t(d));
  }
  return replaced;
}

}  // namespace core
}  // namespace turl
