#ifndef TURL_CORE_VISIBILITY_H_
#define TURL_CORE_VISIBILITY_H_

#include <vector>

#include "core/table_encoding.h"

namespace turl {
namespace core {

/// Additive mask value for invisible pairs (drives softmax weight to zero).
inline constexpr float kMaskedScore = -1e9f;

/// True iff element `j` is visible to element `i` under the paper's §4.3
/// rules. Elements are indexed over the full sequence: token part first
/// (0..num_tokens-1), then entity part. Rules:
///  - caption tokens and the topic entity are visible to (and see) all;
///  - header tokens see all header tokens and the cells of their column;
///  - entity cells see cells in the same row or the same column, and the
///    header of their column.
/// The relation is symmetric and reflexive.
bool IsVisible(const EncodedTable& table, int i, int j);

/// Builds the n*n row-major additive attention mask for `table`: 0 where
/// visible, kMaskedScore where not. When `use_visibility_matrix` is false,
/// returns an all-zero mask (the conventional Transformer; Figure 7a
/// ablation).
std::vector<float> BuildVisibilityMask(const EncodedTable& table,
                                       bool use_visibility_matrix = true);

}  // namespace core
}  // namespace turl

#endif  // TURL_CORE_VISIBILITY_H_
