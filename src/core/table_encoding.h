#ifndef TURL_CORE_TABLE_ENCODING_H_
#define TURL_CORE_TABLE_ENCODING_H_

#include <vector>

#include "data/entity_vocab.h"
#include "data/table.h"
#include "text/wordpiece.h"

namespace turl {
namespace core {

/// Token segment ids (the paper's type embedding t for tokens).
inline constexpr int kSegmentCaption = 0;
inline constexpr int kSegmentHeader = 1;

/// Entity roles (the paper's entity type embedding t_e).
inline constexpr int kRoleTopic = 0;
inline constexpr int kRoleSubject = 1;
inline constexpr int kRoleObject = 2;

/// Knobs for table linearization.
struct EncodeOptions {
  int max_rows = 20;
  int max_caption_tokens = 24;
  int max_header_tokens = 8;
  int max_mention_tokens = 8;
  /// False drops caption + headers entirely ("w/o table metadata" ablation).
  bool include_metadata = true;
  /// False drops all entity cells ("only table metadata" ablation).
  bool include_entities = true;
  /// False drops the topic entity (it is part of the metadata).
  bool include_topic_entity = true;
};

/// A relational table linearized for the model (§4.2 and Figure 3): a token
/// part (caption tokens, then header tokens column by column) followed by an
/// entity part (topic entity, then entity-column cells in row-major order).
/// Parallel arrays keep per-element structure needed by the embedding layer
/// and the visibility matrix.
struct EncodedTable {
  // Token part.
  std::vector<int> token_ids;       ///< WordPiece ids.
  std::vector<int> token_segment;   ///< kSegmentCaption / kSegmentHeader.
  std::vector<int> token_position;  ///< Position within its segment run.
  std::vector<int> token_column;    ///< Header column index; -1 for caption.

  // Entity part.
  std::vector<int> entity_ids;   ///< Model entity-vocab ids (e^e).
  std::vector<int> entity_role;  ///< kRoleTopic / kRoleSubject / kRoleObject.
  std::vector<int> entity_row;   ///< Table row; -1 for the topic entity.
  std::vector<int> entity_column;  ///< Table column; -1 for the topic entity.
  /// WordPiece ids of each cell's mention text (e^m), possibly empty.
  std::vector<std::vector<int>> entity_mentions;
  /// Ground-truth KB ids (kInvalidEntity when unlinked); never an input.
  std::vector<kb::EntityId> entity_kb_ids;

  int num_tokens() const { return static_cast<int>(token_ids.size()); }
  int num_entities() const { return static_cast<int>(entity_ids.size()); }
  /// Total sequence length seen by the encoder.
  int total() const { return num_tokens() + num_entities(); }

  /// Appends one entity element; returns its entity index.
  int AppendEntity(int model_id, int role, int row, int column,
                   std::vector<int> mention_tokens,
                   kb::EntityId kb_id = kb::kInvalidEntity);
};

/// Linearizes `table` per the options. Entity ids come from `entity_vocab`
/// (out-of-vocabulary or unlinked cells map to EntityVocab::kUnkEntity but
/// keep their mention tokens — exactly the "only cell text available"
/// situation downstream tasks face).
EncodedTable EncodeTable(const data::Table& table,
                         const text::WordPieceTokenizer& tokenizer,
                         const data::EntityVocab& entity_vocab,
                         const EncodeOptions& options = EncodeOptions());

}  // namespace core
}  // namespace turl

#endif  // TURL_CORE_TABLE_ENCODING_H_
