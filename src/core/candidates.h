#ifndef TURL_CORE_CANDIDATES_H_
#define TURL_CORE_CANDIDATES_H_

#include <unordered_map>
#include <vector>

#include "core/table_encoding.h"
#include "data/entity_vocab.h"
#include "data/table.h"
#include "util/rng.h"

namespace turl {
namespace core {

/// Entity co-occurrence statistics over the training tables: which model
/// entity ids appear in the same table. Feeds the MER candidate sets
/// (§4.4: "entities that have co-occurred with those in the current table")
/// and the EntiTables baseline's similarity features.
class CooccurrenceIndex {
 public:
  CooccurrenceIndex() = default;

  /// Scans the given tables and records, per model entity id, its
  /// co-occurring ids (each list capped at `max_per_entity`, most frequent
  /// first).
  static CooccurrenceIndex Build(const data::Corpus& corpus,
                                 const std::vector<size_t>& table_indices,
                                 const data::EntityVocab& entity_vocab,
                                 int max_per_entity = 64);

  /// Co-occurring model ids for `model_id` (empty when unseen).
  const std::vector<int>& Cooccurring(int model_id) const;

  /// Raw co-occurrence count between two model ids (0 when never together).
  int64_t Count(int a, int b) const;

  /// Number of tables each model id appeared in (0 when unseen).
  int64_t TableFrequency(int model_id) const;

 private:
  std::unordered_map<int, std::vector<int>> lists_;
  std::unordered_map<int64_t, int64_t> pair_counts_;  ///< key = a * 2^32 + b.
  std::unordered_map<int, int64_t> table_freq_;
  static int64_t PairKey(int a, int b);
};

/// Builds a MER candidate set for one table: the distinct in-table entity
/// ids, entities co-occurring with them, and random negatives — deduplicated
/// and capped at `max_candidates` (in-table ids always survive the cap, so
/// recovery targets are always present). At least `min_random` random
/// negatives are included when the cap allows.
std::vector<int> BuildMerCandidates(const EncodedTable& clean,
                                    const CooccurrenceIndex& cooc,
                                    int entity_vocab_size, int max_candidates,
                                    int min_random, Rng* rng);

}  // namespace core
}  // namespace turl

#endif  // TURL_CORE_CANDIDATES_H_
