#include "core/context.h"

#include <unordered_map>

namespace turl {
namespace core {

namespace {

void CountWords(const std::string& text,
                std::unordered_map<std::string, int64_t>* counts) {
  for (const std::string& w : text::BasicTokenize(text)) ++(*counts)[w];
}

}  // namespace

TurlContext BuildContext(const ContextConfig& config) {
  Rng rng(config.seed);
  TurlContext ctx;
  ctx.world = kb::GenerateSyntheticKb(config.kb, &rng);
  ctx.corpus = data::GenerateCorpus(ctx.world, config.corpus, &rng);

  // Word counts over every text surface the models will ever tokenize:
  // corpus captions/headers/mentions plus KB names, aliases and
  // descriptions (entity linking encodes KB text too).
  std::unordered_map<std::string, int64_t> counts;
  for (const data::Table& t : ctx.corpus.tables) {
    CountWords(t.caption, &counts);
    CountWords(t.topic_mention, &counts);
    for (const data::Column& col : t.columns) {
      CountWords(col.header, &counts);
      for (const data::EntityCell& cell : col.cells) {
        CountWords(cell.mention, &counts);
      }
    }
  }
  for (kb::EntityId e = 0; e < ctx.world.kb.num_entities(); ++e) {
    const kb::Entity& ent = ctx.world.kb.entity(e);
    CountWords(ent.name, &counts);
    CountWords(ent.description, &counts);
    for (const std::string& a : ent.aliases) CountWords(a, &counts);
  }
  for (kb::TypeId t = 0; t < ctx.world.kb.num_types(); ++t) {
    CountWords(ctx.world.kb.type(t).name, &counts);
  }

  ctx.vocab = text::BuildWordPieceVocab(counts, config.wordpiece);
  ctx.entity_vocab = data::EntityVocab::Build(ctx.corpus, ctx.corpus.train,
                                              config.entity_min_count);
  return ctx;
}

}  // namespace core
}  // namespace turl
