#include "core/model.h"

#include <algorithm>

#include "core/visibility.h"
#include "nn/kernels/arena.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/logging.h"

namespace turl {
namespace core {

TurlModel::TurlModel(const TurlConfig& config, int word_vocab_size,
                     int entity_vocab_size, uint64_t seed)
    : config_(config),
      word_vocab_size_(word_vocab_size),
      entity_vocab_size_(entity_vocab_size) {
  TURL_CHECK_GT(word_vocab_size, 0);
  TURL_CHECK_GT(entity_vocab_size, 0);
  Rng rng(seed);
  const int64_t d = config_.d_model;
  word_emb_ = std::make_unique<nn::Embedding>(&params_, "emb.word",
                                              word_vocab_size, d, &rng);
  position_emb_ = std::make_unique<nn::Embedding>(
      &params_, "emb.position", config_.max_position, d, &rng);
  segment_emb_ =
      std::make_unique<nn::Embedding>(&params_, "emb.segment", 2, d, &rng);
  role_emb_ =
      std::make_unique<nn::Embedding>(&params_, "emb.role", 3, d, &rng);
  entity_emb_ = std::make_unique<nn::Embedding>(&params_, "emb.entity",
                                                entity_vocab_size, d, &rng);
  entity_fuse_ =
      std::make_unique<nn::Linear>(&params_, "emb.fuse", 2 * d, d, &rng);
  emb_norm_ = std::make_unique<nn::LayerNorm>(&params_, "emb.norm", d);
  encoder_ = std::make_unique<nn::TransformerEncoder>(
      &params_, "encoder", config_.num_layers, d, config_.d_intermediate,
      config_.num_heads, &rng);
  mlm_head_ = std::make_unique<nn::Linear>(&params_, "head.mlm", d, d, &rng);
  mer_head_ = std::make_unique<nn::Linear>(&params_, "head.mer", d, d, &rng);
}

nn::Tensor TurlModel::Encode(const EncodedTable& input, bool training,
                             Rng* rng) const {
  TURL_CHECK_GT(input.total(), 0);
  // Randomness is explicitly per-call: a shared const model has no hidden
  // Rng, so this is the only place dropout noise can come from.
  TURL_CHECK(!training || rng != nullptr)
      << "training Encode requires a caller-provided Rng";
  TURL_PROFILE_SCOPE("model.encode");
  static obs::Counter* encodes =
      obs::MetricsRegistry::Get().GetCounter("model.encodes");
  encodes->Inc();
  // All intermediates built while encoding lease their buffers from the
  // per-thread kernel arena; they recycle when the tape is severed, so a
  // steady-state step does O(1) fresh heap allocations.
  nn::kernels::ArenaScope arena;
  std::vector<nn::Tensor> parts;

  if (input.num_tokens() > 0) {
    // Clamp positions into the embedding table.
    std::vector<int> positions = input.token_position;
    for (int& p : positions) {
      p = std::min(p, static_cast<int>(config_.max_position) - 1);
    }
    nn::Tensor xt = nn::Add(
        nn::Add(word_emb_->Forward(input.token_ids),
                segment_emb_->Forward(input.token_segment)),
        position_emb_->Forward(positions));
    parts.push_back(xt);
  }

  if (input.num_entities() > 0) {
    nn::Tensor ee = entity_emb_->Forward(input.entity_ids);
    nn::Tensor em = nn::BagMean(word_emb_->weight(), input.entity_mentions);
    nn::Tensor fused = entity_fuse_->Forward(nn::ConcatCols(ee, em));
    nn::Tensor xe = nn::Add(fused, role_emb_->Forward(input.entity_role));
    parts.push_back(xe);
  }

  nn::Tensor x = parts.size() == 1 ? parts[0] : nn::ConcatRows(parts);
  x = emb_norm_->Forward(x);
  x = nn::Dropout(x, config_.dropout, training, rng);

  std::vector<float> mask;
  {
    TURL_PROFILE_SCOPE("model.visibility_mask");
    mask = BuildVisibilityMask(input, config_.use_visibility_matrix);
  }
  TURL_PROFILE_SCOPE("model.encoder_stack");
  return encoder_->Forward(x, mask, config_.dropout, training, rng);
}

nn::Tensor TurlModel::MlmLogits(const nn::Tensor& hidden,
                                const std::vector<int>& rows,
                                Scoring scoring) const {
  TURL_CHECK(!rows.empty());
  TURL_PROFILE_SCOPE("model.mlm_logits");
  nn::kernels::ArenaScope arena;
  nn::Tensor projected = mlm_head_->Forward(nn::SelectRows(hidden, rows));
  if (scoring == Scoring::kServe && nn::kernels::QuantScoringEnabled()) {
    const nn::Tensor& w = word_emb_->weight();
    const nn::kernels::QuantizedMatrix& q =
        word_quant_.Get(w.data(), w.dim(0), w.dim(1), w.dim(1), 1);
    const int64_t r = projected.dim(0);
    const int64_t v = w.dim(0);
    std::vector<float> out(static_cast<size_t>(r * v));
    for (int64_t i = 0; i < r; ++i) {
      nn::kernels::QuantizedScore(q, projected.data() + i * projected.dim(1),
                                  out.data() + i * v);
    }
    return nn::Tensor::FromVector({r, v}, std::move(out));
  }
  return nn::MatMulNT(projected, word_emb_->weight());
}

nn::Tensor TurlModel::MerLogits(const nn::Tensor& hidden,
                                const std::vector<int>& rows,
                                const std::vector<int>& candidates,
                                Scoring scoring) const {
  TURL_CHECK(!rows.empty());
  TURL_PROFILE_SCOPE("model.mer_logits");
  TURL_CHECK(!candidates.empty());
  nn::kernels::ArenaScope arena;
  nn::Tensor projected = mer_head_->Forward(nn::SelectRows(hidden, rows));
  if (scoring == Scoring::kServe && nn::kernels::QuantScoringEnabled()) {
    // Score only the candidate rows of the full-table pack: the pack builds
    // once per model load, not once per candidate set.
    const nn::Tensor& w = entity_emb_->weight();
    const nn::kernels::QuantizedMatrix& q =
        entity_quant_.Get(w.data(), w.dim(0), w.dim(1), w.dim(1), 1);
    const int64_t r = projected.dim(0);
    const int64_t n = static_cast<int64_t>(candidates.size());
    std::vector<float> out(static_cast<size_t>(r * n));
    for (int64_t i = 0; i < r; ++i) {
      nn::kernels::QuantizedScoreRows(q, candidates.data(), n,
                                      projected.data() + i * projected.dim(1),
                                      out.data() + i * n);
    }
    return nn::Tensor::FromVector({r, n}, std::move(out));
  }
  nn::Tensor cand_emb = entity_emb_->Forward(candidates);
  return nn::MatMulNT(projected, cand_emb);
}

void TurlModel::InvalidateQuantizedScoring() const {
  word_quant_.Invalidate();
  entity_quant_.Invalidate();
}

nn::Tensor TurlModel::MerProject(const nn::Tensor& hidden,
                                 const std::vector<int>& rows) const {
  TURL_CHECK(!rows.empty());
  return mer_head_->Forward(nn::SelectRows(hidden, rows));
}

}  // namespace core
}  // namespace turl
