#include "core/table_encoding.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/logging.h"

namespace turl {
namespace core {

int EncodedTable::AppendEntity(int model_id, int role, int row, int column,
                               std::vector<int> mention_tokens,
                               kb::EntityId kb_id) {
  entity_ids.push_back(model_id);
  entity_role.push_back(role);
  entity_row.push_back(row);
  entity_column.push_back(column);
  entity_mentions.push_back(std::move(mention_tokens));
  entity_kb_ids.push_back(kb_id);
  return num_entities() - 1;
}

namespace {

std::vector<int> EncodeCapped(const text::WordPieceTokenizer& tokenizer,
                              const std::string& textual, int cap) {
  std::vector<int> ids = tokenizer.Encode(textual);
  if (static_cast<int>(ids.size()) > cap) ids.resize(static_cast<size_t>(cap));
  return ids;
}

}  // namespace

EncodedTable EncodeTable(const data::Table& table,
                         const text::WordPieceTokenizer& tokenizer,
                         const data::EntityVocab& entity_vocab,
                         const EncodeOptions& options) {
  TURL_PROFILE_SCOPE("encode.table");
  static obs::Counter* tables_encoded =
      obs::MetricsRegistry::Get().GetCounter("encode.tables");
  tables_encoded->Inc();
  EncodedTable out;

  if (options.include_metadata) {
    // Caption tokens.
    std::vector<int> cap_ids =
        EncodeCapped(tokenizer, table.caption, options.max_caption_tokens);
    for (size_t i = 0; i < cap_ids.size(); ++i) {
      out.token_ids.push_back(cap_ids[i]);
      out.token_segment.push_back(kSegmentCaption);
      out.token_position.push_back(static_cast<int>(i));
      out.token_column.push_back(-1);
    }
    // Header tokens, column by column; each header restarts positions.
    for (int c = 0; c < table.num_columns(); ++c) {
      std::vector<int> h_ids = EncodeCapped(
          tokenizer, table.columns[size_t(c)].header, options.max_header_tokens);
      for (size_t i = 0; i < h_ids.size(); ++i) {
        out.token_ids.push_back(h_ids[i]);
        out.token_segment.push_back(kSegmentHeader);
        out.token_position.push_back(static_cast<int>(i));
        out.token_column.push_back(c);
      }
    }
  }

  if (options.include_entities) {
    if (options.include_topic_entity &&
        table.topic_entity != kb::kInvalidEntity) {
      out.AppendEntity(
          entity_vocab.Id(table.topic_entity), kRoleTopic, -1, -1,
          EncodeCapped(tokenizer, table.topic_mention,
                       options.max_mention_tokens),
          table.topic_entity);
    }
    const int rows = std::min(table.num_rows(), options.max_rows);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < table.num_columns(); ++c) {
        const data::Column& col = table.columns[size_t(c)];
        if (!col.is_entity_column) continue;
        const data::EntityCell& cell = col.cells[size_t(r)];
        const int role = (c == 0) ? kRoleSubject : kRoleObject;
        const int model_id = cell.linked()
                                 ? entity_vocab.Id(cell.entity)
                                 : data::EntityVocab::kUnkEntity;
        out.AppendEntity(model_id, role, r, c,
                         EncodeCapped(tokenizer, cell.mention,
                                      options.max_mention_tokens),
                         cell.entity);
      }
    }
  }

  return out;
}

}  // namespace core
}  // namespace turl
