#include "core/visibility.h"

#include "util/logging.h"

namespace turl {
namespace core {

namespace {

/// Structural coordinates of one sequence element.
struct ElementInfo {
  bool is_token = false;
  bool is_caption = false;  ///< Caption token.
  bool is_header = false;   ///< Header token.
  bool is_topic = false;    ///< Topic entity.
  int row = -1;             ///< Cell row (cells only).
  int column = -1;          ///< Header/cell column.
};

ElementInfo InfoAt(const EncodedTable& t, int i) {
  ElementInfo e;
  const int nt = t.num_tokens();
  if (i < nt) {
    e.is_token = true;
    if (t.token_segment[size_t(i)] == kSegmentCaption) {
      e.is_caption = true;
    } else {
      e.is_header = true;
      e.column = t.token_column[size_t(i)];
    }
  } else {
    const int ei = i - nt;
    if (t.entity_role[size_t(ei)] == kRoleTopic) {
      e.is_topic = true;
    } else {
      e.row = t.entity_row[size_t(ei)];
      e.column = t.entity_column[size_t(ei)];
    }
  }
  return e;
}

bool VisiblePair(const ElementInfo& a, const ElementInfo& b) {
  // Caption tokens and the topic entity see and are seen by everything.
  if (a.is_caption || a.is_topic || b.is_caption || b.is_topic) return true;
  if (a.is_header && b.is_header) return true;  // Headers form one row.
  if (a.is_header || b.is_header) {
    // Header vs entity cell: visible iff same column.
    const ElementInfo& header = a.is_header ? a : b;
    const ElementInfo& cell = a.is_header ? b : a;
    return header.column == cell.column;
  }
  // Two entity cells: same row or same column.
  return a.row == b.row || a.column == b.column;
}

}  // namespace

bool IsVisible(const EncodedTable& table, int i, int j) {
  TURL_CHECK_GE(i, 0);
  TURL_CHECK_LT(i, table.total());
  TURL_CHECK_GE(j, 0);
  TURL_CHECK_LT(j, table.total());
  if (i == j) return true;
  return VisiblePair(InfoAt(table, i), InfoAt(table, j));
}

std::vector<float> BuildVisibilityMask(const EncodedTable& table,
                                       bool use_visibility_matrix) {
  const int n = table.total();
  std::vector<float> mask(static_cast<size_t>(n) * static_cast<size_t>(n),
                          0.f);
  if (!use_visibility_matrix) return mask;

  // Precompute element info once; the pairwise loop is O(n^2).
  std::vector<ElementInfo> info(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) info[size_t(i)] = InfoAt(table, i);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && !VisiblePair(info[size_t(i)], info[size_t(j)])) {
        mask[static_cast<size_t>(i) * static_cast<size_t>(n) +
             static_cast<size_t>(j)] = kMaskedScore;
      }
    }
  }
  return mask;
}

}  // namespace core
}  // namespace turl
