#include "core/pretrain.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>

#include "ckpt/checkpoint.h"
#include "nn/train_parallel.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/server/handlers.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "rt/thread_pool.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/timer.h"

namespace turl {
namespace core {

namespace {

/// Configuration guard for pretraining checkpoints: everything the resumed
/// run must share with the saved one for bit-identical continuation. Epochs
/// and tables-per-epoch pin the LR schedule's total_steps; the seed pins the
/// RNG stream the checkpoint's saved state belongs to.
std::string PretrainFingerprint(const TurlConfig& cfg, uint64_t seed,
                                int epochs, size_t tables_per_epoch,
                                int grad_accum_tables) {
  std::string fp = "pretrain|" + cfg.CacheTag() + "|seed" +
                   std::to_string(seed) + "|ep" + std::to_string(epochs) +
                   "|tpe" + std::to_string(tables_per_epoch);
  // Only stamped when sharding changes the step sequence, so grad_accum == 1
  // keeps accepting every pre-sharding checkpoint.
  if (grad_accum_tables > 1) fp += "|ga" + std::to_string(grad_accum_tables);
  return fp;
}

}  // namespace

Pretrainer::Pretrainer(TurlModel* model, const TurlContext* ctx)
    : model_(model), ctx_(ctx) {
  TURL_CHECK(model != nullptr);
  TURL_CHECK(ctx != nullptr);
  TURL_PROFILE_SCOPE("pretrain.encode_corpus");
  const text::WordPieceTokenizer tokenizer = ctx->MakeTokenizer();
  EncodeOptions opts;
  train_encoded_.reserve(ctx->corpus.train.size());
  for (size_t idx : ctx->corpus.train) {
    train_encoded_.push_back(
        EncodeTable(ctx->corpus.tables[idx], tokenizer, ctx->entity_vocab,
                    opts));
  }
  valid_encoded_.reserve(ctx->corpus.valid.size());
  for (size_t idx : ctx->corpus.valid) {
    valid_encoded_.push_back(
        EncodeTable(ctx->corpus.tables[idx], tokenizer, ctx->entity_vocab,
                    opts));
  }
  cooc_ = CooccurrenceIndex::Build(ctx->corpus, ctx->corpus.train,
                                   ctx->entity_vocab);
}

nn::Tensor Pretrainer::InstanceLoss(const PretrainInstance& instance,
                                    const EncodedTable& clean, Rng* rng,
                                    double* mlm_item, double* mer_item) const {
  const TurlConfig& cfg = model_->config();
  nn::Tensor hidden;
  {
    TURL_TRACE_SCOPE("train.encode");
    hidden = model_->Encode(instance.input, /*training=*/true, rng);
  }

  // MLM loss over selected token positions.
  std::vector<int> mlm_rows, mlm_targets;
  for (int i = 0; i < instance.input.num_tokens(); ++i) {
    if (instance.mlm_targets[size_t(i)] >= 0) {
      mlm_rows.push_back(i);
      mlm_targets.push_back(instance.mlm_targets[size_t(i)]);
    }
  }

  // MER loss over selected entity positions against the candidate set.
  std::vector<int> mer_rows, mer_target_ids;
  for (int i = 0; i < instance.input.num_entities(); ++i) {
    if (instance.mer_targets[size_t(i)] >= 0) {
      mer_rows.push_back(TurlModel::EntityHiddenRow(instance.input, i));
      mer_target_ids.push_back(instance.mer_targets[size_t(i)]);
    }
  }

  nn::Tensor loss;
  if (!mlm_rows.empty()) {
    TURL_TRACE_SCOPE("train.mlm");
    nn::Tensor mlm_loss = nn::SoftmaxCrossEntropy(
        model_->MlmLogits(hidden, mlm_rows), mlm_targets);
    if (mlm_item != nullptr) *mlm_item = double(mlm_loss.item());
    loss = mlm_loss;
  }
  if (!mer_rows.empty()) {
    TURL_TRACE_SCOPE("train.mer");
    std::vector<int> candidates =
        BuildMerCandidates(clean, cooc_, model_->entity_vocab_size(),
                           cfg.mer_max_candidates,
                           cfg.mer_min_random_negatives, rng);
    // Map each target to its index in the candidate list.
    std::vector<int> targets;
    targets.reserve(mer_target_ids.size());
    for (int id : mer_target_ids) {
      auto it = std::find(candidates.begin(), candidates.end(), id);
      TURL_CHECK(it != candidates.end())
          << "MER target missing from candidate set";
      targets.push_back(static_cast<int>(it - candidates.begin()));
    }
    nn::Tensor mer_loss = nn::SoftmaxCrossEntropy(
        model_->MerLogits(hidden, mer_rows, candidates), targets);
    if (mer_item != nullptr) *mer_item = double(mer_loss.item());
    loss = loss.defined() ? nn::Add(loss, mer_loss) : mer_loss;
  }
  return loss;
}

/// /healthz probe while a checkpointed run is live: readiness means "a save
/// would succeed right now", checked by touching a scratch file in the
/// checkpoint directory.
bool CkptDirWritable(const std::string& dir, std::string* detail) {
  const std::string probe_path = dir + "/.obs_probe";
  {
    std::ofstream out(probe_path, std::ios::trunc);
    out << "probe";
    if (!out.good()) {
      *detail = dir + " not writable";
      return false;
    }
  }
  std::remove(probe_path.c_str());
  *detail = dir;
  return true;
}

PretrainResult Pretrainer::Train(const Options& options) {
  TURL_PROFILE_SCOPE("pretrain.train");
  // Pretraining is a long-running entry point: expose the live plane when
  // TURL_OBS_PORT asks for it (no-op otherwise).
  obs::server::StartFromEnv();
  PretrainResult result;
  const TurlConfig& cfg = model_->config();
  const int epochs = options.epochs > 0 ? options.epochs : cfg.pretrain_epochs;
  Rng rng(options.seed);

  size_t tables_per_epoch = train_encoded_.size();
  if (options.max_train_tables > 0) {
    tables_per_epoch = std::min(
        tables_per_epoch, static_cast<size_t>(options.max_train_tables));
  }
  const int grad_accum = std::max(1, options.grad_accum_tables);
  // One optimizer step consumes `grad_accum` tables, so the LR schedule's
  // horizon shrinks accordingly (identical to before at grad_accum == 1).
  const int64_t steps_per_epoch =
      (static_cast<int64_t>(tables_per_epoch) + grad_accum - 1) / grad_accum;
  const int64_t total_steps = steps_per_epoch * epochs;
  TURL_CHECK_GT(total_steps, 0);

  nn::Adam adam(model_->params(), nn::AdamConfig{.lr = cfg.learning_rate});
  nn::LinearDecaySchedule schedule(total_steps, /*final_fraction=*/0.05f);

  std::vector<size_t> order(train_encoded_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Telemetry window: sums since the last emitted record.
  obs::Counter* steps_counter =
      obs::MetricsRegistry::Get().GetCounter("pretrain.steps");
  WallTimer timer;
  double window_loss = 0.0, window_mlm = 0.0, window_mer = 0.0;
  int64_t window_steps = 0, window_mlm_n = 0, window_mer_n = 0;
  const auto emit_window = [&](int64_t step, int epoch, double eval_acc) {
    obs::TrainRecord record;
    record.phase = "pretrain";
    record.step = step;
    record.epoch = epoch;
    if (window_steps > 0) record.loss = window_loss / double(window_steps);
    if (window_mlm_n > 0) record.mlm_loss = window_mlm / double(window_mlm_n);
    if (window_mer_n > 0) record.mer_loss = window_mer / double(window_mer_n);
    if (!std::isnan(eval_acc)) {
      record.eval_metric = "object_prediction_acc";
      record.eval_value = eval_acc;
    }
    const double lap_sec = timer.LapMillis() / 1e3;
    if (window_steps > 0 && lap_sec > 0) {
      record.tables_per_sec = double(window_steps) / lap_sec;
    }
    record.elapsed_sec = timer.ElapsedSeconds();
    obs::EmitRecord(record, options.sink);
    window_loss = window_mlm = window_mer = 0.0;
    window_steps = window_mlm_n = window_mer_n = 0;
  };

  int64_t step = 0;
  double recent_loss = 0.0;
  int64_t recent_count = 0;
  int start_epoch = 0;
  size_t start_oi = 0;
  bool resumed_mid_epoch = false;

  std::unique_ptr<ckpt::CheckpointManager> manager;
  std::unique_ptr<obs::server::ScopedReadinessProbe> ckpt_probe;
  if (!options.ckpt_dir.empty()) {
    manager = std::make_unique<ckpt::CheckpointManager>(
        ckpt::CheckpointManager::Options{options.ckpt_dir,
                                         options.keep_last});
    ckpt_probe = std::make_unique<obs::server::ScopedReadinessProbe>(
        "ckpt_dir_writable", [dir = options.ckpt_dir](std::string* detail) {
          return CkptDirWritable(dir, detail);
        });
  }
  const std::string fingerprint = PretrainFingerprint(
      cfg, options.seed, epochs, tables_per_epoch, grad_accum);
  const auto bind = [&](ckpt::TrainState* st) {
    st->stores.emplace_back("model", model_->params());
    st->optims.emplace_back("adam", &adam);
    st->rng = &rng;
    st->fingerprint = fingerprint;
  };
  // `next_oi` is the position in `order` the resumed run continues from.
  const auto save_checkpoint = [&](int epoch, size_t next_oi) {
    ckpt::TrainState st;
    bind(&st);
    st.epoch = epoch;
    st.step_in_epoch = int64_t(next_oi);
    st.global_step = step;
    st.order.assign(order.begin(), order.end());
    st.counters = {recent_count, window_steps, window_mlm_n, window_mer_n};
    st.accumulators = {recent_loss, window_loss, window_mlm, window_mer};
    st.eval_curve = result.eval_curve;
    const Status s = manager->Save(st);
    if (!s.ok()) {
      TURL_LOG(Warning) << "pretrain checkpoint save failed: "
                        << s.ToString();
    }
  };

  if (manager != nullptr && options.resume) {
    ckpt::TrainState st;
    bind(&st);
    const Status s = manager->LoadLatest(&st);
    if (s.ok()) {
      TURL_CHECK_EQ(st.order.size(), order.size())
          << "checkpoint order covers a different corpus";
      TURL_CHECK_EQ(st.counters.size(), size_t(4));
      TURL_CHECK_EQ(st.accumulators.size(), size_t(4));
      start_epoch = int(st.epoch);
      start_oi = size_t(st.step_in_epoch);
      step = st.global_step;
      for (size_t i = 0; i < order.size(); ++i) order[i] = size_t(st.order[i]);
      recent_count = st.counters[0];
      window_steps = st.counters[1];
      window_mlm_n = st.counters[2];
      window_mer_n = st.counters[3];
      recent_loss = st.accumulators[0];
      window_loss = st.accumulators[1];
      window_mlm = st.accumulators[2];
      window_mer = st.accumulators[3];
      result.eval_curve = st.eval_curve;
      resumed_mid_epoch = true;
      TURL_LOG(Info) << "resumed pretraining at step " << step << " (epoch "
                     << start_epoch << ", position " << start_oi << ")";
    } else if (s.code() != StatusCode::kNotFound) {
      TURL_LOG(Warning) << "no usable checkpoint in " << options.ckpt_dir
                        << " (" << s.ToString() << "); starting fresh";
    }
  }

  // Shard gradient sinks for grad_accum > 1, built lazily and reused across
  // steps (Reset zeroes only what a shard touched).
  std::vector<std::unique_ptr<nn::GradShard>> shards;

  for (int epoch = start_epoch; epoch < epochs; ++epoch) {
    size_t oi_begin = 0;
    if (resumed_mid_epoch && epoch == start_epoch) {
      // The restored RNG already consumed this epoch's shuffle and `order`
      // carries its result; shuffling again would diverge from the
      // uninterrupted run.
      oi_begin = start_oi;
    } else {
      rng.Shuffle(&order);
    }
    // `oi` advances in the body: by 1 in the classic path, by the group size
    // in the sharded path — so `oi` always names the resume position and a
    // checkpoint saved after any step restarts on a group boundary.
    for (size_t oi = oi_begin; oi < tables_per_epoch;) {
      TURL_PROFILE_SCOPE("pretrain.step");
      const auto step_start_tp = std::chrono::steady_clock::now();
      // Each step is its own trace (sampled), so a slow step decomposes into
      // encode / mlm / mer / backward / optimizer in the Chrome export.
      obs::TraceSpan step_trace(obs::kNewTrace, "train.step");
      double loss_item = 0.0;
      double grad_norm = 0.0;
      double mlm_sum = 0.0, mer_sum = 0.0;
      int64_t mlm_n = 0, mer_n = 0;
      if (grad_accum == 1) {
        const EncodedTable& clean = train_encoded_[order[oi]];
        ++oi;
        if (clean.total() == 0) continue;
        if (step_trace.traced()) {
          step_trace.Annotate("step", step);
          step_trace.Annotate("total", int64_t(clean.total()));
        }
        PretrainInstance instance = MakePretrainInstance(
            clean, cfg, model_->word_vocab_size(), model_->entity_vocab_size(),
            &rng);
        double mlm_item = std::numeric_limits<double>::quiet_NaN();
        double mer_item = std::numeric_limits<double>::quiet_NaN();
        nn::Tensor loss =
            InstanceLoss(instance, clean, &rng, &mlm_item, &mer_item);
        if (!loss.defined()) continue;
        {
          TURL_TRACE_SCOPE("train.backward");
          model_->params()->ZeroGrad();
          loss.Backward();
        }
        {
          TURL_TRACE_SCOPE("train.optimizer");
          grad_norm =
              double(nn::ClipGradNorm(model_->params(), cfg.grad_clip));
          adam.Step(schedule.Scale(step));
        }
        loss_item = loss.item();
        if (!std::isnan(mlm_item)) {
          mlm_sum = mlm_item;
          mlm_n = 1;
        }
        if (!std::isnan(mer_item)) {
          mer_sum = mer_item;
          mer_n = 1;
        }
      } else {
        const size_t group =
            std::min<size_t>(size_t(grad_accum), tables_per_epoch - oi);
        if (step_trace.traced()) {
          step_trace.Annotate("step", step);
          step_trace.Annotate("shards", int64_t(group));
        }
        while (shards.size() < group) {
          shards.push_back(std::make_unique<nn::GradShard>(
              std::vector<const nn::ParamStore*>{model_->params()}));
        }
        struct ShardOut {
          bool defined = false;
          double loss = 0.0;
          double mlm = std::numeric_limits<double>::quiet_NaN();
          double mer = std::numeric_limits<double>::quiet_NaN();
        };
        std::vector<ShardOut> outs(group);
        const auto run_shard = [&](int64_t s) {
          nn::GradShard* shard = shards[size_t(s)].get();
          shard->Reset();  // Before any early-out: stale dirt must not reduce.
          const EncodedTable& clean = train_encoded_[order[oi + size_t(s)]];
          if (clean.total() == 0) return;
          nn::ScopedGradShard guard(shard);
          // The shard RNG stream depends only on (seed, step, shard) — not
          // on the main RNG, the thread, or the schedule — so every thread
          // count replays the identical instance sequence.
          Rng shard_rng(nn::ShardStreamSeed(options.seed, step, s));
          PretrainInstance instance = MakePretrainInstance(
              clean, cfg, model_->word_vocab_size(),
              model_->entity_vocab_size(), &shard_rng);
          ShardOut& out = outs[size_t(s)];
          nn::Tensor loss =
              InstanceLoss(instance, clean, &shard_rng, &out.mlm, &out.mer);
          if (!loss.defined()) return;
          loss.Backward();  // Leaf-param grads land in the shard's buffers.
          out.loss = loss.item();
          out.defined = true;
        };
        {
          TURL_TRACE_SCOPE("train.backward");
          rt::ThreadPool* pool = nn::TrainPool();
          if (pool != nullptr) {
            pool->ParallelFor(0, int64_t(group), /*grain=*/1, run_shard);
          } else {
            for (int64_t s = 0; s < int64_t(group); ++s) run_shard(s);
          }
        }
        oi += group;
        int64_t defined_n = 0;
        for (const ShardOut& out : outs) {
          if (!out.defined) continue;
          ++defined_n;
          loss_item += out.loss;
          if (!std::isnan(out.mlm)) {
            mlm_sum += out.mlm;
            ++mlm_n;
          }
          if (!std::isnan(out.mer)) {
            mer_sum += out.mer;
            ++mer_n;
          }
        }
        if (defined_n == 0) continue;  // Nothing to step on this group.
        loss_item /= double(defined_n);
        {
          TURL_TRACE_SCOPE("train.optimizer");
          model_->params()->ZeroGrad();
          std::vector<nn::GradShard*> group_shards;
          group_shards.reserve(group);
          for (size_t s = 0; s < group; ++s) {
            group_shards.push_back(shards[s].get());
          }
          nn::GradShard::Reduce(group_shards);
          grad_norm =
              double(nn::ClipGradNorm(model_->params(), cfg.grad_clip));
          adam.Step(schedule.Scale(step));
        }
      }
      obs::RecordTrainHealth("pretrain", step + 1, loss_item, grad_norm,
                             options.sink);
      recent_loss += loss_item;
      ++recent_count;
      ++step;
      steps_counter->Inc();
      if (obs::EventLog::Enabled() || obs::SliEngine::Enabled()) {
        // Training gets the same windowed health view as serving: one wide
        // event per step, and a "train" SLI stream whose availability dips
        // when losses go non-finite.
        const auto step_end_tp = std::chrono::steady_clock::now();
        obs::WideEvent event;
        event.origin = "train";
        event.task = "train.step";
        event.status = std::isfinite(loss_item) ? "ok" : "error";
        event.request_id = static_cast<uint64_t>(step);
        if (step_trace.traced()) event.trace_id = step_trace.context().trace_id;
        event.end_ms = std::chrono::duration<double, std::milli>(
                           step_end_tp.time_since_epoch())
                           .count();
        event.total_us = std::chrono::duration<double, std::micro>(
                             step_end_tp - step_start_tp)
                             .count();
        event.batch_size = grad_accum;
        if (obs::EventLog::Enabled()) obs::EventLog::Get().Append(event);
        obs::SliEngine::Get().Record("train",
                                     obs::OutcomeFromStatusName(event.status),
                                     event.total_us / 1000.0, event.trace_id);
      }
      window_loss += loss_item;
      ++window_steps;
      window_mlm += mlm_sum;
      window_mlm_n += mlm_n;
      window_mer += mer_sum;
      window_mer_n += mer_n;
      if (options.eval_every > 0 && step % options.eval_every == 0) {
        TURL_PROFILE_SCOPE("pretrain.eval");
        Rng eval_rng(options.seed + 1);  // Fixed eval set across calls.
        const double acc = EvaluateObjectPrediction(
            options.max_eval_tables, options.max_eval_cells_per_table,
            &eval_rng);
        result.eval_curve.emplace_back(step, acc);
        emit_window(step, epoch, acc);
      } else if (options.telemetry_every > 0 &&
                 step % options.telemetry_every == 0) {
        emit_window(step, epoch,
                    std::numeric_limits<double>::quiet_NaN());
      }
      if (manager != nullptr && options.save_every > 0 &&
          step % options.save_every == 0) {
        save_checkpoint(epoch, oi);
      }
      if (options.max_steps > 0 && step >= options.max_steps) {
        // Simulated kill: return immediately without saving or evaluating —
        // resume must come from the last *periodic* checkpoint.
        result.steps = step;
        return result;
      }
    }
  }

  result.steps = step;
  result.final_loss = recent_count > 0 ? recent_loss / double(recent_count)
                                       : 0.0;
  {
    TURL_PROFILE_SCOPE("pretrain.eval");
    Rng final_eval_rng(options.seed + 1);
    result.final_accuracy = EvaluateObjectPrediction(
        options.max_eval_tables, options.max_eval_cells_per_table,
        &final_eval_rng);
  }
  result.eval_curve.emplace_back(step, result.final_accuracy);
  emit_window(step, epochs - 1, result.final_accuracy);
  return result;
}

double Pretrainer::EvaluateObjectPrediction(int max_tables,
                                            int max_cells_per_table,
                                            Rng* rng) const {
  // Eval runs interleaved with training steps: drop any int8 pack built
  // from earlier weights before scoring with Scoring::kServe below.
  model_->InvalidateQuantizedScoring();
  int64_t correct = 0, total = 0;
  const size_t n_tables =
      std::min(valid_encoded_.size(), static_cast<size_t>(max_tables));
  for (size_t ti = 0; ti < n_tables; ++ti) {
    const EncodedTable& clean = valid_encoded_[ti];
    // Object-column cells that are linked and in vocabulary.
    std::vector<int> cells;
    for (int i : MaskableEntityPositions(clean)) {
      if (clean.entity_role[size_t(i)] == kRoleObject) cells.push_back(i);
    }
    if (cells.empty()) continue;
    rng->Shuffle(&cells);
    if (static_cast<int>(cells.size()) > max_cells_per_table) {
      cells.resize(static_cast<size_t>(max_cells_per_table));
    }
    std::vector<int> candidates =
        BuildMerCandidates(clean, cooc_, model_->entity_vocab_size(),
                           model_->config().mer_max_candidates,
                           model_->config().mer_min_random_negatives, rng);
    for (int cell : cells) {
      EncodedTable masked = clean;
      MaskEntityCell(&masked, cell, /*mask_mention=*/true);
      nn::Tensor hidden = model_->Encode(masked, /*training=*/false, rng);
      nn::Tensor logits = model_->MerLogits(
          hidden, {TurlModel::EntityHiddenRow(masked, cell)}, candidates,
          Scoring::kServe);
      const size_t best = ArgMax(logits.ToVector());
      const int target = clean.entity_ids[size_t(cell)];
      correct += (candidates[best] == target);
      ++total;
    }
  }
  return total == 0 ? 0.0 : double(correct) / double(total);
}

}  // namespace core
}  // namespace turl
