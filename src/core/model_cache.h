#ifndef TURL_CORE_MODEL_CACHE_H_
#define TURL_CORE_MODEL_CACHE_H_

#include <string>

#include "core/pretrain.h"

namespace turl {
namespace core {

/// Directory for cached pre-trained checkpoints: $TURL_CACHE if set, else
/// "turl_cache" under the working directory.
std::string DefaultCacheDir();

/// Loads "<cache_dir>/<model config tag><suffix>.ckpt" into `model` if
/// present; otherwise pre-trains with `options` and writes the checkpoint.
/// Returns the pretraining result (empty curve when loaded from cache).
/// Benches share one pre-trained model across processes this way.
PretrainResult GetOrTrainModel(TurlModel* model, const TurlContext& ctx,
                               const Pretrainer::Options& options,
                               const std::string& cache_dir,
                               const std::string& suffix = "");

}  // namespace core
}  // namespace turl

#endif  // TURL_CORE_MODEL_CACHE_H_
