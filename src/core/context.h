#ifndef TURL_CORE_CONTEXT_H_
#define TURL_CORE_CONTEXT_H_

#include "data/corpus_generator.h"
#include "data/entity_vocab.h"
#include "data/table.h"
#include "kb/kb_generator.h"
#include "text/wordpiece.h"

namespace turl {
namespace core {

/// Everything upstream of the model: the synthetic world, the table corpus
/// with its §5.1 partition, the WordPiece vocabulary built over the corpus
/// and KB text, and the entity vocabulary (§5.2).
struct ContextConfig {
  kb::KbGeneratorConfig kb;
  data::CorpusGeneratorConfig corpus;
  /// Entities appearing fewer times than this in training tables are
  /// dropped from the entity vocabulary (paper: "removing those that appear
  /// only once" => 2).
  int entity_min_count = 2;
  text::WordPieceOptions wordpiece;
  uint64_t seed = 42;
};

/// The shared data bundle every task and bench builds on. Move-only.
struct TurlContext {
  kb::SyntheticKb world;
  data::Corpus corpus;
  text::Vocab vocab;
  data::EntityVocab entity_vocab;

  TurlContext() = default;
  TurlContext(TurlContext&&) = default;
  TurlContext& operator=(TurlContext&&) = default;
  TurlContext(const TurlContext&) = delete;
  TurlContext& operator=(const TurlContext&) = delete;

  /// Builds a tokenizer over this context's vocabulary. The returned value
  /// holds a pointer to `vocab`; do not move the context while it is alive.
  text::WordPieceTokenizer MakeTokenizer() const {
    return text::WordPieceTokenizer(&vocab);
  }
};

/// Generates the KB, the corpus, and both vocabularies deterministically
/// from `config.seed`.
TurlContext BuildContext(const ContextConfig& config = ContextConfig());

}  // namespace core
}  // namespace turl

#endif  // TURL_CORE_CONTEXT_H_
