#include "core/candidates.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace turl {
namespace core {

namespace {
const std::vector<int> kEmptyList;
}  // namespace

int64_t CooccurrenceIndex::PairKey(int a, int b) {
  if (a > b) std::swap(a, b);
  return (static_cast<int64_t>(a) << 32) | static_cast<uint32_t>(b);
}

CooccurrenceIndex CooccurrenceIndex::Build(
    const data::Corpus& corpus, const std::vector<size_t>& table_indices,
    const data::EntityVocab& entity_vocab, int max_per_entity) {
  CooccurrenceIndex index;
  for (size_t idx : table_indices) {
    const data::Table& t = corpus.tables[idx];
    // Distinct in-vocabulary model ids in this table (topic included).
    std::vector<int> ids;
    auto add = [&](kb::EntityId e) {
      const int m = entity_vocab.Id(e);
      if (m >= data::EntityVocab::kNumSpecial &&
          std::find(ids.begin(), ids.end(), m) == ids.end()) {
        ids.push_back(m);
      }
    };
    if (t.topic_entity != kb::kInvalidEntity) add(t.topic_entity);
    for (const auto& col : t.columns) {
      if (!col.is_entity_column) continue;
      for (const auto& cell : col.cells) {
        if (cell.linked()) add(cell.entity);
      }
    }
    for (int a : ids) ++index.table_freq_[a];
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = i + 1; j < ids.size(); ++j) {
        ++index.pair_counts_[PairKey(ids[i], ids[j])];
      }
    }
  }

  // Materialize per-entity lists sorted by co-occurrence count.
  std::unordered_map<int, std::vector<std::pair<int, int64_t>>> partners;
  for (const auto& [key, count] : index.pair_counts_) {
    const int a = static_cast<int>(key >> 32);
    const int b = static_cast<int>(key & 0xffffffff);
    partners[a].emplace_back(b, count);
    partners[b].emplace_back(a, count);
  }
  for (auto& [id, list] : partners) {
    std::sort(list.begin(), list.end(), [](const auto& x, const auto& y) {
      if (x.second != y.second) return x.second > y.second;
      return x.first < y.first;
    });
    if (static_cast<int>(list.size()) > max_per_entity) {
      list.resize(static_cast<size_t>(max_per_entity));
    }
    std::vector<int> ids;
    ids.reserve(list.size());
    for (const auto& [partner, count] : list) ids.push_back(partner);
    index.lists_.emplace(id, std::move(ids));
  }
  return index;
}

const std::vector<int>& CooccurrenceIndex::Cooccurring(int model_id) const {
  auto it = lists_.find(model_id);
  return it == lists_.end() ? kEmptyList : it->second;
}

int64_t CooccurrenceIndex::Count(int a, int b) const {
  auto it = pair_counts_.find(PairKey(a, b));
  return it == pair_counts_.end() ? 0 : it->second;
}

int64_t CooccurrenceIndex::TableFrequency(int model_id) const {
  auto it = table_freq_.find(model_id);
  return it == table_freq_.end() ? 0 : it->second;
}

std::vector<int> BuildMerCandidates(const EncodedTable& clean,
                                    const CooccurrenceIndex& cooc,
                                    int entity_vocab_size, int max_candidates,
                                    int min_random, Rng* rng) {
  TURL_CHECK_GT(max_candidates, 0);
  std::vector<int> candidates;
  std::unordered_set<int> seen;
  auto add = [&](int id) {
    if (id < data::EntityVocab::kNumSpecial) return;
    if (seen.insert(id).second) candidates.push_back(id);
  };

  // (1) In-table entities — always first so the cap never drops targets.
  for (int id : clean.entity_ids) add(id);
  const size_t in_table = candidates.size();

  // (2) Co-occurring entities, round-robin over in-table anchors.
  for (size_t i = 0; i < in_table; ++i) {
    for (int partner : cooc.Cooccurring(candidates[i])) {
      if (static_cast<int>(candidates.size()) >=
          max_candidates - min_random) {
        break;
      }
      add(partner);
    }
  }

  // (3) Random negatives up to the cap.
  const int room = max_candidates - static_cast<int>(candidates.size());
  const int want_random = std::max(std::min(min_random, room), 0);
  int attempts = 0;
  int added = 0;
  while (added < want_random && attempts < want_random * 20) {
    ++attempts;
    const int id =
        data::EntityVocab::kNumSpecial +
        static_cast<int>(rng->Uniform(static_cast<uint64_t>(
            entity_vocab_size - data::EntityVocab::kNumSpecial)));
    if (seen.insert(id).second) {
      candidates.push_back(id);
      ++added;
    }
  }
  return candidates;
}

}  // namespace core
}  // namespace turl
