#include "core/masking.h"

#include "data/entity_vocab.h"
#include "text/vocab.h"
#include "util/logging.h"

namespace turl {
namespace core {

namespace {

/// First non-special word id; random replacement tokens are drawn at or
/// above this.
constexpr int kFirstRealToken = 5;

int RandomToken(int word_vocab_size, Rng* rng) {
  TURL_CHECK_GT(word_vocab_size, kFirstRealToken);
  return kFirstRealToken +
         static_cast<int>(rng->Uniform(
             static_cast<uint64_t>(word_vocab_size - kFirstRealToken)));
}

int RandomEntity(int entity_vocab_size, Rng* rng) {
  TURL_CHECK_GT(entity_vocab_size, data::EntityVocab::kNumSpecial);
  return data::EntityVocab::kNumSpecial +
         static_cast<int>(rng->Uniform(static_cast<uint64_t>(
             entity_vocab_size - data::EntityVocab::kNumSpecial)));
}

}  // namespace

std::vector<int> MaskableEntityPositions(const EncodedTable& table) {
  std::vector<int> out;
  for (int i = 0; i < table.num_entities(); ++i) {
    if (table.entity_role[size_t(i)] == kRoleTopic) continue;
    if (table.entity_ids[size_t(i)] < data::EntityVocab::kNumSpecial) continue;
    out.push_back(i);
  }
  return out;
}

void MaskEntityCell(EncodedTable* table, int entity_index, bool mask_mention) {
  TURL_CHECK_GE(entity_index, 0);
  TURL_CHECK_LT(entity_index, table->num_entities());
  table->entity_ids[size_t(entity_index)] = data::EntityVocab::kMaskEntity;
  if (mask_mention) {
    table->entity_mentions[size_t(entity_index)] = {text::kMaskId};
  }
}

PretrainInstance MakePretrainInstance(const EncodedTable& clean,
                                      const TurlConfig& config,
                                      int word_vocab_size,
                                      int entity_vocab_size, Rng* rng) {
  PretrainInstance inst;
  inst.input = clean;
  inst.mlm_targets.assign(static_cast<size_t>(clean.num_tokens()), -1);
  inst.mer_targets.assign(static_cast<size_t>(clean.num_entities()), -1);

  // ---- MLM over token positions (§4.4, BERT percentages at ratio 0.2). --
  for (int i = 0; i < clean.num_tokens(); ++i) {
    if (!rng->Bernoulli(config.mlm_ratio)) continue;
    inst.mlm_targets[size_t(i)] = clean.token_ids[size_t(i)];
    const double roll = rng->UniformDouble();
    if (roll < 0.8) {
      inst.input.token_ids[size_t(i)] = text::kMaskId;
    } else if (roll < 0.9) {
      inst.input.token_ids[size_t(i)] = RandomToken(word_vocab_size, rng);
    }  // else: keep unchanged.
  }

  // ---- MER over maskable entity cells (§4.4 percentages at ratio 0.6). --
  for (int i : MaskableEntityPositions(clean)) {
    if (!rng->Bernoulli(config.mer_ratio)) continue;
    inst.mer_targets[size_t(i)] = clean.entity_ids[size_t(i)];
    const double roll = rng->UniformDouble();
    if (roll < 0.1) {
      // Keep both e^m and e^e unchanged.
    } else if (roll < 0.1 + 0.63) {
      // Mask both mention and entity id.
      MaskEntityCell(&inst.input, i, /*mask_mention=*/true);
    } else {
      // Keep the mention; mask the entity id (10% of these get a random
      // entity instead of [MASK_ENT]).
      if (rng->Bernoulli(0.1)) {
        inst.input.entity_ids[size_t(i)] = RandomEntity(entity_vocab_size, rng);
      } else {
        MaskEntityCell(&inst.input, i, /*mask_mention=*/false);
      }
    }
  }

  return inst;
}

}  // namespace core
}  // namespace turl
