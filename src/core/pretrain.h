#ifndef TURL_CORE_PRETRAIN_H_
#define TURL_CORE_PRETRAIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/candidates.h"
#include "core/context.h"
#include "core/masking.h"
#include "core/model.h"
#include "nn/optim.h"
#include "obs/telemetry.h"

namespace turl {
namespace core {

/// Outcome of a pre-training run.
struct PretrainResult {
  /// (step, validation object-entity-prediction accuracy) pairs collected at
  /// every periodic evaluation — the series plotted in Figures 7a/7b.
  std::vector<std::pair<int64_t, double>> eval_curve;
  double final_accuracy = 0.0;
  int64_t steps = 0;
  double final_loss = 0.0;
};

/// Drives unsupervised pre-training of a TurlModel with the joint MLM + MER
/// objective (Eqn. 7) over the training split, and implements the §6.8
/// object-entity-prediction validation metric.
class Pretrainer {
 public:
  struct Options {
    /// Training epochs; -1 uses the model config's pretrain_epochs.
    int epochs = -1;
    /// Evaluate on validation every this many steps (0 = only at the end).
    int64_t eval_every = 0;
    /// Validation subsampling caps (evaluation is O(tables * cells) full
    /// forward passes).
    int max_eval_tables = 60;
    int max_eval_cells_per_table = 3;
    uint64_t seed = 7;
    /// Cap on training tables per epoch (0 = all) for quick runs.
    int max_train_tables = 0;
    /// Extra telemetry sink for this run's TrainRecords; the global
    /// obs::TelemetryHub (env-configured JSONL/stderr sinks) always receives
    /// them. Records are emitted at every eval step and at the end of
    /// training; set telemetry_every to also emit between evals.
    obs::MetricsSink* sink = nullptr;
    /// Also emit a loss/throughput record every this many steps (0 = only at
    /// eval steps).
    int64_t telemetry_every = 0;

    /// Crash-safe checkpointing (turl::ckpt). Non-empty enables it: periodic
    /// v2 checkpoints land in this directory with keep-last-N retention and
    /// a LATEST pointer, and — with `resume` — a killed run restarts from
    /// the newest valid one bit-identically to the uninterrupted run.
    std::string ckpt_dir;
    /// Save a checkpoint every this many optimizer steps (0 = never).
    int64_t save_every = 0;
    /// Checkpoints retained in ckpt_dir; older ones are pruned after a save.
    int keep_last = 3;
    /// Resume from the newest valid checkpoint in ckpt_dir when one exists.
    bool resume = true;
    /// Hard-stop once the global step reaches this, *without* saving or
    /// running the final evaluation — simulates a mid-run kill for resume
    /// tests (0 = run to completion).
    int64_t max_steps = 0;

    /// Data-parallel gradient accumulation: each optimizer step accumulates
    /// gradients over this many tables, processed as independent shards
    /// (concurrent on the TURL_TRAIN_THREADS pool when it is > 1; inline
    /// otherwise) whose per-shard gradients are reduced into the parameter
    /// grads in fixed ascending shard order — bit-identical at any thread
    /// count. Shard RNG streams derive from (seed, step, shard), never from
    /// the schedule. 1 = the classic one-table-per-step loop, byte-for-byte
    /// the historical behavior.
    int grad_accum_tables = 1;
  };

  /// The model and context must outlive the pretrainer. Encodes all
  /// training tables once and builds the co-occurrence index.
  Pretrainer(TurlModel* model, const TurlContext* ctx);

  /// Runs pre-training; deterministic for a fixed (model seed, opts.seed).
  PretrainResult Train(const Options& options);

  /// §6.8 metric: for sampled held-out validation tables, mask each chosen
  /// object-column entity cell (both e^e and e^m), recover it against the
  /// table's MER candidate set, and report top-1 accuracy.
  double EvaluateObjectPrediction(int max_tables, int max_cells_per_table,
                                  Rng* rng) const;

  const CooccurrenceIndex& cooccurrence() const { return cooc_; }

 private:
  /// Forward + loss for one masked instance. Returns an undefined tensor if
  /// the instance has no prediction targets. When the MLM (resp. MER) term
  /// is present its scalar value is written to *mlm_item (resp. *mer_item);
  /// the out-params are untouched otherwise.
  nn::Tensor InstanceLoss(const PretrainInstance& instance,
                          const EncodedTable& clean, Rng* rng,
                          double* mlm_item, double* mer_item) const;

  TurlModel* model_;
  const TurlContext* ctx_;
  std::vector<EncodedTable> train_encoded_;
  std::vector<EncodedTable> valid_encoded_;
  CooccurrenceIndex cooc_;
};

}  // namespace core
}  // namespace turl

#endif  // TURL_CORE_PRETRAIN_H_
