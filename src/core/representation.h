#ifndef TURL_CORE_REPRESENTATION_H_
#define TURL_CORE_REPRESENTATION_H_

#include <string>
#include <vector>

#include "core/context.h"
#include "core/model.h"

namespace turl {
namespace core {

/// Deep contextualized representations of one table — the artifact
/// Definition 2.1 says TURL learns: a vector per metadata token and per
/// entity cell, contextualized by the whole (visible part of the) table.
/// This is the public "embedding extraction" API downstream users build
/// custom tasks on.
struct TableRepresentation {
  int64_t d_model = 0;

  /// Per-token vectors, parallel to tokens (caption first, then headers).
  std::vector<std::vector<float>> token_vectors;
  /// The token strings, for inspection/debugging.
  std::vector<std::string> tokens;

  /// Per-entity-cell vectors, parallel to the entity part of the encoding
  /// (topic entity first when present, then cells row-major).
  std::vector<std::vector<float>> entity_vectors;
  /// Structural coordinates of each entity vector (row/column; -1 = topic).
  std::vector<int> entity_rows;
  std::vector<int> entity_columns;
  /// Ground-truth KB ids (kInvalidEntity when unlinked).
  std::vector<kb::EntityId> entity_kb_ids;

  /// Eqn. 9 column aggregates: [mean header token; mean entity cell] per
  /// table column, 2*d_model wide (zeros for halves with no elements).
  std::vector<std::vector<float>> column_vectors;
};

/// Runs the (pre-trained) model over `table` and extracts all vectors.
/// Deterministic (evaluation mode, no dropout).
TableRepresentation ExtractRepresentation(const TurlModel& model,
                                          const TurlContext& ctx,
                                          const data::Table& table,
                                          const EncodeOptions& options =
                                              EncodeOptions());

/// Cosine similarity between two representation vectors (0 for empty/zero).
float RepresentationSimilarity(const std::vector<float>& a,
                               const std::vector<float>& b);

/// Convenience: the entity vector at (row, column), or an empty vector when
/// that cell is not part of the representation.
std::vector<float> EntityVectorAt(const TableRepresentation& rep, int row,
                                  int column);

}  // namespace core
}  // namespace turl

#endif  // TURL_CORE_REPRESENTATION_H_
