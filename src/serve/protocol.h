#ifndef TURL_SERVE_PROTOCOL_H_
#define TURL_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/table_encoding.h"
#include "rt/request.h"
#include "util/status.h"

namespace turl {
namespace serve {

/// Length-prefixed binary protocol of the turl::serve front-end. One
/// connection carries any number of request/response frame pairs, strictly
/// in order; a malformed frame fails the connection cleanly (the server
/// answers kBadRequest when it can still attribute a request id, then
/// closes). All integers are little-endian.
///
/// Request frame (kRequestHeaderBytes, then payload):
///   u32 magic        "TURL" on the wire (0x4C525554)
///   u16 version      kVersion
///   u16 task         rt::TaskKind wire id
///   u64 request_id   echoed back verbatim on the response
///   u32 deadline_ms  relative to server receipt; 0 = already expired,
///                    kNoDeadline = none
///   u32 payload_len  bytes that follow (validated against the configured
///                    cap BEFORE any allocation)
///   payload          serialized core::EncodedTable (see below)
///
/// Request payload — the table, parallel-array for parallel-array:
///   u32 num_tokens, then i32[num_tokens] x {ids, segment, position, column}
///   u32 num_entities, then i32[num_entities] x {ids, role, row, column}
///   per entity: u32 mention_len + i32[mention_len]
/// Ground-truth kb ids never cross the wire; the decoder fills
/// kb::kInvalidEntity. Every claimed element count is clamped against the
/// bytes actually remaining before anything is allocated (the in-memory
/// mirror of BinaryReader's length-vs-filesize clamps).
///
/// Response frame (kResponseHeaderBytes, then payload):
///   u32 magic, u16 version
///   u16 status       rt::ResponseStatus wire id
///   u64 request_id
///   u32 payload_len
///   payload          kOk: u32 rows, u32 cols, f32[rows*cols] row-major
///                    otherwise: u32 len + len bytes of detail message

inline constexpr uint32_t kMagic = 0x4C525554u;  // "TURL"
inline constexpr uint16_t kVersion = 1;
/// deadline_ms sentinel: the request has no deadline.
inline constexpr uint32_t kNoDeadline = 0xFFFFFFFFu;
inline constexpr size_t kRequestHeaderBytes = 24;
inline constexpr size_t kResponseHeaderBytes = 20;
/// Default cap on a frame's payload; a length prefix beyond the cap is
/// rejected before the claimed size is ever allocated.
inline constexpr uint32_t kDefaultMaxPayloadBytes = 8u << 20;

struct RequestHeader {
  rt::TaskKind task = rt::TaskKind::kEncode;
  uint64_t request_id = 0;
  uint32_t deadline_ms = kNoDeadline;
  uint32_t payload_len = 0;
};

/// Validates a request header (exactly kRequestHeaderBytes at `data`):
/// magic, version, known task id, payload_len <= max_payload_bytes. Nothing
/// is allocated on failure.
Status ParseRequestHeader(const uint8_t* data, uint32_t max_payload_bytes,
                          RequestHeader* out);

/// Decodes a request payload into `out`. Fails (without large allocations)
/// on truncated arrays, trailing garbage, or counts that cannot fit in
/// `len` bytes.
Status DecodeRequestPayload(const uint8_t* data, size_t len,
                            core::EncodedTable* out);

/// Serializes one complete request frame (header + payload).
std::string EncodeRequestFrame(const core::EncodedTable& table,
                               rt::TaskKind task, uint64_t request_id,
                               uint32_t deadline_ms = kNoDeadline);

struct ResponseHeader {
  rt::ResponseStatus status = rt::ResponseStatus::kOk;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

Status ParseResponseHeader(const uint8_t* data, uint32_t max_payload_bytes,
                           ResponseHeader* out);

/// One decoded response: the hidden states for kOk, a detail message
/// otherwise.
struct WireResponse {
  rt::ResponseStatus status = rt::ResponseStatus::kOk;
  uint64_t request_id = 0;
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<float> hidden;  ///< Row-major [rows, cols]; kOk only.
  std::string message;        ///< Short detail for non-kOk statuses.
};

/// Serializes one complete response frame (header + payload).
std::string EncodeResponseFrame(const WireResponse& response);

/// Decodes a response payload into `inout` (whose status/request_id came
/// from the parsed header).
Status DecodeResponsePayload(const uint8_t* data, size_t len,
                             WireResponse* inout);

/// Reads exactly `len` bytes, retrying short reads and EINTR. False on EOF,
/// error or timeout (SO_RCVTIMEO). With len == 0, trivially true.
bool ReadFull(int fd, void* buf, size_t len);

}  // namespace serve
}  // namespace turl

#endif  // TURL_SERVE_PROTOCOL_H_
