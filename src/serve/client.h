#ifndef TURL_SERVE_CLIENT_H_
#define TURL_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "core/table_encoding.h"
#include "rt/request.h"
#include "serve/protocol.h"
#include "util/status.h"

namespace turl {
namespace serve {

/// Blocking client for the serve protocol: one connection, any number of
/// Call()s in order. This is the reference wire speaker — the fuzz tests
/// and bench_serve both drive a server through it — and deliberately small:
/// no pipelining, no reconnect policy.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects to host:port (dotted-quad hosts, e.g. "127.0.0.1"). The
  /// timeout covers connect and every later frame read (SO_RCVTIMEO).
  Status Connect(const std::string& host, int port, int timeout_ms = 5000);

  /// Sends one request frame and blocks for its response. A non-kOk wire
  /// status (OVERLOADED, DEADLINE_EXCEEDED, ...) is a *successful* call —
  /// it lands in out->status; the returned Status is non-OK only for
  /// transport or framing failures, after which the connection is dead.
  /// `deadline_ms` is relative to server receipt (0 = already expired,
  /// kNoDeadline = none).
  Status Call(const core::EncodedTable& table, rt::TaskKind task,
              uint64_t request_id, WireResponse* out,
              uint32_t deadline_ms = kNoDeadline);

  /// Sends raw bytes as-is — the malformed-frame path for protocol tests.
  Status SendRaw(const std::string& bytes);

  /// Reads one response frame (header + payload) into `out`.
  Status ReadResponse(WireResponse* out);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace serve
}  // namespace turl

#endif  // TURL_SERVE_CLIENT_H_
