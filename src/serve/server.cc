#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>

#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/server/http.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace turl {
namespace serve {

namespace {

obs::Counter* AcceptedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("serve.accepted");
  return c;
}

obs::Counter* RequestCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("serve.requests");
  return c;
}

obs::Counter* ShedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Get().GetCounter("serve.shed");
  return c;
}

obs::Counter* DeadlineMissedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("serve.deadline_missed");
  return c;
}

obs::Counter* BadFrameCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("serve.bad_frames");
  return c;
}

obs::Gauge* InflightGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Get().GetGauge("serve.inflight");
  return g;
}

/// Per-task end-to-end latency (frame read to reply written), one family
/// per task so a slow ranking head cannot hide inside the encode p99. The
/// registry lookup is mutexed but trivial next to an inference.
obs::Histogram* LatencyHistogram(rt::TaskKind task) {
  return obs::MetricsRegistry::Get().GetHistogram(
      std::string("serve.latency_ms.") + rt::TaskKindName(task));
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

}  // namespace

ServeOptions ServeServer::OptionsFromEnv() {
  ServeOptions options;
  options.port = EnvInt("TURL_SERVE_PORT", 0);
  options.num_replicas = EnvInt("TURL_SERVE_REPLICAS", 2);
  return options;
}

ServeServer::ServeServer(const core::TurlModel& model, ServeOptions options)
    : model_(model), options_(std::move(options)) {
  TURL_CHECK_GE(options_.port, 0);
  if (options_.num_replicas <= 0) {
    options_.num_replicas = EnvInt("TURL_SERVE_REPLICAS", 2);
    if (options_.num_replicas <= 0) options_.num_replicas = 2;
  }
  TURL_CHECK_GT(options_.num_io_workers, 0);
  TURL_CHECK_GT(options_.max_queued_connections, 0);
  TURL_CHECK_GE(options_.max_inflight_requests, 0);
  TURL_CHECK_GT(options_.pump_interval_ms, 0);
}

ServeServer::~ServeServer() { Stop(); }

Status ServeServer::Start() {
  if (running()) return Status::FailedPrecondition("server already running");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket: " + std::string(strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::IoError("bind " + options_.bind_address + ":" +
                                     std::to_string(options_.port) + ": " +
                                     strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    const Status s = Status::IoError("listen: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status s =
        Status::IoError("getsockname: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);

  // Warm the replicas before the listener goes live: session construction
  // builds each replica's thread pool and scratch arenas, so the first
  // request pays inference cost only.
  replicas_.clear();
  for (int i = 0; i < options_.num_replicas; ++i) {
    auto replica = std::make_unique<Replica>();
    replica->session =
        std::make_unique<rt::InferenceSession>(model_, options_.session);
    replica->scheduler = std::make_unique<rt::BatchScheduler>(
        replica->session.get(), options_.batch);
    replicas_.push_back(std::move(replica));
  }

  stopping_.store(false, std::memory_order_release);
  hard_stop_.store(false, std::memory_order_release);
  pump_stop_.store(false, std::memory_order_release);
  exited_workers_ = 0;
  pending_.clear();
  in_flight_fds_.assign(static_cast<size_t>(options_.num_io_workers), -1);
  inflight_.store(0, std::memory_order_relaxed);
  InflightGauge()->Set(0.0);
  running_.store(true, std::memory_order_release);

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  pump_thread_ = std::thread([this] { PumpLoop(); });
  workers_.reserve(static_cast<size_t>(options_.num_io_workers));
  for (int i = 0; i < options_.num_io_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }

  // Readiness flips on only now: listener bound, replicas warm, threads up.
  readiness_.emplace(
      "serve.listener", [this](std::string* detail) {
        const bool ready = running_.load(std::memory_order_acquire) &&
                           !stopping_.load(std::memory_order_acquire);
        *detail = "port=" + std::to_string(port_) +
                  " replicas=" + std::to_string(replicas_.size()) +
                  " inflight=" + std::to_string(inflight());
        return ready;
      });

  // SLO targets live in the global watchdog for this Start/Stop cycle; each
  // is a `slo.<name>` probe on /healthz that burns when its window degrades.
  std::vector<obs::SloTarget> targets = options_.slo_targets;
  if (targets.empty()) {
    obs::SloTarget availability;
    availability.name = "serve.availability";
    availability.horizon_s = 60;
    availability.min_requests = 20;
    availability.min_availability = 0.99;
    targets.push_back(availability);
    obs::SloTarget deadline;
    deadline.name = "serve.deadline";
    deadline.horizon_s = 60;
    deadline.min_requests = 20;
    deadline.max_deadline_miss_rate = 0.05;
    targets.push_back(deadline);
  }
  for (obs::SloTarget& target : targets) {
    slo_target_ids_.push_back(
        obs::SloWatchdog::Get().AddTarget(std::move(target)));
  }
  return Status::OK();
}

void ServeServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // /healthz goes not-ready before the listener dies, so an orchestrator
  // probing readiness stops routing before connections start failing.
  readiness_.reset();
  for (int id : slo_target_ids_) obs::SloWatchdog::Get().RemoveTarget(id);
  slo_target_ids_.clear();

  // 1. Stop accepting. The accept thread polls stopping_ every 100ms.
  stopping_.store(true, std::memory_order_release);
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Graceful drain: workers notice stopping_ at their next idle poll,
  // finish the frame in flight (the pump thread is still alive, so every
  // submitted request gets its response) and exit.
  work_cv_.notify_all();
  bool drained;
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained = drained_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_deadline_ms), [this] {
          return exited_workers_ == static_cast<int>(workers_.size());
        });
  }

  // 3. Hard deadline: shut down in-flight sockets so blocked reads/writes
  // fail immediately, and tell workers to close the rest unserved.
  if (!drained) {
    hard_stop_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      for (int fd : in_flight_fds_) {
        if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
      }
    }
    work_cv_.notify_all();
  }
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  // Anything still queued was never handed to a worker.
  for (int fd : pending_) ::close(fd);
  pending_.clear();

  // The pump stops only after every worker is gone — a worker blocked on
  // its future needs the pump to flush that replica. Final Flush()es run in
  // the scheduler destructors on empty queues.
  pump_stop_.store(true, std::memory_order_release);
  pump_thread_.join();
  replicas_.clear();
  inflight_.store(0, std::memory_order_relaxed);
  InflightGauge()->Set(0.0);
}

void ServeServer::AcceptLoop() {
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return;
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r <= 0) continue;  // Timeout or EINTR — re-check stopping_.
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    AcceptedCounter()->Inc();

    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (static_cast<int>(pending_.size()) >= options_.max_queued_connections) {
        shed = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      // Backpressure at the door: answer OVERLOADED right here rather than
      // queue unboundedly — the serve-protocol analogue of the obs server's
      // 503 path.
      ShedCounter()->Inc();
      WireResponse response;
      response.status = rt::ResponseStatus::kOverloaded;
      response.message = "overloaded: connection queue full";
      const std::string wire = EncodeResponseFrame(response);
      obs::server::WriteAll(fd, wire.data(), wire.size());
      // Half-close, then drain what the client is mid-send on: closing with
      // unread bytes RSTs the connection, which can destroy the OVERLOADED
      // frame before the client reads it. The drain is bounded (bytes and
      // time) so a hostile peer cannot pin the accept thread.
      ::shutdown(fd, SHUT_WR);
      struct timeval tv;
      tv.tv_sec = 0;
      tv.tv_usec = 500 * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      char drain[1024];
      for (int i = 0; i < 64 && ::recv(fd, drain, sizeof(drain), 0) > 0; ++i) {
      }
      ::close(fd);
    } else {
      work_cv_.notify_one();
    }
  }
}

void ServeServer::WorkerLoop(int worker_index) {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) break;  // Stopping and fully drained.
      fd = pending_.front();
      pending_.pop_front();
    }
    if (hard_stop_.load(std::memory_order_acquire)) {
      ::close(fd);  // Deadline lapsed: close unserved.
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      in_flight_fds_[static_cast<size_t>(worker_index)] = fd;
    }
    ServeConnection(fd);
    {
      // Clear the slot before close() so the hard-deadline shutdown() can
      // never hit a recycled fd.
      std::lock_guard<std::mutex> lock(conn_mu_);
      in_flight_fds_[static_cast<size_t>(worker_index)] = -1;
    }
    ::close(fd);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++exited_workers_;
  }
  drained_cv_.notify_all();
}

void ServeServer::PumpLoop() {
  // The pump doubles as the SLO window tick: roughly once per bucket second
  // it latches burn edges (and their one-shot telemetry). /healthz stays
  // correct without the tick — probes re-evaluate on every scrape.
  double since_tick_ms = 0.0;
  while (!pump_stop_.load(std::memory_order_acquire)) {
    for (auto& replica : replicas_) {
      std::lock_guard<std::mutex> lock(replica->mu);
      replica->scheduler->Pump();
    }
    since_tick_ms += options_.pump_interval_ms;
    if (since_tick_ms >= 1000.0) {
      since_tick_ms = 0.0;
      obs::SloWatchdog::Get().Tick();
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.pump_interval_ms));
  }
}

void ServeServer::ServeConnection(int fd) {
  struct timeval tv;
  tv.tv_sec = options_.read_timeout_ms / 1000;
  tv.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  // One frame at a time until EOF, error, malformed frame, or shutdown. The
  // idle poll between frames is what bounds how long a quiet connection can
  // delay Stop().
  for (;;) {
    if (hard_stop_.load(std::memory_order_acquire)) return;
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int r = ::poll(&pfd, 1, options_.idle_poll_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (r == 0) {
      // Idle tick. A connection with no frame in flight owes nothing at
      // shutdown — drop it so the drain finishes fast.
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;
    }
    if (pfd.revents & (POLLERR | POLLNVAL)) return;
    if (!ServeOneFrame(fd)) return;
  }
}

size_t ServeServer::PickReplica(int64_t /*cost*/) {
  // Least-loaded by queued token cost; ties go round-robin so equal-load
  // replicas share work instead of replica 0 absorbing every burst.
  const size_t n = replicas_.size();
  const size_t start =
      rr_counter_.fetch_add(1, std::memory_order_relaxed) % n;
  size_t best = start;
  int64_t best_cost =
      replicas_[start]->inflight_cost.load(std::memory_order_relaxed);
  for (size_t off = 1; off < n; ++off) {
    const size_t i = (start + off) % n;
    const int64_t c =
        replicas_[i]->inflight_cost.load(std::memory_order_relaxed);
    if (c < best_cost) {
      best = i;
      best_cost = c;
    }
  }
  return best;
}

bool ServeServer::WriteResponse(int fd, const WireResponse& response,
                                int64_t* wire_bytes) {
  const std::string wire = EncodeResponseFrame(response);
  if (wire_bytes != nullptr) *wire_bytes = static_cast<int64_t>(wire.size());
  return obs::server::WriteAll(fd, wire.data(), wire.size());
}

bool ServeServer::ServeOneFrame(int fd) {
  uint8_t header[kRequestHeaderBytes];
  if (!ReadFull(fd, header, sizeof(header))) {
    return false;  // EOF between frames, or timeout/garbage mid-header.
  }
  const double start_ms = rt::BatchScheduler::NowMs();

  // The request's wide event, filled in as the frame progresses; every
  // terminal path below stamps a status and emits exactly one event (the
  // scheduler stays quiet — caller_owns_event).
  obs::WideEvent event;
  event.origin = "serve";
  event.task = "unknown";  // Until the header names a valid task.
  event.bytes_in = static_cast<int64_t>(sizeof(header));
  const auto finish_event = [&](rt::ResponseStatus status) {
    if (!obs::EventLog::Enabled() && !obs::SliEngine::Enabled()) return;
    event.status = rt::ResponseStatusName(status);
    event.end_ms = rt::BatchScheduler::NowMs();
    event.total_us = (event.end_ms - start_ms) * 1000.0;
    if (obs::EventLog::Enabled()) obs::EventLog::Get().Append(event);
    obs::SliEngine::Get().Record(event.task,
                                 obs::OutcomeFromStatusName(event.status),
                                 event.total_us / 1000.0, event.trace_id);
  };

  RequestHeader request_header;
  const Status parsed =
      ParseRequestHeader(header, options_.max_payload_bytes, &request_header);
  if (!parsed.ok()) {
    // Bad magic/version/task or an oversized length prefix: answer what we
    // can and fail the connection — nothing was allocated for the claimed
    // payload, and resynchronizing a framed stream after garbage is
    // guesswork.
    BadFrameCounter()->Inc();
    WireResponse response;
    response.status = rt::ResponseStatus::kBadRequest;
    response.message = parsed.ToString();
    WriteResponse(fd, response, &event.bytes_out);
    finish_event(rt::ResponseStatus::kBadRequest);
    return false;
  }
  event.task = rt::TaskKindName(request_header.task);
  event.request_id = request_header.request_id;

  std::vector<uint8_t> payload(request_header.payload_len);
  if (request_header.payload_len > 0 &&
      !ReadFull(fd, payload.data(), payload.size())) {
    BadFrameCounter()->Inc();
    finish_event(rt::ResponseStatus::kBadRequest);
    return false;  // Truncated payload: peer hung up or stalled past timeout.
  }
  event.bytes_in += static_cast<int64_t>(payload.size());

  WireResponse response;
  response.request_id = request_header.request_id;

  core::EncodedTable table;
  const Status decoded =
      DecodeRequestPayload(payload.data(), payload.size(), &table);
  if (!decoded.ok() || table.total() <= 0) {
    BadFrameCounter()->Inc();
    response.status = rt::ResponseStatus::kBadRequest;
    response.message = decoded.ok() ? "empty table" : decoded.ToString();
    WriteResponse(fd, response, &event.bytes_out);
    finish_event(rt::ResponseStatus::kBadRequest);
    return false;
  }
  RequestCounter()->Inc();

  if (stopping_.load(std::memory_order_acquire)) {
    // Admitted connections finish their in-flight frame during drain, but a
    // *new* frame after Stop() began is refused — that is what makes the
    // drain converge.
    response.status = rt::ResponseStatus::kShuttingDown;
    response.message = "server draining";
    WriteResponse(fd, response, &event.bytes_out);
    finish_event(rt::ResponseStatus::kShuttingDown);
    return false;
  }

  // Admission control: a bounded number of decoded requests may be queued
  // across the replicas; beyond that we shed *this request* (the connection
  // survives — the client may back off and retry).
  if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
      options_.max_inflight_requests) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    ShedCounter()->Inc();
    response.status = rt::ResponseStatus::kOverloaded;
    response.message = "overloaded: inflight request cap";
    const bool written = WriteResponse(fd, response, &event.bytes_out);
    finish_event(rt::ResponseStatus::kOverloaded);
    return written;
  }
  InflightGauge()->Set(
      static_cast<double>(inflight_.load(std::memory_order_relaxed)));

  // Wire deadline (relative to receipt) -> absolute scheduler-clock
  // deadline. 0 means "already expired": enforced right here, the cheapest
  // of the three enforcement points.
  double deadline_ms = 0.0;
  if (request_header.deadline_ms != kNoDeadline) {
    event.deadline_budget_ms = request_header.deadline_ms;
    deadline_ms = rt::BatchScheduler::NowMs() + request_header.deadline_ms;
    if (request_header.deadline_ms == 0) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      DeadlineMissedCounter()->Inc();
      response.status = rt::ResponseStatus::kDeadlineExceeded;
      response.message = "deadline expired on arrival";
      const bool written = WriteResponse(fd, response, &event.bytes_out);
      finish_event(rt::ResponseStatus::kDeadlineExceeded);
      return written;
    }
  }

  // Root span for the serve pipeline; the scheduler's stage spans (queue
  // wait, batch assembly, encode) nest under it via the request context.
  obs::ActiveSpan root;
  rt::Request request;
  request.caller_owns_trace = true;
  // The serve layer reports this request's wide event + SLI sample with the
  // wire context only it knows (byte sizes, replica, reply stage); the
  // scheduler must not double-count it.
  request.caller_owns_event = true;
  if (obs::Tracer::Enabled()) {
    root = obs::Tracer::Get().BeginTrace("serve.request");
    if (root.traced()) {
      root.Annotate("task", rt::TaskKindName(request_header.task));
      root.Annotate("total", table.total());
      request.trace = root.context();
      event.trace_id = root.context().trace_id;
    }
  }

  const int64_t cost = table.total();
  const size_t replica_index = PickReplica(cost);
  Replica& replica = *replicas_[replica_index];
  event.replica = static_cast<int32_t>(replica_index);
  replica.inflight_cost.fetch_add(cost, std::memory_order_relaxed);

  std::promise<rt::Response> promise;
  std::future<rt::Response> future = promise.get_future();
  request.table = &table;
  request.task = request_header.task;
  request.request_id = request_header.request_id;
  request.deadline_ms = deadline_ms;
  request.done = [&promise](rt::Response r) { promise.set_value(std::move(r)); };
  {
    // The replica mutex is BatchScheduler's external serialization: many IO
    // workers submit, the pump thread flushes, one at a time. An eager
    // (size/budget) flush runs inline here under the lock; the completion
    // then lands before wait() even starts.
    std::lock_guard<std::mutex> lock(replica.mu);
    replica.scheduler->Submit(std::move(request));
  }
  rt::Response result = future.get();

  replica.inflight_cost.fetch_sub(cost, std::memory_order_relaxed);
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  InflightGauge()->Set(
      static_cast<double>(inflight_.load(std::memory_order_relaxed)));

  // Deadline at reply: a result the scheduler produced in time can still be
  // late by the time this worker is ready to write it.
  if (result.status == rt::ResponseStatus::kOk && deadline_ms > 0.0 &&
      rt::BatchScheduler::NowMs() >= deadline_ms) {
    result.status = rt::ResponseStatus::kDeadlineExceeded;
  }

  if (result.status == rt::ResponseStatus::kOk) {
    response.status = rt::ResponseStatus::kOk;
    response.rows = result.hidden.dim(0);
    response.cols = result.hidden.dim(1);
    response.hidden = result.hidden.ToVector();
  } else {
    if (result.status == rt::ResponseStatus::kDeadlineExceeded) {
      DeadlineMissedCounter()->Inc();
    }
    response.status = result.status;
    response.message = ResponseStatusName(result.status);
  }
  event.queue_wait_us = result.queue_wait_ms * 1000.0;
  event.assembly_us = result.assembly_ms * 1000.0;
  event.encode_us = result.encode_ms * 1000.0;
  event.batch_size = result.batch_size;

  LatencyHistogram(request_header.task)
      ->Observe(rt::BatchScheduler::NowMs() - start_ms);
  const double reply_start_ms = rt::BatchScheduler::NowMs();
  const bool written = WriteResponse(fd, response, &event.bytes_out);
  event.reply_us = (rt::BatchScheduler::NowMs() - reply_start_ms) * 1000.0;
  finish_event(response.status);
  if (root.traced()) obs::Tracer::Get().End(&root);
  return written;
}

}  // namespace serve
}  // namespace turl
