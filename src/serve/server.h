#ifndef TURL_SERVE_SERVER_H_
#define TURL_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "obs/server/handlers.h"
#include "obs/slo.h"
#include "rt/batch_scheduler.h"
#include "rt/inference_session.h"
#include "rt/request.h"
#include "serve/protocol.h"
#include "util/status.h"

namespace turl {
namespace serve {

/// Knobs for a ServeServer.
struct ServeOptions {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Model inference serves user payloads, but the reproduction still binds
  /// loopback by default; widen deliberately.
  std::string bind_address = "127.0.0.1";
  /// Model replicas: each owns an InferenceSession + BatchScheduler behind
  /// its own mutex (the cuBERT BertM shape); requests go to the least
  /// loaded. 0 resolves through $TURL_SERVE_REPLICAS, then 2.
  int num_replicas = 0;
  /// IO workers; each owns one connection at a time, so this is also the
  /// concurrent-connection cap. Connections beyond workers + queue are shed.
  int num_io_workers = 8;
  /// Accepted-but-unserved connections held at once; beyond this the accept
  /// thread sheds the connection with an OVERLOADED frame.
  int max_queued_connections = 16;
  /// Admission control: decoded requests in flight (submitted, reply not
  /// yet written) across all replicas; beyond this a request is shed with
  /// OVERLOADED instead of queued — bounded queue, explicit shed, exactly
  /// the serve-protocol analogue of the obs server's 503 path.
  int max_inflight_requests = 64;
  /// SO_RCVTIMEO while reading a frame; a client that stalls mid-frame
  /// cannot pin a worker past this.
  int read_timeout_ms = 5000;
  /// Poll tick between frames on an idle connection; bounds how long a
  /// worker takes to notice Stop().
  int idle_poll_ms = 50;
  /// Cadence of the age-based flush thread driving BatchScheduler::Pump.
  int pump_interval_ms = 2;
  /// Stop(): grace period for in-flight requests before their sockets are
  /// forcibly shut down.
  int drain_deadline_ms = 2000;
  /// Request frames with a larger payload are rejected before allocation.
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Per-replica session knobs (threads per replica, scratch seed).
  rt::SessionOptions session;
  /// Per-replica micro-batching policy.
  rt::BatchSchedulerOptions batch;
  /// SLO targets registered with the global SloWatchdog for the server's
  /// lifetime (each becomes a `slo.<name>` probe on /healthz). Empty
  /// installs the defaults: serve.availability (availability >= 0.99) and
  /// serve.deadline (deadline-miss rate <= 0.05), both over the 1m window
  /// once it holds >= 20 requests.
  std::vector<obs::SloTarget> slo_targets;
};

/// The serving front-end of the inference runtime: a poll()-based accept
/// loop (the obs::server socket idioms) speaking the length-prefixed binary
/// protocol of serve/protocol.h, feeding rt::Request batches through N
/// model replicas.
///
/// Replica dispatch: each replica is one InferenceSession + BatchScheduler
/// pair guarded by a mutex; a decoded request goes to the replica with the
/// least in-flight token cost (ties broken round-robin), is submitted under
/// the replica lock, and micro-batches with whatever else that replica has
/// queued. A pump thread gives every replica an age-based flush so a lone
/// request never waits longer than batch.max_age_ms.
///
/// Admission control and backpressure: connections beyond the accept queue
/// are shed with an OVERLOADED frame at accept; decoded requests beyond
/// max_inflight_requests are shed with OVERLOADED before touching a
/// replica. The server never queues unboundedly and never blocks a reply
/// on shed work.
///
/// Deadlines: a frame's relative deadline becomes an absolute
/// rt::Request::deadline_ms. It is enforced three times — at admission
/// (already expired: kDeadlineExceeded without submitting), at dequeue
/// (BatchScheduler completes expired requests unencoded), and at reply (a
/// result that arrives too late is replaced by kDeadlineExceeded).
///
/// Shutdown mirrors obs::server::Stop(): (1) stop accepting, (2) graceful
/// drain — workers finish the frame in flight, replicas flush, every
/// accepted request is answered — bounded by drain_deadline_ms, (3) hard
/// deadline: remaining connection sockets are shut down. In-flight
/// requests admitted before Stop() are completed, not dropped.
class ServeServer {
 public:
  /// The model must outlive the server. Replicas share the const model (an
  /// inference forward never mutates it); each gets its own session pool.
  ServeServer(const core::TurlModel& model, ServeOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens, warms the replicas and spawns accept + IO + pump
  /// threads. Fails without leaking if the address cannot be bound.
  Status Start();

  /// Three-step graceful shutdown (see class comment). Idempotent; Start()
  /// works again afterwards.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves port 0 to the kernel-assigned one).
  int port() const { return port_; }
  int num_replicas() const { return static_cast<int>(replicas_.size()); }

  /// Requests currently admitted and not yet answered.
  int64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  /// Options off the environment: TURL_SERVE_PORT (default 0 = ephemeral)
  /// and TURL_SERVE_REPLICAS (default 2).
  static ServeOptions OptionsFromEnv();

 private:
  /// One model replica: a session + scheduler pair behind a mutex. mu
  /// serializes Submit/Pump/Flush (BatchScheduler's single-threaded
  /// discipline); inflight_cost is the dispatcher's load signal.
  struct Replica {
    std::unique_ptr<rt::InferenceSession> session;
    std::unique_ptr<rt::BatchScheduler> scheduler;
    std::mutex mu;
    std::atomic<int64_t> inflight_cost{0};
  };

  void AcceptLoop();
  void WorkerLoop(int worker_index);
  void PumpLoop();
  void ServeConnection(int fd);
  /// Reads, decodes, runs and answers one frame. False when the connection
  /// must close (EOF, malformed frame, write failure).
  bool ServeOneFrame(int fd);
  /// Index of the least-loaded replica — an index (not a reference) so the
  /// wide event can name the replica that served the request.
  size_t PickReplica(int64_t cost);
  /// `wire_bytes`, when non-null, receives the encoded frame size (the wide
  /// event's bytes_out) whether or not the write succeeded.
  bool WriteResponse(int fd, const WireResponse& response,
                     int64_t* wire_bytes = nullptr);

  const core::TurlModel& model_;
  ServeOptions options_;

  std::vector<std::unique_ptr<Replica>> replicas_;
  std::atomic<uint64_t> rr_counter_{0};
  std::atomic<int64_t> inflight_{0};

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> hard_stop_{false};
  /// Separate from stopping_: the pump must outlive the worker drain (a
  /// worker blocked on its future needs the pump to flush that replica).
  std::atomic<bool> pump_stop_{false};

  std::thread accept_thread_;
  std::thread pump_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     ///< Queue non-empty or stopping.
  std::condition_variable drained_cv_;  ///< A worker exited its loop.
  std::deque<int> pending_;             ///< Accepted fds awaiting a worker.
  int exited_workers_ = 0;

  /// fd each worker currently serves (-1 idle); guarded by conn_mu_ so the
  /// hard-deadline path can shutdown() an fd without racing its close().
  std::mutex conn_mu_;
  std::vector<int> in_flight_fds_;

  /// "serve.listener" in /healthz while replicas are warm and the listener
  /// accepts — a scrape can tell "process up" from "serving traffic".
  std::optional<obs::server::ScopedReadinessProbe> readiness_;
  /// SLO targets installed in the global watchdog for this Start/Stop cycle
  /// (ids for RemoveTarget).
  std::vector<int> slo_target_ids_;
};

}  // namespace serve
}  // namespace turl

#endif  // TURL_SERVE_SERVER_H_
