#include "serve/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "kb/kb.h"

namespace turl {
namespace serve {

namespace {

/// Append-only little-endian byte sink over a std::string.
class WireWriter {
 public:
  void U16(uint16_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void I32Vector(const std::vector<int>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (int x : v) I32(static_cast<int32_t>(x));
  }
  void Bytes(const void* data, size_t n) { Raw(data, n); }

  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void Raw(const void* data, size_t n) {
    buf_.append(reinterpret_cast<const char*>(data), n);
  }
  std::string buf_;
};

/// Bounds-checked little-endian reader over a byte span. Every claimed
/// element count is checked against remaining() BEFORE any allocation — the
/// in-memory mirror of BinaryReader's length-vs-filesize clamps, so a
/// hostile length prefix fails fast instead of triggering a multi-gigabyte
/// allocation.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t len) : p_(data), len_(len) {}

  size_t remaining() const { return ok_ ? len_ - off_ : 0; }
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  uint16_t U16() { uint16_t v = 0; Raw(&v, sizeof(v), "u16"); return v; }
  uint32_t U32() { uint32_t v = 0; Raw(&v, sizeof(v), "u32"); return v; }
  uint64_t U64() { uint64_t v = 0; Raw(&v, sizeof(v), "u64"); return v; }
  int32_t I32() { int32_t v = 0; Raw(&v, sizeof(v), "i32"); return v; }
  float F32() { float v = 0; Raw(&v, sizeof(v), "f32"); return v; }
  void Bytes(void* out, size_t n, const char* what) { Raw(out, n, what); }

  /// True when `count` elements of `elem_size` bytes fit in what remains.
  bool CheckClaimed(uint64_t count, uint64_t elem_size, const char* what) {
    if (!ok_) return false;
    if (count > remaining() / (elem_size == 0 ? 1 : elem_size)) {
      Fail(std::string(what) + ": claimed " + std::to_string(count) +
           " elements exceed " + std::to_string(remaining()) +
           " remaining bytes");
      return false;
    }
    return true;
  }

  std::vector<int> I32Vector(const char* what) {
    const uint32_t n = U32();
    if (!CheckClaimed(n, sizeof(int32_t), what)) return {};
    std::vector<int> out(n);
    for (uint32_t i = 0; i < n; ++i) out[i] = I32();
    return out;
  }

  void Fail(std::string why) {
    if (ok_) {
      ok_ = false;
      error_ = std::move(why);
    }
  }

 private:
  void Raw(void* out, size_t n, const char* what) {
    if (!ok_) return;
    if (len_ - off_ < n) {
      Fail(std::string("truncated ") + what);
      return;
    }
    std::memcpy(out, p_ + off_, n);
    off_ += n;
  }

  const uint8_t* p_;
  size_t len_;
  size_t off_ = 0;
  bool ok_ = true;
  std::string error_;
};

void WriteTablePayload(WireWriter* w, const core::EncodedTable& table) {
  w->I32Vector(table.token_ids);
  // The three sibling token arrays share token_ids' length, so only the
  // first carries a count.
  for (int x : table.token_segment) w->I32(x);
  for (int x : table.token_position) w->I32(x);
  for (int x : table.token_column) w->I32(x);
  w->I32Vector(table.entity_ids);
  for (int x : table.entity_role) w->I32(x);
  for (int x : table.entity_row) w->I32(x);
  for (int x : table.entity_column) w->I32(x);
  for (const std::vector<int>& mention : table.entity_mentions) {
    w->I32Vector(mention);
  }
}

std::vector<int> SiblingArray(WireReader* r, size_t n, const char* what) {
  if (!r->CheckClaimed(n, sizeof(int32_t), what)) return {};
  std::vector<int> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = r->I32();
  return out;
}

}  // namespace

Status ParseRequestHeader(const uint8_t* data, uint32_t max_payload_bytes,
                          RequestHeader* out) {
  WireReader r(data, kRequestHeaderBytes);
  const uint32_t magic = r.U32();
  if (magic != kMagic) {
    return Status::InvalidArgument("bad magic 0x" + std::to_string(magic));
  }
  const uint16_t version = r.U16();
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  const uint16_t task_id = r.U16();
  if (!rt::TaskKindFromId(task_id, &out->task)) {
    return Status::InvalidArgument("unknown task id " +
                                   std::to_string(task_id));
  }
  out->request_id = r.U64();
  out->deadline_ms = r.U32();
  out->payload_len = r.U32();
  if (out->payload_len > max_payload_bytes) {
    // Rejecting here is what keeps an oversized length prefix from ever
    // being allocated: callers read the payload only after this passes.
    return Status::OutOfRange(
        "payload length " + std::to_string(out->payload_len) +
        " exceeds cap " + std::to_string(max_payload_bytes));
  }
  return Status::OK();
}

Status DecodeRequestPayload(const uint8_t* data, size_t len,
                            core::EncodedTable* out) {
  WireReader r(data, len);
  core::EncodedTable table;
  table.token_ids = r.I32Vector("token_ids");
  const size_t num_tokens = table.token_ids.size();
  table.token_segment = SiblingArray(&r, num_tokens, "token_segment");
  table.token_position = SiblingArray(&r, num_tokens, "token_position");
  table.token_column = SiblingArray(&r, num_tokens, "token_column");
  table.entity_ids = r.I32Vector("entity_ids");
  const size_t num_entities = table.entity_ids.size();
  table.entity_role = SiblingArray(&r, num_entities, "entity_role");
  table.entity_row = SiblingArray(&r, num_entities, "entity_row");
  table.entity_column = SiblingArray(&r, num_entities, "entity_column");
  if (r.ok() && num_entities > r.remaining() / sizeof(uint32_t)) {
    // Each mention costs at least its 4-byte count, so a huge entity count
    // with a tiny payload dies here instead of looping.
    r.Fail("entity count exceeds remaining mention bytes");
  }
  table.entity_mentions.reserve(r.ok() ? num_entities : 0);
  for (size_t i = 0; r.ok() && i < num_entities; ++i) {
    table.entity_mentions.push_back(r.I32Vector("entity_mention"));
  }
  if (!r.ok()) return Status::InvalidArgument("payload: " + r.error());
  if (r.remaining() != 0) {
    return Status::InvalidArgument(
        "payload: " + std::to_string(r.remaining()) + " trailing bytes");
  }
  // Ground truth never crosses the wire.
  table.entity_kb_ids.assign(num_entities, kb::kInvalidEntity);
  *out = std::move(table);
  return Status::OK();
}

std::string EncodeRequestFrame(const core::EncodedTable& table,
                               rt::TaskKind task, uint64_t request_id,
                               uint32_t deadline_ms) {
  WireWriter payload;
  WriteTablePayload(&payload, table);
  const std::string body = payload.Take();

  WireWriter w;
  w.U32(kMagic);
  w.U16(kVersion);
  w.U16(static_cast<uint16_t>(task));
  w.U64(request_id);
  w.U32(deadline_ms);
  w.U32(static_cast<uint32_t>(body.size()));
  w.Bytes(body.data(), body.size());
  return w.Take();
}

Status ParseResponseHeader(const uint8_t* data, uint32_t max_payload_bytes,
                           ResponseHeader* out) {
  WireReader r(data, kResponseHeaderBytes);
  if (r.U32() != kMagic) return Status::InvalidArgument("bad magic");
  const uint16_t version = r.U16();
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  const uint16_t status_id = r.U16();
  if (status_id > static_cast<uint16_t>(rt::ResponseStatus::kShuttingDown)) {
    return Status::InvalidArgument("unknown status " +
                                   std::to_string(status_id));
  }
  out->status = static_cast<rt::ResponseStatus>(status_id);
  out->request_id = r.U64();
  out->payload_len = r.U32();
  if (out->payload_len > max_payload_bytes) {
    return Status::OutOfRange("response payload length " +
                              std::to_string(out->payload_len) +
                              " exceeds cap");
  }
  return Status::OK();
}

std::string EncodeResponseFrame(const WireResponse& response) {
  WireWriter payload;
  if (response.status == rt::ResponseStatus::kOk) {
    payload.U32(static_cast<uint32_t>(response.rows));
    payload.U32(static_cast<uint32_t>(response.cols));
    for (float v : response.hidden) payload.F32(v);
  } else {
    payload.U32(static_cast<uint32_t>(response.message.size()));
    payload.Bytes(response.message.data(), response.message.size());
  }
  const std::string body = payload.Take();

  WireWriter w;
  w.U32(kMagic);
  w.U16(kVersion);
  w.U16(static_cast<uint16_t>(response.status));
  w.U64(response.request_id);
  w.U32(static_cast<uint32_t>(body.size()));
  w.Bytes(body.data(), body.size());
  return w.Take();
}

Status DecodeResponsePayload(const uint8_t* data, size_t len,
                             WireResponse* inout) {
  WireReader r(data, len);
  if (inout->status == rt::ResponseStatus::kOk) {
    const uint32_t rows = r.U32();
    const uint32_t cols = r.U32();
    const uint64_t count = uint64_t(rows) * cols;
    if (!r.CheckClaimed(count, sizeof(float), "hidden")) {
      return Status::InvalidArgument("response payload: " + r.error());
    }
    inout->rows = rows;
    inout->cols = cols;
    inout->hidden.resize(count);
    for (uint64_t i = 0; i < count; ++i) inout->hidden[i] = r.F32();
  } else {
    const uint32_t n = r.U32();
    if (!r.CheckClaimed(n, 1, "message")) {
      return Status::InvalidArgument("response payload: " + r.error());
    }
    inout->message.resize(n);
    if (n > 0) r.Bytes(inout->message.data(), n, "message");
  }
  if (!r.ok()) return Status::InvalidArgument("response payload: " + r.error());
  if (r.remaining() != 0) {
    return Status::InvalidArgument("response payload: trailing bytes");
  }
  return Status::OK();
}

bool ReadFull(int fd, void* buf, size_t len) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF, error, or SO_RCVTIMEO timeout.
  }
  return true;
}

}  // namespace serve
}  // namespace turl
