#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "obs/server/http.h"

namespace turl {
namespace serve {

ServeClient::~ServeClient() { Close(); }

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ServeClient::Connect(const std::string& host, int port,
                            int timeout_ms) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket: " + std::string(strerror(errno)));
  }
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::IoError("connect " + host + ":" +
                                     std::to_string(port) + ": " +
                                     strerror(errno));
    ::close(fd);
    return s;
  }
  fd_ = fd;
  return Status::OK();
}

Status ServeClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (!obs::server::WriteAll(fd_, bytes.data(), bytes.size())) {
    Close();
    return Status::IoError("write failed");
  }
  return Status::OK();
}

Status ServeClient::ReadResponse(WireResponse* out) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  uint8_t header[kResponseHeaderBytes];
  if (!ReadFull(fd_, header, sizeof(header))) {
    Close();
    return Status::IoError("connection closed before response header");
  }
  ResponseHeader parsed;
  const Status s =
      ParseResponseHeader(header, kDefaultMaxPayloadBytes, &parsed);
  if (!s.ok()) {
    Close();
    return s;
  }
  std::vector<uint8_t> payload(parsed.payload_len);
  if (parsed.payload_len > 0 &&
      !ReadFull(fd_, payload.data(), payload.size())) {
    Close();
    return Status::IoError("connection closed mid response payload");
  }
  out->status = parsed.status;
  out->request_id = parsed.request_id;
  out->rows = 0;
  out->cols = 0;
  out->hidden.clear();
  out->message.clear();
  const Status d =
      DecodeResponsePayload(payload.data(), payload.size(), out);
  if (!d.ok()) Close();
  return d;
}

Status ServeClient::Call(const core::EncodedTable& table, rt::TaskKind task,
                         uint64_t request_id, WireResponse* out,
                         uint32_t deadline_ms) {
  const Status w =
      SendRaw(EncodeRequestFrame(table, task, request_id, deadline_ms));
  if (!w.ok()) return w;
  return ReadResponse(out);
}

}  // namespace serve
}  // namespace turl
