#include "util/status.h"

namespace turl {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : code_(code), message_(code == StatusCode::kOk ? "" : std::move(message)) {}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::IoError(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace turl
