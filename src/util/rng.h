#ifndef TURL_UTIL_RNG_H_
#define TURL_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace turl {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in this library draws from an Rng
/// passed in explicitly so that corpus generation, masking, initialization and
/// training are exactly reproducible from a single seed.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce identical streams.
  explicit Rng(uint64_t seed = 42);

  /// Complete generator state — the xoshiro words plus the cached Box–Muller
  /// spare — so checkpoints can snapshot and restore a stream mid-flight:
  /// after SetState(GetState()) the generator replays the exact same draws.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_spare_normal = false;
    double spare_normal = 0.0;
  };
  State GetState() const;
  void SetState(const State& state);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal sample (Box–Muller; one cached spare per pair).
  double Normal();

  /// Normal sample with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw that is true with probability p.
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [0, n) with exponent s (popularity skew).
  /// Implemented by inverse-CDF over precomputable weights; O(n) per call is
  /// avoided by callers caching a DiscreteDistribution when n is large.
  uint64_t Zipf(uint64_t n, double s);

  /// Index sampled proportionally to `weights` (all >= 0, sum > 0).
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Precomputed alias-free cumulative distribution for repeated weighted
/// sampling over a fixed weight vector (used for Zipf popularity priors and
/// negative sampling in Word2Vec/MER).
class DiscreteDistribution {
 public:
  /// Builds the cumulative table. `weights` must be non-empty with a positive
  /// sum; negative entries are invalid.
  explicit DiscreteDistribution(const std::vector<double>& weights);

  /// Draws an index with probability proportional to its weight. O(log n).
  size_t Sample(Rng* rng) const;

  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

/// Weights for a Zipf(s) distribution over ranks 0..n-1 (rank 0 heaviest).
std::vector<double> ZipfWeights(size_t n, double s);

}  // namespace turl

#endif  // TURL_UTIL_RNG_H_
