#include "util/math_util.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace turl {

void SoftmaxInPlace(std::vector<float>* v) {
  if (v->empty()) return;
  float mx = *std::max_element(v->begin(), v->end());
  float sum = 0.f;
  for (float& x : *v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (float& x : *v) x /= sum;
}

float LogSumExp(const std::vector<float>& v) {
  TURL_CHECK(!v.empty());
  float mx = *std::max_element(v.begin(), v.end());
  float sum = 0.f;
  for (float x : v) sum += std::exp(x - mx);
  return mx + std::log(sum);
}

float Dot(const float* a, const float* b, size_t n) {
  float s = 0.f;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

float Dot(const std::vector<float>& a, const std::vector<float>& b) {
  TURL_CHECK_EQ(a.size(), b.size());
  return Dot(a.data(), b.data(), a.size());
}

float L2Norm(const float* a, size_t n) {
  return std::sqrt(Dot(a, a, n));
}

float CosineSimilarity(const std::vector<float>& a,
                       const std::vector<float>& b) {
  TURL_CHECK_EQ(a.size(), b.size());
  float na = L2Norm(a.data(), a.size());
  float nb = L2Norm(b.data(), b.size());
  if (na == 0.f || nb == 0.f) return 0.f;
  return Dot(a, b) / (na * nb);
}

size_t ArgMax(const std::vector<float>& v) {
  TURL_CHECK(!v.empty());
  return static_cast<size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

std::vector<size_t> TopK(const std::vector<float>& v, size_t k) {
  k = std::min(k, v.size());
  std::vector<size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(k),
                    idx.end(), [&](size_t a, size_t b) {
                      if (v[a] != v[b]) return v[a] > v[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / double(v.size());
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  size_t mid = (v.size() - 1) / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid), v.end());
  return v[mid];
}

}  // namespace turl
