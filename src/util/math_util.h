#ifndef TURL_UTIL_MATH_UTIL_H_
#define TURL_UTIL_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace turl {

/// In-place numerically-stable softmax over `v` (subtracts the max).
void SoftmaxInPlace(std::vector<float>* v);

/// log(sum(exp(v))) computed stably.
float LogSumExp(const std::vector<float>& v);

/// Dot product; sizes must match.
float Dot(const float* a, const float* b, size_t n);
float Dot(const std::vector<float>& a, const std::vector<float>& b);

/// Euclidean norm.
float L2Norm(const float* a, size_t n);

/// Cosine similarity; returns 0 when either vector is all-zero.
float CosineSimilarity(const std::vector<float>& a, const std::vector<float>& b);

/// Index of the maximum element (first on ties). Requires non-empty input.
size_t ArgMax(const std::vector<float>& v);

/// Indices of the top-k largest elements, in decreasing order of value
/// (stable: ties broken by lower index first). k is clamped to v.size().
std::vector<size_t> TopK(const std::vector<float>& v, size_t k);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& v);

/// Median via nth_element on a copy; 0 for empty input. For even sizes
/// returns the lower median (matching how the paper reports integer medians).
double Median(std::vector<double> v);

}  // namespace turl

#endif  // TURL_UTIL_MATH_UTIL_H_
