#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace turl {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

Rng::State Rng::GetState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_spare_normal = has_spare_normal_;
  state.spare_normal = spare_normal_;
  return state;
}

void Rng::SetState(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_spare_normal_ = state.has_spare_normal;
  spare_normal_ = state.spare_normal;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  TURL_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TURL_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(UniformDouble()) * (hi - lo);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

uint64_t Rng::Zipf(uint64_t n, double s) {
  TURL_CHECK_GT(n, 0u);
  // Direct inverse-CDF on the fly; fine for the small n used in generation.
  double total = 0.0;
  for (uint64_t i = 1; i <= n; ++i) total += 1.0 / std::pow(double(i), s);
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  TURL_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  TURL_CHECK_GT(total, 0.0);
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  TURL_CHECK_LE(k, n);
  // Partial Fisher–Yates over an index vector; O(n) setup, fine at our scale.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Uniform(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double>& weights) {
  TURL_CHECK(!weights.empty());
  cumulative_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    TURL_CHECK_GE(w, 0.0);
    acc += w;
    cumulative_.push_back(acc);
  }
  TURL_CHECK_GT(acc, 0.0);
}

size_t DiscreteDistribution::Sample(Rng* rng) const {
  double u = rng->UniformDouble() * cumulative_.back();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  return static_cast<size_t>(it - cumulative_.begin());
}

std::vector<double> ZipfWeights(size_t n, double s) {
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) w[i] = 1.0 / std::pow(double(i + 1), s);
  return w;
}

}  // namespace turl
