#ifndef TURL_UTIL_STATUS_H_
#define TURL_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace turl {

/// Error category for a failed operation. Mirrors the small set of error
/// classes this library can produce; modeled after the Status idiom used by
/// database engines (Arrow/RocksDB) because exceptions are not used here.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kIoError = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without being a programming error.
/// A Status is either OK (the default) or carries a code and a message.
/// Cheap to copy in the OK case; error construction allocates the message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message. An OK code with a
  /// message is normalized to plain OK.
  Status(StatusCode code, std::string message);

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per non-OK code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status IoError(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status Internal(std::string msg);

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. The value is only present
/// when status().ok(). Accessing value() on an error aborts (see logging.h's
/// TURL_CHECK semantics) — callers must test ok() first on fallible paths.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace turl

/// Propagates a non-OK status to the caller. Usable in functions returning
/// Status.
#define TURL_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::turl::Status _turl_status = (expr);     \
    if (!_turl_status.ok()) return _turl_status; \
  } while (false)

#endif  // TURL_UTIL_STATUS_H_
