#ifndef TURL_UTIL_SERIALIZE_H_
#define TURL_UTIL_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace turl {

/// Little-endian binary writer over a file. Used for corpus snapshots and
/// model checkpoints. All writes are buffered by the underlying ofstream;
/// call Close() (or rely on the destructor) and check status() before
/// trusting the file.
class BinaryWriter {
 public:
  /// Opens `path` for truncating binary write.
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteFloat(float v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteU32Vector(const std::vector<uint32_t>& v);
  void WriteStringVector(const std::vector<std::string>& v);

  /// Flushes and closes; returns the cumulative status.
  Status Close();
  const Status& status() const { return status_; }

 private:
  void WriteRaw(const void* data, size_t n);

  std::ofstream out_;
  Status status_;
};

/// Little-endian binary reader mirroring BinaryWriter. Reads past EOF or on a
/// bad stream flip status() to an error and return zero values; callers check
/// status() once after a batch of reads.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadFloat();
  double ReadDouble();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<uint32_t> ReadU32Vector();
  std::vector<std::string> ReadStringVector();

  const Status& status() const { return status_; }

 private:
  bool ReadRaw(void* data, size_t n);

  std::ifstream in_;
  Status status_;
};

/// True if a regular file exists at `path`.
bool FileExists(const std::string& path);

/// Creates `path` (and parents) as directories; OK if it already exists.
Status MakeDirs(const std::string& path);

}  // namespace turl

#endif  // TURL_UTIL_SERIALIZE_H_
