#ifndef TURL_UTIL_SERIALIZE_H_
#define TURL_UTIL_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace turl {

/// Little-endian binary writer over a file. Used for corpus snapshots and
/// model checkpoints. All writes are buffered by the underlying ofstream;
/// call Close() and check the returned status before trusting the file.
/// A writer destroyed with a write error that Close() never surfaced logs a
/// warning and reports through SetUncheckedWriteErrorHook — a silently
/// dropped error here means a truncated file someone will try to load later.
class BinaryWriter {
 public:
  /// Opens `path` for truncating binary write.
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteFloat(float v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteU32Vector(const std::vector<uint32_t>& v);
  void WriteStringVector(const std::vector<std::string>& v);

  /// Flushes and closes; returns the cumulative status.
  Status Close();
  const Status& status() const { return status_; }

 private:
  void WriteRaw(const void* data, size_t n);

  std::ofstream out_;
  std::string path_;
  Status status_;
  bool closed_ = false;
};

/// Process-wide hook invoked (with the file's path) when a BinaryWriter is
/// destroyed carrying a write error that no Close() call surfaced. Installed
/// by turl::obs to count these as `serialize.unchecked_write_errors`; a
/// plain function pointer keeps util free of a dependency on obs. Pass
/// nullptr to uninstall. Returns the previously installed hook.
using UncheckedWriteErrorHook = void (*)(const std::string& path);
UncheckedWriteErrorHook SetUncheckedWriteErrorHook(UncheckedWriteErrorHook h);

/// Little-endian binary reader mirroring BinaryWriter. Reads past EOF or on a
/// bad stream flip status() to an error and return zero values; callers check
/// status() once after a batch of reads. The file size is stat'd once at
/// open, and every claimed string/vector length is clamped against the bytes
/// actually remaining before anything is allocated — a corrupt length prefix
/// fails fast instead of triggering a multi-gigabyte allocation.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadFloat();
  double ReadDouble();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<uint32_t> ReadU32Vector();
  std::vector<std::string> ReadStringVector();

  const Status& status() const { return status_; }
  /// Bytes left between the read cursor and the stat'd end of file.
  uint64_t remaining() const {
    return bytes_read_ <= file_size_ ? file_size_ - bytes_read_ : 0;
  }

 private:
  bool ReadRaw(void* data, size_t n);
  /// Fails (once) with `what` when a claimed count of `n` elements of
  /// `elem_size` bytes cannot fit in the remaining file; true when it can.
  bool CheckClaimedLength(uint64_t n, uint64_t elem_size, const char* what);

  std::ifstream in_;
  uint64_t file_size_ = 0;
  uint64_t bytes_read_ = 0;
  Status status_;
};

/// True if a regular file exists at `path`.
bool FileExists(const std::string& path);

/// Creates `path` (and parents) as directories; OK if it already exists.
Status MakeDirs(const std::string& path);

}  // namespace turl

#endif  // TURL_UTIL_SERIALIZE_H_
