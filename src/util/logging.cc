#include "util/logging.h"

namespace turl {
namespace internal_logging {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the file path for compact log lines.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::cerr.flush();
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace turl
