#include "util/logging.h"

#include <atomic>
#include <cctype>

namespace turl {
namespace internal_logging {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

LogLevel LevelFromEnv() {
  const char* v = std::getenv("TURL_LOG_LEVEL");
  if (v == nullptr) return LogLevel::kInfo;
  return LevelFromName(v, LogLevel::kInfo);
}

std::atomic<LogLevel>& MinLevelFlag() {
  static std::atomic<LogLevel> level{LevelFromEnv()};
  return level;
}

}  // namespace

LogLevel LevelFromName(const std::string& name, LogLevel fallback) {
  std::string upper;
  upper.reserve(name.size());
  for (char c : name) {
    upper += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (upper == "INFO" || upper == "0") return LogLevel::kInfo;
  if (upper == "WARNING" || upper == "WARN" || upper == "1") {
    return LogLevel::kWarning;
  }
  if (upper == "ERROR" || upper == "2") return LogLevel::kError;
  if (upper == "FATAL" || upper == "3") return LogLevel::kFatal;
  return fallback;
}

LogLevel MinLogLevel() {
  return MinLevelFlag().load(std::memory_order_relaxed);
}

void SetMinLogLevel(LogLevel level) {
  MinLevelFlag().store(level, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the file path for compact log lines.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::cerr.flush();
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace turl
