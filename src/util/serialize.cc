#include "util/serialize.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "util/logging.h"

namespace turl {

namespace {
std::atomic<UncheckedWriteErrorHook> g_unchecked_write_error_hook{nullptr};
}  // namespace

UncheckedWriteErrorHook SetUncheckedWriteErrorHook(UncheckedWriteErrorHook h) {
  return g_unchecked_write_error_hook.exchange(h);
}

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!out_.is_open()) {
    status_ = Status::IoError("cannot open for write: " + path);
  }
}

BinaryWriter::~BinaryWriter() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_.good() && status_.ok()) status_ = Status::IoError("flush failed");
    out_.close();
  }
  if (!closed_ && !status_.ok()) {
    TURL_LOG(Warning) << "BinaryWriter destroyed with unchecked write error "
                      << "for " << path_ << ": " << status_.ToString()
                      << " (the file is likely truncated; call Close() and "
                      << "check its status)";
    if (UncheckedWriteErrorHook hook = g_unchecked_write_error_hook.load()) {
      hook(path_);
    }
  }
}

void BinaryWriter::WriteRaw(const void* data, size_t n) {
  if (!status_.ok()) return;
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out_.good()) status_ = Status::IoError("write failed");
}

void BinaryWriter::WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteFloat(float v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteU64(v.size());
  if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteU32Vector(const std::vector<uint32_t>& v) {
  WriteU64(v.size());
  if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(uint32_t));
}

void BinaryWriter::WriteStringVector(const std::vector<std::string>& v) {
  WriteU64(v.size());
  for (const auto& s : v) WriteString(s);
}

Status BinaryWriter::Close() {
  if (out_.is_open()) {
    out_.flush();
    if (!out_.good() && status_.ok()) status_ = Status::IoError("flush failed");
    out_.close();
  }
  closed_ = true;
  return status_;
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_.is_open()) {
    status_ = Status::IoError("cannot open for read: " + path);
    return;
  }
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
    status_ = Status::IoError("cannot stat for read: " + path);
    return;
  }
  file_size_ = static_cast<uint64_t>(st.st_size);
}

bool BinaryReader::ReadRaw(void* data, size_t n) {
  if (!status_.ok()) return false;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (in_.gcount() != static_cast<std::streamsize>(n)) {
    status_ = Status::IoError("short read");
    std::memset(data, 0, n);
    return false;
  }
  bytes_read_ += n;
  return true;
}

bool BinaryReader::CheckClaimedLength(uint64_t n, uint64_t elem_size,
                                      const char* what) {
  if (!status_.ok()) return false;
  if (n > remaining() / elem_size) {
    status_ = Status::IoError(
        std::string(what) + " length " + std::to_string(n) + " exceeds the " +
        std::to_string(remaining()) + " bytes left in the file");
    return false;
  }
  return true;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}
uint64_t BinaryReader::ReadU64() {
  uint64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}
int64_t BinaryReader::ReadI64() {
  int64_t v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}
float BinaryReader::ReadFloat() {
  float v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}
double BinaryReader::ReadDouble() {
  double v = 0;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  uint64_t n = ReadU64();
  if (!CheckClaimedLength(n, 1, "string")) return "";
  std::string s(n, '\0');
  if (n > 0) ReadRaw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  uint64_t n = ReadU64();
  if (!CheckClaimedLength(n, sizeof(float), "float vector")) return {};
  std::vector<float> v(n);
  if (n > 0) ReadRaw(v.data(), n * sizeof(float));
  return v;
}

std::vector<uint32_t> BinaryReader::ReadU32Vector() {
  uint64_t n = ReadU64();
  if (!CheckClaimedLength(n, sizeof(uint32_t), "u32 vector")) return {};
  std::vector<uint32_t> v(n);
  if (n > 0) ReadRaw(v.data(), n * sizeof(uint32_t));
  return v;
}

std::vector<std::string> BinaryReader::ReadStringVector() {
  uint64_t n = ReadU64();
  // Every string costs at least its u64 length prefix, so that is the
  // per-element floor for the clamp.
  if (!CheckClaimedLength(n, sizeof(uint64_t), "string vector")) return {};
  std::vector<std::string> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n && status_.ok(); ++i) v.push_back(ReadString());
  return v;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

Status MakeDirs(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  std::string partial;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!partial.empty()) {
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
          return Status::IoError("mkdir failed: " + partial + ": " +
                                 std::strerror(errno));
        }
      }
      if (i < path.size()) partial += '/';
    } else {
      partial += path[i];
    }
  }
  return Status::OK();
}

}  // namespace turl
