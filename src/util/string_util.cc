#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace turl {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(delim, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string StripAscii(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  // Single-row DP; b is the shorter string.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t next = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

std::string NormalizeSurface(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool last_space = true;  // Suppress leading spaces.
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      out += static_cast<char>(std::tolower(c));
      last_space = false;
    } else if (std::isspace(c) || std::ispunct(c)) {
      if (!last_space) {
        out += ' ';
        last_space = true;
      }
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace turl
