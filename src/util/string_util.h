#ifndef TURL_UTIL_STRING_UTIL_H_
#define TURL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace turl {

/// Splits `s` on `delim`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Splits `s` on any whitespace, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// ASCII lower-casing (the corpus is ASCII by construction).
std::string ToLowerAscii(std::string_view s);

/// Strips leading/trailing whitespace.
std::string StripAscii(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Levenshtein edit distance; used by the fuzzy KB lookup service.
size_t EditDistance(std::string_view a, std::string_view b);

/// Normalizes a surface form for name matching: lower-case, strip, collapse
/// inner whitespace runs, drop punctuation.
std::string NormalizeSurface(std::string_view s);

/// Formats a double with `digits` decimal places ("%.2f" style).
std::string FormatDouble(double v, int digits);

}  // namespace turl

#endif  // TURL_UTIL_STRING_UTIL_H_
