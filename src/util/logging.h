#ifndef TURL_UTIL_LOGGING_H_
#define TURL_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "util/status.h"

namespace turl {
namespace internal_logging {

/// Severity of a log line. kFatal aborts the process after flushing.
enum class LogLevel { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Global verbosity: log lines strictly below the minimum level are skipped
/// before any formatting happens (the streamed operands are never
/// evaluated). Initialized once from the TURL_LOG_LEVEL environment variable
/// — "INFO"/"WARNING"/"ERROR"/"FATAL" (case-insensitive) or "0".."3" —
/// defaulting to kInfo. kFatal lines are always emitted.
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Parses a level name or digit; returns `fallback` on anything else.
LogLevel LevelFromName(const std::string& name, LogLevel fallback);

/// Accumulates one log line and emits it (to stderr) on destruction.
/// Used via the TURL_LOG / TURL_CHECK macros only.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a LogMessage expression in the below-threshold branch of
/// TURL_LOG. `&` binds looser than `<<`, so the whole streaming chain sits
/// inside the discarded conditional arm and costs nothing when filtered.
struct LogMessageVoidify {
  void operator&(const LogMessage&) {}
};

}  // namespace internal_logging
}  // namespace turl

#define TURL_LOG_IS_ON(level)                  \
  (::turl::internal_logging::LogLevel::k##level >= \
   ::turl::internal_logging::MinLogLevel())

#define TURL_LOG(level)                                              \
  !TURL_LOG_IS_ON(level)                                             \
      ? (void)0                                                      \
      : ::turl::internal_logging::LogMessageVoidify() &              \
            ::turl::internal_logging::LogMessage(                    \
                ::turl::internal_logging::LogLevel::k##level, __FILE__, \
                __LINE__)

/// Aborts with a message when `condition` is false. For programming errors /
/// invariant violations, not for recoverable failures (use Status for those).
#define TURL_CHECK(condition)                                        \
  if (!(condition))                                                  \
  TURL_LOG(Fatal) << "Check failed: " #condition " "

#define TURL_CHECK_OP(a, b, op)                                               \
  if (!((a)op(b)))                                                            \
  TURL_LOG(Fatal) << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " \
                  << (b) << ") "

#define TURL_CHECK_EQ(a, b) TURL_CHECK_OP(a, b, ==)
#define TURL_CHECK_NE(a, b) TURL_CHECK_OP(a, b, !=)
#define TURL_CHECK_LT(a, b) TURL_CHECK_OP(a, b, <)
#define TURL_CHECK_LE(a, b) TURL_CHECK_OP(a, b, <=)
#define TURL_CHECK_GT(a, b) TURL_CHECK_OP(a, b, >)
#define TURL_CHECK_GE(a, b) TURL_CHECK_OP(a, b, >=)

/// Aborts if `status_expr` evaluates to a non-OK Status.
#define TURL_CHECK_OK(status_expr)                     \
  do {                                                 \
    const ::turl::Status _turl_s = (status_expr);      \
    TURL_CHECK(_turl_s.ok()) << _turl_s.ToString();    \
  } while (false)

#endif  // TURL_UTIL_LOGGING_H_
