#ifndef TURL_UTIL_TIMER_H_
#define TURL_UTIL_TIMER_H_

#include <chrono>

namespace turl {

/// Monotonic wall-clock stopwatch for reporting experiment timings. Tracks
/// two reference points: the overall start (Elapsed*) and the current lap
/// (LapMillis), so throughput windows can be measured without a second timer.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()), lap_(start_) {}

  /// Resets both the start point and the lap point to now.
  void Restart() { start_ = lap_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Milliseconds since the last LapMillis()/Restart()/construction, and
  /// begins a new lap. Laps partition total elapsed time: the sum of all lap
  /// durations plus the still-open lap equals ElapsedMillis().
  double LapMillis() {
    const Clock::time_point now = Clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(now - lap_).count();
    lap_ = now;
    return ms;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace turl

#endif  // TURL_UTIL_TIMER_H_
