#include "text/wordpiece.h"

#include <algorithm>
#include <cctype>

#include "util/logging.h"

namespace turl {
namespace text {

std::vector<std::string> BasicTokenize(const std::string& text) {
  std::vector<std::string> words;
  std::string current;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current += static_cast<char>(std::tolower(c));
    } else if (!current.empty()) {
      words.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(current);
  return words;
}

Vocab BuildWordPieceVocab(
    const std::unordered_map<std::string, int64_t>& word_counts,
    const WordPieceOptions& options) {
  Vocab vocab;

  // Single characters (and their continuation forms) guarantee that any
  // ASCII alphanumeric word can be segmented without falling back to [UNK].
  for (char c = 'a'; c <= 'z'; ++c) {
    vocab.AddToken(std::string(1, c));
    vocab.AddToken("##" + std::string(1, c));
  }
  for (char c = '0'; c <= '9'; ++c) {
    vocab.AddToken(std::string(1, c));
    vocab.AddToken("##" + std::string(1, c));
  }

  // Mine frequent suffix pieces (length >= 2) from the corpus.
  std::unordered_map<std::string, int64_t> suffix_counts;
  for (const auto& [word, count] : word_counts) {
    const int len = static_cast<int>(word.size());
    for (int l = 2; l <= options.max_suffix_len && l < len; ++l) {
      suffix_counts[word.substr(size_t(len - l))] += count;
    }
  }

  // Deterministic ordering: by count descending, then lexicographic.
  auto sorted_by_count =
      [](const std::unordered_map<std::string, int64_t>& counts) {
        std::vector<std::pair<std::string, int64_t>> v(counts.begin(),
                                                       counts.end());
        std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
          if (a.second != b.second) return a.second > b.second;
          return a.first < b.first;
        });
        return v;
      };

  for (const auto& [suffix, count] : sorted_by_count(suffix_counts)) {
    if (vocab.size() >= options.max_vocab_size) break;
    if (count >= options.min_suffix_count) vocab.AddToken("##" + suffix);
  }

  for (const auto& [word, count] : sorted_by_count(word_counts)) {
    if (vocab.size() >= options.max_vocab_size) break;
    if (count >= options.min_word_count) vocab.AddToken(word);
  }
  return vocab;
}

WordPieceTokenizer::WordPieceTokenizer(const Vocab* vocab) : vocab_(vocab) {
  TURL_CHECK(vocab != nullptr);
}

std::vector<std::string> WordPieceTokenizer::TokenizeWord(
    const std::string& word) const {
  if (word.empty()) return {};
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start < word.size()) {
    // Greedy longest match from `start`.
    size_t end = word.size();
    std::string match;
    while (end > start) {
      std::string candidate = word.substr(start, end - start);
      if (start > 0) candidate = "##" + candidate;
      if (vocab_->Contains(candidate)) {
        match = candidate;
        break;
      }
      --end;
    }
    if (match.empty()) return {kUnkToken};  // Unsegmentable word.
    pieces.push_back(match);
    start = end;
  }
  return pieces;
}

std::vector<std::string> WordPieceTokenizer::Tokenize(
    const std::string& text) const {
  std::vector<std::string> out;
  for (const std::string& word : BasicTokenize(text)) {
    for (std::string& piece : TokenizeWord(word)) {
      out.push_back(std::move(piece));
    }
  }
  return out;
}

std::vector<int> WordPieceTokenizer::Encode(const std::string& text) const {
  std::vector<int> ids;
  for (const std::string& tok : Tokenize(text)) ids.push_back(vocab_->Id(tok));
  return ids;
}

}  // namespace text
}  // namespace turl
