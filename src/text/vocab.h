#ifndef TURL_TEXT_VOCAB_H_
#define TURL_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace turl {
namespace text {

/// Special token ids, fixed at the front of every vocabulary so model code
/// can rely on them without a lookup.
inline constexpr int kPadId = 0;
inline constexpr int kUnkId = 1;
inline constexpr int kClsId = 2;
inline constexpr int kSepId = 3;
inline constexpr int kMaskId = 4;
inline constexpr const char* kPadToken = "[PAD]";
inline constexpr const char* kUnkToken = "[UNK]";
inline constexpr const char* kClsToken = "[CLS]";
inline constexpr const char* kSepToken = "[SEP]";
inline constexpr const char* kMaskToken = "[MASK]";

/// Bidirectional token <-> id map. Construction always installs the five
/// special tokens first, so any Vocab satisfies Id("[MASK]") == kMaskId.
class Vocab {
 public:
  /// Creates a vocabulary holding only the special tokens.
  Vocab();

  /// Adds `token` if absent; returns its id either way.
  int AddToken(const std::string& token);

  /// Id of `token`, or kUnkId when unknown.
  int Id(const std::string& token) const;

  /// True if `token` is present.
  bool Contains(const std::string& token) const;

  /// Token string for `id`; fatal on out-of-range ids.
  const std::string& Token(int id) const;

  int size() const { return static_cast<int>(tokens_.size()); }

  /// All tokens in id order.
  const std::vector<std::string>& tokens() const { return tokens_; }

  void Save(BinaryWriter* w) const;
  static Result<Vocab> Load(BinaryReader* r);

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace text
}  // namespace turl

#endif  // TURL_TEXT_VOCAB_H_
