#ifndef TURL_TEXT_WORDPIECE_H_
#define TURL_TEXT_WORDPIECE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "text/vocab.h"

namespace turl {
namespace text {

/// Options controlling WordPiece vocabulary construction.
struct WordPieceOptions {
  /// Whole words seen at least this often become single tokens.
  int min_word_count = 2;
  /// Hard cap on vocabulary size (specials + chars + pieces + words).
  int max_vocab_size = 30522;  // BERT's size; the synthetic corpus uses less.
  /// Subword suffix pieces up to this length are mined from the corpus.
  int max_suffix_len = 4;
  /// Suffix pieces seen at least this often become "##piece" tokens.
  int min_suffix_count = 4;
};

/// Builds a WordPiece vocabulary from word frequency counts, mirroring the
/// shape of BERT's vocab: special tokens, then single characters and
/// "##"-continued characters (so tokenization never fails on ASCII), then
/// frequent corpus-mined suffix pieces, then frequent whole words.
Vocab BuildWordPieceVocab(
    const std::unordered_map<std::string, int64_t>& word_counts,
    const WordPieceOptions& options = WordPieceOptions());

/// Greedy longest-match-first WordPiece tokenizer over a fixed vocabulary
/// (the same algorithm as BERT's WordpieceTokenizer). Input is lower-cased
/// and split on whitespace/punctuation first; each word is then segmented
/// into the longest vocabulary pieces, continuation pieces carrying the
/// "##" prefix. Words that cannot be segmented become [UNK].
class WordPieceTokenizer {
 public:
  /// The tokenizer keeps a pointer to `vocab`; it must outlive the tokenizer.
  explicit WordPieceTokenizer(const Vocab* vocab);

  /// Full pipeline: normalize -> split -> WordPiece. Returns token strings.
  std::vector<std::string> Tokenize(const std::string& text) const;

  /// Tokenize then map to ids.
  std::vector<int> Encode(const std::string& text) const;

  /// Segments one already-normalized word.
  std::vector<std::string> TokenizeWord(const std::string& word) const;

  const Vocab& vocab() const { return *vocab_; }

 private:
  const Vocab* vocab_;
};

/// Splits raw text into lower-cased word units: alphanumeric runs, with
/// punctuation dropped (the synthetic corpus carries no meaningful
/// punctuation). Shared by vocabulary construction and tokenization.
std::vector<std::string> BasicTokenize(const std::string& text);

}  // namespace text
}  // namespace turl

#endif  // TURL_TEXT_WORDPIECE_H_
