#include "text/vocab.h"

#include "util/logging.h"

namespace turl {
namespace text {

Vocab::Vocab() {
  AddToken(kPadToken);
  AddToken(kUnkToken);
  AddToken(kClsToken);
  AddToken(kSepToken);
  AddToken(kMaskToken);
  TURL_CHECK_EQ(Id(kMaskToken), kMaskId);
}

int Vocab::AddToken(const std::string& token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(tokens_.size());
  tokens_.push_back(token);
  ids_.emplace(token, id);
  return id;
}

int Vocab::Id(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? kUnkId : it->second;
}

bool Vocab::Contains(const std::string& token) const {
  return ids_.count(token) > 0;
}

const std::string& Vocab::Token(int id) const {
  TURL_CHECK_GE(id, 0);
  TURL_CHECK_LT(id, size());
  return tokens_[static_cast<size_t>(id)];
}

void Vocab::Save(BinaryWriter* w) const { w->WriteStringVector(tokens_); }

Result<Vocab> Vocab::Load(BinaryReader* r) {
  std::vector<std::string> tokens = r->ReadStringVector();
  if (!r->status().ok()) return r->status();
  if (tokens.size() < 5 || tokens[size_t(kMaskId)] != kMaskToken) {
    return Status::IoError("vocab missing special tokens");
  }
  Vocab v;
  for (size_t i = 5; i < tokens.size(); ++i) v.AddToken(tokens[i]);
  return v;
}

}  // namespace text
}  // namespace turl
