#ifndef TURL_RT_BULK_H_
#define TURL_RT_BULK_H_

#include <functional>
#include <vector>

#include "obs/trace.h"
#include "rt/batch_scheduler.h"
#include "rt/inference_session.h"

namespace turl {
namespace rt {

/// Staged bulk evaluation over n independent instances:
///   1. encode:  encoded[i] = encode_fn(i)          (parallel across workers)
///   2. forward: hidden[i] via budget-capped micro-batches (BatchScheduler
///      -> InferenceSession::EncodeBatch, parallel within each batch)
///   3. score:   out[i] = score_fn(i, encoded[i], hidden[i])   (parallel)
///
/// Results are indexed by instance, so the output is identical to the
/// sequential loop `for i: score_fn(i, encode_fn(i), session.Encode(...))`
/// for any worker count or batch composition.
///
/// Tracing: each instance is one request. BulkRun opens the per-instance
/// root span ("rt.request", sampled) around all three stages, so a traced
/// instance shows input-encode, queue-wait, batch-assembly, the per-worker
/// model forward and the head's scoring span under one trace id even though
/// the stages run on different pool workers.
template <typename R>
std::vector<R> BulkRun(
    const InferenceSession& session,
    size_t n,
    const std::function<core::EncodedTable(size_t)>& encode_fn,
    const std::function<R(size_t, const core::EncodedTable&,
                          const nn::Tensor&)>& score_fn,
    BatchSchedulerOptions batch_options = BatchSchedulerOptions()) {
  const bool tracing = obs::Tracer::Enabled();
  // Roots are plain ActiveSpans (not RAII) because each one is begun on the
  // worker that encodes the instance and ended on the worker that scores it.
  std::vector<obs::ActiveSpan> roots(tracing ? n : 0);
  std::vector<obs::TraceContext> traces(tracing ? n : 0);

  std::vector<core::EncodedTable> encoded(n);
  session.pool().ParallelFor(
      0, static_cast<int64_t>(n), /*grain=*/1, [&](int64_t i) {
        if (tracing) {
          roots[size_t(i)] = obs::Tracer::Get().BeginTrace("rt.request");
          roots[size_t(i)].Annotate("instance", i);
          traces[size_t(i)] = roots[size_t(i)].context();
        }
        obs::TraceContextScope scope(tracing ? traces[size_t(i)]
                                             : obs::TraceContext());
        TURL_TRACE_SCOPE("task.encode_input");
        encoded[size_t(i)] = encode_fn(size_t(i));
      });

  std::vector<nn::Tensor> hidden(n);
  {
    BatchScheduler scheduler(&session, batch_options);
    for (size_t i = 0; i < n; ++i) {
      Request request;
      request.table = &encoded[i];
      request.request_id = i;
      // BulkRun owns the root span, so the scheduler nests under it instead
      // of opening one per request (untraced context = fully opted out).
      request.caller_owns_trace = true;
      if (tracing) request.trace = traces[i];
      request.done = [&hidden, i](Response response) {
        hidden[i] = std::move(response.hidden);
      };
      scheduler.Submit(std::move(request));
    }
    scheduler.Flush();
  }

  std::vector<R> out(n);
  session.pool().ParallelFor(
      0, static_cast<int64_t>(n), /*grain=*/1, [&](int64_t i) {
        obs::TraceContextScope scope(tracing ? traces[size_t(i)]
                                             : obs::TraceContext());
        out[size_t(i)] =
            score_fn(size_t(i), encoded[size_t(i)], hidden[size_t(i)]);
        if (tracing) obs::Tracer::Get().End(&roots[size_t(i)]);
      });
  return out;
}

}  // namespace rt
}  // namespace turl

#endif  // TURL_RT_BULK_H_
