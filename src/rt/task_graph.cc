#include "rt/task_graph.h"

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <queue>
#include <utility>

#include "rt/thread_pool.h"
#include "util/logging.h"

namespace turl {
namespace rt {

namespace {

/// Min-heap over task ids: the ready set drains smallest-id-first so the
/// schedule has one fixed tie-break everywhere.
using ReadyQueue =
    std::priority_queue<int, std::vector<int>, std::greater<int>>;

}  // namespace

int TaskGraph::AddTask(std::function<void()> fn) {
  TURL_CHECK(!ran_) << "AddTask after Run";
  TURL_CHECK(fn != nullptr);
  nodes_.push_back(Node{std::move(fn), {}, 0});
  return static_cast<int>(nodes_.size()) - 1;
}

void TaskGraph::AddEdge(int before, int after) {
  TURL_CHECK(!ran_) << "AddEdge after Run";
  TURL_CHECK_GE(before, 0);
  TURL_CHECK_LT(before, size());
  TURL_CHECK_GE(after, 0);
  TURL_CHECK_LT(after, size());
  TURL_CHECK_NE(before, after) << "self-edge";
  nodes_[static_cast<size_t>(before)].out.push_back(after);
  ++nodes_[static_cast<size_t>(after)].in_degree;
}

void TaskGraph::Run(ThreadPool* pool) {
  TURL_CHECK(!ran_) << "TaskGraph::Run may only be called once";
  ran_ = true;
  if (nodes_.empty()) return;
  if (pool == nullptr || pool->num_threads() <= 1 || pool->InWorker() ||
      nodes_.size() == 1) {
    RunSequential();
  } else {
    RunParallel(pool);
  }
}

void TaskGraph::RunSequential() {
  const int n = size();
  std::vector<int> remaining(static_cast<size_t>(n));
  ReadyQueue ready;
  for (int i = 0; i < n; ++i) {
    remaining[static_cast<size_t>(i)] = nodes_[static_cast<size_t>(i)].in_degree;
    if (remaining[static_cast<size_t>(i)] == 0) ready.push(i);
  }
  int completed = 0;
  while (!ready.empty()) {
    const int id = ready.top();
    ready.pop();
    nodes_[static_cast<size_t>(id)].fn();  // Throws propagate to the caller.
    ++completed;
    for (int succ : nodes_[static_cast<size_t>(id)].out) {
      if (--remaining[static_cast<size_t>(succ)] == 0) ready.push(succ);
    }
  }
  TURL_CHECK_EQ(completed, n) << "TaskGraph contains a dependency cycle";
}

void TaskGraph::RunParallel(ThreadPool* pool) {
  const int n = size();
  // All scheduling state lives in a shared block under one mutex. Tasks here
  // are chunky (backward closures doing GEMMs), so lock traffic is noise; in
  // exchange every ready-set decision is a serialized, deterministic
  // function of which tasks have completed.
  //
  // Helper units capture ONLY the shared block, never the caller's stack:
  // the caller may return from Run before a queued helper unit even starts
  // (nested Run from a caller-thread task would otherwise deadlock — the
  // helpers it waits for are queued behind the outer graph's busy units).
  // A late helper observes `shutdown`, touches nothing else, and exits. The
  // node table itself is safe to reference because `shutdown` is only set
  // with no task in flight and an empty ready set, so once the caller is
  // released no helper can reach a node again.
  struct State {
    std::mutex mu;
    std::condition_variable work_cv;  // Ready task available, or shutdown.
    ReadyQueue ready;
    std::vector<int> remaining;   // Per-node unfinished-dependency counts.
    const std::vector<Node>* nodes = nullptr;
    int inflight = 0;
    int completed = 0;
    bool shutdown = false;
    int failed_id = -1;  // Smallest id whose task threw.
    std::exception_ptr error;
  };
  auto st = std::make_shared<State>();
  st->nodes = &nodes_;
  st->remaining.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    st->remaining[static_cast<size_t>(i)] =
        nodes_[static_cast<size_t>(i)].in_degree;
    if (st->remaining[static_cast<size_t>(i)] == 0) st->ready.push(i);
  }

  // Shared by the caller and every helper unit; self-contained on `st`.
  // Returns only when no further task can ever start.
  auto drain = [](const std::shared_ptr<State>& st) {
    std::unique_lock<std::mutex> lock(st->mu);
    for (;;) {
      st->work_cv.wait(lock,
                       [&] { return st->shutdown || !st->ready.empty(); });
      if (st->ready.empty()) return;  // Shutdown and nothing left to start.
      const int id = st->ready.top();
      st->ready.pop();
      ++st->inflight;
      lock.unlock();
      std::exception_ptr err;
      try {
        (*st->nodes)[static_cast<size_t>(id)].fn();
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      --st->inflight;
      ++st->completed;
      if (err) {
        if (st->failed_id < 0 || id < st->failed_id) {
          st->failed_id = id;
          st->error = err;
        }
        // Abandon everything not yet started; in-flight peers drain.
        while (!st->ready.empty()) st->ready.pop();
      } else if (st->failed_id < 0) {
        for (int succ : (*st->nodes)[static_cast<size_t>(id)].out) {
          if (--st->remaining[static_cast<size_t>(succ)] == 0) {
            st->ready.push(succ);
          }
        }
      }
      if (st->ready.empty() && st->inflight == 0) {
        // Done (completed == n), failed-and-drained, or a cycle stalled the
        // graph — in every case no further task can start.
        st->shutdown = true;
        st->work_cv.notify_all();
      } else if (!st->ready.empty()) {
        st->work_cv.notify_all();
      }
    }
  };

  // A graph with no initially-ready task would stall every waiter below.
  TURL_CHECK(!st->ready.empty()) << "TaskGraph contains a dependency cycle";

  const int units = std::min(pool->num_threads() - 1, n - 1);
  for (int u = 0; u < units; ++u) {
    pool->Enqueue([st, drain] { drain(st); });
  }
  // The caller participates, like ParallelFor's worker 0. Its drain only
  // returns once `shutdown` is set, which happens exactly when the run is
  // finalized — no further wait needed, and crucially no wait on helper
  // units that may never get a worker (see the State comment above).
  drain(st);
  if (st->error) std::rethrow_exception(st->error);
  TURL_CHECK_EQ(st->completed, n) << "TaskGraph contains a dependency cycle";
}

}  // namespace rt
}  // namespace turl
