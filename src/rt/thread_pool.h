#ifndef TURL_RT_THREAD_POOL_H_
#define TURL_RT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace turl {
namespace rt {

/// Resolves a thread count request against the environment: a positive
/// `requested` wins; otherwise $TURL_RT_THREADS (when set and positive);
/// otherwise std::thread::hardware_concurrency() (at least 1).
int ResolveThreads(int requested = 0);

/// Fixed-size FIFO thread pool — deliberately work-stealing-free so task
/// execution order (and therefore profiler attribution) is easy to reason
/// about. Determinism contract: the pool never reorders *results*; every
/// parallel construct in this library writes its output by index, so the
/// values produced are identical for any worker count.
///
/// Nesting: a ParallelFor issued from inside a pool task runs inline on the
/// calling worker (sequentially). This makes nested parallelism deadlock-free
/// by construction — workers never block waiting for siblings.
///
/// Exceptions: the first exception thrown by a task body is captured and
/// rethrown on the thread that called ParallelFor / the future's getter.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (resolved via ResolveThreads, so 0 means
  /// "environment decides"). A pool of 1 runs everything on the caller.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// True when the current thread is one of this pool's workers.
  bool InWorker() const;

  /// Tasks currently executing on this pool's spawned workers (work the
  /// submitting thread runs inline — worker 0's ParallelFor share, nested
  /// calls, single-threaded pools — is not counted). Feeds the
  /// `rt.pool.utilization` gauge: active() / num_threads(), updated at every
  /// task start/finish, so a scrape sees how busy the pool is right now.
  int active() const { return active_.load(std::memory_order_relaxed); }

  /// Index of the current worker in [0, num_threads()); workers are numbered
  /// 1..N-1 and the caller thread acts as worker 0 while it drains a
  /// ParallelFor. Returns 0 on non-pool threads.
  int WorkerIndex() const;

  /// Enqueues one task; the future rethrows anything the task threw.
  template <typename F>
  std::future<std::invoke_result_t<F>> Submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task] { (*task)(); });
    return result;
  }

  /// Fire-and-forget task submission (the primitive Submit and ParallelFor
  /// are built on; TaskGraph schedules ready tasks through it directly).
  /// There is no result channel: an exception escaping `fn` is caught in the
  /// worker loop, logged, and counted on `rt.pool.task_exceptions` — it
  /// never tears down the worker or the process. Tasks that need to report
  /// errors should capture their own error state (as Submit's packaged_task
  /// and ParallelFor's shared exception slot do).
  void Enqueue(std::function<void()> fn);

  /// Runs body(i) for every i in [begin, end), split into contiguous chunks
  /// of at least `grain` indices. The caller participates as a worker; a
  /// nested call from a pool thread runs inline. Rethrows the first body
  /// exception after every chunk has finished (no chunk is abandoned
  /// mid-flight, so state touched by other indices is fully written).
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t)>& body);

 private:
  void WorkerLoop(int worker_index);

  int num_threads_;
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::atomic<int> active_{0};
};

}  // namespace rt
}  // namespace turl

#endif  // TURL_RT_THREAD_POOL_H_
