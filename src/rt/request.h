#ifndef TURL_RT_REQUEST_H_
#define TURL_RT_REQUEST_H_

#include <cstdint>
#include <functional>

#include "nn/tensor.h"
#include "obs/trace.h"

namespace turl {
namespace core {
struct EncodedTable;
}  // namespace core

namespace rt {

/// Which TURL workload a request targets. kEncode is the bare encoder
/// forward (contextualized representations, no head); the six task kinds
/// name the paper's fine-tuning heads. The numeric values are the wire task
/// ids of the serve protocol and must never be reordered.
enum class TaskKind : uint8_t {
  kEncode = 0,
  kEntityLinking = 1,
  kColumnType = 2,
  kRelationExtraction = 3,
  kRowPopulation = 4,
  kCellFilling = 5,
  kSchemaAugmentation = 6,
};

inline constexpr int kNumTaskKinds = 7;

/// Stable lower_snake name ("encode", "entity_linking", ...), used for
/// per-task metric names and trace annotations.
const char* TaskKindName(TaskKind kind);

/// Maps a wire task id back to a TaskKind; false for ids outside the enum.
bool TaskKindFromId(uint32_t id, TaskKind* out);

/// Terminal status of one inference request. The serve wire protocol
/// transports these values verbatim, so they must never be reordered.
enum class ResponseStatus : uint8_t {
  kOk = 0,
  /// Shed by admission control or a full queue (the serve-protocol analogue
  /// of an HTTP 503) — the request was never run.
  kOverloaded = 1,
  /// The deadline lapsed before the batch ran (enforced at dequeue) or
  /// before the reply could be written (enforced at reply).
  kDeadlineExceeded = 2,
  /// Malformed request (bad frame, unknown task id, undecodable payload).
  kBadRequest = 3,
  /// The server is draining and no longer admits new requests.
  kShuttingDown = 4,
};

const char* ResponseStatusName(ResponseStatus status);

/// Result of one Request. `hidden` is defined only when status is kOk.
struct Response {
  uint64_t request_id = 0;
  TaskKind task = TaskKind::kEncode;
  ResponseStatus status = ResponseStatus::kOk;
  /// Contextualized representations [table.total(), d_model] for kOk.
  nn::Tensor hidden;
  /// Real-clock wait between enqueue and dequeue (0 when never enqueued).
  double queue_wait_ms = 0.0;
  /// Real-clock batch-assembly time for the micro-batch that served this
  /// request (0 when the request expired before assembly).
  double assembly_ms = 0.0;
  /// Wall time of the micro-batch's EncodeBatch call. Batch-shared: every
  /// request in the same flush reports the same value (0 when never run).
  double encode_ms = 0.0;
  /// Requests in the micro-batch that ran this one (0 when never batched).
  int32_t batch_size = 0;
};

/// The single submission type of the inference runtime: the server's wire
/// decoder, BatchScheduler::Submit and the bulk-eval/bench clients all build
/// one of these (this struct replaced the scheduler's 3-arg/overloaded
/// Submit forms). The table must stay alive until `done` runs.
struct Request {
  const core::EncodedTable* table = nullptr;
  TaskKind task = TaskKind::kEncode;
  /// Caller-chosen id echoed back on the Response (serve echoes it on the
  /// wire so clients can multiplex).
  uint64_t request_id = 0;
  /// Absolute deadline on the scheduler's clock (BatchScheduler::NowMs()
  /// for the default clock); <= 0 means no deadline. Expired requests are
  /// completed with kDeadlineExceeded at dequeue, without being encoded.
  double deadline_ms = 0.0;
  /// Trace context the request's stage spans nest under when
  /// caller_owns_trace is set (untraced then opts out entirely). Otherwise
  /// the scheduler opens — and owns — the "rt.request" root span itself.
  obs::TraceContext trace;
  bool caller_owns_trace = false;
  /// When false (the default) the scheduler emits the request's wide event
  /// (obs::EventLog) and SLI sample at completion. The serve front-end sets
  /// true and emits richer events itself (wire byte sizes, replica, reply
  /// stage) — exactly one layer reports each request.
  bool caller_owns_event = false;
  /// Completion callback; runs on the thread that flushes the batch, in
  /// submission order.
  std::function<void(Response)> done;
};

}  // namespace rt
}  // namespace turl

#endif  // TURL_RT_REQUEST_H_
