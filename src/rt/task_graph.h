#ifndef TURL_RT_TASK_GRAPH_H_
#define TURL_RT_TASK_GRAPH_H_

#include <functional>
#include <vector>

namespace turl {
namespace rt {

class ThreadPool;

/// Dependency-graph task executor with a deterministic scheduling contract.
///
/// Build once, run once: AddTask() returns dense ids in insertion order,
/// AddEdge(before, after) adds a happens-before constraint, Run() executes
/// every task exactly once, never starting a task before all of its
/// predecessors finished.
///
/// Determinism contract:
///  - The ready set is always drained smallest-id-first. In sequential mode
///    (no pool, a single-thread pool, or a nested call from a pool worker)
///    this means: when ids are assigned in a topological order, execution is
///    exactly 0, 1, ..., n-1 — byte-for-byte the order a plain loop over the
///    same closures would run.
///  - Parallel mode may overlap *independent* tasks, but any two tasks
///    ordered by an edge chain run in that pinned relative order on whatever
///    thread picks them up. Clients buy bitwise reproducibility across
///    thread counts by expressing every read/write or write/write conflict
///    as an edge — see nn::Tensor::Backward, which chains all writers of
///    each gradient buffer in sequential execution order.
///
/// Exceptions: in sequential mode the first throwing task propagates
/// immediately (later tasks are abandoned, matching a plain loop). In
/// parallel mode not-yet-started tasks are abandoned, in-flight tasks are
/// drained, and the exception of the smallest-id failed task is rethrown
/// from Run() on the calling thread.
class TaskGraph {
 public:
  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Registers a task; returns its id (dense, insertion-ordered). For the
  /// sequential-equivalence guarantee above, add tasks in the order a
  /// sequential execution would run them.
  int AddTask(std::function<void()> fn);

  /// Requires task `before` to finish before task `after` may start.
  /// Self-edges are rejected; duplicate edges are allowed (counted with
  /// multiplicity, so bookkeeping stays O(1) per AddEdge).
  void AddEdge(int before, int after);

  int size() const { return static_cast<int>(nodes_.size()); }

  /// Executes the graph. Runs sequentially when `pool` is null, has a single
  /// thread, or the caller is already one of the pool's workers (nested
  /// parallelism runs inline, like ThreadPool::ParallelFor). Aborts the
  /// process on a dependency cycle. May only be called once per graph.
  void Run(ThreadPool* pool);

 private:
  struct Node {
    std::function<void()> fn;
    std::vector<int> out;  // Successor ids (with multiplicity).
    int in_degree = 0;
  };

  void RunSequential();
  void RunParallel(ThreadPool* pool);

  std::vector<Node> nodes_;
  bool ran_ = false;
};

}  // namespace rt
}  // namespace turl

#endif  // TURL_RT_TASK_GRAPH_H_
