#include "rt/batch_scheduler.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/logging.h"

namespace turl {
namespace rt {

namespace {

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Get().GetGauge("rt.scheduler.queue_depth");
  return g;
}

obs::Counter* FlushCounter(const char* reason) {
  // Distinct counters per flush reason; names are stable for BENCH_obs.json.
  return obs::MetricsRegistry::Get().GetCounter(
      std::string("rt.scheduler.flush_") + reason);
}

}  // namespace

BatchScheduler::BatchScheduler(const InferenceSession* session,
                               BatchSchedulerOptions options, ClockFn clock)
    : session_(session),
      options_(options),
      clock_(clock ? std::move(clock) : ClockFn(&SteadyNowMs)) {
  TURL_CHECK(session != nullptr);
  TURL_CHECK_GT(options_.max_batch_tables, 0);
  TURL_CHECK_GT(options_.max_batch_budget, 0);
}

BatchScheduler::~BatchScheduler() { Flush(); }

void BatchScheduler::Submit(const core::EncodedTable* table,
                            std::function<void(nn::Tensor)> done) {
  TURL_CHECK(table != nullptr);
  const int64_t cost = table->total();
  // Flush first if admitting this request would blow the budget; the request
  // then starts a fresh batch (and an oversized single request simply gets a
  // batch of its own).
  if (!queue_.empty() && queued_budget_ + cost > options_.max_batch_budget) {
    FlushCounter("budget")->Inc();
    Flush();
  }
  queue_.push_back(Request{table, std::move(done), clock_()});
  queued_budget_ += cost;
  QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
  if (static_cast<int>(queue_.size()) >= options_.max_batch_tables) {
    FlushCounter("size")->Inc();
    Flush();
  }
}

bool BatchScheduler::Pump() {
  if (queue_.empty()) return false;
  if (clock_() - queue_.front().enqueue_ms < options_.max_age_ms) return false;
  FlushCounter("age")->Inc();
  Flush();
  return true;
}

void BatchScheduler::Flush() {
  if (queue_.empty()) return;
  TURL_PROFILE_SCOPE("rt.scheduler.flush");
  std::vector<Request> batch(std::make_move_iterator(queue_.begin()),
                             std::make_move_iterator(queue_.end()));
  queue_.clear();
  queued_budget_ = 0;
  QueueDepthGauge()->Set(0.0);
  std::vector<const core::EncodedTable*> tables;
  tables.reserve(batch.size());
  for (const Request& r : batch) tables.push_back(r.table);
  std::vector<nn::Tensor> hidden = session_->EncodeBatch(
      std::span<const core::EncodedTable* const>(tables));
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].done) batch[i].done(std::move(hidden[i]));
  }
}

}  // namespace rt
}  // namespace turl
