#include "rt/batch_scheduler.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace turl {
namespace rt {

namespace {

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Get().GetGauge("rt.scheduler.queue_depth");
  return g;
}

obs::Counter* FlushCounter(const char* reason) {
  // Distinct counters per flush reason; names are stable for BENCH_obs.json.
  return obs::MetricsRegistry::Get().GetCounter(
      std::string("rt.scheduler.flush_") + reason);
}

obs::Histogram* QueueWaitHistogram() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Get().GetHistogram("rt.scheduler.queue_wait_ms");
  return h;
}

}  // namespace

BatchScheduler::BatchScheduler(const InferenceSession* session,
                               BatchSchedulerOptions options, ClockFn clock)
    : session_(session),
      options_(options),
      clock_(clock ? std::move(clock) : ClockFn(&SteadyNowMs)),
      readiness_("rt.scheduler", [pending = pending_count_](std::string* detail) {
        *detail = "accepting, pending=" +
                  std::to_string(pending->load(std::memory_order_relaxed));
        return true;
      }) {
  TURL_CHECK(session != nullptr);
  TURL_CHECK_GT(options_.max_batch_tables, 0);
  TURL_CHECK_GT(options_.max_batch_budget, 0);
}

BatchScheduler::~BatchScheduler() { Flush(); }

void BatchScheduler::Submit(const core::EncodedTable* table,
                            std::function<void(nn::Tensor)> done) {
  SubmitImpl(table, std::move(done), obs::TraceContext(), /*open_root=*/true);
}

void BatchScheduler::Submit(const core::EncodedTable* table,
                            std::function<void(nn::Tensor)> done,
                            obs::TraceContext trace) {
  SubmitImpl(table, std::move(done), trace, /*open_root=*/false);
}

void BatchScheduler::SubmitImpl(const core::EncodedTable* table,
                                std::function<void(nn::Tensor)> done,
                                obs::TraceContext trace, bool open_root) {
  TURL_CHECK(table != nullptr);
  const int64_t cost = table->total();
  // Flush first if admitting this request would blow the budget; the request
  // then starts a fresh batch (and an oversized single request simply gets a
  // batch of its own).
  if (!queue_.empty() && queued_budget_ + cost > options_.max_batch_budget) {
    FlushCounter("budget")->Inc();
    Flush();
  }
  Request r{table, std::move(done), clock_()};
  r.trace = trace;
  if (open_root && obs::Tracer::Enabled()) {
    // The scheduler is the pipeline entry point for this request, so it owns
    // the root span: opened at enqueue, closed after the completion callback
    // so the trace covers queue-wait + assembly + encode + delivery.
    r.root = obs::Tracer::Get().BeginTrace("rt.request");
    if (r.root.traced()) {
      r.root.Annotate("total", cost);
      r.trace = r.root.context();
    }
  }
  r.enqueue_tp = std::chrono::steady_clock::now();
  queue_.push_back(std::move(r));
  queued_budget_ += cost;
  QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
  pending_count_->store(static_cast<int64_t>(queue_.size()),
                        std::memory_order_relaxed);
  if (static_cast<int>(queue_.size()) >= options_.max_batch_tables) {
    FlushCounter("size")->Inc();
    Flush();
  }
}

bool BatchScheduler::Pump() {
  if (queue_.empty()) return false;
  if (clock_() - queue_.front().enqueue_ms < options_.max_age_ms) return false;
  FlushCounter("age")->Inc();
  Flush();
  return true;
}

void BatchScheduler::Flush() {
  if (queue_.empty()) return;
  TURL_PROFILE_SCOPE("rt.scheduler.flush");
  std::vector<Request> batch(std::make_move_iterator(queue_.begin()),
                             std::make_move_iterator(queue_.end()));
  queue_.clear();
  queued_budget_ = 0;
  QueueDepthGauge()->Set(0.0);
  pending_count_->store(0, std::memory_order_relaxed);
  const auto drain_tp = std::chrono::steady_clock::now();
  std::vector<const core::EncodedTable*> tables;
  tables.reserve(batch.size());
  int64_t budget = 0;
  for (const Request& r : batch) {
    tables.push_back(r.table);
    budget += r.table->total();
    // Real-clock wait from enqueue to drain — the scrape-visible companion
    // of the queue_depth gauge and the per-request rt.queue_wait span.
    QueueWaitHistogram()->Observe(
        std::chrono::duration<double, std::milli>(drain_tp - r.enqueue_tp)
            .count());
  }
  std::vector<obs::TraceContext> traces;
  if (obs::Tracer::Enabled()) {
    // Queue-wait (enqueue -> drain) and batch-assembly are reconstructed
    // here with explicit endpoints: both stages ended before EncodeBatch
    // starts, so every traced request in the batch gets its own copy.
    obs::Tracer& tracer = obs::Tracer::Get();
    const auto assembled_tp = std::chrono::steady_clock::now();
    traces.reserve(batch.size());
    for (const Request& r : batch) {
      traces.push_back(r.trace);
      if (!r.trace.traced()) continue;
      tracer.RecordManual("rt.queue_wait", r.trace, r.enqueue_tp, drain_tp);
      tracer.RecordManual(
          "rt.batch_assembly", r.trace, drain_tp, assembled_tp,
          {{"batch", int64_t(batch.size())}, {"budget", budget}});
    }
  }
  std::vector<nn::Tensor> hidden = session_->EncodeBatch(
      std::span<const core::EncodedTable* const>(tables),
      std::span<const obs::TraceContext>(traces));
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].done) batch[i].done(std::move(hidden[i]));
    // Close scheduler-owned roots (no-op for caller-owned or untraced).
    if (batch[i].root.traced()) obs::Tracer::Get().End(&batch[i].root);
  }
}

}  // namespace rt
}  // namespace turl
