#include "rt/batch_scheduler.h"

#include <chrono>
#include <utility>

#include "core/table_encoding.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace turl {
namespace rt {

namespace {

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Get().GetGauge("rt.scheduler.queue_depth");
  return g;
}

obs::Counter* FlushCounter(const char* reason) {
  // Distinct counters per flush reason; names are stable for BENCH_obs.json.
  return obs::MetricsRegistry::Get().GetCounter(
      std::string("rt.scheduler.flush_") + reason);
}

obs::Histogram* QueueWaitHistogram() {
  static obs::Histogram* h =
      obs::MetricsRegistry::Get().GetHistogram("rt.scheduler.queue_wait_ms");
  return h;
}

obs::Counter* DeadlineMissedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("rt.scheduler.deadline_missed");
  return c;
}

}  // namespace

double BatchScheduler::NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

BatchScheduler::BatchScheduler(const InferenceSession* session,
                               BatchSchedulerOptions options, ClockFn clock)
    : session_(session),
      options_(options),
      clock_(clock ? std::move(clock) : ClockFn(&BatchScheduler::NowMs)),
      readiness_("rt.scheduler", [pending = pending_count_](std::string* detail) {
        *detail = "accepting, pending=" +
                  std::to_string(pending->load(std::memory_order_relaxed));
        return true;
      }) {
  TURL_CHECK(session != nullptr);
  TURL_CHECK_GT(options_.max_batch_tables, 0);
  TURL_CHECK_GT(options_.max_batch_budget, 0);
}

BatchScheduler::~BatchScheduler() { Flush(); }

void BatchScheduler::Submit(Request request) {
  TURL_CHECK(request.table != nullptr);
  const int64_t cost = request.table->total();
  // Flush first if admitting this request would blow the budget; the request
  // then starts a fresh batch (and an oversized single request simply gets a
  // batch of its own).
  if (!queue_.empty() && queued_budget_ + cost > options_.max_batch_budget) {
    FlushCounter("budget")->Inc();
    Flush();
  }
  Queued q{std::move(request), clock_()};
  q.trace = q.request.trace;
  if (!q.request.caller_owns_trace && obs::Tracer::Enabled()) {
    // The scheduler is the pipeline entry point for this request, so it owns
    // the root span: opened at enqueue, closed after the completion callback
    // so the trace covers queue-wait + assembly + encode + delivery.
    q.root = obs::Tracer::Get().BeginTrace("rt.request");
    if (q.root.traced()) {
      q.root.Annotate("total", cost);
      q.root.Annotate("task", TaskKindName(q.request.task));
      q.trace = q.root.context();
    }
  }
  q.enqueue_tp = std::chrono::steady_clock::now();
  queue_.push_back(std::move(q));
  queued_budget_ += cost;
  QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
  pending_count_->store(static_cast<int64_t>(queue_.size()),
                        std::memory_order_relaxed);
  if (static_cast<int>(queue_.size()) >= options_.max_batch_tables) {
    FlushCounter("size")->Inc();
    Flush();
  }
}

bool BatchScheduler::Pump() {
  if (queue_.empty()) return false;
  if (clock_() - queue_.front().enqueue_ms < options_.max_age_ms) return false;
  FlushCounter("age")->Inc();
  Flush();
  return true;
}

void BatchScheduler::Flush() {
  if (queue_.empty()) return;
  TURL_PROFILE_SCOPE("rt.scheduler.flush");
  std::vector<Queued> batch(std::make_move_iterator(queue_.begin()),
                            std::make_move_iterator(queue_.end()));
  queue_.clear();
  queued_budget_ = 0;
  QueueDepthGauge()->Set(0.0);
  pending_count_->store(0, std::memory_order_relaxed);
  const double drain_ms = clock_();
  const auto drain_tp = std::chrono::steady_clock::now();

  // Deadline enforcement at dequeue: expired requests complete with
  // kDeadlineExceeded below and never reach the session, so the batch the
  // model actually runs contains live requests only.
  std::vector<bool> expired(batch.size(), false);
  std::vector<double> waits(batch.size(), 0.0);
  std::vector<const core::EncodedTable*> tables;
  tables.reserve(batch.size());
  int64_t budget = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Queued& q = batch[i];
    waits[i] = std::chrono::duration<double, std::milli>(drain_tp -
                                                         q.enqueue_tp)
                   .count();
    // Real-clock wait from enqueue to drain — the scrape-visible companion
    // of the queue_depth gauge and the per-request rt.queue_wait span.
    QueueWaitHistogram()->Observe(waits[i]);
    if (q.request.deadline_ms > 0.0 && drain_ms >= q.request.deadline_ms) {
      expired[i] = true;
      DeadlineMissedCounter()->Inc();
      continue;
    }
    tables.push_back(q.request.table);
    budget += q.request.table->total();
  }

  // Assembly ends here whether or not tracing is on: the wide-event stage
  // breakdown needs the same endpoints the trace spans use.
  const auto assembled_tp = std::chrono::steady_clock::now();
  std::vector<obs::TraceContext> traces;
  if (obs::Tracer::Enabled()) {
    // Queue-wait (enqueue -> drain) and batch-assembly are reconstructed
    // here with explicit endpoints: both stages ended before EncodeBatch
    // starts, so every traced request in the batch gets its own copy.
    obs::Tracer& tracer = obs::Tracer::Get();
    traces.reserve(tables.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const Queued& q = batch[i];
      if (!expired[i]) traces.push_back(q.trace);
      if (!q.trace.traced()) continue;
      tracer.RecordManual("rt.queue_wait", q.trace, q.enqueue_tp, drain_tp);
      if (expired[i]) continue;
      tracer.RecordManual(
          "rt.batch_assembly", q.trace, drain_tp, assembled_tp,
          {{"batch", int64_t(tables.size())}, {"budget", budget}});
    }
  }
  const double assembly_ms =
      std::chrono::duration<double, std::milli>(assembled_tp - drain_tp)
          .count();

  std::vector<nn::Tensor> hidden;
  double encode_ms = 0.0;
  if (!tables.empty()) {
    const auto encode_start_tp = std::chrono::steady_clock::now();
    hidden = session_->EncodeBatch(
        std::span<const core::EncodedTable* const>(tables),
        std::span<const obs::TraceContext>(traces));
    encode_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - encode_start_tp)
                    .count();
  }
  size_t next_hidden = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    Queued& q = batch[i];
    Response response;
    response.request_id = q.request.request_id;
    response.task = q.request.task;
    response.queue_wait_ms = waits[i];
    if (expired[i]) {
      response.status = ResponseStatus::kDeadlineExceeded;
    } else {
      response.status = ResponseStatus::kOk;
      response.hidden = std::move(hidden[next_hidden++]);
      response.assembly_ms = assembly_ms;
      response.encode_ms = encode_ms;
      response.batch_size = static_cast<int32_t>(tables.size());
    }
    const ResponseStatus status = response.status;
    const bool emit = !q.request.caller_owns_event &&
                      (obs::EventLog::Enabled() || obs::SliEngine::Enabled());
    const auto deliver_tp = std::chrono::steady_clock::now();
    if (q.request.done) q.request.done(std::move(response));
    // Close scheduler-owned roots (no-op for caller-owned or untraced).
    if (q.root.traced()) obs::Tracer::Get().End(&q.root);
    if (emit) {
      // The scheduler is this request's terminal layer (no front-end took
      // ownership via caller_owns_event), so it reports the wide event and
      // the SLI sample.
      const auto now_tp = std::chrono::steady_clock::now();
      obs::WideEvent event;
      event.origin = "rt";
      event.task = TaskKindName(q.request.task);
      event.status = ResponseStatusName(status);
      event.request_id = q.request.request_id;
      event.trace_id = q.trace.trace_id;
      event.end_ms = clock_();
      event.queue_wait_us = waits[i] * 1000.0;
      if (!expired[i]) {
        event.assembly_us = assembly_ms * 1000.0;
        event.encode_us = encode_ms * 1000.0;
        event.batch_size = static_cast<int32_t>(tables.size());
      }
      event.reply_us =
          std::chrono::duration<double, std::micro>(now_tp - deliver_tp)
              .count();
      event.total_us =
          std::chrono::duration<double, std::micro>(now_tp - q.enqueue_tp)
              .count();
      if (q.request.deadline_ms > 0.0) {
        event.deadline_budget_ms = q.request.deadline_ms - q.enqueue_ms;
      }
      if (obs::EventLog::Enabled()) obs::EventLog::Get().Append(event);
      obs::SliEngine::Get().Record(event.task,
                                   obs::OutcomeFromStatusName(event.status),
                                   event.total_us / 1000.0, event.trace_id);
    }
  }
}

}  // namespace rt
}  // namespace turl
