#include "rt/request.h"

namespace turl {
namespace rt {

const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kEncode:
      return "encode";
    case TaskKind::kEntityLinking:
      return "entity_linking";
    case TaskKind::kColumnType:
      return "column_type";
    case TaskKind::kRelationExtraction:
      return "relation_extraction";
    case TaskKind::kRowPopulation:
      return "row_population";
    case TaskKind::kCellFilling:
      return "cell_filling";
    case TaskKind::kSchemaAugmentation:
      return "schema_augmentation";
  }
  return "unknown";
}

bool TaskKindFromId(uint32_t id, TaskKind* out) {
  if (id >= static_cast<uint32_t>(kNumTaskKinds)) return false;
  *out = static_cast<TaskKind>(id);
  return true;
}

const char* ResponseStatusName(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kOverloaded:
      return "overloaded";
    case ResponseStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ResponseStatus::kBadRequest:
      return "bad_request";
    case ResponseStatus::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

}  // namespace rt
}  // namespace turl
