#ifndef TURL_RT_BATCH_SCHEDULER_H_
#define TURL_RT_BATCH_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "nn/tensor.h"
#include "obs/server/handlers.h"
#include "obs/trace.h"
#include "rt/inference_session.h"
#include "rt/request.h"

namespace turl {
namespace rt {

/// Micro-batching policy for heterogeneous encode requests.
struct BatchSchedulerOptions {
  /// Flush when this many requests are queued.
  int max_batch_tables = 32;
  /// Flush when the queued token+entity budget (sum of EncodedTable::total())
  /// would exceed this. A request larger than the whole budget still runs,
  /// alone in its own batch.
  int64_t max_batch_budget = 4096;
  /// Pump() flushes a non-empty queue whose oldest request has waited at
  /// least this long. <= 0 flushes on every Pump().
  double max_age_ms = 20.0;
};

/// Collects encode requests into size/budget-capped micro-batches and runs
/// each batch through InferenceSession::EncodeBatch. Bulk-eval workloads,
/// example binaries and the serve front-end all push heterogeneous tables
/// through one scheduler so the session sees well-shaped batches instead of
/// one giant fan-out (bounding the number of live activation graphs).
///
/// Submission is one rt::Request per table (see rt/request.h): the request
/// carries the table, task kind, id, deadline and trace context, and its
/// `done` callback receives an rt::Response. A request whose deadline has
/// lapsed by the time its batch is drained is completed with
/// kDeadlineExceeded — without being encoded — so queued work cannot waste
/// model time on replies nobody is waiting for anymore.
///
/// Single-threaded discipline: Submit/Pump/Flush must be called from one
/// thread, or be externally serialized (the serve layer wraps each replica's
/// scheduler in a mutex; the batches themselves fan out across the session's
/// pool). Completion callbacks run on the flushing thread, in submission
/// order — combined with the session's by-index batch semantics, kOk results
/// are identical to calling session.Encode per request in order.
class BatchScheduler {
 public:
  /// Monotonic clock in milliseconds; injectable so tests can fake age.
  using ClockFn = std::function<double()>;

  /// The default clock: monotonic milliseconds (std::chrono::steady_clock).
  /// Deadlines in Request::deadline_ms are absolute on this clock unless a
  /// custom clock was injected.
  static double NowMs();

  /// The session must outlive the scheduler. A default clock reads NowMs().
  BatchScheduler(const InferenceSession* session,
                 BatchSchedulerOptions options = BatchSchedulerOptions(),
                 ClockFn clock = ClockFn());
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueues one request; `request.done` runs when its batch is drained
  /// (kOk with the contextualized representations, or kDeadlineExceeded).
  /// The table must stay alive until then. Flushes eagerly once size or
  /// budget caps are hit.
  ///
  /// Tracing: when the caller does not own the trace context
  /// (request.caller_owns_trace is false) the scheduler opens the request's
  /// root span ("rt.request", sampled) at enqueue; the root closes after
  /// `done` returns, and queue-wait / batch-assembly / per-worker encode
  /// spans nest under it.
  void Submit(Request request);

  /// Age-based flush hook for callers with their own poll loop: flushes if
  /// the oldest queued request has exceeded max_age_ms. Returns true if a
  /// batch ran.
  bool Pump();

  /// Runs everything still queued (no-op when empty).
  void Flush();

  size_t pending() const { return queue_.size(); }
  const BatchSchedulerOptions& options() const { return options_; }

 private:
  struct Queued {
    Request request;
    double enqueue_ms;
    /// Root span owned by the scheduler (untraced when the caller supplied
    /// its own context, tracing is off, or the request was unsampled).
    obs::ActiveSpan root;
    /// Context the request's stage spans nest under: the owned root's, or
    /// the caller-supplied one.
    obs::TraceContext trace;
    /// Real-clock enqueue time for the queue-wait span (the ms clock above
    /// is injectable/fake in tests, so it cannot feed trace timestamps).
    std::chrono::steady_clock::time_point enqueue_tp;
  };

  const InferenceSession* session_;
  BatchSchedulerOptions options_;
  ClockFn clock_;
  std::deque<Queued> queue_;
  int64_t queued_budget_ = 0;
  /// Race-free mirror of queue_.size() for the readiness probe below —
  /// /healthz runs on an observability-server worker thread and must not
  /// touch the (single-threaded) deque. Shared with the probe closure so a
  /// probe snapshot that races scheduler destruction reads a live object.
  std::shared_ptr<std::atomic<int64_t>> pending_count_ =
      std::make_shared<std::atomic<int64_t>>(0);
  /// "rt.scheduler" in /healthz: ready while this scheduler is alive and
  /// accepting submissions.
  obs::server::ScopedReadinessProbe readiness_;
};

}  // namespace rt
}  // namespace turl

#endif  // TURL_RT_BATCH_SCHEDULER_H_
