#ifndef TURL_RT_BATCH_SCHEDULER_H_
#define TURL_RT_BATCH_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"
#include "obs/server/handlers.h"
#include "obs/trace.h"
#include "rt/inference_session.h"

namespace turl {
namespace rt {

/// Micro-batching policy for heterogeneous encode requests.
struct BatchSchedulerOptions {
  /// Flush when this many requests are queued.
  int max_batch_tables = 32;
  /// Flush when the queued token+entity budget (sum of EncodedTable::total())
  /// would exceed this. A request larger than the whole budget still runs,
  /// alone in its own batch.
  int64_t max_batch_budget = 4096;
  /// Pump() flushes a non-empty queue whose oldest request has waited at
  /// least this long. <= 0 flushes on every Pump().
  double max_age_ms = 20.0;
};

/// Collects encode requests into size/budget-capped micro-batches and runs
/// each batch through InferenceSession::EncodeBatch. Bulk-eval and example
/// workloads push heterogeneous tables through one scheduler so the session
/// sees well-shaped batches instead of one giant fan-out (bounding the
/// number of live activation graphs).
///
/// Single-threaded discipline: Submit/Pump/Flush must be called from one
/// thread (the batches themselves fan out across the session's pool).
/// Completion callbacks run on the calling thread, in submission order —
/// combined with the session's by-index batch semantics, results are
/// identical to calling session.Encode per request in order.
class BatchScheduler {
 public:
  /// Monotonic clock in milliseconds; injectable so tests can fake age.
  using ClockFn = std::function<double()>;

  /// The session must outlive the scheduler. A default clock reads
  /// std::chrono::steady_clock.
  BatchScheduler(const InferenceSession* session,
                 BatchSchedulerOptions options = BatchSchedulerOptions(),
                 ClockFn clock = ClockFn());
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueues one request; `done` receives the contextualized
  /// representations for `table` when its batch runs. `table` must stay
  /// alive until then. Flushes eagerly once size or budget caps are hit.
  ///
  /// Tracing: the scheduler is the pipeline entry point, so this overload
  /// opens the request's root span ("rt.request", sampled) at enqueue; the
  /// root closes after `done` returns, and queue-wait / batch-assembly /
  /// per-worker encode spans nest under it.
  void Submit(const core::EncodedTable* table,
              std::function<void(nn::Tensor)> done);

  /// Same, but the request flows under a caller-owned trace context (e.g. a
  /// BulkRun instance span) instead of a scheduler-opened root — pass an
  /// untraced context to opt the request out entirely.
  void Submit(const core::EncodedTable* table,
              std::function<void(nn::Tensor)> done, obs::TraceContext trace);

  /// Age-based flush hook for callers with their own poll loop: flushes if
  /// the oldest queued request has exceeded max_age_ms. Returns true if a
  /// batch ran.
  bool Pump();

  /// Runs everything still queued (no-op when empty).
  void Flush();

  size_t pending() const { return queue_.size(); }
  const BatchSchedulerOptions& options() const { return options_; }

 private:
  struct Request {
    const core::EncodedTable* table;
    std::function<void(nn::Tensor)> done;
    double enqueue_ms;
    /// Root span owned by the scheduler (untraced when the caller supplied
    /// its own context, tracing is off, or the request was unsampled).
    obs::ActiveSpan root;
    /// Context the request's stage spans nest under: the owned root's, or
    /// the caller-supplied one.
    obs::TraceContext trace;
    /// Real-clock enqueue time for the queue-wait span (the ms clock above
    /// is injectable/fake in tests, so it cannot feed trace timestamps).
    std::chrono::steady_clock::time_point enqueue_tp;
  };

  void SubmitImpl(const core::EncodedTable* table,
                  std::function<void(nn::Tensor)> done, obs::TraceContext trace,
                  bool open_root);

  const InferenceSession* session_;
  BatchSchedulerOptions options_;
  ClockFn clock_;
  std::deque<Request> queue_;
  int64_t queued_budget_ = 0;
  /// Race-free mirror of queue_.size() for the readiness probe below —
  /// /healthz runs on an observability-server worker thread and must not
  /// touch the (single-threaded) deque. Shared with the probe closure so a
  /// probe snapshot that races scheduler destruction reads a live object.
  std::shared_ptr<std::atomic<int64_t>> pending_count_ =
      std::make_shared<std::atomic<int64_t>>(0);
  /// "rt.scheduler" in /healthz: ready while this scheduler is alive and
  /// accepting submissions.
  obs::server::ScopedReadinessProbe readiness_;
};

}  // namespace rt
}  // namespace turl

#endif  // TURL_RT_BATCH_SCHEDULER_H_
