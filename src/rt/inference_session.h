#ifndef TURL_RT_INFERENCE_SESSION_H_
#define TURL_RT_INFERENCE_SESSION_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/model.h"
#include "core/table_encoding.h"
#include "nn/tensor.h"
#include "obs/trace.h"
#include "rt/thread_pool.h"
#include "util/rng.h"

namespace turl {
namespace rt {

/// Knobs for an InferenceSession.
struct SessionOptions {
  /// 0 resolves through $TURL_RT_THREADS, then hardware concurrency.
  int num_threads = 0;
  /// Seed for the per-worker scratch Rngs (worker i draws from seed + i).
  /// Inference forwards are dropout-free and never consume randomness, so
  /// this only matters to heads that explicitly sample.
  uint64_t scratch_seed = 0;
};

/// A shared read-only inference runtime over one pre-trained TurlModel.
///
/// The session owns a fixed-size ThreadPool plus per-worker scratch (an Rng
/// per worker) and runs batches of table forwards across the workers. The
/// model reference is const and every forward is an inference forward
/// (training=false): no dropout, no gradient accumulation, no mutation of
/// shared state — so any number of workers may encode through the same model
/// concurrently.
///
/// Determinism contract: Encode/EncodeBatch outputs are a pure function of
/// the encoded tables and the model weights. Batch results are written by
/// input index, so EncodeBatch(tables)[i] is bit-identical to
/// Encode(tables[i]) regardless of worker count, scheduling, or batch
/// composition. With num_threads == 1 everything runs inline on the caller,
/// matching the historical single-threaded evaluation path exactly.
class InferenceSession {
 public:
  /// The model must outlive the session.
  explicit InferenceSession(const core::TurlModel& model,
                            SessionOptions options = SessionOptions());

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;
  /// Movable so factory helpers can return sessions by value; the moved-from
  /// session is only good for destruction.
  InferenceSession(InferenceSession&&) = default;

  const core::TurlModel& model() const { return model_; }
  int num_threads() const { return pool_->num_threads(); }
  ThreadPool& pool() const { return *pool_; }

  /// Scratch Rng of the calling worker (worker 0 when called off-pool).
  /// Deterministically seeded per worker; for heads that explicitly sample.
  Rng* worker_rng() const;

  /// One inference forward: contextualized representations
  /// [table.total(), d_model] (see TurlModel::Encode).
  nn::Tensor Encode(const core::EncodedTable& table) const;

  /// Encodes every table across the pool; result i corresponds to tables[i].
  std::vector<nn::Tensor> EncodeBatch(
      std::span<const core::EncodedTable> tables) const;
  /// Pointer-batch variant for heterogeneous requests that are not
  /// contiguous in memory (what BatchScheduler collects). When `traces` is
  /// non-empty it must be parallel to `tables`: the worker encoding table i
  /// adopts traces[i], so its per-worker encode span lands under the
  /// request that submitted the table. Tracing never affects the results.
  std::vector<nn::Tensor> EncodeBatch(
      std::span<const core::EncodedTable* const> tables,
      std::span<const obs::TraceContext> traces = {}) const;

  /// Deterministic fan-out helper: out[i] = fn(i) for i in [0, n), computed
  /// across the pool. `grain` batches small work items per dispatch.
  template <typename R>
  std::vector<R> Map(size_t n, const std::function<R(size_t)>& fn,
                     int64_t grain = 1) const {
    std::vector<R> out(n);
    pool_->ParallelFor(0, static_cast<int64_t>(n), grain,
                       [&](int64_t i) { out[size_t(i)] = fn(size_t(i)); });
    return out;
  }

 private:
  const core::TurlModel& model_;
  std::unique_ptr<ThreadPool> pool_;
  /// One scratch Rng per worker, indexed by ThreadPool::WorkerIndex().
  /// unique_ptr keeps addresses stable; workers never share an Rng.
  std::vector<std::unique_ptr<Rng>> scratch_rngs_;
};

}  // namespace rt
}  // namespace turl

#endif  // TURL_RT_INFERENCE_SESSION_H_
