#include "rt/inference_session.h"

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/logging.h"

namespace turl {
namespace rt {

namespace {

/// Per-table forward work is coarse (a full Transformer stack), so one table
/// per dispatch is the right grain.
constexpr int64_t kEncodeGrain = 1;

obs::Counter* EncodeCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("rt.encodes");
  return c;
}

obs::Counter* BatchCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("rt.encode_batches");
  return c;
}

obs::Histogram* BatchSizeHistogram() {
  static obs::Histogram* h = obs::MetricsRegistry::Get().GetHistogram(
      "rt.batch_size", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  return h;
}

}  // namespace

InferenceSession::InferenceSession(const core::TurlModel& model,
                                   SessionOptions options)
    : model_(model), pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  scratch_rngs_.reserve(size_t(pool_->num_threads()));
  for (int i = 0; i < pool_->num_threads(); ++i) {
    scratch_rngs_.push_back(std::make_unique<Rng>(
        options.scratch_seed + static_cast<uint64_t>(i)));
  }
}

Rng* InferenceSession::worker_rng() const {
  return scratch_rngs_[size_t(pool_->WorkerIndex())].get();
}

nn::Tensor InferenceSession::Encode(const core::EncodedTable& table) const {
  TURL_PROFILE_SCOPE("rt.encode");
  obs::TraceSpan trace("rt.encode");
  if (trace.traced()) {
    trace.Annotate("worker", int64_t(pool_->WorkerIndex()));
    trace.Annotate("total", int64_t(table.total()));
  }
  EncodeCounter()->Inc();
  // Inference forward: dropout is inactive, so no Rng is consumed and the
  // result is a pure function of (table, weights) — see the class contract.
  return model_.Encode(table, /*training=*/false, /*rng=*/nullptr);
}

std::vector<nn::Tensor> InferenceSession::EncodeBatch(
    std::span<const core::EncodedTable> tables) const {
  std::vector<const core::EncodedTable*> ptrs;
  ptrs.reserve(tables.size());
  for (const core::EncodedTable& t : tables) ptrs.push_back(&t);
  return EncodeBatch(std::span<const core::EncodedTable* const>(ptrs));
}

std::vector<nn::Tensor> InferenceSession::EncodeBatch(
    std::span<const core::EncodedTable* const> tables,
    std::span<const obs::TraceContext> traces) const {
  TURL_PROFILE_SCOPE("rt.encode_batch");
  TURL_CHECK(traces.empty() || traces.size() == tables.size());
  BatchCounter()->Inc();
  BatchSizeHistogram()->Observe(static_cast<double>(tables.size()));
  std::vector<nn::Tensor> out(tables.size());
  pool_->ParallelFor(0, static_cast<int64_t>(tables.size()), kEncodeGrain,
                     [&](int64_t i) {
                       // The worker adopts the submitting request's trace
                       // identity for the duration of this table's forward.
                       obs::TraceContextScope trace_scope(
                           traces.empty() ? obs::TraceContext()
                                          : traces[size_t(i)]);
                       out[size_t(i)] = Encode(*tables[i]);
                     });
  return out;
}

}  // namespace rt
}  // namespace turl
