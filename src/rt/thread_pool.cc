#include "rt/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/metrics.h"
#include "util/logging.h"

namespace turl {
namespace rt {

namespace {

/// Worker index + owning pool for the current thread; 0/null on non-pool
/// threads. Used for nesting detection and per-worker scratch selection.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = 0;

/// Fraction of pool capacity running tasks right now. With several pools in
/// one process (session pool + kernel pool) the gauge is last-write-wins —
/// it reflects whichever pool most recently changed occupancy, which for a
/// scrape-while-loaded reading is the busy one.
obs::Gauge* UtilizationGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Get().GetGauge("rt.pool.utilization");
  return g;
}

/// Tasks whose exception was contained by WorkerLoop (see Enqueue's
/// fire-and-forget contract in the header).
obs::Counter* TaskExceptionCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("rt.pool.task_exceptions");
  return c;
}

}  // namespace

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("TURL_RT_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(ResolveThreads(num_threads)) {
  // Worker 0 is the caller thread; only 1..N-1 are real threads.
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::InWorker() const { return tls_pool == this; }

int ThreadPool::WorkerIndex() const {
  return tls_pool == this ? tls_worker_index : 0;
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TURL_CHECK(!stop_) << "Submit on a destroyed ThreadPool";
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(int worker_index) {
  tls_pool = this;
  tls_worker_index = worker_index;
  // RAII so the count (and the gauge derived from it) unwinds even when a
  // task throws — a leaked increment would pin rt.pool.utilization above
  // zero forever and skew every later reading.
  struct ActiveGuard {
    ThreadPool* pool;
    explicit ActiveGuard(ThreadPool* p) : pool(p) {
      const int running =
          pool->active_.fetch_add(1, std::memory_order_relaxed) + 1;
      UtilizationGauge()->Set(double(running) / double(pool->num_threads_));
    }
    ~ActiveGuard() {
      const int left =
          pool->active_.fetch_sub(1, std::memory_order_relaxed) - 1;
      UtilizationGauge()->Set(double(left) / double(pool->num_threads_));
    }
  };
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    ActiveGuard guard(this);
    // A directly-Enqueue'd task has no future to carry its exception; letting
    // it escape here would std::terminate the process. Contain it: log,
    // count, keep the worker alive.
    try {
      task();
    } catch (const std::exception& e) {
      TaskExceptionCounter()->Inc();
      TURL_LOG(Warning) << "rt::ThreadPool task threw: " << e.what();
    } catch (...) {
      TaskExceptionCounter()->Inc();
      TURL_LOG(Warning) << "rt::ThreadPool task threw a non-std exception";
    }
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t)>& body) {
  if (begin >= end) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t n = end - begin;
  // Inline when parallelism cannot help: single-threaded pool, a nested call
  // from one of our workers, or fewer indices than one grain. The inline
  // path is the sequential reference semantics everything else must match.
  if (num_threads_ <= 1 || InWorker() || n <= grain) {
    for (int64_t i = begin; i < end; ++i) body(i);
    return;
  }

  struct SharedState {
    std::atomic<int64_t> next{0};
    std::atomic<int> pending{0};
    std::mutex error_mu;
    std::exception_ptr error;
    std::mutex done_mu;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<SharedState>();
  const int64_t num_chunks = (n + grain - 1) / grain;
  // Self-scheduling chunks: each dispatched unit claims the next grain-sized
  // range. One queue entry per worker (not per chunk) keeps queue pressure
  // independent of n.
  const int units =
      static_cast<int>(std::min<int64_t>(num_threads_ - 1, num_chunks));
  auto run_chunks = [state, begin, end, grain, &body] {
    for (;;) {
      const int64_t chunk_begin = begin + state->next.fetch_add(grain);
      if (chunk_begin >= end) break;
      const int64_t chunk_end = std::min(end, chunk_begin + grain);
      try {
        for (int64_t i = chunk_begin; i < chunk_end; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mu);
        if (!state->error) state->error = std::current_exception();
        // Keep draining remaining chunks: every index either runs or is
        // claimed, so callers can reason about partial output.
      }
    }
  };
  state->pending.store(units, std::memory_order_relaxed);
  for (int u = 0; u < units; ++u) {
    Enqueue([state, run_chunks] {
      run_chunks();
      if (state->pending.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(state->done_mu);
        state->done_cv.notify_all();
      }
    });
  }
  // The caller is worker 0: it helps until the range is exhausted, then
  // waits for the workers still finishing their last chunk.
  run_chunks();
  {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(lock, [&] { return state->pending.load() == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace rt
}  // namespace turl
