#ifndef TURL_BASELINES_SHERLOCK_H_
#define TURL_BASELINES_SHERLOCK_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"
#include "nn/optim.h"
#include "util/rng.h"

namespace turl {
namespace baselines {

/// Number of hand-crafted features per column.
inline constexpr int kSherlockFeatureDim = 27;

/// Sherlock-style [16] column featurization: statistical properties,
/// character distributions and word-level aggregates of a column's cell
/// values (cell text only — no table context, no entity links). The real
/// Sherlock uses 1588 features incl. paragraph vectors; this compact variant
/// keeps the same families at repro scale.
std::vector<float> SherlockFeatures(const std::vector<std::string>& cells);

/// Multi-label column-type classifier: Sherlock features -> 2-layer MLP ->
/// |L| sigmoid outputs with binary cross-entropy (the paper's adaptation of
/// Sherlock to multi-label column typing).
class SherlockClassifier {
 public:
  SherlockClassifier(int num_labels, int hidden_dim, uint64_t seed);

  /// One epoch of SGD over (features, multi-hot labels) pairs; returns the
  /// mean loss. Labels are label-id lists per example.
  float TrainEpoch(const std::vector<std::vector<float>>& features,
                   const std::vector<std::vector<int>>& labels, float lr,
                   Rng* rng);

  /// Per-label probabilities for one column.
  std::vector<float> Predict(const std::vector<float>& features) const;

  /// Labels with probability > threshold.
  std::vector<int> PredictLabels(const std::vector<float>& features,
                                 float threshold = 0.5f) const;

  int num_labels() const { return num_labels_; }

 private:
  nn::Tensor Logits(const nn::Tensor& x) const;

  int num_labels_;
  nn::ParamStore params_;
  std::unique_ptr<nn::Linear> fc1_;
  std::unique_ptr<nn::Linear> fc2_;
  std::unique_ptr<nn::Linear> out_;
  std::unique_ptr<nn::Adam> adam_;
};

}  // namespace baselines
}  // namespace turl

#endif  // TURL_BASELINES_SHERLOCK_H_
