#include "baselines/sherlock.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <unordered_set>

#include "nn/ops.h"
#include "util/logging.h"

namespace turl {
namespace baselines {

std::vector<float> SherlockFeatures(const std::vector<std::string>& cells) {
  std::vector<float> f(kSherlockFeatureDim, 0.f);
  if (cells.empty()) return f;
  const float n = float(cells.size());

  // Character-level aggregates.
  double total_chars = 0, digits = 0, alphas = 0, uppers = 0, spaces = 0,
         puncts = 0;
  std::vector<double> lengths, word_counts;
  std::unordered_set<std::string> distinct;
  double numeric_cells = 0, empty_cells = 0, dash_cells = 0;
  double starts_upper = 0, ends_digit = 0;
  double char_entropy_accum = 0;

  for (const std::string& cell : cells) {
    distinct.insert(cell);
    lengths.push_back(double(cell.size()));
    if (cell.empty()) ++empty_cells;
    if (cell == "-") ++dash_cells;
    int words = cell.empty() ? 0 : 1;
    bool all_numeric = !cell.empty();
    int char_counts[128] = {0};
    for (char raw : cell) {
      unsigned char c = static_cast<unsigned char>(raw);
      ++total_chars;
      if (std::isdigit(c)) {
        ++digits;
      } else {
        all_numeric = false;
      }
      if (std::isalpha(c)) ++alphas;
      if (std::isupper(c)) ++uppers;
      if (std::isspace(c)) {
        ++spaces;
        ++words;
      }
      if (std::ispunct(c)) ++puncts;
      if (c < 128) ++char_counts[c];
    }
    word_counts.push_back(double(words));
    if (all_numeric) ++numeric_cells;
    if (!cell.empty() && std::isupper(static_cast<unsigned char>(cell[0]))) {
      ++starts_upper;
    }
    if (!cell.empty() && std::isdigit(static_cast<unsigned char>(cell.back()))) {
      ++ends_digit;
    }
    // Per-cell character entropy.
    double entropy = 0;
    for (int c = 0; c < 128; ++c) {
      if (char_counts[c] == 0 || cell.empty()) continue;
      const double p = double(char_counts[c]) / double(cell.size());
      entropy -= p * std::log(p);
    }
    char_entropy_accum += entropy;
  }

  auto mean_of = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / double(v.size());
  };
  auto std_of = [&](const std::vector<double>& v) {
    const double m = mean_of(v);
    double s = 0;
    for (double x : v) s += (x - m) * (x - m);
    return v.empty() ? 0.0 : std::sqrt(s / double(v.size()));
  };
  const double tc = std::max(total_chars, 1.0);

  int i = 0;
  f[i++] = float(n);                                    // 0 cell count
  f[i++] = float(distinct.size() / double(n));          // 1 distinct ratio
  f[i++] = float(mean_of(lengths));                     // 2 mean length
  f[i++] = float(std_of(lengths));                      // 3 std length
  f[i++] = float(*std::min_element(lengths.begin(), lengths.end()));  // 4
  f[i++] = float(*std::max_element(lengths.begin(), lengths.end()));  // 5
  f[i++] = float(digits / tc);                          // 6 digit frac
  f[i++] = float(alphas / tc);                          // 7 alpha frac
  f[i++] = float(uppers / tc);                          // 8 upper frac
  f[i++] = float(spaces / tc);                          // 9 space frac
  f[i++] = float(puncts / tc);                          // 10 punct frac
  f[i++] = float(mean_of(word_counts));                 // 11 mean words
  f[i++] = float(std_of(word_counts));                  // 12 std words
  f[i++] = float(numeric_cells / n);                    // 13 numeric frac
  f[i++] = float(empty_cells / n);                      // 14 empty frac
  f[i++] = float(dash_cells / n);                       // 15 dash frac
  f[i++] = float(starts_upper / n);                     // 16 capitalised frac
  f[i++] = float(ends_digit / n);                       // 17 ends-digit frac
  f[i++] = float(char_entropy_accum / n);               // 18 mean entropy
  // Suffix histogram over the last character class (letters bucketed).
  double last_vowel = 0, last_conso = 0, last_digit = 0;
  for (const std::string& cell : cells) {
    if (cell.empty()) continue;
    const char c =
        static_cast<char>(std::tolower(static_cast<unsigned char>(cell.back())));
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ++last_digit;
    } else if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') {
      ++last_vowel;
    } else if (std::isalpha(static_cast<unsigned char>(c))) {
      ++last_conso;
    }
  }
  f[i++] = float(last_vowel / n);   // 19
  f[i++] = float(last_conso / n);   // 20
  f[i++] = float(last_digit / n);   // 21
  // Common surname/place suffix indicators (word-embedding stand-ins).
  auto suffix_frac = [&](const std::vector<std::string>& suffixes) {
    double hits = 0;
    for (const std::string& cell : cells) {
      for (const std::string& suf : suffixes) {
        if (cell.size() >= suf.size() &&
            cell.compare(cell.size() - suf.size(), suf.size(), suf) == 0) {
          ++hits;
          break;
        }
      }
    }
    return float(hits / n);
  };
  f[i++] = suffix_frac({"son", "ez", "ov", "ini", "berg", "stein", "man",
                        "sen", "escu", "wood"});  // 22 person-like
  f[i++] = suffix_frac({"ville", "ton", "burg", "field", "port", "ford",
                        "ham", "dale"});          // 23 city-like
  f[i++] = suffix_frac({"land", "ia", "stan", "ovia", "onia"});  // 24
  f[i++] = suffix_frac({"ish", "ese", "ic", "an"});              // 25
  // Mean tokens shared across cells (column homogeneity).
  std::unordered_set<std::string> first_words;
  for (const std::string& cell : cells) {
    const size_t sp = cell.find(' ');
    first_words.insert(cell.substr(0, sp));
  }
  f[i++] = float(first_words.size() / double(n));  // 26 first-word diversity
  TURL_CHECK_EQ(i, kSherlockFeatureDim);
  return f;
}

SherlockClassifier::SherlockClassifier(int num_labels, int hidden_dim,
                                       uint64_t seed)
    : num_labels_(num_labels) {
  Rng rng(seed);
  fc1_ = std::make_unique<nn::Linear>(&params_, "fc1", kSherlockFeatureDim,
                                      hidden_dim, &rng);
  fc2_ = std::make_unique<nn::Linear>(&params_, "fc2", hidden_dim, hidden_dim,
                                      &rng);
  out_ = std::make_unique<nn::Linear>(&params_, "out", hidden_dim, num_labels,
                                      &rng);
  adam_ = std::make_unique<nn::Adam>(&params_, nn::AdamConfig{.lr = 1e-3f});
}

nn::Tensor SherlockClassifier::Logits(const nn::Tensor& x) const {
  nn::Tensor h = nn::Relu(fc1_->Forward(x));
  h = nn::Relu(fc2_->Forward(h));
  return out_->Forward(h);
}

float SherlockClassifier::TrainEpoch(
    const std::vector<std::vector<float>>& features,
    const std::vector<std::vector<int>>& labels, float lr, Rng* rng) {
  TURL_CHECK_EQ(features.size(), labels.size());
  std::vector<size_t> order(features.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);

  constexpr size_t kBatch = 16;
  double loss_sum = 0;
  size_t batches = 0;
  for (size_t start = 0; start < order.size(); start += kBatch) {
    const size_t end = std::min(start + kBatch, order.size());
    const size_t bs = end - start;
    std::vector<float> xbuf;
    xbuf.reserve(bs * kSherlockFeatureDim);
    std::vector<float> ybuf(bs * size_t(num_labels_), 0.f);
    for (size_t bi = 0; bi < bs; ++bi) {
      const size_t idx = order[start + bi];
      TURL_CHECK_EQ(features[idx].size(), size_t(kSherlockFeatureDim));
      xbuf.insert(xbuf.end(), features[idx].begin(), features[idx].end());
      for (int label : labels[idx]) {
        TURL_CHECK_LT(label, num_labels_);
        ybuf[bi * size_t(num_labels_) + size_t(label)] = 1.f;
      }
    }
    nn::Tensor x = nn::Tensor::FromVector(
        {int64_t(bs), kSherlockFeatureDim}, std::move(xbuf));
    nn::Tensor loss = nn::BceWithLogits(Logits(x), ybuf);
    params_.ZeroGrad();
    loss.Backward();
    const float scale = lr / adam_->config().lr;
    adam_->Step(scale);
    loss_sum += loss.item();
    ++batches;
  }
  return batches == 0 ? 0.f : float(loss_sum / double(batches));
}

std::vector<float> SherlockClassifier::Predict(
    const std::vector<float>& features) const {
  TURL_CHECK_EQ(features.size(), size_t(kSherlockFeatureDim));
  nn::Tensor x =
      nn::Tensor::FromVector({1, kSherlockFeatureDim}, features);
  nn::Tensor probs = nn::SigmoidOp(Logits(x));
  return probs.ToVector();
}

std::vector<int> SherlockClassifier::PredictLabels(
    const std::vector<float>& features, float threshold) const {
  std::vector<float> probs = Predict(features);
  std::vector<int> out;
  for (int l = 0; l < num_labels_; ++l) {
    if (probs[size_t(l)] > threshold) out.push_back(l);
  }
  return out;
}

}  // namespace baselines
}  // namespace turl
