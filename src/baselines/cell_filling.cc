#include "baselines/cell_filling.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace turl {
namespace baselines {

namespace {

std::string PairKeyOf(const std::string& a, const std::string& b) {
  return a <= b ? a + "|" + b : b + "|" + a;
}

}  // namespace

CellFillingIndex::CellFillingIndex(const data::Corpus& corpus,
                                   const std::vector<size_t>& train_indices) {
  // (subject, object) -> headers seen across occurrences (one per table).
  std::unordered_map<int64_t, std::vector<std::string>> pair_headers;
  auto so_key = [](kb::EntityId s, kb::EntityId o) {
    return (static_cast<int64_t>(s) << 32) | static_cast<uint32_t>(o);
  };

  for (size_t idx : train_indices) {
    const data::Table& t = corpus.tables[idx];
    if (t.columns.empty() || !t.columns[0].is_entity_column) continue;
    for (int c = 1; c < t.num_columns(); ++c) {
      const data::Column& col = t.columns[size_t(c)];
      if (!col.is_entity_column) continue;
      const std::string header = NormalizeSurface(col.header);
      for (int r = 0; r < t.num_rows(); ++r) {
        const data::EntityCell& subj = t.columns[0].cells[size_t(r)];
        const data::EntityCell& obj = col.cells[size_t(r)];
        if (!subj.linked() || !obj.linked()) continue;
        row_mates_[subj.entity].emplace_back(obj.entity, header);
        pair_headers[so_key(subj.entity, obj.entity)].push_back(header);
      }
    }
  }

  // n(h', h): every unordered pair of occurrences of one (subject, object)
  // fact contributes one table-pair count to its header pair.
  for (const auto& [key, headers] : pair_headers) {
    for (size_t i = 0; i < headers.size(); ++i) {
      for (size_t j = i + 1; j < headers.size(); ++j) {
        header_pair_counts_[PairKeyOf(headers[i], headers[j])] += 1.0;
        header_marginal_[headers[i]] += 1.0;
        header_marginal_[headers[j]] += 1.0;
      }
    }
  }
}

std::vector<CellCandidate> CellFillingIndex::CandidatesFor(
    kb::EntityId subject) const {
  std::vector<CellCandidate> out;
  auto it = row_mates_.find(subject);
  if (it == row_mates_.end()) return out;
  std::unordered_map<kb::EntityId, size_t> position;
  for (const auto& [object, header] : it->second) {
    auto pit = position.find(object);
    if (pit == position.end()) {
      position.emplace(object, out.size());
      out.push_back({object, {header}});
    } else {
      auto& headers = out[pit->second].source_headers;
      if (std::find(headers.begin(), headers.end(), header) == headers.end()) {
        headers.push_back(header);
      }
    }
  }
  return out;
}

std::vector<CellCandidate> CellFillingIndex::CandidatesFor(
    kb::EntityId subject, const std::string& target_header) const {
  const std::string target = NormalizeSurface(target_header);
  std::vector<CellCandidate> out;
  for (CellCandidate& cand : CandidatesFor(subject)) {
    bool related = false;
    for (const std::string& h : cand.source_headers) {
      if (h == target || HeaderTranslation(h, target) > 0.0) {
        related = true;
        break;
      }
    }
    if (related) out.push_back(std::move(cand));
  }
  return out;
}

double CellFillingIndex::HeaderTranslation(const std::string& source_header,
                                           const std::string& target_header)
    const {
  const std::string source = NormalizeSurface(source_header);
  const std::string target = NormalizeSurface(target_header);
  auto mit = header_marginal_.find(target);
  if (mit == header_marginal_.end() || mit->second <= 0.0) return 0.0;
  auto pit = header_pair_counts_.find(PairKeyOf(source, target));
  if (pit == header_pair_counts_.end()) return 0.0;
  return pit->second / mit->second;
}

std::vector<std::string> CellFillingIndex::ObservedHeaders() const {
  std::vector<std::string> out;
  out.reserve(header_marginal_.size());
  for (const auto& [h, count] : header_marginal_) out.push_back(h);
  std::sort(out.begin(), out.end());
  return out;
}

CellFillingRankers::CellFillingRankers(const CellFillingIndex* index,
                                       const Word2Vec* header_w2v)
    : index_(index), header_w2v_(header_w2v) {
  TURL_CHECK(index != nullptr);
  TURL_CHECK(header_w2v != nullptr);
}

double CellFillingRankers::ScoreExact(const CellCandidate& candidate,
                                      const std::string& target_header) const {
  const std::string target = NormalizeSurface(target_header);
  for (const std::string& h : candidate.source_headers) {
    if (h == target) return 1.0;
  }
  return 0.0;
}

double CellFillingRankers::ScoreH2H(const CellCandidate& candidate,
                                    const std::string& target_header) const {
  double best = 0.0;
  const std::string target = NormalizeSurface(target_header);
  for (const std::string& h : candidate.source_headers) {
    if (h == target) {
      best = std::max(best, 1.0);
    } else {
      best = std::max(best, index_->HeaderTranslation(h, target));
    }
  }
  return best;
}

double CellFillingRankers::ScoreH2V(const CellCandidate& candidate,
                                    const std::string& target_header) const {
  double best = 0.0;
  const std::string target = NormalizeSurface(target_header);
  for (const std::string& h : candidate.source_headers) {
    if (h == target) {
      best = std::max(best, 1.0);
    } else {
      best = std::max(best, header_w2v_->Similarity(h, target));
    }
  }
  return best;
}

Word2Vec TrainHeaderEmbeddings(const data::Corpus& corpus,
                               const std::vector<size_t>& train_indices,
                               const Word2VecConfig& config, Rng* rng) {
  std::vector<std::vector<std::string>> sequences;
  for (size_t idx : train_indices) {
    std::vector<std::string> seq;
    for (const data::Column& col : corpus.tables[idx].columns) {
      seq.push_back(NormalizeSurface(col.header));
    }
    if (seq.size() >= 2) sequences.push_back(std::move(seq));
  }
  Word2Vec w2v;
  w2v.Train(sequences, config, rng);
  return w2v;
}

}  // namespace baselines
}  // namespace turl
