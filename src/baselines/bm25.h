#ifndef TURL_BASELINES_BM25_H_
#define TURL_BASELINES_BM25_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace turl {
namespace baselines {

/// One BM25 search hit.
struct Bm25Hit {
  size_t doc = 0;
  double score = 0.0;
};

/// A standard Okapi BM25 inverted index over tokenized documents. The row
/// population pipeline (paper §6.5) retrieves related tables with it, and
/// the kNN schema-augmentation baseline shares its tokenization.
class Bm25Index {
 public:
  /// k1/b are the usual Okapi parameters.
  explicit Bm25Index(double k1 = 1.2, double b = 0.75);

  /// Adds a document; returns its id (dense, insertion order).
  size_t AddDocument(const std::vector<std::string>& tokens);

  /// Finalizes statistics; must be called once after the last AddDocument
  /// and before Search.
  void Finalize();

  /// Top-k documents for the query, best first. Ties break by doc id.
  std::vector<Bm25Hit> Search(const std::vector<std::string>& query,
                              int k) const;

  size_t num_documents() const { return doc_lengths_.size(); }

 private:
  double k1_;
  double b_;
  bool finalized_ = false;
  double avg_doc_length_ = 0.0;
  std::vector<int> doc_lengths_;
  /// term -> (doc, term frequency) postings.
  std::unordered_map<std::string, std::vector<std::pair<size_t, int>>>
      postings_;
  std::unordered_map<std::string, double> idf_;
};

}  // namespace baselines
}  // namespace turl

#endif  // TURL_BASELINES_BM25_H_
