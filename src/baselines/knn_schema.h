#ifndef TURL_BASELINES_KNN_SCHEMA_H_
#define TURL_BASELINES_KNN_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "data/table.h"

namespace turl {
namespace baselines {

/// One recommended header with its aggregated score.
struct HeaderSuggestion {
  std::string header;
  double score = 0.0;
};

/// A kNN retrieval result used by the Table 11 case study.
struct KnnNeighbor {
  size_t table_index = 0;  ///< Index into the corpus table vector.
  double similarity = 0.0;
};

/// The schema-augmentation baseline of §6.7 (after [35]): encode captions as
/// tf-idf vectors, find the top-K most similar training tables by cosine
/// similarity, and rank their headers by aggregating the similarities of the
/// supporting tables. With seed headers present, neighbor tables are
/// re-weighted by their schema overlap with the seeds.
class KnnSchemaRecommender {
 public:
  KnnSchemaRecommender(const data::Corpus& corpus,
                       const std::vector<size_t>& train_indices);

  /// Top-`k` nearest training tables for a caption.
  std::vector<KnnNeighbor> Neighbors(const std::string& caption, int k) const;

  /// Ranked header suggestions. `seed_headers` (normalized or raw) re-weight
  /// neighbors; headers already in the seeds are excluded.
  std::vector<HeaderSuggestion> Recommend(
      const std::string& caption,
      const std::vector<std::string>& seed_headers, int num_neighbors = 10,
      int max_suggestions = 20) const;

 private:
  std::unordered_map<std::string, double> TfIdf(
      const std::vector<std::string>& tokens) const;
  static double Cosine(const std::unordered_map<std::string, double>& a,
                       const std::unordered_map<std::string, double>& b);

  const data::Corpus* corpus_;
  std::vector<size_t> train_indices_;
  std::unordered_map<std::string, double> idf_;
  std::vector<std::unordered_map<std::string, double>> doc_vectors_;
};

}  // namespace baselines
}  // namespace turl

#endif  // TURL_BASELINES_KNN_SCHEMA_H_
