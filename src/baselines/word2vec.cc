#include "baselines/word2vec.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/math_util.h"

namespace turl {
namespace baselines {

void Word2Vec::Train(const std::vector<std::vector<std::string>>& sequences,
                     const Word2VecConfig& config, Rng* rng) {
  TURL_CHECK_GT(config.dim, 0);
  dim_ = config.dim;

  // Vocabulary with frequency filtering.
  std::unordered_map<std::string, int64_t> counts;
  for (const auto& seq : sequences) {
    for (const auto& item : seq) ++counts[item];
  }
  std::vector<std::pair<std::string, int64_t>> kept;
  for (const auto& [item, c] : counts) {
    if (c >= config.min_count) kept.emplace_back(item, c);
  }
  std::sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  items_.clear();
  ids_.clear();
  std::vector<double> neg_weights;
  for (const auto& [item, c] : kept) {
    ids_.emplace(item, static_cast<int>(items_.size()));
    items_.push_back(item);
    neg_weights.push_back(std::pow(double(c), config.negative_sampling_power));
  }
  if (items_.empty()) return;
  DiscreteDistribution neg_dist(neg_weights);

  const size_t v = items_.size();
  in_vectors_.assign(v * size_t(dim_), 0.f);
  out_vectors_.assign(v * size_t(dim_), 0.f);
  for (float& x : in_vectors_) {
    x = (rng->UniformFloat(-0.5f, 0.5f)) / float(dim_);
  }

  // Pre-map sequences to ids.
  std::vector<std::vector<int>> id_seqs;
  id_seqs.reserve(sequences.size());
  for (const auto& seq : sequences) {
    std::vector<int> ids;
    for (const auto& item : seq) {
      auto it = ids_.find(item);
      if (it != ids_.end()) ids.push_back(it->second);
    }
    if (ids.size() >= 2) id_seqs.push_back(std::move(ids));
  }

  std::vector<float> grad_center(static_cast<size_t>(dim_));
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const float lr = config.learning_rate *
                     (1.f - float(epoch) / float(std::max(config.epochs, 1)));
    for (const auto& seq : id_seqs) {
      for (size_t center = 0; center < seq.size(); ++center) {
        const int window =
            1 + static_cast<int>(rng->Uniform(uint64_t(config.window)));
        const size_t lo = center >= size_t(window) ? center - size_t(window) : 0;
        const size_t hi = std::min(center + size_t(window), seq.size() - 1);
        float* vin = in_vectors_.data() + size_t(seq[center]) * size_t(dim_);
        for (size_t ctx = lo; ctx <= hi; ++ctx) {
          if (ctx == center) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.f);
          // One positive + `negative` sampled negatives.
          for (int n = 0; n <= config.negative; ++n) {
            const int target =
                n == 0 ? seq[ctx]
                       : static_cast<int>(neg_dist.Sample(rng));
            if (n > 0 && target == seq[ctx]) continue;
            const float label = n == 0 ? 1.f : 0.f;
            float* vout = out_vectors_.data() + size_t(target) * size_t(dim_);
            const float score = Dot(vin, vout, size_t(dim_));
            const float pred = 1.f / (1.f + std::exp(-score));
            const float g = (pred - label) * lr;
            for (int d = 0; d < dim_; ++d) {
              grad_center[size_t(d)] += g * vout[d];
              vout[d] -= g * vin[d];
            }
          }
          for (int d = 0; d < dim_; ++d) vin[d] -= grad_center[size_t(d)];
        }
      }
    }
  }
}

int Word2Vec::IdOf(const std::string& item) const {
  auto it = ids_.find(item);
  return it == ids_.end() ? -1 : it->second;
}

bool Word2Vec::Contains(const std::string& item) const {
  return IdOf(item) >= 0;
}

std::vector<float> Word2Vec::Vector(const std::string& item) const {
  const int id = IdOf(item);
  if (id < 0) return {};
  const float* base = in_vectors_.data() + size_t(id) * size_t(dim_);
  return std::vector<float>(base, base + dim_);
}

double Word2Vec::Similarity(const std::string& a, const std::string& b) const {
  const std::vector<float> va = Vector(a), vb = Vector(b);
  if (va.empty() || vb.empty()) return 0.0;
  return CosineSimilarity(va, vb);
}

double Word2Vec::SimilarityToSet(const std::string& item,
                                 const std::vector<std::string>& others) const {
  const std::vector<float> vi = Vector(item);
  if (vi.empty() || others.empty()) return 0.0;
  std::vector<float> mean(static_cast<size_t>(dim_), 0.f);
  int known = 0;
  for (const auto& o : others) {
    const std::vector<float> vo = Vector(o);
    if (vo.empty()) continue;
    for (int d = 0; d < dim_; ++d) mean[size_t(d)] += vo[size_t(d)];
    ++known;
  }
  if (known == 0) return 0.0;
  for (float& x : mean) x /= float(known);
  return CosineSimilarity(vi, mean);
}

}  // namespace baselines
}  // namespace turl
