#ifndef TURL_BASELINES_ROW_POPULATION_H_
#define TURL_BASELINES_ROW_POPULATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/bm25.h"
#include "baselines/word2vec.h"
#include "data/table.h"
#include "util/rng.h"

namespace turl {
namespace baselines {

/// The candidate-generation module shared by every row-population method
/// (paper §6.5, from EntiTables [35]): formulate a query from the table
/// caption or the seed entities, retrieve training tables with BM25, and
/// propose their subject entities as candidates.
class RowPopCandidateGenerator {
 public:
  RowPopCandidateGenerator(const data::Corpus& corpus,
                           const std::vector<size_t>& train_indices);

  /// Candidate subject entities for a query table. When `seeds` is empty the
  /// query is the caption text; otherwise the seed entity names are added.
  /// Candidates keep retrieval order (entities from better-matching tables
  /// first) and exclude the seeds themselves.
  std::vector<kb::EntityId> Generate(const std::string& caption,
                                     const std::vector<kb::EntityId>& seeds,
                                     const kb::KnowledgeBase& kb,
                                     int top_tables = 40) const;

 private:
  const data::Corpus* corpus_;
  std::vector<size_t> train_indices_;
  Bm25Index index_;
  /// Subject entities per indexed document (parallel to BM25 doc ids).
  std::vector<std::vector<kb::EntityId>> doc_subjects_;
};

/// The EntiTables [35] generative ranker: without seeds, rank candidates by
/// the likelihood of the query caption under a per-entity caption language
/// model (Jelinek-Mercer smoothed unigrams over the captions of training
/// tables containing the entity as a subject); with seeds, rank by entity
/// co-occurrence similarity to the seed set.
class EntiTablesRanker {
 public:
  EntiTablesRanker(const data::Corpus& corpus,
                   const std::vector<size_t>& train_indices);

  /// Scores each candidate (higher = better).
  std::vector<double> Score(const std::string& caption,
                            const std::vector<kb::EntityId>& seeds,
                            const std::vector<kb::EntityId>& candidates) const;

 private:
  double CaptionLikelihood(const std::vector<std::string>& terms,
                           kb::EntityId e) const;
  double SeedSimilarity(const std::vector<kb::EntityId>& seeds,
                        kb::EntityId e) const;

  /// Per-entity caption unigram counts and totals.
  std::unordered_map<kb::EntityId, std::unordered_map<std::string, double>>
      entity_lm_;
  std::unordered_map<kb::EntityId, double> entity_lm_total_;
  /// Background unigram model.
  std::unordered_map<std::string, double> background_lm_;
  double background_total_ = 0.0;
  /// Subject-entity co-occurrence counts.
  std::unordered_map<int64_t, double> cooc_;
  static int64_t PairKey(kb::EntityId a, kb::EntityId b);
};

/// The Table2Vec [11] ranker: skip-gram entity embeddings trained on the
/// subject-entity sequences of training tables; candidates are ranked by
/// cosine similarity to the mean seed embedding. Not applicable without
/// seeds (the paper reports "-"), where Score returns all zeros.
class Table2VecRanker {
 public:
  Table2VecRanker(const data::Corpus& corpus,
                  const std::vector<size_t>& train_indices,
                  const Word2VecConfig& config, Rng* rng);

  std::vector<double> Score(const std::vector<kb::EntityId>& seeds,
                            const std::vector<kb::EntityId>& candidates) const;

  const Word2Vec& embeddings() const { return w2v_; }

 private:
  static std::string Key(kb::EntityId e) { return std::to_string(e); }
  Word2Vec w2v_;
};

}  // namespace baselines
}  // namespace turl

#endif  // TURL_BASELINES_ROW_POPULATION_H_
