#ifndef TURL_BASELINES_WORD2VEC_H_
#define TURL_BASELINES_WORD2VEC_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace turl {
namespace baselines {

/// Skip-gram with negative sampling configuration.
struct Word2VecConfig {
  int dim = 32;
  int window = 5;
  int negative = 5;
  int epochs = 5;
  float learning_rate = 0.05f;
  int min_count = 1;
  /// Exponent of the unigram distribution used for negative sampling.
  double negative_sampling_power = 0.75;
};

/// A from-scratch Word2Vec (skip-gram + negative sampling, Mikolov et al.),
/// the workhorse behind the Table2Vec [11] and H2V baselines: items are
/// arbitrary strings (words, entity ids, headers) and sentences are the
/// per-table sequences the baselines derive from the corpus.
class Word2Vec {
 public:
  Word2Vec() = default;

  /// Trains embeddings over `sequences`. Deterministic for a fixed rng seed.
  void Train(const std::vector<std::vector<std::string>>& sequences,
             const Word2VecConfig& config, Rng* rng);

  bool Contains(const std::string& item) const;

  /// Input-embedding vector of `item`; empty when unknown.
  std::vector<float> Vector(const std::string& item) const;

  /// Cosine similarity between two items' vectors; 0 when either is unknown.
  double Similarity(const std::string& a, const std::string& b) const;

  /// Cosine similarity between `item` and the mean vector of `others`
  /// (unknown members skipped); 0 when nothing is known.
  double SimilarityToSet(const std::string& item,
                         const std::vector<std::string>& others) const;

  int vocab_size() const { return static_cast<int>(items_.size()); }
  int dim() const { return dim_; }

 private:
  int IdOf(const std::string& item) const;

  int dim_ = 0;
  std::vector<std::string> items_;
  std::unordered_map<std::string, int> ids_;
  std::vector<float> in_vectors_;   ///< vocab x dim.
  std::vector<float> out_vectors_;  ///< vocab x dim.
};

}  // namespace baselines
}  // namespace turl

#endif  // TURL_BASELINES_WORD2VEC_H_
