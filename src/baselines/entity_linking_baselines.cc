#include "baselines/entity_linking_baselines.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"
#include "util/math_util.h"

namespace turl {
namespace baselines {

namespace {

TableLinks EmptyLinks(const data::Table& table) {
  TableLinks links(static_cast<size_t>(table.num_columns()));
  for (auto& col : links) {
    col.assign(static_cast<size_t>(table.num_rows()), kb::kInvalidEntity);
  }
  return links;
}

}  // namespace

std::string EntityEmbeddingKey(kb::EntityId e) { return std::to_string(e); }

TableLinks LookupTop1Links(const data::Table& table,
                           const kb::LookupService& lookup) {
  TableLinks links = EmptyLinks(table);
  for (int c = 0; c < table.num_columns(); ++c) {
    if (!table.columns[size_t(c)].is_entity_column) continue;
    for (int r = 0; r < table.num_rows(); ++r) {
      links[size_t(c)][size_t(r)] =
          lookup.Top1(table.columns[size_t(c)].cells[size_t(r)].mention);
    }
  }
  return links;
}

T2KLinker::T2KLinker(const kb::KnowledgeBase* kb,
                     const kb::LookupService* lookup, int rounds,
                     double type_bonus)
    : kb_(kb), lookup_(lookup), rounds_(rounds), type_bonus_(type_bonus) {
  TURL_CHECK(kb != nullptr);
  TURL_CHECK(lookup != nullptr);
}

TableLinks T2KLinker::LinkTable(const data::Table& table) const {
  // Candidate lists per cell, fetched once.
  std::vector<std::vector<std::vector<kb::LookupCandidate>>> candidates(
      static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    candidates[size_t(c)].resize(static_cast<size_t>(table.num_rows()));
    if (!table.columns[size_t(c)].is_entity_column) continue;
    for (int r = 0; r < table.num_rows(); ++r) {
      candidates[size_t(c)][size_t(r)] = lookup_->Lookup(
          table.columns[size_t(c)].cells[size_t(r)].mention, 20);
    }
  }

  TableLinks links = EmptyLinks(table);
  // Round 0: lookup top-1.
  for (int c = 0; c < table.num_columns(); ++c) {
    for (int r = 0; r < table.num_rows(); ++r) {
      const auto& cands = candidates[size_t(c)][size_t(r)];
      if (!cands.empty()) links[size_t(c)][size_t(r)] = cands[0].entity;
    }
  }

  for (int round = 1; round < rounds_; ++round) {
    // Majority direct type per column from current links.
    std::vector<kb::TypeId> column_type(static_cast<size_t>(table.num_columns()),
                                        kb::kInvalidType);
    for (int c = 0; c < table.num_columns(); ++c) {
      std::unordered_map<kb::TypeId, int> votes;
      for (int r = 0; r < table.num_rows(); ++r) {
        const kb::EntityId e = links[size_t(c)][size_t(r)];
        if (e == kb::kInvalidEntity) continue;
        for (kb::TypeId t : kb_->ExpandedTypes(e)) ++votes[t];
      }
      int best_votes = 0;
      for (const auto& [t, v] : votes) {
        // Prefer the most voted type; among ties the more specific (higher
        // id, since subtypes are added after parents) wins.
        if (v > best_votes ||
            (v == best_votes && t > column_type[size_t(c)])) {
          best_votes = v;
          column_type[size_t(c)] = t;
        }
      }
    }
    // Re-rank with the type-consistency bonus.
    for (int c = 0; c < table.num_columns(); ++c) {
      if (!table.columns[size_t(c)].is_entity_column) continue;
      for (int r = 0; r < table.num_rows(); ++r) {
        const auto& cands = candidates[size_t(c)][size_t(r)];
        if (cands.empty()) continue;
        double best_score = -1.0;
        kb::EntityId best = kb::kInvalidEntity;
        for (const auto& cand : cands) {
          double score = cand.score;
          if (column_type[size_t(c)] != kb::kInvalidType &&
              kb_->EntityHasType(cand.entity, column_type[size_t(c)])) {
            score += type_bonus_;
          }
          if (score > best_score) {
            best_score = score;
            best = cand.entity;
          }
        }
        links[size_t(c)][size_t(r)] = best;
      }
    }
  }
  return links;
}

HybridLinker::HybridLinker(const kb::KnowledgeBase* kb,
                           const kb::LookupService* lookup,
                           const Word2Vec* entity_embeddings,
                           double coherence_weight)
    : kb_(kb),
      lookup_(lookup),
      embeddings_(entity_embeddings),
      coherence_weight_(coherence_weight) {
  TURL_CHECK(kb != nullptr);
  TURL_CHECK(lookup != nullptr);
  TURL_CHECK(entity_embeddings != nullptr);
}

TableLinks HybridLinker::LinkTable(const data::Table& table) const {
  TableLinks links = LookupTop1Links(table, *lookup_);

  // Context: current links of all cells (mean embedding computed per query
  // cell excluding itself).
  for (int c = 0; c < table.num_columns(); ++c) {
    if (!table.columns[size_t(c)].is_entity_column) continue;
    for (int r = 0; r < table.num_rows(); ++r) {
      const auto cands = lookup_->Lookup(
          table.columns[size_t(c)].cells[size_t(r)].mention, 20);
      if (cands.empty()) continue;
      std::vector<std::string> context;
      for (int c2 = 0; c2 < table.num_columns(); ++c2) {
        for (int r2 = 0; r2 < table.num_rows(); ++r2) {
          if (c2 == c && r2 == r) continue;
          const kb::EntityId e = links[size_t(c2)][size_t(r2)];
          if (e != kb::kInvalidEntity) {
            context.push_back(EntityEmbeddingKey(e));
          }
        }
      }
      double best_score = -1e18;
      kb::EntityId best = kb::kInvalidEntity;
      for (const auto& cand : cands) {
        const double coherence = embeddings_->SimilarityToSet(
            EntityEmbeddingKey(cand.entity), context);
        const double score = cand.score + coherence_weight_ * coherence;
        if (score > best_score) {
          best_score = score;
          best = cand.entity;
        }
      }
      links[size_t(c)][size_t(r)] = best;
    }
  }
  return links;
}

Word2Vec TrainEntityEmbeddings(const data::Corpus& corpus,
                               const std::vector<size_t>& train_indices,
                               const Word2VecConfig& config, Rng* rng) {
  std::vector<std::vector<std::string>> sequences;
  for (size_t idx : train_indices) {
    const data::Table& t = corpus.tables[idx];
    std::vector<std::string> seq;
    for (int r = 0; r < t.num_rows(); ++r) {
      for (const data::Column& col : t.columns) {
        if (!col.is_entity_column) continue;
        const data::EntityCell& cell = col.cells[size_t(r)];
        if (cell.linked()) seq.push_back(EntityEmbeddingKey(cell.entity));
      }
    }
    if (seq.size() >= 2) sequences.push_back(std::move(seq));
  }
  Word2Vec w2v;
  w2v.Train(sequences, config, rng);
  return w2v;
}

}  // namespace baselines
}  // namespace turl
