#ifndef TURL_BASELINES_ENTITY_LINKING_BASELINES_H_
#define TURL_BASELINES_ENTITY_LINKING_BASELINES_H_

#include <vector>

#include "baselines/word2vec.h"
#include "data/table.h"
#include "kb/lookup.h"
#include "util/rng.h"

namespace turl {
namespace baselines {

/// Per-table entity-linking predictions: prediction[c][r] is the linked
/// entity for cell (column c, row r), kInvalidEntity when the method makes
/// no prediction (empty candidate set). Non-entity columns stay invalid.
using TableLinks = std::vector<std::vector<kb::EntityId>>;

/// Baseline 1 — the raw lookup service: top-1 candidate per cell (the
/// paper's "Wikidata Lookup" row in Table 4).
TableLinks LookupTop1Links(const data::Table& table,
                           const kb::LookupService& lookup);

/// Baseline 2 — a T2K-style [27] iterative matcher: initialize cells with
/// lookup top-1, estimate each column's majority KB type from the current
/// links, then re-rank candidates with a type-consistency bonus; repeat for
/// a few rounds. Captures T2K's joint schema/instance matching in
/// simplified form.
class T2KLinker {
 public:
  T2KLinker(const kb::KnowledgeBase* kb, const kb::LookupService* lookup,
            int rounds = 3, double type_bonus = 0.75);

  TableLinks LinkTable(const data::Table& table) const;

 private:
  const kb::KnowledgeBase* kb_;
  const kb::LookupService* lookup_;
  int rounds_;
  double type_bonus_;
};

/// Baseline 3 — a Hybrid II-style [13] linker: lookup candidates re-ranked
/// by embedding coherence with the current links of the other cells in the
/// table (cosine to their mean Table2Vec-style embedding).
class HybridLinker {
 public:
  HybridLinker(const kb::KnowledgeBase* kb, const kb::LookupService* lookup,
               const Word2Vec* entity_embeddings, double coherence_weight = 1.0);

  TableLinks LinkTable(const data::Table& table) const;

 private:
  const kb::KnowledgeBase* kb_;
  const kb::LookupService* lookup_;
  const Word2Vec* embeddings_;
  double coherence_weight_;
};

/// Trains Table2Vec-style entity embeddings over the entity sequences of
/// the training tables (all entity columns, row-major), as Hybrid II uses.
Word2Vec TrainEntityEmbeddings(const data::Corpus& corpus,
                               const std::vector<size_t>& train_indices,
                               const Word2VecConfig& config, Rng* rng);

/// Key under which an entity id is stored in the Word2Vec vocabulary.
std::string EntityEmbeddingKey(kb::EntityId e);

}  // namespace baselines
}  // namespace turl

#endif  // TURL_BASELINES_ENTITY_LINKING_BASELINES_H_
