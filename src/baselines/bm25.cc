#include "baselines/bm25.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace turl {
namespace baselines {

Bm25Index::Bm25Index(double k1, double b) : k1_(k1), b_(b) {}

size_t Bm25Index::AddDocument(const std::vector<std::string>& tokens) {
  TURL_CHECK(!finalized_) << "AddDocument after Finalize";
  const size_t doc = doc_lengths_.size();
  doc_lengths_.push_back(static_cast<int>(tokens.size()));
  std::unordered_map<std::string, int> tf;
  for (const auto& t : tokens) ++tf[t];
  for (const auto& [term, freq] : tf) {
    postings_[term].emplace_back(doc, freq);
  }
  return doc;
}

void Bm25Index::Finalize() {
  TURL_CHECK(!finalized_);
  finalized_ = true;
  double total = 0;
  for (int len : doc_lengths_) total += len;
  avg_doc_length_ =
      doc_lengths_.empty() ? 0.0 : total / double(doc_lengths_.size());
  const double n = double(doc_lengths_.size());
  for (const auto& [term, posts] : postings_) {
    const double df = double(posts.size());
    idf_[term] = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
  }
}

std::vector<Bm25Hit> Bm25Index::Search(const std::vector<std::string>& query,
                                       int k) const {
  TURL_CHECK(finalized_) << "Search before Finalize";
  std::unordered_map<size_t, double> scores;
  for (const auto& term : query) {
    auto pit = postings_.find(term);
    if (pit == postings_.end()) continue;
    const double idf = idf_.at(term);
    for (const auto& [doc, tf] : pit->second) {
      const double len_norm =
          1.0 - b_ + b_ * double(doc_lengths_[doc]) /
                         std::max(avg_doc_length_, 1e-9);
      const double s =
          idf * (double(tf) * (k1_ + 1.0)) / (double(tf) + k1_ * len_norm);
      scores[doc] += s;
    }
  }
  std::vector<Bm25Hit> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) hits.push_back({doc, score});
  std::sort(hits.begin(), hits.end(), [](const Bm25Hit& a, const Bm25Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (k >= 0 && static_cast<int>(hits.size()) > k) {
    hits.resize(static_cast<size_t>(k));
  }
  return hits;
}

}  // namespace baselines
}  // namespace turl
