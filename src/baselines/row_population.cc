#include "baselines/row_population.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "text/wordpiece.h"
#include "util/logging.h"

namespace turl {
namespace baselines {

namespace {

/// Subject entities (linked cells of column 0) of a table.
std::vector<kb::EntityId> SubjectEntities(const data::Table& t) {
  std::vector<kb::EntityId> out;
  if (t.columns.empty() || !t.columns[0].is_entity_column) return out;
  for (const auto& cell : t.columns[0].cells) {
    if (cell.linked()) out.push_back(cell.entity);
  }
  return out;
}

}  // namespace

RowPopCandidateGenerator::RowPopCandidateGenerator(
    const data::Corpus& corpus, const std::vector<size_t>& train_indices)
    : corpus_(&corpus), train_indices_(train_indices) {
  for (size_t idx : train_indices_) {
    const data::Table& t = corpus.tables[idx];
    index_.AddDocument(text::BasicTokenize(t.caption));
    doc_subjects_.push_back(SubjectEntities(t));
  }
  index_.Finalize();
}

std::vector<kb::EntityId> RowPopCandidateGenerator::Generate(
    const std::string& caption, const std::vector<kb::EntityId>& seeds,
    const kb::KnowledgeBase& kb, int top_tables) const {
  std::vector<std::string> query = text::BasicTokenize(caption);
  for (kb::EntityId seed : seeds) {
    for (const std::string& w : text::BasicTokenize(kb.entity(seed).name)) {
      query.push_back(w);
    }
  }
  const std::vector<Bm25Hit> hits = index_.Search(query, top_tables);

  std::vector<kb::EntityId> candidates;
  std::unordered_set<kb::EntityId> seen(seeds.begin(), seeds.end());
  for (const Bm25Hit& hit : hits) {
    for (kb::EntityId e : doc_subjects_[hit.doc]) {
      if (seen.insert(e).second) candidates.push_back(e);
    }
  }
  return candidates;
}

int64_t EntiTablesRanker::PairKey(kb::EntityId a, kb::EntityId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<int64_t>(a) << 32) | static_cast<uint32_t>(b);
}

EntiTablesRanker::EntiTablesRanker(const data::Corpus& corpus,
                                   const std::vector<size_t>& train_indices) {
  for (size_t idx : train_indices) {
    const data::Table& t = corpus.tables[idx];
    const std::vector<kb::EntityId> subjects = SubjectEntities(t);
    const std::vector<std::string> terms = text::BasicTokenize(t.caption);
    for (const std::string& w : terms) {
      background_lm_[w] += 1.0;
      background_total_ += 1.0;
    }
    for (kb::EntityId e : subjects) {
      auto& lm = entity_lm_[e];
      for (const std::string& w : terms) {
        lm[w] += 1.0;
        entity_lm_total_[e] += 1.0;
      }
    }
    for (size_t i = 0; i < subjects.size(); ++i) {
      for (size_t j = i + 1; j < subjects.size(); ++j) {
        if (subjects[i] == subjects[j]) continue;
        cooc_[PairKey(subjects[i], subjects[j])] += 1.0;
      }
    }
  }
}

double EntiTablesRanker::CaptionLikelihood(
    const std::vector<std::string>& terms, kb::EntityId e) const {
  auto lm_it = entity_lm_.find(e);
  const double total =
      lm_it == entity_lm_.end() ? 0.0 : entity_lm_total_.at(e);
  constexpr double kLambda = 0.5;  // Jelinek-Mercer mixing weight.
  double loglik = 0.0;
  for (const std::string& w : terms) {
    double p_entity = 0.0;
    if (lm_it != entity_lm_.end() && total > 0) {
      auto wit = lm_it->second.find(w);
      if (wit != lm_it->second.end()) p_entity = wit->second / total;
    }
    double p_bg = 0.0;
    auto bit = background_lm_.find(w);
    if (bit != background_lm_.end() && background_total_ > 0) {
      p_bg = bit->second / background_total_;
    }
    loglik += std::log(kLambda * p_entity + (1.0 - kLambda) * p_bg + 1e-9);
  }
  return loglik;
}

double EntiTablesRanker::SeedSimilarity(const std::vector<kb::EntityId>& seeds,
                                        kb::EntityId e) const {
  double sim = 0.0;
  for (kb::EntityId s : seeds) {
    auto it = cooc_.find(PairKey(s, e));
    if (it != cooc_.end()) sim += std::log1p(it->second);
  }
  return seeds.empty() ? 0.0 : sim / double(seeds.size());
}

std::vector<double> EntiTablesRanker::Score(
    const std::string& caption, const std::vector<kb::EntityId>& seeds,
    const std::vector<kb::EntityId>& candidates) const {
  std::vector<double> scores;
  scores.reserve(candidates.size());
  if (seeds.empty()) {
    const std::vector<std::string> terms = text::BasicTokenize(caption);
    for (kb::EntityId e : candidates) {
      scores.push_back(CaptionLikelihood(terms, e));
    }
  } else {
    for (kb::EntityId e : candidates) {
      scores.push_back(SeedSimilarity(seeds, e));
    }
  }
  return scores;
}

Table2VecRanker::Table2VecRanker(const data::Corpus& corpus,
                                 const std::vector<size_t>& train_indices,
                                 const Word2VecConfig& config, Rng* rng) {
  std::vector<std::vector<std::string>> sequences;
  sequences.reserve(train_indices.size());
  for (size_t idx : train_indices) {
    std::vector<std::string> seq;
    for (kb::EntityId e : SubjectEntities(corpus.tables[idx])) {
      seq.push_back(Key(e));
    }
    if (seq.size() >= 2) sequences.push_back(std::move(seq));
  }
  w2v_.Train(sequences, config, rng);
}

std::vector<double> Table2VecRanker::Score(
    const std::vector<kb::EntityId>& seeds,
    const std::vector<kb::EntityId>& candidates) const {
  std::vector<double> scores(candidates.size(), 0.0);
  if (seeds.empty()) return scores;  // Not applicable without seeds.
  std::vector<std::string> seed_keys;
  for (kb::EntityId s : seeds) seed_keys.push_back(Key(s));
  for (size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = w2v_.SimilarityToSet(Key(candidates[i]), seed_keys);
  }
  return scores;
}

}  // namespace baselines
}  // namespace turl
