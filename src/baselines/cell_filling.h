#ifndef TURL_BASELINES_CELL_FILLING_H_
#define TURL_BASELINES_CELL_FILLING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/word2vec.h"
#include "data/table.h"
#include "util/rng.h"

namespace turl {
namespace baselines {

/// A cell-filling candidate: an object entity seen in the same row as the
/// query subject somewhere in the training corpus, with the headers it was
/// seen under.
struct CellCandidate {
  kb::EntityId entity = kb::kInvalidEntity;
  std::vector<std::string> source_headers;
};

/// The candidate-value-finding module shared by all cell-filling methods
/// (§6.6, after CellAutoComplete [36]): for subject entity e and target
/// header h, candidates are entities co-occurring with e in a row of some
/// training table, optionally filtered to source headers with
/// P(h'|h) > 0 (Eqn. 14). Also provides the header-translation statistics
/// n(h', h) that the H2H ranker uses.
class CellFillingIndex {
 public:
  CellFillingIndex(const data::Corpus& corpus,
                   const std::vector<size_t>& train_indices);

  /// All row-mates of `subject` (across training tables), with headers.
  std::vector<CellCandidate> CandidatesFor(kb::EntityId subject) const;

  /// Candidates filtered to those with some source header h' such that
  /// P(h'|h) > 0 for the target header.
  std::vector<CellCandidate> CandidatesFor(kb::EntityId subject,
                                           const std::string& target_header)
      const;

  /// Eqn. 14: P(h'|h) = n(h',h) / sum_h'' n(h'',h), where n counts table
  /// pairs sharing the same (subject, object) under headers h' and h.
  double HeaderTranslation(const std::string& source_header,
                           const std::string& target_header) const;

  /// All headers observed in training object columns.
  std::vector<std::string> ObservedHeaders() const;

 private:
  /// subject -> (object, header) occurrences.
  std::unordered_map<kb::EntityId,
                     std::vector<std::pair<kb::EntityId, std::string>>>
      row_mates_;
  /// n(h', h) keyed by "h'|h" (unordered pair counted both ways).
  std::unordered_map<std::string, double> header_pair_counts_;
  std::unordered_map<std::string, double> header_marginal_;
};

/// The three header-similarity rankers from §6.6. Scores candidates for a
/// target header; higher is better, 0 when no evidence.
class CellFillingRankers {
 public:
  /// `w2v` must be trained on header sequences (one per training table) —
  /// the H2V baseline of [11]. The index provides H2H statistics.
  CellFillingRankers(const CellFillingIndex* index, const Word2Vec* header_w2v);

  /// Exact: 1 when some source header equals the target header.
  double ScoreExact(const CellCandidate& candidate,
                    const std::string& target_header) const;

  /// H2H: max over source headers of P(h'|h) (Eqn. 15 with sim = P(h'|h)).
  double ScoreH2H(const CellCandidate& candidate,
                  const std::string& target_header) const;

  /// H2V: max over source headers of embedding cosine similarity.
  double ScoreH2V(const CellCandidate& candidate,
                  const std::string& target_header) const;

 private:
  const CellFillingIndex* index_;
  const Word2Vec* header_w2v_;
};

/// Trains the H2V header embeddings: one "sentence" per training table
/// listing its (normalized) headers.
Word2Vec TrainHeaderEmbeddings(const data::Corpus& corpus,
                               const std::vector<size_t>& train_indices,
                               const Word2VecConfig& config, Rng* rng);

}  // namespace baselines
}  // namespace turl

#endif  // TURL_BASELINES_CELL_FILLING_H_
