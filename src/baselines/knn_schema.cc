#include "baselines/knn_schema.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "text/wordpiece.h"
#include "util/string_util.h"

namespace turl {
namespace baselines {

KnnSchemaRecommender::KnnSchemaRecommender(
    const data::Corpus& corpus, const std::vector<size_t>& train_indices)
    : corpus_(&corpus), train_indices_(train_indices) {
  // Document frequencies over training captions.
  std::unordered_map<std::string, double> df;
  std::vector<std::vector<std::string>> docs;
  docs.reserve(train_indices_.size());
  for (size_t idx : train_indices_) {
    docs.push_back(text::BasicTokenize(corpus.tables[idx].caption));
    std::unordered_set<std::string> uniq(docs.back().begin(),
                                         docs.back().end());
    for (const std::string& t : uniq) df[t] += 1.0;
  }
  const double n = double(std::max<size_t>(train_indices_.size(), 1));
  for (const auto& [term, d] : df) {
    idf_[term] = std::log((n + 1.0) / (d + 1.0)) + 1.0;
  }
  doc_vectors_.reserve(docs.size());
  for (const auto& tokens : docs) doc_vectors_.push_back(TfIdf(tokens));
}

std::unordered_map<std::string, double> KnnSchemaRecommender::TfIdf(
    const std::vector<std::string>& tokens) const {
  std::unordered_map<std::string, double> v;
  for (const std::string& t : tokens) v[t] += 1.0;
  double norm = 0.0;
  for (auto& [term, tf] : v) {
    auto it = idf_.find(term);
    const double idf = it == idf_.end() ? 1.0 : it->second;
    tf = tf * idf;
    norm += tf * tf;
  }
  norm = std::sqrt(norm);
  if (norm > 0) {
    for (auto& [term, w] : v) w /= norm;
  }
  return v;
}

double KnnSchemaRecommender::Cosine(
    const std::unordered_map<std::string, double>& a,
    const std::unordered_map<std::string, double>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [term, w] : small) {
    auto it = large.find(term);
    if (it != large.end()) dot += w * it->second;
  }
  return dot;  // Vectors are pre-normalized.
}

std::vector<KnnNeighbor> KnnSchemaRecommender::Neighbors(
    const std::string& caption, int k) const {
  const auto query = TfIdf(text::BasicTokenize(caption));
  std::vector<KnnNeighbor> all;
  all.reserve(doc_vectors_.size());
  for (size_t i = 0; i < doc_vectors_.size(); ++i) {
    const double sim = Cosine(query, doc_vectors_[i]);
    if (sim > 0) all.push_back({train_indices_[i], sim});
  }
  std::sort(all.begin(), all.end(), [](const KnnNeighbor& a,
                                       const KnnNeighbor& b) {
    if (a.similarity != b.similarity) return a.similarity > b.similarity;
    return a.table_index < b.table_index;
  });
  if (k >= 0 && static_cast<int>(all.size()) > k) {
    all.resize(static_cast<size_t>(k));
  }
  return all;
}

std::vector<HeaderSuggestion> KnnSchemaRecommender::Recommend(
    const std::string& caption, const std::vector<std::string>& seed_headers,
    int num_neighbors, int max_suggestions) const {
  std::unordered_set<std::string> seeds;
  for (const std::string& s : seed_headers) seeds.insert(NormalizeSurface(s));

  std::vector<KnnNeighbor> neighbors = Neighbors(caption, num_neighbors);
  std::unordered_map<std::string, double> scores;
  for (const KnnNeighbor& nb : neighbors) {
    const data::Table& t = corpus_->tables[nb.table_index];
    // Seed re-weighting: neighbors sharing seed headers count more ([35]).
    double weight = nb.similarity;
    if (!seeds.empty()) {
      int overlap = 0;
      for (const data::Column& col : t.columns) {
        if (seeds.count(NormalizeSurface(col.header))) ++overlap;
      }
      weight *= 1.0 + double(overlap);
    }
    for (const data::Column& col : t.columns) {
      const std::string h = NormalizeSurface(col.header);
      if (h.empty() || seeds.count(h)) continue;
      scores[h] += weight;
    }
  }

  std::vector<HeaderSuggestion> out;
  out.reserve(scores.size());
  for (const auto& [h, s] : scores) out.push_back({h, s});
  std::sort(out.begin(), out.end(),
            [](const HeaderSuggestion& a, const HeaderSuggestion& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.header < b.header;
            });
  if (static_cast<int>(out.size()) > max_suggestions) {
    out.resize(static_cast<size_t>(max_suggestions));
  }
  return out;
}

}  // namespace baselines
}  // namespace turl
