#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.h"
#include "util/serialize.h"

namespace turl {
namespace obs {

namespace {
// util can't depend on obs, so the serialize layer exposes a plain function
// hook for unchecked write errors; any binary that links obs gets them
// counted as `serialize.unchecked_write_errors`.
const bool g_serialize_hook_installed = [] {
  SetUncheckedWriteErrorHook([](const std::string& /*path*/) {
    MetricsRegistry::Get()
        .GetCounter("serialize.unchecked_write_errors")
        ->Inc();
  });
  return true;
}();
}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {
  TURL_CHECK(!bounds_.empty());
  TURL_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double v) {
  const size_t idx = size_t(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / double(count_);
}

double Histogram::Percentile(double p) const {
  TURL_CHECK_GE(p, 0.0);
  TURL_CHECK_LE(p, 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  const double target = p * double(count_);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const int64_t next = cumulative + buckets_[i];
    if (double(next) >= target) {
      // Interpolate within [lo, hi); the overflow bucket has no upper bound,
      // so use the observed max there (and clamp everywhere to min/max).
      const double lo = i == 0 ? min_ : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : max_;
      const double frac =
          buckets_[i] == 0 ? 0.0
                           : (target - double(cumulative)) / double(buckets_[i]);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

std::vector<double> Histogram::DefaultLatencyBucketsMs() {
  // 1us .. ~137s in x2 steps: 28 buckets plus the overflow bucket.
  std::vector<double> bounds;
  for (double b = 1e-3; b < 2e5; b *= 2.0) bounds.push_back(b);
  return bounds;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, Histogram::DefaultLatencyBucketsMs());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return slot.get();
}

void MetricsRegistry::SetHelp(const std::string& name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[name] = std::move(help);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ",") << '"' << JsonEscape(name)
        << "\":" << c->Value();
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ",") << '"' << JsonEscape(name)
        << "\":" << JsonDouble(g->Value());
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "" : ",") << '"' << JsonEscape(name) << "\":{"
        << "\"count\":" << h->count() << ",\"sum\":" << JsonDouble(h->sum())
        << ",\"mean\":" << JsonDouble(h->Mean())
        << ",\"p50\":" << JsonDouble(h->Percentile(0.5))
        << ",\"p95\":" << JsonDouble(h->Percentile(0.95))
        << ",\"p99\":" << JsonDouble(h->Percentile(0.99))
        << ",\"max\":" << JsonDouble(h->max()) << '}';
    first = false;
  }
  out << "}}";
  return out.str();
}

std::string MetricsRegistry::ToTable() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  char line[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof(line), "%-40s %12lld\n", name.c_str(),
                  static_cast<long long>(c->Value()));
    out << line;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof(line), "%-40s %12.4f\n", name.c_str(),
                  g->Value());
    out << line;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(line, sizeof(line),
                  "%-40s count %8lld  mean %9.3f  p50 %9.3f  p95 %9.3f  "
                  "p99 %9.3f  max %9.3f\n",
                  name.c_str(), static_cast<long long>(h->count()), h->Mean(),
                  h->Percentile(0.5), h->Percentile(0.95), h->Percentile(0.99),
                  h->max());
    out << line;
  }
  return out.str();
}

std::string PrometheusName(const std::string& name) {
  std::string out = "turl_";
  out.reserve(name.size() + 5);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string PrometheusLabelEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PrometheusHelpEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

/// Prometheus float formatting: finite values compactly, non-finite as the
/// spelled-out tokens the exposition format defines.
std::string PrometheusDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Distinct raw names may sanitize to the same exposition name ("a.b" vs
/// "a_b"); a family must not appear twice, so collisions get a _dupN suffix.
class FamilyNamer {
 public:
  std::string Unique(const std::string& raw) {
    std::string pn = PrometheusName(raw);
    const int n = seen_[pn]++;
    if (n > 0) pn += "_dup" + std::to_string(n);
    return pn;
  }

 private:
  std::map<std::string, int> seen_;
};

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  FamilyNamer namer;
  const auto help_for = [this](const std::string& name, const char* kind) {
    const auto it = help_.find(name);
    if (it != help_.end()) return PrometheusHelpEscape(it->second);
    return PrometheusHelpEscape("TURL " + std::string(kind) + " '" + name +
                                "'");
  };
  for (const auto& [name, c] : counters_) {
    const std::string pn = namer.Unique(name);
    out << "# HELP " << pn << ' ' << help_for(name, "counter") << '\n'
        << "# TYPE " << pn << " counter\n"
        << pn << ' ' << c->Value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = namer.Unique(name);
    out << "# HELP " << pn << ' ' << help_for(name, "gauge") << '\n'
        << "# TYPE " << pn << " gauge\n"
        << pn << ' ' << PrometheusDouble(g->Value()) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = namer.Unique(name);
    out << "# HELP " << pn << ' ' << help_for(name, "histogram") << '\n'
        << "# TYPE " << pn << " histogram\n";
    const std::vector<double>& bounds = h->bounds();
    const std::vector<int64_t> buckets = h->BucketCounts();
    int64_t cumulative = 0;
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += buckets[i];
      out << pn << "_bucket{le=\""
          << PrometheusLabelEscape(PrometheusDouble(bounds[i])) << "\"} "
          << cumulative << '\n';
    }
    cumulative += buckets.back();
    // _count comes from the same bucket snapshot as the cumulative series, so
    // le="+Inf" always equals _count even while observations race the scrape.
    out << pn << "_bucket{le=\"+Inf\"} " << cumulative << '\n'
        << pn << "_sum " << PrometheusDouble(h->sum()) << '\n'
        << pn << "_count " << cumulative << '\n';
  }
  return out.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace turl
