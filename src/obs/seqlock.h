#ifndef TURL_OBS_SEQLOCK_H_
#define TURL_OBS_SEQLOCK_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace turl {
namespace obs {

/// One slot of a single-producer ring with lock-free concurrent readers —
/// the discipline shared by TraceRing and EventRing. The payload is stored
/// as relaxed atomic words rather than a plain T so the deliberate
/// cross-thread copy is race-free by construction, not merely
/// benign-under-validation: a reader racing the producer may still observe
/// torn words, but every access is an atomic operation (no undefined
/// behaviour, nothing for TSan to flag) and the sequence check discards the
/// torn copy. This is the standard C++11 seqlock encoding (Boehm, "Can
/// seqlocks get along with programming language memory models?", MSPC'12).
///
/// Sequence protocol: seq == 2n+1 marks logical record n in flight,
/// seq == 2(n+1) marks it complete. A reader accepts a copy only if seq
/// reads exactly 2(n+1) both before and after the word copy — the pre-check
/// rejects lapped/in-flight slots cheaply, the post-check (ordered by an
/// acquire fence) rejects copies the producer overwrote mid-read.
template <typename T>
class SeqlockSlot {
  static_assert(std::is_trivially_copyable<T>::value,
                "seqlock payloads are copied word-by-word");

 public:
  /// Publishes `value` as logical record `n`. Producer thread only.
  void Store(uint64_t n, const T& value) {
    uint64_t words[kWords] = {};
    std::memcpy(words, &value, sizeof(T));
    seq_.store(2 * n + 1, std::memory_order_relaxed);
    // Order the odd "in flight" mark before the payload stores: a reader
    // that observes any new word also observes the odd seq on its re-check.
    std::atomic_thread_fence(std::memory_order_release);
    for (size_t w = 0; w < kWords; ++w) {
      words_[w].store(words[w], std::memory_order_relaxed);
    }
    seq_.store(2 * (n + 1), std::memory_order_release);
  }

  /// Copies logical record `n` into `*out`; any thread. Returns false
  /// (clobbering *out) when the producer is mid-write or has lapped the
  /// slot.
  bool TryLoad(uint64_t n, T* out) const {
    if (seq_.load(std::memory_order_acquire) != 2 * (n + 1)) return false;
    uint64_t words[kWords];
    for (size_t w = 0; w < kWords; ++w) {
      words[w] = words_[w].load(std::memory_order_relaxed);
    }
    // Order the payload loads before the re-check: a producer that started
    // record n+cap mid-copy shows its odd mark (or a later seq) here.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) != 2 * (n + 1)) return false;
    std::memcpy(out, words, sizeof(T));
    return true;
  }

 private:
  static constexpr size_t kWords =
      (sizeof(T) + sizeof(uint64_t) - 1) / sizeof(uint64_t);
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> words_[kWords] = {};
};

}  // namespace obs
}  // namespace turl

#endif  // TURL_OBS_SEQLOCK_H_
