#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"

namespace turl {
namespace obs {

namespace {

/// TURL_PROFILE=1 enables profiling from process start; TURL_PROFILE=0 pins
/// it off even if code calls SetEnabled(true).
enum class EnvPolicy { kDefault, kForceOn, kForceOff };

EnvPolicy ReadEnvPolicy() {
  const char* v = std::getenv("TURL_PROFILE");
  if (v == nullptr) return EnvPolicy::kDefault;
  if (std::strcmp(v, "0") == 0) return EnvPolicy::kForceOff;
  return EnvPolicy::kForceOn;
}

const EnvPolicy g_env_policy = ReadEnvPolicy();

/// Per-thread accumulator of child-span time: one slot per open span on this
/// thread; a closing span pops its slot and adds its duration to the parent.
thread_local std::vector<double> tls_child_ms;

}  // namespace

struct Profiler::Agg {
  Agg() : durations(Histogram::DefaultLatencyBucketsMs()) {}
  int64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
  Histogram durations;
};

std::atomic<bool> Profiler::enabled_{ReadEnvPolicy() == EnvPolicy::kForceOn};

Profiler::Profiler() = default;

Profiler& Profiler::Get() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

void Profiler::SetEnabled(bool on) {
  if (on && g_env_policy == EnvPolicy::kForceOff) return;
  enabled_.store(on, std::memory_order_relaxed);
}

void Profiler::Record(const char* name, double total_ms, double self_ms) {
  Agg* agg;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = spans_[name];
    if (!slot) slot = std::make_unique<Agg>();
    agg = slot.get();
    ++agg->count;
    agg->total_ms += total_ms;
    agg->self_ms += self_ms;
  }
  // The histogram has its own mutex; no need to hold the map lock.
  agg->durations.Observe(total_ms);
}

std::vector<SpanStats> Profiler::Report() const {
  std::vector<SpanStats> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(spans_.size());
  for (const auto& [name, agg] : spans_) {
    SpanStats s;
    s.name = name;
    s.count = agg->count;
    s.total_ms = agg->total_ms;
    s.self_ms = agg->self_ms;
    s.p50_ms = agg->durations.Percentile(0.5);
    s.p95_ms = agg->durations.Percentile(0.95);
    s.max_ms = agg->durations.max();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    return a.total_ms > b.total_ms;
  });
  return out;
}

std::string Profiler::ReportTable() const {
  std::vector<SpanStats> report = Report();
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-32s %10s %12s %12s %10s %10s %10s\n",
                "span", "count", "total_ms", "self_ms", "p50_ms", "p95_ms",
                "max_ms");
  out << line;
  for (const SpanStats& s : report) {
    std::snprintf(line, sizeof(line),
                  "%-32s %10lld %12.2f %12.2f %10.4f %10.4f %10.4f\n",
                  s.name.c_str(), static_cast<long long>(s.count), s.total_ms,
                  s.self_ms, s.p50_ms, s.p95_ms, s.max_ms);
    out << line;
  }
  return out.str();
}

std::string Profiler::ReportJson() const {
  std::vector<SpanStats> report = Report();
  std::ostringstream out;
  out << '[';
  for (size_t i = 0; i < report.size(); ++i) {
    const SpanStats& s = report[i];
    out << (i == 0 ? "" : ",") << "{\"name\":\"" << JsonEscape(s.name)
        << "\",\"count\":" << s.count
        << ",\"total_ms\":" << JsonDouble(s.total_ms)
        << ",\"self_ms\":" << JsonDouble(s.self_ms)
        << ",\"p50_ms\":" << JsonDouble(s.p50_ms)
        << ",\"p95_ms\":" << JsonDouble(s.p95_ms)
        << ",\"max_ms\":" << JsonDouble(s.max_ms) << '}';
  }
  out << ']';
  return out.str();
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

void ScopedSpan::Begin(const char* name) {
  name_ = name;
  tls_child_ms.push_back(0.0);
  start_ = std::chrono::steady_clock::now();
}

void ScopedSpan::End() {
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  const double child_ms = tls_child_ms.back();
  tls_child_ms.pop_back();
  if (!tls_child_ms.empty()) tls_child_ms.back() += ms;
  Profiler::Get().Record(name_, ms, ms - child_ms);
}

bool WriteObsJson(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return false;
  out << "{\"spans\":" << Profiler::Get().ReportJson()
      << ",\"metrics\":" << MetricsRegistry::Get().ToJson() << "}\n";
  return out.good();
}

}  // namespace obs
}  // namespace turl
