#ifndef TURL_OBS_TELEMETRY_H_
#define TURL_OBS_TELEMETRY_H_

#include <cstdint>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/timer.h"

namespace turl {
namespace obs {

/// One structured training-progress record. Optional numeric fields default
/// to NaN and are omitted from the serialized form; `eval_value` is
/// interpreted by `eval_metric` (e.g. "object_prediction_acc", "valid_map").
struct TrainRecord {
  static constexpr double kUnset = std::numeric_limits<double>::quiet_NaN();

  std::string phase;  ///< "pretrain", "finetune.entity_linking", ...
  int64_t step = 0;
  int epoch = -1;  ///< -1 when the phase has no epoch notion.
  double loss = kUnset;
  double mlm_loss = kUnset;
  double mer_loss = kUnset;
  double eval_value = kUnset;
  std::string eval_metric;
  double tables_per_sec = kUnset;
  double elapsed_sec = 0.0;
  /// Global gradient norm of the step (pre-clipping), when the loop
  /// measured it.
  double grad_norm = kUnset;
  /// Non-empty marks a model-health warning record (NaN/Inf loss or
  /// gradients, exploding grad norm) — see RecordTrainHealth.
  std::string warning;
};

/// Single-line JSON serialization of a record (absent fields omitted).
std::string ToJsonLine(const TrainRecord& record);

/// Receiver of training telemetry. Implementations must be thread-safe:
/// records can arrive from any thread.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void Emit(const TrainRecord& record) = 0;
  virtual void Flush() {}
};

/// Pretty one-line-per-record printer for interactive runs.
class StderrSink : public MetricsSink {
 public:
  void Emit(const TrainRecord& record) override;
};

/// Appends one JSON object per record to a file — the machine-readable
/// training log (`TURL_METRICS_JSONL=out.jsonl`).
class JsonlSink : public MetricsSink {
 public:
  explicit JsonlSink(const std::string& path);
  void Emit(const TrainRecord& record) override;
  void Flush() override;
  bool ok() const { return out_.is_open(); }

 private:
  std::mutex mu_;
  std::ofstream out_;
};

/// Process-wide fan-out point. Training loops emit here; sinks subscribe.
/// On first use the hub wires sinks from the environment: TURL_METRICS_JSONL
/// (a path) adds a JsonlSink, TURL_METRICS_STDERR=1 adds a StderrSink.
class TelemetryHub {
 public:
  static TelemetryHub& Get();

  /// Forwards to every sink and mirrors loss/eval/throughput into gauges
  /// ("<phase>.loss", ...) and the "<phase>.records" counter of the global
  /// MetricsRegistry.
  void Emit(const TrainRecord& record);

  /// Non-owning; caller keeps `sink` alive until RemoveSink. For tests and
  /// caller-managed sinks.
  void AddSink(MetricsSink* sink);
  void RemoveSink(MetricsSink* sink);
  void AddOwnedSink(std::unique_ptr<MetricsSink> sink);

 private:
  TelemetryHub();

  std::mutex mu_;
  std::vector<MetricsSink*> sinks_;
  std::vector<std::unique_ptr<MetricsSink>> owned_;
};

/// Emits to the global hub plus an optional additional per-call sink — the
/// one-liner training loops use so a caller-supplied sink needs no global
/// registration.
void EmitRecord(const TrainRecord& record, MetricsSink* extra = nullptr);

/// Model-health check every training loop runs once per optimizer step:
/// mirrors `grad_norm` into the "train.grad_norm" gauge, and when the loss
/// or gradient norm is NaN/Inf (counter "obs.nonfinite_grads") or the norm
/// exceeds `explode_threshold` (counter "obs.exploding_grads"), emits a
/// warning TrainRecord through the hub so the condition is visible in every
/// configured sink. Healthy steps emit nothing.
void RecordTrainHealth(const std::string& phase, int64_t step, double loss,
                       double grad_norm, MetricsSink* extra = nullptr,
                       double explode_threshold = 1e3);

/// Per-epoch telemetry helper for the fine-tuning heads: accumulates
/// per-table losses, then emits one record per epoch (mean loss, tables/sec,
/// elapsed) plus optional eval records, under a fixed phase name.
class FinetuneTelemetry {
 public:
  FinetuneTelemetry(std::string phase, MetricsSink* extra);

  /// One optimizer step over one table.
  void Step(double loss);
  /// Same, with the step's (pre-clip) gradient norm; also runs the
  /// RecordTrainHealth NaN/Inf/explosion check (a NaN norm here is a
  /// measured non-finite gradient, not "unmeasured").
  void Step(double loss, double grad_norm);
  void EndEpoch(int epoch);
  /// An evaluation result observed mid-training (e.g. validation MAP).
  void Eval(const std::string& metric, double value);

  int64_t steps() const { return total_steps_; }

 private:
  std::string phase_;
  MetricsSink* extra_;
  WallTimer timer_;
  int64_t total_steps_ = 0;
  int64_t epoch_steps_ = 0;
  double epoch_loss_ = 0.0;
};

}  // namespace obs
}  // namespace turl

#endif  // TURL_OBS_TELEMETRY_H_
