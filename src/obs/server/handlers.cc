#include "obs/server/handlers.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <sstream>

#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/server/process_stats.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace turl {
namespace obs {
namespace server {

size_t QueryParamSizeT(const HttpRequest& request, const char* key,
                       size_t fallback, size_t max_value) {
  const auto it = request.query.find(key);
  if (it == request.query.end()) return fallback;
  const long long v = std::atoll(it->second.c_str());
  if (v <= 0) return fallback;
  return std::min(static_cast<size_t>(v), max_value);
}

std::string QueryParamString(const HttpRequest& request, const char* key,
                             const std::string& fallback) {
  const auto it = request.query.find(key);
  return it == request.query.end() ? fallback : it->second;
}

namespace {

/// Positive query parameter with bounds; `fallback` when absent/garbage.
size_t QueryParam(const HttpRequest& request, const char* key, size_t fallback,
                  size_t max_value) {
  return QueryParamSizeT(request, key, fallback, max_value);
}

bool WantsJson(const HttpRequest& request) {
  const auto it = request.query.find("format");
  return it != request.query.end() && it->second == "json";
}

HttpResponse IndexHandler(const ObsServer* server) {
  std::ostringstream body;
  body << "turl observability plane\nendpoints:\n";
  for (const std::string& path : server->paths()) body << "  " << path << '\n';
  HttpResponse resp;
  resp.body = body.str();
  return resp;
}

HttpResponse MetricsHandler(const HttpRequest&) {
  UpdateProcessGauges();
  HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  resp.body = MetricsRegistry::Get().ToPrometheusText();
  // SLI windows ride along after the registry exposition; their p99 series
  // carry exemplar trace ids resolvable on /tracez.
  resp.body += SliMetricsText();
  return resp;
}

HttpResponse HealthzHandler(const HttpRequest&) {
  const std::vector<HealthRegistry::Result> results =
      HealthRegistry::Get().RunAll();
  bool healthy = true;
  std::ostringstream body;
  for (const auto& r : results) {
    healthy = healthy && r.ok;
    body << "probe " << r.name << ": " << (r.ok ? "ok" : "FAIL");
    if (!r.detail.empty()) body << " (" << r.detail << ')';
    body << '\n';
  }
  HttpResponse resp;
  resp.status = healthy ? 200 : 503;
  resp.body = (healthy ? "status: ok\n" : "status: unhealthy\n") + body.str();
  return resp;
}

HttpResponse VarzHandler(const HttpRequest&) {
  UpdateProcessGauges();
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = MetricsRegistry::Get().ToJson();
  resp.body += '\n';
  return resp;
}

HttpResponse TracezHandler(const HttpRequest& request) {
  HttpResponse resp;
  if (WantsJson(request)) {
    // Chrome-trace slice of the most recent spans, loadable in Perfetto.
    const size_t limit = QueryParam(request, "limit", 256, 16384);
    resp.content_type = "application/json";
    resp.body = ChromeTraceJson(limit);
    resp.body += '\n';
    return resp;
  }
  const size_t slow = QueryParam(request, "slow", 10, 1000);
  Tracer& tracer = Tracer::Get();
  std::ostringstream body;
  body << "tracing: " << (Tracer::Enabled() ? "enabled" : "disabled")
       << "  (events retained " << tracer.collector().Snapshot().size()
       << ", dropped " << tracer.collector().dropped() << ")\n\n"
       << SlowTraceReport(slow)
       << "\n(?slow=N for more rows; ?format=json&limit=N for a Chrome-trace "
          "slice)\n";
  resp.body = body.str();
  return resp;
}

HttpResponse ProfilezHandler(const HttpRequest& request) {
  HttpResponse resp;
  if (WantsJson(request)) {
    resp.content_type = "application/json";
    resp.body = "{\"spans\":" + Profiler::Get().ReportJson() + "}\n";
    return resp;
  }
  std::ostringstream body;
  body << "profiling: " << (Profiler::Enabled() ? "enabled" : "disabled")
       << "\n\n"
       << Profiler::Get().ReportTable();
  resp.body = body.str();
  return resp;
}

std::string SnapshotJson(const SliSnapshot& s) {
  std::ostringstream out;
  out << "{\"window_s\":" << s.horizon_s << ",\"n\":" << s.total
      << ",\"ok\":" << s.ok << ",\"shed\":" << s.shed
      << ",\"deadline_miss\":" << s.deadline_miss << ",\"error\":" << s.error
      << ",\"availability\":" << JsonDouble(s.availability)
      << ",\"shed_rate\":" << JsonDouble(s.shed_rate)
      << ",\"deadline_miss_rate\":" << JsonDouble(s.deadline_miss_rate)
      << ",\"mean_ms\":" << JsonDouble(s.mean_ms)
      << ",\"p50_ms\":" << JsonDouble(s.p50_ms)
      << ",\"p90_ms\":" << JsonDouble(s.p90_ms)
      << ",\"p99_ms\":" << JsonDouble(s.p99_ms)
      << ",\"max_ms\":" << JsonDouble(s.max_ms) << ",\"exemplar_trace\":\""
      << s.exemplar_trace_id << "\",\"exemplar_ms\":"
      << JsonDouble(s.exemplar_ms) << "}";
  return out.str();
}

HttpResponse StatuszHandler(const HttpRequest& request) {
  SliEngine& engine = SliEngine::Get();
  const std::vector<SloWatchdog::Burn> burns =
      SloWatchdog::Get().ActiveBurns();
  HttpResponse resp;
  if (WantsJson(request)) {
    std::ostringstream body;
    body << "{\"enabled\":" << (SliEngine::Enabled() ? "true" : "false")
         << ",\"burns\":[";
    for (size_t i = 0; i < burns.size(); ++i) {
      if (i > 0) body << ',';
      body << "{\"name\":\"" << JsonEscape(burns[i].name) << "\",\"reason\":\""
           << JsonEscape(burns[i].reason) << "\",\"since_s\":"
           << burns[i].since_s << "}";
    }
    body << "],\"streams\":[";
    bool first_stream = true;
    for (const char* stream : engine.streams()) {
      std::vector<SliSnapshot> windows;
      for (int horizon : SliEngine::kHorizonsS) {
        windows.push_back(engine.Snapshot(stream, horizon));
      }
      if (windows.back().total == 0 &&
          std::strcmp(stream, SliEngine::kAllStream) != 0) {
        continue;  // Nothing retained anywhere in the widest window.
      }
      if (!first_stream) body << ',';
      first_stream = false;
      body << "{\"stream\":\"" << JsonEscape(stream) << "\",\"windows\":[";
      for (size_t i = 0; i < windows.size(); ++i) {
        if (i > 0) body << ',';
        body << SnapshotJson(windows[i]);
      }
      body << "]}";
    }
    body << "]}\n";
    resp.content_type = "application/json";
    resp.body = body.str();
    return resp;
  }

  std::ostringstream body;
  body << "slo status: SLIs " << (SliEngine::Enabled() ? "enabled" : "disabled")
       << "  (1s buckets, " << SliEngine::kWindowS << "s ring)\n\n";
  if (burns.empty()) {
    body << "active burns: none\n";
  } else {
    body << "active burns:\n";
    for (const auto& burn : burns) {
      body << "  " << burn.name << ": " << burn.reason << " (since engine second "
           << burn.since_s << ")\n";
    }
  }
  body << '\n'
       << std::left << std::setw(20) << "stream" << std::right << std::setw(7)
       << "window" << std::setw(8) << "n" << std::setw(8) << "avail"
       << std::setw(8) << "shed" << std::setw(8) << "miss" << std::setw(10)
       << "p50ms" << std::setw(10) << "p90ms" << std::setw(10) << "p99ms"
       << std::setw(10) << "maxms" << "  exemplar\n";
  const char* window_names[] = {"10s", "1m", "5m"};
  for (const char* stream : engine.streams()) {
    bool any = false;
    std::vector<SliSnapshot> windows;
    for (int horizon : SliEngine::kHorizonsS) {
      windows.push_back(engine.Snapshot(stream, horizon));
      any = any || windows.back().total > 0;
    }
    if (!any && std::strcmp(stream, SliEngine::kAllStream) != 0) continue;
    for (size_t i = 0; i < windows.size(); ++i) {
      const SliSnapshot& s = windows[i];
      body << std::left << std::setw(20) << stream << std::right
           << std::setw(7) << window_names[i] << std::setw(8) << s.total
           << std::setw(8) << std::fixed << std::setprecision(3)
           << s.availability << std::setw(8) << s.shed_rate << std::setw(8)
           << s.deadline_miss_rate << std::setw(10) << std::setprecision(2)
           << s.p50_ms << std::setw(10) << s.p90_ms << std::setw(10)
           << s.p99_ms << std::setw(10) << s.max_ms;
      if (s.exemplar_trace_id != 0) {
        body << "  " << s.exemplar_trace_id << " ("
             << std::setprecision(2) << s.exemplar_ms << "ms)";
      }
      body << '\n';
    }
  }
  body << "\n(?format=json for the machine form; /requestz for per-request "
          "wide events; /tracez resolves exemplar trace ids)\n";
  resp.body = body.str();
  return resp;
}

HttpResponse RequestzHandler(const HttpRequest& request) {
  const size_t limit = QueryParam(request, "limit", 100, 5000);
  const std::string status = QueryParamString(request, "status");
  const std::string task = QueryParamString(request, "task");
  const std::string origin = QueryParamString(request, "origin");

  // Snapshot everything retained, filter, then keep the newest `limit`.
  std::vector<WideEvent> events = EventLog::Get().Snapshot();
  events.erase(
      std::remove_if(events.begin(), events.end(),
                     [&](const WideEvent& e) {
                       const auto mismatch = [](const std::string& want,
                                                const char* got) {
                         return !want.empty() &&
                                want != (got == nullptr ? "" : got);
                       };
                       return mismatch(status, e.status) ||
                              mismatch(task, e.task) ||
                              mismatch(origin, e.origin);
                     }),
      events.end());
  if (events.size() > limit) {
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(limit));
  }
  // Newest first: the question is always "what just happened".
  std::reverse(events.begin(), events.end());

  HttpResponse resp;
  if (WantsJson(request)) {
    std::ostringstream body;
    body << "{\"dropped\":" << EventLog::Get().dropped() << ",\"events\":[";
    for (size_t i = 0; i < events.size(); ++i) {
      if (i > 0) body << ',';
      body << ToJsonLine(events[i]);
    }
    body << "]}\n";
    resp.content_type = "application/json";
    resp.body = body.str();
    return resp;
  }

  std::ostringstream body;
  body << "wide events: log "
       << (EventLog::Enabled() ? "enabled" : "disabled") << "  (showing "
       << events.size() << ", dropped " << EventLog::Get().dropped()
       << ")\n\n"
       << std::right << std::setw(8) << "id" << std::setw(7) << "origin"
       << std::setw(20) << "task" << std::setw(19) << "status" << std::setw(4)
       << "rep" << std::setw(10) << "total_ms" << std::setw(10) << "queue_ms"
       << std::setw(10) << "enc_ms" << std::setw(6) << "batch" << std::setw(9)
       << "bytes_in" << std::setw(10) << "bytes_out" << std::setw(8)
       << "ddl_ms" << "  trace\n";
  for (const WideEvent& e : events) {
    body << std::setw(8) << e.request_id << std::setw(7)
         << (e.origin ? e.origin : "?") << std::setw(20)
         << (e.task ? e.task : "?") << std::setw(19)
         << (e.status ? e.status : "?") << std::setw(4) << e.replica
         << std::fixed << std::setprecision(2) << std::setw(10)
         << e.total_us / 1000.0 << std::setw(10) << e.queue_wait_us / 1000.0
         << std::setw(10) << e.encode_us / 1000.0 << std::setw(6)
         << e.batch_size << std::setw(9) << e.bytes_in << std::setw(10)
         << e.bytes_out << std::setw(8) << std::setprecision(0)
         << e.deadline_budget_ms << "  ";
    if (e.trace_id != 0) body << e.trace_id;
    body << '\n';
  }
  body << "\n(?limit=N&status=...&task=...&origin=... to filter; "
          "?format=json for records)\n";
  resp.body = body.str();
  return resp;
}

}  // namespace

void RegisterStandardHandlers(ObsServer* server) {
  server->Handle("/metrics", MetricsHandler);
  server->Handle("/healthz", HealthzHandler);
  server->Handle("/varz", VarzHandler);
  server->Handle("/tracez", TracezHandler);
  server->Handle("/profilez", ProfilezHandler);
  server->Handle("/statusz", StatuszHandler);
  server->Handle("/requestz", RequestzHandler);
  server->Handle("/",
                 [server](const HttpRequest&) { return IndexHandler(server); });
}

HealthRegistry& HealthRegistry::Get() {
  static HealthRegistry* registry = new HealthRegistry();
  return *registry;
}

int HealthRegistry::Add(std::string name, ProbeFn probe) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_id_++;
  probes_.emplace(id, std::make_pair(std::move(name), std::move(probe)));
  return id;
}

void HealthRegistry::Remove(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.erase(id);
}

std::vector<HealthRegistry::Result> HealthRegistry::RunAll() const {
  // Snapshot under the lock, probe outside it: a probe must be free to touch
  // the registry of metrics (or anything else) without deadlocking us.
  std::vector<std::pair<std::string, ProbeFn>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(probes_.size());
    for (const auto& [id, entry] : probes_) snapshot.push_back(entry);
  }
  std::vector<Result> results;
  results.reserve(snapshot.size() + 1);
  // Liveness: answering at all means the process is live.
  results.push_back(Result{"live", true, ""});
  for (const auto& [name, probe] : snapshot) {
    Result r;
    r.name = name;
    r.ok = probe(&r.detail);
    results.push_back(std::move(r));
  }
  return results;
}

size_t HealthRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probes_.size();
}

namespace {
ObsServer* g_env_server = nullptr;
}  // namespace

ObsServer* StartFromEnv() {
  static ObsServer* const server = []() -> ObsServer* {
    const char* v = std::getenv("TURL_OBS_PORT");
    if (v == nullptr || *v == '\0') return nullptr;
    char* end = nullptr;
    const long port = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || port < 0 || port > 65535) {
      TURL_LOG(Warning) << "TURL_OBS_PORT=" << v
                        << " is not a port; observability server stays off";
      return nullptr;
    }
    ObsServer::Options options;
    options.port = static_cast<int>(port);
    auto* s = new ObsServer(options);
    RegisterStandardHandlers(s);
    const Status status = s->Start();
    if (!status.ok()) {
      TURL_LOG(Warning) << "observability server failed to start: "
                        << status.ToString();
      delete s;
      return nullptr;
    }
    g_env_server = s;
    // Drain cleanly at exit so in-flight scrapes finish and sanitizers see
    // no live sockets/threads.
    std::atexit(+[] {
      if (g_env_server != nullptr) g_env_server->Stop();
    });
    TURL_LOG(Info) << "observability server listening on " << s->base_url();
    return s;
  }();
  return server;
}

}  // namespace server
}  // namespace obs
}  // namespace turl
