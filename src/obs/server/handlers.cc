#include "obs/server/handlers.h"

#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/server/process_stats.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace turl {
namespace obs {
namespace server {

namespace {

/// Positive query parameter with bounds; `fallback` when absent/garbage.
size_t QueryParam(const HttpRequest& request, const char* key, size_t fallback,
                  size_t max_value) {
  const auto it = request.query.find(key);
  if (it == request.query.end()) return fallback;
  const long long v = std::atoll(it->second.c_str());
  if (v <= 0) return fallback;
  return std::min(static_cast<size_t>(v), max_value);
}

bool WantsJson(const HttpRequest& request) {
  const auto it = request.query.find("format");
  return it != request.query.end() && it->second == "json";
}

HttpResponse IndexHandler(const ObsServer* server) {
  std::ostringstream body;
  body << "turl observability plane\nendpoints:\n";
  for (const std::string& path : server->paths()) body << "  " << path << '\n';
  HttpResponse resp;
  resp.body = body.str();
  return resp;
}

HttpResponse MetricsHandler(const HttpRequest&) {
  UpdateProcessGauges();
  HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  resp.body = MetricsRegistry::Get().ToPrometheusText();
  return resp;
}

HttpResponse HealthzHandler(const HttpRequest&) {
  const std::vector<HealthRegistry::Result> results =
      HealthRegistry::Get().RunAll();
  bool healthy = true;
  std::ostringstream body;
  for (const auto& r : results) {
    healthy = healthy && r.ok;
    body << "probe " << r.name << ": " << (r.ok ? "ok" : "FAIL");
    if (!r.detail.empty()) body << " (" << r.detail << ')';
    body << '\n';
  }
  HttpResponse resp;
  resp.status = healthy ? 200 : 503;
  resp.body = (healthy ? "status: ok\n" : "status: unhealthy\n") + body.str();
  return resp;
}

HttpResponse VarzHandler(const HttpRequest&) {
  UpdateProcessGauges();
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = MetricsRegistry::Get().ToJson();
  resp.body += '\n';
  return resp;
}

HttpResponse TracezHandler(const HttpRequest& request) {
  HttpResponse resp;
  if (WantsJson(request)) {
    // Chrome-trace slice of the most recent spans, loadable in Perfetto.
    const size_t limit = QueryParam(request, "limit", 256, 16384);
    resp.content_type = "application/json";
    resp.body = ChromeTraceJson(limit);
    resp.body += '\n';
    return resp;
  }
  const size_t slow = QueryParam(request, "slow", 10, 1000);
  Tracer& tracer = Tracer::Get();
  std::ostringstream body;
  body << "tracing: " << (Tracer::Enabled() ? "enabled" : "disabled")
       << "  (events retained " << tracer.collector().Snapshot().size()
       << ", dropped " << tracer.collector().dropped() << ")\n\n"
       << SlowTraceReport(slow)
       << "\n(?slow=N for more rows; ?format=json&limit=N for a Chrome-trace "
          "slice)\n";
  resp.body = body.str();
  return resp;
}

HttpResponse ProfilezHandler(const HttpRequest& request) {
  HttpResponse resp;
  if (WantsJson(request)) {
    resp.content_type = "application/json";
    resp.body = "{\"spans\":" + Profiler::Get().ReportJson() + "}\n";
    return resp;
  }
  std::ostringstream body;
  body << "profiling: " << (Profiler::Enabled() ? "enabled" : "disabled")
       << "\n\n"
       << Profiler::Get().ReportTable();
  resp.body = body.str();
  return resp;
}

}  // namespace

void RegisterStandardHandlers(ObsServer* server) {
  server->Handle("/metrics", MetricsHandler);
  server->Handle("/healthz", HealthzHandler);
  server->Handle("/varz", VarzHandler);
  server->Handle("/tracez", TracezHandler);
  server->Handle("/profilez", ProfilezHandler);
  server->Handle("/",
                 [server](const HttpRequest&) { return IndexHandler(server); });
}

HealthRegistry& HealthRegistry::Get() {
  static HealthRegistry* registry = new HealthRegistry();
  return *registry;
}

int HealthRegistry::Add(std::string name, ProbeFn probe) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_id_++;
  probes_.emplace(id, std::make_pair(std::move(name), std::move(probe)));
  return id;
}

void HealthRegistry::Remove(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  probes_.erase(id);
}

std::vector<HealthRegistry::Result> HealthRegistry::RunAll() const {
  // Snapshot under the lock, probe outside it: a probe must be free to touch
  // the registry of metrics (or anything else) without deadlocking us.
  std::vector<std::pair<std::string, ProbeFn>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(probes_.size());
    for (const auto& [id, entry] : probes_) snapshot.push_back(entry);
  }
  std::vector<Result> results;
  results.reserve(snapshot.size() + 1);
  // Liveness: answering at all means the process is live.
  results.push_back(Result{"live", true, ""});
  for (const auto& [name, probe] : snapshot) {
    Result r;
    r.name = name;
    r.ok = probe(&r.detail);
    results.push_back(std::move(r));
  }
  return results;
}

size_t HealthRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probes_.size();
}

namespace {
ObsServer* g_env_server = nullptr;
}  // namespace

ObsServer* StartFromEnv() {
  static ObsServer* const server = []() -> ObsServer* {
    const char* v = std::getenv("TURL_OBS_PORT");
    if (v == nullptr || *v == '\0') return nullptr;
    char* end = nullptr;
    const long port = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || port < 0 || port > 65535) {
      TURL_LOG(Warning) << "TURL_OBS_PORT=" << v
                        << " is not a port; observability server stays off";
      return nullptr;
    }
    ObsServer::Options options;
    options.port = static_cast<int>(port);
    auto* s = new ObsServer(options);
    RegisterStandardHandlers(s);
    const Status status = s->Start();
    if (!status.ok()) {
      TURL_LOG(Warning) << "observability server failed to start: "
                        << status.ToString();
      delete s;
      return nullptr;
    }
    g_env_server = s;
    // Drain cleanly at exit so in-flight scrapes finish and sanitizers see
    // no live sockets/threads.
    std::atexit(+[] {
      if (g_env_server != nullptr) g_env_server->Stop();
    });
    TURL_LOG(Info) << "observability server listening on " << s->base_url();
    return s;
  }();
  return server;
}

}  // namespace server
}  // namespace obs
}  // namespace turl
