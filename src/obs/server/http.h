#ifndef TURL_OBS_SERVER_HTTP_H_
#define TURL_OBS_SERVER_HTTP_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace turl {
namespace obs {
namespace server {

/// Minimal HTTP/1.0 wire handling for the observability plane: request-head
/// parsing, response serialization, and EINTR-safe socket IO that copes with
/// partial reads and partial writes. Deliberately tiny — one request per
/// connection, no keep-alive, no chunked encoding, no TLS — because the
/// server only ever answers small GET scrapes on localhost.

/// One parsed request head (start line + headers; scrape endpoints carry no
/// body, so anything after the blank line is ignored).
struct HttpRequest {
  std::string method;   ///< Uppercase as received ("GET", "HEAD", ...).
  std::string path;     ///< Target with the query string stripped.
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1".
  /// Decoded query parameters (`?slow=5&format=json`); a key without '='
  /// maps to the empty string. No %-decoding — scrape params are plain.
  std::map<std::string, std::string> query;
  /// Headers in arrival order; names are lower-cased, values trimmed.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// One response. SerializeResponse adds Content-Length and Connection: close
/// so clients can read to EOF.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Canonical reason phrase ("OK", "Not Found", ...; "Unknown" otherwise).
const char* StatusReason(int status);

/// Parses everything up to (not including) the blank line. False on any
/// malformed start line or header.
bool ParseRequestHead(const std::string& head, HttpRequest* request);

/// Full response bytes: status line, headers, blank line, body.
std::string SerializeResponse(const HttpResponse& response);

/// Reads from `fd` until the request head terminator ("\r\n\r\n") arrives,
/// retrying short reads and EINTR. `*head` receives the bytes before the
/// terminator. False on EOF before the terminator, a read error or timeout
/// (SO_RCVTIMEO), or `max_bytes` exceeded (oversized/garbage request).
bool ReadRequestHead(int fd, std::string* head, size_t max_bytes = 8192);

/// Writes all `len` bytes, retrying short writes and EINTR; SIGPIPE is
/// suppressed (a peer that hung up surfaces as `false`, not a signal).
bool WriteAll(int fd, const char* data, size_t len);

/// Client-side response, for tests and the scrape bench.
struct HttpClientResponse {
  int status = 0;
  std::string content_type;
  std::string body;
};

/// Blocking one-shot GET against 127.0.0.1-style hosts: connects, sends the
/// request, reads to EOF (the server closes per HTTP/1.0) and parses the
/// status line, Content-Type and body.
Status HttpGet(const std::string& host, int port, const std::string& target,
               HttpClientResponse* out, int timeout_ms = 5000);

}  // namespace server
}  // namespace obs
}  // namespace turl

#endif  // TURL_OBS_SERVER_HTTP_H_
